package ghostspec

// The benchmark harness regenerating the paper's evaluation numbers
// (§5-6). One benchmark (or ghost-on/ghost-off pair) per reported
// quantity; see EXPERIMENTS.md for the mapping and DESIGN.md for the
// ablations.

import (
	"math/rand"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/mem"
	"ghostspec/internal/pgtable"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
	"ghostspec/internal/suite"
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

// ---------------------------------------------------------------------
// E7: boot overhead (paper: 1.49s -> 4.76s, 3.2x). Boot = hypervisor
// initialisation; ghost boot adds the initial recording and the
// boot-layout check.

func BenchmarkBootNoGhost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := hyp.New(hyp.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBootGhost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hv, err := hyp.New(hyp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		rec := ghost.Attach(hv)
		if n := len(rec.Failures()); n != 0 {
			b.Fatalf("%d boot alarms", n)
		}
	}
}

// ---------------------------------------------------------------------
// E7/E1: handwritten suite runtime (paper: 1.07s -> 12.3s, 11.5x).

func BenchmarkSuiteNoGhost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := suite.Run(suite.Options{Ghost: false})
		if s := suite.Summarise(results); s.Failed != 0 {
			b.Fatalf("suite failed: %+v", s)
		}
	}
}

func BenchmarkSuiteGhost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := suite.Run(suite.Options{Ghost: true})
		if s := suite.Summarise(results); s.Failed != 0 {
			b.Fatalf("suite failed: %+v", s)
		}
	}
}

// ---------------------------------------------------------------------
// Per-hypercall overhead: share/unshare round trips with and without
// the oracle.

func benchShareLoop(b *testing.B, withGhost bool) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	var rec *ghost.Recorder
	if withGhost {
		rec = ghost.Attach(hv)
	}
	d := proxy.New(hv)
	pfn, _ := d.AllocPage()
	telemetry.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ShareHyp(0, pfn); err != nil {
			b.Fatal(err)
		}
		if err := d.UnshareHyp(0, pfn); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportHypercallLatency(b)
	if rec != nil {
		if n := len(rec.Failures()); n != 0 {
			b.Fatalf("%d alarms", n)
		}
	}
}

// reportHypercallLatency adds telemetry histogram percentiles (bucket
// upper bounds) to the benchmark output, alongside ns/op.
func reportHypercallLatency(b *testing.B) {
	b.Helper()
	if telemetry.Disabled() {
		return
	}
	if h, ok := telemetry.Snapshot().Histogram(`hyp_trap_latency_ns{reason="hvc"}`); ok && h.Count > 0 {
		b.ReportMetric(float64(h.Quantile(0.5)), "hvc-p50-ns")
		b.ReportMetric(float64(h.Quantile(0.99)), "hvc-p99-ns")
	}
}

func BenchmarkShareUnshareNoGhost(b *testing.B) { benchShareLoop(b, false) }
func BenchmarkShareUnshareGhost(b *testing.B)   { benchShareLoop(b, true) }

// ---------------------------------------------------------------------
// Telemetry overhead on the hypercall hot path: the same share/unshare
// loop (no ghost) with collection on vs. the Disabled fast path. The
// Off variant must be within 5% of the seed's no-telemetry numbers —
// the "compile-out cheap" requirement.

func benchTelemetryToggle(b *testing.B, disabled bool) {
	prev := telemetry.Disabled()
	telemetry.SetDisabled(disabled)
	defer telemetry.SetDisabled(prev)
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	d := proxy.New(hv)
	pfn, _ := d.AllocPage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ShareHyp(0, pfn); err != nil {
			b.Fatal(err)
		}
		if err := d.UnshareHyp(0, pfn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHypercallTelemetryOn(b *testing.B)  { benchTelemetryToggle(b, false) }
func BenchmarkHypercallTelemetryOff(b *testing.B) { benchTelemetryToggle(b, true) }

// ---------------------------------------------------------------------
// Span-tracing overhead on the hypercall hot path, mirroring the
// telemetry pair above: the same share/unshare loop with a tracer
// attached, recording on vs. globally disabled. The Off variant is the
// configuration every instrumented binary ships with — tracer wired,
// switch off — and must stay within 5% of the no-tracer numbers:
// every Begin/End on the path reduces to one atomic load and a
// branch. benchreport -profile enforces that bound in CI; this pair
// is the local microscope.

func benchTraceToggle(b *testing.B, on bool) {
	prev := trace.Enabled()
	trace.SetEnabled(on)
	defer trace.SetEnabled(prev)
	tr := trace.NewTracer(1, 1<<12)
	hv, err := hyp.New(hyp.Config{Tracer: tr})
	if err != nil {
		b.Fatal(err)
	}
	d := proxy.New(hv)
	pfn, _ := d.AllocPage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ShareHyp(0, pfn); err != nil {
			b.Fatal(err)
		}
		if err := d.UnshareHyp(0, pfn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHypercallTraceOn(b *testing.B)  { benchTraceToggle(b, true) }
func BenchmarkHypercallTraceOff(b *testing.B) { benchTraceToggle(b, false) }

// TestTraceDisabledPathAllocationFree pins the disabled-path contract
// the benchmarks measure: with the global switch off, a Begin/End
// pair must not allocate at all.
func TestTraceDisabledPathAllocationFree(t *testing.T) {
	prev := trace.Enabled()
	trace.SetEnabled(false)
	defer trace.SetEnabled(prev)
	tr := trace.NewTracer(1, 64)
	name := trace.NewName("bench.alloc-probe")
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(0, name)
		sp.End()
	}); allocs != 0 {
		t.Errorf("disabled Begin/End pair allocates: %g allocs/op, want 0", allocs)
	}
}

func benchDemandFault(b *testing.B, withGhost bool) {
	newSys := func() (*proxy.Driver, arch.PFN, int) {
		hv, err := hyp.New(hyp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if withGhost {
			ghost.Attach(hv)
		}
		// Each fault maps a 2MB block, so fresh faults need 2MB
		// strides; the system runs out after nRegions of them.
		base := arch.PhysToPFN(hv.HostMemStart())
		nRegions := int(hv.HostMemPages()/512) - 3
		return proxy.New(hv), base, nRegions
	}
	d, base, nRegions := newSys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%nRegions == 0 && i > 0 {
			b.StopTimer()
			d, base, nRegions = newSys()
			b.StartTimer()
		}
		pfn := base + arch.PFN((i%nRegions)*512)
		if ok, err := d.Access(0, arch.IPA(pfn.Phys()), true); err != nil || !ok {
			b.Fatalf("fault: ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkHostDemandFaultNoGhost(b *testing.B) { benchDemandFault(b, false) }
func BenchmarkHostDemandFaultGhost(b *testing.B)   { benchDemandFault(b, true) }

// ---------------------------------------------------------------------
// VM lifecycle end to end.

func benchVMLifecycle(b *testing.B, withGhost bool) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if withGhost {
		ghost.Attach(hv)
	}
	d := proxy.New(hv)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, donated, err := d.InitVM(0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.InitVCPU(0, h, 0); err != nil {
			b.Fatal(err)
		}
		mc, err := d.Topup(0, h, 0, 4)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.VCPULoad(0, h, 0); err != nil {
			b.Fatal(err)
		}
		gp, _ := d.AllocPage()
		if err := d.MapGuest(0, gp, 16); err != nil {
			b.Fatal(err)
		}
		if err := d.VCPUPut(0); err != nil {
			b.Fatal(err)
		}
		if err := d.TeardownVM(0, h); err != nil {
			b.Fatal(err)
		}
		for _, pfn := range donated {
			if err := d.ReclaimPage(0, pfn); err != nil {
				b.Fatal(err)
			}
			d.FreePage(pfn)
		}
		for _, pfn := range mc {
			_ = d.ReclaimPage(0, pfn) // table pages may already be gone
			d.FreePage(pfn)
		}
		if err := d.ReclaimPage(0, gp); err != nil {
			b.Fatal(err)
		}
		d.FreePage(gp)
	}
}

func BenchmarkVMLifecycleNoGhost(b *testing.B) { benchVMLifecycle(b, false) }
func BenchmarkVMLifecycleGhost(b *testing.B)   { benchVMLifecycle(b, true) }

// ---------------------------------------------------------------------
// E3: random-testing throughput (paper: ~200k hypercalls/hour in QEMU)
// and the guided-vs-unguided ablation.

func benchRandom(b *testing.B, guided bool) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rec := ghost.Attach(hv)
	tr := randtest.New(proxy.New(hv), rec, 1, guided)
	b.ResetTimer()
	tr.Run(b.N)
	b.StopTimer()
	s := tr.Stats()
	b.ReportMetric(float64(s.Calls)/float64(b.N), "calls/step")
	b.ReportMetric(float64(s.HostCrashes), "host-crashes")
	b.ReportMetric(float64(s.VMsCreated), "vms-created")
}

func BenchmarkRandGuided(b *testing.B)   { benchRandom(b, true) }
func BenchmarkRandUnguided(b *testing.B) { benchRandom(b, false) }

// ---------------------------------------------------------------------
// Abstraction-function cost: interpreting a populated host table.

func BenchmarkInterpretPgtable(b *testing.B) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	d := proxy.New(hv)
	// Populate: fault in a spread of pages and share a few.
	base := arch.PhysToPFN(hv.HostMemStart())
	for i := 0; i < 32; i++ {
		pfn := base + arch.PFN(i*613)
		if ok, _ := d.Access(0, arch.IPA(pfn.Phys()), true); !ok {
			b.Fatal("populate fault failed")
		}
	}
	for i := 0; i < 8; i++ {
		pfn, _ := d.AllocPage()
		if err := d.ShareHyp(0, pfn); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		abs := ghost.InterpretPgtable(hv.Mem, hv.HostPGTRoot())
		if abs.Mapping.IsEmpty() {
			b.Fatal("empty interpretation")
		}
	}
}

// ---------------------------------------------------------------------
// Incremental abstraction: re-abstracting the host table after a small
// mutation, through the dirty-generation cache vs a full
// re-interpretation. This is the steady-state hook cost — each
// hypercall perturbs a handful of table pages, and the cache re-walks
// only those subtrees.

func benchAbstract(b *testing.B, incremental bool) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	d := proxy.New(hv)
	// Populate a spread of host mappings so the table has realistic
	// depth and width before the measured churn starts.
	base := arch.PhysToPFN(hv.HostMemStart())
	for i := 0; i < 64; i++ {
		pfn := base + arch.PFN(i*613)
		if ok, _ := d.Access(0, arch.IPA(pfn.Phys()), true); !ok {
			b.Fatal("populate fault failed")
		}
	}
	pfn, _ := d.AllocPage()
	var c ghost.PgtableCache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One small mutation per iteration, like a real hypercall.
		if i%2 == 0 {
			if err := d.ShareHyp(0, pfn); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := d.UnshareHyp(0, pfn); err != nil {
				b.Fatal(err)
			}
		}
		var abs ghost.AbstractPgtable
		if incremental {
			abs, _ = c.Interpret(hv.Mem, hv.HostPGTRoot())
		} else {
			abs = ghost.InterpretPgtable(hv.Mem, hv.HostPGTRoot())
		}
		if abs.Mapping.IsEmpty() {
			b.Fatal("empty interpretation")
		}
	}
	b.StopTimer()
	if incremental {
		st := c.Stats()
		b.ReportMetric(float64(st.PagesWalked)/float64(b.N), "pages-walked/op")
	}
}

func BenchmarkAbstractIncremental(b *testing.B) { benchAbstract(b, true) }
func BenchmarkAbstractFull(b *testing.B)        { benchAbstract(b, false) }

// ---------------------------------------------------------------------
// Ablation 1 (DESIGN.md): coalesced maplet lists vs a naive per-page
// map for the abstract mapping representation, building the
// abstraction of a block-heavy address space and comparing two of
// them for equality (the oracle's hot operations).

// naiveMapping is the strawman: one entry per page.
type naiveMapping map[uint64]ghost.Target

func buildNaive(n int) naiveMapping {
	m := make(naiveMapping)
	attrs := arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal}
	for i := 0; i < n; i++ {
		va := uint64(i) << arch.PageShift
		m[va] = ghost.Mapped(arch.PhysAddr(va), attrs)
	}
	return m
}

func buildCoalesced(n int) ghost.Mapping {
	var m ghost.Mapping
	attrs := arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal}
	for i := 0; i < n; i++ {
		va := uint64(i) << arch.PageShift
		m.Extend(va, 1, ghost.Mapped(arch.PhysAddr(va), attrs))
	}
	return m
}

const ablationPages = 4096 // 16MB of contiguous identity mapping

func BenchmarkMappingBuildCoalesced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := buildCoalesced(ablationPages)
		if m.NrMaplets() != 1 {
			b.Fatal("not coalesced")
		}
	}
}

func BenchmarkMappingBuildNaive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := buildNaive(ablationPages)
		if len(m) != ablationPages {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkMappingEqualCoalesced(b *testing.B) {
	x, y := buildCoalesced(ablationPages), buildCoalesced(ablationPages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ghost.EqualMappings(x, y) {
			b.Fatal("unequal")
		}
	}
}

func BenchmarkMappingEqualNaive(b *testing.B) {
	x, y := buildNaive(ablationPages), buildNaive(ablationPages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, v := range x {
			if y[k] != v {
				b.Fatal("unequal")
			}
		}
	}
}

// ---------------------------------------------------------------------
// Ablation 2 (DESIGN.md): ownership-following partial recording vs a
// whole-state snapshot at every lock event — the cost the paper avoids
// by structuring the ghost state around the locks instead of a big
// instrumentation lock.

func BenchmarkRecordPartialHost(b *testing.B) {
	hv := populatedSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ghost.AbstractHost(hv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordFullState(b *testing.B) {
	hv := populatedSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ghost.AbstractHost(hv); err != nil {
			b.Fatal(err)
		}
		_ = ghost.AbstractHyp(hv)
		_ = ghost.AbstractVMs(hv)
		for s := 0; s < hyp.MaxVMs; s++ {
			if vm := hv.VMSnapshot(s); vm != nil {
				_ = ghost.AbstractGuest(hv, vm.Handle)
			}
		}
	}
}

// populatedSystem boots a system with host mappings, shares, and a VM.
func populatedSystem(b *testing.B) *hyp.Hypervisor {
	b.Helper()
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	d := proxy.New(hv)
	base := arch.PhysToPFN(hv.HostMemStart())
	for i := 0; i < 16; i++ {
		if ok, _ := d.Access(0, arch.IPA((base + arch.PFN(i*613)).Phys()), true); !ok {
			b.Fatal("populate failed")
		}
	}
	h, _, err := d.InitVM(0, 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.InitVCPU(0, h, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := d.Topup(0, h, 0, 6); err != nil {
		b.Fatal(err)
	}
	if err := d.VCPULoad(0, h, 0); err != nil {
		b.Fatal(err)
	}
	gp, _ := d.AllocPage()
	if err := d.MapGuest(0, gp, 16); err != nil {
		b.Fatal(err)
	}
	return hv
}

// ---------------------------------------------------------------------
// E6/E7: ghost memory impact — frames touched and live maplets after a
// working session (paper: ~18MB dominated by page-table
// representations).

func BenchmarkGhostMemoryImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hv, err := hyp.New(hyp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		rec := ghost.Attach(hv)
		tr := randtest.New(proxy.New(hv), rec, 99, true)
		tr.Run(500)
		st := rec.Stats()
		b.ReportMetric(float64(st.MapletsLive), "maplets")
		b.ReportMetric(float64(hv.Mem.FrameCount()), "frames")
	}
}

// ---------------------------------------------------------------------
// Guest program interpretation: instructions per second with and
// without the oracle (only vcpu_run traps cross EL2; the arithmetic
// executes "at EL1" either way).

func benchGuestProgram(b *testing.B, withGhost bool) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if withGhost {
		ghost.Attach(hv)
	}
	d := proxy.New(hv)
	h, _, err := d.InitVM(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.InitVCPU(0, h, 0); err != nil {
		b.Fatal(err)
	}
	// A compute-heavy loop that yields when the counter hits zero.
	prog := []hyp.Insn{
		{Op: hyp.OpMovi, Dst: 1, Imm: 60},
		{Op: hyp.OpMovi, Dst: 2, Imm: ^uint64(0)},
		{Op: hyp.OpMovi, Dst: 3, Imm: 0},
		{Op: hyp.OpAdd, Dst: 1, Src: 2},         // counter--
		{Op: hyp.OpBne, Dst: 1, Src: 3, Imm: 3}, // loop
		{Op: hyp.OpYield},
		{Op: hyp.OpBne, Dst: 2, Src: 3, Imm: 0}, // restart forever
	}
	if !hv.LoadGuestProgram(h, 0, prog) {
		b.Fatal("program load failed")
	}
	if err := d.VCPULoad(0, h, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.VCPURun(0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(125, "guest-insns/op")
}

func BenchmarkGuestProgramNoGhost(b *testing.B) { benchGuestProgram(b, false) }
func BenchmarkGuestProgramGhost(b *testing.B)   { benchGuestProgram(b, true) }

// ---------------------------------------------------------------------
// Trace record and offline replay throughput.

func BenchmarkTraceReplay(b *testing.B) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rec := ghost.Attach(hv)
	trace := rec.RecordTrace()
	tr := randtest.New(proxy.New(hv), rec, 11, true)
	tr.Run(500)
	if len(trace.Events) == 0 {
		b.Fatal("empty trace")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fails := ghost.Replay(trace); len(fails) != 0 {
			b.Fatalf("replay failures: %v", fails)
		}
	}
	b.ReportMetric(float64(len(trace.Events)), "events/op")
}

// ---------------------------------------------------------------------
// Page-table walker microbenchmarks (substrate cost context).

func BenchmarkHardwareWalk(b *testing.B) {
	m := arch.NewMemory(arch.DefaultLayout())
	pool := mem.NewPool("t", arch.PFN(0x90000), 64)
	tbl, err := pgtable.New("bench", m, arch.Stage2, pgtable.PoolAllocator{Pool: pool}, 2)
	if err != nil {
		b.Fatal(err)
	}
	attrs := arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal}
	if err := tbl.Map(0x4000_0000, 64*arch.PageSize, 0x4000_0000, attrs, false); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ia := 0x4000_0000 + uint64(rng.Intn(64))*arch.PageSize
		if _, f := arch.WalkRead(m, tbl.Root(), ia); f != nil {
			b.Fatal(f)
		}
	}
}

// benchTranslate times repeated host translations of a page-granular
// working set, with the software TLB serving hits (BenchmarkTranslateTLB)
// or disabled so every translation is a full walk (BenchmarkTranslateWalk).
// The pair is the BENCH_tlb.json microbenchmark in -bench form.
func benchTranslate(b *testing.B, noTLB bool) {
	hv, err := hyp.New(hyp.Config{NoTLB: noTLB})
	if err != nil {
		b.Fatal(err)
	}
	d := proxy.New(hv)
	const pages = 64
	ipas := make([]arch.IPA, 0, pages)
	for i := 0; i < pages; i++ {
		pfn, err := d.AllocPage()
		if err != nil {
			b.Fatal(err)
		}
		ipa := arch.IPA(pfn.Phys())
		if ok, err := d.Access(0, ipa, true); err != nil || !ok {
			b.Fatalf("pre-fault: ok=%v err=%v", ok, err)
		}
		// Split the demand-mapped block to page granularity so the walk
		// leg measures a full 4-level walk.
		if err := d.ShareHyp(0, pfn); err != nil {
			b.Fatal(err)
		}
		if err := d.UnshareHyp(0, pfn); err != nil {
			b.Fatal(err)
		}
		ipas = append(ipas, ipa)
	}
	acc := arch.Access{}
	for _, ipa := range ipas {
		if _, f := hv.TranslateHost(0, ipa, acc); f != nil {
			b.Fatal(f)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, f := hv.TranslateHost(0, ipas[i%pages], acc); f != nil {
			b.Fatal(f)
		}
	}
}

func BenchmarkTranslateTLB(b *testing.B)  { benchTranslate(b, false) }
func BenchmarkTranslateWalk(b *testing.B) { benchTranslate(b, true) }

func BenchmarkPgtableMapUnmap(b *testing.B) {
	m := arch.NewMemory(arch.DefaultLayout())
	pool := mem.NewPool("t", arch.PFN(0x90000), 4096)
	tbl, err := pgtable.New("bench", m, arch.Stage2, pgtable.PoolAllocator{Pool: pool}, 2)
	if err != nil {
		b.Fatal(err)
	}
	attrs := arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := 0x4000_0000 + uint64(i%512)*arch.PageSize
		if err := tbl.Map(va, arch.PageSize, arch.PhysAddr(va), attrs, false); err != nil {
			b.Fatal(err)
		}
		if err := tbl.Unmap(va, arch.PageSize); err != nil {
			b.Fatal(err)
		}
	}
}
