package ghostspec

// Cross-package integration tests: whole-stack flows through the
// public seams — boot, oracle, coverage, suite, random testing, bug
// demos — the way the binaries compose them.

import (
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/bugdemo"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/coverage"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
	"ghostspec/internal/suite"
)

// TestFullStackScenario is the pkvm-sim workload as a test: boot,
// oracle, coverage tracker, two VMs of guest traffic, teardown, all
// checks green.
func TestFullStackScenario(t *testing.T) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := ghost.Attach(hv)
	cov := coverage.Wrap(hv, rec)
	hv.SetInstrumentation(cov)
	d := proxy.New(hv)

	for v := 0; v < 2; v++ {
		h, donated, err := d.InitVM(v, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.InitVCPU(v, h, 0); err != nil {
			t.Fatal(err)
		}
		mc, err := d.Topup(v, h, 0, 6)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.VCPULoad(v, h, 0); err != nil {
			t.Fatal(err)
		}
		gp, _ := d.AllocPage()
		if err := d.MapGuest(v, gp, 16); err != nil {
			t.Fatal(err)
		}
		d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestShareHost, IPA: 16 << arch.PageShift})
		if _, err := d.VCPURun(v); err != nil {
			t.Fatal(err)
		}
		d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestUnshareHost, IPA: 16 << arch.PageShift})
		if _, err := d.VCPURun(v); err != nil {
			t.Fatal(err)
		}
		if err := d.VCPUPut(v); err != nil {
			t.Fatal(err)
		}
		if err := d.TeardownVM(v, h); err != nil {
			t.Fatal(err)
		}
		for _, set := range [][]arch.PFN{donated, mc, {gp}} {
			for _, pfn := range set {
				if err := d.ReclaimPage(v, pfn); err != nil {
					t.Fatalf("reclaim %#x: %v", uint64(pfn), err)
				}
			}
		}
	}

	if fs := rec.Failures(); len(fs) != 0 {
		t.Fatalf("oracle alarms: %v", fs)
	}
	st := rec.Stats()
	if st.Passed != st.Checks || st.Checks == 0 {
		t.Errorf("oracle stats: %+v", st)
	}
	r := cov.Snapshot()
	if r.Traps != st.Traps {
		t.Errorf("tracker saw %d traps, recorder %d", r.Traps, st.Traps)
	}
}

// TestSuiteTimesGhostOverhead reproduces the E7 direction: the ghost
// build must be measurably slower (and both must pass).
func TestSuiteTimesGhostOverhead(t *testing.T) {
	off := suite.Summarise(suite.Run(suite.Options{Ghost: false}))
	on := suite.Summarise(suite.Run(suite.Options{Ghost: true}))
	if off.Failed != 0 || on.Failed != 0 {
		t.Fatalf("suite failed: off=%+v on=%+v", off, on)
	}
	if on.TotalDuration <= off.TotalDuration {
		t.Errorf("ghost suite (%v) not slower than bare suite (%v): instrumentation inert?",
			on.TotalDuration, off.TotalDuration)
	}
}

// TestEveryBugCaughtEndToEnd is E4+E5 as a test.
func TestEveryBugCaughtEndToEnd(t *testing.T) {
	results := bugdemo.DetectAll()
	if len(results) != len(faults.All()) {
		t.Fatalf("%d demos for %d bugs", len(results), len(faults.All()))
	}
	for _, r := range results {
		if r.DriveErr != nil {
			t.Errorf("%s: %v", r.Demo.Bug, r.DriveErr)
		}
		if !r.Detected {
			t.Errorf("%s: missed", r.Demo.Bug)
		}
	}
}

// TestRandomCampaignWithCoverage runs a guided campaign under both the
// oracle and the coverage tracker and sanity-checks the combination.
func TestRandomCampaignWithCoverage(t *testing.T) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := ghost.Attach(hv)
	cov := coverage.Wrap(hv, rec)
	hv.SetInstrumentation(cov)

	tr := randtest.New(proxy.New(hv), rec, 5, true)
	tr.Run(3000)

	if fs := rec.Failures(); len(fs) != 0 {
		t.Fatalf("alarms: %v", fs)
	}
	s := tr.Stats()
	if s.HostCrashes != 0 || s.VMsCreated == 0 {
		t.Errorf("campaign: %v", s)
	}
	r := cov.Snapshot()
	if coverage.Percent(r.ImplCovered, r.ImplTotal) < 40 {
		t.Errorf("random campaign covered only %d/%d branches", r.ImplCovered, r.ImplTotal)
	}
}

// TestGhostOffIsFree: without the oracle attached, the hypervisor
// runs with the no-op instrumentation — traps work and nothing records.
func TestGhostOffIsFree(t *testing.T) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := proxy.New(hv)
	pfn, _ := d.AllocPage()
	if err := d.ShareHyp(0, pfn); err != nil {
		t.Fatal(err)
	}
	if err := d.UnshareHyp(0, pfn); err != nil {
		t.Fatal(err)
	}
}
