// Command ghost-fuzz runs the parallel coverage-guided campaign
// engine: sharded model-guided random testing with a shared seed
// corpus, oracle-checked on every trap, with delta-debugging trace
// minimization of every finding.
//
//	ghost-fuzz -duration 30s                 # fuzz the fixed build (expect silence)
//	ghost-fuzz -bug unshare-leave-mapping    # fuzz a buggy build, get a minimized repro
//	ghost-fuzz -matrix                       # full faults.All() detection matrix
//	ghost-fuzz -workers 1 -seed 7 -execs 50  # deterministic single-shard run
//	ghost-fuzz -serve :7070                  # fleet coordinator (see fleet.go)
//	ghost-fuzz -worker http://host:7070      # fleet worker
//
// Exit status is non-zero when a fuzz run produces findings or a
// matrix run leaves a non-skip-listed bug undetected — on a fixed
// build, findings mean either a regression or an oracle bug, and CI
// wants to hear about both.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"ghostspec/internal/campaign"
	"ghostspec/internal/coverage"
	"ghostspec/internal/faults"
	"ghostspec/internal/spinlock"
	"ghostspec/internal/telemetry/trace"
)

func main() {
	workers := flag.Int("workers", 0, "worker shards (default GOMAXPROCS)")
	steps := flag.Int("steps", 400, "generator steps per execution")
	seed := flag.Int64("seed", 1, "campaign seed (worker streams derive from it)")
	guided := flag.Bool("guided", true, "model-guided generation (false: uniform ablation)")
	bugFlag := flag.String("bug", "", "comma-separated bugs to inject")
	bigMem := flag.Bool("big-memory", false, "boot the large-physical-map layout")
	duration := flag.Duration("duration", 0, "wall-time budget (default 10s when no other stop condition)")
	maxExecs := flag.Int64("execs", 0, "execution budget (0: unlimited)")
	maxFindings := flag.Int("max-findings", 0, "stop after this many findings (0: keep going)")
	shrink := flag.Int("shrink", 400, "replay budget per finding minimization")
	matrix := flag.Bool("matrix", false, "fault-sweep mode: campaign per faults.All() bug")
	skipFlag := flag.String("skip", "", "matrix skip-list: bug=reason;bug=reason")
	noSnapshot := flag.Bool("no-snapshot", false, "disable copy-on-write snapshots (fresh boot + full replay per exec)")
	confEvery := flag.Int("conformance-every", 0, "diff every Nth restored exec against a boot-and-replay reference (0: default cadence)")
	cpus := flag.Int("cpus", 4, "vCPUs per fuzzed system")
	schedFuzz := flag.Bool("sched-fuzz", false, "re-execute clean traces under seeded deterministic schedules (multi-vCPU interleaving probe)")
	rankCheck := flag.Bool("rankcheck", false, "enable the runtime lock-rank validator")
	quiet := flag.Bool("quiet", false, "suppress per-finding progress lines")
	httpAddr := flag.String("http", "", "serve live introspection on this address (/metrics, /debug/pprof/, /spans, /campaign)")
	traceOut := flag.String("trace-out", "", "write the campaign's span dump as Chrome trace-event JSON to this file")
	serveAddr := flag.String("serve", "", "fleet coordinator mode: serve the fleet API on this address")
	workerAddr := flag.String("worker", "", "fleet worker mode: join the coordinator at this base URL")
	shards := flag.Int("shards", 0, "fleet: seed-stream shard count (default 4)")
	roundExecs := flag.Int64("round-execs", 0, "fleet: executions per shard round (default 512)")
	lease := flag.Duration("lease", 0, "fleet: worker heartbeat lease before shard reassignment (default 10s)")
	flag.Parse()

	if *rankCheck {
		// Rank inversions panic at the acquisition point; under the
		// campaign that takes the whole process down, which is the
		// desired CI behaviour.
		spinlock.EnableRankCheck()
		defer spinlock.DisableRankCheck()
	}

	bugs, err := parseBugs(*bugFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := campaign.Config{
		Workers:          *workers,
		StepsPerRun:      *steps,
		Seed:             *seed,
		Unguided:         !*guided,
		Bugs:             bugs,
		BigMemory:        *bigMem,
		Duration:         *duration,
		MaxExecs:         *maxExecs,
		MaxFindings:      *maxFindings,
		ShrinkReplays:    *shrink,
		NoSnapshot:       *noSnapshot,
		ConformanceEvery: *confEvery,
		NrCPUs:           *cpus,
		SchedFuzz:        *schedFuzz,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	if *serveAddr != "" && *workerAddr != "" {
		fmt.Fprintln(os.Stderr, "-serve and -worker are mutually exclusive")
		os.Exit(2)
	}
	if *serveAddr != "" {
		os.Exit(runServe(*serveAddr, cfg, *shards, *roundExecs, *lease, cfg.Duration))
	}
	if *workerAddr != "" {
		os.Exit(runWorker(*workerAddr, cfg, *httpAddr, *traceOut))
	}

	if *matrix {
		if cfg.Duration <= 0 && cfg.MaxExecs <= 0 {
			cfg.MaxExecs = 400 // per-bug detection budget
		}
		os.Exit(runMatrix(cfg, *skipFlag))
	}

	if cfg.Duration <= 0 && cfg.MaxExecs <= 0 && cfg.MaxFindings <= 0 {
		cfg.Duration = 10 * time.Second
	}
	os.Exit(runFuzz(cfg, *httpAddr, *traceOut))
}

func parseBugs(s string) ([]faults.Bug, error) {
	if s == "" {
		return nil, nil
	}
	known := map[faults.Bug]bool{}
	for _, b := range faults.All() {
		known[b] = true
	}
	var bugs []faults.Bug
	for _, name := range strings.Split(s, ",") {
		b := faults.Bug(strings.TrimSpace(name))
		if !known[b] {
			return nil, fmt.Errorf("unknown bug %q (see faults.All: %v)", b, faults.All())
		}
		bugs = append(bugs, b)
	}
	return bugs, nil
}

func runFuzz(cfg campaign.Config, httpAddr, traceOut string) int {
	mode := "guided"
	if cfg.Unguided {
		mode = "unguided"
	}
	fmt.Printf("ghost-fuzz: %s campaign, seed=%d steps=%d shrink-budget=%d\n",
		mode, cfg.Seed, cfg.StepsPerRun, cfg.ShrinkReplays)

	// Span tracing is opt-in: only pay for it when someone will read
	// the spans (the /spans endpoint or a trace dump).
	var tr *trace.Tracer
	if httpAddr != "" || traceOut != "" {
		lanes := cfg.Workers
		if lanes <= 0 {
			lanes = runtime.GOMAXPROCS(0)
		}
		tr = trace.NewTracer(lanes, 1<<14)
		trace.SetEnabled(true)
		cfg.Tracer = tr
	}

	var engPtr atomic.Pointer[campaign.Engine]
	if httpAddr != "" {
		serveIntrospection(httpAddr, engPtr.Load, tr)
		fmt.Printf("ghost-fuzz: introspection on %s (/metrics /debug/pprof/ /spans /campaign)\n", httpAddr)
	}

	eng, err := campaign.Start(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		return 2
	}
	engPtr.Store(eng)
	rep, err := eng.Wait()
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		return 2
	}
	if traceOut != "" {
		if werr := writeChromeTrace(tr, traceOut); werr != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", werr)
			return 2
		}
		fmt.Printf("span dump: %s (load in Perfetto or chrome://tracing; %d spans dropped at the rings)\n",
			traceOut, tr.Dropped())
	}

	fmt.Printf("\n%d execs in %v = %.1f execs/s across %d workers\n",
		rep.Execs, rep.Elapsed.Round(time.Millisecond), rep.ExecsPerSec, max(cfg.Workers, 1))
	fmt.Printf("coverage: impl %d/%d (%.1f%%), spec %d/%d (%.1f%%); %d novel runs, corpus %d\n",
		rep.Coverage.ImplCovered, rep.Coverage.ImplTotal,
		coverage.Percent(rep.Coverage.ImplCovered, rep.Coverage.ImplTotal),
		rep.Coverage.SpecCovered, rep.Coverage.SpecTotal,
		coverage.Percent(rep.Coverage.SpecCovered, rep.Coverage.SpecTotal),
		rep.NovelRuns, rep.CorpusSize)

	if len(rep.Findings) == 0 {
		fmt.Println("no findings")
		return 0
	}
	for i, f := range rep.Findings {
		fmt.Printf("\n=== finding %d (worker %d, exec %d) ===\n", i+1, f.Worker, f.Exec)
		for j, alarm := range f.Failures {
			if j == 3 {
				fmt.Printf("  … %d more alarms\n", len(f.Failures)-j)
				break
			}
			fmt.Printf("  ALARM %v\n", alarm)
		}
		if !f.Reproducible {
			fmt.Printf("  NOT reproducible on replay (%d-op trace kept unminimized)\n", f.Trace.Len())
			continue
		}
		fmt.Printf("  minimized %d ops -> %d ops (%d replays):\n%s",
			f.Trace.Len(), f.Min.Len(), f.ShrinkReplays, indent(f.Min.String()))
		if f.Sched != nil {
			if f.SchedErr != "" {
				fmt.Printf("  scheduler error: %s\n", f.SchedErr)
			}
			fmt.Printf("  schedule (sched-seed %d, %d -> %d steps): %s\n",
				f.SchedSeed, f.Sched.Len(), f.MinSched.Len(), f.MinSched)
		}
		if len(f.Failures) > 0 && len(f.Failures[0].History) > 0 {
			fmt.Printf("  flight recorder (%d trap events on failing CPU; newest is the failure)\n",
				len(f.Failures[0].History))
		}
		switch {
		case f.FromCorpus && f.Sched != nil:
			fmt.Printf("  repro: replay the minimized (trace, schedule) pair on a %d-vCPU boot\n", cfg.NrCPUs)
		case f.FromCorpus:
			fmt.Printf("  repro: replay the minimized trace (run extended a corpus seed)\n")
		case f.Sched != nil:
			fmt.Printf("  repro: ghost-fuzz -workers 1 -seed %d -steps %d -cpus %d -sched-fuzz%s (schedule re-derived from the seed)\n",
				f.Seed, cfg.StepsPerRun, cfg.NrCPUs, bugArgs(cfg.Bugs))
		default:
			fmt.Printf("  repro: ghost-fuzz -workers 1 -seed %d -steps %d%s\n",
				f.Seed, cfg.StepsPerRun, bugArgs(cfg.Bugs))
		}
	}
	return 1
}

// writeChromeTrace dumps the tracer's spans as Chrome trace-event
// JSON.
func writeChromeTrace(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// bugArgs renders the -bug flag needed to reproduce a buggy-build run.
func bugArgs(bugs []faults.Bug) string {
	if len(bugs) == 0 {
		return ""
	}
	names := make([]string, len(bugs))
	for i, b := range bugs {
		names[i] = string(b)
	}
	return " -bug " + strings.Join(names, ",")
}

func runMatrix(base campaign.Config, skipFlag string) int {
	skip := map[faults.Bug]string{}
	if skipFlag != "" {
		for _, pair := range strings.Split(skipFlag, ";") {
			name, reason, ok := strings.Cut(pair, "=")
			if !ok || reason == "" {
				fmt.Fprintf(os.Stderr, "bad -skip entry %q (want bug=reason)\n", pair)
				return 2
			}
			skip[faults.Bug(strings.TrimSpace(name))] = reason
		}
	}
	fmt.Printf("ghost-fuzz: fault-sweep over %d bugs, budget %d execs each\n",
		len(faults.All()), base.MaxExecs)
	base.MaxFindings = 1
	matrix := campaign.FaultSweep(base, faults.All(), skip)
	fmt.Print(campaign.FormatMatrix(matrix))

	missed := 0
	for _, m := range matrix {
		if !m.Skipped && (!m.Detected || m.Err != nil) {
			missed++
		}
	}
	if missed > 0 {
		fmt.Printf("MISSED %d bugs\n", missed)
		return 1
	}
	fmt.Println("all non-skip-listed bugs detected")
	return 0
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
