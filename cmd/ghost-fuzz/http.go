package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"ghostspec/internal/campaign"
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

// newIntrospectionMux builds the live-introspection handler set served
// by -http:
//
//	/metrics       Prometheus text exposition of the telemetry registry
//	/debug/pprof/  the standard Go profiling endpoints
//	/spans         the tracer's recent spans, newest state of each lane
//	/campaign      live campaign status as JSON (execs/sec, corpus,
//	               coverage, per-worker health)
//
// The engine getter is called per request: the campaign may not have
// started yet (boot check) or may already be done when a poll arrives.
func newIntrospectionMux(eng func() *campaign.Engine, tr *trace.Tracer) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		telemetry.Snapshot().WritePrometheus(w)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		if tr == nil {
			fmt.Fprintln(w, "(tracing not enabled)")
			return
		}
		spans := tr.Spans()
		const maxDump = 512
		if len(spans) > maxDump {
			fmt.Fprintf(w, "(%d spans recorded, newest %d shown; %d dropped at the rings)\n",
				len(spans), maxDump, tr.Dropped())
			spans = spans[len(spans)-maxDump:]
		}
		fmt.Fprint(w, trace.FormatSpans(spans, 0))
	})

	mux.HandleFunc("/campaign", func(w http.ResponseWriter, r *http.Request) {
		e := eng()
		if e == nil {
			http.Error(w, `{"error":"campaign not running"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(e.Status())
	})

	return mux
}

// serveIntrospection starts the -http listener in the background. The
// campaign outlives no one: the process exits when the run completes,
// taking the listener with it, so there is no graceful-shutdown dance.
func serveIntrospection(addr string, eng func() *campaign.Engine, tr *trace.Tracer) {
	srv := &http.Server{Addr: addr, Handler: newIntrospectionMux(eng, tr)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Printf("ghost-fuzz: -http %s: %v\n", addr, err)
		}
	}()
}
