// Fleet modes: -serve runs the coordinator service, -worker joins a
// running coordinator as one fleet member. The campaign shape flags
// (-steps, -cpus, -sched-fuzz, -big-memory, -bug, -seed) configure the
// coordinator, which hands them to every worker through shard
// assignments — workers only say where the coordinator is and how much
// local parallelism they bring.
//
//	ghost-fuzz -serve :7070 -shards 8 -duration 10m   # coordinator
//	ghost-fuzz -worker http://host:7070 -workers 4    # fleet member
package main

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"ghostspec/internal/campaign"
	"ghostspec/internal/coverage"
	"ghostspec/internal/faults"
	"ghostspec/internal/fleet"
	"ghostspec/internal/telemetry/trace"
)

// runServe runs the coordinator: the fleet API mounted next to the
// usual introspection endpoints, a periodic status line, and — when a
// duration is set — a final fleet summary with the fuzzing exit
// convention (non-zero when the fleet produced findings).
func runServe(addr string, cfg campaign.Config, shards int, roundExecs int64, lease time.Duration, duration time.Duration) int {
	ccfg := fleet.CoordinatorConfig{
		Shards:      shards,
		BaseSeed:    cfg.Seed,
		StepsPerRun: cfg.StepsPerRun,
		NrCPUs:      cfg.NrCPUs,
		SchedFuzz:   cfg.SchedFuzz,
		BigMemory:   cfg.BigMemory,
		Bugs:        bugNames(cfg.Bugs),
		RoundExecs:  roundExecs,
		Lease:       lease,
		Logf:        cfg.Logf,
	}
	coord := fleet.NewCoordinator(ccfg)

	mux := newIntrospectionMux(func() *campaign.Engine { return nil }, nil)
	mux.Handle("/fleet/v1/", coord.Mux())
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "ghost-fuzz: -serve %s: %v\n", addr, err)
			os.Exit(2)
		}
	}()
	fmt.Printf("ghost-fuzz: coordinator on %s (/fleet/v1/register /fleet/v1/report /fleet/v1/status /metrics)\n", addr)
	fmt.Printf("ghost-fuzz: %d shards, seed %d, %d execs/round, lease %v\n",
		shards, cfg.Seed, roundExecs, lease)

	var stop <-chan time.Time
	if duration > 0 {
		stop = time.After(duration)
	}
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			st := coord.Status()
			fmt.Printf("fleet: %d workers live, %d execs (%.1f/s), merged impl %d/%d, corpus %d, findings %d (+%d dup), reassigns %d\n",
				st.WorkersLive, st.Execs, st.ExecsPerSec,
				st.MergedImplCovered, st.MergedImplTotal,
				st.CorpusEntries, len(st.Findings), st.FindingsDuplicate, st.Reassigns)
		case <-stop:
			return printFleetSummary(coord.Status())
		}
	}
}

func printFleetSummary(st fleet.StatusResponse) int {
	fmt.Printf("\nfleet summary after %v:\n", st.Elapsed.Round(time.Second))
	fmt.Printf("  %d execs across %d workers; merged coverage impl %d/%d (%.1f%%), %d keys\n",
		st.Execs, len(st.Workers),
		st.MergedImplCovered, st.MergedImplTotal,
		coverage.Percent(st.MergedImplCovered, st.MergedImplTotal), st.MergedKeys)
	fmt.Printf("  corpus: %d entries (%d synced in, %d fanned out)\n",
		st.CorpusEntries, st.CorpusSynced, st.CorpusFanout)
	fmt.Printf("  findings: %d unique of %d reported (%d duplicates collapsed); %d shard reassigns\n",
		len(st.Findings), st.FindingsReported, st.FindingsDuplicate, st.Reassigns)
	for _, f := range st.Findings {
		fmt.Printf("  finding %s x%d from %v: %s (%d min ops, sched=%v)\n",
			f.Hash, f.Count, f.Workers, f.Alarm, f.MinOps, f.Sched)
	}
	if len(st.Findings) > 0 {
		return 1
	}
	return 0
}

// runWorker joins a coordinator as one fleet member. The worker's
// campaign shape arrives with each shard assignment; locally it only
// decides thread count and budget.
func runWorker(coordURL string, cfg campaign.Config, httpAddr, traceOut string) int {
	threads := cfg.Workers
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	host, _ := os.Hostname()
	wcfg := fleet.WorkerConfig{
		Coordinator: coordURL,
		Name:        fmt.Sprintf("%s:%d", host, os.Getpid()),
		Threads:     threads,
		Duration:    cfg.Duration,
		MaxExecs:    cfg.MaxExecs,
		Logf:        cfg.Logf,
	}

	var tr *trace.Tracer
	if httpAddr != "" || traceOut != "" {
		tr = trace.NewTracer(threads, 1<<14)
		trace.SetEnabled(true)
		wcfg.Tracer = tr
	}

	w := fleet.NewWorker(wcfg)
	if httpAddr != "" {
		serveIntrospection(httpAddr, w.Engine, tr)
		fmt.Printf("ghost-fuzz: worker introspection on %s\n", httpAddr)
	}
	fmt.Printf("ghost-fuzz: fleet worker %q -> %s (%d threads)\n", wcfg.Name, coordURL, threads)

	err := w.Run()
	if traceOut != "" && tr != nil {
		if werr := writeChromeTrace(tr, traceOut); werr != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", werr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet worker:", err)
		return 2
	}
	fmt.Printf("fleet worker done: %d execs\n", w.Execs())
	return 0
}

func bugNames(bugs []faults.Bug) []string {
	var names []string
	for _, b := range bugs {
		names = append(names, string(b))
	}
	return names
}
