// Command randtest runs a model-guided random hypercall campaign
// (paper §5): arbitrary API calls steered by an abstract model of the
// system so the host survives while the hypervisor gets hammered, with
// the ghost oracle checking every trap.
//
//	randtest -steps 100000 -seed 3
//	randtest -guided=false          # the unguided ablation baseline
//	randtest -bug memcache-size     # campaign against a buggy build
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/coverage"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
)

func main() {
	steps := flag.Int("steps", 20000, "generator steps")
	seed := flag.Int64("seed", 1, "generation seed")
	guided := flag.Bool("guided", true, "model-guided generation (false: uniform)")
	ghostOn := flag.Bool("ghost", true, "attach the ghost oracle")
	bugFlag := flag.String("bug", "", "inject a named bug")
	showCov := flag.Bool("coverage", true, "print the coverage report")
	maxAlarms := flag.Int("max-alarms", 10, "stop printing alarms after this many")
	flag.Parse()

	var inj *faults.Injector
	if *bugFlag != "" {
		inj = faults.NewInjector(faults.Bug(*bugFlag))
	}
	hv, err := hyp.New(hyp.Config{Inj: inj})
	if err != nil {
		fmt.Fprintln(os.Stderr, "boot:", err)
		os.Exit(1)
	}

	var rec *ghost.Recorder
	var inner hyp.Instrumentation
	if *ghostOn {
		rec = ghost.Attach(hv)
		inner = rec
		printed := 0
		rec.OnFailure = func(f ghost.Failure) {
			if printed < *maxAlarms {
				fmt.Printf("ALARM %v\n", f)
				printed++
			} else if printed == *maxAlarms {
				fmt.Println("… suppressing further alarms")
				printed++
			}
		}
	}
	cov := coverage.Wrap(hv, inner)
	hv.SetInstrumentation(cov)

	tr := randtest.New(proxy.New(hv), rec, *seed, *guided)
	start := time.Now()
	tr.Run(*steps)
	elapsed := time.Since(start)

	s := tr.Stats()
	fmt.Printf("\ncampaign: %v\n", s)
	perSec := float64(s.Calls) / elapsed.Seconds()
	fmt.Printf("throughput: %.0f hypercalls/s (%.0f/hour) over %v\n",
		perSec, perSec*3600, elapsed.Round(time.Millisecond))

	hcs := make([]hyp.HC, 0, len(s.ByHC))
	for hc := range s.ByHC {
		hcs = append(hcs, hc)
	}
	sort.Slice(hcs, func(i, j int) bool { return hcs[i] < hcs[j] })
	for _, hc := range hcs {
		fmt.Printf("  %-22v %d\n", hc, s.ByHC[hc])
	}

	if *showCov {
		fmt.Println()
		fmt.Print(cov.Snapshot())
	}
	if rec != nil {
		st := rec.Stats()
		fmt.Printf("\noracle: %d checks, %d passed, %d alarms\n", st.Checks, st.Passed, st.Failures)
		if st.Failures > 0 {
			os.Exit(1)
		}
	}
}
