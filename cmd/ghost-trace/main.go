// Command ghost-trace records a trace of oracle-checked traps to a
// JSON file, and replays traces offline — re-running the pure
// specification functions against the recorded ghost states, without
// a hypervisor. Useful as a regression corpus and for debugging a
// modified specification against a captured run.
//
//	ghost-trace -record trace.json -scenario suite
//	ghost-trace -record trace.json -scenario random -steps 5000 -bug share-wrong-perms
//	ghost-trace -replay trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
	"ghostspec/internal/suite"
	"ghostspec/internal/telemetry"
	spantrace "ghostspec/internal/telemetry/trace"
)

func main() {
	record := flag.String("record", "", "record a trace to this file")
	replay := flag.String("replay", "", "replay a trace from this file")
	scenario := flag.String("scenario", "suite", "what to record: suite | random")
	steps := flag.Int("steps", 5000, "random-scenario steps")
	seed := flag.Int64("seed", 1, "random-scenario seed")
	bugFlag := flag.String("bug", "", "inject a named bug while recording")
	spans := flag.String("spans", "", "also write an execution-span dump (Chrome trace-event JSON) to this file; random scenario only")
	flag.Parse()

	switch {
	case *record != "":
		if err := doRecord(*record, *scenario, *steps, *seed, *bugFlag, *spans); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *replay != "":
		if err := doReplay(*replay); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(path, scenario string, steps int, seed int64, bug, spansOut string) error {
	var inj *faults.Injector
	if bug != "" {
		inj = faults.NewInjector(faults.Bug(bug))
	}
	if spansOut != "" && scenario != "random" {
		// The suite boots dozens of systems; one flat span timeline
		// would interleave them meaninglessly.
		return fmt.Errorf("-spans is only supported with -scenario random")
	}

	var trace *ghost.Trace
	switch scenario {
	case "suite":
		// One trace across all 41 tests: collect per-system traces.
		trace = &ghost.Trace{}
		results := suite.Run(suite.Options{
			Ghost: true,
			Bugs:  injBugs(bug),
			Instrument: func(c *suite.Ctx) {
				c.Rec.OnEvent = func(ev ghost.TraceEvent) { trace.Append(ev) }
			},
		})
		s := suite.Summarise(results)
		fmt.Printf("suite: %d/%d passed, %d alarms\n", s.Passed, s.Total, s.AlarmCount)
	case "random":
		hcfg := hyp.Config{Inj: inj}
		var spanTr *spantrace.Tracer
		if spansOut != "" {
			spanTr = spantrace.NewTracer(1, 1<<16)
			spantrace.SetEnabled(true)
			hcfg.Tracer = spanTr
		}
		hv, err := hyp.New(hcfg)
		if err != nil {
			return err
		}
		rec := ghost.Attach(hv)
		trace = rec.RecordTrace()
		tr := randtest.New(proxy.New(hv), rec, seed, true)
		tr.Run(steps)
		fmt.Printf("random: %v, %d alarms\n", tr.Stats(), len(rec.Failures()))
		if spansOut != "" {
			sf, err := os.Create(spansOut)
			if err != nil {
				return err
			}
			if err := spanTr.WriteChrome(sf); err != nil {
				sf.Close()
				return err
			}
			if err := sf.Close(); err != nil {
				return err
			}
			fmt.Printf("span dump: %s (load in Perfetto or chrome://tracing; %d spans dropped)\n",
				spansOut, spanTr.Dropped())
		}
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Save(f); err != nil {
		return err
	}
	fmt.Printf("recorded %d events to %s\n", len(trace.Events), path)
	return nil
}

func injBugs(bug string) []faults.Bug {
	if bug == "" {
		return nil
	}
	return []faults.Bug{faults.Bug(bug)}
}

func doReplay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	trace, err := ghost.ReadTrace(f)
	if err != nil {
		return err
	}
	fails := ghost.Replay(trace)
	fmt.Printf("replayed %d events offline: %d disagreements\n", len(trace.Events), len(fails))
	printReplayMetrics()
	for i, fl := range fails {
		if i >= 10 {
			fmt.Printf("… %d more\n", len(fails)-10)
			break
		}
		fmt.Printf("event %d:\n%s\n", fl.Seq, fl.Detail)
	}
	if len(fails) > 0 {
		os.Exit(1)
	}
	return nil
}

// printReplayMetrics summarises the replay's own telemetry: how many
// spec checks ran and how long each took.
func printReplayMetrics() {
	if telemetry.Disabled() {
		return
	}
	s := telemetry.Snapshot()
	checks, _ := s.Counter("ghost_replay_checks_total")
	failures, _ := s.Counter("ghost_replay_failures_total")
	fmt.Printf("replay telemetry: %d checks, %d failures", checks, failures)
	if h, ok := s.Histogram("ghost_replay_check_latency_ns"); ok && h.Count > 0 {
		fmt.Printf(", check latency p50 <= %dns, p99 <= %dns", h.Quantile(0.5), h.Quantile(0.99))
	}
	fmt.Println()
}
