// Command ghostlint runs the repository's static lock-discipline and
// spec-invariant analyzers (internal/analysis) over a set of
// packages.
//
// Usage:
//
//	go run ./cmd/ghostlint [-strict] [-v] [packages...]
//
// Package patterns are directories, optionally ending in /... for
// recursion; the default is ./... from the module root. Exit status
// is 0 when no findings survive suppression, 1 when findings are
// reported, and 2 on load errors.
//
// The -strict flag disables //ghostlint:ignore suppressions; CI runs
// it against internal/bugdemo to prove the seeded lock-rank inversion
// is still detected. See docs/ANALYSIS.md for the analyzer catalogue,
// the //ghost:requires grammar and the lock-rank table.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ghostspec/internal/analysis"
)

func main() {
	strict := flag.Bool("strict", false, "ignore //ghostlint:ignore suppressions")
	verbose := flag.Bool("v", false, "report suppressed findings, loader warnings and type errors")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	ld, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghostlint:", err)
		os.Exit(2)
	}

	var dirs []string
	for _, pat := range patterns {
		expanded, err := expand(ld.ModRoot, pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ghostlint:", err)
			os.Exit(2)
		}
		dirs = append(dirs, expanded...)
	}

	var requested []*analysis.Package
	for _, dir := range dirs {
		pkg, err := ld.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghostlint: load %s: %v\n", dir, err)
			os.Exit(2)
		}
		requested = append(requested, pkg)
	}

	u := analysis.NewUniverse(ld)
	var kept, suppressed []analysis.Finding
	seen := make(map[string]bool)
	for _, pkg := range requested {
		if seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		for _, a := range analysis.Analyzers() {
			findings := a.Run(u, pkg)
			if *strict {
				kept = append(kept, findings...)
				continue
			}
			k, s := analysis.SplitSuppressed(pkg, findings)
			kept = append(kept, k...)
			suppressed = append(suppressed, s...)
		}
	}

	analysis.SortFindings(kept)
	for _, f := range kept {
		fmt.Println(relativize(ld.ModRoot, f))
	}
	if *verbose {
		analysis.SortFindings(suppressed)
		for _, f := range suppressed {
			fmt.Fprintf(os.Stderr, "suppressed: %s\n", relativize(ld.ModRoot, f))
		}
		for _, w := range ld.Warnings {
			fmt.Fprintf(os.Stderr, "warning: %s\n", w)
		}
		for _, pkg := range u.Pkgs {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "typecheck (%s): %v\n", pkg.Path, e)
			}
		}
	}
	if len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "ghostlint: %d finding(s)\n", len(kept))
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "ghostlint: clean (%d package(s) analyzed, %d finding(s) suppressed)\n",
			len(requested), len(suppressed))
	}
}

// expand turns one package pattern into package directories.
func expand(modRoot, pat string) ([]string, error) {
	if pat == "./..." || pat == "..." {
		return analysis.ModuleDirs(modRoot)
	}
	if base, ok := strings.CutSuffix(pat, "/..."); ok {
		root, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		sub, err := analysis.ModuleDirs(root)
		if err != nil {
			return nil, err
		}
		return sub, nil
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return nil, err
	}
	return []string{abs}, nil
}

// relativize shortens file paths for readability.
func relativize(modRoot string, f analysis.Finding) string {
	if rel, err := filepath.Rel(modRoot, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}
