// Command ghostlint runs the repository's static lock-discipline and
// spec-invariant analyzers (internal/analysis) over a set of
// packages.
//
// Usage:
//
//	go run ./cmd/ghostlint [-strict] [-v] [-json] [-budget d] [packages...]
//	go run ./cmd/ghostlint -write-preempt
//	go run ./cmd/ghostlint -check-preempt
//
// Package patterns are directories, optionally ending in /... for
// recursion; the default is ./... from the module root. Exit status
// is 0 when no findings survive suppression, 1 when findings are
// reported (or the preemption-point table has drifted), 2 on load
// errors, and 3 when -budget is exceeded.
//
// The -strict flag disables //ghostlint:ignore suppressions and
// additionally reports stale directives that cover no finding; CI
// runs it against internal/bugdemo to prove the seeded bugs are still
// detected. -json emits the findings as a machine-readable object on
// stdout (the CI lint job turns it into per-file annotations).
// -budget fails the run when analysis wall time exceeds the given
// duration, keeping the lint step's latency honest.
//
// -write-preempt regenerates the checked-in preemption-point table
// (internal/analysis/preempt/points_gen.go and .json) from the whole
// module; -check-preempt regenerates in memory and fails if the
// checked-in table differs. See docs/ANALYSIS.md for the analyzer
// catalogue, the annotation grammars and the table schema.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ghostspec/internal/analysis"
)

func main() {
	strict := flag.Bool("strict", false, "ignore //ghostlint:ignore suppressions and report stale ones")
	verbose := flag.Bool("v", false, "report suppressed findings, loader warnings and type errors")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON on stdout")
	budget := flag.Duration("budget", 0, "fail (exit 3) if analysis exceeds this wall time")
	writePreempt := flag.Bool("write-preempt", false, "regenerate internal/analysis/preempt from the module and exit")
	checkPreempt := flag.Bool("check-preempt", false, "verify the checked-in preemption-point table matches the source")
	flag.Parse()

	start := time.Now()

	ld, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghostlint:", err)
		os.Exit(2)
	}

	if *writePreempt || *checkPreempt {
		os.Exit(preemptTable(ld, *writePreempt))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var dirs []string
	for _, pat := range patterns {
		expanded, err := expand(ld.ModRoot, pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ghostlint:", err)
			os.Exit(2)
		}
		dirs = append(dirs, expanded...)
	}

	var requested []*analysis.Package
	for _, dir := range dirs {
		pkg, err := ld.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghostlint: load %s: %v\n", dir, err)
			os.Exit(2)
		}
		requested = append(requested, pkg)
	}

	u := analysis.NewUniverse(ld)
	var kept, suppressed []analysis.Finding
	seen := make(map[string]bool)
	for _, pkg := range requested {
		if seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		var all []analysis.Finding
		for _, a := range analysis.Analyzers() {
			all = append(all, a.Run(u, pkg)...)
		}
		if *strict {
			kept = append(kept, all...)
			// A suppression that covers no finding at all is dead weight
			// that would mask a future regression; -strict surfaces them.
			kept = append(kept, analysis.StaleSuppressions(pkg, all)...)
			continue
		}
		k, s := analysis.SplitSuppressed(pkg, all)
		kept = append(kept, k...)
		suppressed = append(suppressed, s...)
	}

	analysis.SortFindings(kept)
	analysis.SortFindings(suppressed)
	elapsed := time.Since(start)

	if *jsonOut {
		emitJSON(ld.ModRoot, kept, suppressed, len(requested), elapsed)
	} else {
		for _, f := range kept {
			fmt.Println(relativize(ld.ModRoot, f))
		}
	}
	if *verbose && !*jsonOut {
		for _, f := range suppressed {
			fmt.Fprintf(os.Stderr, "suppressed: %s\n", relativize(ld.ModRoot, f))
		}
		for _, w := range ld.Warnings {
			fmt.Fprintf(os.Stderr, "warning: %s\n", w)
		}
		for _, pkg := range u.Pkgs {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "typecheck (%s): %v\n", pkg.Path, e)
			}
		}
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "ghostlint: analysis took %v, over the %v budget\n",
			elapsed.Round(time.Millisecond), *budget)
		os.Exit(3)
	}
	if len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "ghostlint: %d finding(s)\n", len(kept))
		os.Exit(1)
	}
	if *verbose && !*jsonOut {
		fmt.Fprintf(os.Stderr, "ghostlint: clean (%d package(s) analyzed, %d finding(s) suppressed)\n",
			len(requested), len(suppressed))
	}
}

// jsonFinding is one finding in -json output, with a module-relative
// path.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func toJSON(modRoot string, fs []analysis.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		file := f.Pos.Filename
		if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonFinding{
			File: file, Line: f.Pos.Line, Col: f.Pos.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	return out
}

func emitJSON(modRoot string, kept, suppressed []analysis.Finding, pkgs int, elapsed time.Duration) {
	doc := struct {
		Findings   []jsonFinding `json:"findings"`
		Suppressed []jsonFinding `json:"suppressed"`
		Stats      struct {
			Packages   int   `json:"packages"`
			Findings   int   `json:"findings"`
			Suppressed int   `json:"suppressed"`
			ElapsedMS  int64 `json:"elapsed_ms"`
		} `json:"stats"`
	}{
		Findings:   toJSON(modRoot, kept),
		Suppressed: toJSON(modRoot, suppressed),
	}
	doc.Stats.Packages = pkgs
	doc.Stats.Findings = len(kept)
	doc.Stats.Suppressed = len(suppressed)
	doc.Stats.ElapsedMS = elapsed.Milliseconds()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "ghostlint:", err)
		os.Exit(2)
	}
}

// preemptTable regenerates the preemption-point table from the whole
// module and either writes it (write=true) or byte-compares it with
// the checked-in copy. Returns the process exit code.
func preemptTable(ld *analysis.Loader, write bool) int {
	dirs, err := analysis.ModuleDirs(ld.ModRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghostlint:", err)
		return 2
	}
	for _, dir := range dirs {
		if _, err := ld.LoadDir(dir); err != nil {
			fmt.Fprintf(os.Stderr, "ghostlint: load %s: %v\n", dir, err)
			return 2
		}
	}
	u := analysis.NewUniverse(ld)
	pts := analysis.ExtractPreemptPoints(u, ld.ModRoot)
	genDir := filepath.Join(ld.ModRoot, "internal", "analysis", "preempt")
	files := map[string][]byte{
		filepath.Join(genDir, "points_gen.go"):   analysis.RenderPreemptGo(pts),
		filepath.Join(genDir, "points_gen.json"): analysis.RenderPreemptJSON(pts),
	}
	if write {
		for path, data := range files {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "ghostlint:", err)
				return 2
			}
		}
		fmt.Printf("ghostlint: wrote %d preemption points to %s\n", len(pts), genDir)
		return 0
	}
	drift := false
	for path, want := range files {
		got, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghostlint: %s: %v (run -write-preempt)\n", path, err)
			drift = true
			continue
		}
		if !bytes.Equal(got, want) {
			fmt.Fprintf(os.Stderr,
				"ghostlint: %s is stale: the source has %d preemption points — run `go run ./cmd/ghostlint -write-preempt` and commit\n",
				path, len(pts))
			drift = true
		}
	}
	if drift {
		return 1
	}
	fmt.Printf("ghostlint: preemption-point table in sync (%d points)\n", len(pts))
	return 0
}

// expand turns one package pattern into package directories.
func expand(modRoot, pat string) ([]string, error) {
	if pat == "./..." || pat == "..." {
		return analysis.ModuleDirs(modRoot)
	}
	if base, ok := strings.CutSuffix(pat, "/..."); ok {
		root, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		sub, err := analysis.ModuleDirs(root)
		if err != nil {
			return nil, err
		}
		return sub, nil
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return nil, err
	}
	return []string{abs}, nil
}

// relativize shortens file paths for readability.
func relativize(modRoot string, f analysis.Finding) string {
	if rel, err := filepath.Rel(modRoot, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}
