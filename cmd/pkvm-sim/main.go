// Command pkvm-sim boots the simulated AVF stack — host, hypervisor,
// and a protected VM — runs a representative workload, and reports
// timing, coverage, and (with -ghost) the oracle's verdicts. This is
// the "boot Android in QEMU and exercise it" loop of the paper's
// development setup, scaled to the simulation.
//
//	pkvm-sim                 # boot + workload with the oracle
//	pkvm-sim -ghost=false    # bare implementation
//	pkvm-sim -vms 4 -rounds 50
//	pkvm-sim -metrics json   # dump the telemetry snapshot at exit
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/telemetry"
)

func main() {
	ghostOn := flag.Bool("ghost", true, "attach the ghost specification oracle")
	nVMs := flag.Int("vms", 2, "number of protected VMs to run")
	rounds := flag.Int("rounds", 20, "guest work rounds per VM")
	interp := flag.Bool("interp", true, "run odd-numbered VMs as interpreted guest programs")
	bugFlag := flag.String("bug", "", "inject a named bug")
	metricsFmt := flag.String("metrics", "", `dump the telemetry snapshot at exit: "json" or "prom"`)
	metricsEvery := flag.Int("metrics-every", 0, "also dump the snapshot after every N VMs (0 = off)")
	telemetryOff := flag.Bool("telemetry-off", false, "disable telemetry collection entirely")
	flag.Parse()

	if *telemetryOff {
		telemetry.SetDisabled(true)
	}

	var inj *faults.Injector
	if *bugFlag != "" {
		inj = faults.NewInjector(faults.Bug(*bugFlag))
	}

	bootStart := time.Now()
	hv, err := hyp.New(hyp.Config{Inj: inj})
	if err != nil {
		fmt.Fprintln(os.Stderr, "boot:", err)
		os.Exit(1)
	}
	var rec *ghost.Recorder
	if *ghostOn {
		rec = ghost.Attach(hv)
		rec.OnFailure = func(f ghost.Failure) {
			fmt.Printf("ALARM %v\n", f)
			fmt.Printf("  recent traps on cpu %d:\n%s", f.CPU,
				telemetry.FormatTrapEvents(f.History))
		}
	}
	d := proxy.New(hv)
	bootTime := time.Since(bootStart)
	fmt.Printf("booted: %d CPUs, %dMB RAM, ghost=%v (%v)\n",
		hv.Globals().NrCPUs, hv.Globals().RAMSize>>20, *ghostOn, bootTime.Round(time.Microsecond))

	workStart := time.Now()
	for v := 0; v < *nVMs; v++ {
		cpu := v % hv.Globals().NrCPUs
		var err error
		if *interp && v%2 == 1 {
			err = runProgramVM(d, cpu, *rounds)
		} else {
			err = runVM(d, cpu, *rounds)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "vm %d: %v\n", v, err)
			os.Exit(1)
		}
		if *metricsEvery > 0 && (v+1)%*metricsEvery == 0 {
			fmt.Printf("--- telemetry after vm %d ---\n", v)
			dumpMetrics(*metricsFmt)
		}
	}
	workTime := time.Since(workStart)

	fmt.Printf("workload: %d VMs x %d rounds in %v\n", *nVMs, *rounds, workTime.Round(time.Microsecond))
	printLatencySummary()
	failed := false
	if rec != nil {
		st := rec.Stats()
		fmt.Printf("oracle: %d traps, %d checks, %d passed, %d alarms, %d live maplets\n",
			st.Traps, st.Checks, st.Passed, st.Failures, st.MapletsLive)
		failed = st.Failures > 0
	}
	if *metricsFmt != "" {
		dumpMetrics(*metricsFmt)
	}
	if failed {
		os.Exit(1)
	}
}

// printLatencySummary reports hypercall latency percentiles from the
// telemetry histogram (upper bounds of the log2 buckets).
func printLatencySummary() {
	if telemetry.Disabled() {
		return
	}
	s := telemetry.Snapshot()
	h, ok := s.Histogram(`hyp_trap_latency_ns{reason="hvc"}`)
	if !ok || h.Count == 0 {
		return
	}
	fmt.Printf("hypercalls: %d, latency p50 <= %dns, p99 <= %dns, mean %.0fns\n",
		h.Count, h.Quantile(0.5), h.Quantile(0.99), h.Mean())
}

// dumpMetrics writes the current telemetry snapshot to stdout in the
// requested encoding (defaulting to JSON when -metrics-every fires
// without -metrics).
func dumpMetrics(format string) {
	var err error
	switch format {
	case "prom":
		err = telemetry.Snapshot().WritePrometheus(os.Stdout)
	default:
		err = telemetry.Snapshot().WriteJSON(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "telemetry dump:", err)
	}
}

// runProgramVM boots one protected VM whose guest is an interpreted
// program: it writes a counter into its memory in a loop, faulting the
// page in through the host on first touch, shares it, and halts. The
// host schedules it, services its faults, and reclaims everything.
func runProgramVM(d *proxy.Driver, cpu, rounds int) error {
	h, donated, err := d.InitVM(cpu, 1)
	if err != nil {
		return fmt.Errorf("init_vm: %w", err)
	}
	if err := d.InitVCPU(cpu, h, 0); err != nil {
		return err
	}
	mcPages, err := d.Topup(cpu, h, 0, 8)
	if err != nil {
		return err
	}
	page := uint64(16 << arch.PageShift)
	prog := []hyp.Insn{
		{Op: hyp.OpMovi, Dst: 1, Imm: uint64(rounds)},
		{Op: hyp.OpMovi, Dst: 3, Imm: page},
		{Op: hyp.OpMovi, Dst: 5, Imm: 0},
		{Op: hyp.OpMovi, Dst: 6, Imm: ^uint64(0)},
		{Op: hyp.OpStore, Dst: 1, Src: 3}, // 4: faults once, then stores the countdown
		{Op: hyp.OpAdd, Dst: 1, Src: 6},   // 5: counter--
		{Op: hyp.OpBne, Dst: 1, Src: 5, Imm: 4},
		{Op: hyp.OpShareHost, Src: 3},
		{Op: hyp.OpHalt},
	}
	if !d.HV.LoadGuestProgram(h, 0, prog) {
		return fmt.Errorf("program load failed")
	}
	if err := d.VCPULoad(cpu, h, 0); err != nil {
		return err
	}

	var guestPages []arch.PFN
	for i := 0; ; i++ {
		if i > rounds+16 {
			return fmt.Errorf("program guest never finished")
		}
		ex, err := d.VCPURun(cpu)
		if err != nil {
			return err
		}
		if ex.Code == hyp.RunExitMemAbort {
			pfn, err := d.AllocPage()
			if err != nil {
				return err
			}
			if err := d.MapGuest(cpu, pfn, uint64(ex.IPA)>>arch.PageShift); err != nil {
				return err
			}
			guestPages = append(guestPages, pfn)
			continue
		}
		if e := hyp.ErrnoFromReg(d.HV.CPUs[cpu].GuestRegs[0]); e == hyp.OK && len(guestPages) > 0 {
			break // ring shared: the guest is done
		}
	}
	if _, err := d.Read64(cpu, arch.IPA(guestPages[0].Phys())); err != nil {
		return fmt.Errorf("host read of shared ring: %w", err)
	}

	if err := d.VCPUPut(cpu); err != nil {
		return err
	}
	if err := d.TeardownVM(cpu, h); err != nil {
		return err
	}
	for _, set := range [][]arch.PFN{donated, guestPages, mcPages} {
		for _, pfn := range set {
			if err := d.ReclaimPage(cpu, pfn); err != nil {
				return fmt.Errorf("reclaim %#x: %w", uint64(pfn), err)
			}
			d.FreePage(pfn)
		}
	}
	return nil
}

// runVM boots one protected VM, gives it memory, runs guest rounds of
// write/read/share traffic, and tears everything down.
func runVM(d *proxy.Driver, cpu, rounds int) error {
	h, donated, err := d.InitVM(cpu, 1)
	if err != nil {
		return fmt.Errorf("init_vm: %w", err)
	}
	if err := d.InitVCPU(cpu, h, 0); err != nil {
		return fmt.Errorf("init_vcpu: %w", err)
	}
	mcPages, err := d.Topup(cpu, h, 0, 8)
	if err != nil {
		return fmt.Errorf("topup: %w", err)
	}
	if err := d.VCPULoad(cpu, h, 0); err != nil {
		return fmt.Errorf("load: %w", err)
	}

	// Give the guest a few pages.
	var guestPages []arch.PFN
	for gfn := uint64(16); gfn < 20; gfn++ {
		pfn, err := d.AllocPage()
		if err != nil {
			return err
		}
		if err := d.MapGuest(cpu, pfn, gfn); err != nil {
			return fmt.Errorf("map_guest: %w", err)
		}
		guestPages = append(guestPages, pfn)
	}

	// Guest work: writes, reads, a virtio-style shared ring.
	ring := arch.IPA(16 << arch.PageShift)
	d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestShareHost, IPA: ring})
	if _, err := d.VCPURun(cpu); err != nil {
		return err
	}
	for r := 0; r < rounds; r++ {
		ipa := arch.IPA((17 + uint64(r%3)) << arch.PageShift)
		d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestAccess, IPA: ipa, Write: true, Value: uint64(r)})
		if _, err := d.VCPURun(cpu); err != nil {
			return err
		}
		// Host reads the shared ring (borrowed access).
		if _, err := d.Read64(cpu, arch.IPA(guestPages[0].Phys())); err != nil {
			return err
		}
	}
	d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestUnshareHost, IPA: ring})
	if _, err := d.VCPURun(cpu); err != nil {
		return err
	}

	// Shut down and return every page to the host.
	if err := d.VCPUPut(cpu); err != nil {
		return fmt.Errorf("put: %w", err)
	}
	if err := d.TeardownVM(cpu, h); err != nil {
		return fmt.Errorf("teardown: %w", err)
	}
	for _, set := range [][]arch.PFN{donated, guestPages} {
		for _, pfn := range set {
			if err := d.ReclaimPage(cpu, pfn); err != nil {
				return fmt.Errorf("reclaim %#x: %w", uint64(pfn), err)
			}
			d.FreePage(pfn)
		}
	}
	// Memcache pages: some were consumed as guest table pages (now in
	// the reclaim set), some still sat in the reserve at teardown.
	for _, pfn := range mcPages {
		if err := d.ReclaimPage(cpu, pfn); err != nil {
			return fmt.Errorf("reclaim memcache %#x: %w", uint64(pfn), err)
		}
		d.FreePage(pfn)
	}
	return nil
}
