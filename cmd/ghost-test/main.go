// Command ghost-test runs the handwritten test suite (paper §5): 41
// tests, each against a freshly booted system, optionally with the
// ghost oracle attached and optionally with an injected bug.
//
//	ghost-test               # suite with the oracle on
//	ghost-test -ghost=false  # plain implementation run
//	ghost-test -bug share-wrong-perms
//	ghost-test -run share-basic -v
package main

import (
	"flag"
	"fmt"
	"os"

	"ghostspec/internal/faults"
	"ghostspec/internal/suite"
)

func main() {
	ghostOn := flag.Bool("ghost", true, "attach the ghost specification oracle")
	bugFlag := flag.String("bug", "", "inject a named bug (see -list-bugs)")
	listBugs := flag.Bool("list-bugs", false, "list injectable bugs and exit")
	filter := flag.String("run", "", "run only the named test")
	verbose := flag.Bool("v", false, "print every test, not just failures")
	flag.Parse()

	if *listBugs {
		for _, b := range faults.All() {
			fmt.Println(b)
		}
		return
	}

	opts := suite.Options{Ghost: *ghostOn, Filter: *filter}
	if *bugFlag != "" {
		opts.Bugs = []faults.Bug{faults.Bug(*bugFlag)}
	}

	results := suite.Run(opts)
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "no tests matched %q\n", *filter)
		os.Exit(2)
	}

	failed := 0
	for _, r := range results {
		status := "PASS"
		if !r.Passed() {
			status = "FAIL"
			failed++
		}
		if *verbose || !r.Passed() {
			tag := ""
			if r.Test.Concurrent {
				tag = " [concurrent]"
			}
			fmt.Printf("%s  %-36s (%v, %s%s)\n", status, r.Test.Name, r.Duration, r.Test.Kind, tag)
			if r.Err != nil {
				fmt.Printf("      impl: %v\n", r.Err)
			}
			for _, a := range r.Alarms {
				fmt.Printf("      oracle: %v\n", a)
			}
		}
	}

	s := suite.Summarise(results)
	fmt.Printf("\n%d tests (%d error-free, %d error-path, %d concurrent): %d passed, %d failed",
		s.Total, s.OKTests, s.ErrorTests, s.Concurrent, s.Passed, s.Failed)
	fmt.Printf("  [%v total, ghost=%v]\n", s.TotalDuration, *ghostOn)
	if s.AlarmCount > 0 {
		fmt.Printf("oracle alarms: %d\n", s.AlarmCount)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
