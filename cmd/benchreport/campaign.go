package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ghostspec/internal/campaign"
	"ghostspec/internal/coverage"
)

// The campaign-bench mode measures the parallel campaign engine:
// identical exec budgets run serially (1 worker) and sharded (8
// workers), and the throughputs land in a JSON artifact next to the
// ghost-bench numbers. The speedup is only meaningful on a machine
// with cores to spare — num_cpu/gomaxprocs are recorded so a CI
// runner's number is never misread against a laptop's.

type campaignLeg struct {
	Workers     int     `json:"workers"`
	Execs       int64   `json:"execs"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	NovelRuns   int64   `json:"novel_runs"`
	CorpusSize  int     `json:"corpus_size"`
	Findings    int     `json:"findings"`
}

type campaignBenchReport struct {
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	NumCPU      int         `json:"num_cpu"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	StepsPerRun int         `json:"steps_per_run"`
	Serial      campaignLeg `json:"serial"`
	Parallel    campaignLeg `json:"parallel_8"`
	Speedup     float64     `json:"speedup"`
}

func runCampaignBench(path string, execs int64) error {
	fmt.Println("==================== campaign benchmark ====================")
	report := campaignBenchReport{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		StepsPerRun: 300,
	}

	leg := func(workers int) (campaignLeg, error) {
		rep, err := campaign.Run(campaign.Config{
			Workers:     workers,
			StepsPerRun: report.StepsPerRun,
			Seed:        1,
			MaxExecs:    execs,
		})
		if err != nil {
			return campaignLeg{}, err
		}
		if len(rep.Findings) > 0 {
			return campaignLeg{}, fmt.Errorf("clean build produced findings: %v",
				rep.Findings[0].Failures[0])
		}
		l := campaignLeg{
			Workers:     workers,
			Execs:       rep.Execs,
			ElapsedMS:   float64(rep.Elapsed) / float64(time.Millisecond),
			ExecsPerSec: rep.ExecsPerSec,
			NovelRuns:   rep.NovelRuns,
			CorpusSize:  rep.CorpusSize,
			Findings:    len(rep.Findings),
		}
		fmt.Printf("  %d worker(s): %d execs in %v = %.1f execs/s (spec coverage %.1f%%)\n",
			workers, rep.Execs, rep.Elapsed.Round(time.Millisecond), rep.ExecsPerSec,
			coverage.Percent(rep.Coverage.SpecCovered, rep.Coverage.SpecTotal))
		return l, nil
	}

	var err error
	if report.Serial, err = leg(1); err != nil {
		return err
	}
	if report.Parallel, err = leg(8); err != nil {
		return err
	}
	if report.Serial.ExecsPerSec > 0 {
		report.Speedup = report.Parallel.ExecsPerSec / report.Serial.ExecsPerSec
	}
	fmt.Printf("  speedup 8w/1w: %.2fx on %d CPUs (GOMAXPROCS %d)\n",
		report.Speedup, report.NumCPU, report.GOMAXPROCS)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}
