package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ghostspec/internal/campaign"
	"ghostspec/internal/coverage"
)

// The campaign-bench mode measures the parallel campaign engine:
// identical exec budgets run serially (1 worker) and sharded (8
// workers) with copy-on-write snapshots on, plus a serial leg with
// snapshots off (fresh boot + full parent replay per exec — the old
// execution model, kept as the ablation baseline). The throughputs
// land in a JSON artifact next to the ghost-bench numbers.
//
// Two gates make this a regression test rather than a report:
//
//   - the snapshot speedup (serial snap-on / serial snap-off) must
//     clear snapshotSpeedupFloor, or Pass=false and the run exits
//     non-zero — the CoW machinery earning less than the floor means
//     restores got expensive or forks stopped landing;
//   - the snapshot legs run with the conformance differ enabled
//     (every conformanceEvery-th exec is diffed against a freshly
//     booted and replayed reference), so a restore that diverges from
//     ground truth fails the benchmark outright instead of producing
//     fast-but-wrong numbers.
//
// The parallel speedup is only meaningful on a machine with cores to
// spare — num_cpu/gomaxprocs are recorded so a CI runner's number is
// never misread against a laptop's.

const (
	// snapshotSpeedupFloor gates serial snap-on vs snap-off throughput.
	// Measured 1.45-1.55x on a 1-CPU CI box — the ablation baseline
	// shares every oracle optimisation, so this ratio isolates just the
	// boot+replay cost snapshots remove, not the full win over the
	// pre-snapshot engine (2.2x; see PERFORMANCE.md). The floor leaves
	// noise headroom (loaded runners have measured as low as 1.21x)
	// while still catching a machinery regression that forfeits the
	// win.
	snapshotSpeedupFloor = 1.2

	// conformanceEvery is the differ cadence for the benchmark legs:
	// frequent enough that every leg cross-checks several restores,
	// cheap enough not to dominate the timing.
	conformanceEvery = 32
)

type campaignLeg struct {
	Workers int `json:"workers"`
	// Gomaxprocs is recorded per leg, not just once per report: the
	// parallel legs are only meaningful relative to the scheduler
	// parallelism they actually ran under.
	Gomaxprocs int `json:"gomaxprocs"`
	// NumVCPU is the virtual-CPU count of every system the leg boots —
	// the real configured value (campaign.Config.NrCPUs), which used to
	// be invisible here and silently reported as a single-CPU machine.
	NumVCPU     int     `json:"num_vcpu"`
	SchedFuzz   bool    `json:"sched_fuzz"`
	Snapshots   bool    `json:"snapshots"`
	Execs       int64   `json:"execs"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	ExecsPerSec float64 `json:"execs_per_sec"`
	NovelRuns   int64   `json:"novel_runs"`
	CorpusSize  int     `json:"corpus_size"`
	Findings    int     `json:"findings"`
	// Snapshot accounting (zero on the snap-off leg): restores, corpus
	// forks that skipped replay, frames rewritten, and full-replay
	// fallbacks.
	SnapshotRestores    int64 `json:"snapshot_restores"`
	SnapshotParentHits  int64 `json:"snapshot_parent_hits"`
	SnapshotDirtyFrames int64 `json:"snapshot_dirty_frames"`
	SnapshotFallbacks   int64 `json:"snapshot_fallback_full"`
}

type campaignBenchReport struct {
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	NumCPU      int         `json:"num_cpu"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	StepsPerRun int         `json:"steps_per_run"`
	Serial      campaignLeg `json:"serial"`
	Parallel    campaignLeg `json:"parallel_8"`
	SerialOff   campaignLeg `json:"serial_nosnap"`
	// Parallel2CPU is the multi-vCPU leg: two workers, two-vCPU
	// systems, schedule fuzzing on — every clean serial exec re-runs
	// under a seeded deterministic schedule, so its throughput prices
	// the scheduler (sched_preemptions, parked time) against the
	// serial legs. Ungated: it exists to be read, not raced.
	Parallel2CPU campaignLeg `json:"parallel_2cpu"`
	// Speedup is parallel vs serial (both snap-on) — only computed when
	// the runtime can actually schedule the legs in parallel. On a
	// GOMAXPROCS=1 box the ratio would measure goroutine-switch
	// contention, not scaling, so it is omitted and
	// SpeedupSkippedReason says why. SnapshotSpeedup is serial snap-on
	// vs serial snap-off and is gated by SpeedupFloor.
	Speedup              float64 `json:"speedup,omitempty"`
	SpeedupSkippedReason string  `json:"speedup_skipped_reason,omitempty"`
	SnapshotSpeedup      float64 `json:"snapshot_speedup"`
	SpeedupFloor         float64 `json:"snapshot_speedup_floor"`
	// Fleet is the distributed-campaign leg: coordinator + N workers
	// over loopback HTTP, gated on coordination overhead.
	Fleet *fleetBench `json:"fleet,omitempty"`
	Pass  bool        `json:"pass"`
}

func runCampaignBench(path string, execs int64) error {
	fmt.Println("==================== campaign benchmark ====================")
	report := campaignBenchReport{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		StepsPerRun:  300,
		SpeedupFloor: snapshotSpeedupFloor,
	}

	leg := func(workers int, noSnapshot bool, nrCPUs int, schedFuzz bool) (campaignLeg, error) {
		rep, err := campaign.Run(campaign.Config{
			Workers:          workers,
			StepsPerRun:      report.StepsPerRun,
			Seed:             1,
			MaxExecs:         execs,
			NoSnapshot:       noSnapshot,
			ConformanceEvery: conformanceEvery,
			NrCPUs:           nrCPUs,
			SchedFuzz:        schedFuzz,
		})
		if err != nil {
			// Includes snapshot conformance divergence — a correctness
			// failure of the fork machinery, fatal to the benchmark.
			return campaignLeg{}, err
		}
		if len(rep.Findings) > 0 {
			return campaignLeg{}, fmt.Errorf("clean build produced findings: %v",
				rep.Findings[0].Failures[0])
		}
		l := campaignLeg{
			Workers:             workers,
			Gomaxprocs:          runtime.GOMAXPROCS(0),
			NumVCPU:             nrCPUs,
			SchedFuzz:           schedFuzz,
			Snapshots:           !noSnapshot,
			Execs:               rep.Execs,
			ElapsedMS:           float64(rep.Elapsed) / float64(time.Millisecond),
			ExecsPerSec:         rep.ExecsPerSec,
			NovelRuns:           rep.NovelRuns,
			CorpusSize:          rep.CorpusSize,
			Findings:            len(rep.Findings),
			SnapshotRestores:    rep.SnapshotRestores,
			SnapshotParentHits:  rep.SnapshotParentHits,
			SnapshotDirtyFrames: rep.SnapshotDirtyFrames,
			SnapshotFallbacks:   rep.SnapshotFallbacks,
		}
		mode := "snapshots"
		if noSnapshot {
			mode = "fresh boots"
		}
		if schedFuzz {
			mode += ", sched-fuzz"
		}
		fmt.Printf("  %d worker(s), %d vCPUs, %s: %d execs in %v = %.1f execs/s (spec coverage %.1f%%)\n",
			workers, nrCPUs, mode, rep.Execs, rep.Elapsed.Round(time.Millisecond), rep.ExecsPerSec,
			coverage.Percent(rep.Coverage.SpecCovered, rep.Coverage.SpecTotal))
		if !noSnapshot {
			fmt.Printf("    restores=%d parent-forks=%d dirty-frames=%d fallbacks=%d\n",
				l.SnapshotRestores, l.SnapshotParentHits, l.SnapshotDirtyFrames, l.SnapshotFallbacks)
		}
		return l, nil
	}

	var err error
	if report.Serial, err = leg(1, false, 4, false); err != nil {
		return err
	}
	if report.Parallel, err = leg(8, false, 4, false); err != nil {
		return err
	}
	if report.SerialOff, err = leg(1, true, 4, false); err != nil {
		return err
	}
	if report.Parallel2CPU, err = leg(2, false, 2, true); err != nil {
		return err
	}
	if report.GOMAXPROCS <= 1 {
		report.SpeedupSkippedReason = "gomaxprocs=1: parallel and serial legs share one OS " +
			"thread, so parallel-vs-serial would measure scheduler contention, not scaling"
		fmt.Printf("  speedup 8w/1w: skipped (%s)\n", report.SpeedupSkippedReason)
	} else if report.Serial.ExecsPerSec > 0 {
		report.Speedup = report.Parallel.ExecsPerSec / report.Serial.ExecsPerSec
		fmt.Printf("  speedup 8w/1w: %.2fx on %d CPUs (GOMAXPROCS %d)\n",
			report.Speedup, report.NumCPU, report.GOMAXPROCS)
	}
	if report.SerialOff.ExecsPerSec > 0 {
		report.SnapshotSpeedup = report.Serial.ExecsPerSec / report.SerialOff.ExecsPerSec
	}
	report.Pass = report.SnapshotSpeedup >= snapshotSpeedupFloor
	fmt.Printf("  snapshot speedup (serial on/off): %.2fx (floor %.2fx)\n",
		report.SnapshotSpeedup, snapshotSpeedupFloor)

	fleetRep, err := runFleetBench(execs)
	if err != nil {
		return err
	}
	report.Fleet = fleetRep
	report.Pass = report.Pass && fleetRep.Pass

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	if report.SnapshotSpeedup < snapshotSpeedupFloor {
		return fmt.Errorf("snapshot speedup %.2fx below floor %.2fx",
			report.SnapshotSpeedup, snapshotSpeedupFloor)
	}
	if !report.Pass {
		return fmt.Errorf("fleet leg failed its gates (see %s)", path)
	}
	return nil
}
