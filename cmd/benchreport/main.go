// Command benchreport regenerates every quantitative claim of the
// paper's evaluation (§5-6), printing paper-reported vs measured
// values side by side. See DESIGN.md for the experiment index.
//
//	benchreport                        # all experiments
//	benchreport -exp E4                # one experiment
//	benchreport -telemetry snap.json   # summarise a pkvm-sim -metrics dump
//	benchreport -ghost-bench out.json  # benchmark smoke run -> JSON artifact
//	benchreport -campaign out.json     # campaign engine serial vs 8 workers -> JSON artifact
//	benchreport -tlb out.json          # software TLB vs full walks -> JSON artifact
//	benchreport -profile out.json      # traced campaign -> per-exec phase attribution + overhead gates
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ghostspec/internal/bugdemo"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/coverage"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
	"ghostspec/internal/suite"
	"ghostspec/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: E1..E8 or all")
	randSteps := flag.Int("rand-steps", 20000, "random-campaign steps for E3")
	reps := flag.Int("reps", 5, "timing repetitions for E7")
	telemetryFile := flag.String("telemetry", "", "telemetry snapshot JSON (from pkvm-sim -metrics json) to summarise")
	ghostBench := flag.String("ghost-bench", "", "run the ghost benchmark smoke set and write results to this JSON file")
	campaignBench := flag.String("campaign", "", "benchmark the campaign engine (serial and 8 workers with snapshots, serial without) and write results to this JSON file; fails on speedup-floor or conformance regressions")
	campaignExecs := flag.Int64("campaign-execs", 256, "executions per campaign benchmark leg")
	tlbBench := flag.String("tlb", "", "benchmark the software TLB (hit path vs full walks) and write results to this JSON file")
	profile := flag.String("profile", "", "run a traced campaign, write the per-exec phase-attribution profile to this JSON file, and enforce the attribution/overhead gates")
	profileTrace := flag.String("profile-trace", "", "with -profile: also write the campaign's span dump as Chrome trace-event JSON to this file")
	flag.Parse()

	if *profile != "" {
		if err := runProfile(*profile, *profileTrace); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			os.Exit(1)
		}
		return
	}

	if *tlbBench != "" {
		if err := runTLBBench(*tlbBench); err != nil {
			fmt.Fprintln(os.Stderr, "tlb-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *ghostBench != "" {
		if err := runGhostBench(*ghostBench); err != nil {
			fmt.Fprintln(os.Stderr, "ghost-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *campaignBench != "" {
		if err := runCampaignBench(*campaignBench, *campaignExecs); err != nil {
			fmt.Fprintln(os.Stderr, "campaign-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *telemetryFile != "" {
		if err := summariseTelemetry(*telemetryFile); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry:", err)
			os.Exit(1)
		}
		if *exp == "all" {
			return // snapshot summary only; pass -exp to also run experiments
		}
	}

	exps := map[string]func() error{
		"E1": e1Suite, "E2": e2Coverage, "E3": func() error { return e3Random(*randSteps) },
		"E4": e4Synthetic, "E5": e5RealBugs, "E6": e6SpecSize,
		"E7": func() error { return e7Performance(*reps) }, "E8": e8Invariants,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"}

	failed := false
	for _, name := range order {
		if *exp != "all" && !strings.EqualFold(*exp, name) {
			continue
		}
		fmt.Printf("==================== %s ====================\n", name)
		if err := exps[name](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// E1 — handwritten tests (§5): 41 tests, 19 error-free / 22 error,
// a handful concurrent; all pass under the oracle.
func e1Suite() error {
	results := suite.Run(suite.Options{Ghost: true})
	s := suite.Summarise(results)
	fmt.Println("paper:    41 handwritten tests — 19 error-free, 22 error paths, a handful concurrent; all pass")
	fmt.Printf("measured: %d tests — %d error-free, %d error paths, %d concurrent; %d pass, %d fail, %d oracle alarms (%v)\n",
		s.Total, s.OKTests, s.ErrorTests, s.Concurrent, s.Passed, s.Failed, s.AlarmCount, s.TotalDuration.Round(time.Millisecond))
	if s.Failed != 0 || s.AlarmCount != 0 {
		return fmt.Errorf("suite not clean")
	}
	return nil
}

// E2 — coverage (§5): 100% of reachable handler branches from the
// handwritten suite; spec coverage 92% (459/497) with the residue in
// rare error cases.
func e2Coverage() error {
	ghost.ResetSpecCoverage()
	agg, results := suite.CoverageBaseline()
	if s := suite.Summarise(results); s.Failed != 0 {
		return fmt.Errorf("suite failed under coverage")
	}
	r := agg.Report()
	specCov, specTotal, specMissing := ghost.SpecCoverage()
	fmt.Println("paper:    100% line coverage of reachable host_share_hyp call graph; spec 92% (459/497), missing rare error cases")
	fmt.Printf("measured: impl outcome branches %d/%d (%.1f%%)\n",
		r.ImplCovered, r.ImplTotal, coverage.Percent(r.ImplCovered, r.ImplTotal))
	fmt.Printf("measured: spec branch regions %d/%d (%.1f%%), missing: %v\n",
		specCov, specTotal, coverage.Percent(specCov, specTotal), specMissing)
	fmt.Println("detail:")
	fmt.Print(indent(r.String()))
	return nil
}

// E3 — random testing (§5): ~200k hypercalls/hour in QEMU; guided
// generation avoids host crashes and progresses the state machine
// (the unguided ablation shows what the model buys).
func e3Random(steps int) error {
	run := func(guided bool) (randtest.Stats, time.Duration, int) {
		hv, err := hyp.New(hyp.Config{})
		if err != nil {
			panic(err)
		}
		rec := ghost.Attach(hv)
		tr := randtest.New(proxy.New(hv), rec, 1, guided)
		start := time.Now()
		tr.Run(steps)
		return tr.Stats(), time.Since(start), len(rec.Failures())
	}
	gs, gd, galarms := run(true)
	us, ud, _ := run(false)

	rate := float64(gs.Calls) / gd.Seconds()
	fmt.Println("paper:    ~200,000 hypercalls/hour (QEMU, Mac Mini M2); model-guided generation avoids host crashes")
	fmt.Printf("measured: guided   %d calls in %v = %.0f calls/s (%.0fM/hour), %d host crashes, %d VMs created, %d oracle alarms\n",
		gs.Calls, gd.Round(time.Millisecond), rate, rate*3600/1e6, gs.HostCrashes, gs.VMsCreated, galarms)
	fmt.Printf("ablation: unguided %d calls in %v, %d host crashes, %d VMs created, %d/%d calls errored\n",
		us.Calls, ud.Round(time.Millisecond), us.HostCrashes, us.VMsCreated, us.Errnos, us.Calls)
	if gs.HostCrashes != 0 {
		return fmt.Errorf("guided campaign crashed the host")
	}
	if galarms != 0 {
		return fmt.Errorf("clean campaign raised alarms")
	}
	return nil
}

// E4 — synthetic bug testing (§5): injected bugs are detected.
func e4Synthetic() error {
	return runDetection(false)
}

// E5 — the five real pKVM bugs (§6), re-created and detected.
func e5RealBugs() error {
	return runDetection(true)
}

func runDetection(realOnly bool) error {
	if realOnly {
		fmt.Println("paper:    5 real pKVM bugs found (memcache alignment, memcache size, vcpu load race, host fault robustness, linear-map overlap)")
	} else {
		fmt.Println("paper:    synthetic bugs injected into pKVM are all flagged by the oracle")
	}
	missed := 0
	for _, r := range bugdemo.DetectAll() {
		if realOnly != r.Demo.Real {
			continue
		}
		verdict := "DETECTED"
		if !r.Detected {
			verdict = "MISSED"
			missed++
		}
		kind := ""
		if len(r.Alarms) > 0 {
			kind = fmt.Sprintf(" [%v]", r.Alarms[0].Kind)
		}
		fmt.Printf("  %-26s %s%s\n", r.Demo.Bug, verdict, kind)
		if r.DriveErr != nil {
			fmt.Printf("      scenario error: %v\n", r.DriveErr)
			missed++
		}
	}
	if missed > 0 {
		return fmt.Errorf("%d bugs missed", missed)
	}
	fmt.Println("measured: all detected")
	return nil
}

// E6 — specification size (§6): impl ≈11k LoC; spec 2600 (hypercalls)
// + 1300 (abstraction) + 4500 (ADTs) ≈ 14k total.
func e6SpecSize() error {
	counts, err := countLoC(".")
	if err != nil {
		return err
	}
	fmt.Println("paper:    impl ~11,000 LoC; spec ~14,000 (2600 hypercall specs + 1300 abstraction + 4500 ADTs + boilerplate)")
	fmt.Println("measured (this reproduction, non-test Go LoC):")
	total := 0
	for _, c := range counts {
		fmt.Printf("  %-46s %6d\n", c.name, c.lines)
		total += c.lines
	}
	fmt.Printf("  %-46s %6d\n", "total", total)
	return nil
}

// E7 — performance (§6): boot overhead 3.2x (1.49s→4.76s), handwritten
// tests 11.5x (1.07s→12.3s), ghost memory ≈18MB, on 4 cores.
func e7Performance(reps int) error {
	timeIt := func(f func()) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	bootOff := timeIt(func() {
		if _, err := hyp.New(hyp.Config{}); err != nil {
			panic(err)
		}
	})
	bootOn := timeIt(func() {
		hv, err := hyp.New(hyp.Config{})
		if err != nil {
			panic(err)
		}
		ghost.Attach(hv)
	})
	suiteOff := timeIt(func() { suite.Run(suite.Options{Ghost: false}) })
	suiteOn := timeIt(func() { suite.Run(suite.Options{Ghost: true}) })

	// Memory impact after a working session.
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		return err
	}
	rec := ghost.Attach(hv)
	tr := randtest.New(proxy.New(hv), rec, 99, true)
	tr.Run(2000)
	st := rec.Stats()

	fmt.Println("paper:    boot 1.49s→4.76s (3.2x); handwritten tests 1.07s→12.3s (11.5x); ghost memory ~18MB")
	fmt.Printf("measured: boot  %v → %v (%.1fx)\n", bootOff, bootOn, ratio(bootOn, bootOff))
	fmt.Printf("measured: suite %v → %v (%.1fx)\n",
		suiteOff.Round(time.Millisecond), suiteOn.Round(time.Millisecond), ratio(suiteOn, suiteOff))
	fmt.Printf("measured: ghost state after 2000 random steps: %d live maplets; %d simulated frames touched (%.1f MB)\n",
		st.MapletsLive, hv.Mem.FrameCount(), float64(hv.Mem.FrameCount())*4096/1e6)
	fmt.Printf("measured: time inside ghost hooks during those steps: %v across %d traps (%.0fµs/trap)\n",
		st.HookTime.Round(time.Millisecond), st.Traps,
		float64(st.HookTime.Microseconds())/float64(max(st.Traps, 1)))
	if h, ok := telemetry.Snapshot().Histogram(`hyp_trap_latency_ns{reason="hvc"}`); ok && h.Count > 0 {
		fmt.Printf("measured: live hypercall latency over %d calls: p50 <= %dns, p99 <= %dns\n",
			h.Count, h.Quantile(0.5), h.Quantile(0.99))
	}
	if suiteOn <= suiteOff {
		return fmt.Errorf("ghost suite not slower than bare suite — instrumentation inert?")
	}
	return nil
}

func ratio(a, b time.Duration) float64 { return float64(a) / float64(b) }

// E8 — the §4.4 invariants: non-interference outside locks and
// page-table footprint separation, demonstrated by violating each.
func e8Invariants() error {
	fmt.Println("paper:    non-interference on the abstract state outside locks; separation of page-table footprints")

	// Non-interference: corrupt the host table between hypercalls.
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		return err
	}
	rec := ghost.Attach(hv)
	d := proxy.New(hv)
	pfn, _ := d.AllocPage()
	if err := d.ShareHyp(0, pfn); err != nil {
		return err
	}
	corruptHostTable(hv)
	pfn2, _ := d.AllocPage()
	_ = d.ShareHyp(0, pfn2)
	ni := false
	for _, f := range rec.Failures() {
		if f.Kind == ghost.FailNonInterference {
			ni = true
		}
	}
	fmt.Printf("measured: non-interference check fires on out-of-band table change: %v\n", ni)
	if !ni {
		return fmt.Errorf("non-interference violation undetected")
	}
	fmt.Println("measured: separation check active on every lock release (see internal/core/ghost separation tests)")
	return nil
}

// summariseTelemetry ingests a telemetry snapshot JSON (as written by
// pkvm-sim -metrics json) and reports the headline latency and traffic
// numbers. Quantiles are upper bounds of the log2 histogram buckets.
func summariseTelemetry(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := telemetry.ReadSnap(f)
	if err != nil {
		return err
	}

	fmt.Printf("==================== telemetry: %s ====================\n", path)
	for _, h := range []struct{ label, name string }{
		{"hypercall latency", `hyp_trap_latency_ns{reason="hvc"}`},
		{"mem-abort latency", `hyp_trap_latency_ns{reason="mem-abort"}`},
		{"oracle check latency", "ghost_check_latency_ns"},
	} {
		hs, ok := snap.Histogram(h.name)
		if !ok || hs.Count == 0 {
			continue
		}
		fmt.Printf("%-22s %8d samples, p50 <= %dns, p99 <= %dns, mean %.0fns\n",
			h.label+":", hs.Count, hs.Quantile(0.5), hs.Quantile(0.99), hs.Mean())
	}
	if traps, ok := snap.Counter("hyp_traps_total"); ok {
		fmt.Printf("%-22s %8d\n", "traps:", traps)
	}
	if checks, ok := snap.Counter("ghost_checks_total"); ok {
		passed, _ := snap.Counter("ghost_checks_passed_total")
		fmt.Printf("%-22s %8d (%d passed)\n", "oracle checks:", checks, passed)
	}
	fmt.Println("per-hypercall counts:")
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "hyp_hypercall_calls_total{") && c.Value > 0 {
			fmt.Printf("  %-52s %8d\n", c.Name, c.Value)
		}
	}
	return nil
}
