package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/suite"
)

// The ghost-bench mode is the CI benchmark smoke run: it times the
// abstraction hot path (incremental cache vs full re-interpretation)
// plus the end-to-end suite pair, and writes the numbers as JSON for
// archiving alongside the build. It exists so a regression in the
// cache shows up as a number in a checked artifact, not as a vague
// slowdown three PRs later.

// seedBaseline is the same set of measurements taken at the seed
// commit (before the incremental-abstraction cache existed), on the
// reference machine (linux/amd64, Xeon 2.70GHz). Kept in the artifact
// so before/after is one file.
var seedBaseline = map[string]float64{
	"SuiteNoGhost":      41031496,
	"SuiteGhost":        103215370,
	"ShareUnshareGhost": 611409,
	"InterpretPgtable":  65509,
	"AbstractFull":      76310, // full re-interpretation after each mutation
}

type benchResult struct {
	NsPerOp float64            `json:"ns_per_op"`
	N       int                `json:"n"`
	Extra   map[string]float64 `json:"extra,omitempty"`
}

type ghostBenchReport struct {
	GOOS         string                 `json:"goos"`
	GOARCH       string                 `json:"goarch"`
	NumCPU       int                    `json:"num_cpu"`
	SeedBaseline map[string]float64     `json:"seed_baseline_ns_per_op"`
	Results      map[string]benchResult `json:"results"`
}

func runGhostBench(path string) error {
	report := ghostBenchReport{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		SeedBaseline: seedBaseline,
		Results:      map[string]benchResult{},
	}

	run := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		res := benchResult{NsPerOp: float64(r.NsPerOp()), N: r.N}
		for k, v := range r.Extra {
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[k] = v
		}
		report.Results[name] = res
		fmt.Printf("  %-24s %12.0f ns/op  (n=%d)\n", name, res.NsPerOp, r.N)
	}

	fmt.Println("==================== ghost benchmark smoke ====================")
	run("AbstractIncremental", func(b *testing.B) { benchAbstractPair(b, true) })
	run("AbstractFull", func(b *testing.B) { benchAbstractPair(b, false) })
	run("InterpretPgtable", benchInterpret)
	run("ShareUnshareGhost", benchShareGhost)
	run("SuiteNoGhost", func(b *testing.B) { benchSuite(b, false) })
	run("SuiteGhost", func(b *testing.B) { benchSuite(b, true) })

	inc, full := report.Results["AbstractIncremental"], report.Results["AbstractFull"]
	if inc.NsPerOp > 0 {
		fmt.Printf("  incremental vs full: %.1fx\n", full.NsPerOp/inc.NsPerOp)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	// Smoke criterion: the cache must not be slower than recomputing
	// from scratch. (A strict speedup floor would flake on loaded CI
	// machines; losing to the full walk outright means the cache is
	// broken.)
	if inc.NsPerOp >= full.NsPerOp {
		return fmt.Errorf("incremental abstraction (%.0fns) not faster than full (%.0fns)", inc.NsPerOp, full.NsPerOp)
	}
	return nil
}

// benchAbstractPair mirrors BenchmarkAbstractIncremental/-Full in the
// repo-root bench_test.go: churn one page per iteration, re-abstract
// the host table through the cache or from scratch.
func benchAbstractPair(b *testing.B, incremental bool) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	d := proxy.New(hv)
	base := arch.PhysToPFN(hv.HostMemStart())
	for i := 0; i < 64; i++ {
		pfn := base + arch.PFN(i*613)
		if ok, _ := d.Access(0, arch.IPA(pfn.Phys()), true); !ok {
			b.Fatal("populate fault failed")
		}
	}
	pfn, _ := d.AllocPage()
	var c ghost.PgtableCache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if err := d.ShareHyp(0, pfn); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := d.UnshareHyp(0, pfn); err != nil {
				b.Fatal(err)
			}
		}
		var abs ghost.AbstractPgtable
		if incremental {
			abs, _ = c.Interpret(hv.Mem, hv.HostPGTRoot())
		} else {
			abs = ghost.InterpretPgtable(hv.Mem, hv.HostPGTRoot())
		}
		if abs.Mapping.IsEmpty() {
			b.Fatal("empty interpretation")
		}
	}
}

func benchInterpret(b *testing.B) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	d := proxy.New(hv)
	base := arch.PhysToPFN(hv.HostMemStart())
	for i := 0; i < 32; i++ {
		pfn := base + arch.PFN(i*613)
		if ok, _ := d.Access(0, arch.IPA(pfn.Phys()), true); !ok {
			b.Fatal("populate fault failed")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		abs := ghost.InterpretPgtable(hv.Mem, hv.HostPGTRoot())
		if abs.Mapping.IsEmpty() {
			b.Fatal("empty interpretation")
		}
	}
}

func benchShareGhost(b *testing.B) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rec := ghost.Attach(hv)
	d := proxy.New(hv)
	pfn, _ := d.AllocPage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.ShareHyp(0, pfn); err != nil {
			b.Fatal(err)
		}
		if err := d.UnshareHyp(0, pfn); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if n := len(rec.Failures()); n != 0 {
		b.Fatalf("%d alarms", n)
	}
}

func benchSuite(b *testing.B, withGhost bool) {
	for i := 0; i < b.N; i++ {
		results := suite.Run(suite.Options{Ghost: withGhost})
		if s := suite.Summarise(results); s.Failed != 0 {
			b.Fatalf("suite failed: %+v", s)
		}
	}
}
