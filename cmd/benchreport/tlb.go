package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ghostspec/internal/arch"
	"ghostspec/internal/campaign"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/telemetry"
)

// The tlb-bench mode measures the software TLB on its hot path: the
// same repeated host translations with the TLB enabled (hits) and with
// NoTLB (every translation is a full 4-level walk), plus whole-campaign
// throughput both ways. The microbenchmark speedup is the headline
// claim; the campaign legs show how much of it survives amid all the
// other per-trap work.

type tlbMicro struct {
	Pages       int     `json:"pages"`
	Iters       int     `json:"iters"`
	TLBNsPerOp  float64 `json:"tlb_ns_per_op"`
	WalkNsPerOp float64 `json:"walk_ns_per_op"`
	Speedup     float64 `json:"speedup"`
	TLBHits     uint64  `json:"tlb_hits"`
	TLBMisses   uint64  `json:"tlb_misses"`
}

type tlbBenchReport struct {
	GOOS            string      `json:"goos"`
	GOARCH          string      `json:"goarch"`
	NumCPU          int         `json:"num_cpu"`
	GOMAXPROCS      int         `json:"gomaxprocs"`
	Micro           tlbMicro    `json:"micro"`
	CampaignTLB     campaignLeg `json:"campaign_tlb"`
	CampaignWalk    campaignLeg `json:"campaign_walk"`
	CampaignSpeedup float64     `json:"campaign_speedup"`
}

// timeTranslate boots a bare system (no oracle: the MMU hot path is
// the subject), demand-maps a working set, then times repeated read
// translations over it.
func timeTranslate(noTLB bool, pages, iters int) (float64, error) {
	hv, err := hyp.New(hyp.Config{NoTLB: noTLB})
	if err != nil {
		return 0, err
	}
	d := proxy.New(hv)
	ipas := make([]arch.IPA, 0, pages)
	for i := 0; i < pages; i++ {
		pfn, err := d.AllocPage()
		if err != nil {
			return 0, err
		}
		ipa := arch.IPA(pfn.Phys())
		if ok, err := d.Access(0, ipa, true); err != nil || !ok {
			return 0, fmt.Errorf("pre-fault of %#x: ok=%v err=%v", uint64(ipa), ok, err)
		}
		// Demand mapping installs a whole block; a share/unshare round
		// trip splits it to page granularity, so the walk leg measures
		// the real 4-level page walk the campaign workload sees.
		if err := d.ShareHyp(0, pfn); err != nil {
			return 0, fmt.Errorf("share of %#x: %v", uint64(ipa), err)
		}
		if err := d.UnshareHyp(0, pfn); err != nil {
			return 0, fmt.Errorf("unshare of %#x: %v", uint64(ipa), err)
		}
		ipas = append(ipas, ipa)
	}
	acc := arch.Access{}
	// Warm pass: fills the TLB leg; a free extra lap for the walk leg.
	for _, ipa := range ipas {
		if _, fault := hv.TranslateHost(0, ipa, acc); fault != nil {
			return 0, fmt.Errorf("warm translation of %#x faulted: %v", uint64(ipa), fault)
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, fault := hv.TranslateHost(0, ipas[i%len(ipas)], acc); fault != nil {
			return 0, fmt.Errorf("timed translation faulted: %v", fault)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

func runTLBBench(path string) error {
	fmt.Println("==================== software TLB benchmark ====================")
	report := tlbBenchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Micro:      tlbMicro{Pages: 64, Iters: 500000},
	}

	hits0, _ := telemetry.Snapshot().Counter("tlb_hits_total")
	misses0, _ := telemetry.Snapshot().Counter("tlb_misses_total")
	var err error
	if report.Micro.TLBNsPerOp, err = timeTranslate(false, report.Micro.Pages, report.Micro.Iters); err != nil {
		return err
	}
	hits1, _ := telemetry.Snapshot().Counter("tlb_hits_total")
	misses1, _ := telemetry.Snapshot().Counter("tlb_misses_total")
	report.Micro.TLBHits, report.Micro.TLBMisses = hits1-hits0, misses1-misses0

	if report.Micro.WalkNsPerOp, err = timeTranslate(true, report.Micro.Pages, report.Micro.Iters); err != nil {
		return err
	}
	if report.Micro.TLBNsPerOp > 0 {
		report.Micro.Speedup = report.Micro.WalkNsPerOp / report.Micro.TLBNsPerOp
	}
	fmt.Printf("  micro: %d pages, %d iters: tlb %.1fns/op (hits %d, misses %d), walk %.1fns/op, speedup %.2fx\n",
		report.Micro.Pages, report.Micro.Iters, report.Micro.TLBNsPerOp,
		report.Micro.TLBHits, report.Micro.TLBMisses, report.Micro.WalkNsPerOp, report.Micro.Speedup)

	leg := func(noTLB bool) (campaignLeg, error) {
		rep, err := campaign.Run(campaign.Config{
			Workers:     1,
			StepsPerRun: 300,
			Seed:        1,
			MaxExecs:    64,
			NoTLB:       noTLB,
		})
		if err != nil {
			return campaignLeg{}, err
		}
		if len(rep.Findings) > 0 {
			return campaignLeg{}, fmt.Errorf("clean build produced findings: %v",
				rep.Findings[0].Failures[0])
		}
		label := "tlb"
		if noTLB {
			label = "walk"
		}
		fmt.Printf("  campaign (%s): %d execs in %v = %.1f execs/s\n",
			label, rep.Execs, rep.Elapsed.Round(time.Millisecond), rep.ExecsPerSec)
		return campaignLeg{
			Workers:     1,
			Execs:       rep.Execs,
			ElapsedMS:   float64(rep.Elapsed) / float64(time.Millisecond),
			ExecsPerSec: rep.ExecsPerSec,
			NovelRuns:   rep.NovelRuns,
			CorpusSize:  rep.CorpusSize,
			Findings:    len(rep.Findings),
		}, nil
	}
	if report.CampaignTLB, err = leg(false); err != nil {
		return err
	}
	if report.CampaignWalk, err = leg(true); err != nil {
		return err
	}
	if report.CampaignWalk.ExecsPerSec > 0 {
		report.CampaignSpeedup = report.CampaignTLB.ExecsPerSec / report.CampaignWalk.ExecsPerSec
	}
	fmt.Printf("  campaign speedup tlb/walk: %.2fx\n", report.CampaignSpeedup)

	if report.Micro.Speedup < 3 {
		return fmt.Errorf("microbenchmark speedup %.2fx below the 3x bar", report.Micro.Speedup)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}
