package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"ghostspec/internal/campaign"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/telemetry/trace"
)

// The profile mode answers the attribution question behind ROADMAP
// Open item 1: where does one execution's wall time actually go? It
// runs a single-worker traced campaign with rings sized to retain
// every span, folds the span dump into a per-phase breakdown, and
// enforces two regression gates with a non-zero exit:
//
//   - attribution: the top-level phase spans (boot / restore / replay
//     / run / corpus / shrink) must account for at least
//     attributionFloorPct of the exec spans' wall time — if they
//     don't, someone added an expensive un-instrumented stage and the
//     profile went blind. (Boot spans fire once per worker, when its
//     long-lived snapshot system comes up, rather than once per exec;
//     they count on both sides of the ratio — boot phase and
//     attribution base — so the percentage is bounded by 100, and a
//     >100% check catches one-sided accounting creeping back in.)
//   - overhead: with a tracer attached but tracing disabled, the
//     share/unshare hypercall pair must stay within overheadLimitPct
//     (plus a fixed per-call epsilon for timer noise) of the
//     tracer-free baseline, and the disabled Begin/End pair must not
//     allocate — the "compile-out cheap" requirement, enforced the
//     same way BenchmarkHypercallTelemetryOff enforces it for
//     counters.

const (
	attributionFloorPct = 80.0
	overheadLimitPct    = 5.0
	// overheadEpsilonNs absorbs clock granularity on a ~μs-scale
	// hypercall: 5% of a short call is smaller than one timer tick.
	overheadEpsilonNs = 10.0

	profileExecs    = 32
	profileSteps    = 200
	profileRingSize = 1 << 18
)

// profilePhase is one named slice of the execution wall time.
type profilePhase struct {
	Phase     string  `json:"phase"`
	Count     uint64  `json:"count"`
	TotalMS   float64 `json:"total_ms"`
	PctOfExec float64 `json:"pct_of_exec"`
}

// profileOverhead is the tracing-disabled hot-path cost comparison.
type profileOverhead struct {
	BaselineNsPerCall float64 `json:"baseline_ns_per_call"`
	GatedNsPerCall    float64 `json:"gated_ns_per_call"`
	OverheadPct       float64 `json:"overhead_pct"`
	LimitPct          float64 `json:"limit_pct"`
	EpsilonNs         float64 `json:"epsilon_ns"`
	AllocsPerPair     float64 `json:"allocs_per_disabled_begin_end"`
}

type profileReport struct {
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Execs       int64  `json:"execs"`
	StepsPerRun int    `json:"steps_per_run"`

	ExecWallMS float64 `json:"exec_wall_ms"`
	// RootBootMS is wall time in once-per-worker system boots, which
	// are root spans outside any exec; percentages are taken against
	// ExecWallMS+RootBootMS so numerator and denominator cover the
	// same spans.
	RootBootMS float64 `json:"root_boot_ms"`
	// Phases are the disjoint direct children of the exec span plus the
	// root boots; their sum is the attributed time.
	Phases []profilePhase `json:"phases"`
	// Nested phases live inside the top-level ones (hypercalls inside
	// run/replay, pgtable/tlb/oracle inside hypercalls) and therefore
	// do not add into the attribution sum.
	Nested []profilePhase `json:"nested"`

	AttributedPct       float64 `json:"attributed_pct"`
	AttributionFloorPct float64 `json:"attribution_floor_pct"`
	DroppedSpans        uint64  `json:"dropped_spans"`

	Overhead profileOverhead `json:"overhead"`
	Pass     bool            `json:"pass"`
}

func runProfile(path, traceOut string) error {
	fmt.Println("==================== execution profile ====================")
	rep := profileReport{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Execs:       profileExecs,
		StepsPerRun: profileSteps,
	}

	// --- traced campaign leg -----------------------------------------
	tr := trace.NewTracer(1, profileRingSize)
	trace.SetEnabled(true)
	crep, err := campaign.Run(campaign.Config{
		Workers:     1,
		StepsPerRun: profileSteps,
		Seed:        1,
		MaxExecs:    profileExecs,
		Tracer:      tr,
	})
	trace.SetEnabled(false)
	if err != nil {
		return err
	}
	if len(crep.Findings) > 0 {
		// Findings on the fixed build would skew the shrink phase and
		// mean a real regression besides; surface them loudly.
		return fmt.Errorf("profile campaign produced %d findings on the fixed build", len(crep.Findings))
	}
	rep.DroppedSpans = tr.Dropped()

	spans := tr.Spans()
	totals := map[string]*profilePhase{}
	// Worker-system boots are root spans (they happen once per worker,
	// outside any exec); they belong in the attribution base as well as
	// the boot phase, or the ratio overflows 100% — the numerator would
	// include time the denominator never saw.
	var rootBootMS float64
	for _, s := range spans {
		name := s.NameString()
		if name == "exec.boot" && s.Parent < 0 {
			rootBootMS += float64(s.Dur) / float64(time.Millisecond)
		}
		p, ok := totals[name]
		if !ok {
			p = &profilePhase{Phase: name}
			totals[name] = p
		}
		p.Count++
		p.TotalMS += float64(s.Dur) / float64(time.Millisecond)
	}
	sum := func(label string, names ...string) profilePhase {
		out := profilePhase{Phase: label}
		for _, n := range names {
			if p, ok := totals[n]; ok {
				out.Count += p.Count
				out.TotalMS += p.TotalMS
			}
		}
		return out
	}
	var trapNames []string
	for name := range totals {
		if strings.HasPrefix(name, "hyp.trap:") {
			trapNames = append(trapNames, name)
		}
	}

	exec := sum("exec", "exec")
	rep.ExecWallMS = exec.TotalMS
	rep.RootBootMS = rootBootMS
	// The attribution base: per-exec wall time plus the once-per-worker
	// root boots. Every phase in the numerator is a slice of this base,
	// so the ratio is bounded by 100% by construction.
	base := exec.TotalMS + rootBootMS
	rep.Phases = []profilePhase{
		// boot happens once per worker now (the long-lived snapshot
		// system), not once per exec; restore is its per-exec successor.
		sum("boot", "exec.boot"),
		sum("restore", "exec.restore"),
		sum("replay", "exec.replay"),
		sum("run", "exec.run"),
		sum("corpus", "exec.corpus"),
		sum("shrink", "exec.shrink"),
	}
	rep.Nested = []profilePhase{
		sum("hypercall", trapNames...),
		sum("pgtable", "pgtable.mutate"),
		sum("tlb", "tlb.fill", "tlb.invalidate"),
		sum("oracle", "ghost.check", "ghost.verify"),
		sum("snapshot", "snapshot.capture", "snapshot.cow-fault"),
	}

	var attributed float64
	for i := range rep.Phases {
		attributed += rep.Phases[i].TotalMS
		if base > 0 {
			rep.Phases[i].PctOfExec = 100 * rep.Phases[i].TotalMS / base
		}
	}
	for i := range rep.Nested {
		if base > 0 {
			rep.Nested[i].PctOfExec = 100 * rep.Nested[i].TotalMS / base
		}
	}
	if base > 0 {
		rep.AttributedPct = 100 * attributed / base
	}
	rep.AttributionFloorPct = attributionFloorPct

	fmt.Printf("campaign: %d execs in %v (%.1f execs/s), %d spans retained, %d dropped\n",
		crep.Execs, crep.Elapsed.Round(time.Millisecond), crep.ExecsPerSec, len(spans), rep.DroppedSpans)
	fmt.Printf("exec wall time %.1fms (+%.1fms root boots); phase breakdown:\n",
		rep.ExecWallMS, rep.RootBootMS)
	for _, p := range rep.Phases {
		fmt.Printf("  %-10s %6d spans  %8.1fms  %5.1f%%\n", p.Phase, p.Count, p.TotalMS, p.PctOfExec)
	}
	fmt.Println("  nested within the above:")
	for _, p := range rep.Nested {
		fmt.Printf("  %-10s %6d spans  %8.1fms  %5.1f%%\n", p.Phase, p.Count, p.TotalMS, p.PctOfExec)
	}
	fmt.Printf("attributed: %.1f%% of exec time (floor %.0f%%)\n", rep.AttributedPct, attributionFloorPct)

	// --- tracing-disabled overhead leg -------------------------------
	if err := measureOverhead(&rep.Overhead); err != nil {
		return err
	}
	fmt.Printf("gated hypercall: %.0fns/call vs %.0fns/call baseline (%+.2f%%, limit %.0f%% + %.0fns; %g allocs/pair)\n",
		rep.Overhead.GatedNsPerCall, rep.Overhead.BaselineNsPerCall, rep.Overhead.OverheadPct,
		overheadLimitPct, overheadEpsilonNs, rep.Overhead.AllocsPerPair)

	// --- verdict + artifacts ------------------------------------------
	var violations []string
	if rep.AttributedPct < attributionFloorPct {
		violations = append(violations, fmt.Sprintf(
			"attribution %.1f%% below floor %.0f%%", rep.AttributedPct, attributionFloorPct))
	}
	if rep.AttributedPct > 100 {
		// Physically impossible: disjoint slices of the base exceeding
		// it means a phase is double-counted or counted against a base
		// that never saw it (the root-boot bug this check pins down).
		violations = append(violations, fmt.Sprintf(
			"attribution %.2f%% exceeds 100%% (phase accounting double-counts)", rep.AttributedPct))
	}
	if rep.DroppedSpans > 0 {
		violations = append(violations, fmt.Sprintf(
			"%d spans dropped at the rings (attribution is partial; grow profileRingSize)", rep.DroppedSpans))
	}
	limit := rep.Overhead.BaselineNsPerCall*(1+overheadLimitPct/100) + overheadEpsilonNs
	if rep.Overhead.GatedNsPerCall > limit {
		violations = append(violations, fmt.Sprintf(
			"gated hypercall %.0fns/call exceeds %.0fns/call (baseline %.0f +%.0f%% +%.0fns)",
			rep.Overhead.GatedNsPerCall, limit, rep.Overhead.BaselineNsPerCall, overheadLimitPct, overheadEpsilonNs))
	}
	if rep.Overhead.AllocsPerPair != 0 {
		violations = append(violations, fmt.Sprintf(
			"disabled Begin/End allocates (%g allocs/pair, want 0)", rep.Overhead.AllocsPerPair))
	}
	rep.Pass = len(violations) == 0

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("profile written to %s\n", path)

	if traceOut != "" {
		tf, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteChrome(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Printf("span dump written to %s (load in Perfetto or chrome://tracing)\n", traceOut)
	}

	if len(violations) > 0 {
		return fmt.Errorf("profile regression: %s", strings.Join(violations, "; "))
	}
	fmt.Println("PASS")
	return nil
}

// measureOverhead times the share/unshare hypercall pair on a system
// without a tracer (baseline) and on one with a tracer attached but
// tracing disabled (gated). The legs are interleaved with alternating
// order — so clock drift over the measurement window hits both legs'
// minima equally — and the minimum over the repetitions kept, the
// usual defence against one leg eating a scheduling hiccup the other
// didn't.
func measureOverhead(o *profileOverhead) error {
	const (
		reps  = 11
		iters = 2000
	)
	leg := func(cfg hyp.Config) (time.Duration, error) {
		hv, err := hyp.New(cfg)
		if err != nil {
			return 0, err
		}
		d := proxy.New(hv)
		pfn, err := d.AllocPage()
		if err != nil {
			return 0, err
		}
		// Warm the path before timing.
		for i := 0; i < 32; i++ {
			if err := d.ShareHyp(0, pfn); err != nil {
				return 0, err
			}
			if err := d.UnshareHyp(0, pfn); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := d.ShareHyp(0, pfn); err != nil {
				return 0, err
			}
			if err := d.UnshareHyp(0, pfn); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	gatedTracer := trace.NewTracer(1, 1024)
	trace.SetEnabled(false)
	baseMin, gatedMin := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < reps; r++ {
		var base, gated time.Duration
		var err error
		if r%2 == 0 {
			base, err = leg(hyp.Config{})
			if err == nil {
				gated, err = leg(hyp.Config{Tracer: gatedTracer})
			}
		} else {
			gated, err = leg(hyp.Config{Tracer: gatedTracer})
			if err == nil {
				base, err = leg(hyp.Config{})
			}
		}
		if err != nil {
			return err
		}
		baseMin = min(baseMin, base)
		gatedMin = min(gatedMin, gated)
	}
	const callsPerIter = 2 // share + unshare
	o.BaselineNsPerCall = float64(baseMin.Nanoseconds()) / (iters * callsPerIter)
	o.GatedNsPerCall = float64(gatedMin.Nanoseconds()) / (iters * callsPerIter)
	if o.BaselineNsPerCall > 0 {
		o.OverheadPct = 100 * (o.GatedNsPerCall - o.BaselineNsPerCall) / o.BaselineNsPerCall
	}
	o.LimitPct = overheadLimitPct
	o.EpsilonNs = overheadEpsilonNs

	// The disabled Begin/End pair must be allocation-free: one atomic
	// load and a branch, nothing for the garbage collector.
	o.AllocsPerPair = testing.AllocsPerRun(1000, func() {
		sp := gatedTracer.Begin(0, spanAllocProbe)
		sp.End()
	})
	return nil
}

// spanAllocProbe names the span the allocation probe opens and closes;
// registered here because NewName is init/constructor-scope only.
var spanAllocProbe = trace.NewName("profile.alloc-probe")
