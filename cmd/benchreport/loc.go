package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/pgtable"
	"ghostspec/internal/proxy"
)

// locCategory maps repository paths to the paper's size-accounting
// categories (§6 "Specification size").
type locCategory struct {
	name string
	dirs []string
}

var locCategories = []locCategory{
	{"implementation: hypervisor (internal/hyp)", []string{"internal/hyp"}},
	{"implementation: substrates (arch/pgtable/mem/locks)",
		[]string{"internal/arch", "internal/pgtable", "internal/mem", "internal/spinlock"}},
	{"specification: ghost state + abstraction + specs", []string{"internal/core/ghost"}},
	{"test infra: proxy/coverage/suite/randtest/faults",
		[]string{"internal/proxy", "internal/coverage", "internal/suite",
			"internal/randtest", "internal/faults", "internal/bugdemo"}},
	{"harness: cmd + examples + benches", []string{"cmd", "examples", "bench_test.go"}},
}

type locCount struct {
	name  string
	lines int
}

// countLoC counts non-test Go lines per category, rooted at the module
// directory (test files are counted for the suite category only via
// their packages' non-test files; _test.go is excluded everywhere to
// match the paper's raw-LoC convention for shipped code).
func countLoC(root string) ([]locCount, error) {
	out := make([]locCount, 0, len(locCategories))
	for _, cat := range locCategories {
		total := 0
		for _, dir := range cat.dirs {
			n, err := countDir(filepath.Join(root, dir))
			if err != nil {
				return nil, err
			}
			total += n
		}
		out = append(out, locCount{name: cat.name, lines: total})
	}
	return out, nil
}

func countDir(path string) (int, error) {
	info, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil // run from outside the repo: skip quietly
		}
		return 0, err
	}
	if !info.IsDir() {
		return countFile(path)
	}
	total := 0
	err = filepath.Walk(path, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() || !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		n, err := countFile(p)
		if err != nil {
			return err
		}
		total += n
		return nil
	})
	return total, err
}

func countFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
	}
	return n, sc.Err()
}

// indent prefixes every line with two spaces.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// corruptHostTable plants an out-of-band mapping in the host stage 2,
// the E8 non-interference violation.
func corruptHostTable(hv *hyp.Hypervisor) {
	scratchPFN := arch.PFN(0xA0000)
	alloc := scratchAllocator{next: scratchPFN}
	tbl := pgtable.Attach("backdoor", hv.Mem, arch.Stage2, &alloc, 2, hv.HostPGTRoot())
	victim := hv.HostMemStart() + arch.PhysAddr(99*arch.PageSize)
	attrs := arch.Attrs{Perms: arch.PermRW, Mem: arch.MemNormal, State: arch.StateSharedOwned}
	if err := tbl.Map(uint64(victim), arch.PageSize, victim, attrs, true); err != nil {
		panic(err)
	}
}

type scratchAllocator struct{ next arch.PFN }

func (s *scratchAllocator) AllocTablePage() (arch.PFN, bool) {
	s.next++
	return s.next, true
}
func (s *scratchAllocator) FreeTablePage(arch.PFN) {}

// Interface checks for the helpers above.
var (
	_ = proxy.New
	_ = ghost.Attach
	_ = fmt.Sprintf
)
