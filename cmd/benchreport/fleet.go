package main

import (
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"ghostspec/internal/campaign"
	"ghostspec/internal/faults"
	"ghostspec/internal/fleet"
)

// The fleet leg of the campaign benchmark prices the distributed
// campaign machinery: a coordinator and N single-threaded workers talk
// over real loopback HTTP (not an in-process dispatch), so the numbers
// include JSON transport, wire-codec encode/decode, corpus fan-out,
// and round re-boots at shard boundaries.
//
// The gate is coordination overhead, not parallel speedup: on a
// GOMAXPROCS=1 box a fleet of two cannot beat one engine, but it must
// not cost much either. The baseline is two *standalone* campaign
// engines running concurrently in this same process — identical CPU
// contention, zero coordination — and the two-worker fleet's aggregate
// throughput must reach fleetEfficiencyFloor of the baseline's summed
// throughput.
//
// A separate demo leg runs the fleet against a build with an injected
// fault (unshare leaves the hyp mapping behind) so the report records
// finding dedup in action: every worker minimizes its own repro, the
// coordinator collapses canonically-equal traces, and the leg gates
// that at least one unique finding survived with reported >= unique.

const (
	// fleetEfficiencyFloor gates fleet-of-2 aggregate throughput
	// against two coordination-free engines under the same contention.
	// Measured 0.9-1.1 on a 1-CPU CI box (reporting is off the exec
	// path and injected seeds get their snapshots backfilled on first
	// replay, so what remains is JSON transport on a 100ms tick); the
	// floor leaves headroom for loaded runners.
	fleetEfficiencyFloor = 0.9

	// fleetRoundExecs sizes rounds so the two-worker leg runs exactly
	// one round per worker at the default budget — the same number of
	// engine boots as the standalone baseline, so the gated efficiency
	// isolates transport, reporting, and corpus fan-out rather than
	// round re-boot amortisation (a production knob: the fleet default
	// of 512 amortises boots further). The one-worker leg still crosses
	// a release/re-lease boundary mid-run, so the shard-rotation path
	// stays exercised.
	fleetRoundExecs = 128

	// fleetReportEvery is deliberately faster than the production
	// default (500ms): short legs should still see several batched
	// reports, otherwise the measured "overhead" would be zero by
	// construction.
	fleetReportEvery = 100 * time.Millisecond

	// fleetDedupBug is the fault injected for the dedup demo leg.
	fleetDedupBug = faults.BugUnshareLeaveMapping
)

// fleetLeg is one fleet run: N workers against one coordinator.
type fleetLeg struct {
	Workers    int   `json:"workers"`
	Gomaxprocs int   `json:"gomaxprocs"`
	Shards     int   `json:"shards"`
	Execs      int64 `json:"execs"`
	// Rounds is the fleet-wide count of completed shard rounds —
	// how many release/re-lease boundaries the leg exercised.
	Rounds    int64   `json:"rounds"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// ExecsPerSec is the aggregate: total fleet execs over wall time.
	ExecsPerSec        float64 `json:"execs_per_sec"`
	MergedCoverageKeys int     `json:"merged_coverage_keys"`
	CorpusSynced       int64   `json:"corpus_synced"`
	CorpusFanout       int64   `json:"corpus_fanout"`
	FindingsReported   int64   `json:"findings_reported,omitempty"`
	FindingsDuplicate  int64   `json:"findings_duplicate,omitempty"`
	FindingsUnique     int     `json:"findings_unique,omitempty"`
}

// fleetBaseline is the coordination-free reference: two standalone
// engines in the same process, summed.
type fleetBaseline struct {
	Engines           int     `json:"engines"`
	Gomaxprocs        int     `json:"gomaxprocs"`
	Execs             int64   `json:"execs"`
	ElapsedMS         float64 `json:"elapsed_ms"`
	SummedExecsPerSec float64 `json:"summed_execs_per_sec"`
}

type fleetBench struct {
	RoundExecs    int64         `json:"round_execs"`
	ReportEveryMS int64         `json:"report_every_ms"`
	Fleet1        fleetLeg      `json:"fleet_1"`
	Fleet2        fleetLeg      `json:"fleet_2"`
	Fleet4        fleetLeg      `json:"fleet_4"`
	Baseline      fleetBaseline `json:"standalone_pair"`
	// CoordinationEfficiency is fleet_2 aggregate throughput over the
	// standalone pair's summed throughput, gated by EfficiencyFloor.
	CoordinationEfficiency float64 `json:"coordination_efficiency"`
	EfficiencyFloor        float64 `json:"coordination_efficiency_floor"`
	// Dedup is the injected-fault demo leg; DedupBug names the fault.
	Dedup    fleetLeg `json:"dedup_demo"`
	DedupBug string   `json:"dedup_bug"`
	Pass     bool     `json:"pass"`
}

// runFleetLeg boots a coordinator on a loopback listener, runs N
// single-threaded fleet workers against it splitting a shared exec
// budget, and snapshots the fleet status after all have left cleanly.
func runFleetLeg(workers int, totalExecs int64, bugs []string) (fleetLeg, error) {
	perWorker := totalExecs / int64(workers)
	budget := perWorker * int64(workers)
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Shards:      workers,
		BaseSeed:    1,
		StepsPerRun: 300,
		NrCPUs:      4,
		Bugs:        bugs,
		RoundExecs:  fleetRoundExecs,
		Lease:       10 * time.Second,
		ReportEvery: fleetReportEvery,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fleetLeg{}, err
	}
	srv := &http.Server{Handler: coord.Mux()}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String()

	start := time.Now()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := fleet.NewWorker(fleet.WorkerConfig{
			Coordinator: url,
			Name:        fmt.Sprintf("bench-%d", i),
			Threads:     1,
			MaxExecs:    perWorker,
		})
		wg.Add(1)
		go func(i int, w *fleet.Worker) {
			defer wg.Done()
			errs[i] = w.Run()
		}(i, w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return fleetLeg{}, fmt.Errorf("fleet worker %d: %w", i, err)
		}
	}

	st := coord.Status()
	// The merged coverage must contain every worker's own view — the
	// correctness side of the aggregation this leg is timing.
	for _, ws := range st.Workers {
		if !st.Merged.SupersetOf(ws.Coverage) {
			return fleetLeg{}, fmt.Errorf(
				"merged coverage is not a superset of worker %s's", ws.ID)
		}
	}
	var rounds int64
	for _, sh := range st.Shards {
		rounds += sh.Rounds
	}
	leg := fleetLeg{
		Workers:            workers,
		Gomaxprocs:         runtime.GOMAXPROCS(0),
		Shards:             len(st.Shards),
		Execs:              st.Execs,
		Rounds:             rounds,
		ElapsedMS:          float64(elapsed) / float64(time.Millisecond),
		ExecsPerSec:        float64(st.Execs) / elapsed.Seconds(),
		MergedCoverageKeys: st.MergedKeys,
		CorpusSynced:       st.CorpusSynced,
		CorpusFanout:       st.CorpusFanout,
		FindingsReported:   st.FindingsReported,
		FindingsDuplicate:  st.FindingsDuplicate,
		FindingsUnique:     len(st.Findings),
	}
	if leg.Execs < budget {
		return fleetLeg{}, fmt.Errorf(
			"fleet of %d executed %d of the %d budget", workers, leg.Execs, budget)
	}
	fmt.Printf("  fleet of %d: %d execs in %v = %.1f execs/s aggregate "+
		"(%d rounds, corpus synced %d/fanout %d, merged keys %d)\n",
		workers, leg.Execs, elapsed.Round(time.Millisecond), leg.ExecsPerSec,
		rounds, leg.CorpusSynced, leg.CorpusFanout, leg.MergedCoverageKeys)
	return leg, nil
}

// runFleetBaseline runs two standalone engines concurrently in this
// process — the same CPU contention as a two-worker fleet, none of the
// coordination — and sums their throughput.
func runFleetBaseline(totalExecs int64) (fleetBaseline, error) {
	const engines = 2
	reps := make([]*campaign.Report, engines)
	errs := make([]error, engines)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mirrors the worker's round config (fleet defaults, default
			// conformance cadence) so only coordination differs.
			reps[i], errs[i] = campaign.Run(campaign.Config{
				Workers:     1,
				StepsPerRun: 300,
				Seed:        int64(100 + i),
				NrCPUs:      4,
				MaxExecs:    totalExecs / engines,
			})
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b := fleetBaseline{
		Engines:    engines,
		Gomaxprocs: runtime.GOMAXPROCS(0),
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	}
	for i := 0; i < engines; i++ {
		if errs[i] != nil {
			return fleetBaseline{}, fmt.Errorf("standalone engine %d: %w", i, errs[i])
		}
		b.Execs += reps[i].Execs
		b.SummedExecsPerSec += reps[i].ExecsPerSec
	}
	fmt.Printf("  standalone pair: %d execs, %.1f execs/s summed\n",
		b.Execs, b.SummedExecsPerSec)
	return b, nil
}

func runFleetBench(execs int64) (*fleetBench, error) {
	fmt.Println("  -- fleet --")
	rep := &fleetBench{
		RoundExecs:      fleetRoundExecs,
		ReportEveryMS:   int64(fleetReportEvery / time.Millisecond),
		EfficiencyFloor: fleetEfficiencyFloor,
		DedupBug:        string(fleetDedupBug),
	}
	var err error
	if rep.Fleet1, err = runFleetLeg(1, execs, nil); err != nil {
		return nil, err
	}
	if rep.Fleet2, err = runFleetLeg(2, execs, nil); err != nil {
		return nil, err
	}
	if rep.Fleet4, err = runFleetLeg(4, execs, nil); err != nil {
		return nil, err
	}
	if rep.Baseline, err = runFleetBaseline(execs); err != nil {
		return nil, err
	}
	if rep.Baseline.SummedExecsPerSec > 0 {
		rep.CoordinationEfficiency = rep.Fleet2.ExecsPerSec / rep.Baseline.SummedExecsPerSec
	}
	fmt.Printf("  coordination efficiency (fleet_2 / standalone pair): %.2f (floor %.2f)\n",
		rep.CoordinationEfficiency, fleetEfficiencyFloor)

	// Dedup demo: same fleet shape, fault injected. The gate is the
	// dedup invariant (at least one unique finding, uniques never
	// exceed reports), not the duplicate count — whether two seed
	// streams minimize to the same canonical trace within a small
	// budget is luck; when they do, the collapse shows up in the
	// recorded duplicate counter.
	if rep.Dedup, err = runFleetLeg(2, execs, []string{string(fleetDedupBug)}); err != nil {
		return nil, err
	}
	fmt.Printf("  dedup demo (%s): %d reported, %d duplicate, %d unique\n",
		rep.DedupBug, rep.Dedup.FindingsReported, rep.Dedup.FindingsDuplicate,
		rep.Dedup.FindingsUnique)
	if rep.Dedup.FindingsUnique == 0 {
		return nil, fmt.Errorf("dedup demo found nothing with %v injected", fleetDedupBug)
	}
	if int64(rep.Dedup.FindingsUnique)+rep.Dedup.FindingsDuplicate != rep.Dedup.FindingsReported {
		return nil, fmt.Errorf("dedup accounting broken: %d unique + %d duplicate != %d reported",
			rep.Dedup.FindingsUnique, rep.Dedup.FindingsDuplicate, rep.Dedup.FindingsReported)
	}

	rep.Pass = rep.CoordinationEfficiency >= fleetEfficiencyFloor
	if !rep.Pass {
		fmt.Printf("  FAIL: coordination efficiency %.2f below floor %.2f\n",
			rep.CoordinationEfficiency, fleetEfficiencyFloor)
	}
	return rep, nil
}
