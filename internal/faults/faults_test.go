package faults

import (
	"sync"
	"testing"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var inj *Injector
	for _, b := range All() {
		if inj.Enabled(b) {
			t.Errorf("nil injector enables %s", b)
		}
	}
}

func TestEnableDisable(t *testing.T) {
	inj := NewInjector()
	if inj.Enabled(BugMemcacheAlignment) {
		t.Error("fresh injector enables a bug")
	}
	inj.Enable(BugMemcacheAlignment)
	if !inj.Enabled(BugMemcacheAlignment) {
		t.Error("Enable did not take")
	}
	if inj.Enabled(BugMemcacheSize) {
		t.Error("enabling one bug enabled another")
	}
	inj.Disable(BugMemcacheAlignment)
	if inj.Enabled(BugMemcacheAlignment) {
		t.Error("Disable did not take")
	}
}

func TestNewInjectorVariadic(t *testing.T) {
	inj := NewInjector(BugShareWrongPerms, BugWrongReturnValue)
	if !inj.Enabled(BugShareWrongPerms) || !inj.Enabled(BugWrongReturnValue) {
		t.Error("variadic bugs not enabled")
	}
}

func TestAllStableAndComplete(t *testing.T) {
	// One constant per declared bug; grep-count of the Bug consts above
	// keeps this from silently diverging when a bug is added to the
	// block but forgotten in All().
	bugs := All()
	if want := 14; len(bugs) != want {
		t.Errorf("All() has %d bugs, want %d", len(bugs), want)
	}
	seen := map[Bug]bool{}
	for i, b := range bugs {
		if seen[b] {
			t.Errorf("duplicate bug %s", b)
		}
		seen[b] = true
		if i > 0 && bugs[i-1] >= b {
			t.Errorf("All() not sorted at %d", i)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	inj := NewInjector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				inj.Enable(BugVCPULoadRace)
				inj.Enabled(BugVCPULoadRace)
				inj.Disable(BugVCPULoadRace)
			}
		}()
	}
	wg.Wait()
}

func TestString(t *testing.T) {
	var nilInj *Injector
	if nilInj.String() != "faults{}" {
		t.Errorf("nil String = %q", nilInj.String())
	}
	inj := NewInjector(BugMemcacheSize)
	if inj.String() != "faults[memcache-size]" {
		t.Errorf("String = %q", inj.String())
	}
}
