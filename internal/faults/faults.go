// Package faults is the synthetic-bug injection registry.
//
// The paper validates the discriminating power of the executable
// specification by planting synthetic bugs in pKVM and checking that
// the runtime oracle flags them (§5), and reports five real bugs the
// work found in pKVM (§6). This package names each of those bugs; the
// hypervisor and its substrates consult the injector at the exact code
// point where the real bug lived, re-introducing it on demand. A
// correctly configured (empty) injector yields the fixed behaviour.
package faults

import (
	"fmt"
	"sort"
	"sync"
)

// Bug identifies an injectable defect.
type Bug string

// The five real pKVM bugs from §6, re-created as injectable
// regressions, plus purely synthetic oracle-discrimination bugs
// mirroring §5's synthetic bug testing.
const (
	// BugMemcacheAlignment: the memcache topup path does not check
	// that the host-supplied page address is page-aligned, letting a
	// malicious host make the hypervisor zero memory it chose (§6 bug 1).
	BugMemcacheAlignment Bug = "memcache-alignment"

	// BugMemcacheSize: the memcache topup path does not bound the
	// host-supplied page count, hitting signed-integer overflow for
	// huge counts (§6 bug 2).
	BugMemcacheSize Bug = "memcache-size"

	// BugVCPULoadRace: vCPU load does not synchronise with vCPU init,
	// so a racing load can observe an uninitialised vCPU (§6 bug 3).
	BugVCPULoadRace Bug = "vcpu-load-race"

	// BugHostFaultRetry: the host memory-abort handler assumes the
	// host's mappings are stable across its window, panicking if the
	// host changes them concurrently (§6 bug 4).
	BugHostFaultRetry Bug = "host-fault-retry"

	// BugLinearMapOverlap: for very large physical memory, the pKVM
	// linear map is laid out overlapping the IO mappings, permitting
	// unchecked device access (§6 bug 5).
	BugLinearMapOverlap Bug = "linear-map-overlap"

	// BugShareSkipStateCheck: host_share_hyp skips the page-state
	// check, sharing pages the host does not exclusively own
	// (synthetic, §5).
	BugShareSkipStateCheck Bug = "share-skip-state-check"

	// BugShareWrongPerms: host_share_hyp installs the hypervisor
	// mapping with execute permission (synthetic, §5).
	BugShareWrongPerms Bug = "share-wrong-perms"

	// BugUnshareLeaveMapping: host_unshare_hyp clears the host's
	// shared annotation but leaves the hypervisor mapping in place
	// (synthetic, §5).
	BugUnshareLeaveMapping Bug = "unshare-leave-mapping"

	// BugDonateKeepHostMapping: host_donate_hyp transfers ownership
	// but forgets to remove the host's own mapping (synthetic, §5).
	BugDonateKeepHostMapping Bug = "donate-keep-host-mapping"

	// BugReclaimSkipOwnerClear: reclaim scrubs the page and removes it
	// from the reclaim set but forgets to clear the guest-owner
	// annotation in the host's table (synthetic, §5).
	BugReclaimSkipOwnerClear Bug = "reclaim-skip-owner-clear"

	// BugWrongReturnValue: host_share_hyp reports success on the
	// permission-failure path (synthetic, §5).
	BugWrongReturnValue Bug = "wrong-return-value"

	// BugMapDemandWrongState: mapping-on-demand installs host pages
	// with a shared page state instead of owned (synthetic, §5).
	BugMapDemandWrongState Bug = "map-demand-wrong-state"

	// BugShareRangeBadStop: the phased share-range hypercall reports
	// success when a mid-range phase failed, leaving the range
	// partially shared while claiming otherwise (synthetic, for the
	// transactional-instrumentation extension).
	BugShareRangeBadStop Bug = "share-range-bad-stop"

	// BugUnshareSkipTLBI: the unshare paths (host_unshare_hyp,
	// guest_unshare) rewrite the host stage 2 entry without issuing
	// the break-before-make TLB invalidation, leaving any cached
	// translation of the page stale — the canonical missing-TLBI
	// hypervisor bug class (synthetic, for the software-TLB
	// extension; detectable only when the TLB model is enabled).
	BugUnshareSkipTLBI Bug = "unshare-skip-tlbi"
)

// All lists every injectable bug, in a stable order.
func All() []Bug {
	bugs := []Bug{
		BugMemcacheAlignment, BugMemcacheSize, BugVCPULoadRace,
		BugHostFaultRetry, BugLinearMapOverlap,
		BugShareSkipStateCheck, BugShareWrongPerms,
		BugUnshareLeaveMapping, BugDonateKeepHostMapping,
		BugReclaimSkipOwnerClear, BugWrongReturnValue,
		BugMapDemandWrongState, BugShareRangeBadStop,
		BugUnshareSkipTLBI,
	}
	sort.Slice(bugs, func(i, j int) bool { return bugs[i] < bugs[j] })
	return bugs
}

// Class groups bugs by the kind of workload that can reach them. The
// campaign engine's fault sweep uses it to pick boot configuration and
// to report the detection matrix by category; test skip-lists key off
// it when a class is out of scope for a particular harness.
type Class uint8

const (
	// ClassMemShare: defects in the host⇄hyp⇄guest memory-transition
	// paths (share, unshare, donate, reclaim, demand-map).
	ClassMemShare Class = iota
	// ClassVMLifecycle: defects in VM/vCPU creation, loading, and the
	// memcache donation protocol.
	ClassVMLifecycle
	// ClassHostFault: defects in the host stage 2 abort handler.
	ClassHostFault
	// ClassBootLayout: boot-time layout defects, reachable only on a
	// large-physical-memory configuration and visible the moment the
	// oracle attaches — no hypercall traffic needed.
	ClassBootLayout
)

func (c Class) String() string {
	switch c {
	case ClassMemShare:
		return "mem-share"
	case ClassVMLifecycle:
		return "vm-lifecycle"
	case ClassHostFault:
		return "host-fault"
	case ClassBootLayout:
		return "boot-layout"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ClassOf classifies a bug.
func ClassOf(b Bug) Class {
	switch b {
	case BugMemcacheAlignment, BugMemcacheSize, BugVCPULoadRace:
		return ClassVMLifecycle
	case BugHostFaultRetry:
		return ClassHostFault
	case BugLinearMapOverlap:
		return ClassBootLayout
	default:
		return ClassMemShare
	}
}

// Injector is a set of enabled bugs. The zero value injects nothing
// and is what a production configuration uses. Injectors are safe for
// concurrent use.
type Injector struct {
	mu      sync.RWMutex
	enabled map[Bug]bool
}

// NewInjector returns an injector with the given bugs enabled.
func NewInjector(bugs ...Bug) *Injector {
	inj := &Injector{enabled: make(map[Bug]bool, len(bugs))}
	for _, b := range bugs {
		inj.enabled[b] = true
	}
	return inj
}

// Enabled reports whether bug b is injected. A nil injector injects
// nothing, so substrates can hold a nil *Injector safely.
func (inj *Injector) Enabled(b Bug) bool {
	if inj == nil {
		return false
	}
	inj.mu.RLock()
	defer inj.mu.RUnlock()
	return inj.enabled[b]
}

// Enable turns bug b on.
func (inj *Injector) Enable(b Bug) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.enabled == nil {
		inj.enabled = make(map[Bug]bool)
	}
	inj.enabled[b] = true
}

// Disable turns bug b off.
func (inj *Injector) Disable(b Bug) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	delete(inj.enabled, b)
}

// String lists the enabled bugs.
func (inj *Injector) String() string {
	if inj == nil {
		return "faults{}"
	}
	inj.mu.RLock()
	defer inj.mu.RUnlock()
	names := make([]string, 0, len(inj.enabled))
	for b := range inj.enabled {
		names = append(names, string(b))
	}
	sort.Strings(names)
	return fmt.Sprintf("faults%v", names)
}
