package randtest

import (
	"sync"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/proxy"
)

// ConcurrentCampaign drives one tester per hardware thread over a
// single shared system: each tester is pinned to its CPU and works
// its own VMs and pages, so all cross-thread interaction happens
// inside the hypervisor — through its locks — while the ghost oracle
// checks every trap on every CPU. This is the concurrency regime the
// paper's instrumentation must survive: overlapping hypercalls with
// per-component lock interleavings.
func ConcurrentCampaign(d *proxy.Driver, rec *ghost.Recorder, seed int64, stepsPerCPU int) []Stats {
	n := d.HV.Globals().NrCPUs
	testers := make([]*Tester, n)
	for cpu := 0; cpu < n; cpu++ {
		t := New(d, rec, seed+int64(cpu)*7919, true)
		t.pinCPU = cpu
		testers[cpu] = t
	}
	var wg sync.WaitGroup
	for _, t := range testers {
		wg.Add(1)
		go func(t *Tester) {
			defer wg.Done()
			t.Run(stepsPerCPU)
		}(t)
	}
	wg.Wait()

	out := make([]Stats, n)
	for i, t := range testers {
		out[i] = t.Stats()
	}
	return out
}
