package randtest

import (
	"math/rand"
	"sync"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/proxy"
)

// WorkerSeed derives the generation seed for one worker of a
// multi-worker campaign from the campaign seed. The SplitMix64
// finaliser decorrelates the streams: neighbouring campaign seeds and
// worker indices land in unrelated parts of the seed space instead of
// the correlated offsets simple arithmetic would give.
func WorkerSeed(campaign int64, worker int) int64 {
	z := uint64(campaign) + 0x9e3779b97f4a7c15*uint64(worker+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z &^ (1 << 63)) // keep printable seeds positive
}

// ConcurrentCampaign drives one tester per hardware thread over a
// single shared system: each tester is pinned to its CPU and works
// its own VMs and pages, so all cross-thread interaction happens
// inside the hypervisor — through its locks — while the ghost oracle
// checks every trap on every CPU. This is the concurrency regime the
// paper's instrumentation must survive: overlapping hypercalls with
// per-component lock interleavings.
func ConcurrentCampaign(d *proxy.Driver, rec *ghost.Recorder, seed int64, stepsPerCPU int) []Stats {
	n := d.HV.Globals().NrCPUs
	testers := make([]*Tester, n)
	for cpu := 0; cpu < n; cpu++ {
		// Each tester owns an explicit private source — no shared or
		// global rand state anywhere — so any single worker's stream
		// can be re-created in isolation from (seed, cpu) alone.
		t := NewFromSource(d, rec, rand.NewSource(WorkerSeed(seed, cpu)), true)
		t.pinCPU = cpu
		testers[cpu] = t
	}
	var wg sync.WaitGroup
	for _, t := range testers {
		wg.Add(1)
		go func(t *Tester) {
			defer wg.Done()
			t.Run(stepsPerCPU)
		}(t)
	}
	wg.Wait()

	out := make([]Stats, n)
	for i, t := range testers {
		out[i] = t.Stats()
	}
	return out
}
