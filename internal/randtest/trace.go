package randtest

import (
	"fmt"
	"strings"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

// OpKind enumerates the concrete driver actions a tester can record.
// Every generator step lowers to a short sequence of these; each op is
// self-contained (all arguments concrete), so a recorded trace can be
// replayed — and, crucially, an arbitrary *subset* of it can be
// replayed — without the generator or its model.
type OpKind uint8

const (
	// OpAlloc takes one host frame from the pool.
	OpAlloc OpKind = iota
	// OpFree returns one host frame.
	OpFree
	// OpTouch performs a host access (fault-in path) at PFN.
	OpTouch
	// OpShare / OpUnshare / OpDonate / OpReclaim are the single-page
	// memory-transition hypercalls.
	OpShare
	OpUnshare
	OpDonate
	OpReclaim
	// OpShareRange is the phased range share of Nr pages from PFN.
	OpShareRange
	// OpInitVM creates a VM with Nr vCPUs (donation handled by the
	// driver wrapper). H records the handle the call returned.
	OpInitVM
	// OpInitVCPU initialises vCPU VCPU of VM H.
	OpInitVCPU
	// OpTeardown destroys VM H.
	OpTeardown
	// OpTopup tops up vCPU VCPU of VM H with Nr fresh pages (the
	// wrapper allocates and threads the donation list).
	OpTopup
	// OpTopupRaw issues a raw topup hypercall with head = PFN's
	// physical address plus Off and count Nr — the malicious-host
	// probe for the memcache bugs (misaligned head, huge count).
	OpTopupRaw
	// OpLoad / OpPut / OpRun drive vCPU scheduling.
	OpLoad
	OpPut
	OpRun
	// OpQueueGuest scripts guest event Guest on vCPU VCPU of VM H.
	OpQueueGuest
	// OpLoadProgram installs guest program Prog on vCPU VCPU of VM H.
	OpLoadProgram
	// OpMapGuest donates page PFN into the loaded VM at GFN.
	OpMapGuest
	// OpHVCRaw issues an arbitrary hypercall (unguided mode and the
	// unknown-hypercall probe).
	OpHVCRaw
	// OpFaultAgain re-delivers a stage 2 fault for PFN even though the
	// host mapping may already be valid — the spurious-fault delivery
	// a concurrent host CPU can cause (paper §6 bug 4's trigger).
	OpFaultAgain
)

func (k OpKind) String() string {
	switch k {
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	case OpTouch:
		return "touch"
	case OpShare:
		return "share"
	case OpUnshare:
		return "unshare"
	case OpDonate:
		return "donate"
	case OpReclaim:
		return "reclaim"
	case OpShareRange:
		return "share-range"
	case OpInitVM:
		return "init-vm"
	case OpInitVCPU:
		return "init-vcpu"
	case OpTeardown:
		return "teardown"
	case OpTopup:
		return "topup"
	case OpTopupRaw:
		return "topup-raw"
	case OpLoad:
		return "load"
	case OpPut:
		return "put"
	case OpRun:
		return "run"
	case OpQueueGuest:
		return "queue-guest"
	case OpLoadProgram:
		return "load-program"
	case OpMapGuest:
		return "map-guest"
	case OpHVCRaw:
		return "hvc-raw"
	case OpFaultAgain:
		return "fault-again"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one recorded driver action with concrete arguments. PFN and H
// record the values observed at recording time; replay translates them
// through the frames/handles the replayed allocations actually return,
// so a shrunk trace (whose allocations land elsewhere) still targets
// "the page allocated by that alloc op" rather than a stale number.
type Op struct {
	Kind  OpKind
	CPU   int
	PFN   arch.PFN
	Nr    uint64
	H     hyp.Handle
	VCPU  int
	GFN   uint64
	Off   uint64 // byte offset for OpTopupRaw heads
	Write bool
	HC    hyp.HC
	Args  [4]uint64
	Guest hyp.GuestOp
	Prog  []hyp.Insn
}

// String formats one op deterministically (the byte-identical-trace
// regression test compares these).
func (o Op) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s cpu=%d", o.Kind, o.CPU)
	switch o.Kind {
	case OpAlloc, OpFree:
		fmt.Fprintf(&b, " pfn=%#x", uint64(o.PFN))
	case OpTouch:
		fmt.Fprintf(&b, " pfn=%#x write=%v", uint64(o.PFN), o.Write)
	case OpShare, OpUnshare, OpReclaim:
		fmt.Fprintf(&b, " pfn=%#x", uint64(o.PFN))
	case OpDonate, OpShareRange:
		fmt.Fprintf(&b, " pfn=%#x nr=%d", uint64(o.PFN), o.Nr)
	case OpInitVM:
		fmt.Fprintf(&b, " vcpus=%d h=%#x", o.Nr, uint64(o.H))
	case OpInitVCPU, OpQueueGuest, OpLoadProgram:
		fmt.Fprintf(&b, " h=%#x vcpu=%d", uint64(o.H), o.VCPU)
		if o.Kind == OpQueueGuest {
			fmt.Fprintf(&b, " op=%s ipa=%#x write=%v val=%#x",
				o.Guest.Kind, uint64(o.Guest.IPA), o.Guest.Write, o.Guest.Value)
		}
		if o.Kind == OpLoadProgram {
			fmt.Fprintf(&b, " prog=%d insns", len(o.Prog))
			for _, in := range o.Prog {
				fmt.Fprintf(&b, " [%d d%d s%d %#x]", in.Op, in.Dst, in.Src, in.Imm)
			}
		}
	case OpTeardown:
		fmt.Fprintf(&b, " h=%#x", uint64(o.H))
	case OpTopup:
		fmt.Fprintf(&b, " h=%#x vcpu=%d nr=%d", uint64(o.H), o.VCPU, o.Nr)
	case OpTopupRaw:
		fmt.Fprintf(&b, " h=%#x vcpu=%d pfn=%#x off=%#x nr=%#x", uint64(o.H), o.VCPU, uint64(o.PFN), o.Off, o.Nr)
	case OpLoad:
		fmt.Fprintf(&b, " h=%#x vcpu=%d", uint64(o.H), o.VCPU)
	case OpMapGuest:
		fmt.Fprintf(&b, " pfn=%#x gfn=%#x", uint64(o.PFN), o.GFN)
	case OpHVCRaw:
		fmt.Fprintf(&b, " id=%#x args=%#x,%#x,%#x,%#x", uint64(o.HC), o.Args[0], o.Args[1], o.Args[2], o.Args[3])
	case OpFaultAgain:
		fmt.Fprintf(&b, " pfn=%#x write=%v", uint64(o.PFN), o.Write)
	}
	return b.String()
}

// Trace is a recorded operation sequence: together with the boot
// configuration it is a complete, deterministic reproduction recipe.
type Trace struct {
	Ops []Op
}

// Len returns the number of recorded ops.
func (tr *Trace) Len() int {
	if tr == nil {
		return 0
	}
	return len(tr.Ops)
}

// String renders the trace one op per line.
func (tr *Trace) String() string {
	var b strings.Builder
	for i, op := range tr.Ops {
		fmt.Fprintf(&b, "%4d  %s\n", i, op.String())
	}
	return b.String()
}

// Subset returns a new trace keeping only the ops whose index is in
// keep (which must be sorted ascending).
func (tr *Trace) Subset(keep []int) *Trace {
	out := &Trace{Ops: make([]Op, 0, len(keep))}
	for _, i := range keep {
		out.Ops = append(out.Ops, tr.Ops[i])
	}
	return out
}

// Replay executes the trace against a freshly booted driver. Hypercall
// errnos and host-crash reflections are ignored — the hypervisor is
// specified to tolerate a malicious host, and during shrinking partial
// traces routinely hit error paths; the oracle attached to d's
// hypervisor is the only judge that matters.
//
// Frames and VM handles are translated: an OpAlloc binds the recorded
// frame number to whatever the replayed allocation returns, and every
// later reference goes through that binding (identity for a full
// replay, a remapping for shrunk traces). References whose defining op
// was dropped by the shrinker pass through untranslated — the call
// then simply exercises an error path.
func Replay(d *proxy.Driver, tr *Trace) {
	trc, lane := d.HV.Tracer()
	sp := trc.Begin(lane, spanReplay)
	defer sp.End()
	env := newReplayEnv()
	for _, op := range tr.Ops {
		env.apply(d, op)
	}
}

// replayEnv is the frame/handle translation state one replay threads
// through its ops. Scheduled replays (ReplayScheduled) share one env
// across all vCPU streams — safe only under one-token scheduling,
// which serialises every apply with a happens-before edge.
type replayEnv struct {
	pfns    map[arch.PFN]arch.PFN
	handles map[hyp.Handle]hyp.Handle
}

func newReplayEnv() *replayEnv {
	return &replayEnv{
		pfns:    make(map[arch.PFN]arch.PFN),
		handles: make(map[hyp.Handle]hyp.Handle),
	}
}

func (e *replayEnv) xp(p arch.PFN) arch.PFN {
	if a, ok := e.pfns[p]; ok {
		return a
	}
	return p
}

func (e *replayEnv) xh(h hyp.Handle) hyp.Handle {
	if a, ok := e.handles[h]; ok {
		return a
	}
	return h
}

// apply executes one op against the driver, updating the translation
// bindings.
func (e *replayEnv) apply(d *proxy.Driver, op Op) {
	switch op.Kind {
	case OpAlloc:
		if pfn, err := d.AllocPage(); err == nil {
			e.pfns[op.PFN] = pfn
		}
	case OpFree:
		d.FreePage(e.xp(op.PFN))
	case OpTouch:
		d.Access(op.CPU, arch.IPA(e.xp(op.PFN).Phys()), op.Write)
	case OpShare:
		d.ShareHyp(op.CPU, e.xp(op.PFN))
	case OpUnshare:
		d.UnshareHyp(op.CPU, e.xp(op.PFN))
	case OpDonate:
		d.DonateHyp(op.CPU, e.xp(op.PFN), op.Nr)
	case OpReclaim:
		d.ReclaimPage(op.CPU, e.xp(op.PFN))
	case OpShareRange:
		d.ShareHypRange(op.CPU, e.xp(op.PFN), op.Nr)
	case OpInitVM:
		if h, _, err := d.InitVM(op.CPU, int(op.Nr)); err == nil {
			e.handles[op.H] = h
		}
	case OpInitVCPU:
		d.InitVCPU(op.CPU, e.xh(op.H), op.VCPU)
	case OpTeardown:
		d.TeardownVM(op.CPU, e.xh(op.H))
	case OpTopup:
		d.Topup(op.CPU, e.xh(op.H), op.VCPU, op.Nr)
	case OpTopupRaw:
		head := uint64(e.xp(op.PFN).Phys()) + op.Off
		d.HVC(op.CPU, hyp.HCTopupVCPUMemcache, uint64(e.xh(op.H)), uint64(op.VCPU), head, op.Nr)
	case OpLoad:
		d.VCPULoad(op.CPU, e.xh(op.H), op.VCPU)
	case OpPut:
		d.VCPUPut(op.CPU)
	case OpRun:
		d.VCPURun(op.CPU)
	case OpQueueGuest:
		d.QueueGuestOp(e.xh(op.H), op.VCPU, op.Guest)
	case OpLoadProgram:
		d.HV.LoadGuestProgram(e.xh(op.H), op.VCPU, op.Prog)
	case OpMapGuest:
		d.MapGuest(op.CPU, e.xp(op.PFN), op.GFN)
	case OpHVCRaw:
		d.HVC(op.CPU, op.HC, op.Args[0], op.Args[1], op.Args[2], op.Args[3])
	case OpFaultAgain:
		d.FaultAgain(op.CPU, arch.IPA(e.xp(op.PFN).Phys()), op.Write)
	}
}
