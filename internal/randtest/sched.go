package randtest

import (
	"ghostspec/internal/proxy"
	"ghostspec/internal/sched"
	"ghostspec/internal/telemetry/trace"
)

var spanSchedReplay = trace.NewName("randtest.replay-sched")

// SplitByCPU partitions a trace into n per-vCPU streams by the CPU
// each op was recorded against (modulo n, so a trace recorded with
// more CPUs than the scheduler has still lands every op somewhere).
// Each op's CPU is rewritten to its stream index — the stream *is* the
// vCPU issuing it. Relative order within a stream is preserved; order
// *across* streams is exactly what a schedule decides.
func SplitByCPU(tr *Trace, n int) [][]Op {
	streams := make([][]Op, n)
	for _, op := range tr.Ops {
		c := op.CPU % n
		if c < 0 {
			c = 0
		}
		op.CPU = c
		streams[c] = append(streams[c], op)
	}
	return streams
}

// ReplayScheduled replays a trace with each vCPU's ops on its own
// goroutine under the deterministic scheduler: every op is preceded by
// an op-boundary park, and every instrumented preemption point inside
// an op (lock acquire/release, TLBI, page-table visitor step) is a
// further opportunity for the schedule to interleave another vCPU
// mid-operation. The frame/handle translation env is shared across
// streams — one-token scheduling serialises it (see replayEnv).
//
// The returned error is the scheduler's: replay divergence, schedule
// deadlock, or a captured stream panic. Oracle verdicts, as always,
// live in the recorder attached to d's hypervisor.
func ReplayScheduled(d *proxy.Driver, tr *Trace, s *sched.Scheduler) error {
	trc, lane := d.HV.Tracer()
	sp := trc.Begin(lane, spanSchedReplay)
	defer sp.End()
	streams := SplitByCPU(tr, s.NCPUs())
	env := newReplayEnv()
	fns := make([]func(int), len(streams))
	for i := range streams {
		ops := streams[i]
		fns[i] = func(vcpu int) {
			for _, op := range ops {
				if !s.Boundary(vcpu) {
					return
				}
				env.apply(d, op)
			}
		}
	}
	return s.Run(fns...)
}
