package randtest

import (
	"bytes"
	"errors"
	"testing"

	"ghostspec/internal/hyp"
)

// wireSampleTrace exercises every op kind and every Op field with
// distinct values, so a field the codec forgot would break round-trip.
func wireSampleTrace() *Trace {
	return &Trace{Ops: []Op{
		{Kind: OpAlloc, CPU: 1, PFN: 0x81234},
		{Kind: OpFree, CPU: 2, PFN: 0x81234},
		{Kind: OpTouch, CPU: 0, PFN: 0x81235, Write: true},
		{Kind: OpShare, PFN: 0x81236},
		{Kind: OpUnshare, PFN: 0x81236},
		{Kind: OpDonate, PFN: 0x81237, Nr: 3},
		{Kind: OpReclaim, PFN: 0x81237},
		{Kind: OpShareRange, PFN: 0x81240, Nr: 7},
		{Kind: OpInitVM, Nr: 2, H: 0x11},
		{Kind: OpInitVCPU, H: 0x11, VCPU: 1},
		{Kind: OpTopup, H: 0x11, VCPU: 1, Nr: 5},
		{Kind: OpTopupRaw, H: 0x11, VCPU: 1, PFN: 0x81250, Off: 0x40, Nr: 1 << 20},
		{Kind: OpLoad, H: 0x11, VCPU: 1},
		{Kind: OpQueueGuest, H: 0x11, VCPU: 1,
			Guest: hyp.GuestOp{Kind: hyp.GuestAccess, IPA: 0x4000, Write: true, Value: 0xdead}},
		{Kind: OpLoadProgram, H: 0x11, VCPU: 1, Prog: []hyp.Insn{
			{Op: 1, Dst: 2, Src: 3, Imm: 0xfeed},
			{Op: 0, Dst: 1, Src: 0, Imm: 42},
		}},
		{Kind: OpMapGuest, PFN: 0x81260, GFN: 0x99},
		{Kind: OpRun, H: 0x11, VCPU: 1},
		{Kind: OpPut, H: 0x11, VCPU: 1},
		{Kind: OpHVCRaw, HC: hyp.HC(0x7fff), Args: [4]uint64{1, 2, 3, 1 << 40}},
		{Kind: OpFaultAgain, PFN: 0x81235, Write: true},
		{Kind: OpTeardown, H: 0x11},
	}}
}

// TestTraceWireRoundTrip pins the load-bearing properties: decoding an
// encoded trace reproduces it exactly, and re-encoding the decoded
// trace is byte-identical (determinism, the basis of fleet dedup).
func TestTraceWireRoundTrip(t *testing.T) {
	tr := wireSampleTrace()
	blob := EncodeTrace(tr)
	if again := EncodeTrace(tr); !bytes.Equal(blob, again) {
		t.Fatal("encoding the same trace twice produced different bytes")
	}
	got, err := DecodeTrace(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.String() != tr.String() {
		t.Fatalf("round-trip changed the trace:\nwant:\n%s\ngot:\n%s", tr, got)
	}
	if reblob := EncodeTrace(got); !bytes.Equal(blob, reblob) {
		t.Fatal("re-encoding the decoded trace is not byte-identical")
	}
}

// TestTraceWireNil pins that a nil trace encodes as a decodable empty
// trace (fleet findings may carry an empty Min).
func TestTraceWireNil(t *testing.T) {
	got, err := DecodeTrace(EncodeTrace(nil))
	if err != nil {
		t.Fatalf("decode(encode(nil)): %v", err)
	}
	if got.Len() != 0 {
		t.Fatalf("nil trace decoded to %d ops", got.Len())
	}
}

// TestTraceWireVersionSkew pins the loud rejection of a version this
// binary does not speak — the mixed-commit-fleet failure mode.
func TestTraceWireVersionSkew(t *testing.T) {
	blob := EncodeTrace(wireSampleTrace())
	blob[4] = TraceWireVersion + 1 // version byte follows the 4-byte magic
	if _, err := DecodeTrace(blob); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("skewed version decoded with err=%v, want ErrWireVersion", err)
	}
}

// TestTraceWireStrict pins that corruption never misparses silently:
// bad magic, every possible truncation, and trailing garbage all fail.
func TestTraceWireStrict(t *testing.T) {
	blob := EncodeTrace(wireSampleTrace())

	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := DecodeTrace(bad); err == nil {
		t.Error("bad magic decoded without error")
	}
	for n := 0; n < len(blob); n++ {
		if _, err := DecodeTrace(blob[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(blob))
		}
	}
	if _, err := DecodeTrace(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Error("trailing byte decoded without error")
	}
}
