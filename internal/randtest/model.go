// Package randtest is the random tester of paper §5: arbitrary
// hypercall generation guided by "a careful abstraction of the
// specification's (already abstract) ghost state" — a pool of
// allocated host memory, the subset donated to the hypervisor, the
// VMs with their handles, the vCPUs, and the memcache pages. The model
// steers sampling toward known-valid values where progress needs them,
// and rejects steps it predicts would crash the host kernel (while
// hypervisor crashes remain fair game and are exactly what we hunt).
//
// An unguided mode draws arguments uniformly instead, for the ablation
// the paper's design discussion motivates: without the model, random
// calls rarely progress through the VM state machine and frequently
// "crash" the host.
package randtest

import (
	"sort"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// pageState is the model's view of one allocated test page — the
// "very abstract model" inside the generator.
type pageState uint8

const (
	pageHostOwned pageState = iota
	pageSharedHyp
	pageDonatedHyp
	pageGuestOwned
	pageMemcache
	pageReclaimable
)

// vcpuModel tracks one vCPU's lifecycle position.
type vcpuModel struct {
	initialized bool
	loadedOn    int // physical CPU or -1
	topups      int // pages donated to its memcache (approximate)
}

// vmModel tracks one VM.
type vmModel struct {
	handle hyp.Handle
	vcpus  []*vcpuModel
	// mapped is the set of guest frame numbers already mapped.
	mapped map[uint64]arch.PFN
	// shared are guest pages currently shared back to the host.
	shared map[uint64]arch.PFN
}

// model is the generator's abstraction of the system state.
type model struct {
	pages map[arch.PFN]pageState
	vms   map[hyp.Handle]*vmModel
	// loadedVM[cpu] is the VM handle loaded on each physical CPU
	// (0 = none).
	loadedVM   []hyp.Handle
	loadedVCPU []int
	// reclaim is the set of frames the model believes reclaimable.
	reclaim map[arch.PFN]bool
}

func newModel(nrCPUs int) *model {
	m := &model{
		pages:      make(map[arch.PFN]pageState),
		vms:        make(map[hyp.Handle]*vmModel),
		loadedVM:   make([]hyp.Handle, nrCPUs),
		loadedVCPU: make([]int, nrCPUs),
		reclaim:    make(map[arch.PFN]bool),
	}
	for i := range m.loadedVCPU {
		m.loadedVCPU[i] = -1
	}
	return m
}

// pagesIn returns the model's pages currently in the given state, in
// ascending order — determinism of the generator under a fixed seed
// requires stable iteration everywhere.
func (m *model) pagesIn(st pageState) []arch.PFN {
	var out []arch.PFN
	for pfn, s := range m.pages {
		if s == st {
			out = append(out, pfn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// anyVM returns the handles of live VMs, ascending.
func (m *model) anyVM() []hyp.Handle {
	out := make([]hyp.Handle, 0, len(m.vms))
	for h := range m.vms {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedKeys returns a gfn map's keys in ascending order.
func sortedKeys(m map[uint64]arch.PFN) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// minReclaim returns the smallest reclaimable frame, deterministically.
func (m *model) minReclaim() (arch.PFN, bool) {
	found := false
	var best arch.PFN
	for p := range m.reclaim {
		if !found || p < best {
			best, found = p, true
		}
	}
	return best, found
}

// freeCPU returns a CPU with nothing loaded, or -1.
func (m *model) freeCPU() int {
	for cpu, h := range m.loadedVM {
		if h == 0 {
			return cpu
		}
	}
	return -1
}

// loadedCPUs returns CPUs with a vCPU loaded.
func (m *model) loadedCPUs() []int {
	var out []int
	for cpu, h := range m.loadedVM {
		if h != 0 {
			out = append(out, cpu)
		}
	}
	return out
}

// wouldCrashHost is the crash predictor: a host access to memory the
// host no longer owns takes an unrecoverable fault in the real setup
// (it would panic the test kernel), so the guided generator refuses to
// generate it.
func (m *model) wouldCrashHost(pfn arch.PFN) bool {
	st, known := m.pages[pfn]
	if !known {
		return false // untracked memory is plain host memory
	}
	switch st {
	case pageHostOwned, pageSharedHyp:
		return false
	default:
		return true
	}
}
