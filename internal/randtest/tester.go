package randtest

import (
	"errors"
	"fmt"
	"math/rand"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/telemetry/trace"
)

// Span names for the generation and replay drivers. The tester pulls
// the tracer (and its lane) from the hypervisor it drives, so these
// nest under the campaign's exec phases on the same timeline.
var (
	spanRun    = trace.NewName("randtest.run")
	spanReplay = trace.NewName("randtest.replay")
)

// Stats are the campaign counters.
type Stats struct {
	Steps int
	// Calls counts hypercalls actually issued (some steps are local
	// model operations like allocating a page).
	Calls int
	// ByHC counts calls per hypercall.
	ByHC map[hyp.HC]int
	// OKs/Errnos split results.
	OKs, Errnos int
	// Rejected counts generator steps the crash predictor refused.
	Rejected int
	// HostCrashes counts accesses the hypervisor reflected back — in
	// the real setup each would have panicked the test kernel.
	HostCrashes int
	// HypPanics counts hypervisor panics (the bugs we want).
	HypPanics int
	// VMsCreated/VMsDestroyed measure state-machine depth.
	VMsCreated, VMsDestroyed int
	// GuestRuns counts vcpu_run calls that consumed guest events.
	GuestRuns int
}

// Tester drives one system with random hypercalls.
type Tester struct {
	D   *proxy.Driver
	Rec *ghost.Recorder // may be nil (unchecked run)
	rng *rand.Rand

	// Guided selects model-guided generation; false draws arbitrary
	// values (the ablation baseline).
	Guided bool

	// Trace, when non-nil, records every driver action the tester
	// performs as a concrete Op. A full recording replays
	// byte-identically under the same seed (the shrinker depends on
	// this), and Replay can execute any subset of it.
	Trace *Trace

	// pinCPU, when >= 0, restricts all activity to one hardware
	// thread; used by ConcurrentCampaign to run one tester per CPU.
	pinCPU int

	m     *model
	stats Stats
}

// New builds a tester over a driver. Seed fixes the generation
// sequence.
func New(d *proxy.Driver, rec *ghost.Recorder, seed int64, guided bool) *Tester {
	return NewFromSource(d, rec, rand.NewSource(seed), guided)
}

// NewFromSource is New with an explicit random source. Every random
// draw the tester makes comes from this source and nowhere else — no
// global math/rand state — so concurrent workers each threading their
// own source replay identically under identical seeds.
func NewFromSource(d *proxy.Driver, rec *ghost.Recorder, src rand.Source, guided bool) *Tester {
	return &Tester{
		D:      d,
		Rec:    rec,
		rng:    rand.New(src),
		Guided: guided,
		pinCPU: -1,
		m:      newModel(d.HV.Globals().NrCPUs),
	}
}

// record appends one concrete op to the trace, if recording is on. It
// must be called exactly once per driver action, at the point the
// action is issued.
func (t *Tester) record(op Op) {
	if t.Trace != nil {
		t.Trace.Ops = append(t.Trace.Ops, op)
	}
}

// Stats returns the counters so far.
func (t *Tester) Stats() Stats {
	s := t.stats
	if s.ByHC == nil {
		s.ByHC = map[hyp.HC]int{}
	}
	return s
}

// Run executes n generator steps.
func (t *Tester) Run(n int) {
	tr, lane := t.D.HV.Tracer()
	sp := tr.Begin(lane, spanRun)
	defer sp.End()
	for i := 0; i < n; i++ {
		t.Step()
	}
}

// Step executes one generator step.
func (t *Tester) Step() {
	t.stats.Steps++
	if t.Guided {
		t.stepGuided()
	} else {
		t.stepUnguided()
	}
}

// count records a hypercall result.
func (t *Tester) count(id hyp.HC, err error) {
	t.stats.Calls++
	if t.stats.ByHC == nil {
		t.stats.ByHC = map[hyp.HC]int{}
	}
	t.stats.ByHC[id]++
	var pe *hyp.PanicError
	switch {
	case err == nil:
		t.stats.OKs++
	case errors.As(err, &pe):
		t.stats.HypPanics++
	default:
		t.stats.Errnos++
	}
}

// ---------------------------------------------------------------------
// Unguided generation: uniformly random hypercalls over a small value
// domain. It exists to show what the model buys.

func (t *Tester) stepUnguided() {
	cpu := t.cpu()
	hostBase := uint64(arch.PhysToPFN(t.D.HV.HostMemStart()))
	arb := func() uint64 {
		switch t.rng.Intn(4) {
		case 0:
			return t.rng.Uint64()
		case 1:
			return uint64(t.rng.Intn(64))
		case 2:
			return hostBase + uint64(t.rng.Intn(1024))
		default:
			return uint64(hyp.HandleOffset) + uint64(t.rng.Intn(4))
		}
	}
	if t.rng.Intn(8) == 0 {
		// Random host access: without the model this frequently hits
		// memory the host gave away — a host kernel panic in the real
		// setup.
		pfn := arch.PFN(hostBase + uint64(t.rng.Intn(1024)))
		write := t.rng.Intn(2) == 0
		t.record(Op{Kind: OpTouch, CPU: cpu, PFN: pfn, Write: write})
		ok, err := t.D.Access(cpu, arch.IPA(pfn.Phys()), write)
		if err == nil && !ok {
			t.stats.HostCrashes++
		}
		return
	}
	id := hyp.HC(t.rng.Intn(int(hyp.HCTopupVCPUMemcache) + 2))
	args := [4]uint64{arb(), arb(), arb(), arb()}
	t.record(Op{Kind: OpHVCRaw, CPU: cpu, HC: id, Args: args})
	ret, err := t.D.HVC(cpu, id, args[0], args[1], args[2], args[3])
	if err == nil && ret < 0 {
		err = hyp.Errno(ret)
	}
	t.count(id, err)
}

// ---------------------------------------------------------------------
// Guided generation.

// stepGuided picks a weighted operation using the model for arguments,
// mixing deliberate-but-safe error probes with progress operations.
func (t *Tester) stepGuided() {
	type op struct {
		weight int
		run    func() bool // false: preconditions unmet, step skipped
	}
	ops := []op{
		{10, t.opAllocPage},
		{8, t.opTouch},
		{8, t.opShare},
		{2, t.opShareRange},
		{6, t.opUnshare},
		{3, t.opDonate},
		{4, t.opInitVM},
		{5, t.opInitVCPU},
		{5, t.opTopup},
		{6, t.opLoad},
		{5, t.opPut},
		{8, t.opRun},
		{2, t.opLoadProgram},
		{6, t.opMapGuest},
		{2, t.opTeardown},
		{5, t.opReclaim},
		{3, t.opErrorProbe},
		{4, t.opBugProbe},
	}
	total := 0
	for _, o := range ops {
		total += o.weight
	}
	for attempt := 0; attempt < 8; attempt++ {
		pick := t.rng.Intn(total)
		for _, o := range ops {
			pick -= o.weight
			if pick < 0 {
				if o.run() {
					return
				}
				break
			}
		}
	}
}

// queueGuestOp scripts a guest event, recording it.
func (t *Tester) queueGuestOp(h hyp.Handle, idx int, op hyp.GuestOp) {
	t.record(Op{Kind: OpQueueGuest, H: h, VCPU: idx, Guest: op})
	t.D.QueueGuestOp(h, idx, op)
}

func (t *Tester) cpu() int {
	if t.pinCPU >= 0 {
		return t.pinCPU
	}
	return t.rng.Intn(len(t.m.loadedVM))
}

// loadTarget returns the CPU the tester may load a vCPU onto, or -1.
func (t *Tester) loadTarget() int {
	if t.pinCPU >= 0 {
		if t.m.loadedVM[t.pinCPU] == 0 {
			return t.pinCPU
		}
		return -1
	}
	return t.m.freeCPU()
}

func pickRand[T any](rng *rand.Rand, xs []T) (T, bool) {
	var zero T
	if len(xs) == 0 {
		return zero, false
	}
	return xs[rng.Intn(len(xs))], true
}

// allocPage is AllocPage plus recording; every allocation the tester
// makes goes through here so the trace binds each frame to its alloc.
func (t *Tester) allocPage() (arch.PFN, error) {
	pfn, err := t.D.AllocPage()
	if err == nil {
		t.record(Op{Kind: OpAlloc, PFN: pfn})
	}
	return pfn, err
}

func (t *Tester) freePage(pfn arch.PFN) {
	t.record(Op{Kind: OpFree, PFN: pfn})
	t.D.FreePage(pfn)
}

// allocContiguous allocates until it holds nr physically contiguous
// fresh frames. Non-contiguous spill stays allocated and is kept in
// the model as plain host-owned pages.
func (t *Tester) allocContiguous(nr uint64) ([]arch.PFN, bool) {
	run := make([]arch.PFN, 0, nr)
	for uint64(len(run)) < nr {
		pfn, err := t.allocPage()
		if err != nil {
			for _, p := range run {
				t.freePage(p)
			}
			return nil, false
		}
		if len(run) > 0 && pfn != run[len(run)-1]+1 {
			for _, p := range run {
				t.m.pages[p] = pageHostOwned // keep, just not contiguous
			}
			run = run[:0]
		}
		run = append(run, pfn)
	}
	return run, true
}

func (t *Tester) opAllocPage() bool {
	pfn, err := t.allocPage()
	if err != nil {
		return false
	}
	t.m.pages[pfn] = pageHostOwned
	return true
}

func (t *Tester) opTouch() bool {
	pfn, ok := pickRand(t.rng, t.m.pagesIn(pageHostOwned))
	if !ok {
		return false
	}
	if t.m.wouldCrashHost(pfn) {
		t.stats.Rejected++
		return false
	}
	cpu, write := t.cpu(), t.rng.Intn(2) == 0
	t.record(Op{Kind: OpTouch, CPU: cpu, PFN: pfn, Write: write})
	okAcc, err := t.D.Access(cpu, arch.IPA(pfn.Phys()), write)
	if err == nil && !okAcc {
		t.stats.HostCrashes++
	}
	return true
}

func (t *Tester) opShare() bool {
	pfn, ok := pickRand(t.rng, t.m.pagesIn(pageHostOwned))
	if !ok {
		return false
	}
	cpu := t.cpu()
	t.record(Op{Kind: OpShare, CPU: cpu, PFN: pfn})
	err := t.D.ShareHyp(cpu, pfn)
	t.count(hyp.HCHostShareHyp, err)
	if err == nil {
		t.m.pages[pfn] = pageSharedHyp
	}
	return true
}

// opShareRange exercises the phased hypercall over a short run of
// fresh pages (per-page lock phases, checked transactionally).
func (t *Tester) opShareRange() bool {
	nr := uint64(t.rng.Intn(4) + 2)
	run, ok := t.allocContiguous(nr)
	if !ok {
		return false
	}
	cpu := t.cpu()
	t.record(Op{Kind: OpShareRange, CPU: cpu, PFN: run[0], Nr: nr})
	err := t.D.ShareHypRange(cpu, run[0], nr)
	t.count(hyp.HCHostShareHypRange, err)
	if err == nil {
		for _, p := range run {
			t.m.pages[p] = pageSharedHyp
		}
	} else {
		for _, p := range run {
			t.m.pages[p] = pageHostOwned
		}
	}
	return true
}

func (t *Tester) opUnshare() bool {
	pfn, ok := pickRand(t.rng, t.m.pagesIn(pageSharedHyp))
	if !ok {
		return false
	}
	cpu := t.cpu()
	t.record(Op{Kind: OpUnshare, CPU: cpu, PFN: pfn})
	err := t.D.UnshareHyp(cpu, pfn)
	t.count(hyp.HCHostUnshareHyp, err)
	if err == nil {
		t.m.pages[pfn] = pageHostOwned
	}
	return true
}

func (t *Tester) opDonate() bool {
	pfn, err := t.allocPage()
	if err != nil {
		return false
	}
	cpu := t.cpu()
	t.record(Op{Kind: OpDonate, CPU: cpu, PFN: pfn, Nr: 1})
	err = t.D.DonateHyp(cpu, pfn, 1)
	t.count(hyp.HCHostDonateHyp, err)
	if err == nil {
		t.m.pages[pfn] = pageDonatedHyp
	}
	return true
}

func (t *Tester) opInitVM() bool {
	if len(t.m.vms) >= 6 {
		return false
	}
	nrVCPUs := t.rng.Intn(3) + 1
	cpu := t.cpu()
	h, donated, err := t.D.InitVM(cpu, nrVCPUs)
	t.record(Op{Kind: OpInitVM, CPU: cpu, Nr: uint64(nrVCPUs), H: h})
	if err != nil {
		t.count(hyp.HCInitVM, err)
		return true
	}
	t.count(hyp.HCInitVM, nil)
	t.stats.VMsCreated++
	vm := &vmModel{handle: h, mapped: map[uint64]arch.PFN{}, shared: map[uint64]arch.PFN{}}
	for i := 0; i < nrVCPUs; i++ {
		vm.vcpus = append(vm.vcpus, &vcpuModel{loadedOn: -1})
	}
	t.m.vms[h] = vm
	for _, pfn := range donated {
		t.m.pages[pfn] = pageDonatedHyp
	}
	return true
}

func (t *Tester) opInitVCPU() bool {
	h, ok := pickRand(t.rng, t.m.anyVM())
	if !ok {
		return false
	}
	vm := t.m.vms[h]
	idx := t.rng.Intn(len(vm.vcpus))
	cpu := t.cpu()
	t.record(Op{Kind: OpInitVCPU, CPU: cpu, H: h, VCPU: idx})
	err := t.D.InitVCPU(cpu, h, idx)
	t.count(hyp.HCInitVCPU, err)
	if err == nil {
		vm.vcpus[idx].initialized = true
	}
	return true
}

func (t *Tester) opTopup() bool {
	h, ok := pickRand(t.rng, t.m.anyVM())
	if !ok {
		return false
	}
	vm := t.m.vms[h]
	idx := t.rng.Intn(len(vm.vcpus))
	if !vm.vcpus[idx].initialized || vm.vcpus[idx].loadedOn >= 0 {
		return false
	}
	nr := uint64(t.rng.Intn(4) + 2)
	cpu := t.cpu()
	t.record(Op{Kind: OpTopup, CPU: cpu, H: h, VCPU: idx, Nr: nr})
	pfns, err := t.D.Topup(cpu, h, idx, nr)
	t.count(hyp.HCTopupVCPUMemcache, err)
	if err == nil {
		vm.vcpus[idx].topups += len(pfns)
		for _, pfn := range pfns {
			t.m.pages[pfn] = pageMemcache
		}
	}
	return true
}

func (t *Tester) opLoad() bool {
	cpu := t.loadTarget()
	if cpu < 0 {
		return false
	}
	h, ok := pickRand(t.rng, t.m.anyVM())
	if !ok {
		return false
	}
	vm := t.m.vms[h]
	idx := t.rng.Intn(len(vm.vcpus))
	vc := vm.vcpus[idx]
	if !vc.initialized || vc.loadedOn >= 0 {
		return false
	}
	t.record(Op{Kind: OpLoad, CPU: cpu, H: h, VCPU: idx})
	err := t.D.VCPULoad(cpu, h, idx)
	t.count(hyp.HCVCPULoad, err)
	if err == nil {
		vc.loadedOn = cpu
		t.m.loadedVM[cpu] = h
		t.m.loadedVCPU[cpu] = idx
	}
	return true
}

func (t *Tester) opPut() bool {
	cpu, ok := pickRand(t.rng, t.m.loadedCPUs())
	if !ok {
		return false
	}
	h := t.m.loadedVM[cpu]
	idx := t.m.loadedVCPU[cpu]
	t.record(Op{Kind: OpPut, CPU: cpu})
	err := t.D.VCPUPut(cpu)
	t.count(hyp.HCVCPUPut, err)
	if err == nil {
		if vm := t.m.vms[h]; vm != nil {
			vm.vcpus[idx].loadedOn = -1
		}
		t.m.loadedVM[cpu] = 0
		t.m.loadedVCPU[cpu] = -1
	}
	return true
}

func (t *Tester) opRun() bool {
	cpu, ok := pickRand(t.rng, t.m.loadedCPUs())
	if !ok {
		return false
	}
	h := t.m.loadedVM[cpu]
	vm := t.m.vms[h]
	idx := t.m.loadedVCPU[cpu]

	// Script a random guest event first.
	if vm != nil {
		switch t.rng.Intn(4) {
		case 0: // access a mapped gfn (succeeds) or unmapped (fault exit)
			gfn := uint64(t.rng.Intn(64))
			t.queueGuestOp(h, idx, hyp.GuestOp{
				Kind: hyp.GuestAccess, IPA: arch.IPA(gfn << arch.PageShift),
				Write: t.rng.Intn(2) == 0, Value: t.rng.Uint64(),
			})
		case 1: // share a mapped page with the host
			if gfns := sortedKeys(vm.mapped); len(gfns) > 0 {
				gfn := gfns[t.rng.Intn(len(gfns))]
				if _, already := vm.shared[gfn]; !already {
					t.queueGuestOp(h, idx, hyp.GuestOp{Kind: hyp.GuestShareHost, IPA: arch.IPA(gfn << arch.PageShift)})
					vm.shared[gfn] = vm.mapped[gfn]
				}
			}
		case 2: // unshare
			if gfns := sortedKeys(vm.shared); len(gfns) > 0 {
				gfn := gfns[t.rng.Intn(len(gfns))]
				t.queueGuestOp(h, idx, hyp.GuestOp{Kind: hyp.GuestUnshareHost, IPA: arch.IPA(gfn << arch.PageShift)})
				delete(vm.shared, gfn)
			}
		}
	}
	t.record(Op{Kind: OpRun, CPU: cpu})
	_, err := t.D.VCPURun(cpu)
	t.count(hyp.HCVCPURun, err)
	t.stats.GuestRuns++
	return true
}

// opLoadProgram installs a small random guest program on an unloaded
// vCPU: random arithmetic over a few registers, memory traffic at
// model-plausible guest addresses (mapped ones mostly succeed,
// unmapped ones exercise the fault/exit path), and scattered yields so
// runs terminate. The interpreter's restart semantics and the oracle's
// environment treatment of guest registers both get stressed this way.
func (t *Tester) opLoadProgram() bool {
	h, ok := pickRand(t.rng, t.m.anyVM())
	if !ok {
		return false
	}
	vm := t.m.vms[h]
	idx := t.rng.Intn(len(vm.vcpus))
	if !vm.vcpus[idx].initialized || vm.vcpus[idx].loadedOn >= 0 {
		return false
	}
	gfns := sortedKeys(vm.mapped)
	n := t.rng.Intn(10) + 4
	prog := make([]hyp.Insn, 0, n+1)
	for i := 0; i < n; i++ {
		switch t.rng.Intn(5) {
		case 0:
			prog = append(prog, hyp.Insn{Op: hyp.OpMovi, Dst: t.rng.Intn(4) + 1, Imm: t.rng.Uint64() % 1000})
		case 1:
			prog = append(prog, hyp.Insn{Op: hyp.OpAdd, Dst: t.rng.Intn(4) + 1, Src: t.rng.Intn(4) + 1})
		case 2, 3:
			gfn := uint64(t.rng.Intn(64))
			if len(gfns) > 0 && t.rng.Intn(2) == 0 {
				gfn = gfns[t.rng.Intn(len(gfns))] // likely mapped
			}
			op := hyp.OpLoad
			if t.rng.Intn(2) == 0 {
				op = hyp.OpStore
			}
			prog = append(prog, hyp.Insn{Op: op, Dst: t.rng.Intn(4) + 1, Src: 0, Imm: gfn << arch.PageShift})
		case 4:
			prog = append(prog, hyp.Insn{Op: hyp.OpYield})
		}
	}
	prog = append(prog, hyp.Insn{Op: hyp.OpHalt})
	t.record(Op{Kind: OpLoadProgram, H: h, VCPU: idx, Prog: prog})
	return t.D.HV.LoadGuestProgram(h, idx, prog)
}

func (t *Tester) opMapGuest() bool {
	cpu, ok := pickRand(t.rng, t.m.loadedCPUs())
	if !ok {
		return false
	}
	h := t.m.loadedVM[cpu]
	vm := t.m.vms[h]
	if vm == nil {
		return false
	}
	vc := vm.vcpus[t.m.loadedVCPU[cpu]]
	if vc.topups < 3 {
		return false // predictor: would just churn -ENOMEM
	}
	pfn, err := t.allocPage()
	if err != nil {
		return false
	}
	gfn := uint64(t.rng.Intn(64))
	if _, taken := vm.mapped[gfn]; taken {
		t.freePage(pfn)
		return false
	}
	t.record(Op{Kind: OpMapGuest, CPU: cpu, PFN: pfn, GFN: gfn})
	err = t.D.MapGuest(cpu, pfn, gfn)
	t.count(hyp.HCHostMapGuest, err)
	if err == nil {
		vm.mapped[gfn] = pfn
		t.m.pages[pfn] = pageGuestOwned
		vc.topups -= 3 // approximation of table-page consumption
		if vc.topups < 0 {
			vc.topups = 0
		}
	}
	return true
}

func (t *Tester) opTeardown() bool {
	h, ok := pickRand(t.rng, t.m.anyVM())
	if !ok {
		return false
	}
	vm := t.m.vms[h]
	for _, vc := range vm.vcpus {
		if vc.loadedOn >= 0 {
			return false // predictor: EBUSY, not interesting every time
		}
	}
	cpu := t.cpu()
	t.record(Op{Kind: OpTeardown, CPU: cpu, H: h})
	err := t.D.TeardownVM(cpu, h)
	t.count(hyp.HCTeardownVM, err)
	if err == nil {
		t.stats.VMsDestroyed++
		delete(t.m.vms, h)
		// Everything it held becomes reclaimable; the model marks the
		// pages it knows about (its memcache and metadata pages it
		// cannot attribute individually — reclaim probing of those is
		// left to the error probes).
		for _, gfn := range sortedKeys(vm.mapped) {
			pfn := vm.mapped[gfn]
			t.m.pages[pfn] = pageReclaimable
			t.m.reclaim[pfn] = true
		}
	}
	return true
}

func (t *Tester) opReclaim() bool {
	pfn, found := t.m.minReclaim()
	if !found {
		return false
	}
	cpu := t.cpu()
	t.record(Op{Kind: OpReclaim, CPU: cpu, PFN: pfn})
	err := t.D.ReclaimPage(cpu, pfn)
	t.count(hyp.HCHostReclaimPage, err)
	delete(t.m.reclaim, pfn)
	if err == nil {
		t.m.pages[pfn] = pageHostOwned
	}
	return true
}

// opErrorProbe deliberately drives safe error paths: calls that return
// an errno without endangering the host.
func (t *Tester) opErrorProbe() bool {
	cpu := t.cpu()
	switch t.rng.Intn(6) {
	case 0: // share MMIO
		pfn := arch.PhysToPFN(hyp.UARTPhys)
		t.record(Op{Kind: OpShare, CPU: cpu, PFN: pfn})
		err := t.D.ShareHyp(cpu, pfn)
		t.count(hyp.HCHostShareHyp, err)
	case 1: // unshare something never shared
		pfn, ok := pickRand(t.rng, t.m.pagesIn(pageHostOwned))
		if !ok {
			return false
		}
		t.record(Op{Kind: OpUnshare, CPU: cpu, PFN: pfn})
		err := t.D.UnshareHyp(cpu, pfn)
		t.count(hyp.HCHostUnshareHyp, err)
	case 2: // bad handle
		t.record(Op{Kind: OpLoad, CPU: cpu, H: hyp.Handle(0xbeef), VCPU: 0})
		err := t.D.VCPULoad(cpu, hyp.Handle(0xbeef), 0)
		t.count(hyp.HCVCPULoad, err)
	case 3: // unknown hypercall
		args := [4]uint64{t.rng.Uint64()}
		t.record(Op{Kind: OpHVCRaw, CPU: cpu, HC: hyp.HC(0x7fff), Args: args})
		_, err := t.D.HVC(cpu, hyp.HC(0x7fff), args[0])
		if err != nil {
			var pe *hyp.PanicError
			if errors.As(err, &pe) {
				t.stats.HypPanics++
			}
		}
		t.stats.Calls++
	case 4: // reclaim garbage
		pfn := arch.PFN(t.rng.Intn(1 << 20))
		t.record(Op{Kind: OpReclaim, CPU: cpu, PFN: pfn})
		err := t.D.ReclaimPage(cpu, pfn)
		t.count(hyp.HCHostReclaimPage, err)
	case 5: // run with nothing loaded
		if t.m.loadedVM[cpu] != 0 {
			return false
		}
		t.record(Op{Kind: OpRun, CPU: cpu})
		_, err := t.D.VCPURun(cpu)
		t.count(hyp.HCVCPURun, err)
	}
	return true
}

// ---------------------------------------------------------------------
// Bug probes: deliberately malicious-host sequences aimed at the exact
// code points where the paper's §5/§6 bugs live. On a correct build
// every probe lands on a safe error path (an errno or a tolerated
// spurious event); on a buggy build the oracle alarms. They exist so a
// short campaign reaches every entry of the faults.All() detection
// matrix, not just the bugs that sit on the mainline state machine.

// topupTarget finds an initialised, unloaded vCPU (the preconditions a
// topup must meet before the memcache code paths are even reached).
func (t *Tester) topupTarget() (hyp.Handle, int, bool) {
	for _, h := range t.m.anyVM() {
		for idx, vc := range t.m.vms[h].vcpus {
			if vc.initialized && vc.loadedOn < 0 {
				return h, idx, true
			}
		}
	}
	return 0, 0, false
}

// uninitVCPU finds a vCPU that was never initialised.
func (t *Tester) uninitVCPU() (hyp.Handle, int, bool) {
	for _, h := range t.m.anyVM() {
		for idx, vc := range t.m.vms[h].vcpus {
			if !vc.initialized {
				return h, idx, true
			}
		}
	}
	return 0, 0, false
}

func (t *Tester) opBugProbe() bool {
	cpu := t.cpu()
	switch t.rng.Intn(7) {
	case 0: // misaligned memcache head (§6 bug 1's trigger)
		h, idx, ok := t.topupTarget()
		if !ok {
			return false
		}
		pfn, ok := pickRand(t.rng, t.m.pagesIn(pageHostOwned))
		if !ok {
			return false
		}
		// Fault the page in so its state is host-owned-mapped; the
		// word at the misaligned head then reads as a nil next link.
		t.record(Op{Kind: OpTouch, CPU: cpu, PFN: pfn, Write: true})
		t.D.Access(cpu, arch.IPA(pfn.Phys()), true)
		t.record(Op{Kind: OpTopupRaw, CPU: cpu, H: h, VCPU: idx, PFN: pfn, Off: 0x800, Nr: 1})
		head := uint64(pfn.Phys()) + 0x800
		ret, err := t.D.HVC(cpu, hyp.HCTopupVCPUMemcache, uint64(h), uint64(idx), head, 1)
		if err == nil && ret < 0 {
			err = hyp.Errno(ret)
		}
		t.count(hyp.HCTopupVCPUMemcache, err)
	case 1: // huge memcache count (§6 bug 2's trigger)
		h, idx, ok := t.topupTarget()
		if !ok {
			return false
		}
		pfn, ok := pickRand(t.rng, t.m.pagesIn(pageHostOwned))
		if !ok {
			return false
		}
		t.record(Op{Kind: OpTopupRaw, CPU: cpu, H: h, VCPU: idx, PFN: pfn, Off: 0, Nr: 0x10000})
		ret, err := t.D.HVC(cpu, hyp.HCTopupVCPUMemcache, uint64(h), uint64(idx), uint64(pfn.Phys()), 0x10000)
		if err == nil && ret < 0 {
			err = hyp.Errno(ret)
		}
		t.count(hyp.HCTopupVCPUMemcache, err)
	case 2: // load an uninitialised vCPU (§6 bug 3's trigger)
		h, idx, ok := t.uninitVCPU()
		if !ok {
			return false
		}
		t.record(Op{Kind: OpLoad, CPU: cpu, H: h, VCPU: idx})
		err := t.D.VCPULoad(cpu, h, idx)
		t.count(hyp.HCVCPULoad, err)
	case 3: // spurious stage 2 fault re-delivery (§6 bug 4's trigger)
		pfn, ok := pickRand(t.rng, t.m.pagesIn(pageHostOwned))
		if !ok {
			return false
		}
		t.record(Op{Kind: OpTouch, CPU: cpu, PFN: pfn, Write: true})
		t.D.Access(cpu, arch.IPA(pfn.Phys()), true)
		t.record(Op{Kind: OpFaultAgain, CPU: cpu, PFN: pfn, Write: true})
		if err := t.D.FaultAgain(cpu, arch.IPA(pfn.Phys()), true); err != nil {
			var pe *hyp.PanicError
			if errors.As(err, &pe) {
				t.stats.HypPanics++
			}
		}
	case 4: // share an already-shared page (share-state / return-value bugs)
		pfn, ok := pickRand(t.rng, t.m.pagesIn(pageSharedHyp))
		if !ok {
			return false
		}
		t.record(Op{Kind: OpShare, CPU: cpu, PFN: pfn})
		err := t.D.ShareHyp(cpu, pfn)
		t.count(hyp.HCHostShareHyp, err)
	case 5: // share-range across a pre-shared page (bad-stop bug)
		run, ok := t.allocContiguous(3)
		if !ok {
			return false
		}
		t.record(Op{Kind: OpShare, CPU: cpu, PFN: run[1]})
		err := t.D.ShareHyp(cpu, run[1])
		t.count(hyp.HCHostShareHyp, err)
		t.record(Op{Kind: OpShareRange, CPU: cpu, PFN: run[0], Nr: 3})
		err = t.D.ShareHypRange(cpu, run[0], 3)
		t.count(hyp.HCHostShareHypRange, err)
		// Phased semantics: pages before the failing phase stay
		// shared regardless of the reported result.
		t.m.pages[run[0]] = pageSharedHyp
		t.m.pages[run[1]] = pageSharedHyp
		t.m.pages[run[2]] = pageHostOwned
	case 6: // stale TLB after unshare (skipped-TLBI bug's trigger)
		pfn, ok := pickRand(t.rng, t.m.pagesIn(pageHostOwned))
		if !ok {
			return false
		}
		if t.m.wouldCrashHost(pfn) {
			t.stats.Rejected++
			return false
		}
		// Share, touch (the access caches the shared-owned translation
		// in the software TLB), then unshare: the unshare's entry
		// rewrite must TLBI that cached walk. On a correct build the
		// sequence is silent; with the skipped-TLBI bug the coherence
		// check alarms at the unshare's host-lock release.
		t.record(Op{Kind: OpShare, CPU: cpu, PFN: pfn})
		if err := t.D.ShareHyp(cpu, pfn); err != nil {
			t.count(hyp.HCHostShareHyp, err)
			return true
		}
		t.count(hyp.HCHostShareHyp, nil)
		t.m.pages[pfn] = pageSharedHyp
		t.record(Op{Kind: OpTouch, CPU: cpu, PFN: pfn, Write: true})
		t.D.Access(cpu, arch.IPA(pfn.Phys()), true)
		t.record(Op{Kind: OpUnshare, CPU: cpu, PFN: pfn})
		err := t.D.UnshareHyp(cpu, pfn)
		t.count(hyp.HCHostUnshareHyp, err)
		if err == nil {
			t.m.pages[pfn] = pageHostOwned
		}
	}
	return true
}

func (s Stats) String() string {
	return fmt.Sprintf("steps=%d calls=%d ok=%d errno=%d rejected=%d hostCrashes=%d hypPanics=%d vms=%d/%d",
		s.Steps, s.Calls, s.OKs, s.Errnos, s.Rejected, s.HostCrashes, s.HypPanics,
		s.VMsCreated, s.VMsDestroyed)
}
