package randtest

import (
	"errors"
	"fmt"
	"math/rand"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

// Stats are the campaign counters.
type Stats struct {
	Steps int
	// Calls counts hypercalls actually issued (some steps are local
	// model operations like allocating a page).
	Calls int
	// ByHC counts calls per hypercall.
	ByHC map[hyp.HC]int
	// OKs/Errnos split results.
	OKs, Errnos int
	// Rejected counts generator steps the crash predictor refused.
	Rejected int
	// HostCrashes counts accesses the hypervisor reflected back — in
	// the real setup each would have panicked the test kernel.
	HostCrashes int
	// HypPanics counts hypervisor panics (the bugs we want).
	HypPanics int
	// VMsCreated/VMsDestroyed measure state-machine depth.
	VMsCreated, VMsDestroyed int
	// GuestRuns counts vcpu_run calls that consumed guest events.
	GuestRuns int
}

// Tester drives one system with random hypercalls.
type Tester struct {
	D   *proxy.Driver
	Rec *ghost.Recorder // may be nil (unchecked run)
	rng *rand.Rand

	// Guided selects model-guided generation; false draws arbitrary
	// values (the ablation baseline).
	Guided bool

	// pinCPU, when >= 0, restricts all activity to one hardware
	// thread; used by ConcurrentCampaign to run one tester per CPU.
	pinCPU int

	m     *model
	stats Stats
}

// New builds a tester over a driver. Seed fixes the generation
// sequence.
func New(d *proxy.Driver, rec *ghost.Recorder, seed int64, guided bool) *Tester {
	return &Tester{
		D:      d,
		Rec:    rec,
		rng:    rand.New(rand.NewSource(seed)),
		Guided: guided,
		pinCPU: -1,
		m:      newModel(d.HV.Globals().NrCPUs),
	}
}

// Stats returns the counters so far.
func (t *Tester) Stats() Stats {
	s := t.stats
	if s.ByHC == nil {
		s.ByHC = map[hyp.HC]int{}
	}
	return s
}

// Run executes n generator steps.
func (t *Tester) Run(n int) {
	for i := 0; i < n; i++ {
		t.Step()
	}
}

// Step executes one generator step.
func (t *Tester) Step() {
	t.stats.Steps++
	if t.Guided {
		t.stepGuided()
	} else {
		t.stepUnguided()
	}
}

// count records a hypercall result.
func (t *Tester) count(id hyp.HC, err error) {
	t.stats.Calls++
	if t.stats.ByHC == nil {
		t.stats.ByHC = map[hyp.HC]int{}
	}
	t.stats.ByHC[id]++
	var pe *hyp.PanicError
	switch {
	case err == nil:
		t.stats.OKs++
	case errors.As(err, &pe):
		t.stats.HypPanics++
	default:
		t.stats.Errnos++
	}
}

// ---------------------------------------------------------------------
// Unguided generation: uniformly random hypercalls over a small value
// domain. It exists to show what the model buys.

func (t *Tester) stepUnguided() {
	cpu := t.cpu()
	hostBase := uint64(arch.PhysToPFN(t.D.HV.HostMemStart()))
	arb := func() uint64 {
		switch t.rng.Intn(4) {
		case 0:
			return t.rng.Uint64()
		case 1:
			return uint64(t.rng.Intn(64))
		case 2:
			return hostBase + uint64(t.rng.Intn(1024))
		default:
			return uint64(hyp.HandleOffset) + uint64(t.rng.Intn(4))
		}
	}
	if t.rng.Intn(8) == 0 {
		// Random host access: without the model this frequently hits
		// memory the host gave away — a host kernel panic in the real
		// setup.
		pfn := arch.PFN(hostBase + uint64(t.rng.Intn(1024)))
		ok, err := t.D.Access(cpu, arch.IPA(pfn.Phys()), t.rng.Intn(2) == 0)
		if err == nil && !ok {
			t.stats.HostCrashes++
		}
		return
	}
	id := hyp.HC(t.rng.Intn(int(hyp.HCTopupVCPUMemcache) + 2))
	ret, err := t.D.HVC(cpu, id, arb(), arb(), arb(), arb())
	if err == nil && ret < 0 {
		err = hyp.Errno(ret)
	}
	t.count(id, err)
}

// ---------------------------------------------------------------------
// Guided generation.

// stepGuided picks a weighted operation using the model for arguments,
// mixing deliberate-but-safe error probes with progress operations.
func (t *Tester) stepGuided() {
	type op struct {
		weight int
		run    func() bool // false: preconditions unmet, step skipped
	}
	ops := []op{
		{10, t.opAllocPage},
		{8, t.opTouch},
		{8, t.opShare},
		{2, t.opShareRange},
		{6, t.opUnshare},
		{3, t.opDonate},
		{4, t.opInitVM},
		{5, t.opInitVCPU},
		{5, t.opTopup},
		{6, t.opLoad},
		{5, t.opPut},
		{8, t.opRun},
		{2, t.opLoadProgram},
		{6, t.opMapGuest},
		{2, t.opTeardown},
		{5, t.opReclaim},
		{3, t.opErrorProbe},
	}
	total := 0
	for _, o := range ops {
		total += o.weight
	}
	for attempt := 0; attempt < 8; attempt++ {
		pick := t.rng.Intn(total)
		for _, o := range ops {
			pick -= o.weight
			if pick < 0 {
				if o.run() {
					return
				}
				break
			}
		}
	}
}

func (t *Tester) cpu() int {
	if t.pinCPU >= 0 {
		return t.pinCPU
	}
	return t.rng.Intn(len(t.m.loadedVM))
}

// loadTarget returns the CPU the tester may load a vCPU onto, or -1.
func (t *Tester) loadTarget() int {
	if t.pinCPU >= 0 {
		if t.m.loadedVM[t.pinCPU] == 0 {
			return t.pinCPU
		}
		return -1
	}
	return t.m.freeCPU()
}

func pickRand[T any](rng *rand.Rand, xs []T) (T, bool) {
	var zero T
	if len(xs) == 0 {
		return zero, false
	}
	return xs[rng.Intn(len(xs))], true
}

func (t *Tester) opAllocPage() bool {
	pfn, err := t.D.AllocPage()
	if err != nil {
		return false
	}
	t.m.pages[pfn] = pageHostOwned
	return true
}

func (t *Tester) opTouch() bool {
	pfn, ok := pickRand(t.rng, t.m.pagesIn(pageHostOwned))
	if !ok {
		return false
	}
	if t.m.wouldCrashHost(pfn) {
		t.stats.Rejected++
		return false
	}
	okAcc, err := t.D.Access(t.cpu(), arch.IPA(pfn.Phys()), t.rng.Intn(2) == 0)
	if err == nil && !okAcc {
		t.stats.HostCrashes++
	}
	return true
}

func (t *Tester) opShare() bool {
	pfn, ok := pickRand(t.rng, t.m.pagesIn(pageHostOwned))
	if !ok {
		return false
	}
	err := t.D.ShareHyp(t.cpu(), pfn)
	t.count(hyp.HCHostShareHyp, err)
	if err == nil {
		t.m.pages[pfn] = pageSharedHyp
	}
	return true
}

// opShareRange exercises the phased hypercall over a short run of
// fresh pages (per-page lock phases, checked transactionally).
func (t *Tester) opShareRange() bool {
	nr := uint64(t.rng.Intn(4) + 2)
	run := make([]arch.PFN, 0, nr)
	for uint64(len(run)) < nr {
		pfn, err := t.D.AllocPage()
		if err != nil {
			for _, p := range run {
				t.D.FreePage(p)
			}
			return false
		}
		if len(run) > 0 && pfn != run[len(run)-1]+1 {
			for _, p := range run {
				t.m.pages[p] = pageHostOwned // keep, just not contiguous
			}
			run = run[:0]
		}
		run = append(run, pfn)
	}
	err := t.D.ShareHypRange(t.cpu(), run[0], nr)
	t.count(hyp.HCHostShareHypRange, err)
	if err == nil {
		for _, p := range run {
			t.m.pages[p] = pageSharedHyp
		}
	} else {
		for _, p := range run {
			t.m.pages[p] = pageHostOwned
		}
	}
	return true
}

func (t *Tester) opUnshare() bool {
	pfn, ok := pickRand(t.rng, t.m.pagesIn(pageSharedHyp))
	if !ok {
		return false
	}
	err := t.D.UnshareHyp(t.cpu(), pfn)
	t.count(hyp.HCHostUnshareHyp, err)
	if err == nil {
		t.m.pages[pfn] = pageHostOwned
	}
	return true
}

func (t *Tester) opDonate() bool {
	pfn, err := t.D.AllocPage()
	if err != nil {
		return false
	}
	err = t.D.DonateHyp(t.cpu(), pfn, 1)
	t.count(hyp.HCHostDonateHyp, err)
	if err == nil {
		t.m.pages[pfn] = pageDonatedHyp
	}
	return true
}

func (t *Tester) opInitVM() bool {
	if len(t.m.vms) >= 6 {
		return false
	}
	nrVCPUs := t.rng.Intn(3) + 1
	h, donated, err := t.D.InitVM(t.cpu(), nrVCPUs)
	if err != nil {
		t.count(hyp.HCInitVM, err)
		return true
	}
	t.count(hyp.HCInitVM, nil)
	t.stats.VMsCreated++
	vm := &vmModel{handle: h, mapped: map[uint64]arch.PFN{}, shared: map[uint64]arch.PFN{}}
	for i := 0; i < nrVCPUs; i++ {
		vm.vcpus = append(vm.vcpus, &vcpuModel{loadedOn: -1})
	}
	t.m.vms[h] = vm
	for _, pfn := range donated {
		t.m.pages[pfn] = pageDonatedHyp
	}
	return true
}

func (t *Tester) opInitVCPU() bool {
	h, ok := pickRand(t.rng, t.m.anyVM())
	if !ok {
		return false
	}
	vm := t.m.vms[h]
	idx := t.rng.Intn(len(vm.vcpus))
	err := t.D.InitVCPU(t.cpu(), h, idx)
	t.count(hyp.HCInitVCPU, err)
	if err == nil {
		vm.vcpus[idx].initialized = true
	}
	return true
}

func (t *Tester) opTopup() bool {
	h, ok := pickRand(t.rng, t.m.anyVM())
	if !ok {
		return false
	}
	vm := t.m.vms[h]
	idx := t.rng.Intn(len(vm.vcpus))
	if !vm.vcpus[idx].initialized || vm.vcpus[idx].loadedOn >= 0 {
		return false
	}
	nr := uint64(t.rng.Intn(4) + 2)
	pfns, err := t.D.Topup(t.cpu(), h, idx, nr)
	t.count(hyp.HCTopupVCPUMemcache, err)
	if err == nil {
		vm.vcpus[idx].topups += len(pfns)
		for _, pfn := range pfns {
			t.m.pages[pfn] = pageMemcache
		}
	}
	return true
}

func (t *Tester) opLoad() bool {
	cpu := t.loadTarget()
	if cpu < 0 {
		return false
	}
	h, ok := pickRand(t.rng, t.m.anyVM())
	if !ok {
		return false
	}
	vm := t.m.vms[h]
	idx := t.rng.Intn(len(vm.vcpus))
	vc := vm.vcpus[idx]
	if !vc.initialized || vc.loadedOn >= 0 {
		return false
	}
	err := t.D.VCPULoad(cpu, h, idx)
	t.count(hyp.HCVCPULoad, err)
	if err == nil {
		vc.loadedOn = cpu
		t.m.loadedVM[cpu] = h
		t.m.loadedVCPU[cpu] = idx
	}
	return true
}

func (t *Tester) opPut() bool {
	cpu, ok := pickRand(t.rng, t.m.loadedCPUs())
	if !ok {
		return false
	}
	h := t.m.loadedVM[cpu]
	idx := t.m.loadedVCPU[cpu]
	err := t.D.VCPUPut(cpu)
	t.count(hyp.HCVCPUPut, err)
	if err == nil {
		if vm := t.m.vms[h]; vm != nil {
			vm.vcpus[idx].loadedOn = -1
		}
		t.m.loadedVM[cpu] = 0
		t.m.loadedVCPU[cpu] = -1
	}
	return true
}

func (t *Tester) opRun() bool {
	cpu, ok := pickRand(t.rng, t.m.loadedCPUs())
	if !ok {
		return false
	}
	h := t.m.loadedVM[cpu]
	vm := t.m.vms[h]
	idx := t.m.loadedVCPU[cpu]

	// Script a random guest event first.
	if vm != nil {
		switch t.rng.Intn(4) {
		case 0: // access a mapped gfn (succeeds) or unmapped (fault exit)
			gfn := uint64(t.rng.Intn(64))
			t.D.QueueGuestOp(h, idx, hyp.GuestOp{
				Kind: hyp.GuestAccess, IPA: arch.IPA(gfn << arch.PageShift),
				Write: t.rng.Intn(2) == 0, Value: t.rng.Uint64(),
			})
		case 1: // share a mapped page with the host
			if gfns := sortedKeys(vm.mapped); len(gfns) > 0 {
				gfn := gfns[t.rng.Intn(len(gfns))]
				if _, already := vm.shared[gfn]; !already {
					t.D.QueueGuestOp(h, idx, hyp.GuestOp{Kind: hyp.GuestShareHost, IPA: arch.IPA(gfn << arch.PageShift)})
					vm.shared[gfn] = vm.mapped[gfn]
				}
			}
		case 2: // unshare
			if gfns := sortedKeys(vm.shared); len(gfns) > 0 {
				gfn := gfns[t.rng.Intn(len(gfns))]
				t.D.QueueGuestOp(h, idx, hyp.GuestOp{Kind: hyp.GuestUnshareHost, IPA: arch.IPA(gfn << arch.PageShift)})
				delete(vm.shared, gfn)
			}
		}
	}
	_, err := t.D.VCPURun(cpu)
	t.count(hyp.HCVCPURun, err)
	t.stats.GuestRuns++
	return true
}

// opLoadProgram installs a small random guest program on an unloaded
// vCPU: random arithmetic over a few registers, memory traffic at
// model-plausible guest addresses (mapped ones mostly succeed,
// unmapped ones exercise the fault/exit path), and scattered yields so
// runs terminate. The interpreter's restart semantics and the oracle's
// environment treatment of guest registers both get stressed this way.
func (t *Tester) opLoadProgram() bool {
	h, ok := pickRand(t.rng, t.m.anyVM())
	if !ok {
		return false
	}
	vm := t.m.vms[h]
	idx := t.rng.Intn(len(vm.vcpus))
	if !vm.vcpus[idx].initialized || vm.vcpus[idx].loadedOn >= 0 {
		return false
	}
	gfns := sortedKeys(vm.mapped)
	n := t.rng.Intn(10) + 4
	prog := make([]hyp.Insn, 0, n+1)
	for i := 0; i < n; i++ {
		switch t.rng.Intn(5) {
		case 0:
			prog = append(prog, hyp.Insn{Op: hyp.OpMovi, Dst: t.rng.Intn(4) + 1, Imm: t.rng.Uint64() % 1000})
		case 1:
			prog = append(prog, hyp.Insn{Op: hyp.OpAdd, Dst: t.rng.Intn(4) + 1, Src: t.rng.Intn(4) + 1})
		case 2, 3:
			gfn := uint64(t.rng.Intn(64))
			if len(gfns) > 0 && t.rng.Intn(2) == 0 {
				gfn = gfns[t.rng.Intn(len(gfns))] // likely mapped
			}
			op := hyp.OpLoad
			if t.rng.Intn(2) == 0 {
				op = hyp.OpStore
			}
			prog = append(prog, hyp.Insn{Op: op, Dst: t.rng.Intn(4) + 1, Src: 0, Imm: gfn << arch.PageShift})
		case 4:
			prog = append(prog, hyp.Insn{Op: hyp.OpYield})
		}
	}
	prog = append(prog, hyp.Insn{Op: hyp.OpHalt})
	return t.D.HV.LoadGuestProgram(h, idx, prog)
}

func (t *Tester) opMapGuest() bool {
	cpu, ok := pickRand(t.rng, t.m.loadedCPUs())
	if !ok {
		return false
	}
	h := t.m.loadedVM[cpu]
	vm := t.m.vms[h]
	if vm == nil {
		return false
	}
	vc := vm.vcpus[t.m.loadedVCPU[cpu]]
	if vc.topups < 3 {
		return false // predictor: would just churn -ENOMEM
	}
	pfn, err := t.D.AllocPage()
	if err != nil {
		return false
	}
	gfn := uint64(t.rng.Intn(64))
	if _, taken := vm.mapped[gfn]; taken {
		t.D.FreePage(pfn)
		return false
	}
	err = t.D.MapGuest(cpu, pfn, gfn)
	t.count(hyp.HCHostMapGuest, err)
	if err == nil {
		vm.mapped[gfn] = pfn
		t.m.pages[pfn] = pageGuestOwned
		vc.topups -= 3 // approximation of table-page consumption
		if vc.topups < 0 {
			vc.topups = 0
		}
	}
	return true
}

func (t *Tester) opTeardown() bool {
	h, ok := pickRand(t.rng, t.m.anyVM())
	if !ok {
		return false
	}
	vm := t.m.vms[h]
	for _, vc := range vm.vcpus {
		if vc.loadedOn >= 0 {
			return false // predictor: EBUSY, not interesting every time
		}
	}
	err := t.D.TeardownVM(t.cpu(), h)
	t.count(hyp.HCTeardownVM, err)
	if err == nil {
		t.stats.VMsDestroyed++
		delete(t.m.vms, h)
		// Everything it held becomes reclaimable; the model marks the
		// pages it knows about (its memcache and metadata pages it
		// cannot attribute individually — reclaim probing of those is
		// left to the error probes).
		for _, gfn := range sortedKeys(vm.mapped) {
			pfn := vm.mapped[gfn]
			t.m.pages[pfn] = pageReclaimable
			t.m.reclaim[pfn] = true
		}
	}
	return true
}

func (t *Tester) opReclaim() bool {
	pfn, found := t.m.minReclaim()
	if !found {
		return false
	}
	err := t.D.ReclaimPage(t.cpu(), pfn)
	t.count(hyp.HCHostReclaimPage, err)
	delete(t.m.reclaim, pfn)
	if err == nil {
		t.m.pages[pfn] = pageHostOwned
	}
	return true
}

// opErrorProbe deliberately drives safe error paths: calls that return
// an errno without endangering the host.
func (t *Tester) opErrorProbe() bool {
	cpu := t.cpu()
	switch t.rng.Intn(6) {
	case 0: // share MMIO
		err := t.D.ShareHyp(cpu, arch.PhysToPFN(hyp.UARTPhys))
		t.count(hyp.HCHostShareHyp, err)
	case 1: // unshare something never shared
		pfn, ok := pickRand(t.rng, t.m.pagesIn(pageHostOwned))
		if !ok {
			return false
		}
		err := t.D.UnshareHyp(cpu, pfn)
		t.count(hyp.HCHostUnshareHyp, err)
	case 2: // bad handle
		err := t.D.VCPULoad(cpu, hyp.Handle(0xbeef), 0)
		t.count(hyp.HCVCPULoad, err)
	case 3: // unknown hypercall
		_, err := t.D.HVC(cpu, hyp.HC(0x7fff), t.rng.Uint64())
		if err != nil {
			var pe *hyp.PanicError
			if errors.As(err, &pe) {
				t.stats.HypPanics++
			}
		}
		t.stats.Calls++
	case 4: // reclaim garbage
		err := t.D.ReclaimPage(cpu, arch.PFN(t.rng.Intn(1<<20)))
		t.count(hyp.HCHostReclaimPage, err)
	case 5: // run with nothing loaded
		if t.m.loadedVM[cpu] != 0 {
			return false
		}
		_, err := t.D.VCPURun(cpu)
		t.count(hyp.HCVCPURun, err)
	}
	return true
}

func (s Stats) String() string {
	return fmt.Sprintf("steps=%d calls=%d ok=%d errno=%d rejected=%d hostCrashes=%d hypPanics=%d vms=%d/%d",
		s.Steps, s.Calls, s.OKs, s.Errnos, s.Rejected, s.HostCrashes, s.HypPanics,
		s.VMsCreated, s.VMsDestroyed)
}
