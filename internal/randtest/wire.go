// Trace wire codec: a deterministic, versioned binary encoding of
// recorded operation traces, the unit the distributed campaign fleet
// (internal/fleet) ships between workers and the coordinator. Two
// properties are load-bearing and tested:
//
//   - determinism: encoding the same trace always yields the same
//     bytes (every field is written unconditionally, in declaration
//     order, with no maps involved), so content hashes of encoded
//     traces are stable across processes and machines — the basis of
//     fleet-level finding dedup and corpus-entry dedup;
//   - versioning: the header carries a format version, and decoding
//     rejects versions it does not know with ErrWireVersion instead of
//     misparsing — a fleet mixing binaries from different commits
//     fails loudly at the first exchange.
package randtest

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// TraceWireVersion is the current trace encoding version. Bump it on
// any change to the Op field set or the byte layout; decoders reject
// anything else.
const TraceWireVersion = 1

// traceMagic guards against feeding arbitrary bytes to the decoder.
var traceMagic = [4]byte{'g', 'h', 't', 'r'}

// ErrWireVersion reports a version-skew rejection: the bytes are a
// trace, but from a codec revision this binary does not speak.
var ErrWireVersion = errors.New("randtest: trace wire version mismatch")

// EncodeTrace renders the trace into the versioned wire form. A nil
// trace encodes as an empty trace.
func EncodeTrace(tr *Trace) []byte {
	buf := make([]byte, 0, 16+tr.Len()*24)
	buf = append(buf, traceMagic[:]...)
	buf = append(buf, TraceWireVersion)
	buf = appendUvarint(buf, uint64(tr.Len()))
	if tr != nil {
		for _, op := range tr.Ops {
			buf = appendOp(buf, op)
		}
	}
	return buf
}

// DecodeTrace parses the wire form back into a trace. The decode is
// strict: bad magic, unknown version, truncation, and trailing bytes
// are all errors.
func DecodeTrace(data []byte) (*Trace, error) {
	r := wireReader{data: data}
	var magic [4]byte
	r.bytes(magic[:])
	if r.err == nil && magic != traceMagic {
		return nil, fmt.Errorf("randtest: not a trace wire blob (magic %q)", magic)
	}
	ver := r.byte()
	if r.err == nil && ver != TraceWireVersion {
		return nil, fmt.Errorf("%w: got version %d, this binary speaks %d",
			ErrWireVersion, ver, TraceWireVersion)
	}
	n := r.uvarint()
	tr := &Trace{}
	for i := uint64(0); i < n && r.err == nil; i++ {
		tr.Ops = append(tr.Ops, r.op())
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("randtest: %d trailing bytes after trace", len(r.data)-r.pos)
	}
	return tr, nil
}

// appendOp writes every Op field unconditionally in declaration order —
// sparser encodings would be smaller but would make the byte layout
// depend on the op kind, a needless hazard for determinism reviews.
func appendOp(buf []byte, op Op) []byte {
	buf = append(buf, byte(op.Kind))
	buf = appendVarint(buf, int64(op.CPU))
	buf = appendUvarint(buf, uint64(op.PFN))
	buf = appendUvarint(buf, op.Nr)
	buf = appendUvarint(buf, uint64(op.H))
	buf = appendVarint(buf, int64(op.VCPU))
	buf = appendUvarint(buf, op.GFN)
	buf = appendUvarint(buf, op.Off)
	buf = appendBool(buf, op.Write)
	buf = appendUvarint(buf, uint64(op.HC))
	for _, a := range op.Args {
		buf = appendUvarint(buf, a)
	}
	buf = append(buf, byte(op.Guest.Kind))
	buf = appendUvarint(buf, uint64(op.Guest.IPA))
	buf = appendBool(buf, op.Guest.Write)
	buf = appendUvarint(buf, op.Guest.Value)
	buf = appendUvarint(buf, uint64(len(op.Prog)))
	for _, in := range op.Prog {
		buf = append(buf, byte(in.Op))
		buf = appendVarint(buf, int64(in.Dst))
		buf = appendVarint(buf, int64(in.Src))
		buf = appendUvarint(buf, in.Imm)
	}
	return buf
}

func (r *wireReader) op() Op {
	var op Op
	op.Kind = OpKind(r.byte())
	op.CPU = int(r.varint())
	op.PFN = arch.PFN(r.uvarint())
	op.Nr = r.uvarint()
	op.H = hyp.Handle(r.uvarint())
	op.VCPU = int(r.varint())
	op.GFN = r.uvarint()
	op.Off = r.uvarint()
	op.Write = r.bool()
	op.HC = hyp.HC(r.uvarint())
	for i := range op.Args {
		op.Args[i] = r.uvarint()
	}
	op.Guest.Kind = hyp.GuestOpKind(r.byte())
	op.Guest.IPA = arch.IPA(r.uvarint())
	op.Guest.Write = r.bool()
	op.Guest.Value = r.uvarint()
	n := r.uvarint()
	for i := uint64(0); i < n && r.err == nil; i++ {
		var in hyp.Insn
		in.Op = hyp.Op(r.byte())
		in.Dst = int(r.varint())
		in.Src = int(r.varint())
		in.Imm = r.uvarint()
		op.Prog = append(op.Prog, in)
	}
	return op
}

// --- primitive wire helpers -----------------------------------------

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// wireReader is a cursor over a wire blob that latches the first error
// so field reads can chain without per-call checks.
type wireReader struct {
	data []byte
	pos  int
	err  error
}

var errWireTruncated = errors.New("randtest: truncated trace wire blob")

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = errWireTruncated
	}
}

func (r *wireReader) byte() byte {
	if r.err != nil || r.pos >= len(r.data) {
		r.fail()
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *wireReader) bytes(out []byte) {
	if r.err != nil || r.pos+len(out) > len(r.data) {
		r.fail()
		return
	}
	copy(out, r.data[r.pos:])
	r.pos += len(out)
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) bool() bool { return r.byte() != 0 }
