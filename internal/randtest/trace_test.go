package randtest

import (
	"testing"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

// recordedRun boots a fresh system, runs a recording tester for steps
// generator steps under the given seed, and returns the trace plus the
// oracle's alarms.
func recordedRun(t *testing.T, seed int64, steps int, guided bool) (*Trace, []ghost.Failure) {
	t.Helper()
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	rec := ghost.Attach(hv)
	tr := New(proxy.New(hv), rec, seed, guided)
	tr.Trace = &Trace{}
	tr.Run(steps)
	return tr.Trace, rec.Failures()
}

// TestTraceDeterministic is the shrinker's foundation: the same seed
// must yield a byte-identical op trace on every run, with no shared or
// global rand state leaking in. (The shrinker replays recorded traces;
// if recording were racy or seed-dependent-only-mostly, minimized
// repros would not reproduce.)
func TestTraceDeterministic(t *testing.T) {
	for _, guided := range []bool{true, false} {
		a, _ := recordedRun(t, 42, 2000, guided)
		b, _ := recordedRun(t, 42, 2000, guided)
		if a.Len() == 0 {
			t.Fatalf("guided=%v: empty trace from 2000 steps", guided)
		}
		if a.String() != b.String() {
			t.Errorf("guided=%v: same seed produced different traces (%d vs %d ops)",
				guided, a.Len(), b.Len())
		}
	}
}

// TestTraceSeedSensitivity sanity-checks that the trace actually
// depends on the seed (a constant trace would pass determinism).
func TestTraceSeedSensitivity(t *testing.T) {
	a, _ := recordedRun(t, 1, 500, true)
	b, _ := recordedRun(t, 2, 500, true)
	if a.String() == b.String() {
		t.Error("different seeds produced identical traces")
	}
}

// TestReplayMatchesRecording replays a full recorded trace on a fresh
// system and checks the replay drives the same hypercall traffic: same
// trap count observed by the oracle, and — like the recording run on a
// correct build — zero alarms.
func TestReplayMatchesRecording(t *testing.T) {
	trace, failures := recordedRun(t, 7, 1500, true)
	if len(failures) != 0 {
		t.Fatalf("recording run alarmed on a correct build: %v", failures[0])
	}

	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	rec := ghost.Attach(hv)
	Replay(proxy.New(hv), trace)
	if fs := rec.Failures(); len(fs) != 0 {
		t.Fatalf("replay of a clean trace alarmed: %v", fs[0])
	}

	// Replaying again on another fresh system must also be stable.
	hv2, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	rec2 := ghost.Attach(hv2)
	Replay(proxy.New(hv2), trace)
	if got, want := rec2.Stats().Traps, rec.Stats().Traps; got != want {
		t.Errorf("replay trap counts diverge: %d vs %d", got, want)
	}
}

// TestWorkerSeedDecorrelated checks the per-worker seed derivation
// yields distinct, positive seeds across workers and campaign seeds.
func TestWorkerSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]bool)
	for campaign := int64(0); campaign < 8; campaign++ {
		for worker := 0; worker < 8; worker++ {
			s := WorkerSeed(campaign, worker)
			if s < 0 {
				t.Fatalf("WorkerSeed(%d,%d) = %d, want >= 0", campaign, worker, s)
			}
			if seen[s] {
				t.Fatalf("WorkerSeed(%d,%d) = %d collides", campaign, worker, s)
			}
			seen[s] = true
		}
	}
}
