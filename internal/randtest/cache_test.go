package randtest

import (
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/spinlock"
)

// TestConcurrentCampaignVerifyCache runs the concurrent campaign with
// the recorder's differential self-check on: at every hook the
// incremental (cached) abstraction is compared against a full
// recompute, so any invalidation bug under concurrent host map/unmap
// and guest churn surfaces as FailCacheDivergence. Afterwards it
// corrupts the host stage 2 while no lock is held and confirms the
// non-interference alarm still fires through the cached path. Run
// with -race.
func TestConcurrentCampaignVerifyCache(t *testing.T) {
	spinlock.EnableRankCheck()
	t.Cleanup(spinlock.DisableRankCheck)
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := ghost.Attach(hv)
	rec.VerifyCache = true
	d := proxy.New(hv)

	stats := ConcurrentCampaign(d, rec, 42, 300)
	calls := 0
	for cpu, s := range stats {
		if s.HostCrashes != 0 || s.HypPanics != 0 {
			t.Errorf("cpu %d: %d crashes, %d panics", cpu, s.HostCrashes, s.HypPanics)
		}
		calls += s.Calls
	}
	if calls < 300 {
		t.Errorf("only %d calls across all CPUs", calls)
	}
	for _, f := range rec.Failures() {
		t.Errorf("alarm with VerifyCache on: %v", f)
	}
	st := rec.Stats()
	if st.Passed != st.Checks {
		t.Errorf("checks %d, passed %d", st.Checks, st.Passed)
	}
	if st.Cache.Hits == 0 || st.Cache.PartialWalks == 0 {
		t.Errorf("campaign exercised no cache reuse: %+v", st.Cache)
	}
	if t.Failed() {
		return
	}

	// Plant an annotation at an unused host stage 2 root slot while no
	// component lock is held. The next hypercall's lock-acquire hook
	// must flag the §4.4 violation — the cache must not mask it.
	hv.Mem.WritePTE(hv.HostPGTRoot(), 5, arch.MakeAnnotation(3))
	if _, err := d.HVC(0, hyp.HCHostShareHyp, uint64(arch.PhysToPFN(hv.HostMemStart()))); err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, f := range rec.Failures() {
		if f.Kind == ghost.FailCacheDivergence {
			t.Errorf("cache diverged on corruption instead of non-interference: %v", f)
		}
		seen = seen || f.Kind == ghost.FailNonInterference
	}
	if !seen {
		t.Error("unlocked corruption raised no non-interference alarm")
	}
}
