package randtest

import (
	"testing"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

func newTester(t *testing.T, seed int64, guided bool, bugs ...faults.Bug) *Tester {
	t.Helper()
	hv, err := hyp.New(hyp.Config{Inj: faults.NewInjector(bugs...)})
	if err != nil {
		t.Fatal(err)
	}
	rec := ghost.Attach(hv)
	return New(proxy.New(hv), rec, seed, guided)
}

func TestGuidedCampaignClean(t *testing.T) {
	tr := newTester(t, 1, true)
	tr.Run(2000)
	s := tr.Stats()
	if s.Calls < 500 {
		t.Errorf("only %d calls in 2000 steps", s.Calls)
	}
	// The guided generator makes real progress through the state
	// machine and never crashes the host.
	if s.VMsCreated == 0 || s.VMsDestroyed == 0 {
		t.Errorf("no VM lifecycle progress: %v", s)
	}
	if s.OKs == 0 || s.Errnos == 0 {
		t.Errorf("wanted both success and error outcomes: %v", s)
	}
	if s.HostCrashes != 0 {
		t.Errorf("guided campaign crashed the host %d times", s.HostCrashes)
	}
	if s.HypPanics != 0 {
		t.Errorf("fixed hypervisor panicked %d times", s.HypPanics)
	}
	// And the oracle stayed silent on the fixed hypervisor.
	for _, f := range tr.Rec.Failures() {
		t.Errorf("oracle alarm during clean campaign: %v", f)
	}
}

func TestGuidedCampaignDeterministic(t *testing.T) {
	a := newTester(t, 42, true)
	a.Run(500)
	b := newTester(t, 42, true)
	b.Run(500)
	sa, sb := a.Stats(), b.Stats()
	if sa.String() != sb.String() {
		t.Errorf("same seed diverged:\n%v\n%v", sa, sb)
	}
}

func TestUnguidedBaseline(t *testing.T) {
	tr := newTester(t, 1, false)
	tr.Run(2000)
	s := tr.Stats()
	// The unguided baseline mostly bounces off the API with errors
	// and rarely builds VMs — the ablation result.
	if s.Calls == 0 {
		t.Fatal("no calls issued")
	}
	if s.VMsDestroyed > s.VMsCreated {
		t.Errorf("inconsistent VM accounting: %v", s)
	}
	if s.Errnos < s.OKs {
		t.Errorf("unguided run should be mostly errors: %v", s)
	}
}

func TestGuidedFindsInjectedBug(t *testing.T) {
	// A guided campaign against a buggy hypervisor must raise oracle
	// alarms (here: wrong perms on every successful share).
	tr := newTester(t, 7, true, faults.BugShareWrongPerms)
	tr.Run(500)
	if len(tr.Rec.Failures()) == 0 {
		t.Error("campaign over buggy hypervisor raised no alarms")
	}
}

func TestGuidedSurvivesHypPanicBug(t *testing.T) {
	// With the spurious-fault panic injected, concurrent-ish faulting
	// may or may not trip it in a single-threaded campaign; the
	// tester must at least keep running and count any panics.
	tr := newTester(t, 3, true, faults.BugHostFaultRetry)
	tr.Run(1000)
	// No assertion on panic count — just robustness of the harness.
}

// TestRandomTesterFindsSpecBug: the paper's random testing "found 9
// errors in the specification itself". With the historical spec bug of
// this reproduction re-injected, a short guided campaign against the
// FIXED hypervisor rediscovers it.
func TestRandomTesterFindsSpecBug(t *testing.T) {
	ghost.SetSpecFault(ghost.SpecBugReclaimForgetShared, true)
	defer ghost.ClearSpecFaults()

	tr := newTester(t, 8, true)
	tr.Run(6000)
	if len(tr.Rec.Failures()) == 0 {
		t.Error("random campaign failed to rediscover the historical spec bug")
	}
}

func TestModelCrashPrediction(t *testing.T) {
	m := newModel(2)
	m.pages[100] = pageHostOwned
	m.pages[101] = pageDonatedHyp
	m.pages[102] = pageGuestOwned
	m.pages[103] = pageSharedHyp
	if m.wouldCrashHost(100) || m.wouldCrashHost(103) {
		t.Error("host-accessible pages predicted to crash")
	}
	if !m.wouldCrashHost(101) || !m.wouldCrashHost(102) {
		t.Error("donated/guest pages not predicted to crash")
	}
	if m.wouldCrashHost(999) {
		t.Error("unknown page predicted to crash")
	}
}
