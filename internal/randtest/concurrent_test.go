package randtest

import (
	"testing"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/spinlock"
)

// TestConcurrentCampaignClean runs one guided tester per hardware
// thread over a single system: genuinely overlapping hypercalls, every
// trap oracle-checked, no alarms and no host crashes. The runtime
// lock-rank validator is on for the whole campaign, so any acquisition
// out of the vms < guest < host < hyp order panics the test. Run with
// -race.
func TestConcurrentCampaignClean(t *testing.T) {
	spinlock.EnableRankCheck()
	t.Cleanup(spinlock.DisableRankCheck)
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := ghost.Attach(hv)
	d := proxy.New(hv)

	stats := ConcurrentCampaign(d, rec, 1, 400)
	if len(stats) != hv.Globals().NrCPUs {
		t.Fatalf("stats for %d CPUs", len(stats))
	}
	totalCalls, totalVMs := 0, 0
	for cpu, s := range stats {
		if s.HostCrashes != 0 {
			t.Errorf("cpu %d crashed the host %d times", cpu, s.HostCrashes)
		}
		if s.HypPanics != 0 {
			t.Errorf("cpu %d: %d hypervisor panics", cpu, s.HypPanics)
		}
		totalCalls += s.Calls
		totalVMs += s.VMsCreated
	}
	if totalCalls < 400 {
		t.Errorf("only %d calls across all CPUs", totalCalls)
	}
	if totalVMs == 0 {
		t.Error("no VM progress under concurrency")
	}
	for _, f := range rec.Failures() {
		t.Errorf("oracle alarm under concurrency: %v", f)
	}
	st := rec.Stats()
	if st.Passed != st.Checks {
		t.Errorf("checks %d, passed %d", st.Checks, st.Passed)
	}
}
