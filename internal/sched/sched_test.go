package sched

import (
	"strings"
	"testing"

	"ghostspec/internal/analysis/preempt"
	"ghostspec/internal/spinlock"
)

// streams returns n stream functions that each append (vcpu, step) to
// a shared log at every op boundary — shared state that is only safe
// because one-token scheduling serialises it.
func streams(s *Scheduler, n, ops int, log *[][2]int) []func(int) {
	fns := make([]func(int), n)
	for i := range fns {
		fns[i] = func(vcpu int) {
			for k := 0; k < ops; k++ {
				if !s.Boundary(vcpu) {
					return
				}
				*log = append(*log, [2]int{vcpu, k})
			}
		}
	}
	return fns
}

func TestSeededScheduleIsDeterministic(t *testing.T) {
	run := func() ([][2]int, *Schedule) {
		var log [][2]int
		s := New(3, WithSeed(42))
		if err := s.Run(streams(s, 3, 5, &log)...); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return log, s.Record()
	}
	log1, sch1 := run()
	log2, sch2 := run()
	if len(log1) != 15 {
		t.Fatalf("log has %d entries, want 15", len(log1))
	}
	if sch1.String() != sch2.String() {
		t.Fatalf("same seed produced different schedules:\n%s\n%s", sch1, sch2)
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("same seed produced different op orders at %d: %v vs %v", i, log1[i], log2[i])
		}
	}
}

func TestReplayReproducesSchedule(t *testing.T) {
	var log1 [][2]int
	s1 := New(2, WithSeed(7))
	if err := s1.Run(streams(s1, 2, 6, &log1)...); err != nil {
		t.Fatalf("record run: %v", err)
	}
	rec := s1.Record()

	var log2 [][2]int
	s2 := New(2, WithReplay(rec))
	if err := s2.Run(streams(s2, 2, 6, &log2)...); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if got := s2.Record().String(); got != rec.String() {
		t.Fatalf("replay recorded a different schedule:\n  rec:    %s\n  replay: %s", rec, got)
	}
	if len(log1) != len(log2) {
		t.Fatalf("replay log length %d != %d", len(log2), len(log1))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("replay diverged at op %d: %v vs %v", i, log2[i], log1[i])
		}
	}
}

func TestStaleSchedulePointFailsLoudly(t *testing.T) {
	sch := &Schedule{Steps: []Step{{VCPU: 0, Point: 0xdeadbeefdeadbeef}}}
	s := New(1, WithReplay(sch))
	err := s.Run(func(int) {})
	if err == nil {
		t.Fatal("Run accepted a schedule with an unknown point ID")
	}
	if !strings.Contains(err.Error(), "not in the current table") {
		t.Fatalf("stale-point error does not name the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "-write-preempt") {
		t.Fatalf("stale-point error does not say how to regenerate: %v", err)
	}
}

func TestForcedChoicesRecordArity(t *testing.T) {
	var log [][2]int
	s := New(2, WithForcedChoices(nil))
	if err := s.Run(streams(s, 2, 3, &log)...); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ch := s.Choices()
	if len(ch) == 0 {
		t.Fatal("exploration run recorded no choice arities")
	}
	// Decision #0 sees both vCPUs parked at startup.
	if ch[0] != 2 {
		t.Fatalf("first decision arity = %d, want 2", ch[0])
	}
	// All-zero forced choices means lowest-id first: vCPU 0 finishes
	// all its ops before vCPU 1 starts.
	want := [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("lowest-id order violated at %d: got %v want %v", i, log[i], want[i])
		}
	}

	// Each stream parks twice before its first op (the startup park,
	// then the first Boundary), so forcing index 1 at the first two
	// decisions is what makes vCPU 1 execute the first op.
	var log2 [][2]int
	s2 := New(2, WithForcedChoices([]int{1, 1}))
	if err := s2.Run(streams(s2, 2, 3, &log2)...); err != nil {
		t.Fatalf("forced Run: %v", err)
	}
	if log2[0] != [2]int{1, 0} {
		t.Fatalf("forced choice ignored: first op %v, want v1 op 0", log2[0])
	}
}

func TestContendedLockHandsOff(t *testing.T) {
	l := spinlock.New("test", nil)
	var order []string
	s := New(2)
	err := s.Run(
		func(v int) {
			s.Boundary(v)
			l.Lock()
			order = append(order, "v0 acquired")
			s.Boundary(v) // park inside the critical section
			order = append(order, "v0 releasing")
			l.Unlock()
		},
		func(v int) {
			s.Boundary(v)
			l.Lock() // must block: v0 holds the lock across its park
			order = append(order, "v1 acquired")
			l.Unlock()
		},
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := strings.Join(order, ", ")
	want := "v0 acquired, v0 releasing, v1 acquired"
	if got != want {
		t.Fatalf("lock handoff order = %q, want %q", got, want)
	}
	if s.Preemptions() == 0 {
		t.Fatal("no preemptions recorded")
	}
}

func TestPanicInStreamIsCaptured(t *testing.T) {
	s := New(2)
	err := s.Run(
		func(v int) { s.Boundary(v) },
		func(v int) {
			s.Boundary(v)
			panic("boom from v1")
		},
	)
	if err == nil || !strings.Contains(err.Error(), "boom from v1") {
		t.Fatalf("stream panic not captured: %v", err)
	}
}

func TestScheduleStepString(t *testing.T) {
	if got := (Step{VCPU: 0, Point: preempt.PointBoundary}).String(); got != "v0@op" {
		t.Fatalf("boundary step = %q", got)
	}
	if got := (Step{VCPU: 1, Point: preempt.PointLockWait}).String(); got != "v1@lock" {
		t.Fatalf("lock-wait step = %q", got)
	}
	pts := preempt.Points()
	if len(pts) == 0 {
		t.Skip("no generated points")
	}
	st := Step{VCPU: 2, Point: pts[0].ID}
	if !strings.Contains(st.String(), ":") {
		t.Fatalf("table step %q does not carry file:line", st)
	}
}
