package sched

import (
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

// Process-global scheduling telemetry, alongside the per-Scheduler
// deterministic counts (Scheduler.Preemptions): how often vCPUs parked
// and how long they spent parked, across all concurrent schedulers.
var (
	telPreemptions = telemetry.NewCounter("sched_preemptions")
	telParkedNS    = telemetry.NewCounter("sched_parked_ns")
)

// spanPreempt covers one parked interval on the scheduler's trace
// lane (WithTracer).
var spanPreempt = trace.NewName("sched.preempt")
