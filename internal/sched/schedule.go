// Package sched is the deterministic cooperative multi-vCPU scheduler
// ROADMAP item 1 calls for: each virtual CPU's hypercall stream runs on
// its own goroutine, but exactly one holds the run token at a time, and
// the token changes hands only at preemption points — the statically
// extracted table in internal/analysis/preempt plus two pseudo-points
// (op boundaries and lock-wait re-grants). Every handoff is recorded as
// a (vCPU, point) step; the resulting Schedule replays bit-identically
// on unchanged source, and fails loudly — not by silent divergence —
// when the table no longer knows a recorded point ID.
//
// The protocol is token passing, not a central dispatcher: the parking
// vCPU itself picks the successor (under the scheduler mutex) and sends
// on the successor's buffered grant channel before waiting on its own.
// That gives the race detector a happens-before edge across every
// handoff, so shared single-owner state (the replay translation maps,
// the hypervisor model) is provably serialised.
package sched

import (
	"fmt"
	"strings"

	"ghostspec/internal/analysis/preempt"
)

// Step is one scheduling decision: at preemption point Point, the run
// token was granted to vCPU VCPU. Point is either a stable table ID
// from internal/analysis/preempt or one of the reserved pseudo-points
// (PointBoundary between trace ops, PointLockWait after a contended
// spinlock was released to the granted vCPU).
type Step struct {
	VCPU  int
	Point uint64
}

// String renders the step compactly: "v0@op" for an op boundary,
// "v1@lock" for a lock-wait re-grant, "v1@file.go:42" for a table
// point, and the raw hex ID for a point the current table does not
// know (a stale schedule).
func (st Step) String() string {
	switch st.Point {
	case preempt.PointBoundary:
		return fmt.Sprintf("v%d@op", st.VCPU)
	case preempt.PointLockWait:
		return fmt.Sprintf("v%d@lock", st.VCPU)
	}
	if p, ok := preempt.ByID(st.Point); ok {
		return fmt.Sprintf("v%d@%s:%d", st.VCPU, p.File, p.Line)
	}
	return fmt.Sprintf("v%d@%#x", st.VCPU, st.Point)
}

// Schedule is a replayable sequence of scheduling decisions. It is
// meaningful only together with the trace it was recorded against and
// an unchanged preemption-point table.
type Schedule struct {
	Steps []Step
}

// Len returns the number of decisions.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Steps)
}

// String renders the schedule as space-separated steps.
func (s *Schedule) String() string {
	if s == nil || len(s.Steps) == 0 {
		return "(empty)"
	}
	parts := make([]string, len(s.Steps))
	for i, st := range s.Steps {
		parts[i] = st.String()
	}
	return strings.Join(parts, " ")
}

// Validate checks every step against the current preemption-point
// table. A schedule recorded against different source must fail here,
// loudly, rather than replay as something else: point IDs are
// content-addressed (hash of kind and source position), so any edit to
// an instrumented file invalidates the recorded IDs.
func (s *Schedule) Validate(ncpus int) error {
	if s == nil {
		return nil
	}
	for i, st := range s.Steps {
		if st.VCPU < 0 || st.VCPU >= ncpus {
			return fmt.Errorf("sched: schedule step %d grants vCPU %d but the scheduler has %d vCPUs",
				i, st.VCPU, ncpus)
		}
		if !preempt.Known(st.Point) {
			return fmt.Errorf("sched: schedule step %d references preemption point %#x, which is not in "+
				"the current table: the source changed since this schedule was recorded "+
				"(regenerate with `go run ./cmd/ghostlint -write-preempt` and re-record the schedule)",
				i, st.Point)
		}
	}
	return nil
}

// Clone returns a deep copy, so recorded schedules can outlive the
// scheduler that produced them.
func (s *Schedule) Clone() *Schedule {
	if s == nil {
		return nil
	}
	c := &Schedule{Steps: make([]Step, len(s.Steps))}
	copy(c.Steps, s.Steps)
	return c
}
