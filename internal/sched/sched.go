package sched

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ghostspec/internal/analysis/preempt"
	"ghostspec/internal/spinlock"
	"ghostspec/internal/telemetry/trace"
)

// cellState is a vCPU goroutine's scheduling state. Transitions all
// happen under Scheduler.mu.
type cellState int

const (
	// stateRunning: the cell holds the run token.
	stateRunning cellState = iota
	// stateParked: the cell stopped at a preemption point and can be
	// granted the token.
	stateParked
	// stateBlocked: the cell failed a spinlock TryLock; it becomes
	// parked (grantable) only when the lock is released.
	stateBlocked
	// stateDone: the cell's stream function returned.
	stateDone
)

// vcell is one virtual CPU's scheduling cell.
type vcell struct {
	state cellState
	// point identifies where the cell is parked — the ID recorded in
	// the schedule step when the cell is granted.
	point uint64
	// grant carries the run token. Buffered so the decider (which runs
	// in the outgoing cell's goroutine) never blocks handing it over.
	grant chan struct{}
	// blocked is the spinlock the cell is waiting on while
	// stateBlocked.
	blocked *spinlock.Lock
}

// Scheduler runs N vCPU stream functions under deterministic
// cooperative scheduling. A Scheduler is single-use: construct with
// New, call Run exactly once.
type Scheduler struct {
	mu    sync.Mutex
	cells []vcell

	// started gates decisions until every cell reached its startup
	// park, so decision #0 sees the full grantable set.
	started bool

	// Policy state. Precedence: forced-choice exploration, then
	// replay, then seeded random, then lowest-id.
	rng       *rand.Rand
	replay    []Step
	replayPos int
	fellBack  bool
	exploring bool
	forced    []int
	choices   []int

	record      []Step
	preemptions uint64
	err         error
	abandoned   bool

	tracer *trace.Tracer
	lane   int

	wg sync.WaitGroup
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithSeed installs the seeded-random scheduling policy: each decision
// picks uniformly among the grantable cells. The same seed over the
// same streams reproduces the same schedule.
func WithSeed(seed uint64) Option {
	return func(s *Scheduler) { s.rng = rand.New(rand.NewSource(int64(seed))) }
}

// WithReplay installs the replay policy: decisions follow the recorded
// schedule step by step. A step whose (vCPU, point) is not grantable
// records a divergence error and falls back to the deterministic
// lowest-id drain; a schedule that runs out of steps drains the same
// way without error (this is what schedule-prefix minimisation leans
// on).
func WithReplay(sch *Schedule) Option {
	return func(s *Scheduler) {
		if sch != nil {
			s.replay = sch.Steps
		} else {
			s.replay = []Step{}
		}
	}
}

// WithForcedChoices installs the exploration policy used by bounded
// exhaustive enumeration: decision i takes forced[i] (an index into
// the sorted grantable set), decisions past the end take index 0, and
// the arity of every decision is recorded (Choices) so the enumerator
// can drive depth-first over the choice tree.
func WithForcedChoices(forced []int) Option {
	return func(s *Scheduler) {
		s.exploring = true
		s.forced = forced
	}
}

// WithTracer attaches a span tracer: every preemption emits a
// sched.preempt span covering the parked interval on the given lane.
func WithTracer(t *trace.Tracer, lane int) Option {
	return func(s *Scheduler) { s.tracer, s.lane = t, lane }
}

// New builds a scheduler for n virtual CPUs.
func New(n int, opts ...Option) *Scheduler {
	if n < 1 {
		panic("sched: need at least one vCPU")
	}
	s := &Scheduler{cells: make([]vcell, n)}
	for i := range s.cells {
		s.cells[i].grant = make(chan struct{}, 1)
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// NCPUs returns the number of virtual CPUs.
func (s *Scheduler) NCPUs() int { return len(s.cells) }

// Run executes one stream function per vCPU under the scheduler and
// returns after all of them finish. The error reports replay
// validation failures, replay divergence, schedule deadlock
// (abandonment), or a panic captured from a stream (lock-rank
// inversions surface here).
func (s *Scheduler) Run(fns ...func(vcpu int)) error {
	if len(fns) != len(s.cells) {
		return fmt.Errorf("sched: %d stream functions for %d vCPUs", len(fns), len(s.cells))
	}
	if s.replay != nil {
		if err := (&Schedule{Steps: s.replay}).Validate(len(s.cells)); err != nil {
			return err
		}
	}
	acquireHooks(s)
	defer releaseHooks(s)

	var ready sync.WaitGroup
	ready.Add(len(fns))
	for i := range fns {
		s.wg.Add(1)
		go s.vcpuMain(i, fns[i], &ready)
	}
	ready.Wait()
	s.mu.Lock()
	s.started = true
	s.decideLocked()
	s.mu.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// vcpuMain is one vCPU goroutine: register for point routing, park at
// the startup boundary, then run the stream. Panics (most importantly
// spinlock rank inversions) are captured into the scheduler error —
// the goroutine's deferred unlocks have already run by then, so the
// remaining vCPUs can still drain.
func (s *Scheduler) vcpuMain(id int, fn func(int), ready *sync.WaitGroup) {
	defer s.wg.Done()
	gid := registerGoroutine(s, id)
	defer unregisterGoroutine(gid)
	defer func() {
		if r := recover(); r != nil {
			s.notePanic(id, r)
		}
		s.finish(id)
	}()

	c := &s.cells[id]
	s.mu.Lock()
	c.state = stateParked
	c.point = preempt.PointBoundary
	s.mu.Unlock()
	ready.Done()
	<-c.grant

	if fn != nil {
		fn(id)
	}
}

// Boundary parks the calling vCPU at the op-boundary pseudo-point and
// returns once the schedule grants it the token again. The return
// value is false when the scheduler abandoned the run (deadlock or
// replay exhaustion after divergence) — the stream should stop issuing
// operations, because one-token serialisation is no longer guaranteed.
func (s *Scheduler) Boundary(vcpu int) bool {
	s.park(vcpu, preempt.PointBoundary)
	s.mu.Lock()
	ok := !s.abandoned
	s.mu.Unlock()
	return ok
}

// park stops the calling cell at the given point and waits for the
// token. Called from Boundary and (via the dispatcher) from the
// preempt hook on every instrumented point crossing.
func (s *Scheduler) park(id int, point uint64) {
	s.mu.Lock()
	if !s.started || s.abandoned {
		s.mu.Unlock()
		return
	}
	c := &s.cells[id]
	if c.state != stateRunning {
		// Defensive: a point fired on this goroutine outside its
		// running window (should not happen under one-token).
		s.mu.Unlock()
		return
	}
	c.state = stateParked
	c.point = point
	s.preemptions++
	telPreemptions.Inc()
	start := time.Now()
	s.decideLocked()
	s.mu.Unlock()

	<-c.grant
	d := time.Since(start)
	telParkedNS.Add(uint64(d))
	s.tracer.Emit(s.lane, spanPreempt, start, d)
}

// lockContended is called (via the dispatcher) when the calling cell
// failed a spinlock TryLock. The cell blocks — not grantable — until
// lockReleased flips it back to parked and a decision grants it.
// Returns false when the cell should fall back to a plain blocking
// acquisition (scheduler not started, or abandoned).
func (s *Scheduler) lockContended(id int, l *spinlock.Lock) bool {
	s.mu.Lock()
	if !s.started || s.abandoned {
		s.mu.Unlock()
		return false
	}
	c := &s.cells[id]
	if c.state != stateRunning {
		s.mu.Unlock()
		return false
	}
	c.state = stateBlocked
	c.point = preempt.PointLockWait
	c.blocked = l
	s.preemptions++
	telPreemptions.Inc()
	start := time.Now()
	s.decideLocked()
	if s.abandoned {
		// The block we just declared completed a deadlock; undo it and
		// let the caller block on the mutex directly (the abandonment
		// grant storm is releasing the other cells).
		c.state = stateRunning
		c.blocked = nil
		s.mu.Unlock()
		return false
	}
	s.mu.Unlock()

	<-c.grant
	d := time.Since(start)
	telParkedNS.Add(uint64(d))
	s.tracer.Emit(s.lane, spanPreempt, start, d)
	s.mu.Lock()
	s.cells[id].blocked = nil
	s.mu.Unlock()
	return true
}

// lockReleased is called (via the dispatcher) after every spinlock
// unlock while the scheduler is active: cells blocked on that lock
// become grantable again. The releaser is normally still running (the
// unlock happened mid-stream), in which case no decision is due yet —
// decideLocked's running-cell check handles that.
func (s *Scheduler) lockReleased(l *spinlock.Lock) {
	s.mu.Lock()
	woke := false
	for i := range s.cells {
		if s.cells[i].state == stateBlocked && s.cells[i].blocked == l {
			s.cells[i].state = stateParked
			woke = true
		}
	}
	if woke && s.started {
		s.decideLocked()
	}
	s.mu.Unlock()
}

// finish marks the cell done and hands the token onward.
func (s *Scheduler) finish(id int) {
	s.mu.Lock()
	s.cells[id].state = stateDone
	if s.started {
		s.decideLocked()
	}
	s.mu.Unlock()
}

func (s *Scheduler) notePanic(id int, r interface{}) {
	s.mu.Lock()
	if s.err == nil {
		s.err = fmt.Errorf("sched: vCPU %d panicked: %v", id, r)
	}
	s.mu.Unlock()
}

// decideLocked makes a scheduling decision if one is due: when no cell
// is running, pick among the parked cells, record the step, and hand
// over the token. Caller holds s.mu.
func (s *Scheduler) decideLocked() {
	if s.abandoned {
		return
	}
	done := 0
	var grantable []int
	for i := range s.cells {
		switch s.cells[i].state {
		case stateRunning:
			return // token already out
		case stateParked:
			grantable = append(grantable, i)
		case stateDone:
			done++
		}
	}
	if len(grantable) == 0 {
		if done == len(s.cells) {
			return // run complete
		}
		s.abandonLocked()
		return
	}
	id := grantable[s.pickLocked(grantable)]
	c := &s.cells[id]
	s.record = append(s.record, Step{VCPU: id, Point: c.point})
	c.state = stateRunning
	c.grant <- struct{}{}
}

// pickLocked chooses an index into the (ascending-id) grantable set
// according to the active policy.
func (s *Scheduler) pickLocked(grantable []int) int {
	if s.exploring {
		d := len(s.choices)
		s.choices = append(s.choices, len(grantable))
		if d < len(s.forced) {
			k := s.forced[d]
			if k >= len(grantable) {
				// Arity shrank relative to the run the enumerator
				// recorded — only possible if the streams are not
				// deterministic. Clamp rather than crash.
				k = len(grantable) - 1
			}
			return k
		}
		return 0
	}
	if s.replay != nil && !s.fellBack {
		if s.replayPos < len(s.replay) {
			st := s.replay[s.replayPos]
			s.replayPos++
			for i, g := range grantable {
				if g == st.VCPU && s.cells[g].point == st.Point {
					return i
				}
			}
			if s.err == nil {
				s.err = fmt.Errorf(
					"sched: replay diverged at step %d: schedule grants %s but that (vCPU, point) is not grantable",
					s.replayPos-1, st)
			}
			s.fellBack = true
			return 0
		}
		// Schedule exhausted: deterministic lowest-id drain, no error.
		return 0
	}
	if s.rng != nil {
		return s.rng.Intn(len(grantable))
	}
	return 0
}

// abandonLocked gives up on scheduling: no cell is grantable but not
// all are done, i.e. every live cell is blocked on a spinlock whose
// holder cannot run. Record the error, then release every waiter so
// the streams can drain under plain blocking. A genuinely cyclic lock
// acquisition would still hang here — but the rank validator panics at
// the guilty acquisition before it can block, and correctly
// disciplined hypervisor code cannot form a cycle, so abandonment in
// practice means a stream deadlocked against a non-scheduled
// goroutine. Run reports it loudly either way.
func (s *Scheduler) abandonLocked() {
	s.abandoned = true
	if s.err == nil {
		s.err = fmt.Errorf("sched: schedule deadlock after %d steps: no vCPU is grantable (%s)",
			len(s.record), s.describeLocked())
	}
	for i := range s.cells {
		c := &s.cells[i]
		if c.state == stateParked || c.state == stateBlocked {
			c.state = stateRunning
			select {
			case c.grant <- struct{}{}:
			default:
			}
		}
	}
}

// describeLocked renders the cell states for the abandonment error.
func (s *Scheduler) describeLocked() string {
	out := make([]string, len(s.cells))
	for i := range s.cells {
		c := &s.cells[i]
		switch c.state {
		case stateRunning:
			out[i] = fmt.Sprintf("v%d running", i)
		case stateParked:
			out[i] = fmt.Sprintf("v%d parked", i)
		case stateBlocked:
			name := "?"
			if c.blocked != nil {
				name = c.blocked.Component()
			}
			out[i] = fmt.Sprintf("v%d blocked on %q", i, name)
		case stateDone:
			out[i] = fmt.Sprintf("v%d done", i)
		}
	}
	return fmt.Sprintf("%v", out)
}

// Record returns the schedule of decisions actually taken, as a copy.
// Valid after Run returns.
func (s *Scheduler) Record() *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	return (&Schedule{Steps: s.record}).Clone()
}

// Choices returns, for each decision in order, how many cells were
// grantable — the per-node arity the exhaustive enumerator walks.
// Only populated under WithForcedChoices. Valid after Run returns.
func (s *Scheduler) Choices() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.choices))
	copy(out, s.choices)
	return out
}

// Preemptions returns the number of times a vCPU parked or blocked —
// a deterministic per-run count (unlike the process-global telemetry
// counters, which mix concurrent schedulers).
func (s *Scheduler) Preemptions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.preemptions
}

// Abandoned reports whether the scheduler gave up one-token
// serialisation (see abandonLocked). Valid during and after Run.
func (s *Scheduler) Abandoned() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.abandoned
}
