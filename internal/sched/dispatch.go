package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ghostspec/internal/analysis/preempt"
	"ghostspec/internal/spinlock"
)

// The preempt hook and the spinlock cooperative-scheduler slot are
// process-global singletons, but campaign workers run schedulers
// concurrently (one per worker's system). This dispatcher multiplexes
// them: one hook installation, routed per goroutine ID. Goroutines no
// scheduler registered — other workers' serial phases, test mains —
// pass straight through, exactly as if no hook were installed.
//
// The routing table is copy-on-write behind an atomic pointer:
// readers (every instrumented point crossing) take no lock; writers
// (scheduler start/stop, vCPU goroutine registration) serialise on
// dispatchMu and publish a fresh snapshot.

// route sends one goroutine's point crossings to its scheduler cell.
type route struct {
	s  *Scheduler
	id int
}

// routing is one immutable snapshot of the dispatch state.
type routing struct {
	routes map[uint64]route
	scheds []*Scheduler
}

var (
	dispatchMu sync.Mutex
	current    atomic.Pointer[routing]
)

// acquireHooks registers a starting scheduler, installing the global
// hooks when it is the first one active.
func acquireHooks(s *Scheduler) {
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	old := current.Load()
	nr := &routing{routes: map[uint64]route{}}
	if old != nil {
		for k, v := range old.routes {
			nr.routes[k] = v
		}
		nr.scheds = append(nr.scheds, old.scheds...)
	}
	nr.scheds = append(nr.scheds, s)
	current.Store(nr)
	if old == nil {
		preempt.SetHook(dispatchHook)
		spinlock.SetScheduler(dispatcher{})
	}
}

// releaseHooks removes a finished scheduler (and any routes it left
// behind), uninstalling the global hooks with the last one.
func releaseHooks(s *Scheduler) {
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	old := current.Load()
	if old == nil {
		return
	}
	nr := &routing{routes: map[uint64]route{}}
	for k, v := range old.routes {
		if v.s != s {
			nr.routes[k] = v
		}
	}
	for _, x := range old.scheds {
		if x != s {
			nr.scheds = append(nr.scheds, x)
		}
	}
	if len(nr.scheds) == 0 {
		// Uninstall before dropping the snapshot so a crossing that
		// races the teardown sees either hook+routes or neither.
		spinlock.SetScheduler(nil)
		preempt.SetHook(nil)
		current.Store(nil)
		return
	}
	current.Store(nr)
}

// registerGoroutine routes the calling goroutine's point crossings to
// cell id of scheduler s, returning the goroutine ID for unregister.
func registerGoroutine(s *Scheduler, id int) uint64 {
	gid := goid()
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	old := current.Load()
	nr := &routing{routes: make(map[uint64]route, 8)}
	if old != nil {
		for k, v := range old.routes {
			nr.routes[k] = v
		}
		nr.scheds = old.scheds
	}
	nr.routes[gid] = route{s: s, id: id}
	current.Store(nr)
	return gid
}

func unregisterGoroutine(gid uint64) {
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	old := current.Load()
	if old == nil {
		return
	}
	nr := &routing{routes: make(map[uint64]route, len(old.routes)), scheds: old.scheds}
	for k, v := range old.routes {
		if k != gid {
			nr.routes[k] = v
		}
	}
	current.Store(nr)
}

// dispatchHook is the preempt.Hook: park the crossing goroutine's cell
// if it belongs to a scheduler, otherwise fall through.
func dispatchHook(p preempt.Point) {
	r := current.Load()
	if r == nil {
		return
	}
	rt, ok := r.routes[goid()]
	if !ok {
		return
	}
	rt.s.park(rt.id, p.ID)
}

// dispatcher implements spinlock.Scheduler over the routing table.
type dispatcher struct{}

func (dispatcher) LockContended(l *spinlock.Lock) bool {
	r := current.Load()
	if r == nil {
		return false
	}
	rt, ok := r.routes[goid()]
	if !ok {
		return false
	}
	return rt.s.lockContended(rt.id, l)
}

func (dispatcher) LockReleased(l *spinlock.Lock) {
	r := current.Load()
	if r == nil {
		return
	}
	// Broadcast: lock instances are per-system, so at most one
	// scheduler has cells blocked on l, and the others scan and move
	// on.
	for _, s := range r.scheds {
		s.lockReleased(l)
	}
}

// goid parses the calling goroutine's ID from the runtime stack header
// ("goroutine N [running]:") — the same unsupported-but-standard trick
// the spinlock rank validator uses, acceptable for the same reason:
// scheduling is a checking-build facility, not the production path.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) < len(prefix) {
		return 0
	}
	s = s[len(prefix):]
	var id uint64
	for i := 0; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		id = id*10 + uint64(s[i]-'0')
	}
	return id
}
