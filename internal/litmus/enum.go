package litmus

import (
	"strings"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/sched"
)

// Budget bounds one enumeration: MaxDepth caps how many scheduling
// decisions the DFS branches on (decisions past the cap drain
// deterministically lowest-vCPU-first), MaxRuns caps complete
// executions. Either zero means the default.
type Budget struct {
	MaxDepth int
	MaxRuns  int
}

// DefaultBudget covers every current litmus exhaustively well inside
// a second; the depth cap exists so a future long scenario degrades
// into bounded-prefix enumeration instead of exponential blowup.
var DefaultBudget = Budget{MaxDepth: 14, MaxRuns: 600}

func (b Budget) fill() Budget {
	if b.MaxDepth == 0 {
		b.MaxDepth = DefaultBudget.MaxDepth
	}
	if b.MaxRuns == 0 {
		b.MaxRuns = DefaultBudget.MaxRuns
	}
	return b
}

// Outcome reports one litmus enumeration. When a failing schedule was
// found, Failing/Failures/RunErr describe the first one (enumeration
// order is deterministic, so "first" is stable).
type Outcome struct {
	// Runs is how many complete schedules executed.
	Runs int
	// Truncated reports the run budget gave out before the DFS
	// exhausted the bounded choice space.
	Truncated bool
	// Failing is the recorded schedule of the first failing run, nil
	// if every enumerated schedule passed.
	Failing *sched.Schedule
	// Failures holds the oracle alarms of the failing run.
	Failures []ghost.Failure
	// RunErr holds the scheduler error of the failing run (captured
	// stream panic, deadlock abandonment), if any.
	RunErr error
}

// failed says whether a completed run counts as the forbidden outcome:
// any oracle alarm, or a scheduler error matching the litmus's
// expectation (WantErr when set, any error otherwise).
func failed(l *Litmus, failures []ghost.Failure, runErr error) bool {
	if len(failures) > 0 {
		return true
	}
	if runErr == nil {
		return false
	}
	if l.WantErr != "" {
		return strings.Contains(runErr.Error(), l.WantErr)
	}
	return true
}

// Enumerate runs l under every schedule in the bounded choice space:
// depth-first over the scheduler's forced-choice prefixes, advancing
// the deepest incrementable decision each iteration, exactly the
// schedule tree the deterministic scheduler exposes through
// WithForcedChoices and Choices. Each run boots a fresh Env via boot.
// With stopOnFail it returns at the first forbidden outcome (the
// seeded-bug leg); without, it keeps going and reports the first
// failure it saw anyway (the clean leg asserts Failing == nil).
func Enumerate(boot func() (*Env, error), l *Litmus, seeded bool, b Budget, stopOnFail bool) (*Outcome, error) {
	b = b.fill()
	out := &Outcome{}
	var chosen []int
	for {
		if out.Runs >= b.MaxRuns {
			out.Truncated = true
			return out, nil
		}
		e, err := boot()
		if err != nil {
			return nil, err
		}
		s := sched.New(NCPUs, sched.WithForcedChoices(append([]int(nil), chosen...)))
		runErr := l.Run(e, s, seeded)
		out.Runs++
		if out.Failing == nil && failed(l, e.Rec.Failures(), runErr) {
			out.Failing = s.Record()
			out.Failures = e.Rec.Failures()
			out.RunErr = runErr
			if stopOnFail {
				return out, nil
			}
		}
		// Advance to the lexicographically next choice prefix within
		// the depth cap; exhaustion means the bounded space is done.
		counts := s.Choices()
		depth := min(len(counts), b.MaxDepth)
		if depth > len(chosen) {
			chosen = append(chosen, make([]int, depth-len(chosen))...)
		}
		i := depth - 1
		for ; i >= 0; i-- {
			if chosen[i]+1 < counts[i] {
				chosen[i]++
				chosen = chosen[:i+1]
				break
			}
		}
		if i < 0 {
			return out, nil
		}
	}
}

// MinimizeSchedule finds the shortest prefix of failing that still
// produces the forbidden outcome when the remainder of the run drains
// deterministically — the replayable repro the litmus tests print.
// k = len(failing) replays the recorded schedule exactly, so the loop
// always terminates with a reproducing prefix (budget permitting; on
// exhaustion the full schedule comes back).
func MinimizeSchedule(boot func() (*Env, error), l *Litmus, seeded bool, failing *sched.Schedule, maxRuns int) (*sched.Schedule, int, error) {
	runs := 0
	for k := 0; k <= failing.Len() && runs < maxRuns; k++ {
		e, err := boot()
		if err != nil {
			return nil, runs, err
		}
		prefix := (&sched.Schedule{Steps: failing.Steps[:k]}).Clone()
		s := sched.New(NCPUs, sched.WithReplay(prefix))
		runErr := l.Run(e, s, seeded)
		runs++
		if failed(l, e.Rec.Failures(), runErr) {
			return prefix, runs, nil
		}
	}
	return failing.Clone(), runs, nil
}
