package litmus

import (
	"testing"

	"ghostspec/internal/faults"
	"ghostspec/internal/spinlock"
)

func budget(t *testing.T) Budget {
	t.Helper()
	if testing.Short() {
		return Budget{MaxDepth: 10, MaxRuns: 120}
	}
	return DefaultBudget
}

// TestLitmusCleanPassesAllEnumeratedSchedules is the forbidden-outcome
// half of the litmus contract: on the clean hypervisor, no schedule in
// the bounded enumeration produces an oracle alarm or a scheduler
// failure — with the runtime rank validator armed, so lock-discipline
// violations would also surface.
func TestLitmusCleanPassesAllEnumeratedSchedules(t *testing.T) {
	spinlock.EnableRankCheck()
	t.Cleanup(spinlock.DisableRankCheck)
	for _, lit := range Suite() {
		lit := lit
		t.Run(lit.Name, func(t *testing.T) {
			out, err := Enumerate(func() (*Env, error) { return Boot() }, &lit, false, budget(t), false)
			if err != nil {
				t.Fatalf("enumerate: %v", err)
			}
			t.Logf("%d schedules enumerated (truncated=%v)", out.Runs, out.Truncated)
			if out.Failing != nil {
				t.Fatalf("clean hypervisor failed under schedule %s\nalarms: %d, runErr: %v",
					out.Failing, len(out.Failures), out.RunErr)
			}
		})
	}
}

// TestLitmusSeededBugsDetected is the detection half: with its named
// bug seeded, every litmus fails under at least one enumerated
// schedule, and the failing schedule minimizes to a short replayable
// (trace, schedule) repro, printed below.
func TestLitmusSeededBugsDetected(t *testing.T) {
	spinlock.EnableRankCheck()
	t.Cleanup(spinlock.DisableRankCheck)
	for _, lit := range Suite() {
		lit := lit
		t.Run(lit.Name, func(t *testing.T) {
			var bugs []faults.Bug
			if lit.Bug != "" {
				bugs = append(bugs, lit.Bug)
			}
			boot := func() (*Env, error) { return Boot(bugs...) }
			out, err := Enumerate(boot, &lit, true, budget(t), true)
			if err != nil {
				t.Fatalf("enumerate: %v", err)
			}
			if out.Failing == nil {
				t.Fatalf("seeded bug %q not detected in %d enumerated schedules (truncated=%v)",
					lit.Bug, out.Runs, out.Truncated)
			}
			minSched, runs, err := MinimizeSchedule(boot, &lit, true, out.Failing, 200)
			if err != nil {
				t.Fatalf("minimize: %v", err)
			}
			if minSched.Len() > 10 {
				t.Errorf("minimized schedule has %d steps, want <= 10:\n%s", minSched.Len(), minSched)
			}
			detail := ""
			if len(out.Failures) > 0 {
				detail = out.Failures[0].String()
			} else if out.RunErr != nil {
				detail = out.RunErr.Error()
			}
			name := string(lit.Bug)
			if name == "" {
				name = "bugdemo lock inversion"
			}
			t.Logf("detected %q after %d schedules; minimized repro (%d steps, %d minimize runs):\ntrace:\n%sschedule: %s\nfirst failure: %s",
				name, out.Runs, minSched.Len(), runs, lit.Trace, minSched, detail)
		})
	}
}
