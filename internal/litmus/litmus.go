// Package litmus holds a table-driven two-CPU litmus suite in the
// style of hardware memory-model litmus tests ("Relaxed virtual memory
// in Armv8-A", PAPERS.md): each entry is a tiny fixed scenario — a
// handful of hypercalls split across two vCPU streams — replayed under
// bounded exhaustive schedule enumeration (Enumerate, a DFS over the
// deterministic scheduler's preemption choices up to a depth cap).
//
// The contract, asserted by tier-1 tests:
//
//   - on the clean hypervisor every litmus passes under every
//     enumerated schedule (the forbidden outcome never appears);
//   - with its named faults bug seeded, every litmus is detected by
//     the ghost oracle (or the runtime rank validator) under at least
//     one enumerated schedule, and the failing schedule minimizes to a
//     short replayable prefix.
//
// Litmus scenarios are deliberately hand-written, not fuzzed: they pin
// the specific interleaving windows ROADMAP item 1 called out — lost
// TLBI ordering, vCPU lifecycle windows, lock-window discipline — as
// permanent regressions independent of campaign luck.
package litmus

import (
	"ghostspec/internal/bugdemo"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
	"ghostspec/internal/sched"
)

// NCPUs is the litmus machine size: every scenario is a two-vCPU
// program, the smallest shape that has schedules at all.
const NCPUs = 2

// Env is one freshly booted system a single litmus run executes
// against. Boot one per run — litmus replays, like campaign replays,
// are trace-plus-boot recipes, never warm state.
type Env struct {
	HV  *hyp.Hypervisor
	D   *proxy.Driver
	Rec *ghost.Recorder
}

// Boot builds an Env with the oracle attached and the given bugs
// seeded (none for the clean leg).
func Boot(bugs ...faults.Bug) (*Env, error) {
	hv, err := hyp.New(hyp.Config{NrCPUs: NCPUs, Inj: faults.NewInjector(bugs...)})
	if err != nil {
		return nil, err
	}
	rec := ghost.Attach(hv)
	return &Env{HV: hv, D: proxy.New(hv), Rec: rec}, nil
}

// Litmus is one two-CPU scenario. Exactly one of Trace or Streams is
// set: Trace-form litmuses are randtest op sequences split across vCPU
// streams by op.CPU and replayed with randtest.ReplayScheduled;
// Streams-form litmuses build their per-vCPU functions directly (used
// where the scenario is not expressible as hypercall ops, e.g. the
// bugdemo lock inversion).
type Litmus struct {
	Name string
	// Desc says what interleaving window the scenario probes.
	Desc string
	// Bug is the faults bug the seeded leg injects ("" when the buggy
	// variant comes from Streams' seeded flag instead, as for the
	// bugdemo lock inversion).
	Bug faults.Bug
	// Trace, for trace-form litmuses: ops carry CPU 0 or 1.
	Trace *randtest.Trace
	// Streams, for custom-form litmuses: returns one function per
	// vCPU; each must gate every step through s.Boundary(vcpu). seeded
	// selects the buggy variant.
	Streams func(e *Env, s *sched.Scheduler, seeded bool) []func(int)
	// WantErr, for custom-form litmuses: substring the scheduler run
	// error must contain for the seeded leg to count as detected
	// (rank-validator panics surface as run errors, not oracle
	// failures).
	WantErr string
}

// Run executes the litmus once on e under scheduler s, seeded
// selecting the buggy variant for Streams-form scenarios (Trace-form
// scenarios get their bug from the boot injector instead). It returns
// the scheduler's error; oracle verdicts are in e.Rec.
func (l *Litmus) Run(e *Env, s *sched.Scheduler, seeded bool) error {
	if l.Trace != nil {
		return randtest.ReplayScheduled(e.D, l.Trace, s)
	}
	return s.Run(l.Streams(e, s, seeded)...)
}

// Suite returns the litmus table. Scenarios use fixed placeholder PFNs
// and handles — the replay env binds them to real allocations.
func Suite() []Litmus {
	return []Litmus{
		{
			Name: "share-touch-unshare-vs-access",
			Desc: "vCPU0 shares a page with the hypervisor and touches it (caching the shared-owned translation); vCPU1 concurrently unshares it and touches it again. Schedules that order the unshare after the touch rewrite a live host stage 2 entry — without break-before-make TLBI the cached walk goes stale and the oracle's lock-release coherence check alarms.",
			Bug:  faults.BugUnshareSkipTLBI,
			Trace: &randtest.Trace{Ops: []randtest.Op{
				{Kind: randtest.OpAlloc, CPU: 0, PFN: 1},
				{Kind: randtest.OpShare, CPU: 0, PFN: 1},
				{Kind: randtest.OpTouch, CPU: 0, PFN: 1, Write: true},
				{Kind: randtest.OpUnshare, CPU: 1, PFN: 1},
				{Kind: randtest.OpTouch, CPU: 1, PFN: 1, Write: true},
			}},
		},
		{
			Name: "remap-without-tlbi",
			Desc: "vCPU0 shares and touches a page; vCPU1 unshares it and immediately re-shares (remaps) it. The unshare's SharedOwned→Owned rewrite is the break-before-make edge; with the TLBI suppressed the re-map sits under a stale cached walk of the old entry.",
			Bug:  faults.BugUnshareSkipTLBI,
			Trace: &randtest.Trace{Ops: []randtest.Op{
				{Kind: randtest.OpAlloc, CPU: 0, PFN: 1},
				{Kind: randtest.OpShare, CPU: 0, PFN: 1},
				{Kind: randtest.OpTouch, CPU: 0, PFN: 1, Write: false},
				{Kind: randtest.OpUnshare, CPU: 1, PFN: 1},
				{Kind: randtest.OpShare, CPU: 1, PFN: 1},
			}},
		},
		{
			Name: "vcpu-load-window",
			Desc: "vCPU1 creates a VM and initialises its vCPU; vCPU0 loads that vCPU. The spec demands ENOENT for a load of an uninitialised vCPU; the seeded race skips the initialised check, so any schedule landing the load inside the init-vm/init-vcpu window returns OK where the ghost spec computes ENOENT. (The load sits on vCPU 0 so the deterministic lowest-vCPU drain finishes the failing run once the schedule has steered it into the window.)",
			Bug:  faults.BugVCPULoadRace,
			Trace: &randtest.Trace{Ops: []randtest.Op{
				{Kind: randtest.OpInitVM, CPU: 1, Nr: 1, H: 1},
				{Kind: randtest.OpInitVCPU, CPU: 1, H: 1, VCPU: 0},
				{Kind: randtest.OpLoad, CPU: 0, H: 1, VCPU: 0},
			}},
		},
		{
			Name:    "lock-window-inversion",
			Desc:    "vCPU0 reads a VM snapshot under the documented vms→guest lock order while vCPU1 does the same concurrently; the seeded variant takes the bugdemo guest→vms inversion instead, which the runtime rank validator kills at the inverted acquisition — under every schedule, since the discipline is schedule-independent, but the litmus pins that the validator stays armed under cooperative scheduling.",
			WantErr: "rank inversion",
			Streams: func(e *Env, s *sched.Scheduler, seeded bool) []func(int) {
				snapshot := func() *hyp.VM {
					e.HV.VMTableLock().Lock()
					defer e.HV.VMTableLock().Unlock()
					return e.HV.VMSnapshot(0)
				}
				reader := func(vcpu int) {
					if !s.Boundary(vcpu) {
						return
					}
					vm := snapshot()
					if vm == nil {
						return
					}
					if seeded && vcpu == 0 {
						bugdemo.LockOrderInversion(e.HV, vm)
						return
					}
					// The documented order: vms (rank 1) before guest
					// (rank 2) is what every real hypercall path does;
					// a plain ordered read keeps the clean leg quiet.
					vm.Lock.Lock()
					defer vm.Lock.Unlock()
					_ = vm
				}
				return []func(int){
					func(vcpu int) {
						if !s.Boundary(vcpu) {
							return
						}
						if _, _, err := e.D.InitVM(vcpu, 1); err != nil {
							return
						}
						reader(vcpu)
					},
					reader,
				}
			},
		},
	}
}
