package pgtable

import (
	"errors"
	"math/rand"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/mem"
)

const (
	tablePoolBase = arch.PFN(0x90000) // table pages at 0x9000_0000
	tablePoolNr   = 2048
)

func newTestTable(t *testing.T, maxBlockLevel int) (*Table, *mem.Pool) {
	t.Helper()
	m := arch.NewMemory(arch.DefaultLayout())
	pool := mem.NewPool("tables", tablePoolBase, tablePoolNr)
	tbl, err := New("test", m, arch.Stage2, PoolAllocator{pool}, maxBlockLevel)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tbl, pool
}

var normRWX = arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal}

func TestMapSinglePage(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	if err := tbl.Map(0x4000_0000, arch.PageSize, 0x4000_0000, normRWX, false); err != nil {
		t.Fatalf("Map: %v", err)
	}
	res, f := arch.WalkRead(tbl.Mem, tbl.Root(), 0x4000_0123)
	if f != nil {
		t.Fatalf("hardware walk faulted: %v", f)
	}
	if res.OutputAddr != 0x4000_0123 || res.Level != 3 {
		t.Errorf("walk = %#x level %d", uint64(res.OutputAddr), res.Level)
	}
}

func TestMapUsesBlocks(t *testing.T) {
	tbl, pool := newTestTable(t, 2)
	before := pool.Allocated()
	// 4MB identity mapping, 2MB aligned: wants two level 2 blocks.
	if err := tbl.Map(0x4020_0000, 4<<20, 0x4020_0000, normRWX, false); err != nil {
		t.Fatalf("Map: %v", err)
	}
	pte, level := tbl.GetLeaf(0x4020_0000)
	if level != 2 || pte.Kind(level) != arch.EKBlock {
		t.Errorf("leaf at level %d kind %v, want level 2 block", level, pte.Kind(level))
	}
	// Only the two interior tables (l1, l2) should have been added.
	if got := pool.Allocated() - before; got != 2 {
		t.Errorf("allocated %d table pages, want 2", got)
	}
	// Every page of the 4MB range translates.
	for off := uint64(0); off < 4<<20; off += arch.PageSize {
		res, f := arch.WalkRead(tbl.Mem, tbl.Root(), 0x4020_0000+off)
		if f != nil || res.OutputAddr != arch.PhysAddr(0x4020_0000+off) {
			t.Fatalf("offset %#x: res %#x fault %v", off, uint64(res.OutputAddr), f)
		}
	}
}

func TestMapRespectsMaxBlockLevel(t *testing.T) {
	tbl, _ := newTestTable(t, 3) // pages only
	if err := tbl.Map(0x4020_0000, 2<<20, 0x4020_0000, normRWX, false); err != nil {
		t.Fatalf("Map: %v", err)
	}
	if _, level := tbl.GetLeaf(0x4020_0000); level != 3 {
		t.Errorf("leaf level %d, want 3 with MaxBlockLevel=3", level)
	}
}

func TestMapMisalignedOutputAvoidsBlocks(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	// 2MB range, IA block-aligned but PA off by one page: must use pages.
	if err := tbl.Map(0x4020_0000, 2<<20, 0x4000_1000, normRWX, false); err != nil {
		t.Fatalf("Map: %v", err)
	}
	if _, level := tbl.GetLeaf(0x4020_0000); level != 3 {
		t.Errorf("leaf level %d, want 3 for misaligned PA", level)
	}
	res, f := arch.WalkRead(tbl.Mem, tbl.Root(), 0x4020_0000+arch.PageSize)
	if f != nil || res.OutputAddr != 0x4000_2000 {
		t.Errorf("second page -> %#x, fault %v", uint64(res.OutputAddr), f)
	}
}

func TestMapConflict(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	if err := tbl.Map(0x4000_0000, arch.PageSize, 0x4000_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	err := tbl.Map(0x4000_0000, arch.PageSize, 0x5000_0000, normRWX, false)
	if !errors.Is(err, ErrExists) {
		t.Errorf("remap err = %v, want ErrExists", err)
	}
	// Force succeeds and replaces.
	if err := tbl.Map(0x4000_0000, arch.PageSize, 0x5000_0000, normRWX, true); err != nil {
		t.Fatalf("force remap: %v", err)
	}
	res, _ := arch.WalkRead(tbl.Mem, tbl.Root(), 0x4000_0000)
	if res.OutputAddr != 0x5000_0000 {
		t.Errorf("after force remap -> %#x", uint64(res.OutputAddr))
	}
}

func TestUnmapSplitsBlock(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	if err := tbl.Map(0x4020_0000, 2<<20, 0x4020_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	// Unmap one page in the middle of the 2MB block.
	victim := uint64(0x4020_0000 + 17*arch.PageSize)
	if err := tbl.Unmap(victim, arch.PageSize); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if _, f := arch.WalkRead(tbl.Mem, tbl.Root(), victim); f == nil {
		t.Error("unmapped page still translates")
	}
	// Every other page of the block still translates to the right PA.
	for off := uint64(0); off < 2<<20; off += arch.PageSize {
		ia := 0x4020_0000 + off
		if ia == victim {
			continue
		}
		res, f := arch.WalkRead(tbl.Mem, tbl.Root(), ia)
		if f != nil || res.OutputAddr != arch.PhysAddr(ia) {
			t.Fatalf("ia %#x: res %#x fault %v", ia, uint64(res.OutputAddr), f)
		}
	}
	if _, level := tbl.GetLeaf(0x4020_0000); level != 3 {
		t.Errorf("block not split to pages: level %d", level)
	}
}

func TestUnmapInvalidIsNoop(t *testing.T) {
	tbl, pool := newTestTable(t, 2)
	before := pool.Allocated()
	if err := tbl.Unmap(0x4000_0000, 1<<20); err != nil {
		t.Fatalf("Unmap of nothing: %v", err)
	}
	if pool.Allocated() != before {
		t.Error("unmap of invalid range allocated table pages")
	}
}

func TestAnnotate(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	if err := tbl.Annotate(0x4000_0000, arch.PageSize, 2); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	pte, _ := tbl.GetLeaf(0x4000_0000)
	if pte.Kind(3) != arch.EKAnnotated || pte.OwnerID() != 2 {
		t.Errorf("leaf = %v owner %d", pte.Kind(3), pte.OwnerID())
	}
	// Hardware must fault on annotated entries.
	if _, f := arch.WalkRead(tbl.Mem, tbl.Root(), 0x4000_0000); f == nil {
		t.Error("annotated page translates")
	}
	// Clearing with owner 0 returns to plain invalid.
	if err := tbl.Annotate(0x4000_0000, arch.PageSize, 0); err != nil {
		t.Fatal(err)
	}
	pte, _ = tbl.GetLeaf(0x4000_0000)
	if pte.Kind(3) != arch.EKInvalid {
		t.Errorf("after clear: %v", pte.Kind(3))
	}
}

func TestAnnotateCoarse(t *testing.T) {
	tbl, pool := newTestTable(t, 2)
	before := pool.Allocated()
	// A whole 2MB entry gets a single coarse annotation.
	if err := tbl.Annotate(0x4020_0000, 2<<20, 3); err != nil {
		t.Fatal(err)
	}
	pte, level := tbl.GetLeaf(0x4020_0000)
	if level != 2 || pte.Kind(level) != arch.EKAnnotated {
		t.Errorf("coarse annotation: level %d kind %v", level, pte.Kind(level))
	}
	if got := pool.Allocated() - before; got != 2 {
		t.Errorf("coarse annotation used %d pages, want 2 (l1+l2)", got)
	}
}

func TestSplitAnnotationReplicates(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	if err := tbl.Annotate(0x4020_0000, 2<<20, 3); err != nil {
		t.Fatal(err)
	}
	// Force-map one page inside the annotated 2MB region.
	victim := uint64(0x4020_0000 + 100*arch.PageSize)
	if err := tbl.Map(victim, arch.PageSize, 0x5000_0000, normRWX, true); err != nil {
		t.Fatalf("force map into annotation: %v", err)
	}
	// The victim maps; its neighbours keep the annotation.
	res, f := arch.WalkRead(tbl.Mem, tbl.Root(), victim)
	if f != nil || res.OutputAddr != 0x5000_0000 {
		t.Errorf("victim -> %#x fault %v", uint64(res.OutputAddr), f)
	}
	pte, level := tbl.GetLeaf(victim + arch.PageSize)
	if level != 3 || pte.Kind(3) != arch.EKAnnotated || pte.OwnerID() != 3 {
		t.Errorf("neighbour = level %d %v owner %d, want replicated annotation",
			level, pte.Kind(level), pte.OwnerID())
	}
}

func TestMapOverAnnotationWithoutForce(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	if err := tbl.Annotate(0x4000_0000, arch.PageSize, 2); err != nil {
		t.Fatal(err)
	}
	err := tbl.Map(0x4000_0000, arch.PageSize, 0x4000_0000, normRWX, false)
	if !errors.Is(err, ErrExists) {
		t.Errorf("map over annotation = %v, want ErrExists", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	m := arch.NewMemory(arch.DefaultLayout())
	pool := mem.NewPool("tiny", tablePoolBase, 2) // root + one level
	tbl, err := New("test", m, arch.Stage2, PoolAllocator{pool}, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = tbl.Map(0x4000_0000, arch.PageSize, 0x4000_0000, normRWX, false)
	if !errors.Is(err, ErrNoMem) {
		t.Errorf("map with starved allocator = %v, want ErrNoMem", err)
	}
}

func TestBadRanges(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	cases := []struct{ ia, size uint64 }{
		{0x1001, arch.PageSize},     // unaligned ia
		{0x1000, 12},                // unaligned size
		{0x1000, 0},                 // empty
		{1 << 48, arch.PageSize},    // non-canonical
		{^uint64(0) - 4095, 0x2000}, // wraps
	}
	for _, c := range cases {
		if err := tbl.Map(c.ia, c.size, 0, normRWX, false); !errors.Is(err, ErrRange) {
			t.Errorf("Map(%#x,%#x) = %v, want ErrRange", c.ia, c.size, err)
		}
	}
	if err := tbl.Map(0x1000, arch.PageSize, 0x123, normRWX, false); !errors.Is(err, ErrRange) {
		t.Error("unaligned PA accepted")
	}
}

func TestWalkVisitorLeafOrder(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	if err := tbl.Map(0x4000_0000, 3*arch.PageSize, 0x4000_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	var visited []uint64
	err := tbl.Walk(0x4000_0000, 5*arch.PageSize, &Visitor{
		Flags: VisitLeaf,
		Fn: func(ctx *VisitCtx) error {
			visited = append(visited, ctx.IA)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 mapped pages + 2 invalid leaves, in ascending order.
	if len(visited) != 5 {
		t.Fatalf("visited %d entries: %#x", len(visited), visited)
	}
	for i := 1; i < len(visited); i++ {
		if visited[i] <= visited[i-1] {
			t.Errorf("visit order not ascending: %#x", visited)
		}
	}
}

func TestWalkVisitorTablePrePost(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	if err := tbl.Map(0x4000_0000, arch.PageSize, 0x4000_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	var pre, post int
	err := tbl.Walk(0x4000_0000, arch.PageSize, &Visitor{
		Flags: VisitTablePre | VisitTablePost,
		Fn: func(ctx *VisitCtx) error {
			if ctx.PTE.Kind(ctx.Level) != arch.EKTable {
				t.Errorf("table visitor saw %v", ctx.PTE.Kind(ctx.Level))
			}
			if pre > post {
				post++
			} else {
				pre++
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three interior levels (0,1,2), each visited pre and post.
	if pre+post != 6 {
		t.Errorf("table visits = %d, want 6", pre+post)
	}
}

func TestWalkVisitorAbort(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	if err := tbl.Map(0x4000_0000, 4*arch.PageSize, 0x4000_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	count := 0
	err := tbl.Walk(0x4000_0000, 4*arch.PageSize, &Visitor{
		Flags: VisitLeaf,
		Fn: func(ctx *VisitCtx) error {
			count++
			if count == 2 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) || count != 2 {
		t.Errorf("err = %v after %d visits", err, count)
	}
}

func TestWalkVisitorReplace(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	if err := tbl.Map(0x4000_0000, arch.PageSize, 0x4000_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	// A LEAF visitor that flips the page to an annotation, the way
	// stage2_map_walker-style callbacks mutate in place.
	err := tbl.Walk(0x4000_0000, arch.PageSize, &Visitor{
		Flags: VisitLeaf,
		Fn: func(ctx *VisitCtx) error {
			ctx.Replace(arch.MakeAnnotation(2))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pte, _ := tbl.GetLeaf(0x4000_0000)
	if pte.Kind(3) != arch.EKAnnotated {
		t.Errorf("replace did not stick: %v", pte.Kind(3))
	}
}

func TestDestroyReturnsAllPages(t *testing.T) {
	tbl, pool := newTestTable(t, 2)
	if err := tbl.Map(0x4000_0000, 8*arch.PageSize, 0x4000_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(0x7000_0000, 2<<20, 0x4020_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	tbl.Destroy()
	if pool.Allocated() != 0 {
		t.Errorf("%d table pages leaked after Destroy", pool.Allocated())
	}
}

func TestTablePagesFootprint(t *testing.T) {
	tbl, pool := newTestTable(t, 2)
	if err := tbl.Map(0x4000_0000, arch.PageSize, 0x4000_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	pages := tbl.TablePages()
	// Root + 3 interior levels.
	if len(pages) != 4 {
		t.Errorf("footprint = %d pages, want 4", len(pages))
	}
	if len(pages) != pool.Allocated() {
		t.Errorf("footprint %d != allocated %d", len(pages), pool.Allocated())
	}
}

func TestUnmapReclaimsEmptyTables(t *testing.T) {
	tbl, pool := newTestTable(t, 2)
	baseline := pool.Allocated() // just the root

	// Map 512 pages across one level-3 table plus parts of others.
	if err := tbl.Map(0x4000_0000, 512*arch.PageSize, 0x4000_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	grown := pool.Allocated()
	if grown <= baseline {
		t.Fatal("mapping did not allocate tables")
	}
	// Unmapping everything returns the whole tree (except the root).
	if err := tbl.Unmap(0x4000_0000, 512*arch.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := pool.Allocated(); got != baseline {
		t.Errorf("after full unmap: %d table pages allocated, want %d (reclaim leaked)", got, baseline)
	}
	// Partial unmap keeps the shared interior tables.
	if err := tbl.Map(0x4000_0000, 4*arch.PageSize, 0x4000_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Unmap(0x4000_0000, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	res, f := arch.WalkRead(tbl.Mem, tbl.Root(), 0x4000_1000)
	if f != nil || res.OutputAddr != 0x4000_1000 {
		t.Error("partial unmap destroyed live mappings")
	}
}

func TestAnnotateClearReclaims(t *testing.T) {
	tbl, pool := newTestTable(t, 2)
	baseline := pool.Allocated()
	if err := tbl.Annotate(0x4000_0000, 8*arch.PageSize, 3); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Annotate(0x4000_0000, 8*arch.PageSize, 0); err != nil {
		t.Fatal(err)
	}
	if got := pool.Allocated(); got != baseline {
		t.Errorf("annotation clear leaked %d table pages", got-baseline)
	}
}

func TestMapUnmapChurnIsBalanced(t *testing.T) {
	// Long map/unmap churn must not grow the allocator footprint:
	// the leak the reclaim exists to prevent.
	tbl, pool := newTestTable(t, 2)
	baseline := pool.Allocated()
	for i := 0; i < 200; i++ {
		va := 0x4000_0000 + uint64(i%7)*(1<<30) // spread across level-1 entries
		if err := tbl.Map(va, 2*arch.PageSize, 0x4000_0000, normRWX, true); err != nil {
			t.Fatal(err)
		}
		if err := tbl.Unmap(va, 2*arch.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if got := pool.Allocated(); got != baseline {
		t.Errorf("churn grew the table footprint from %d to %d pages", baseline, got)
	}
}

// Property: an arbitrary interleaving of page-granular map and unmap
// operations leaves the table extensionally equal to a reference
// finite map, as observed through the architecture's walk.
func TestMapUnmapAgainstReferenceModel(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	rng := rand.New(rand.NewSource(42))
	ref := map[uint64]arch.PhysAddr{} // ia -> pa

	const base = uint64(0x4000_0000)
	const span = 512 // pages
	for step := 0; step < 3000; step++ {
		page := base + uint64(rng.Intn(span))*arch.PageSize
		if rng.Intn(2) == 0 {
			pa := arch.PhysAddr(base + uint64(rng.Intn(span))*arch.PageSize)
			if err := tbl.Map(page, arch.PageSize, pa, normRWX, true); err != nil {
				t.Fatalf("step %d map: %v", step, err)
			}
			ref[page] = pa
		} else {
			if err := tbl.Unmap(page, arch.PageSize); err != nil {
				t.Fatalf("step %d unmap: %v", step, err)
			}
			delete(ref, page)
		}
	}
	for i := 0; i < span; i++ {
		ia := base + uint64(i)*arch.PageSize
		res, f := arch.WalkRead(tbl.Mem, tbl.Root(), ia)
		pa, mapped := ref[ia]
		if mapped != (f == nil) {
			t.Fatalf("ia %#x: mapped=%v fault=%v", ia, mapped, f)
		}
		if mapped && res.OutputAddr != pa {
			t.Fatalf("ia %#x -> %#x, want %#x", ia, uint64(res.OutputAddr), uint64(pa))
		}
	}
}

// Property: block mappings and page mappings of the same range are
// extensionally identical under the hardware walk.
func TestBlockPageEquivalence(t *testing.T) {
	blockTbl, _ := newTestTable(t, 2)
	pageTbl, _ := newTestTable(t, 3)
	if err := blockTbl.Map(0x4020_0000, 2<<20, 0x4020_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	if err := pageTbl.Map(0x4020_0000, 2<<20, 0x4020_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 2<<20; off += arch.PageSize {
		a, fa := arch.WalkRead(blockTbl.Mem, blockTbl.Root(), 0x4020_0000+off)
		b, fb := arch.WalkRead(pageTbl.Mem, pageTbl.Root(), 0x4020_0000+off)
		if (fa == nil) != (fb == nil) || a.OutputAddr != b.OutputAddr || a.Attrs != b.Attrs {
			t.Fatalf("divergence at offset %#x", off)
		}
	}
}

// tlbiRecorder captures break-before-make notifications and asserts
// the ordering contract at callback time: the broken entry must
// already be invalid (a hardware walk faults) when the TLBI fires, or
// break-before-make is violated.
type tlbiRecorder struct {
	t   *testing.T
	tbl *Table
	got []tlbiEvent
}

type tlbiEvent struct{ ia, size uint64 }

func recordTLBI(t *testing.T, tbl *Table) *tlbiRecorder {
	r := &tlbiRecorder{t: t, tbl: tbl}
	tbl.SetTLBI(func(ia, size uint64) {
		if _, f := arch.WalkRead(tbl.Mem, tbl.Root(), ia); f == nil {
			t.Errorf("TLBI for ia %#x fired while the entry still translates (make before break)", ia)
		}
		r.got = append(r.got, tlbiEvent{ia, size})
	})
	return r
}

func (r *tlbiRecorder) take() []tlbiEvent {
	g := r.got
	r.got = nil
	return g
}

func TestTLBIOnlyForLiveEntries(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	rec := recordTLBI(t, tbl)

	// invalid -> valid (the demand-map path): nothing was cached, no TLBI.
	if err := tbl.Map(0x4000_0000, arch.PageSize, 0x4000_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	if g := rec.take(); len(g) != 0 {
		t.Errorf("demand map notified %v", g)
	}

	// valid -> valid replacement (force): one TLBI for the broken page.
	if err := tbl.Map(0x4000_0000, arch.PageSize, 0x4000_5000, normRWX, true); err != nil {
		t.Fatal(err)
	}
	if g := rec.take(); len(g) != 1 || g[0] != (tlbiEvent{0x4000_0000, arch.PageSize}) {
		t.Errorf("forced remap notified %v", g)
	}

	// valid -> invalid (unmap): one TLBI; unmapping nothing: none.
	if err := tbl.Unmap(0x4000_0000, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	if g := rec.take(); len(g) != 1 || g[0] != (tlbiEvent{0x4000_0000, arch.PageSize}) {
		t.Errorf("unmap notified %v", g)
	}
	if err := tbl.Unmap(0x4000_0000, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	if g := rec.take(); len(g) != 0 {
		t.Errorf("unmap of nothing notified %v", g)
	}

	// Annotations never enter the TLB: annotating invalid entries and
	// mapping over an annotation are both maintenance-free.
	if err := tbl.Annotate(0x4000_0000, arch.PageSize, 3); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(0x4000_0000, arch.PageSize, 0x4000_0000, normRWX, true); err != nil {
		t.Fatal(err)
	}
	if g := rec.take(); len(g) != 0 {
		t.Errorf("annotation paths notified %v", g)
	}
	// But annotating over a live mapping breaks it: one TLBI.
	if err := tbl.Annotate(0x4000_0000, arch.PageSize, 3); err != nil {
		t.Fatal(err)
	}
	if g := rec.take(); len(g) != 1 {
		t.Errorf("annotate over mapping notified %v", g)
	}
}

func TestTLBICoversBrokenBlock(t *testing.T) {
	tbl, _ := newTestTable(t, 2)
	rec := recordTLBI(t, tbl)
	if err := tbl.Map(0x4020_0000, 2<<20, 0x4020_0000, normRWX, false); err != nil {
		t.Fatal(err)
	}
	if g := rec.take(); len(g) != 0 {
		t.Fatalf("block map notified %v", g)
	}

	// Unmapping one page splits the block: first a TLBI covering the
	// whole 2MB entry being broken (not just the page), then the
	// page-granule TLBI for the replicated page the unmap breaks.
	if err := tbl.Unmap(0x4020_3000, arch.PageSize); err != nil {
		t.Fatal(err)
	}
	g := rec.take()
	want := []tlbiEvent{{0x4020_0000, arch.LevelSize(2)}, {0x4020_3000, arch.PageSize}}
	if len(g) != 2 || g[0] != want[0] || g[1] != want[1] {
		t.Errorf("block split notified %v, want %v", g, want)
	}

	// Whole-entry unmap of a region now holding a subtree: one TLBI
	// covering the subtree's range.
	if err := tbl.Unmap(0x4020_0000, 2<<20); err != nil {
		t.Fatal(err)
	}
	g = rec.take()
	if len(g) != 1 || g[0] != (tlbiEvent{0x4020_0000, arch.LevelSize(2)}) {
		t.Errorf("subtree unmap notified %v", g)
	}
}
