// Package pgtable is the hypervisor's generic page-table machinery,
// modelled on the walker shared between KVM and pKVM: a table handle,
// a visitor-callback Walk used for checks (the paper's
// kvm_pgtable_walk with __check_page_state_visitor etc.), and the
// mutation operations — map, unmap, ownership annotation — built with
// block mappings, block splitting, and annotation replication.
//
// The ghost specification never uses this package to read tables: its
// abstraction functions interpret raw descriptors via package arch,
// preserving the paper's hygiene split between implementation and
// specification.
package pgtable

import (
	"errors"
	"fmt"

	"ghostspec/internal/analysis/preempt"
	"ghostspec/internal/arch"
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

// spanMutate covers one top-level mutation walk; the span does not
// distinguish map/unmap/annotate (the counters already do) — on the
// timeline what matters is pgtable time as a phase.
var spanMutate = trace.NewName("pgtable.mutate")

// Walker and mutation traffic, across all tables in the process. The
// walk-depth histogram observes the terminal level of each lookup —
// deep walks mean fragmented tables.
var (
	telWalks      = telemetry.NewCounter("pgtable_walks_total")
	telMaps       = telemetry.NewCounter("pgtable_map_total")
	telUnmaps     = telemetry.NewCounter("pgtable_unmap_total")
	telAnnotates  = telemetry.NewCounter("pgtable_annotate_total")
	telPagesAlloc = telemetry.NewCounter("pgtable_table_pages_allocated_total")
	telPagesFreed = telemetry.NewCounter("pgtable_table_pages_freed_total")
	telWalkDepth  = telemetry.NewHistogram("pgtable_walk_depth")
)

// Sentinel errors, mirroring the kernel's errno discipline.
var (
	// ErrNoMem reports table-page allocation failure; the loose
	// specification permits most hypercalls to fail with it.
	ErrNoMem = errors.New("pgtable: out of table memory")
	// ErrExists reports a conflicting existing entry when mapping
	// without force.
	ErrExists = errors.New("pgtable: mapping already exists")
	// ErrRange reports an input range outside the table's input space
	// or not page-aligned.
	ErrRange = errors.New("pgtable: bad input range")
)

// Allocator supplies zeroable table pages. The host stage 2 and hyp
// stage 1 draw from the hypervisor's pool; guest stage 2 tables draw
// from the running vCPU's memcache.
type Allocator interface {
	// AllocTablePage returns a frame for use as a table page, or
	// false if the allocator is exhausted.
	AllocTablePage() (arch.PFN, bool)
	// FreeTablePage returns a table frame to the allocator.
	FreeTablePage(arch.PFN)
}

// Table is a live translation table: a root frame plus the policy
// needed to grow and shrink it.
type Table struct {
	Name  string
	Mem   *arch.Memory
	Stage arch.Stage
	Alloc Allocator

	// MaxBlockLevel is the coarsest level at which Map may install a
	// block descriptor: 1 permits 1GB and 2MB blocks, 2 permits only
	// 2MB, 3 forces page granularity.
	MaxBlockLevel int

	// root is the table's root frame; mutated only under the owning
	// component's lock (which lock that is depends on whose table this
	// handle serves — host, hyp or a guest).
	//ghost:guards lock=owner
	root arch.PhysAddr

	// onTablePage, when set, observes every table-page allocation and
	// free; see SetOnTablePage.
	onTablePage func(pfn arch.PFN, alloc bool)

	// tlbi, when set, receives one TLB-invalidate notification per
	// break-before-make sequence; see SetTLBI.
	tlbi func(ia, size uint64)

	// tlb, when set, is the system's software TLB, consulted by
	// GetLeaf as a generation-verified walk cache; see SetTLB.
	tlb     *arch.TLB
	tlbVMID arch.VMID

	// tracer, when attached, receives one span per top-level mutation
	// walk (Map/Unmap/Annotate) on lane; see SetTracer.
	tracer *trace.Tracer
	lane   int
}

// SetOnTablePage installs a callback notified after every table-page
// allocation (alloc true) and free (alloc false) this table performs.
// Installing replays the current tree — one allocation notification
// per live table page, the root included — so a subscriber attaching
// after New still observes the complete live set. Used by the
// hypervisor to keep per-table live-page gauges without rescanning.
func (t *Table) SetOnTablePage(cb func(pfn arch.PFN, alloc bool)) {
	t.onTablePage = cb
	if cb != nil {
		for _, pfn := range t.TablePages() {
			cb(pfn, true)
		}
	}
}

// notifyTablePage reports one allocation or free to the subscriber.
func (t *Table) notifyTablePage(pfn arch.PFN, alloc bool) {
	if t.onTablePage != nil {
		t.onTablePage(pfn, alloc)
	}
}

// SetTLBI installs the TLB-invalidate callback. The mutation paths
// call it once per broken entry, between unmaking the old descriptor
// and making its replacement visible (break-before-make), covering the
// broken entry's whole input range. The hypervisor bridges it to the
// system TLB tagged with the component's VMID; because mutations run
// under the owning component's lock, the callback fires under that
// lock too.
func (t *Table) SetTLBI(fn func(ia, size uint64)) { t.tlbi = fn }

// notifyTLBI reports one break-before-make invalidation.
func (t *Table) notifyTLBI(ia, size uint64) {
	if t.tlbi != nil {
		t.tlbi(ia, size)
	}
}

// SetTLB attaches the system's software TLB so GetLeaf can serve
// lookups from still-fresh cached walks under the component's VMID
// tag. Unlike the hardware hit path, GetLeaf's hits are revalidated
// against the per-frame write generations before use: the hypervisor
// reads its own tables with ordinary loads, so a software lookup must
// never observe a stale descriptor even when a TLBI was (buggily)
// skipped.
func (t *Table) SetTLB(tlb *arch.TLB, vmid arch.VMID) {
	t.tlb, t.tlbVMID = tlb, vmid
}

// SetTracer attaches a span tracer covering the top-level mutation
// walks. Install once at construction, like the other subscribers.
func (t *Table) SetTracer(tr *trace.Tracer, lane int) {
	t.tracer, t.lane = tr, lane
}

// New allocates a root table page and returns the handle.
func New(name string, m *arch.Memory, stage arch.Stage, alloc Allocator, maxBlockLevel int) (*Table, error) {
	t := &Table{Name: name, Mem: m, Stage: stage, Alloc: alloc, MaxBlockLevel: maxBlockLevel}
	pfn, ok := alloc.AllocTablePage()
	if !ok {
		return nil, fmt.Errorf("%s root: %w", name, ErrNoMem)
	}
	if !telemetry.Disabled() {
		telPagesAlloc.Inc()
	}
	m.ZeroPage(pfn.Phys())
	t.root = pfn.Phys()
	return t, nil
}

// Attach wraps an existing table root in a handle without allocating:
// used by tooling (and fault-injection tests) that needs to operate on
// a table owned elsewhere.
func Attach(name string, m *arch.Memory, stage arch.Stage, alloc Allocator, maxBlockLevel int, root arch.PhysAddr) *Table {
	return &Table{Name: name, Mem: m, Stage: stage, Alloc: alloc, MaxBlockLevel: maxBlockLevel, root: root}
}

// Root returns the physical address of the root table page — what the
// hypervisor installs in TTBR/VTTBR on context switch. The root is
// written once at construction (and zeroed by Destroy), so the bare
// read is safe without the owner's lock.
//
//ghostlint:ignore guardcheck root is construction-stable; reading one word races with nothing
func (t *Table) Root() arch.PhysAddr { return t.root }

func checkRange(ia, size uint64) error {
	if size == 0 || !arch.PageAligned(ia) || !arch.PageAligned(size) ||
		!arch.CanonicalIA(ia) || ia+size < ia || !arch.CanonicalIA(ia+size-1) {
		return ErrRange
	}
	return nil
}

// entryBase returns the start of the input range covered by the entry
// containing ia at the given level.
func entryBase(ia uint64, level int) uint64 {
	return ia &^ (arch.LevelSize(level) - 1)
}

// ---------------------------------------------------------------------
// Generic visitor walk (the kvm_pgtable_walk analogue).

// WalkFlags selects which entries a Walk visits.
type WalkFlags uint8

const (
	// VisitLeaf visits block and page descriptors, and invalid or
	// annotated entries at the deepest level reached within the range.
	VisitLeaf WalkFlags = 1 << iota
	// VisitTablePre visits table descriptors before descending.
	VisitTablePre
	// VisitTablePost visits table descriptors after ascending.
	VisitTablePost
)

// VisitCtx describes one visited entry. The callback may replace the
// descriptor with Replace, as KVM's walker callbacks install or adjust
// entries in place.
type VisitCtx struct {
	// IA is the input address of the start of this entry's coverage,
	// clamped to the walked range.
	IA uint64
	// Level is the walk level of the entry.
	Level int
	// PTE is the descriptor value as read.
	PTE arch.PTE
	// NrPages is the number of 4KB pages of the entry's coverage that
	// intersect the walked range.
	NrPages uint64

	table arch.PhysAddr
	index int
	mem   *arch.Memory
}

// Replace writes a new descriptor value over the visited entry.
func (c *VisitCtx) Replace(p arch.PTE) {
	c.mem.WritePTE(c.table, c.index, p)
	c.PTE = p
}

// Visitor is the callback bundle for Walk.
type Visitor struct {
	Flags WalkFlags
	// Fn is invoked for each selected entry; a non-nil error aborts
	// the walk and is returned from Walk.
	Fn func(ctx *VisitCtx) error
}

// Walk traverses the table over [ia, ia+size), invoking the visitor
// according to its flags. It follows the architecture's table-walk
// order and visits entries in ascending input-address order.
//
//ghost:requires lock=owner
func (t *Table) Walk(ia, size uint64, v *Visitor) error {
	if err := checkRange(ia, size); err != nil {
		return err
	}
	if !telemetry.Disabled() {
		telWalks.Inc()
	}
	if preempt.Armed() && v.Fn != nil {
		// A scheduler is installed: interpose the visitor-step
		// preemption point in front of every callback, on a copy so the
		// caller's Visitor is untouched. The point resolves to the
		// walker's own v.Fn dispatch line — the per-entry granularity
		// the preemption-point table records.
		inner := v.Fn
		wrapped := *v
		wrapped.Fn = func(ctx *VisitCtx) error {
			preempt.FireCaller(preempt.KindVisitorStep)
			return inner(ctx)
		}
		v = &wrapped
	}
	return t.walkLevel(t.root, arch.StartLevel, ia, ia+size, v)
}

func (t *Table) walkLevel(table arch.PhysAddr, level int, ia, end uint64, v *Visitor) error {
	for ia < end {
		idx := arch.IndexAt(ia, level)
		base := entryBase(ia, level)
		entryEnd := base + arch.LevelSize(level)
		chunkEnd := min(end, entryEnd)
		pte := t.Mem.ReadPTE(table, idx)
		ctx := &VisitCtx{
			IA:      ia,
			Level:   level,
			PTE:     pte,
			NrPages: (chunkEnd - ia) >> arch.PageShift,
			table:   table,
			index:   idx,
			mem:     t.Mem,
		}
		if pte.Kind(level) == arch.EKTable {
			if v.Flags&VisitTablePre != 0 {
				if err := v.Fn(ctx); err != nil {
					return err
				}
			}
			// The callback may have replaced the table with a leaf;
			// only descend if it is still a table.
			if ctx.PTE.Kind(level) == arch.EKTable {
				if err := t.walkLevel(ctx.PTE.TableAddr(), level+1, ia, chunkEnd, v); err != nil {
					return err
				}
				if v.Flags&VisitTablePost != 0 {
					if err := v.Fn(ctx); err != nil {
						return err
					}
				}
			}
		} else if v.Flags&VisitLeaf != 0 {
			if err := v.Fn(ctx); err != nil {
				return err
			}
		}
		ia = chunkEnd
	}
	return nil
}

// ---------------------------------------------------------------------
// Lookup.

// GetLeaf walks to the entry covering ia and returns the terminal
// descriptor and its level (the entry is a block, page, invalid, or
// annotated descriptor — never a table).
//
//ghost:requires lock=owner
func (t *Table) GetLeaf(ia uint64) (arch.PTE, int) {
	pte, level, ok := t.tlb.LookupLeaf(t.root, t.Stage, t.tlbVMID, ia)
	if !ok {
		pte, level = arch.WalkLeaf(t.Mem, t.root, ia)
	}
	if !telemetry.Disabled() {
		telWalkDepth.Observe(uint64(level))
	}
	return pte, level
}

// ---------------------------------------------------------------------
// Mutation: Map / Unmap / Annotate with block split.

// Map installs a mapping from [ia, ia+size) to [pa, pa+size) with the
// given attributes. When force is false, any existing valid or
// annotated entry in the range fails with ErrExists. When force is
// true, existing entries — including annotations and whole subtrees —
// are replaced, and partially covered blocks or annotations are split.
// Block descriptors are used where alignment permits, at levels no
// coarser than MaxBlockLevel.
//
//ghost:requires lock=owner
func (t *Table) Map(ia, size uint64, pa arch.PhysAddr, attrs arch.Attrs, force bool) error {
	if err := checkRange(ia, size); err != nil {
		return err
	}
	if !arch.PageAligned(uint64(pa)) {
		return ErrRange
	}
	if !telemetry.Disabled() {
		telMaps.Inc()
	}
	sp := t.tracer.Begin(t.lane, spanMutate)
	defer sp.End()
	return t.mutateRange(t.root, arch.StartLevel, ia, ia+size, mutateOpts{force: force}, func(level int, entryIA uint64) arch.PTE {
		return arch.MakeLeaf(level, pa+arch.PhysAddr(entryIA-ia), attrs)
	}, func(level int, entryIA uint64) bool {
		// A leaf fits here if blocks are allowed at this level and the
		// output address is co-aligned with the input.
		if level < t.MaxBlockLevel {
			return false
		}
		return (uint64(pa)+(entryIA-ia))&(arch.LevelSize(level)-1) == 0
	})
}

// Unmap clears every entry over [ia, ia+size) to the plain invalid
// descriptor, splitting partially covered blocks and annotations. It
// never fails on already-invalid entries: unmapping nothing is a
// no-op, matching the kernel walker.
//
//ghost:requires lock=owner
func (t *Table) Unmap(ia, size uint64) error {
	if err := checkRange(ia, size); err != nil {
		return err
	}
	if !telemetry.Disabled() {
		telUnmaps.Inc()
	}
	sp := t.tracer.Begin(t.lane, spanMutate)
	defer sp.End()
	return t.mutateRange(t.root, arch.StartLevel, ia, ia+size, mutateOpts{force: true, skipInvalid: true},
		func(int, uint64) arch.PTE { return 0 },
		func(int, uint64) bool { return true })
}

// Annotate overwrites every entry over [ia, ia+size) with an
// ownership annotation for owner (or the plain invalid descriptor when
// owner is zero), pKVM's set_owner walk. Existing mappings in the
// range are destroyed; partially covered blocks are split.
//
//ghost:requires lock=owner
func (t *Table) Annotate(ia, size uint64, owner uint8) error {
	if err := checkRange(ia, size); err != nil {
		return err
	}
	if !telemetry.Disabled() {
		telAnnotates.Inc()
	}
	sp := t.tracer.Begin(t.lane, spanMutate)
	defer sp.End()
	return t.mutateRange(t.root, arch.StartLevel, ia, ia+size, mutateOpts{force: true, skipInvalid: owner == 0},
		func(int, uint64) arch.PTE {
			if owner == 0 {
				return 0
			}
			return arch.MakeAnnotation(owner)
		},
		func(int, uint64) bool { return true })
}

// mutateOpts controls mutateRange: force permits replacing and
// splitting existing valid or annotated entries; skipInvalid elides
// descending into plain invalid entries when the mutation would only
// write invalid descriptors beneath them (unmap of nothing must not
// grow the tree).
type mutateOpts struct {
	force       bool
	skipInvalid bool
}

// mutateRange rewrites all entries covering [ia, end). makeEntry
// builds the replacement descriptor for a whole entry at a level;
// leafOK reports whether a whole-entry replacement may be installed at
// that level (otherwise the walk descends). Partially covered leaves
// are split when opts.force is set and fail with ErrExists otherwise —
// except plain invalid entries, which are always split silently.
func (t *Table) mutateRange(table arch.PhysAddr, level int, ia, end uint64, opts mutateOpts,
	makeEntry func(level int, entryIA uint64) arch.PTE,
	leafOK func(level int, entryIA uint64) bool) error {
	for ia < end {
		idx := arch.IndexAt(ia, level)
		base := entryBase(ia, level)
		entryEnd := base + arch.LevelSize(level)
		chunkEnd := min(end, entryEnd)
		pte := t.Mem.ReadPTE(table, idx)
		kind := pte.Kind(level)

		whole := ia == base && chunkEnd == entryEnd
		if whole && (level == arch.LastLevel || leafOK(level, ia)) {
			// Replace the entire entry.
			switch kind {
			case arch.EKInvalid:
				// Always replaceable: invalid encodings never enter the
				// TLB, so no maintenance either.
			case arch.EKAnnotated, arch.EKBlock, arch.EKPage:
				if !opts.force {
					return fmt.Errorf("%s ia %#x level %d (%s): %w", t.Name, ia, level, kind, ErrExists)
				}
			case arch.EKTable:
				if !opts.force {
					return fmt.Errorf("%s ia %#x level %d (subtree): %w", t.Name, ia, level, ErrExists)
				}
			case arch.EKReserved:
				return fmt.Errorf("%s ia %#x level %d: reserved descriptor %#x", t.Name, ia, level, uint64(pte))
			}
			if kind == arch.EKBlock || kind == arch.EKPage || kind == arch.EKTable {
				// Break-before-make: a live translation (or a subtree
				// that may contain some) is first broken to invalid and
				// invalidated from the TLB; only then may its table
				// pages be reused and the replacement made visible.
				t.Mem.WritePTE(table, idx, 0)
				t.notifyTLBI(ia, arch.LevelSize(level))
				if kind == arch.EKTable {
					t.freeSubtree(pte, level)
				}
			}
			t.Mem.WritePTE(table, idx, makeEntry(level, ia))
			ia = chunkEnd
			continue
		}

		// Partial coverage (or a level too coarse for a leaf here):
		// descend, creating or splitting as needed.
		var next arch.PhysAddr
		switch kind {
		case arch.EKTable:
			next = pte.TableAddr()
		case arch.EKInvalid:
			if opts.skipInvalid {
				ia = chunkEnd
				continue
			}
			np, err := t.newTable(table, idx, 0, level)
			if err != nil {
				return err
			}
			next = np
		case arch.EKAnnotated, arch.EKBlock, arch.EKPage:
			if !opts.force {
				return fmt.Errorf("%s ia %#x level %d (split %s): %w", t.Name, ia, level, kind, ErrExists)
			}
			if kind != arch.EKAnnotated {
				// Break-before-make across the split: the live block
				// leaves the table and the TLB before the replicated
				// finer-grained copy is built and installed.
				t.Mem.WritePTE(table, idx, 0)
				t.notifyTLBI(base, arch.LevelSize(level))
			}
			np, err := t.newTable(table, idx, pte, level)
			if err != nil {
				return err
			}
			next = np
		case arch.EKReserved:
			return fmt.Errorf("%s ia %#x level %d: reserved descriptor %#x", t.Name, ia, level, uint64(pte))
		}
		if err := t.mutateRange(next, level+1, ia, chunkEnd, opts, makeEntry, leafOK); err != nil {
			return err
		}
		// Invalidating mutations reclaim child tables they emptied,
		// as the kernel walker's TABLE_POST visitors do: without
		// this, map/unmap churn leaks table pages.
		if opts.skipInvalid && tableEmpty(t.Mem, next) {
			t.Mem.WritePTE(table, idx, 0)
			t.Alloc.FreeTablePage(arch.PhysToPFN(next))
			t.notifyTablePage(arch.PhysToPFN(next), false)
			if !telemetry.Disabled() {
				telPagesFreed.Inc()
			}
		}
		ia = chunkEnd
	}
	return nil
}

// tableEmpty reports whether every descriptor of the table page at pa
// is plain invalid.
func tableEmpty(m *arch.Memory, pa arch.PhysAddr) bool {
	for i := 0; i < arch.PTEsPerTable; i++ {
		if m.ReadPTE(pa, i) != 0 {
			return false
		}
	}
	return true
}

// newTable allocates a next-level table under table[idx], seeding it
// with the split of old: a block is replicated as 512 finer leaves, an
// annotation as 512 copies, and a plain invalid entry as zeroes.
func (t *Table) newTable(table arch.PhysAddr, idx int, old arch.PTE, level int) (arch.PhysAddr, error) {
	pfn, ok := t.Alloc.AllocTablePage()
	if !ok {
		return 0, fmt.Errorf("%s level %d: %w", t.Name, level+1, ErrNoMem)
	}
	t.notifyTablePage(pfn, true)
	if !telemetry.Disabled() {
		telPagesAlloc.Inc()
	}
	pa := pfn.Phys()
	t.Mem.ZeroPage(pa)
	childLevel := level + 1
	switch old.Kind(level) {
	case arch.EKBlock:
		attrs := old.Attrs()
		oa := old.OutputAddr(level)
		step := arch.PhysAddr(arch.LevelSize(childLevel))
		for i := 0; i < arch.PTEsPerTable; i++ {
			t.Mem.WritePTE(pa, i, arch.MakeLeaf(childLevel, oa+arch.PhysAddr(i)*step, attrs))
		}
	case arch.EKAnnotated:
		for i := 0; i < arch.PTEsPerTable; i++ {
			t.Mem.WritePTE(pa, i, old)
		}
	}
	t.Mem.WritePTE(table, idx, arch.MakeTable(pa))
	return pa, nil
}

// freeSubtree returns all table pages of the subtree rooted at a table
// descriptor to the allocator.
func (t *Table) freeSubtree(pte arch.PTE, level int) {
	if pte.Kind(level) != arch.EKTable {
		return
	}
	pa := pte.TableAddr()
	for i := 0; i < arch.PTEsPerTable; i++ {
		t.freeSubtree(t.Mem.ReadPTE(pa, i), level+1)
	}
	t.Alloc.FreeTablePage(arch.PhysToPFN(pa))
	t.notifyTablePage(arch.PhysToPFN(pa), false)
	if !telemetry.Disabled() {
		telPagesFreed.Inc()
	}
}

// Destroy frees every table page including the root, leaving the
// handle unusable. Used at VM teardown.
//
//ghost:requires lock=owner
func (t *Table) Destroy() {
	t.freeSubtree(arch.MakeTable(t.root), arch.StartLevel-1)
	t.root = 0
}

// TablePages returns the physical frames currently used by the
// table's own tree (root and interior pages) — the footprint the
// ghost separation check monitors. Callers on a live table hold the
// owner's lock; the other callers (snapshot capture, boot-time
// subscriber replay) run on a quiescent system.
//
//ghostlint:ignore guardcheck quiescent-or-locked callers per the contract above
func (t *Table) TablePages() []arch.PFN {
	var out []arch.PFN
	var rec func(pa arch.PhysAddr, level int)
	rec = func(pa arch.PhysAddr, level int) {
		out = append(out, arch.PhysToPFN(pa))
		if level == arch.LastLevel {
			return
		}
		for i := 0; i < arch.PTEsPerTable; i++ {
			pte := t.Mem.ReadPTE(pa, i)
			if pte.Kind(level) == arch.EKTable {
				rec(pte.TableAddr(), level+1)
			}
		}
	}
	if t.root != 0 {
		rec(t.root, arch.StartLevel)
	}
	return out
}
