package pgtable

import (
	"ghostspec/internal/arch"
	"ghostspec/internal/mem"
)

// PoolAllocator adapts a mem.Pool as a table-page Allocator; the host
// stage 2 and hyp stage 1 tables are fed this way from the
// hypervisor's donated carve-out.
type PoolAllocator struct {
	Pool *mem.Pool
}

// AllocTablePage takes a frame from the pool.
func (a PoolAllocator) AllocTablePage() (arch.PFN, bool) { return a.Pool.Alloc() }

// FreeTablePage returns a frame to the pool.
func (a PoolAllocator) FreeTablePage(pfn arch.PFN) { a.Pool.Free(pfn) }

// MemcacheAllocator adapts a vCPU memcache as a table-page Allocator;
// guest stage 2 tables grow only from pages the host donated to that
// vCPU ahead of time, as in pKVM.
type MemcacheAllocator struct {
	MC *mem.Memcache
}

// AllocTablePage pops a donated frame from the memcache.
func (a MemcacheAllocator) AllocTablePage() (arch.PFN, bool) { return a.MC.Pop() }

// FreeTablePage pushes a frame back onto the memcache.
func (a MemcacheAllocator) FreeTablePage(pfn arch.PFN) { a.MC.Push(pfn) }
