package campaign

import (
	"fmt"
	"sync"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/coverage"
	"ghostspec/internal/faults"
	"ghostspec/internal/randtest"
)

// newTestEngine builds an engine shell with just enough wiring to
// drive the snapshot helpers directly, without launching workers.
func newTestEngine(cfg Config) *Engine {
	cfg.fill()
	return &Engine{
		cfg:     cfg,
		agg:     coverage.NewAggregator(),
		corpus:  newCorpus(cfg.CorpusCap),
		workers: make([]workerState, cfg.Workers),
	}
}

// TestSnapshotRestoreReplaysIdentically is the byte-identical-trace
// check: run a seeded generator on a restored system repeatedly; every
// run must record exactly the same trace, which it only can if each
// restore rewinds the system to a state indistinguishable from the
// first — same allocation order, same fault outcomes, same handles.
func TestSnapshotRestoreReplaysIdentically(t *testing.T) {
	e := newTestEngine(Config{Workers: 1, MaxExecs: 1})
	ws, err := e.newWorksys(0)
	if err != nil {
		t.Fatalf("worksys: %v", err)
	}
	run := func() string {
		e.restoreTo(0, ws, nil)
		wrapCoverage(ws.d, ws.rec)
		tr := e.runSteps(0, ws.d, ws.rec, input{seed: 4242, steps: 250}, &randtest.Trace{})
		if n := len(ws.rec.Failures()); n != 0 {
			t.Fatalf("clean run raised %d failures: %v", n, ws.rec.Failures()[0])
		}
		return tr.String()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("restored run %d recorded a different trace:\n%s\n--- want ---\n%s", i+1, got, first)
		}
	}
	if r := e.workers[0].snapRestores.Load(); r != 4 {
		t.Errorf("restores = %d, want 4", r)
	}
}

// TestSnapshotSharedBaseForkStress is the -race stress test: seven
// sibling systems adopt worker 0's base image concurrently, all fork
// into the same shared parent snapshot at once, verify bit-identical
// memory and ghost state against the original, then run independent
// generator tails on top of the fork.
func TestSnapshotSharedBaseForkStress(t *testing.T) {
	const workers = 8
	e := newTestEngine(Config{Workers: workers, MaxExecs: 1})
	ws0, err := e.newWorksys(0)
	if err != nil {
		t.Fatalf("worksys 0: %v", err)
	}
	wrapCoverage(ws0.d, ws0.rec)
	parent := e.runSteps(0, ws0.d, ws0.rec, input{seed: 99, steps: 150}, &randtest.Trace{})
	if n := len(ws0.rec.Failures()); n != 0 {
		t.Fatalf("parent run raised %d failures: %v", n, ws0.rec.Failures()[0])
	}
	snap := e.captureParent(0, ws0)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws, err := e.newWorksys(w)
			if err != nil {
				errs <- fmt.Errorf("worker %d worksys: %v", w, err)
				return
			}
			e.restoreTo(w, ws, snap)
			if diffs := arch.DiffMemory(ws.d.HV.Mem, ws0.d.HV.Mem, 4); len(diffs) != 0 {
				errs <- fmt.Errorf("worker %d fork memory diverges: %v", w, diffs)
				return
			}
			if diffs := ghostDiff(ws, ws0); len(diffs) != 0 {
				errs <- fmt.Errorf("worker %d fork ghost state diverges: %v", w, diffs)
				return
			}
			wrapCoverage(ws.d, ws.rec)
			tr := &randtest.Trace{Ops: append([]randtest.Op(nil), parent.Ops...)}
			e.runSteps(w, ws.d, ws.rec, input{seed: int64(1000 + w), steps: 100}, tr)
			if n := len(ws.rec.Failures()); n != 0 {
				errs <- fmt.Errorf("worker %d raised %d failures after fork: %v", w, n, ws.rec.Failures()[0])
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if e.sharedImage() == nil {
		t.Fatal("no shared base image was published")
	}
}

func ghostDiff(a, b *worksys) []string {
	return ghost.DiffStates(a.rec.SharedState(), b.rec.SharedState(), 4)
}

// TestConformanceCatchesTornRestore plants a single corrupted word in
// an otherwise perfectly restored system and requires the conformance
// differ to flag it — the differ is the safety net for the whole fork
// machinery, so it must see a one-word tear.
func TestConformanceCatchesTornRestore(t *testing.T) {
	e := newTestEngine(Config{Workers: 1, MaxExecs: 1})
	ws, err := e.newWorksys(0)
	if err != nil {
		t.Fatalf("worksys: %v", err)
	}
	wrapCoverage(ws.d, ws.rec)
	e.runSteps(0, ws.d, ws.rec, input{seed: 7, steps: 120}, &randtest.Trace{})
	e.restoreTo(0, ws, nil)

	ref, refRec, _, err := e.newSystem(0)
	if err != nil {
		t.Fatalf("reference boot: %v", err)
	}
	if diffs := conformance(ws.d, ws.rec, ref, refRec, 8); len(diffs) != 0 {
		t.Fatalf("clean restore flagged as divergent: %v", diffs)
	}

	pa := ws.d.HV.Mem.RAMStart() + 64*arch.PageSize + 24
	ws.d.HV.Mem.Write64(pa, ws.d.HV.Mem.Read64(pa)+1)
	diffs := conformance(ws.d, ws.rec, ref, refRec, 8)
	if len(diffs) == 0 {
		t.Fatal("one-word torn restore not detected by the conformance differ")
	}
	t.Logf("torn restore detected: %v", diffs)
}

// TestSnapshotConformanceClean runs a short parallel campaign with the
// conformance differ on every single execution: every restore and
// every corpus fork is diffed against a freshly-booted-and-replayed
// reference. Any divergence surfaces as a campaign error.
func TestSnapshotConformanceClean(t *testing.T) {
	rep, err := Run(Config{Workers: 2, StepsPerRun: 150, Seed: 13, MaxExecs: 12, ConformanceEvery: 1})
	if err != nil {
		t.Fatalf("conformance divergence on clean build: %v", err)
	}
	if rep.SnapshotRestores == 0 {
		t.Error("campaign performed no snapshot restores")
	}
	if rep.SnapshotFallbacks != 0 {
		t.Errorf("snapshot-enabled campaign fell back to %d full replays", rep.SnapshotFallbacks)
	}
}

// TestSnapshotConformanceFaultMatrix repeats the exhaustive
// conformance check against every injectable bug: forked executions
// on a buggy build must still be bit-identical to boot-and-replay on
// the same buggy build. This is what licenses running the fault-sweep
// acceptance matrix with snapshots enabled.
func TestSnapshotConformanceFaultMatrix(t *testing.T) {
	for _, bug := range faults.All() {
		cfg := Config{
			Workers: 1, StepsPerRun: 120, Seed: 11, MaxExecs: 4,
			ConformanceEvery: 1,
			Bugs:             []faults.Bug{bug},
			BigMemory:        faults.ClassOf(bug) == faults.ClassBootLayout,
		}
		if _, err := Run(cfg); err != nil {
			t.Errorf("%s: %v", bug, err)
		}
	}
}
