// Schedule fuzzing: the campaign's second execution phase. A trace the
// serial phase ran cleanly is split across vCPU streams and re-executed
// under a seeded deterministic schedule (internal/sched), so the same
// generator effort also probes interleavings: preemption points inside
// operations — lock windows, TLBI edges, page-table visitor steps —
// become places another vCPU's hypercall runs mid-operation, and the
// ghost oracle's lock-release checks now fire against genuinely
// interleaved state. A failing scheduled replay yields a Finding whose
// reproduction recipe is the (trace, schedule) pair, both minimized.
package campaign

import (
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
	"ghostspec/internal/sched"
	"ghostspec/internal/telemetry/trace"
)

var spanExecSched = trace.NewName("exec.sched")

// schedSeedStream is the WorkerSeed stream constant that derives a
// run's schedule seed from its generator seed, so a repro needs only
// the one campaign seed chain: seed → trace, (seed, stream) → schedule.
const schedSeedStream = 0x5ced

// SchedSeed returns the schedule seed the campaign derives for a run
// seed — exported so repro tooling (ghost-fuzz -sched-fuzz) re-derives
// the same schedule from the printed numbers.
func SchedSeed(runSeed int64) int64 {
	return randtest.WorkerSeed(runSeed, schedSeedStream)
}

// schedFuzzOne re-executes tr under a seeded deterministic schedule on
// a system rewound to base (or freshly booted when snapshots are off).
// Oracle alarms and scheduler-level errors (captured panics, deadlock
// abandonment) both produce findings.
func (e *Engine) schedFuzzOne(w int, in input, tr *randtest.Trace, ws *worksys, exec int64) {
	sp := e.tracer.Begin(w, spanExecSched)
	defer sp.End()
	schedSeed := SchedSeed(in.seed)

	var (
		d   *proxy.Driver
		rec *ghost.Recorder
	)
	if ws != nil {
		d, rec = ws.d, ws.rec
		e.restoreTo(w, ws, nil)
	} else {
		var err error
		if d, rec, _, err = e.bootSystem(w); err != nil {
			e.fatal(err)
			return
		}
	}

	s := sched.New(e.cfg.NrCPUs, sched.WithSeed(uint64(schedSeed)), sched.WithTracer(e.tracer, w))
	runErr := randtest.ReplayScheduled(d, tr, s)
	failures := rec.Failures()
	if len(failures) == 0 && runErr == nil {
		return
	}

	telFindings.Inc()
	min, minSched, minFailures, replays, ok := e.shrinkSchedOne(w, tr, schedSeed, ws)
	f := Finding{
		Worker: w, Exec: exec,
		Seed: in.seed, FromCorpus: in.parent != nil,
		Failures: failures,
		Trace:    tr, Min: min, MinFailures: minFailures,
		ShrinkReplays: replays, Reproducible: ok,
		Sched: s.Record(), MinSched: minSched, SchedSeed: schedSeed,
	}
	if runErr != nil {
		f.SchedErr = runErr.Error()
	}
	e.logf("sched finding: worker=%d exec=%d seed=%d sched-seed=%d cpus=%d alarms=%d trace=%d ops -> min=%d ops, sched=%d -> %d steps (%d replays)",
		w, exec, in.seed, schedSeed, e.cfg.NrCPUs, len(failures), tr.Len(), min.Len(),
		f.Sched.Len(), minSched.Len(), replays)
	e.recordFinding(f)
}

// shrinkSchedOne minimizes a failing (trace, schedule) pair under the
// exec.shrink span.
func (e *Engine) shrinkSchedOne(w int, tr *randtest.Trace, schedSeed int64, ws *worksys) (*randtest.Trace, *sched.Schedule, []ghost.Failure, int, bool) {
	sp := e.tracer.Begin(w, spanExecShrink)
	defer sp.End()
	return ShrinkScheduled(e.factory(w, ws), tr, schedSeed, e.cfg.NrCPUs, e.cfg.ShrinkReplays)
}
