package campaign

import (
	"fmt"
	"strings"
	"time"

	"ghostspec/internal/faults"
)

// MatrixEntry is one row of the fault-detection matrix: did a
// campaign against a build with exactly this bug injected raise an
// oracle alarm within its budget?
type MatrixEntry struct {
	Bug      faults.Bug
	Class    faults.Class
	Skipped  bool
	Reason   string // written justification, skip-listed bugs only
	Detected bool
	// Execs and Elapsed are the cost to first detection (or the full
	// budget when undetected); MinOps is the minimized repro length.
	Execs   int64
	Elapsed time.Duration
	MinOps  int
	// Alarm is the first oracle alarm, for the report.
	Alarm string
	// Err reports a campaign that failed to run at all.
	Err error
}

// FaultSweep runs one bounded campaign per bug, inheriting budget and
// shape from base (its Bugs/BigMemory/MaxFindings are overridden per
// bug). Boot-layout-class bugs get the large-memory layout — they are
// unreachable on the default map. skip maps bugs to a written
// justification; skipped bugs appear in the matrix but run nothing.
func FaultSweep(base Config, bugs []faults.Bug, skip map[faults.Bug]string) []MatrixEntry {
	out := make([]MatrixEntry, 0, len(bugs))
	for _, bug := range bugs {
		entry := MatrixEntry{Bug: bug, Class: faults.ClassOf(bug)}
		if reason, ok := skip[bug]; ok {
			entry.Skipped, entry.Reason = true, reason
			out = append(out, entry)
			continue
		}
		cfg := base
		cfg.Bugs = []faults.Bug{bug}
		cfg.BigMemory = entry.Class == faults.ClassBootLayout
		cfg.MaxFindings = 1
		rep, err := Run(cfg)
		if err != nil {
			entry.Err = err
			out = append(out, entry)
			continue
		}
		entry.Execs, entry.Elapsed = rep.Execs, rep.Elapsed
		if len(rep.Findings) > 0 {
			f := rep.Findings[0]
			entry.Detected = true
			entry.MinOps = f.Min.Len()
			if len(f.Failures) > 0 {
				entry.Alarm = f.Failures[0].String()
			}
		}
		out = append(out, entry)
	}
	return out
}

// FormatMatrix renders the detection matrix as a fixed-width table.
func FormatMatrix(matrix []MatrixEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-12s %-9s %7s %9s %6s\n",
		"bug", "class", "detected", "execs", "elapsed", "minops")
	for _, m := range matrix {
		status := "no"
		switch {
		case m.Skipped:
			status = "skipped"
		case m.Err != nil:
			status = "error"
		case m.Detected:
			status = "yes"
		}
		fmt.Fprintf(&b, "%-26s %-12s %-9s %7d %9s %6d\n",
			m.Bug, m.Class, status, m.Execs, m.Elapsed.Round(time.Millisecond), m.MinOps)
		if m.Skipped {
			fmt.Fprintf(&b, "    reason: %s\n", m.Reason)
		}
		if m.Err != nil {
			fmt.Fprintf(&b, "    error: %v\n", m.Err)
		}
	}
	return b.String()
}
