package campaign

import (
	"fmt"
	"testing"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/coverage"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
	"ghostspec/internal/sched"
)

// bootScheduled boots a standalone multi-CPU system with the oracle
// and coverage attached, outside the engine, for replay-determinism
// checks.
func bootScheduled(t *testing.T, cpus int, bugs ...faults.Bug) (*proxy.Driver, *ghost.Recorder, *coverage.Tracker) {
	t.Helper()
	hv, err := hyp.New(hyp.Config{NrCPUs: cpus, Inj: faults.NewInjector(bugs...)})
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	rec := ghost.Attach(hv)
	cov := coverage.Wrap(hv, rec)
	hv.SetInstrumentation(cov)
	return proxy.New(hv), rec, cov
}

// fuzzedTrace generates one serial trace on a throwaway system — raw
// material for the scheduled-replay determinism checks.
func fuzzedTrace(t *testing.T, seed int64, steps int) *randtest.Trace {
	t.Helper()
	d, rec, _ := bootScheduled(t, 4)
	tester := randtest.New(d, rec, seed, true)
	tester.Trace = &randtest.Trace{}
	tester.Run(steps)
	return tester.Trace
}

// TestScheduledReplayIsDeterministic is the cross-system determinism
// regression for the (trace, schedule) reproduction recipe: record a
// fuzzed multi-CPU scheduled execution, then replay the pair on a
// second freshly booted process-state and require byte-identical
// coverage, identical schedules, identical preemption counts, and
// identical flight-recorder contents (durations zeroed — wall time is
// the one thing the recipe does not pin).
func TestScheduledReplayIsDeterministic(t *testing.T) {
	tr := fuzzedTrace(t, 20260808, 120)

	type result struct {
		sched       *sched.Schedule
		preemptions uint64
		coverage    string
		failures    int
		flight      string
	}
	exec := func(policy sched.Option) result {
		d, rec, cov := bootScheduled(t, 2)
		s := sched.New(2, policy)
		if err := randtest.ReplayScheduled(d, tr, s); err != nil {
			t.Fatalf("scheduled replay: %v", err)
		}
		var flight string
		for cpu, evs := range d.HV.FlightRecorder().DumpAll() {
			for _, ev := range evs {
				ev.Dur = 0
				flight += fmt.Sprintf("cpu%d %s\n", cpu, ev.String())
			}
		}
		return result{
			sched:       s.Record(),
			preemptions: s.Preemptions(),
			coverage:    fmt.Sprintf("%+v", cov.Snapshot()),
			failures:    len(rec.Failures()),
			flight:      flight,
		}
	}

	first := exec(sched.WithSeed(99))
	if first.failures != 0 {
		t.Fatalf("clean hypervisor raised %d alarms under scheduling", first.failures)
	}
	if first.preemptions == 0 {
		t.Fatal("scheduled replay recorded no preemptions")
	}
	replayed := exec(sched.WithReplay(first.sched))
	if got, want := replayed.sched.String(), first.sched.String(); got != want {
		t.Fatalf("replayed schedule differs:\n  want %s\n  got  %s", want, got)
	}
	if replayed.preemptions != first.preemptions {
		t.Fatalf("preemption count differs: %d vs %d", replayed.preemptions, first.preemptions)
	}
	if replayed.coverage != first.coverage {
		t.Fatalf("coverage differs:\n  want %s\n  got  %s", first.coverage, replayed.coverage)
	}
	if replayed.flight != first.flight {
		t.Fatalf("flight-recorder contents differ:\n  want:\n%s\n  got:\n%s", first.flight, replayed.flight)
	}

	// Same seed from scratch must also reproduce (seed-only recipe).
	seeded := exec(sched.WithSeed(99))
	if seeded.sched.String() != first.sched.String() {
		t.Fatalf("same seed produced a different schedule:\n  %s\n  %s", first.sched, seeded.sched)
	}
}

// TestStaleScheduleFailsLoudly pins the PR 8 contract end to end: a
// recorded schedule whose point IDs are not in the current table (the
// table changed under an edit) must fail the replay loudly, not
// silently diverge.
func TestStaleScheduleFailsLoudly(t *testing.T) {
	tr := fuzzedTrace(t, 7, 40)
	d, _, _ := bootScheduled(t, 2)
	stale := &sched.Schedule{Steps: []sched.Step{{VCPU: 0, Point: 0xfeedfacecafebeef}}}
	s := sched.New(2, sched.WithReplay(stale))
	err := randtest.ReplayScheduled(d, tr, s)
	if err == nil {
		t.Fatal("scheduled replay accepted a stale schedule")
	}
	if got := err.Error(); !contains(got, "not in the current table") || !contains(got, "-write-preempt") {
		t.Fatalf("stale-schedule error is not actionable: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestSchedFuzzCampaignSmoke runs a short schedule-fuzzing campaign on
// a clean hypervisor: no findings, and the engine must have executed
// scheduled replays (visible through the sched_preemptions counter
// moving — asserted indirectly via a finding-free run completing).
func TestSchedFuzzCampaignSmoke(t *testing.T) {
	rep, err := Run(Config{
		Workers:     2,
		StepsPerRun: 60,
		Seed:        11,
		MaxExecs:    16,
		NrCPUs:      2,
		SchedFuzz:   true,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(rep.Findings) != 0 {
		f := rep.Findings[0]
		t.Fatalf("clean hypervisor produced %d findings; first: alarms=%d schedErr=%q min:\n%s",
			len(rep.Findings), len(f.Failures), f.SchedErr, f.Min)
	}
	if rep.Execs == 0 {
		t.Fatal("campaign ran no execs")
	}
}

// TestFaultMatrixFuzzedSchedules extends the tier-1 detection matrix
// with the concurrency leg: every planted bug must still be detected
// with schedule fuzzing enabled on 2-vCPU systems — serial detection
// keeps working, and schedule-dependent alarms can only add findings.
func TestFaultMatrixFuzzedSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzed-schedule matrix is not a -short test")
	}
	base := Config{
		Workers:       2,
		StepsPerRun:   250,
		Seed:          3,
		MaxExecs:      400,
		ShrinkReplays: 2000,
		NrCPUs:        2,
		SchedFuzz:     true,
	}
	matrix := FaultSweep(base, faults.All(), sweepSkip)
	if len(matrix) != len(faults.All()) {
		t.Fatalf("matrix has %d rows, want %d", len(matrix), len(faults.All()))
	}
	t.Logf("fuzzed-schedule detection matrix:\n%s", FormatMatrix(matrix))
	for _, m := range matrix {
		if m.Skipped {
			continue
		}
		if m.Err != nil {
			t.Errorf("%s: campaign error: %v", m.Bug, m.Err)
			continue
		}
		if !m.Detected {
			t.Errorf("%s (%s): not detected under fuzzed schedules within %d execs", m.Bug, m.Class, m.Execs)
		}
	}
}

// loadRaceTrace is a hand-built schedule-dependent failure under
// BugVCPULoadRace: stream 0 creates and initialises a VM's vCPU,
// stream 1 loads it. Serially (trace order) the load follows the init
// and every replay is clean; scheduled, any interleaving that lands
// the load between init-vm and init-vcpu makes the buggy hypervisor
// return OK where the spec demands ENOENT — an oracle alarm that
// exists only under some schedules.
func loadRaceTrace() *randtest.Trace {
	return &randtest.Trace{Ops: []randtest.Op{
		{Kind: randtest.OpInitVM, CPU: 0, Nr: 1, H: 1},
		{Kind: randtest.OpInitVCPU, CPU: 0, H: 1, VCPU: 0},
		{Kind: randtest.OpLoad, CPU: 1, H: 1, VCPU: 0},
	}}
}

// TestShrinkScheduledMinimizesPair exercises the joint shrinker on a
// genuinely schedule-dependent failure and requires the minimized
// (trace, schedule-prefix) pair to reproduce on a fresh system.
func TestShrinkScheduledMinimizesPair(t *testing.T) {
	tr := loadRaceTrace()

	// Serial replay must be clean: the bug is invisible in trace order.
	d, rec, _ := bootScheduled(t, 2, faults.BugVCPULoadRace)
	randtest.Replay(d, tr)
	if n := len(rec.Failures()); n != 0 {
		t.Fatalf("serial replay of the load-race trace raised %d alarms; want schedule-dependence", n)
	}

	// Find a schedule seed whose interleaving exposes the race. The
	// window needs several consecutive grants to the loading vCPU at
	// exactly the init-vm/init-vcpu seam, so a few hundred seeds is the
	// right order of magnitude (first hit observed at seed 119).
	schedSeed := int64(-1)
	for seed := int64(0); seed < 512; seed++ {
		d, rec, _ := bootScheduled(t, 2, faults.BugVCPULoadRace)
		s := sched.New(2, sched.WithSeed(uint64(seed)))
		if err := randtest.ReplayScheduled(d, tr, s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rec.Failures()) > 0 {
			schedSeed = seed
			break
		}
	}
	if schedSeed < 0 {
		t.Fatal("no schedule seed in [0,64) exposes the load race")
	}

	boot := func() (*proxy.Driver, *ghost.Recorder, error) {
		d, rec, _ := bootScheduled(t, 2, faults.BugVCPULoadRace)
		return d, rec, nil
	}
	min, minSched, minFailures, replays, ok := ShrinkScheduled(boot, tr, schedSeed, 2, 400)
	if !ok {
		t.Fatal("shrinker could not reproduce the scheduled failure")
	}
	if len(minFailures) == 0 {
		t.Fatal("minimized pair carries no alarms")
	}
	if min.Len() > tr.Len() {
		t.Fatalf("shrunk trace grew: %d ops from %d", min.Len(), tr.Len())
	}
	if minSched == nil {
		t.Fatal("no minimized schedule recorded")
	}
	if minSched.Len() > 10 {
		t.Errorf("minimized schedule has %d steps, want <= 10:\n%s", minSched.Len(), minSched)
	}
	t.Logf("minimized to %d ops, %d schedule steps in %d replays:\n%sschedule: %s",
		min.Len(), minSched.Len(), replays, min, minSched)

	// The pair is the complete repro recipe: replay it on a fresh
	// system and the oracle must alarm again.
	d2, rec2, _ := bootScheduled(t, 2, faults.BugVCPULoadRace)
	s2 := sched.New(2, sched.WithReplay(minSched))
	if err := randtest.ReplayScheduled(d2, min, s2); err != nil {
		t.Fatalf("pair replay: %v", err)
	}
	if len(rec2.Failures()) == 0 {
		t.Fatalf("minimized (trace, schedule) pair does not reproduce:\ntrace:\n%s\nschedule: %s", min, minSched)
	}
}
