package campaign

import (
	"math/rand"
	"testing"

	"ghostspec/internal/core/ghost"
	"ghostspec/internal/coverage"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
)

// testFactory boots default-layout systems with the given bugs
// injected, oracle attached.
func testFactory(bugs ...faults.Bug) Factory {
	return func() (*proxy.Driver, *ghost.Recorder, error) {
		hv, err := hyp.New(hyp.Config{Inj: faults.NewInjector(bugs...)})
		if err != nil {
			return nil, nil, err
		}
		rec := ghost.Attach(hv)
		cov := coverage.Wrap(hv, rec)
		hv.SetInstrumentation(cov)
		return proxy.New(hv), rec, nil
	}
}

// failingTrace runs the guided generator against a buggy build in
// short bursts until the oracle alarms, returning the recorded trace.
// Bursts keep the trace short so shrinking stays cheap.
func failingTrace(t *testing.T, bug faults.Bug) *randtest.Trace {
	t.Helper()
	for seed := int64(1); seed <= 10; seed++ {
		d, rec, err := testFactory(bug)()
		if err != nil {
			t.Fatalf("boot: %v", err)
		}
		tester := randtest.NewFromSource(d, rec, rand.NewSource(seed), true)
		tester.Trace = &randtest.Trace{}
		for burst := 0; burst < 30; burst++ {
			tester.Run(50)
			if len(rec.Failures()) > 0 {
				return tester.Trace
			}
		}
	}
	t.Fatalf("no failing trace found for %s", bug)
	return nil
}

// checkShrink asserts the shrinker contract on one injected bug: the
// minimized trace still fails the oracle on an independent fresh
// system, and it is near-1-minimal (≤ 10 ops).
func checkShrink(t *testing.T, bug faults.Bug) {
	t.Helper()
	tr := failingTrace(t, bug)
	t.Logf("%s: failing trace has %d ops", bug, tr.Len())

	min, minFailures, replays, ok := Shrink(testFactory(bug), tr, 4000)
	if !ok {
		t.Fatalf("%s: original failing trace did not reproduce", bug)
	}
	if len(minFailures) == 0 {
		t.Fatalf("%s: minimized trace reported no failures", bug)
	}
	if min.Len() > 10 {
		t.Errorf("%s: minimized trace has %d ops, want <= 10:\n%s", bug, min.Len(), min)
	}
	t.Logf("%s: minimized to %d ops in %d replays:\n%s", bug, min.Len(), replays, min)

	// Independent confirmation: replay the minimized trace on a fresh
	// system and require the oracle to alarm again.
	d, rec, err := testFactory(bug)()
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	randtest.Replay(d, min)
	if len(rec.Failures()) == 0 {
		t.Errorf("%s: minimized trace does not fail on independent replay", bug)
	}
}

// TestShrinkMemShareBug minimizes a memory-sharing defect.
func TestShrinkMemShareBug(t *testing.T) {
	checkShrink(t, faults.BugUnshareLeaveMapping)
}

// TestShrinkVMLifecycleBug minimizes a VM-lifecycle defect.
func TestShrinkVMLifecycleBug(t *testing.T) {
	checkShrink(t, faults.BugVCPULoadRace)
}

// TestShrinkPassingTraceNoOp pins the contract that shrinking a trace
// that does not fail is a no-op: the trace comes back unchanged after
// the single confirming replay.
func TestShrinkPassingTraceNoOp(t *testing.T) {
	d, rec, err := testFactory()()
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	tester := randtest.NewFromSource(d, rec, rand.NewSource(11), true)
	tester.Trace = &randtest.Trace{}
	tester.Run(300)
	if got := rec.Failures(); len(got) > 0 {
		t.Fatalf("clean build alarmed: %v", got[0])
	}
	tr := tester.Trace

	min, minFailures, replays, ok := Shrink(testFactory(), tr, 4000)
	if ok {
		t.Error("Shrink reported a passing trace as reproducible")
	}
	if min != tr {
		t.Error("Shrink did not return the passing trace unchanged")
	}
	if len(minFailures) != 0 {
		t.Errorf("Shrink of a passing trace reported failures: %v", minFailures)
	}
	if replays != 1 {
		t.Errorf("Shrink of a passing trace used %d replays, want exactly 1", replays)
	}
}
