package campaign

import (
	"testing"

	"ghostspec/internal/randtest"
	"ghostspec/internal/sched"
	"ghostspec/internal/spinlock"
)

// TestSchedStressRace drives 4-vCPU scheduled replays of fuzzed traces
// under a spread of random schedules with the runtime rank validator
// armed. Its real value is under the race detector (the CI race job
// runs it both via ./... and as a named step): cross-stream data
// races, lock-rank inversions surfacing only in interleaved windows,
// and scheduler protocol bugs (lost grants, double grants) all land
// here. On the clean hypervisor every run must be silent.
func TestSchedStressRace(t *testing.T) {
	spinlock.EnableRankCheck()
	t.Cleanup(spinlock.DisableRankCheck)

	schedules := 8
	if testing.Short() {
		schedules = 2
	}
	tr := fuzzedTrace(t, 424242, 160)
	for seed := uint64(0); seed < uint64(schedules); seed++ {
		d, rec, _ := bootScheduled(t, 4)
		s := sched.New(4, sched.WithSeed(seed))
		if err := randtest.ReplayScheduled(d, tr, s); err != nil {
			t.Fatalf("schedule seed %d: %v\nschedule: %s", seed, err, s.Record())
		}
		if n := len(rec.Failures()); n > 0 {
			t.Fatalf("schedule seed %d: clean hypervisor raised %d alarms; first: %s\nschedule: %s",
				seed, n, rec.Failures()[0].String(), s.Record())
		}
		if s.Preemptions() == 0 {
			t.Fatalf("schedule seed %d: no preemptions recorded — scheduler not engaged", seed)
		}
	}
}
