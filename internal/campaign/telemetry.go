package campaign

import "ghostspec/internal/telemetry"

// Campaign telemetry, registered once at package init like every other
// instrumented subsystem (the telemetrycheck analyzer enforces this).
// The counters are process-global: concurrent engines (e.g. the serial
// and parallel legs of the benchmark) share them, which is the same
// convention the hypervisor's own counters follow.
var (
	// telExecs counts completed executions (one boot + one generator
	// run); telExecRate is the derived execs/sec gauge fed by a Meter.
	telExecs    = telemetry.NewCounter("campaign_execs_total")
	telExecRate = telemetry.NewGauge("campaign_execs_per_sec")

	// telNovel counts runs whose coverage added novelty to the merged
	// aggregate (and therefore entered the corpus).
	telNovel      = telemetry.NewCounter("campaign_novel_runs_total")
	telCorpusSize = telemetry.NewGauge("campaign_corpus_size")

	// telFindings counts oracle failures the engine turned into
	// findings; telShrinkReplays counts delta-debugging replays spent
	// minimizing them.
	telFindings      = telemetry.NewCounter("campaign_findings_total")
	telShrinkReplays = telemetry.NewCounter("campaign_shrink_replays_total")

	// Snapshot machinery: restores performed (base rewinds and corpus
	// forks alike), total dirty frames those restores rewrote, and
	// fallbacks to a full boot+replay when a corpus parent carried no
	// snapshot.
	telSnapRestores = telemetry.NewCounter("snapshot_restores")
	telSnapDirty    = telemetry.NewCounter("snapshot_dirty_frames")
	telSnapFallback = telemetry.NewCounter("snapshot_fallback_full")
	// telSnapBackfill counts end-state snapshots captured for corpus
	// entries that arrived without one (fleet-injected seeds): each
	// backfill turns every future fork of that entry from a full replay
	// into a snapshot restore.
	telSnapBackfill = telemetry.NewCounter("snapshot_backfills")
)
