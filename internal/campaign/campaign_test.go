package campaign

import (
	"testing"

	"ghostspec/internal/faults"
)

// TestCampaignCleanNoFindings runs a short parallel campaign on the
// fixed build: no findings, and coverage/corpus machinery engaged.
func TestCampaignCleanNoFindings(t *testing.T) {
	rep, err := Run(Config{Workers: 2, StepsPerRun: 150, Seed: 7, MaxExecs: 8})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("clean build produced %d findings; first: %v",
			len(rep.Findings), rep.Findings[0].Failures[0])
	}
	if rep.Execs < 8 {
		t.Errorf("execs = %d, want >= 8", rep.Execs)
	}
	if rep.Coverage.Traps == 0 {
		t.Error("campaign observed no traps")
	}
	if rep.NovelRuns == 0 || rep.CorpusSize == 0 {
		t.Errorf("novelty machinery idle: novel=%d corpus=%d", rep.NovelRuns, rep.CorpusSize)
	}
	if rep.ExecsPerSec <= 0 {
		t.Errorf("execs/sec = %v, want > 0", rep.ExecsPerSec)
	}
}

// TestCampaignNeedsStopCondition pins the guard against unbounded
// campaigns.
func TestCampaignNeedsStopCondition(t *testing.T) {
	if _, err := Run(Config{Workers: 1}); err == nil {
		t.Fatal("campaign without a stop condition did not error")
	}
}

// TestCampaignDeterministicRepro is the acceptance check for seeded
// reproduction: a single-worker campaign against a known-bad build,
// run twice with the same seed, finds the bug both times and shrinks
// it to the identical minimized trace of at most 10 ops.
func TestCampaignDeterministicRepro(t *testing.T) {
	cfg := Config{
		Workers:       1,
		StepsPerRun:   200,
		Seed:          5,
		Bugs:          []faults.Bug{faults.BugUnshareLeaveMapping},
		MaxFindings:   1,
		MaxExecs:      200,
		ShrinkReplays: 4000,
	}
	run := func() Finding {
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		if len(rep.Findings) == 0 {
			t.Fatalf("campaign missed %s within %d execs", cfg.Bugs[0], rep.Execs)
		}
		return rep.Findings[0]
	}
	a, b := run(), run()

	for _, f := range []Finding{a, b} {
		if !f.Reproducible {
			t.Error("finding's original trace did not reproduce")
		}
		if len(f.MinFailures) == 0 {
			t.Error("finding has no minimized-trace failures")
		}
		if f.Min.Len() > 10 {
			t.Errorf("minimized repro has %d ops, want <= 10:\n%s", f.Min.Len(), f.Min)
		}
	}
	if a.Exec != b.Exec || a.Seed != b.Seed {
		t.Errorf("discovery diverged across identical campaigns: exec %d/%d seed %d/%d",
			a.Exec, b.Exec, a.Seed, b.Seed)
	}
	if a.Min.String() != b.Min.String() {
		t.Errorf("minimized repro not deterministic:\nfirst:\n%s\nsecond:\n%s", a.Min, b.Min)
	}
	t.Logf("deterministic minimized repro (%d ops):\n%s", a.Min.Len(), a.Min)
}

// TestCampaignParallelWorkers exercises the multi-worker path (shared
// aggregate, shared corpus) under the race detector in CI.
func TestCampaignParallelWorkers(t *testing.T) {
	rep, err := Run(Config{Workers: 4, StepsPerRun: 100, Seed: 3, MaxExecs: 12})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("clean build produced findings: %v", rep.Findings[0].Failures[0])
	}
	if rep.Execs < 12 {
		t.Errorf("execs = %d, want >= 12", rep.Execs)
	}
}
