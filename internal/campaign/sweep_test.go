package campaign

import (
	"testing"

	"ghostspec/internal/faults"
)

// sweepSkip is the written skip-list for the tier-1 detection matrix.
// Empty: every injectable bug must be detected by the campaign
// engine. Any future entry must carry a justification string, which
// the matrix report prints.
var sweepSkip = map[faults.Bug]string{}

// TestFaultDetectionMatrix is the tier-1 acceptance test: one bounded
// campaign per bug in faults.All(), each of which must raise an
// oracle alarm. Per-bug execution counts are logged so regressions in
// detection latency are visible in test output.
func TestFaultDetectionMatrix(t *testing.T) {
	base := Config{
		Workers:       2,
		StepsPerRun:   250,
		Seed:          3,
		MaxExecs:      400,
		ShrinkReplays: 2000,
	}
	matrix := FaultSweep(base, faults.All(), sweepSkip)
	if len(matrix) != len(faults.All()) {
		t.Fatalf("matrix has %d rows, want %d", len(matrix), len(faults.All()))
	}
	t.Logf("detection matrix:\n%s", FormatMatrix(matrix))
	for _, m := range matrix {
		if m.Skipped {
			if m.Reason == "" {
				t.Errorf("%s: skip-listed without a written justification", m.Bug)
			}
			continue
		}
		if m.Err != nil {
			t.Errorf("%s: campaign error: %v", m.Bug, m.Err)
			continue
		}
		if !m.Detected {
			t.Errorf("%s (%s): not detected within %d execs", m.Bug, m.Class, m.Execs)
			continue
		}
		t.Logf("%s (%s): detected after %d execs in %v, minimized to %d ops",
			m.Bug, m.Class, m.Execs, m.Elapsed, m.MinOps)
	}
}
