// Snapshot-backed execution: each worker keeps one long-lived system
// and rewinds it between executions instead of booting a fresh one.
//
// The anchor is a per-worker base snapshot taken right after boot; all
// workers boot the same deterministic system, so they share one memory
// image (the first worker's) and verify their own boots against it.
// Corpus parents additionally carry a portable delta of their trace's
// end state: a child execution forks straight into the parent state —
// restore dirty frames, install the value state, swap the ghost
// checkpoint — and skips the replay phase entirely.
//
// Correctness is load-bearing, so restores are cross-checked against
// ground truth: a conformance differ boots a fresh system, replays the
// restored trace prefix onto it, and diffs memory frame by frame, the
// allocator pools, the CPU register files, and the ghost abstraction.
// It runs probabilistically during campaigns (Config.ConformanceEvery)
// and exhaustively in tests; any divergence is a fatal campaign error,
// not a finding — it means the fork machinery itself is broken.
package campaign

import (
	"fmt"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/coverage"
	"ghostspec/internal/hyp"
	"ghostspec/internal/mem"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
	"ghostspec/internal/telemetry/trace"
)

var (
	spanExecRestore = trace.NewName("exec.restore")
	spanSnapCapture = trace.NewName("snapshot.capture")
)

// worksys is one worker's long-lived system plus everything needed to
// rewind it: the hypervisor base snapshot, the host pool's boot state,
// and the ghost oracle's boot checkpoint (which preserves boot-layout
// alarms, so every forked execution still reports them).
type worksys struct {
	d         *proxy.Driver
	rec       *ghost.Recorder
	base      *hyp.Base
	hostBoot  mem.PoolSnapshot
	ghostBoot *ghost.Checkpoint
}

// parentSnap is the portable end state of a corpus trace: immutable
// pure data captured by whichever worker ran the trace, restorable by
// any worker on top of its own base.
type parentSnap struct {
	delta *hyp.Delta
	host  mem.PoolSnapshot
	ghost *ghost.Checkpoint
}

// sharedImage returns the campaign-wide base memory image, if any
// worker has published one yet.
func (e *Engine) sharedImage() *arch.MemImage {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.baseImg
}

func (e *Engine) publishImage(img *arch.MemImage) {
	e.mu.Lock()
	if e.baseImg == nil {
		e.baseImg = img
	}
	e.mu.Unlock()
}

// newWorksys boots one long-lived worker system and captures its base
// snapshot, adopting the campaign-wide shared image when this boot
// verifies bit-identical against it (the deterministic-boot normal
// case; a mismatch falls back to a private image and the conformance
// differ will police the consequences).
func (e *Engine) newWorksys(w int) (*worksys, error) {
	d, rec, _, err := e.bootSystem(w)
	if err != nil {
		return nil, err
	}
	sp := e.tracer.Begin(w, spanSnapCapture)
	defer sp.End()
	ws := &worksys{d: d, rec: rec}
	var adopted bool
	ws.base, adopted = d.HV.CaptureBase(e.sharedImage())
	if !adopted {
		e.publishImage(ws.base.Image())
	}
	ws.hostBoot = d.HostPool.Snapshot()
	ws.ghostBoot = rec.Checkpoint()
	return ws, nil
}

// restoreTo rewinds the worker's system to its base (snap nil) or to a
// corpus parent's end state, under the exec.restore span. Returns the
// number of memory frames rewritten.
func (e *Engine) restoreTo(w int, ws *worksys, snap *parentSnap) int {
	sp := e.tracer.Begin(w, spanExecRestore)
	defer sp.End()
	var dirty int
	if snap == nil {
		dirty = ws.base.RestoreBase()
		ws.d.HostPool.Restore(ws.hostBoot)
		ws.rec.RestoreCheckpoint(ws.ghostBoot)
	} else {
		dirty = ws.base.RestoreDelta(snap.delta)
		ws.d.HostPool.Restore(snap.host)
		ws.rec.RestoreCheckpoint(snap.ghost)
		e.workers[w].snapParentHits.Add(1)
	}
	e.workers[w].snapRestores.Add(1)
	e.workers[w].snapDirtyFrames.Add(int64(dirty))
	telSnapRestores.Inc()
	telSnapDirty.Add(uint64(dirty))
	return dirty
}

// captureParent snapshots the system's current state — the just-run
// trace's end state — for attachment to the corpus entry, under the
// snapshot.capture span.
func (e *Engine) captureParent(w int, ws *worksys) *parentSnap {
	sp := e.tracer.Begin(w, spanSnapCapture)
	defer sp.End()
	return &parentSnap{
		delta: ws.base.CaptureDelta(),
		host:  ws.d.HostPool.Snapshot(),
		ghost: ws.rec.Checkpoint(),
	}
}

// conformance diffs a restored system against a reference system in
// ground-truth state, returning human-readable divergences (at most
// max): memory frame by frame, both allocator pools, the CPU register
// files and per-CPU hypervisor state, and the ghost abstraction.
func conformance(d *proxy.Driver, rec *ghost.Recorder, ref *proxy.Driver, refRec *ghost.Recorder, max int) []string {
	var out []string
	add := func(format string, args ...any) {
		if len(out) < max {
			out = append(out, fmt.Sprintf(format, args...))
		}
	}
	for _, diff := range arch.DiffMemory(d.HV.Mem, ref.HV.Mem, max) {
		add("memory: %s", diff)
	}
	if !d.HostPool.Snapshot().Equal(ref.HostPool.Snapshot()) {
		add("host pool allocation state diverges")
	}
	if !d.HV.HypPool.Snapshot().Equal(ref.HV.HypPool.Snapshot()) {
		add("hyp pool allocation state diverges")
	}
	for i := range d.HV.CPUs {
		if *d.HV.CPUs[i] != *ref.HV.CPUs[i] {
			add("cpu %d register file diverges", i)
		}
		if d.HV.PerCPUState(i) != ref.HV.PerCPUState(i) {
			add("cpu %d hypervisor per-cpu state diverges", i)
		}
	}
	for _, diff := range ghost.DiffStates(rec.SharedState(), refRec.SharedState(), max) {
		add("ghost: %s", diff)
	}
	return out
}

// checkConformance verifies the restored worker system against a
// freshly booted system with ops replayed onto it. A divergence is
// fatal: it stops the campaign and surfaces from Wait as an error.
func (e *Engine) checkConformance(w int, ws *worksys, ops []randtest.Op) {
	ref, refRec, _, err := e.newSystem(w)
	if err != nil {
		e.fatal(fmt.Errorf("conformance reference boot: %w", err))
		return
	}
	if len(ops) > 0 {
		randtest.Replay(ref, &randtest.Trace{Ops: ops})
	}
	if diffs := conformance(ws.d, ws.rec, ref, refRec, 8); len(diffs) > 0 {
		e.fatal(fmt.Errorf("snapshot conformance divergence (worker %d, %d-op prefix): %v", w, len(ops), diffs))
	}
}

// fatal records a campaign-machinery error and stops the campaign.
func (e *Engine) fatal(err error) {
	e.mu.Lock()
	if e.bootErr == nil {
		e.bootErr = err
	}
	e.mu.Unlock()
	e.stop.Store(true)
}

// wrapCoverage installs a fresh per-exec coverage tracker over the
// long-lived system's oracle, mirroring what a fresh boot gets.
func wrapCoverage(d *proxy.Driver, rec *ghost.Recorder) *coverage.Tracker {
	cov := coverage.Wrap(d.HV, rec)
	d.HV.SetInstrumentation(cov)
	return cov
}
