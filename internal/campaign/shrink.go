package campaign

import (
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
)

// Factory boots a fresh system configured identically to the one that
// produced a finding (same injected bugs, same layout) with the oracle
// attached. The shrinker boots one per replay — reproduction recipes
// are trace-plus-boot-configuration, never warm state.
type Factory func() (*proxy.Driver, *ghost.Recorder, error)

// Shrink minimizes a failing trace by delta debugging: ddmin over
// chunk complements down to single-op granularity, then a linear
// polish pass removing ops one at a time, giving a near-1-minimal
// reproduction (every remaining op is individually necessary up to
// the replay budget). Each candidate replays deterministically on a
// fresh system; a candidate is kept when the oracle still alarms.
//
// It returns the minimized trace, the alarms it raises, the number of
// replays spent, and whether the original trace reproduced at all. A
// passing trace is returned unchanged with ok=false — shrinking a
// non-failure is a no-op. maxReplays bounds the work; on exhaustion
// the best trace so far is returned.
func Shrink(boot Factory, tr *randtest.Trace, maxReplays int) (*randtest.Trace, []ghost.Failure, int, bool) {
	replays := 0
	var lastFailures []ghost.Failure
	fails := func(ops []randtest.Op) bool {
		if replays >= maxReplays {
			return false
		}
		replays++
		telShrinkReplays.Inc()
		d, rec, err := boot()
		if err != nil {
			return false
		}
		// Boot-layout alarms fire at attach; only replay on a clean boot.
		if len(rec.Failures()) == 0 {
			randtest.Replay(d, &randtest.Trace{Ops: ops})
		}
		if f := rec.Failures(); len(f) > 0 {
			lastFailures = f
			return true
		}
		return false
	}

	if !fails(tr.Ops) {
		return tr, nil, replays, false
	}
	// A finding that needs no ops at all (boot-layout class) shrinks
	// to the empty trace immediately.
	if fails(nil) {
		return &randtest.Trace{}, lastFailures, replays, true
	}

	cur := tr.Ops
	curFailures := lastFailures

	// ddmin: try dropping each of n chunks; on success restart with
	// the reduced trace, otherwise refine the granularity.
	n := 2
	for len(cur) >= 2 && replays < maxReplays {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(cur); lo += chunk {
			hi := min(lo+chunk, len(cur))
			cand := make([]randtest.Op, 0, len(cur)-(hi-lo))
			cand = append(cand, cur[:lo]...)
			cand = append(cand, cur[hi:]...)
			if fails(cand) {
				cur, curFailures = cand, lastFailures
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(2*n, len(cur))
		}
	}

	// Linear polish: back-to-front single-op removal catches ops ddmin
	// left behind because their chunk-mates were load-bearing.
	for i := len(cur) - 1; i >= 0 && len(cur) >= 2 && replays < maxReplays; i-- {
		cand := make([]randtest.Op, 0, len(cur)-1)
		cand = append(cand, cur[:i]...)
		cand = append(cand, cur[i+1:]...)
		if fails(cand) {
			cur, curFailures = cand, lastFailures
		}
	}

	return &randtest.Trace{Ops: cur}, curFailures, replays, true
}
