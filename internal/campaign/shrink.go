package campaign

import (
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
	"ghostspec/internal/sched"
)

// Factory boots a fresh system configured identically to the one that
// produced a finding (same injected bugs, same layout) with the oracle
// attached. The shrinker boots one per replay — reproduction recipes
// are trace-plus-boot-configuration, never warm state.
type Factory func() (*proxy.Driver, *ghost.Recorder, error)

// Shrink minimizes a failing trace by delta debugging: ddmin over
// chunk complements down to single-op granularity, then a linear
// polish pass removing ops one at a time, giving a near-1-minimal
// reproduction (every remaining op is individually necessary up to
// the replay budget). Each candidate replays deterministically on a
// fresh system; a candidate is kept when the oracle still alarms.
//
// It returns the minimized trace, the alarms it raises, the number of
// replays spent, and whether the original trace reproduced at all. A
// passing trace is returned unchanged with ok=false — shrinking a
// non-failure is a no-op. maxReplays bounds the work; on exhaustion
// the best trace so far is returned.
func Shrink(boot Factory, tr *randtest.Trace, maxReplays int) (*randtest.Trace, []ghost.Failure, int, bool) {
	replays := 0
	var lastFailures []ghost.Failure
	fails := func(ops []randtest.Op) bool {
		if replays >= maxReplays {
			return false
		}
		replays++
		telShrinkReplays.Inc()
		d, rec, err := boot()
		if err != nil {
			return false
		}
		// Boot-layout alarms fire at attach; only replay on a clean boot.
		if len(rec.Failures()) == 0 {
			randtest.Replay(d, &randtest.Trace{Ops: ops})
		}
		if f := rec.Failures(); len(f) > 0 {
			lastFailures = f
			return true
		}
		return false
	}

	if !fails(tr.Ops) {
		return tr, nil, replays, false
	}
	// A finding that needs no ops at all (boot-layout class) shrinks
	// to the empty trace immediately.
	if fails(nil) {
		return &randtest.Trace{}, lastFailures, replays, true
	}

	cur := tr.Ops
	curFailures := lastFailures

	// ddmin: try dropping each of n chunks; on success restart with
	// the reduced trace, otherwise refine the granularity.
	n := 2
	for len(cur) >= 2 && replays < maxReplays {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(cur); lo += chunk {
			hi := min(lo+chunk, len(cur))
			cand := make([]randtest.Op, 0, len(cur)-(hi-lo))
			cand = append(cand, cur[:lo]...)
			cand = append(cand, cur[hi:]...)
			if fails(cand) {
				cur, curFailures = cand, lastFailures
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(2*n, len(cur))
		}
	}

	// Linear polish: back-to-front single-op removal catches ops ddmin
	// left behind because their chunk-mates were load-bearing.
	for i := len(cur) - 1; i >= 0 && len(cur) >= 2 && replays < maxReplays; i-- {
		cand := make([]randtest.Op, 0, len(cur)-1)
		cand = append(cand, cur[:i]...)
		cand = append(cand, cur[i+1:]...)
		if fails(cand) {
			cur, curFailures = cand, lastFailures
		}
	}

	return &randtest.Trace{Ops: cur}, curFailures, replays, true
}

// ShrinkScheduled jointly minimizes a (trace, schedule) reproduction
// from a schedule-fuzzing finding. It is Shrink's ddmin with a
// scheduled replay predicate — every candidate trace re-runs split
// across nrCPUs vCPU streams under a fresh scheduler seeded with
// schedSeed, and "still fails" means the oracle alarms again or the
// scheduler itself errors (captured stream panic, abandonment) — then
// a second minimization over the schedule: the shortest recorded-
// schedule prefix that, replayed over the minimized trace with the
// remainder drained deterministically, still fails. The returned
// schedule is that prefix; together with the trace and the boot
// configuration it is the complete reproduction recipe.
func ShrinkScheduled(boot Factory, tr *randtest.Trace, schedSeed int64, nrCPUs, maxReplays int) (*randtest.Trace, *sched.Schedule, []ghost.Failure, int, bool) {
	replays := 0
	var lastFailures []ghost.Failure
	var lastSched *sched.Schedule
	attempt := func(ops []randtest.Op, policy sched.Option) bool {
		if replays >= maxReplays {
			return false
		}
		replays++
		telShrinkReplays.Inc()
		d, rec, err := boot()
		if err != nil {
			return false
		}
		var runErr error
		if len(rec.Failures()) == 0 {
			s := sched.New(nrCPUs, policy)
			runErr = randtest.ReplayScheduled(d, &randtest.Trace{Ops: ops}, s)
			lastSched = s.Record()
		}
		if f := rec.Failures(); len(f) > 0 {
			lastFailures = f
			return true
		}
		if runErr != nil {
			lastFailures = nil
			return true
		}
		return false
	}
	seeded := func(ops []randtest.Op) bool {
		return attempt(ops, sched.WithSeed(uint64(schedSeed)))
	}

	if !seeded(tr.Ops) {
		return tr, nil, nil, replays, false
	}
	cur, curFailures, curSched := tr.Ops, lastFailures, lastSched
	if seeded(nil) {
		cur, curFailures, curSched = nil, lastFailures, lastSched
	}

	n := 2
	for len(cur) >= 2 && replays < maxReplays {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(cur); lo += chunk {
			hi := min(lo+chunk, len(cur))
			cand := make([]randtest.Op, 0, len(cur)-(hi-lo))
			cand = append(cand, cur[:lo]...)
			cand = append(cand, cur[hi:]...)
			if seeded(cand) {
				cur, curFailures, curSched = cand, lastFailures, lastSched
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(2*n, len(cur))
		}
	}
	for i := len(cur) - 1; i >= 0 && len(cur) >= 2 && replays < maxReplays; i-- {
		cand := make([]randtest.Op, 0, len(cur)-1)
		cand = append(cand, cur[:i]...)
		cand = append(cand, cur[i+1:]...)
		if seeded(cand) {
			cur, curFailures, curSched = cand, lastFailures, lastSched
		}
	}

	// Schedule minimization: smallest k such that the first k recorded
	// decisions, with the rest of the replay drained lowest-id-first,
	// still reproduce. k = full length replays the recorded schedule
	// exactly, so (budget permitting) the loop always terminates with
	// a reproducing prefix.
	minSched := curSched
	if curSched != nil {
		for k := 0; k <= curSched.Len() && replays < maxReplays; k++ {
			prefix := (&sched.Schedule{Steps: curSched.Steps[:k]}).Clone()
			if attempt(cur, sched.WithReplay(prefix)) {
				minSched, curFailures = prefix, lastFailures
				break
			}
		}
	}

	return &randtest.Trace{Ops: cur}, minSched, curFailures, replays, true
}
