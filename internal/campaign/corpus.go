package campaign

import (
	"math/rand"
	"sync"

	"ghostspec/internal/randtest"
)

// corpus is the shared seed pool of a campaign. A run's trace enters
// when its coverage added novelty to the merged aggregate; its score
// (novelty plus rarity of the outcomes it hit) weights how often the
// mutation stage picks it back up, so the campaign keeps re-visiting
// the neighbourhoods of runs that reached rare outcomes instead of
// re-rolling the common paths.
type corpus struct {
	mu      sync.Mutex
	entries []corpusEntry
	total   float64 // sum of scores, for weighted pick
	cap     int
}

type corpusEntry struct {
	trace *randtest.Trace
	score float64
	snap  *parentSnap // end-state snapshot; nil forces replay on fork
}

func newCorpus(cap int) *corpus {
	return &corpus{cap: cap}
}

// add inserts a trace; when full, the lowest-scoring entry is evicted
// (which may be the newcomer).
func (c *corpus) add(tr *randtest.Trace, score float64, snap *parentSnap) {
	if score <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = append(c.entries, corpusEntry{trace: tr, score: score, snap: snap})
	c.total += score
	if len(c.entries) > c.cap {
		low := 0
		for i, e := range c.entries {
			if e.score < c.entries[low].score {
				low = i
			}
		}
		c.total -= c.entries[low].score
		c.entries[low] = c.entries[len(c.entries)-1]
		c.entries = c.entries[:len(c.entries)-1]
	}
	telCorpusSize.Set(int64(len(c.entries)))
}

// backfill attaches an end-state snapshot to a snapshot-less entry
// (matched by trace identity). Injected seeds arrive without one; the
// first fork of such an entry pays the full replay, captures the state
// it just rebuilt, and hands it here so every later fork restores
// instead. Racing workers may both replay and capture — the first
// capture wins, the loser's is dropped. A miss (entry evicted since
// the pick) is fine: the snapshot just dies with it.
func (c *corpus) backfill(tr *randtest.Trace, snap *parentSnap) {
	if snap == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.entries {
		if c.entries[i].trace == tr {
			if c.entries[i].snap == nil {
				c.entries[i].snap = snap
				telSnapBackfill.Inc()
			}
			return
		}
	}
}

// pick draws an entry with probability proportional to its score.
// The caller supplies its own rng so per-worker determinism holds.
func (c *corpus) pick(rng *rand.Rand) (*randtest.Trace, *parentSnap, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) == 0 || c.total <= 0 {
		return nil, nil, false
	}
	r := rng.Float64() * c.total
	for _, e := range c.entries {
		r -= e.score
		if r < 0 {
			return e.trace, e.snap, true
		}
	}
	last := c.entries[len(c.entries)-1]
	return last.trace, last.snap, true
}

// size returns the current entry count.
func (c *corpus) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
