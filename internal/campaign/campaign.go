// Package campaign is the parallel coverage-guided campaign engine.
//
// It scales the paper's §5 model-guided random testing out across
// workers: each worker owns a private system instance (hypervisor,
// ghost oracle, coverage tracker) and executes short generator runs,
// folding every run's coverage into one shared aggregate. Runs whose
// coverage adds novelty seed a shared corpus; mutation biases future
// runs toward seeds that reached rare outcomes. When the oracle
// alarms, a delta-debugging shrinker minimizes the recorded operation
// trace to a near-1-minimal reproduction, carrying the flight-recorder
// dump of the failing CPU. A fault-sweep mode iterates the entire
// faults.All() matrix and asserts every planted bug is detected.
package campaign

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/coverage"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/randtest"
	"ghostspec/internal/sched"
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

// Execution phase spans. Each worker is one tracer lane, so one exec's
// phases nest under its exec span and never interleave with another
// worker's. The phase set is the disjoint cover benchreport -profile
// attributes exec wall time against: boot, parent replay, generation,
// coverage accounting, shrinking.
var (
	spanExec       = trace.NewName("exec")
	spanExecBoot   = trace.NewName("exec.boot")
	spanExecReplay = trace.NewName("exec.replay")
	spanExecRun    = trace.NewName("exec.run")
	spanExecCorpus = trace.NewName("exec.corpus")
	spanExecShrink = trace.NewName("exec.shrink")
)

// bigMemoryLayout is the large-physical-map configuration boot-layout
// bugs need (same shape bugdemo uses): enough RAM that the linear map
// reaches the IO window.
var bigMemoryLayout = arch.MemLayout{RAMStart: 1 << 30, RAMSize: 4 << 30, MMIOSize: 16 << 20}

// Config parameterises one campaign.
type Config struct {
	// Workers is the shard count; each worker boots private systems.
	// Default GOMAXPROCS.
	Workers int
	// StepsPerRun is the generator-step length of one execution
	// (default 400). Short runs keep shrinking cheap and reboot often
	// enough that findings stay independent.
	StepsPerRun int
	// Seed fixes the whole campaign: worker w draws every run seed
	// from randtest.WorkerSeed(Seed, w), so a single-worker campaign
	// is fully deterministic. Default 1.
	Seed int64
	// Unguided selects the uniform-random ablation generator; the
	// zero value is the model-guided default.
	Unguided bool
	// Bugs are injected into every booted system.
	Bugs []faults.Bug
	// BigMemory boots the large-physical-map layout (boot-layout bug
	// class); otherwise the default layout.
	BigMemory bool
	// NoTLB boots the systems without the software TLB (every
	// translation is a full walk) — the before leg of the TLB
	// benchmark, and an ablation for the stale-TLB checks.
	NoTLB bool
	// NoSnapshot boots a fresh system for every execution instead of
	// rewinding a long-lived one — the before leg of the snapshot
	// benchmark, mirroring NoTLB.
	NoSnapshot bool
	// NrCPUs is the virtual-CPU count of every booted system (default
	// 4, mirroring hyp.Config). It is also the vCPU count of the
	// deterministic scheduler when SchedFuzz is on, and is reported in
	// bench output — the real value, not a hard-coded 1.
	NrCPUs int
	// SchedFuzz re-executes every clean run's trace a second time
	// split across NrCPUs vCPU streams under a seeded deterministic
	// schedule (internal/sched), turning the serial campaign into a
	// concurrency campaign: oracle alarms that only fire under some
	// interleaving become findings carrying the (trace, schedule) pair
	// that reproduces them.
	SchedFuzz bool
	// ConformanceEvery cross-checks every Nth restored execution per
	// worker against a freshly-booted-and-replayed reference system
	// (default 256; negative disables). Tests set 1 for exhaustive
	// checking. A divergence aborts the campaign with an error.
	ConformanceEvery int
	// Duration bounds wall time; zero means no deadline.
	Duration time.Duration
	// MaxExecs bounds total executions; zero means unlimited.
	MaxExecs int64
	// MaxFindings stops the campaign after this many findings; zero
	// means keep going.
	MaxFindings int
	// ShrinkReplays budgets replays per finding's minimization
	// (default 400).
	ShrinkReplays int
	// CorpusCap bounds the seed corpus (default 128).
	CorpusCap int
	// Logf, when set, receives progress lines (findings, stop cause).
	Logf func(format string, args ...any)
	// OnFinding, when set, is called once per recorded finding, after
	// minimization, from the finding worker's goroutine. The fleet
	// worker uses it to stream findings to the coordinator; keep it
	// cheap (enqueue, don't block) — it runs on the exec path.
	OnFinding func(Finding)
	// OnCorpus, when set, is called when a run's trace enters the
	// corpus through local novelty (not for entries injected with
	// InjectSeed, so fleet corpus sync cannot echo). Same cheapness
	// contract as OnFinding.
	OnCorpus func(tr *randtest.Trace, score float64)
	// Tracer, when set, receives execution spans: worker w records on
	// lane w, so the tracer must have at least Workers lanes. Each
	// worker's system (hypervisor, locks, TLB, oracle) is wired to the
	// same tracer/lane, putting an exec's full cost breakdown on one
	// timeline.
	Tracer *trace.Tracer
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.StepsPerRun <= 0 {
		c.StepsPerRun = 400
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ShrinkReplays <= 0 {
		c.ShrinkReplays = 400
	}
	if c.CorpusCap <= 0 {
		c.CorpusCap = 128
	}
	if c.ConformanceEvery == 0 {
		c.ConformanceEvery = 256
	}
	if c.NrCPUs <= 0 {
		c.NrCPUs = 4
	}
}

// Finding is one oracle failure the campaign turned into a
// minimized reproduction.
type Finding struct {
	// Worker and Exec locate the discovery (global execution index).
	Worker int
	Exec   int64
	// Seed is the generator seed of the failing run; FromCorpus marks
	// runs that extended a corpus parent (whose ops are part of Trace).
	Seed       int64
	FromCorpus bool
	// Failures are the oracle alarms of the original run, each
	// carrying the flight-recorder dump of its failing CPU.
	Failures []ghost.Failure
	// Trace is the full recorded reproduction; Min is the shrunk
	// near-1-minimal version and MinFailures the alarms it raises.
	Trace       *randtest.Trace
	Min         *randtest.Trace
	MinFailures []ghost.Failure
	// ShrinkReplays counts replays the minimization spent;
	// Reproducible reports whether the initial re-execution of Trace
	// failed again (shrinking only proceeds when it does).
	ShrinkReplays int
	Reproducible  bool
	// Sched is non-nil for schedule-fuzzing findings: the recorded
	// schedule of the failing scheduled replay, derived from SchedSeed.
	// MinSched is the minimized schedule prefix that still reproduces
	// together with Min (the rest of the replay drains
	// deterministically); SchedErr carries a scheduler-level error
	// (captured stream panic, deadlock abandonment) when the finding
	// is not an oracle alarm.
	Sched     *sched.Schedule
	MinSched  *sched.Schedule
	SchedSeed int64
	SchedErr  string
}

// Report summarises a campaign.
type Report struct {
	Execs       int64
	Elapsed     time.Duration
	ExecsPerSec float64
	NovelRuns   int64
	CorpusSize  int
	Findings    []Finding
	Coverage    coverage.Report
	// Snapshot totals: restores performed, corpus-parent forks that
	// skipped replay, frames rewritten across all restores, and full
	// replays taken because a parent carried no snapshot.
	SnapshotRestores    int64
	SnapshotParentHits  int64
	SnapshotDirtyFrames int64
	SnapshotFallbacks   int64
}

// workerState is one worker's liveness record, read lock-free by
// Status while the worker runs.
type workerState struct {
	execs      atomic.Int64
	lastActive atomic.Int64 // unix nanos of the last exec start

	// Snapshot accounting: restores performed, corpus-parent forks
	// that skipped replay, frames rewritten by restores, and full
	// replays taken because a parent carried no snapshot.
	snapRestores    atomic.Int64
	snapParentHits  atomic.Int64
	snapDirtyFrames atomic.Int64
	snapFallbacks   atomic.Int64
}

// Engine is a running campaign. Build one with Start, observe it with
// Status while it runs, and collect the final Report with Wait; Run
// bundles Start+Wait for callers with no introspection needs.
type Engine struct {
	cfg      Config
	tracer   *trace.Tracer
	agg      *coverage.Aggregator
	corpus   *corpus
	deadline time.Time
	start    time.Time

	execs atomic.Int64
	novel atomic.Int64
	stop  atomic.Bool

	workers []workerState
	wg      sync.WaitGroup
	done    chan struct{}

	mu       sync.Mutex
	findings []Finding
	bootErr  error
	// baseImg is the campaign-wide shared base memory image (see
	// snapshot.go); probe is the boot-check system recycled as worker
	// 0's long-lived system when snapshots are enabled.
	baseImg *arch.MemImage
	probe   *worksys
}

// WorkerStatus is one worker's live health snapshot.
type WorkerStatus struct {
	Worker     int       `json:"worker"`
	Execs      int64     `json:"execs"`
	LastActive time.Time `json:"last_active"`
	// Healthy reports recent progress: the worker started an exec
	// within the health window (or the campaign just started).
	Healthy bool `json:"healthy"`
	// Snapshot hit/dirty accounting for this worker: restores
	// performed, corpus-parent forks that skipped the replay phase,
	// frames rewritten, and full replays because a parent carried no
	// snapshot.
	SnapshotRestores    int64 `json:"snapshot_restores"`
	SnapshotParentHits  int64 `json:"snapshot_parent_hits"`
	SnapshotDirtyFrames int64 `json:"snapshot_dirty_frames"`
	SnapshotFallbacks   int64 `json:"snapshot_fallback_full"`
}

// Status is a live campaign snapshot, safe to take from any goroutine
// while the campaign runs — the /campaign endpoint's payload.
type Status struct {
	Execs       int64           `json:"execs"`
	Elapsed     time.Duration   `json:"elapsed_ns"`
	ExecsPerSec float64         `json:"execs_per_sec"`
	NovelRuns   int64           `json:"novel_runs"`
	CorpusSize  int             `json:"corpus_size"`
	Findings    int             `json:"findings"`
	Coverage    coverage.Report `json:"coverage"`
	Workers     []WorkerStatus  `json:"workers"`
	// Campaign-wide snapshot totals (sums of the per-worker stats).
	SnapshotRestores    int64 `json:"snapshot_restores"`
	SnapshotDirtyFrames int64 `json:"snapshot_dirty_frames"`
	SnapshotFallbacks   int64 `json:"snapshot_fallback_full"`
}

// healthWindow is how long a worker may go without starting an exec
// before Status flags it unhealthy. Generously above any legitimate
// exec time (boot + steps + shrinking stays well under a second); a
// worker quiet for this long is wedged or starved.
const healthWindow = 5 * time.Second

// Run executes a campaign to completion (deadline, exec budget, or
// finding budget) and reports.
func Run(cfg Config) (*Report, error) {
	e, err := Start(cfg)
	if err != nil {
		return nil, err
	}
	return e.Wait()
}

// Start validates the configuration, boots a probe system, and launches
// the workers. The campaign runs until a stop condition trips; Wait
// collects the report.
func Start(cfg Config) (*Engine, error) {
	cfg.fill()
	e := &Engine{
		cfg:     cfg,
		tracer:  cfg.Tracer,
		agg:     coverage.NewAggregator(),
		corpus:  newCorpus(cfg.CorpusCap),
		workers: make([]workerState, cfg.Workers),
		done:    make(chan struct{}),
	}

	// Fail fast on unbootable configurations rather than from inside
	// every worker. With snapshots enabled the boot-check system is
	// not thrown away: it becomes worker 0's long-lived base system,
	// and its memory image is the one every other worker adopts.
	if cfg.NoSnapshot {
		if _, _, _, err := e.newSystem(0); err != nil {
			return nil, fmt.Errorf("campaign boot check: %w", err)
		}
	} else {
		ws, err := e.newWorksys(0)
		if err != nil {
			return nil, fmt.Errorf("campaign boot check: %w", err)
		}
		e.probe = ws
	}
	if cfg.Duration <= 0 && cfg.MaxExecs <= 0 && cfg.MaxFindings <= 0 {
		return nil, fmt.Errorf("campaign needs a stop condition (Duration, MaxExecs, or MaxFindings)")
	}
	if cfg.Duration > 0 {
		e.deadline = time.Now().Add(cfg.Duration)
	}

	e.start = time.Now()
	meter := telemetry.NewMeter(telExecRate)
	meter.Tick(e.start, telExecs.Value())
	go func() {
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-e.done:
				return
			case now := <-tick.C:
				meter.Tick(now, telExecs.Value())
			}
		}
	}()

	for w := 0; w < cfg.Workers; w++ {
		e.workers[w].lastActive.Store(e.start.UnixNano())
		e.wg.Add(1)
		go func(w int) {
			defer e.wg.Done()
			e.worker(w)
		}(w)
	}
	return e, nil
}

// Wait blocks until the campaign stops and assembles the final report.
func (e *Engine) Wait() (*Report, error) {
	e.wg.Wait()
	close(e.done)

	if e.bootErr != nil {
		return nil, e.bootErr
	}
	elapsed := time.Since(e.start)
	e.mu.Lock()
	findings := e.findings
	e.mu.Unlock()
	rep := &Report{
		Execs:      e.execs.Load(),
		Elapsed:    elapsed,
		NovelRuns:  e.novel.Load(),
		CorpusSize: e.corpus.size(),
		Findings:   findings,
		Coverage:   e.agg.Report(),
	}
	for w := range e.workers {
		rep.SnapshotRestores += e.workers[w].snapRestores.Load()
		rep.SnapshotParentHits += e.workers[w].snapParentHits.Load()
		rep.SnapshotDirtyFrames += e.workers[w].snapDirtyFrames.Load()
		rep.SnapshotFallbacks += e.workers[w].snapFallbacks.Load()
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.ExecsPerSec = float64(rep.Execs) / s
	}
	return rep, nil
}

// Stop requests an early campaign stop: workers finish their current
// execution and exit their loops. Wait still collects the report. The
// fleet worker calls this on shard reassignment and shutdown.
func (e *Engine) Stop() {
	e.stop.Store(true)
}

// CoverageDelta exports the campaign's merged coverage aggregate in
// wire form — the cumulative per-worker payload of fleet reports.
func (e *Engine) CoverageDelta() coverage.Delta {
	return e.agg.Export()
}

// InjectSeed adds a foreign trace (a peer worker's novel corpus entry,
// arrived via fleet corpus sync) to the corpus. It carries no end-state
// snapshot, so the first local extension replays it and captures one;
// OnCorpus deliberately does not fire for injected entries.
func (e *Engine) InjectSeed(tr *randtest.Trace, score float64) {
	if tr.Len() == 0 || score <= 0 {
		return
	}
	e.corpus.add(tr, score, nil)
}

// recordFinding appends a finding (both the serial and the
// schedule-fuzz paths land here), honours MaxFindings, and notifies
// the OnFinding hook outside the engine lock.
func (e *Engine) recordFinding(f Finding) {
	e.mu.Lock()
	e.findings = append(e.findings, f)
	hitCap := e.cfg.MaxFindings > 0 && len(e.findings) >= e.cfg.MaxFindings
	e.mu.Unlock()
	if hitCap {
		e.stop.Store(true)
	}
	if e.cfg.OnFinding != nil {
		e.cfg.OnFinding(f)
	}
}

// Status snapshots the running campaign. Counters are atomics and the
// coverage aggregate locks internally, so the snapshot is cheap enough
// to serve on every poll.
func (e *Engine) Status() Status {
	now := time.Now()
	elapsed := now.Sub(e.start)
	s := Status{
		Execs:      e.execs.Load(),
		Elapsed:    elapsed,
		NovelRuns:  e.novel.Load(),
		CorpusSize: e.corpus.size(),
		Coverage:   e.agg.Report(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		s.ExecsPerSec = float64(s.Execs) / sec
	}
	e.mu.Lock()
	s.Findings = len(e.findings)
	e.mu.Unlock()
	for w := range e.workers {
		last := time.Unix(0, e.workers[w].lastActive.Load())
		ws := WorkerStatus{
			Worker:              w,
			Execs:               e.workers[w].execs.Load(),
			LastActive:          last,
			Healthy:             now.Sub(last) < healthWindow,
			SnapshotRestores:    e.workers[w].snapRestores.Load(),
			SnapshotParentHits:  e.workers[w].snapParentHits.Load(),
			SnapshotDirtyFrames: e.workers[w].snapDirtyFrames.Load(),
			SnapshotFallbacks:   e.workers[w].snapFallbacks.Load(),
		}
		s.Workers = append(s.Workers, ws)
		s.SnapshotRestores += ws.SnapshotRestores
		s.SnapshotDirtyFrames += ws.SnapshotDirtyFrames
		s.SnapshotFallbacks += ws.SnapshotFallbacks
	}
	return s
}

// newSystem boots one private system instance with the campaign's
// instrumentation stack: oracle attached first (it checks the boot
// layout), coverage wrapped over it. The system records spans on the
// booting worker's lane.
func (e *Engine) newSystem(w int) (*proxy.Driver, *ghost.Recorder, *coverage.Tracker, error) {
	hcfg := hyp.Config{
		Inj: faults.NewInjector(e.cfg.Bugs...), NoTLB: e.cfg.NoTLB,
		NrCPUs: e.cfg.NrCPUs,
		Tracer: e.tracer, TraceLane: w,
	}
	if e.cfg.BigMemory {
		hcfg.Layout = bigMemoryLayout
	}
	hv, err := hyp.New(hcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	rec := ghost.Attach(hv)
	cov := coverage.Wrap(hv, rec)
	hv.SetInstrumentation(cov)
	return proxy.New(hv), rec, cov, nil
}

// bootSystem is newSystem under the exec.boot span — the phase that
// dominates private-system campaigns (ROADMAP item 1's target).
func (e *Engine) bootSystem(w int) (*proxy.Driver, *ghost.Recorder, *coverage.Tracker, error) {
	sp := e.tracer.Begin(w, spanExecBoot)
	defer sp.End()
	return e.newSystem(w)
}

// factory adapts system acquisition for the shrinker (which has no
// use for the coverage tracker). Shrink replays run on the finding
// worker's lane; on a snapshot worker each "boot" is a rewind of the
// worker's own system to base — the shrinker's replays-per-finding
// ride the same restore path as everything else.
func (e *Engine) factory(w int, ws *worksys) Factory {
	if ws != nil {
		return func() (*proxy.Driver, *ghost.Recorder, error) {
			e.restoreTo(w, ws, nil)
			return ws.d, ws.rec, nil
		}
	}
	return func() (*proxy.Driver, *ghost.Recorder, error) {
		d, rec, _, err := e.newSystem(w)
		return d, rec, err
	}
}

func (e *Engine) stopped() bool {
	if e.stop.Load() {
		return true
	}
	if !e.deadline.IsZero() && !time.Now().Before(e.deadline) {
		return true
	}
	if e.cfg.MaxExecs > 0 && e.execs.Load() >= e.cfg.MaxExecs {
		return true
	}
	return false
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// input is one execution's recipe: a generator seed, plus optionally
// a corpus parent whose trace the execution continues from — via the
// parent's end-state snapshot when it carries one, or by replaying
// the parent's ops before generation starts (the fallback, and the
// only path when snapshots are disabled).
type input struct {
	seed   int64
	steps  int
	parent *randtest.Trace
	snap   *parentSnap
}

// worker is one shard: a private rng derived from (campaign seed,
// worker index) drives its input choices, so any worker's whole
// sequence re-derives from those two numbers alone. With snapshots
// enabled the worker owns one long-lived system rewound per exec;
// worker 0 inherits the Start-time boot-check system.
func (e *Engine) worker(w int) {
	var ws *worksys
	if !e.cfg.NoSnapshot {
		if w == 0 && e.probe != nil {
			ws = e.probe
		} else {
			var err error
			if ws, err = e.newWorksys(w); err != nil {
				e.fatal(err)
				return
			}
		}
	}
	rng := rand.New(rand.NewSource(randtest.WorkerSeed(e.cfg.Seed, w)))
	for !e.stopped() {
		in := input{seed: rng.Int63(), steps: e.cfg.StepsPerRun}
		// Half the runs extend a corpus seed once the corpus has
		// content; the pick is score-weighted toward rare coverage.
		if rng.Intn(2) == 0 {
			if parent, snap, ok := e.corpus.pick(rng); ok {
				in.parent, in.snap = parent, snap
			}
		}
		e.runOne(w, in, ws)
	}
}

// runOne executes one input, under the exec span with one child span
// per phase — the attribution benchreport -profile measures. With a
// worksys the system is rewound (forking straight into the parent's
// end state when its snapshot is available); without one it is a
// fresh boot plus a full parent replay.
func (e *Engine) runOne(w int, in input, ws *worksys) {
	sp := e.tracer.Begin(w, spanExec)
	defer sp.End()
	e.workers[w].execs.Add(1)
	e.workers[w].lastActive.Store(time.Now().UnixNano())

	var (
		d   *proxy.Driver
		rec *ghost.Recorder
		cov *coverage.Tracker
	)
	forked := false
	if ws != nil {
		d, rec = ws.d, ws.rec
		e.restoreTo(w, ws, in.snap)
		forked = in.snap != nil
		cov = wrapCoverage(d, rec)
	} else {
		var err error
		if d, rec, cov, err = e.bootSystem(w); err != nil {
			e.fatal(err)
			return
		}
	}
	exec := e.execs.Add(1)
	telExecs.Inc()

	tr := &randtest.Trace{}
	if in.parent != nil {
		tr.Ops = append(tr.Ops, in.parent.Ops...)
		if !forked {
			// No end-state snapshot to fork from: replay the parent.
			e.replayParent(w, d, in.parent)
			if ws != nil {
				e.workers[w].snapFallbacks.Add(1)
				telSnapFallback.Inc()
				// The state just rebuilt is exactly the parent's end
				// state — capture it once so later forks of this entry
				// (fleet-injected seeds arrive snapshot-less) restore
				// instead of replaying.
				e.corpus.backfill(in.parent, e.captureParent(w, ws))
			}
		}
	}

	// Probabilistic ground-truth check of the fork machinery: diff the
	// restored state against a fresh boot with the same prefix
	// replayed. The prefix covers the snapshot-less fallback too — the
	// parent was just replayed above, so the reference must replay it
	// as well.
	if ws != nil && e.cfg.ConformanceEvery > 0 &&
		e.workers[w].execs.Load()%int64(e.cfg.ConformanceEvery) == 0 {
		var prefix []randtest.Op
		if in.parent != nil {
			prefix = in.parent.Ops
		}
		e.checkConformance(w, ws, prefix)
	}

	// Boot-layout defects alarm the instant the oracle attaches; the
	// finding then needs no hypercall traffic at all.
	if len(rec.Failures()) == 0 {
		tr = e.runSteps(w, d, rec, in, tr)
	}

	e.absorbCoverage(w, cov, tr, ws)

	failures := rec.Failures()
	if len(failures) == 0 {
		// Clean serial run: optionally re-execute the same trace split
		// across vCPU streams under a seeded deterministic schedule.
		// This happens after coverage absorption so corpus parent
		// snapshots always hold the *serial* end state the conformance
		// differ and snapshot forks expect.
		if e.cfg.SchedFuzz && tr.Len() > 0 {
			e.schedFuzzOne(w, in, tr, ws, exec)
		}
		return
	}
	telFindings.Inc()
	min, minFailures, replays, ok := e.shrinkOne(w, tr, ws)
	f := Finding{
		Worker: w, Exec: exec,
		Seed: in.seed, FromCorpus: in.parent != nil,
		Failures: failures,
		Trace:    tr, Min: min, MinFailures: minFailures,
		ShrinkReplays: replays, Reproducible: ok,
	}
	e.logf("finding: worker=%d exec=%d seed=%d alarms=%d trace=%d ops -> min=%d ops (%d replays)",
		w, exec, in.seed, len(failures), tr.Len(), min.Len(), replays)
	e.recordFinding(f)
}

// replayParent re-executes the corpus parent's trace (the extend
// mutation's warm-up) under the exec.replay span.
func (e *Engine) replayParent(w int, d *proxy.Driver, parent *randtest.Trace) {
	sp := e.tracer.Begin(w, spanExecReplay)
	defer sp.End()
	randtest.Replay(d, parent)
}

// runSteps runs the generator under the exec.run span and returns the
// recorded trace.
func (e *Engine) runSteps(w int, d *proxy.Driver, rec *ghost.Recorder, in input, tr *randtest.Trace) *randtest.Trace {
	sp := e.tracer.Begin(w, spanExecRun)
	defer sp.End()
	t := randtest.NewFromSource(d, rec, rand.NewSource(in.seed), !e.cfg.Unguided)
	t.Trace = tr
	t.Run(in.steps)
	return t.Trace
}

// absorbCoverage folds the run's coverage into the aggregate and seeds
// the corpus on novelty, under the exec.corpus span. On a snapshot
// worker the new corpus entry also gets a snapshot of the system's
// current state — exactly the trace's end state, captured for free
// since the worker is still sitting in it — so future extenders fork
// instead of replaying.
func (e *Engine) absorbCoverage(w int, cov *coverage.Tracker, tr *randtest.Trace, ws *worksys) {
	sp := e.tracer.Begin(w, spanExecCorpus)
	defer sp.End()
	if novelty := e.agg.Absorb(cov); novelty > 0 {
		e.novel.Add(1)
		telNovel.Inc()
		var snap *parentSnap
		if ws != nil {
			snap = e.captureParent(w, ws)
		}
		score := float64(novelty) + e.agg.Rarity(cov)
		e.corpus.add(tr, score, snap)
		if e.cfg.OnCorpus != nil && tr.Len() > 0 {
			e.cfg.OnCorpus(tr, score)
		}
	}
}

// shrinkOne minimizes a failing trace under the exec.shrink span.
func (e *Engine) shrinkOne(w int, tr *randtest.Trace, ws *worksys) (*randtest.Trace, []ghost.Failure, int, bool) {
	sp := e.tracer.Begin(w, spanExecShrink)
	defer sp.End()
	return Shrink(e.factory(w, ws), tr, e.cfg.ShrinkReplays)
}
