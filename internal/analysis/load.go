package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader builds typed syntax for ghostlint using nothing but the
// standard library: go/parser for syntax, go/types for checking, and
// the "source" importer for standard-library dependencies.
// Module-internal imports (anything under the module path) are
// recursively type-checked from source and cached, so analyzers see
// real types for spinlock.Lock, arch.PTE, hyp.Hypervisor and friends
// across package boundaries. If an import cannot be resolved the
// loader degrades to an empty stub package and records a warning:
// analyzers then fall back to name-based heuristics rather than
// failing the whole run.

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("ghostspec/internal/hyp")
	Dir   string // absolute directory
	Name  string // package name
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects (non-fatal) type-checking diagnostics. A
	// stubbed import typically produces a handful; they are reported
	// only in verbose mode.
	TypeErrors []error

	supp *suppressionIndex
}

// Loader loads and caches packages of a single module.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModRoot string

	// Warnings records degraded-mode events (stubbed imports, files
	// skipped for parse errors).
	Warnings []string

	std     types.Importer
	pkgs    map[string]*Package       // module-internal, by import path
	ext     map[string]*types.Package // non-module, incl. stubs
	loading map[string]bool           // cycle guard
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModRoot: root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		ext:     make(map[string]*types.Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks upward from dir to the directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Packages returns every module-internal package loaded so far
// (requested directly or pulled in as a dependency), sorted by path.
func (ld *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(ld.pkgs))
	for _, p := range ld.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// LoadDir loads and type-checks the package in dir (non-test files
// only), reusing the cache.
func (ld *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return ld.loadPath(ld.importPathFor(abs), abs)
}

// importPathFor maps a directory under the module root to its import
// path. Directories outside the module map to a synthetic rooted path
// so they can still be cached.
func (ld *Loader) importPathFor(absDir string) string {
	rel, err := filepath.Rel(ld.ModRoot, absDir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "dir:" + absDir
	}
	if rel == "." {
		return ld.ModPath
	}
	return ld.ModPath + "/" + filepath.ToSlash(rel)
}

// dirForImport maps a module-internal import path back to a
// directory, or "" if the path is not under this module.
func (ld *Loader) dirForImport(path string) string {
	if path == ld.ModPath {
		return ld.ModRoot
	}
	if rest, ok := strings.CutPrefix(path, ld.ModPath+"/"); ok {
		return filepath.Join(ld.ModRoot, filepath.FromSlash(rest))
	}
	return ""
}

func (ld *Loader) loadPath(path, dir string) (*Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	files, err := ld.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}

	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Name:  files[0].Name.Name,
		Files: files,
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: ld,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check never returns a usable error here: diagnostics go through
	// conf.Error and we keep whatever partial information survives.
	pkg.Types, _ = conf.Check(path, ld.Fset, files, pkg.Info)
	pkg.supp = buildSuppressionIndex(ld.Fset, files)
	ld.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test .go files of dir.
func (ld *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		fn := filepath.Join(dir, n)
		f, err := parser.ParseFile(ld.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", fn, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// Import implements types.Importer: module-internal packages are
// loaded from source; everything else goes to the stdlib source
// importer, with an empty stub on failure.
func (ld *Loader) Import(path string) (*types.Package, error) {
	if dir := ld.dirForImport(path); dir != "" {
		p, err := ld.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("type-checking %s failed", path)
		}
		return p.Types, nil
	}
	if tp, ok := ld.ext[path]; ok {
		return tp, nil
	}
	tp, err := ld.std.Import(path)
	if err != nil {
		// Degrade: a complete-but-empty stub keeps the checker going;
		// every selection into it becomes an invalid type, which the
		// analyzers treat as "unknown" rather than an error.
		ld.Warnings = append(ld.Warnings,
			fmt.Sprintf("import %q unresolved, using stub: %v", path, err))
		name := path[strings.LastIndex(path, "/")+1:]
		tp = types.NewPackage(path, name)
		tp.MarkComplete()
	}
	ld.ext[path] = tp
	return tp, nil
}

// ModuleDirs expands a ./...-style pattern rooted at modRoot into the
// list of package directories, skipping VCS metadata, testdata trees
// (loadable explicitly, not part of repo-wide runs), docs and hidden
// directories.
func ModuleDirs(modRoot string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != modRoot &&
			(strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "docs" ||
				name == "node_modules") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// hasGoFiles reports whether dir directly contains at least one
// buildable non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") &&
			!strings.HasSuffix(n, "_test.go") &&
			!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
			return true
		}
	}
	return false
}
