package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// BBMCheck is the static twin of the ghost oracle's FailStaleTLB
// check: it enforces Armv8's break-before-make discipline over the
// page-table mutation code, path-sensitively within each function.
// The subject is every call to (*arch.Memory).WritePTE, the one
// operation that makes a descriptor architecturally visible. Entries
// are keyed by the (table, index) argument expressions, and each path
// tracks the last store per entry:
//
//	B1  after a zero store (break), the next valid store to the same
//	    entry requires an intervening TLBI emission — otherwise a
//	    stale translation for the old mapping survives in the TLB
//	    while the new one is live in the table;
//	B2  a valid store over an entry that already holds a valid store
//	    on this path is a valid→valid overwrite — forbidden outright,
//	    TLBI or not: the walk may cache either descriptor.
//
// A break with no make (entry left invalid at path end) is legal —
// that is an unmap, and the empty-table reclaim path relies on it.
// Branches fork the per-entry state; at the join an entry survives
// only if both sides agree, except that a pending (un-invalidated)
// break on either side survives the join — losing it would hide a
// missing TLBI behind any branch. Loop bodies are analyzed once from
// the loop-entry state, in isolation: cross-iteration sequences are
// out of scope (the runtime oracle covers them), which also keeps the
// per-iteration break→TLBI→make pattern of mutateRange clean.
//
// internal/arch is exempt: it implements the memory model and the TLB
// itself, and its WritePTE calls (snapshot restore, test scaffolding)
// sit below the architecture being modelled.
type BBMCheck struct{}

func (*BBMCheck) Name() string { return "bbmcheck" }

func (bc *BBMCheck) Run(u *Universe, pkg *Package) []Finding {
	if strings.HasSuffix(pkg.Path, "internal/arch") {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &bbmAnalysis{u: u, pkg: pkg, out: &out, fname: fd.Name.Name}
			_ = a.block(fd.Body.List, bbmState{})
		}
	}
	return out
}

// bbmWrite is the last store recorded for one entry on a path.
type bbmWrite struct {
	zero bool // the store was the invalid (zero) descriptor
	tlbi bool // a TLBI was emitted since the store
}

// bbmState maps entry key → last store. The key is the textual
// (table, index) argument pair; aliasing between different spellings
// of the same entry is invisible, as documented.
type bbmState map[string]bbmWrite

func (s bbmState) clone() bbmState {
	c := make(bbmState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge joins two branch states: agreement survives, a pending break
// on either side survives (conservatively keeping B1 armed), anything
// else is dropped to unknown.
func mergeBBM(a, b bbmState) bbmState {
	out := make(bbmState)
	for k, av := range a {
		if bv, ok := b[k]; ok && av == bv {
			out[k] = av
			continue
		}
		if av.zero && !av.tlbi {
			out[k] = av
		}
	}
	for k, bv := range b {
		if _, done := out[k]; done {
			continue
		}
		if _, inA := a[k]; inA {
			continue // disagreement already resolved above
		}
		if bv.zero && !bv.tlbi {
			out[k] = bv
		}
	}
	return out
}

type bbmAnalysis struct {
	u     *Universe
	pkg   *Package
	out   *[]Finding
	fname string
}

func (a *bbmAnalysis) report(n ast.Node, format string, args ...any) {
	*a.out = append(*a.out, Finding{
		Pos:      a.u.Fset.Position(n.Pos()),
		Analyzer: "bbmcheck",
		Message:  fmt.Sprintf(format, args...),
	})
}

// block walks a statement list, threading the per-entry state. The
// return value reports whether the path definitely exits (return,
// break/continue, panic) — exited branches are excluded from joins.
func (a *bbmAnalysis) block(list []ast.Stmt, st bbmState) bool {
	for _, s := range list {
		if a.stmt(s, st) {
			return true
		}
	}
	return false
}

func (a *bbmAnalysis) stmt(s ast.Stmt, st bbmState) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return a.block(s.List, st)
	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.scan(r, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		a.scan(s.Cond, st)
		thenSt := st.clone()
		thenExited := a.block(s.Body.List, thenSt)
		elseSt := st.clone()
		elseExited := false
		if s.Else != nil {
			elseExited = a.stmt(s.Else, elseSt)
		}
		var merged bbmState
		switch {
		case thenExited && elseExited:
			return true
		case thenExited:
			merged = elseSt
		case elseExited:
			merged = thenSt
		default:
			merged = mergeBBM(thenSt, elseSt)
		}
		replaceBBM(st, merged)
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		a.scan(s.Cond, st)
		body := st.clone()
		if !a.block(s.Body.List, body) && s.Post != nil {
			a.stmt(s.Post, body)
		}
		// Continue with the entry state: zero iterations are possible
		// and cross-iteration sequences are out of scope.
	case *ast.RangeStmt:
		a.scan(s.X, st)
		body := st.clone()
		_ = a.block(s.Body.List, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		a.caseBranches(s, st)
	case *ast.DeferStmt:
		// A deferred TLBI runs at return, after any make on the path:
		// it does not satisfy the break→TLBI→make order, so only the
		// arguments are scanned.
		for _, arg := range s.Call.Args {
			a.scan(arg, st)
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			a.scan(arg, st)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			_ = a.block(lit.Body.List, bbmState{})
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isBuiltin(a.pkg, call, "panic") {
			a.scan(s.X, st)
			return true
		}
		a.scan(s.X, st)
	default:
		// Straight-line statements: apply nested writes/TLBIs in
		// source order.
		a.scan(s, st)
	}
	return false
}

// replaceBBM overwrites dst in place with src.
func replaceBBM(dst, src bbmState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// caseBranches forks each case/comm clause from the shared entry
// state and rejoins the non-exiting ones.
func (a *bbmAnalysis) caseBranches(s ast.Stmt, st bbmState) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		a.scan(s.Tag, st)
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	hasDefault := false
	var branches []bbmState
	for _, cs := range body.List {
		branch := st.clone()
		exited := false
		switch cc := cs.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				a.scan(e, st)
			}
			exited = a.block(cc.Body, branch)
		case *ast.CommClause:
			if cc.Comm != nil {
				a.stmt(cc.Comm, branch)
			}
			exited = a.block(cc.Body, branch)
		}
		if !exited {
			branches = append(branches, branch)
		}
	}
	if !hasDefault {
		branches = append(branches, st.clone()) // the no-case-taken path
	}
	if len(branches) == 0 {
		replaceBBM(st, bbmState{})
		return
	}
	merged := branches[0]
	for _, b := range branches[1:] {
		merged = mergeBBM(merged, b)
	}
	replaceBBM(st, merged)
}

// scan applies every WritePTE / TLBI event nested in a statement or
// expression, in source order (which matches evaluation order for the
// straight-line shapes page-table code uses).
func (a *bbmAnalysis) scan(n ast.Node, st bbmState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if lit, ok := c.(*ast.FuncLit); ok {
			// A literal runs later (or elsewhere): analyze its body in
			// isolation.
			a.block(lit.Body.List, bbmState{})
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if table, idx, val, ok := a.writePTECall(call); ok {
			a.applyWrite(call, table, idx, val, st)
			return true
		}
		if isTLBIEmission(a.pkg, call) {
			for k, w := range st {
				if w.zero && !w.tlbi {
					w.tlbi = true
					st[k] = w
				}
			}
		}
		return true
	})
}

// writePTECall matches (*arch.Memory).WritePTE(table, idx, val).
func (a *bbmAnalysis) writePTECall(call *ast.CallExpr) (table, idx, val ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "WritePTE" || len(call.Args) != 3 {
		return nil, nil, nil, false
	}
	if t := exprType(a.pkg, sel.X); t != nil && !isNamed(t, "internal/arch", "Memory") {
		return nil, nil, nil, false
	}
	return call.Args[0], call.Args[1], call.Args[2], true
}

func (a *bbmAnalysis) applyWrite(call *ast.CallExpr, table, idx, val ast.Expr, st bbmState) {
	key := types.ExprString(table) + "|" + types.ExprString(idx)
	zero := isConstZero(a.pkg, val)
	prev, known := st[key]
	if !zero && known {
		switch {
		case prev.zero && !prev.tlbi:
			a.report(call,
				"%s: make after break with no TLBI: entry (%s)[%s] was stored invalid on this path and is re-made valid before any TLB invalidation — a stale translation survives (break-before-make, see FailStaleTLB)",
				a.fname, types.ExprString(table), types.ExprString(idx))
		case !prev.zero:
			a.report(call,
				"%s: valid→valid overwrite of entry (%s)[%s]: break it first (store zero, emit the TLBI) before installing the replacement descriptor",
				a.fname, types.ExprString(table), types.ExprString(idx))
		}
	}
	st[key] = bbmWrite{zero: zero}
}

// isConstZero reports whether the expression is the constant zero
// descriptor.
func isConstZero(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Uint64Val(tv.Value)
	return exact && v == 0
}

// isTLBIEmission matches the calls that emit (or model) a TLB
// invalidation: the pgtable notification path (notifyTLBI and the
// tlbi callback) and the software TLB's invalidation entry points.
func isTLBIEmission(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if strings.HasPrefix(name, "Set") {
		return false // callback registration, not emission
	}
	if strings.Contains(strings.ToLower(name), "tlbi") {
		// Exclude closure factories (guestTLBI returns the emitter).
		if t := exprType(pkg, call); t != nil {
			if _, isFunc := t.Underlying().(*types.Signature); isFunc {
				return false
			}
		}
		return true
	}
	switch name {
	case "InvalidateRange", "InvalidateIPA", "InvalidateVMID", "InvalidateStale", "InvalidateAll":
		t := exprType(pkg, sel.X)
		return t == nil || isNamed(t, "internal/arch", "TLB")
	}
	return false
}
