package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is ghostlint's model of the hypervisor's locks: which
// expressions denote which lock-discipline component, and the global
// rank table. It is name-based with type confirmation — the lock
// fields and helper methods of internal/hyp are a closed, stable set,
// and naming them here keeps the analyzers free of whole-program
// alias analysis. An unrecognized *spinlock.Lock expression still
// gets pairing checks under a per-expression pseudo-component; only
// rank checking needs the name.

// LockRanks is the global acquisition order: a lock may only be
// acquired while every held ranked lock has a strictly lower rank.
// The order is the one every hypercall path already follows: the VM
// table before a guest stage 2, a guest stage 2 before the host
// stage 2, the host stage 2 before the hypervisor's own stage 1.
var LockRanks = map[string]int{
	"vms":   1,
	"guest": 2,
	"host":  3,
	"hyp":   4,
}

// RankOrder renders the rank table for messages.
const RankOrder = "vms < guest < host < hyp"

// lockFieldComponents maps spinlock-typed field names to components.
// "Lock" is the per-VM guest stage 2 lock (hyp.VM.Lock).
var lockFieldComponents = map[string]string{
	"hostLock": "host",
	"hypLock":  "hyp",
	"vmsLock":  "vms",
	"Lock":     "guest",
}

// lockMethodComponents maps lock-returning accessor methods to
// components (hv.VMTableLock().Lock()).
var lockMethodComponents = map[string]string{
	"VMTableLock": "vms",
}

// acquireHelpers / releaseHelpers are the Hypervisor methods that
// wrap lock operations together with the ghost instrumentation hooks.
var acquireHelpers = map[string]string{
	"lockHost":  "host",
	"lockHyp":   "hyp",
	"lockVMs":   "vms",
	"lockGuest": "guest",
}

var releaseHelpers = map[string]string{
	"unlockHost":  "host",
	"unlockHyp":   "hyp",
	"unlockVMs":   "vms",
	"unlockGuest": "guest",
}

// tableOwnerFields resolves lock=owner annotations on pgtable.Table
// methods: which component lock protects the table reached through a
// given field.
var tableOwnerFields = map[string]string{
	"hostPGT": "host",
	"hypPGT":  "hyp",
	"PGT":     "guest",
}

// exemptLockFuncs are the functions that implement the locking
// primitives themselves; lockcheck does not flow-analyze their
// bodies.
func isLockPrimitive(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	_, acq := acquireHelpers[name]
	_, rel := releaseHelpers[name]
	return fd.Recv != nil && (acq || rel)
}

// lockOp classifies a call's effect on the held-lock state.
type lockOp int

const (
	opNone lockOp = iota
	opAcquire
	opRelease
)

// classifyLockCall decides whether call acquires or releases a
// spinlock and which component it belongs to. ranked reports whether
// the component is in the rank table; unrecognized locks get a
// pseudo-component keyed by the receiver expression so pairing is
// still enforced.
func classifyLockCall(pkg *Package, call *ast.CallExpr) (op lockOp, comp string, ranked bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "TryLock", "Unlock":
		if !isSpinlockExpr(pkg, sel.X) {
			return opNone, "", false
		}
		comp, ranked = lockComponent(sel.X)
		if name == "Unlock" {
			return opRelease, comp, ranked
		}
		return opAcquire, comp, ranked
	}
	if c, ok := acquireHelpers[name]; ok && isHypervisorExpr(pkg, sel.X) {
		return opAcquire, c, true
	}
	if c, ok := releaseHelpers[name]; ok && isHypervisorExpr(pkg, sel.X) {
		return opRelease, c, true
	}
	return opNone, "", false
}

// lockComponent maps the receiver of a Lock/Unlock call to a
// component key.
func lockComponent(recv ast.Expr) (string, bool) {
	switch e := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		if c, ok := lockFieldComponents[e.Sel.Name]; ok {
			return c, true
		}
	case *ast.CallExpr:
		if s, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if c, ok := lockMethodComponents[s.Sel.Name]; ok {
				return c, true
			}
		}
	}
	return "lock:" + types.ExprString(recv), false
}

// isSpinlockExpr reports whether expr has type spinlock.Lock (or
// pointer to it). When type information is unavailable (stubbed
// imports in degraded mode), it falls back to the known field-name
// table.
func isSpinlockExpr(pkg *Package, expr ast.Expr) bool {
	if t := exprType(pkg, expr); t != nil {
		return isNamed(t, "internal/spinlock", "Lock")
	}
	if s, ok := ast.Unparen(expr).(*ast.SelectorExpr); ok {
		_, known := lockFieldComponents[s.Sel.Name]
		return known
	}
	if c, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		if s, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
			_, known := lockMethodComponents[s.Sel.Name]
			return known
		}
	}
	return false
}

// isHypervisorExpr reports whether expr is a *hyp.Hypervisor; with no
// type info the helper-name match alone is accepted.
func isHypervisorExpr(pkg *Package, expr ast.Expr) bool {
	t := exprType(pkg, expr)
	if t == nil {
		return true
	}
	return isNamed(t, "internal/hyp", "Hypervisor")
}

// exprType returns the (valid) type of expr, or nil.
func exprType(pkg *Package, expr ast.Expr) types.Type {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.Invalid {
		return nil
	}
	return tv.Type
}

// isNamed reports whether t (after pointer indirection) is the named
// type pkgSuffix.name.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// ownerComponent resolves a lock=owner call site: the component
// owning the pgtable reached via the receiver expression, e.g.
// hv.hostPGT.Map(...) → host. Returns "" when the receiver is a
// local/parameter table, which lock=owner deliberately leaves
// unchecked (boot-path construction, parameterized walkers).
func ownerComponent(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if c, ok := tableOwnerFields[recv.Sel.Name]; ok {
			return c
		}
	}
	return ""
}
