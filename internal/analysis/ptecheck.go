package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PTECheck confines raw page-table descriptor layout knowledge to
// internal/arch. Outside that package, arch.PTE values are opaque:
// any bitwise operation on a PTE (or on a uint64 obtained from one),
// and any direct construction of a PTE from an integer, is flagged —
// the accessor layer (Kind, OutputAddr, OwnerID, MakeLeaf, MakeTable,
// MakeAnnotation, ...) is the only sanctioned way to touch descriptor
// bits. This is the spec-ownership story of the paper applied to data
// layout: if descriptor encodings leak into the walker or the ghost
// interpreter, the abstraction function and the implementation can
// drift apart silently.
type PTECheck struct{}

func (*PTECheck) Name() string { return "ptecheck" }

// bitOps are the operators that manipulate descriptor bits.
var bitOps = map[token.Token]bool{
	token.AND:            true,
	token.OR:             true,
	token.XOR:            true,
	token.AND_NOT:        true,
	token.SHL:            true,
	token.SHR:            true,
	token.AND_ASSIGN:     true,
	token.OR_ASSIGN:      true,
	token.XOR_ASSIGN:     true,
	token.AND_NOT_ASSIGN: true,
	token.SHL_ASSIGN:     true,
	token.SHR_ASSIGN:     true,
}

func (pc *PTECheck) Run(u *Universe, pkg *Package) []Finding {
	if strings.HasSuffix(pkg.Path, "internal/arch") {
		return nil
	}
	var out []Finding
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:      u.Fset.Position(n.Pos()),
			Analyzer: "ptecheck",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if bitOps[n.Op] && (pc.carriesPTEBits(pkg, n.X) || pc.carriesPTEBits(pkg, n.Y)) {
					report(n, "raw PTE bit manipulation (%s) outside internal/arch; use the arch.PTE accessor layer", n.Op)
				}
			case *ast.UnaryExpr:
				if n.Op == token.XOR && pc.carriesPTEBits(pkg, n.X) {
					report(n, "raw PTE bit complement outside internal/arch; use the arch.PTE accessor layer")
				}
			case *ast.AssignStmt:
				if bitOps[n.Tok] {
					for _, e := range append(append([]ast.Expr{}, n.Lhs...), n.Rhs...) {
						if pc.carriesPTEBits(pkg, e) {
							report(n, "raw PTE bit-assignment (%s) outside internal/arch; use the arch.PTE accessor layer", n.Tok)
							break
						}
					}
				}
			case *ast.CallExpr:
				// arch.PTE(x) conversions mint descriptors from raw
				// integers; only arch's Make* constructors may do
				// that.
				if len(n.Args) == 1 {
					if tv, ok := pkg.Info.Types[n.Fun]; ok && tv.IsType() && isPTEType(tv.Type) {
						report(n, "constructing arch.PTE from a raw integer outside internal/arch; use arch.MakeLeaf/MakeTable/MakeAnnotation")
					}
				}
			}
			return true
		})
	}
	return out
}

// carriesPTEBits reports whether expr is PTE-typed or is a uint64
// conversion of a PTE-typed expression (laundering the bits through
// uint64 does not make poking at them legal).
func (pc *PTECheck) carriesPTEBits(pkg *Package, expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if t := exprType(pkg, expr); t != nil && isPTEType(t) {
		return true
	}
	if call, ok := expr.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			if t := exprType(pkg, call.Args[0]); t != nil && isPTEType(t) {
				return true
			}
		}
	}
	return false
}

func isPTEType(t types.Type) bool {
	return isNamed(t, "internal/arch", "PTE")
}
