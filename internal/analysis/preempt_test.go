package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// loadWholeModule loads every package of the module and returns the
// universe plus module root.
func loadWholeModule(t *testing.T) (*Universe, string) {
	t.Helper()
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ModuleDirs(ld.ModRoot)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if _, err := ld.LoadDir(d); err != nil {
			t.Fatalf("load %s: %v", d, err)
		}
	}
	return NewUniverse(ld), ld.ModRoot
}

// TestPreemptStableIDs runs two extractions concurrently over the
// same universe (under `go test -race` in CI this also proves the
// extraction path is read-only) and requires them to agree point for
// point: the scheduler contract is that IDs are a pure function of
// the source.
func TestPreemptStableIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	u, root := loadWholeModule(t)

	var wg sync.WaitGroup
	results := make([][]PreemptPoint, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = ExtractPreemptPoints(u, root)
		}(i)
	}
	wg.Wait()

	a, b := results[0], results[1]
	if len(a) == 0 {
		t.Fatal("extraction found no preemption points")
	}
	if len(a) != len(b) {
		t.Fatalf("extraction count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs between extractions: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Content addressing: recomputing any point's ID from its fields
	// must reproduce it.
	for _, p := range a {
		if got := PointID(p.Kind, p.File, p.Line, p.Col); got != p.ID {
			t.Errorf("ID of %s %s:%d:%d not content-addressed: table %#x, recomputed %#x",
				p.Kind, p.File, p.Line, p.Col, p.ID, got)
		}
	}
}

// TestPreemptTableInSync is the in-process drift gate: the checked-in
// generated table must match a fresh extraction byte for byte, and a
// tampered copy must be detected.
func TestPreemptTableInSync(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	u, root := loadWholeModule(t)
	pts := ExtractPreemptPoints(u, root)

	genGo := RenderPreemptGo(pts)
	genJSON := RenderPreemptJSON(pts)
	for _, f := range []struct {
		name string
		want []byte
	}{
		{"points_gen.go", genGo},
		{"points_gen.json", genJSON},
	} {
		path := filepath.Join(root, "internal", "analysis", "preempt", f.name)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go run ./cmd/ghostlint -write-preempt`)", f.name, err)
		}
		if !bytes.Equal(got, f.want) {
			t.Errorf("%s is stale: run `go run ./cmd/ghostlint -write-preempt` and commit", f.name)
		}
	}
	// Sanity of the gate itself: a single flipped byte must not
	// compare equal.
	tampered := append([]byte(nil), genGo...)
	tampered[len(tampered)/2] ^= 1
	if bytes.Equal(tampered, genGo) {
		t.Error("tampered table compared equal")
	}
}

// grepPatterns are the textual shapes of lock operations and TLBI
// emissions; TestPreemptGrepCoverage requires every match in the
// module's non-test sources to appear in the checked-in table. This
// is the acceptance check that the analyzer-driven extraction misses
// nothing a dumb grep can see.
var grepPatterns = []*regexp.Regexp{
	regexp.MustCompile(`\.(lockHost|lockHyp|lockVMs|lockGuest|unlockHost|unlockHyp|unlockVMs|unlockGuest)\(`),
	regexp.MustCompile(`\.(hostLock|hypLock|vmsLock|Lock)\.(Lock|TryLock|Unlock)\(`),
	regexp.MustCompile(`VMTableLock\(\)\.(Lock|TryLock|Unlock)\(`),
	regexp.MustCompile(`\.(tlbi|notifyTLBI)\(`),
	regexp.MustCompile(`\.(InvalidateRange|InvalidateIPA|InvalidateVMID|InvalidateStale|InvalidateAll)\(`),
}

// TestPreemptGrepCoverage cross-checks the generated table against a
// plain text search: every source line matching a lock/TLBI pattern
// (outside internal/arch, which implements rather than emits, and
// internal/analysis, whose matches are the analyzers' own name
// tables) must carry at least one table point.
func TestPreemptGrepCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("reads the whole module")
	}
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	root := ld.ModRoot

	data, err := os.ReadFile(filepath.Join(root, "internal", "analysis", "preempt", "points_gen.json"))
	if err != nil {
		t.Fatalf("read table: %v", err)
	}
	var pts []struct {
		File string `json:"file"`
		Line int    `json:"line"`
	}
	if err := json.Unmarshal(data, &pts); err != nil {
		t.Fatalf("parse table: %v", err)
	}
	covered := make(map[string]bool, len(pts))
	for _, p := range pts {
		covered[fmt.Sprintf("%s:%d", p.File, p.Line)] = true
	}

	dirs, err := ModuleDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for _, dir := range dirs {
		rel := filepath.ToSlash(strings.TrimPrefix(dir, root+string(os.PathSeparator)))
		if strings.HasPrefix(rel, "internal/arch") || strings.HasPrefix(rel, "internal/analysis") {
			continue
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for ln := 1; sc.Scan(); ln++ {
				line := sc.Text()
				// Crude comment strip: enough for this codebase, which
				// does not spell lock calls inside string literals.
				if i := strings.Index(line, "//"); i >= 0 {
					line = line[:i]
				}
				for _, re := range grepPatterns {
					if !re.MatchString(line) {
						continue
					}
					matched++
					key := fmt.Sprintf("%s/%s:%d", rel, name, ln)
					if !covered[key] {
						t.Errorf("%s matches %q but has no preemption point in the table", key, re)
					}
					break
				}
			}
			f.Close()
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if matched == 0 {
		t.Fatal("grep sweep matched nothing; patterns are broken")
	}
}
