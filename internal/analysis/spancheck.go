package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Span pairing is the trace-package half of telemetrycheck: every
// trace.Tracer.Begin must reach a matching SpanHandle.End on every
// path out of the function, or the lane's open-span stack drifts and
// every later span on the lane nests under a ghost parent. The
// canonical shape is
//
//	sp := tr.Begin(lane, name)
//	defer sp.End()
//
// and the walker — the same fork/merge abstract interpretation
// lockcheck applies to held locks — verifies exactly that discipline:
// a Begin whose handle is discarded, or whose End is missing on some
// return path, or that branches disagree about, is a finding.
// Resolution is type-driven; an unresolvable Begin/End (stubbed
// import) is skipped rather than guessed, since both are common
// method names.

// spanMode distinguishes how an open span will be closed.
type spanMode int

const (
	// spanOpenMode: begun here, needs an explicit End on every path.
	spanOpenMode spanMode = iota
	// spanDeferredMode: a defer closes it; every path is covered.
	spanDeferredMode
)

// spanState maps handle variable name → mode.
type spanState map[string]spanMode

func (s spanState) clone() spanState {
	c := make(spanState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s spanState) equal(o spanState) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

func (s spanState) replaceWith(o spanState) {
	for k := range s {
		delete(s, k)
	}
	for k, v := range o {
		s[k] = v
	}
}

func spanIntersectOf(a, b spanState) spanState {
	out := make(spanState)
	for k, v := range a {
		if bv, ok := b[k]; ok && bv == v {
			out[k] = v
		}
	}
	return out
}

// openHandles lists handles in spanOpenMode, sorted.
func (s spanState) openHandles() []string {
	var out []string
	for k, v := range s {
		if v == spanOpenMode {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func (s spanState) describe() string {
	if len(s) == 0 {
		return "(none)"
	}
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// spanBeginCall reports whether call is trace.(*Tracer).Begin, by type
// information only.
func spanBeginCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Begin" {
		return false
	}
	callee := resolveCallee(pkg, call)
	return callee != nil && callee.Pkg() != nil &&
		strings.HasSuffix(callee.Pkg().Path(), "internal/telemetry/trace")
}

// spanEndCall returns the handle variable name if call is
// trace.SpanHandle.End on a plain identifier, else "".
func spanEndCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" || len(call.Args) != 0 {
		return ""
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	callee := resolveCallee(pkg, call)
	if callee == nil || callee.Pkg() == nil ||
		!strings.HasSuffix(callee.Pkg().Path(), "internal/telemetry/trace") {
		return ""
	}
	return id.Name
}

type spanAnalysis struct {
	u     *Universe
	pkg   *Package
	out   *[]Finding
	fname string
}

func (a *spanAnalysis) report(pos token.Pos, format string, args ...any) {
	*a.out = append(*a.out, Finding{
		Pos:      a.u.Fset.Position(pos),
		Analyzer: "telemetrycheck",
		Message:  fmt.Sprintf(format, args...),
	})
}

func (a *spanAnalysis) analyzeFuncDecl(fd *ast.FuncDecl) {
	st := spanState{}
	if a.stmts(fd.Body.List, st) == flowNormal {
		a.checkExit(fd.Body.End(), st, "function end")
	}
}

// checkExit reports still-open (non-deferred) spans at a path exit.
func (a *spanAnalysis) checkExit(pos token.Pos, st spanState, where string) {
	for _, h := range st.openHandles() {
		a.report(pos,
			"%s: span handle %q begun but not ended at %s; the lane's open-span stack leaks — use `defer %s.End()`",
			a.fname, h, where, h)
	}
}

func (a *spanAnalysis) stmts(list []ast.Stmt, st spanState) flowKind {
	for _, s := range list {
		if a.stmt(s, st) == flowExit {
			return flowExit
		}
	}
	return flowNormal
}

func (a *spanAnalysis) stmt(s ast.Stmt, st spanState) flowKind {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if spanBeginCall(a.pkg, call) {
				a.report(call.Pos(),
					"%s: trace Begin handle discarded; the span never ends and the lane's open-span stack leaks",
					a.fname)
				return flowNormal
			}
			if h := spanEndCall(a.pkg, call); h != "" {
				// End of an untracked handle (parameter, field) is the
				// caller's business; End on the no-op zero handle is
				// legal by design.
				delete(st, h)
				return flowNormal
			}
		}
		a.scanExpr(st, s.X)
	case *ast.AssignStmt:
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && spanBeginCall(a.pkg, call) {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if id.Name == "_" {
						a.report(call.Pos(),
							"%s: trace Begin handle assigned to _; the span never ends",
							a.fname)
						return flowNormal
					}
					if mode, open := st[id.Name]; open && mode == spanOpenMode {
						a.report(call.Pos(),
							"%s: handle %q overwritten while its span is still open",
							a.fname, id.Name)
					}
					st[id.Name] = spanOpenMode
					return flowNormal
				}
			}
		}
		a.scanExpr(st, s.Rhs...)
	case *ast.DeferStmt:
		a.deferStmt(s, st)
	case *ast.ReturnStmt:
		a.scanExpr(st, s.Results...)
		a.checkExit(s.Pos(), st, "return")
		return flowExit
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			a.funcLit(lit)
		}
		a.scanExpr(st, s.Call.Args...)
	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, st)
	case *ast.BlockStmt:
		return a.stmts(s.List, st)
	case *ast.IfStmt:
		return a.ifStmt(s, st)
	case *ast.ForStmt:
		a.loopBody(s.Pos(), s.Body, st)
	case *ast.RangeStmt:
		a.scanExpr(st, s.X)
		a.loopBody(s.Pos(), s.Body, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			if a.stmt(s.Init, st) == flowExit {
				return flowExit
			}
		}
		a.scanExpr(st, s.Tag)
		return a.caseClauses(s.Body, s.Pos(), st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			if a.stmt(s.Init, st) == flowExit {
				return flowExit
			}
		}
		return a.caseClauses(s.Body, s.Pos(), st)
	case *ast.SelectStmt:
		for _, cs := range s.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok {
				clauseSt := st.clone()
				a.stmts(cc.Body, clauseSt)
			}
		}
	case *ast.BranchStmt:
		// break/continue/goto end the straight-line path; the
		// loop-balance rule keeps this conservative.
		return flowExit
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					a.scanExpr(st, vs.Values...)
				}
			}
		}
	}
	return flowNormal
}

// deferStmt honours `defer sp.End()` and deferred literals containing
// End calls; spans begun inside a deferred literal are checked with
// their own fresh state.
func (a *spanAnalysis) deferStmt(s *ast.DeferStmt, st spanState) {
	if h := spanEndCall(a.pkg, s.Call); h != "" {
		if _, open := st[h]; open {
			st[h] = spanDeferredMode
		}
		return
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if h := spanEndCall(a.pkg, call); h != "" {
					if _, open := st[h]; open {
						st[h] = spanDeferredMode
					}
				}
			}
			return true
		})
		a.funcLit(lit)
		return
	}
	a.scanExpr(st, s.Call.Args...)
}

func (a *spanAnalysis) ifStmt(s *ast.IfStmt, st spanState) flowKind {
	if s.Init != nil {
		if a.stmt(s.Init, st) == flowExit {
			return flowExit
		}
	}
	a.scanExpr(st, s.Cond)
	thenSt := st.clone()
	thenFlow := a.stmts(s.Body.List, thenSt)
	elseSt := st.clone()
	elseFlow := flowNormal
	if s.Else != nil {
		elseFlow = a.stmt(s.Else, elseSt)
	}
	switch {
	case thenFlow == flowExit && elseFlow == flowExit:
		return flowExit
	case thenFlow == flowExit:
		st.replaceWith(elseSt)
	case elseFlow == flowExit:
		st.replaceWith(thenSt)
	default:
		if !thenSt.equal(elseSt) {
			a.report(s.Pos(),
				"%s: branches disagree about open spans (then: %s; else: %s); end the span on both paths or defer",
				a.fname, thenSt.describe(), elseSt.describe())
			st.replaceWith(spanIntersectOf(thenSt, elseSt))
		} else {
			st.replaceWith(thenSt)
		}
	}
	return flowNormal
}

// loopBody requires each iteration to be span-balanced, mirroring the
// lockcheck loop rule.
func (a *spanAnalysis) loopBody(pos token.Pos, body *ast.BlockStmt, st spanState) {
	entry := st.clone()
	bodySt := st.clone()
	flow := a.stmts(body.List, bodySt)
	if flow == flowNormal && !bodySt.equal(entry) {
		a.report(pos,
			"%s: loop body changes the open-span set (entry: %s; after one iteration: %s); each iteration must balance its Begin/End",
			a.fname, entry.describe(), bodySt.describe())
	}
}

// caseClauses analyzes switch cases as parallel branches that must
// rejoin with equal span state.
func (a *spanAnalysis) caseClauses(body *ast.BlockStmt, pos token.Pos, st spanState) flowKind {
	var normals []spanState
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseSt := st.clone()
		if a.stmts(cc.Body, caseSt) == flowNormal {
			normals = append(normals, caseSt)
		}
	}
	if !hasDefault {
		normals = append(normals, st.clone())
	}
	if len(normals) == 0 {
		return flowExit
	}
	merged := normals[0]
	for _, n := range normals[1:] {
		if !n.equal(merged) {
			a.report(pos,
				"%s: switch cases disagree about open spans (%s vs %s); end the span in every case or defer",
				a.fname, merged.describe(), n.describe())
			merged = spanIntersectOf(merged, n)
		}
	}
	st.replaceWith(merged)
	return flowNormal
}

// scanExpr walks expressions for function literals (checked with fresh
// state — they run on their own schedule) and discarded Begin calls
// buried in larger expressions.
func (a *spanAnalysis) scanExpr(st spanState, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				a.funcLit(n)
				return false
			case *ast.CallExpr:
				if h := spanEndCall(a.pkg, n); h != "" {
					delete(st, h)
				}
			}
			return true
		})
	}
}

// funcLit analyzes a literal body from an empty span state: its spans
// must balance locally.
func (a *spanAnalysis) funcLit(lit *ast.FuncLit) {
	if lit.Body == nil {
		return
	}
	st := spanState{}
	if a.stmts(lit.Body.List, st) == flowNormal {
		a.checkExit(lit.Body.End(), st, "end of function literal")
	}
}
