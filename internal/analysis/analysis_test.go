package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"
)

// goldenDirs are the known-bad snippet packages under testdata/src;
// each line carrying a "want:<analyzer>" marker comment must produce
// exactly that analyzer's finding, and nothing else may fire.
var goldenDirs = []string{
	"lockcheck_bad",
	"hookcheck_bad",
	"ptecheck_bad",
	"telemetrycheck_bad",
	"snapshotcheck_bad",
}

// mark identifies one expected or actual finding site.
type mark struct {
	file     string
	line     int
	analyzer string
}

// wantMarks extracts the "want:<analyzer>" markers of a package.
func wantMarks(ld *Loader, pkg *Package) map[mark]bool {
	out := map[mark]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want:")
				if !ok {
					continue
				}
				pos := ld.Fset.Position(c.Pos())
				out[mark{filepath.Base(pos.Filename), pos.Line, strings.TrimSpace(rest)}] = true
			}
		}
	}
	return out
}

func TestGoldenBadSnippets(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, d := range goldenDirs {
		pkg, err := ld.LoadDir(filepath.Join("testdata", "src", d))
		if err != nil {
			t.Fatalf("load %s: %v", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	u := NewUniverse(ld)
	for _, pkg := range pkgs {
		want := wantMarks(ld, pkg)
		if len(want) == 0 {
			t.Errorf("%s: no want markers found", pkg.Path)
			continue
		}
		got := map[mark]bool{}
		for _, a := range Analyzers() {
			for _, f := range a.Run(u, pkg) {
				got[mark{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer}] = true
				if !want[mark{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer}] {
					t.Logf("finding: %s", f)
				}
			}
		}
		for m := range want {
			if !got[m] {
				t.Errorf("%s: expected %s finding at %s:%d, got none",
					pkg.Path, m.analyzer, m.file, m.line)
			}
		}
		for m := range got {
			if !want[m] {
				t.Errorf("%s: unexpected %s finding at %s:%d",
					pkg.Path, m.analyzer, m.file, m.line)
			}
		}
	}
}

// TestRepoClean is the in-process version of the CI ghostlint run:
// every package of the module must be free of unsuppressed findings.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ModuleDirs(ld.ModRoot)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := ld.LoadDir(d)
		if err != nil {
			t.Fatalf("load %s: %v", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	u := NewUniverse(ld)
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			kept, _ := SplitSuppressed(pkg, a.Run(u, pkg))
			for _, f := range kept {
				t.Errorf("unsuppressed finding: %s", f)
			}
		}
	}
}

// TestBugdemoSuppression pins the seeded rank inversion in
// internal/bugdemo: lockcheck must see it, and the //ghostlint:ignore
// on the acquisition must hide it in non-strict runs.
func TestBugdemoSuppression(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := ld.LoadDir(filepath.Join(ld.ModRoot, "internal", "bugdemo"))
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(ld)
	all := (&LockCheck{}).Run(u, pkg)
	kept, suppressed := SplitSuppressed(pkg, all)
	if len(kept) != 0 {
		t.Errorf("bugdemo has unsuppressed lockcheck findings: %v", kept)
	}
	found := false
	for _, f := range suppressed {
		if strings.Contains(f.Message, "rank inversion") &&
			strings.HasSuffix(f.Pos.Filename, "lockorder.go") {
			found = true
		}
	}
	if !found {
		t.Errorf("lockcheck no longer flags the seeded inversion in lockorder.go; suppressed findings: %v", suppressed)
	}
}

func TestParseRequires(t *testing.T) {
	doc := func(lines ...string) *ast.CommentGroup {
		cg := &ast.CommentGroup{}
		for _, l := range lines {
			cg.List = append(cg.List, &ast.Comment{Text: l})
		}
		return cg
	}

	req, err := parseRequires(doc("// doThing does a thing.", "//ghost:requires lock=hyp lock=host"))
	if err != nil || req == nil {
		t.Fatalf("parseRequires: req=%v err=%v", req, err)
	}
	if len(req.Comps) != 2 || req.Comps[0] != "host" || req.Comps[1] != "hyp" {
		t.Errorf("components not sorted by rank: %v", req.Comps)
	}

	req, err = parseRequires(doc("//ghost:requires lock=dynamic"))
	if err != nil || req == nil || !req.Dynamic || len(req.Comps) != 0 {
		t.Errorf("lock=dynamic: req=%+v err=%v", req, err)
	}

	req, err = parseRequires(doc("//ghost:requires lock=owner"))
	if err != nil || req == nil || !req.Owner {
		t.Errorf("lock=owner: req=%+v err=%v", req, err)
	}

	if _, err := parseRequires(doc("//ghost:requires lock=bogus")); err == nil {
		t.Error("unknown lock name not rejected")
	}
	if _, err := parseRequires(doc("//ghost:requires held=host")); err == nil {
		t.Error("unknown field not rejected")
	}

	req, err = parseRequires(doc("// an ordinary comment"))
	if req != nil || err != nil {
		t.Errorf("unannotated doc: req=%v err=%v", req, err)
	}
	req, err = parseRequires(nil)
	if req != nil || err != nil {
		t.Errorf("nil doc: req=%v err=%v", req, err)
	}
}

func TestParseIgnore(t *testing.T) {
	valid := AnalyzerNames()

	set, ok := parseIgnore("//ghostlint:ignore lockcheck deliberate for the demo", valid)
	if !ok || len(set) != 1 || !set["lockcheck"] {
		t.Errorf("single-analyzer ignore: set=%v ok=%v", set, ok)
	}

	set, ok = parseIgnore("//ghostlint:ignore lockcheck ptecheck reason text", valid)
	if !ok || len(set) != 2 || !set["lockcheck"] || !set["ptecheck"] {
		t.Errorf("multi-analyzer ignore: set=%v ok=%v", set, ok)
	}

	set, ok = parseIgnore("//ghostlint:ignore cold path, registry dedupes", valid)
	if !ok || set != nil {
		t.Errorf("all-analyzer ignore: set=%v ok=%v", set, ok)
	}

	if _, ok := parseIgnore("// an ordinary comment", valid); ok {
		t.Error("ordinary comment parsed as ignore directive")
	}
}
