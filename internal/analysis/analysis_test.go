package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"
)

// goldenDirs are the known-bad snippet packages under testdata/src;
// each line carrying a "want:<analyzer>" marker comment must produce
// exactly that analyzer's finding, and nothing else may fire.
var goldenDirs = []string{
	"lockcheck_bad",
	"guardcheck_bad",
	"bbmcheck_bad",
	"hookcheck_bad",
	"ptecheck_bad",
	"telemetrycheck_bad",
	"snapshotcheck_bad",
}

// mark identifies one expected or actual finding site.
type mark struct {
	file     string
	line     int
	analyzer string
}

// wantMarks extracts the "want:<analyzer>" markers of a package.
func wantMarks(ld *Loader, pkg *Package) map[mark]bool {
	out := map[mark]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want:")
				if !ok {
					continue
				}
				pos := ld.Fset.Position(c.Pos())
				out[mark{filepath.Base(pos.Filename), pos.Line, strings.TrimSpace(rest)}] = true
			}
		}
	}
	return out
}

func TestGoldenBadSnippets(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, d := range goldenDirs {
		pkg, err := ld.LoadDir(filepath.Join("testdata", "src", d))
		if err != nil {
			t.Fatalf("load %s: %v", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	u := NewUniverse(ld)
	for _, pkg := range pkgs {
		want := wantMarks(ld, pkg)
		if len(want) == 0 {
			t.Errorf("%s: no want markers found", pkg.Path)
			continue
		}
		got := map[mark]bool{}
		for _, a := range Analyzers() {
			for _, f := range a.Run(u, pkg) {
				got[mark{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer}] = true
				if !want[mark{filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer}] {
					t.Logf("finding: %s", f)
				}
			}
		}
		for m := range want {
			if !got[m] {
				t.Errorf("%s: expected %s finding at %s:%d, got none",
					pkg.Path, m.analyzer, m.file, m.line)
			}
		}
		for m := range got {
			if !want[m] {
				t.Errorf("%s: unexpected %s finding at %s:%d",
					pkg.Path, m.analyzer, m.file, m.line)
			}
		}
	}
}

// TestRepoClean is the in-process version of the CI ghostlint run:
// every package of the module must be free of unsuppressed findings.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ModuleDirs(ld.ModRoot)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := ld.LoadDir(d)
		if err != nil {
			t.Fatalf("load %s: %v", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	u := NewUniverse(ld)
	for _, pkg := range pkgs {
		var all []Finding
		for _, a := range Analyzers() {
			findings := a.Run(u, pkg)
			all = append(all, findings...)
			kept, _ := SplitSuppressed(pkg, findings)
			for _, f := range kept {
				t.Errorf("unsuppressed finding: %s", f)
			}
		}
		// Every //ghostlint:ignore in the tree must still cover a live
		// finding; a stale one would silently mask a future regression.
		for _, f := range StaleSuppressions(pkg, all) {
			t.Errorf("stale suppression: %s", f)
		}
	}
}

// TestBugdemoSuppression pins the seeded bugs in internal/bugdemo:
// each analyzer must see its demo, and the //ghostlint:ignore on the
// violating line must hide it in non-strict runs.
func TestBugdemoSuppression(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := ld.LoadDir(filepath.Join(ld.ModRoot, "internal", "bugdemo"))
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(ld)
	seeds := []struct {
		analyzer Analyzer
		phrase   string
		file     string
	}{
		{&LockCheck{}, "rank inversion", "lockorder.go"},
		{&GuardCheck{}, "//ghost:guards lock=vms", "guardrace.go"},
		{&BBMCheck{}, "make after break with no TLBI", "bbmdemo.go"},
	}
	for _, seed := range seeds {
		all := seed.analyzer.Run(u, pkg)
		kept, suppressed := SplitSuppressed(pkg, all)
		if len(kept) != 0 {
			t.Errorf("bugdemo has unsuppressed %s findings: %v", seed.analyzer.Name(), kept)
		}
		found := false
		for _, f := range suppressed {
			if strings.Contains(f.Message, seed.phrase) &&
				strings.HasSuffix(f.Pos.Filename, seed.file) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s no longer flags the seeded bug in %s; suppressed findings: %v",
				seed.analyzer.Name(), seed.file, suppressed)
		}
	}
}

func TestParseRequires(t *testing.T) {
	doc := func(lines ...string) *ast.CommentGroup {
		cg := &ast.CommentGroup{}
		for _, l := range lines {
			cg.List = append(cg.List, &ast.Comment{Text: l})
		}
		return cg
	}

	req, err := parseRequires(doc("// doThing does a thing.", "//ghost:requires lock=hyp lock=host"))
	if err != nil || req == nil {
		t.Fatalf("parseRequires: req=%v err=%v", req, err)
	}
	if len(req.Comps) != 2 || req.Comps[0] != "host" || req.Comps[1] != "hyp" {
		t.Errorf("components not sorted by rank: %v", req.Comps)
	}

	req, err = parseRequires(doc("//ghost:requires lock=dynamic"))
	if err != nil || req == nil || !req.Dynamic || len(req.Comps) != 0 {
		t.Errorf("lock=dynamic: req=%+v err=%v", req, err)
	}

	req, err = parseRequires(doc("//ghost:requires lock=owner"))
	if err != nil || req == nil || !req.Owner {
		t.Errorf("lock=owner: req=%+v err=%v", req, err)
	}

	if _, err := parseRequires(doc("//ghost:requires lock=bogus")); err == nil {
		t.Error("unknown lock name not rejected")
	}
	if _, err := parseRequires(doc("//ghost:requires held=host")); err == nil {
		t.Error("unknown field not rejected")
	}

	req, err = parseRequires(doc("// an ordinary comment"))
	if req != nil || err != nil {
		t.Errorf("unannotated doc: req=%v err=%v", req, err)
	}
	req, err = parseRequires(nil)
	if req != nil || err != nil {
		t.Errorf("nil doc: req=%v err=%v", req, err)
	}
}

func TestParseGuards(t *testing.T) {
	doc := func(lines ...string) *ast.CommentGroup {
		cg := &ast.CommentGroup{}
		for _, l := range lines {
			cg.List = append(cg.List, &ast.Comment{Text: l})
		}
		return cg
	}

	g, err := parseGuards(doc("// pending counts work.", "//ghost:guards lock=vms"))
	if err != nil || g == nil || g.Comp != "vms" || g.Owner || g.Self {
		t.Errorf("component guard: g=%+v err=%v", g, err)
	}
	g, err = parseGuards(doc("//ghost:guards lock=owner"))
	if err != nil || g == nil || !g.Owner {
		t.Errorf("owner guard: g=%+v err=%v", g, err)
	}
	g, err = parseGuards(doc("//ghost:guards lock=self"))
	if err != nil || g == nil || !g.Self {
		t.Errorf("self guard: g=%+v err=%v", g, err)
	}
	if _, err := parseGuards(doc("//ghost:guards lock=bogus")); err == nil {
		t.Error("unknown lock name not rejected")
	}
	if _, err := parseGuards(doc("//ghost:guards lock=vms lock=host")); err == nil {
		t.Error("two clauses not rejected")
	}
	if _, err := parseGuards(doc("//ghost:guards held=vms")); err == nil {
		t.Error("unknown field not rejected")
	}
	g, err = parseGuards(doc("// an ordinary comment"))
	if g != nil || err != nil {
		t.Errorf("unannotated doc: g=%v err=%v", g, err)
	}
	g, err = parseGuards(nil)
	if g != nil || err != nil {
		t.Errorf("nil doc: g=%v err=%v", g, err)
	}
}

func TestParseIgnore(t *testing.T) {
	valid := AnalyzerNames()

	set, ok := parseIgnore("//ghostlint:ignore lockcheck deliberate for the demo", valid)
	if !ok || len(set) != 1 || !set["lockcheck"] {
		t.Errorf("single-analyzer ignore: set=%v ok=%v", set, ok)
	}

	set, ok = parseIgnore("//ghostlint:ignore lockcheck ptecheck reason text", valid)
	if !ok || len(set) != 2 || !set["lockcheck"] || !set["ptecheck"] {
		t.Errorf("multi-analyzer ignore: set=%v ok=%v", set, ok)
	}

	set, ok = parseIgnore("//ghostlint:ignore cold path, registry dedupes", valid)
	if !ok || set != nil {
		t.Errorf("all-analyzer ignore: set=%v ok=%v", set, ok)
	}

	if _, ok := parseIgnore("// an ordinary comment", valid); ok {
		t.Error("ordinary comment parsed as ignore directive")
	}
}
