package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockCheck verifies the lock discipline the ghost oracle depends on
// (paper §3.2), by abstract interpretation of each function body over
// a held-lock state:
//
//	L1  every acquired lock is released on every path out of the
//	    function (missing unlock / conditional leak);
//	L2  acquisitions follow the rank order vms < guest < host < hyp;
//	L3  calls to //ghost:requires-annotated functions happen with the
//	    required component lock held;
//	L4  a lock that is released explicitly (not via defer) is never
//	    held across a call that can reach hypPanic — panic unwinding
//	    would leak it.
//
// The interpretation is deliberately simple: branches fork the state
// and must rejoin equal (or divergence is itself a finding), loop
// bodies must be lock-balanced, and break/continue/goto end a path
// conservatively. That is exactly the shape of locking the
// hypervisor's hypercall handlers use; code that needs something
// fancier should restructure, not defeat the checker.
type LockCheck struct{}

func (*LockCheck) Name() string { return "lockcheck" }

func (lc *LockCheck) Run(u *Universe, pkg *Package) []Finding {
	out := u.MetaFindings(pkg, "lockcheck")
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isLockPrimitive(fd) {
				continue
			}
			a := &lockAnalysis{u: u, pkg: pkg, out: &out, fname: fd.Name.Name}
			a.analyzeFuncDecl(fd)
		}
	}
	return out
}

// holdMode distinguishes how a held lock will be released.
type holdMode int

const (
	// holdActive: acquired here, must be explicitly unlocked on every
	// path; unsafe across may-panic calls.
	holdActive holdMode = iota
	// holdDeferred: a defer releases it; safe across panics.
	holdDeferred
	// holdAssumed: held by the caller per //ghost:requires; not this
	// function's responsibility to release.
	holdAssumed
)

// lockState maps component key → hold mode.
type lockState map[string]holdMode

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s lockState) equal(o lockState) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// replaceWith overwrites s in place with o.
func (s lockState) replaceWith(o lockState) {
	for k := range s {
		delete(s, k)
	}
	for k, v := range o {
		s[k] = v
	}
}

// intersectOf keeps only entries present with equal mode in both.
func intersectOf(a, b lockState) lockState {
	out := make(lockState)
	for k, v := range a {
		if bv, ok := b[k]; ok && bv == v {
			out[k] = v
		}
	}
	return out
}

// activeComps lists components in holdActive mode, sorted.
func (s lockState) activeComps() []string {
	var out []string
	for k, v := range s {
		if v == holdActive {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// describe renders the held set for diagnostics.
func (s lockState) describe() string {
	if len(s) == 0 {
		return "(none)"
	}
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// flowKind is a statement's effect on control flow.
type flowKind int

const (
	flowNormal flowKind = iota
	flowExit            // return, panic, break/continue/goto (conservative)
)

type lockAnalysis struct {
	u     *Universe
	pkg   *Package
	out   *[]Finding
	fname string

	// observe, when set, is invoked for every expression node the
	// walker visits together with the held-lock state on that path —
	// guardcheck rides the same fork/merge interpretation this way
	// instead of duplicating it.
	observe func(n ast.Node, st lockState)

	// summaries applies call-graph lock-effect summaries at call
	// sites (guardcheck's interprocedural mode). Lockcheck proper
	// leaves it off: its per-function pairing rules already see every
	// wrapper body directly.
	summaries bool
}

// observeTree feeds a whole expression subtree to the observer
// without any state effects (used for call receivers, which the
// pairing walker itself has no reason to scan).
func (a *lockAnalysis) observeTree(e ast.Expr, st lockState) {
	if a.observe == nil || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		a.observe(n, st)
		return true
	})
}

// applySummary mutates st with the callee's net lock effect, when one
// exists.
func (a *lockAnalysis) applySummary(call *ast.CallExpr, st lockState) {
	if !a.summaries {
		return
	}
	callee := resolveCallee(a.pkg, call)
	if callee == nil {
		return
	}
	if eff := a.u.LockEffectOf(callee); eff != nil {
		for _, c := range eff.Releases {
			delete(st, c)
		}
		for _, c := range eff.Acquires {
			st[c] = holdActive
		}
	}
}

func (a *lockAnalysis) report(pos token.Pos, format string, args ...any) {
	*a.out = append(*a.out, Finding{
		Pos:      a.u.Fset.Position(pos),
		Analyzer: "lockcheck",
		Message:  fmt.Sprintf(format, args...),
	})
}

func (a *lockAnalysis) analyzeFuncDecl(fd *ast.FuncDecl) {
	st := lockState{}
	if obj := a.pkg.Info.Defs[fd.Name]; obj != nil {
		if req := a.u.RequiresOf(obj); req != nil {
			if req.Dynamic || req.Owner {
				// The body may run under any discipline lock; assume
				// all of them so nested requires and rank checks
				// don't fire spuriously. Call sites are checked
				// dynamically (lock=dynamic) or per-receiver
				// (lock=owner).
				for c := range LockRanks {
					st[c] = holdAssumed
				}
			}
			for _, c := range req.Comps {
				st[c] = holdAssumed
			}
		}
	}
	if a.stmts(fd.Body.List, st) == flowNormal {
		a.checkExit(fd.Body.End(), st, "function end")
	}
}

// checkExit reports active locks still held at a path exit.
func (a *lockAnalysis) checkExit(pos token.Pos, st lockState, where string) {
	for _, c := range st.activeComps() {
		a.report(pos, "%s: lock %q still held at %s with no unlock on this path (prefer defer)",
			a.fname, c, where)
	}
}

func (a *lockAnalysis) stmts(list []ast.Stmt, st lockState) flowKind {
	for _, s := range list {
		if a.stmt(s, st) == flowExit {
			return flowExit
		}
	}
	return flowNormal
}

func (a *lockAnalysis) stmt(s ast.Stmt, st lockState) flowKind {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			return a.callStmt(call, st)
		}
		a.exprs(st, s.X)
	case *ast.DeferStmt:
		a.deferStmt(s, st)
	case *ast.ReturnStmt:
		a.exprs(st, s.Results...)
		a.checkExit(s.Pos(), st, "return")
		return flowExit
	case *ast.AssignStmt:
		a.exprs(st, s.Rhs...)
		a.exprs(st, s.Lhs...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					a.exprs(st, vs.Values...)
				}
			}
		}
	case *ast.IncDecStmt:
		a.exprs(st, s.X)
	case *ast.SendStmt:
		a.exprs(st, s.Chan, s.Value)
	case *ast.GoStmt:
		a.goStmt(s, st)
	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, st)
	case *ast.BlockStmt:
		return a.stmts(s.List, st)
	case *ast.IfStmt:
		return a.ifStmt(s, st)
	case *ast.ForStmt:
		a.forStmt(s, st)
	case *ast.RangeStmt:
		a.rangeStmt(s, st)
	case *ast.SwitchStmt:
		return a.switchStmt(s, st)
	case *ast.TypeSwitchStmt:
		return a.typeSwitchStmt(s, st)
	case *ast.SelectStmt:
		a.selectStmt(s, st)
	case *ast.BranchStmt:
		// break/continue/goto terminate this straight-line path; the
		// loop-balance rule keeps this conservative rather than wrong.
		return flowExit
	}
	return flowNormal
}

// callStmt handles a statement-level call: lock classification,
// annotation/panic-safety checks, and definite-exit detection.
func (a *lockAnalysis) callStmt(call *ast.CallExpr, st lockState) flowKind {
	a.exprs(st, call.Args...)
	if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); !isLit {
		a.observeTree(call.Fun, st)
	}
	op, comp, ranked := classifyLockCall(a.pkg, call)
	switch op {
	case opAcquire:
		if _, held := st[comp]; held {
			a.report(call.Pos(), "%s: acquisition of %q while already holding it on this path",
				a.fname, comp)
			return flowNormal
		}
		if ranked {
			newRank := LockRanks[comp]
			for held := range st {
				if hr, ok := LockRanks[held]; ok && hr >= newRank {
					a.report(call.Pos(),
						"%s: lock rank inversion: acquiring %q (rank %d) while holding %q (rank %d); acquisition order is %s",
						a.fname, comp, newRank, held, hr, RankOrder)
				}
			}
		}
		st[comp] = holdActive
	case opRelease:
		if _, held := st[comp]; held {
			delete(st, comp)
		} else {
			a.report(call.Pos(), "%s: unlock of %q, which is not held on this path", a.fname, comp)
		}
	default:
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			// Immediately-invoked literal: runs inline under the
			// current locks.
			entry := lockState{}
			for k := range st {
				entry[k] = holdAssumed
			}
			a.funcLit(lit, entry)
			return flowNormal
		}
		a.checkCall(call, st)
		a.applySummary(call, st)
		if a.definitelyPanics(call) {
			return flowExit
		}
	}
	return flowNormal
}

// definitelyPanics reports calls that never return normally: the
// panic builtin and the hypervisor's hypPanic channel.
func (a *lockAnalysis) definitelyPanics(call *ast.CallExpr) bool {
	if isBuiltin(a.pkg, call, "panic") {
		return true
	}
	callee := resolveCallee(a.pkg, call)
	return callee != nil && callee.Name() == "hypPanic" && callee.Pkg() != nil &&
		strings.HasSuffix(callee.Pkg().Path(), "internal/hyp")
}

// checkCall enforces //ghost:requires at a call site (L3) and the
// panic-safety rule (L4).
func (a *lockAnalysis) checkCall(call *ast.CallExpr, st lockState) {
	callee := resolveCallee(a.pkg, call)
	if callee == nil {
		return
	}
	if req := a.u.RequiresOf(callee); req != nil && !req.Dynamic {
		needed := req.Comps
		if req.Owner {
			needed = nil
			if c := ownerComponent(call); c != "" {
				needed = []string{c}
			}
		}
		for _, c := range needed {
			if _, held := st[c]; !held {
				a.report(call.Pos(),
					"%s: call to %s requires the %q lock (//ghost:requires), which is not held on this path",
					a.fname, callee.Name(), c)
			}
		}
	}
	if a.u.MayPanic(callee) {
		for _, c := range st.activeComps() {
			a.report(call.Pos(),
				"%s: lock %q is held across call to %s, which can reach hypPanic; release it via defer so panic unwinding unlocks it",
				a.fname, c, callee.Name())
		}
	}
}

// deferStmt registers deferred releases: a direct lock helper call,
// or a func literal whose body contains release calls.
func (a *lockAnalysis) deferStmt(s *ast.DeferStmt, st lockState) {
	a.exprs(st, s.Call.Args...)
	if op, comp, _ := classifyLockCall(a.pkg, s.Call); op == opRelease {
		if _, held := st[comp]; held {
			st[comp] = holdDeferred
		} else {
			a.report(s.Pos(), "%s: deferred unlock of %q, which is not held here", a.fname, comp)
		}
		return
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, comp, _ := classifyLockCall(a.pkg, call); op == opRelease {
				if _, held := st[comp]; held {
					st[comp] = holdDeferred
				}
			}
			return true
		})
	}
}

// goStmt analyzes a spawned goroutine body from an empty lock state:
// the child does not inherit the parent's critical section.
func (a *lockAnalysis) goStmt(s *ast.GoStmt, st lockState) {
	a.exprs(st, s.Call.Args...)
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		a.funcLit(lit, lockState{})
	}
}

// funcLit analyzes a function literal's body with the given entry
// state; locally-acquired locks must still balance.
func (a *lockAnalysis) funcLit(lit *ast.FuncLit, entry lockState) {
	if lit.Body == nil {
		return
	}
	if a.stmts(lit.Body.List, entry) == flowNormal {
		a.checkExit(lit.Body.End(), entry, "end of function literal")
	}
}

// exprs scans expressions for nested calls (annotation/panic checks)
// and function literals. Lock operations buried in expressions are
// also honoured (e.g. `ok := l.TryLock()` is rare but legal).
func (a *lockAnalysis) exprs(st lockState, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if a.observe != nil {
				a.observe(n, st)
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				// A literal that runs inline (or escapes) may execute
				// under the current locks; treat them as
				// caller-managed while still checking its own
				// acquisitions.
				entry := lockState{}
				for k := range st {
					entry[k] = holdAssumed
				}
				a.funcLit(n, entry)
				return false
			case *ast.CallExpr:
				if op, comp, _ := classifyLockCall(a.pkg, n); op != opNone {
					// Expression-position lock ops mutate state like
					// statement-level ones.
					if op == opAcquire {
						if _, held := st[comp]; !held {
							st[comp] = holdActive
						}
					} else if _, held := st[comp]; held {
						delete(st, comp)
					}
					return true
				}
				a.checkCall(n, st)
				a.applySummary(n, st)
			}
			return true
		})
	}
}

func (a *lockAnalysis) ifStmt(s *ast.IfStmt, st lockState) flowKind {
	if s.Init != nil {
		if a.stmt(s.Init, st) == flowExit {
			return flowExit
		}
	}
	a.exprs(st, s.Cond)
	thenSt := st.clone()
	thenFlow := a.stmts(s.Body.List, thenSt)
	elseSt := st.clone()
	elseFlow := flowNormal
	if s.Else != nil {
		elseFlow = a.stmt(s.Else, elseSt)
	}
	switch {
	case thenFlow == flowExit && elseFlow == flowExit:
		return flowExit
	case thenFlow == flowExit:
		st.replaceWith(elseSt)
	case elseFlow == flowExit:
		st.replaceWith(thenSt)
	default:
		if !thenSt.equal(elseSt) {
			a.report(s.Pos(),
				"%s: branches leave different locks held (then: %s; else: %s); unlock on both paths or restructure",
				a.fname, thenSt.describe(), elseSt.describe())
			st.replaceWith(intersectOf(thenSt, elseSt))
		} else {
			st.replaceWith(thenSt)
		}
	}
	return flowNormal
}

func (a *lockAnalysis) forStmt(s *ast.ForStmt, st lockState) {
	if s.Init != nil {
		a.stmt(s.Init, st)
	}
	a.exprs(st, s.Cond)
	entry := st.clone()
	bodySt := st.clone()
	flow := a.stmts(s.Body.List, bodySt)
	if s.Post != nil {
		a.stmt(s.Post, bodySt)
	}
	if flow == flowNormal && !bodySt.equal(entry) {
		a.report(s.Pos(),
			"%s: loop body changes the held-lock set (entry: %s; after one iteration: %s); each iteration must be lock-balanced",
			a.fname, entry.describe(), bodySt.describe())
	}
	// Continue with the entry state: the loop may run zero times.
}

func (a *lockAnalysis) rangeStmt(s *ast.RangeStmt, st lockState) {
	a.exprs(st, s.X)
	entry := st.clone()
	bodySt := st.clone()
	flow := a.stmts(s.Body.List, bodySt)
	if flow == flowNormal && !bodySt.equal(entry) {
		a.report(s.Pos(),
			"%s: range body changes the held-lock set (entry: %s; after one iteration: %s); each iteration must be lock-balanced",
			a.fname, entry.describe(), bodySt.describe())
	}
}

func (a *lockAnalysis) switchStmt(s *ast.SwitchStmt, st lockState) flowKind {
	if s.Init != nil {
		if a.stmt(s.Init, st) == flowExit {
			return flowExit
		}
	}
	a.exprs(st, s.Tag)
	return a.caseClauses(s.Body, s.Pos(), st, func(cc *ast.CaseClause) {
		a.exprs(st, cc.List...)
	})
}

func (a *lockAnalysis) typeSwitchStmt(s *ast.TypeSwitchStmt, st lockState) flowKind {
	if s.Init != nil {
		if a.stmt(s.Init, st) == flowExit {
			return flowExit
		}
	}
	return a.caseClauses(s.Body, s.Pos(), st, nil)
}

// caseClauses analyzes switch cases as parallel branches that must
// rejoin with equal lock state.
func (a *lockAnalysis) caseClauses(body *ast.BlockStmt, pos token.Pos, st lockState,
	scanCase func(*ast.CaseClause)) flowKind {
	var normals []lockState
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		if scanCase != nil {
			scanCase(cc)
		}
		caseSt := st.clone()
		if a.stmts(cc.Body, caseSt) == flowNormal {
			normals = append(normals, caseSt)
		}
	}
	if !hasDefault {
		normals = append(normals, st.clone())
	}
	if len(normals) == 0 {
		return flowExit
	}
	merged := normals[0]
	for _, n := range normals[1:] {
		if !n.equal(merged) {
			a.report(pos,
				"%s: switch cases leave different locks held (%s vs %s); unlock in every case or restructure",
				a.fname, merged.describe(), n.describe())
			merged = intersectOf(merged, n)
		}
	}
	st.replaceWith(merged)
	return flowNormal
}

// selectStmt analyzes each comm clause independently; select is not
// used on hypervisor lock paths, so no merge discipline is imposed
// beyond per-clause balance.
func (a *lockAnalysis) selectStmt(s *ast.SelectStmt, st lockState) {
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		clauseSt := st.clone()
		if cc.Comm != nil {
			a.stmt(cc.Comm, clauseSt)
		}
		a.stmts(cc.Body, clauseSt)
	}
}
