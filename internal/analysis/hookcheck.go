package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// HookCheck forbids spinlock acquisition from code that runs while a
// spinlock is already held by the locking machinery itself:
//
//   - the Acquired/Releasing callbacks of a spinlock.Hooks value, and
//   - methods of hyp.Instrumentation implementations that the
//     hypervisor invokes under a lock (LockAcquired, LockReleasing,
//     ReadOnce, MemcacheAlloc, MemcacheFree).
//
// Taking any spinlock there is deadlock by construction: the ghost
// recorder's hooks fire inside every critical section, so a lock
// acquired in a hook nests under every lock in the system at once —
// no rank assignment can make that safe. Reachability is computed
// over the module-internal call graph; calls through interfaces or
// function values are opaque to this analysis (the runtime rank
// validator still catches those).
type HookCheck struct{}

func (*HookCheck) Name() string { return "hookcheck" }

// underLockHooks are the Instrumentation methods invoked while a
// spinlock is held.
var underLockHooks = map[string]bool{
	"LockAcquired":  true,
	"LockReleasing": true,
	"ReadOnce":      true,
	"MemcacheAlloc": true,
	"MemcacheFree":  true,
}

func (hc *HookCheck) Run(u *Universe, pkg *Package) []Finding {
	var out []Finding
	report := func(pos ast.Node, root string, format string, args ...any) {
		out = append(out, Finding{
			Pos:      u.Fset.Position(pos.Pos()),
			Analyzer: "hookcheck",
			Message:  fmt.Sprintf("%s: %s", root, fmt.Sprintf(format, args...)),
		})
	}

	// Roots 1: spinlock.Hooks composite literals anywhere in the
	// package.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if t := exprType(pkg, lit); t == nil || !isNamed(t, "internal/spinlock", "Hooks") {
				return true
			}
			for _, elt := range lit.Elts {
				name := "hook"
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						name = "Hooks." + id.Name
					}
					val = kv.Value
				}
				hc.checkHookValue(u, pkg, name, val, report)
			}
			return true
		})
	}

	// Roots 2: under-lock methods of Instrumentation implementations.
	iface := instrumentationInterface(u)
	if iface != nil {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil || !underLockHooks[fd.Name.Name] {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				recv := obj.Type().(*types.Signature).Recv()
				if recv == nil || !implementsInstr(recv.Type(), iface) {
					continue
				}
				root := recvTypeName(recv.Type()) + "." + fd.Name.Name
				hc.checkBody(u, pkg, root, fd.Body, report)
			}
		}
	}
	return out
}

// checkHookValue inspects one Hooks field value: a func literal is
// scanned directly; a named function is checked against the
// transitive acquires set.
func (hc *HookCheck) checkHookValue(u *Universe, pkg *Package, root string, val ast.Expr,
	report func(ast.Node, string, string, ...any)) {
	switch v := ast.Unparen(val).(type) {
	case *ast.FuncLit:
		hc.checkBody(u, pkg, root, v.Body, report)
	case *ast.Ident, *ast.SelectorExpr:
		var obj types.Object
		switch id := v.(type) {
		case *ast.Ident:
			obj = pkg.Info.Uses[id]
		case *ast.SelectorExpr:
			obj = pkg.Info.Uses[id.Sel]
		}
		if obj == nil {
			return
		}
		if w, bad := u.AcquiresSpinlock(obj); bad {
			report(val, root, "installs %s as a spinlock hook, but it %s; hooks run with the lock held and must not take locks",
				obj.Name(), w)
		}
	}
}

// checkBody flags direct acquisitions and calls into
// spinlock-acquiring functions inside a hook body.
func (hc *HookCheck) checkBody(u *Universe, pkg *Package, root string, body *ast.BlockStmt,
	report func(ast.Node, string, string, ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, comp, _ := classifyLockCall(pkg, call); op == opAcquire {
			report(call, root, "acquires spinlock %q inside a hook that already runs under a spinlock (deadlock by construction)", comp)
			return true
		}
		if callee := resolveCallee(pkg, call); callee != nil {
			if w, bad := u.AcquiresSpinlock(callee); bad {
				report(call, root, "calls %s, which %s; hooks run with the lock held and must not take locks",
					callee.Name(), w)
			}
		}
		return true
	})
}

// instrumentationInterface finds hyp.Instrumentation if the hyp
// package is loaded (it isn't when analyzing testdata in isolation).
func instrumentationInterface(u *Universe) *types.Interface {
	for _, pkg := range u.Pkgs {
		if !strings.HasSuffix(pkg.Path, "internal/hyp") || pkg.Types == nil {
			continue
		}
		obj := pkg.Types.Scope().Lookup("Instrumentation")
		if obj == nil {
			continue
		}
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

func implementsInstr(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
