package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// TelemetryCheck keeps metric registration off hot paths. Registering
// a counter allocates, takes the registry mutex, and concatenates
// label strings — all fine once at startup, all unacceptable inside a
// trap handler. Calls to telemetry.NewCounter/NewGauge/NewHistogram
// are therefore only allowed in:
//
//   - package-level var initializers,
//   - init() functions, and
//   - constructors (functions named New* / new*).
//
// Anything else is a finding. Genuinely cold registration sites (e.g.
// the per-errno error counters, minted only on first failure) carry
// an explicit //ghostlint:ignore with the justification.
type TelemetryCheck struct{}

func (*TelemetryCheck) Name() string { return "telemetrycheck" }

// registrationFuncs are the allocating registry entry points.
var registrationFuncs = map[string]bool{
	"NewCounter":   true,
	"NewGauge":     true,
	"NewHistogram": true,
}

func (tc *TelemetryCheck) Run(u *Universe, pkg *Package) []Finding {
	// The telemetry package itself is the registry implementation.
	if strings.HasSuffix(pkg.Path, "internal/telemetry") {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Package-level var blocks (GenDecl) are allowed
			// wholesale, as are init and constructors.
			name := fd.Name.Name
			if name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if reg := registrationCall(pkg, call); reg != "" {
					out = append(out, Finding{
						Pos:      u.Fset.Position(call.Pos()),
						Analyzer: "telemetrycheck",
						Message: fmt.Sprintf(
							"%s: telemetry.%s outside init/constructor scope; metric registration allocates and locks the registry — hoist it, or justify with //ghostlint:ignore if the path is provably cold",
							name, reg),
					})
				}
				return true
			})
		}
	}
	return out
}

// registrationCall returns the registration function name if call is
// telemetry.New{Counter,Gauge,Histogram}, else "".
func registrationCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !registrationFuncs[sel.Sel.Name] {
		return ""
	}
	// Confirm the qualifier is the telemetry package (by type info
	// when available, by name otherwise).
	if callee := resolveCallee(pkg, call); callee != nil {
		if callee.Pkg() == nil || !strings.HasSuffix(callee.Pkg().Path(), "internal/telemetry") {
			return ""
		}
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == "telemetry" {
		return sel.Sel.Name
	}
	return ""
}
