package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// TelemetryCheck keeps metric registration off hot paths. Registering
// a counter allocates, takes the registry mutex, and concatenates
// label strings — all fine once at startup, all unacceptable inside a
// trap handler. Calls to telemetry.NewCounter/NewGauge/NewHistogram
// are therefore only allowed in:
//
//   - package-level var initializers,
//   - init() functions, and
//   - constructors (functions named New* / new*).
//
// Anything else is a finding. Genuinely cold registration sites (e.g.
// the per-errno error counters, minted only on first failure) carry
// an explicit //ghostlint:ignore with the justification.
//
// The trace package's span-name interning (trace.NewName) has the
// same cost profile and gets the same rule, and span handles get a
// pairing discipline on top: every Begin must reach End on every path
// (see spancheck.go for the walker).
type TelemetryCheck struct{}

func (*TelemetryCheck) Name() string { return "telemetrycheck" }

// registrationFuncs maps the allocating registry entry points to the
// import-path suffix of the package that defines them.
var registrationFuncs = map[string]string{
	"NewCounter":   "internal/telemetry",
	"NewGauge":     "internal/telemetry",
	"NewHistogram": "internal/telemetry",
	"NewName":      "internal/telemetry/trace",
}

// registrationQualifiers are the package qualifiers trusted when type
// info is unavailable (stubbed imports).
var registrationQualifiers = map[string]bool{
	"telemetry": true,
	"trace":     true,
}

func (tc *TelemetryCheck) Run(u *Universe, pkg *Package) []Finding {
	// The telemetry registry and the span tracer are the
	// implementations themselves.
	if strings.HasSuffix(pkg.Path, "internal/telemetry") ||
		strings.HasSuffix(pkg.Path, "internal/telemetry/trace") {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Span pairing applies to every function, constructors
			// included — a leaked span corrupts the lane stack no
			// matter where it was begun.
			sa := &spanAnalysis{u: u, pkg: pkg, out: &out, fname: fd.Name.Name}
			sa.analyzeFuncDecl(fd)

			// Package-level var blocks (GenDecl) are allowed
			// wholesale, as are init and constructors.
			name := fd.Name.Name
			if name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if reg := registrationCall(pkg, call); reg != "" {
					out = append(out, Finding{
						Pos:      u.Fset.Position(call.Pos()),
						Analyzer: "telemetrycheck",
						Message: fmt.Sprintf(
							"%s: %s outside init/constructor scope; registration allocates and locks the registry/intern table — hoist it, or justify with //ghostlint:ignore if the path is provably cold",
							name, reg),
					})
				}
				return true
			})
		}
	}
	return out
}

// registrationCall returns the qualified registration function name if
// call is telemetry.New{Counter,Gauge,Histogram} or trace.NewName,
// else "".
func registrationCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	wantPkg, ok := registrationFuncs[sel.Sel.Name]
	if !ok {
		return ""
	}
	// Confirm the qualifier is the defining package (by type info when
	// available, by name otherwise).
	if callee := resolveCallee(pkg, call); callee != nil {
		if callee.Pkg() == nil || !strings.HasSuffix(callee.Pkg().Path(), wantPkg) {
			return ""
		}
		return callee.Pkg().Name() + "." + sel.Sel.Name
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && registrationQualifiers[id.Name] {
		return id.Name + "." + sel.Sel.Name
	}
	return ""
}
