package preempt

import (
	"sort"
	"testing"
)

func TestGeneratedTable(t *testing.T) {
	pts := Points()
	if len(pts) == 0 {
		t.Fatal("generated table is empty")
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Kind < b.Kind
	}) {
		t.Error("table not sorted by (file, line, col, kind)")
	}
	seen := map[uint64]bool{}
	for _, p := range pts {
		if p.ID == 0 {
			t.Errorf("%s:%d has zero ID", p.File, p.Line)
		}
		if seen[p.ID] {
			t.Errorf("duplicate ID %#x", p.ID)
		}
		seen[p.ID] = true
		switch p.Kind {
		case KindLockAcquire, KindLockRelease, KindTLBI, KindVisitorStep:
		default:
			t.Errorf("%s:%d has unknown kind %q", p.File, p.Line, p.Kind)
		}
	}
}

func TestByIDAndByKind(t *testing.T) {
	pts := Points()
	for _, p := range pts {
		got, ok := ByID(p.ID)
		if !ok || got != p {
			t.Fatalf("ByID(%#x) = %+v, %v; want %+v", p.ID, got, ok, p)
		}
	}
	if _, ok := ByID(0xdeadbeef); ok {
		t.Error("ByID found a point for an unknown ID")
	}
	total := 0
	for _, k := range []Kind{KindLockAcquire, KindLockRelease, KindTLBI, KindVisitorStep} {
		byKind := ByKind(k)
		for _, p := range byKind {
			if p.Kind != k {
				t.Errorf("ByKind(%s) returned %+v", k, p)
			}
		}
		total += len(byKind)
	}
	if total != len(pts) {
		t.Errorf("ByKind partitions cover %d points, table has %d", total, len(pts))
	}
	// The table must contain all four kinds: a missing kind means the
	// extractor lost a whole class of interleaving sites.
	for _, k := range []Kind{KindLockAcquire, KindLockRelease, KindTLBI, KindVisitorStep} {
		if len(ByKind(k)) == 0 {
			t.Errorf("no %s points in the table", k)
		}
	}
}

func TestHookFire(t *testing.T) {
	p := Points()[0]

	// Fast path: no hook, no counting — must be safe.
	Fire(p.ID)
	Fire(0xdeadbeef)

	var fired []uint64
	SetHook(func(pt Point) { fired = append(fired, pt.ID) })
	defer SetHook(nil)
	Fire(p.ID)
	Fire(0xdeadbeef) // unknown ID: ignored, hook not called
	if len(fired) != 1 || fired[0] != p.ID {
		t.Errorf("hook saw %v, want exactly [%#x]", fired, p.ID)
	}

	SetHook(nil)
	Fire(p.ID)
	if len(fired) != 1 {
		t.Error("hook fired after being cleared")
	}
}

func TestCounting(t *testing.T) {
	p, q := Points()[0], Points()[1]
	EnableCounting()
	defer DisableCounting()

	Fire(p.ID)
	Fire(p.ID)
	Fire(q.ID)
	Fire(0xdeadbeef)
	if got := Hits(p.ID); got != 2 {
		t.Errorf("Hits(p) = %d, want 2", got)
	}
	if got := Hits(q.ID); got != 1 {
		t.Errorf("Hits(q) = %d, want 1", got)
	}
	if got := Hits(0xdeadbeef); got != 0 {
		t.Errorf("unknown ID counted: %d", got)
	}

	DisableCounting()
	Fire(p.ID)
	if got := Hits(p.ID); got != 2 {
		t.Errorf("counting survived DisableCounting: Hits(p) = %d", got)
	}

	// Re-enabling clears the counters.
	EnableCounting()
	if got := Hits(p.ID); got != 0 {
		t.Errorf("EnableCounting did not clear: Hits(p) = %d", got)
	}
}
