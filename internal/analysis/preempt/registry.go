// Package preempt is the runtime half of ghostlint's preemption-point
// extraction: a checked-in table (points_gen.go, regenerated with
// `go run ./cmd/ghostlint -write-preempt` and drift-gated in CI) of
// every lock acquire/release, TLBI emission, and page-table visitor
// step in the module, plus a tiny registry for instrumenting them.
//
// This is the hook list ROADMAP item 1's deterministic multi-CPU
// scheduler consumes: a schedule is a sequence of point IDs at which
// control transfers between virtual CPUs, and because IDs are
// content-addressed (hash of kind and source position) a recorded
// schedule replays bit-identically as long as the source is unchanged
// — and fails loudly, rather than silently diverging, when it is not.
//
// The registry is deliberately minimal: Points/ByID/ByKind for
// enumeration, SetHook + Fire for instrumentation. Fire with no hook
// installed is a few nanoseconds (one atomic load, one counter add),
// so call sites can be instrumented unconditionally.
package preempt

import (
	"sync"
	"sync/atomic"
)

// Kind classifies a preemption point. The values mirror the analysis
// package's Kind* strings (the generator writes these constants).
type Kind string

const (
	// KindLockAcquire is a spinlock acquisition — a Lock/TryLock call
	// or a lock*-helper call on the hypervisor.
	KindLockAcquire Kind = "lock-acquire"
	// KindLockRelease is the matching release.
	KindLockRelease Kind = "lock-release"
	// KindTLBI is a TLB-invalidation emission — one edge of a
	// break-before-make window.
	KindTLBI Kind = "tlbi"
	// KindVisitorStep is one per-entry callback of a page-table walk.
	KindVisitorStep Kind = "visitor-step"
)

// Point is one statically-extracted preemption point.
type Point struct {
	// ID is stable across builds of identical source: the FNV-1a hash
	// of "kind|file|line|col".
	ID uint64
	// Kind classifies the event at this point.
	Kind Kind
	// Component is the ranked lock component for lock points, ""
	// otherwise.
	Component string
	// Func is the enclosing function.
	Func string
	// File is module-root-relative; Line/Col locate the call.
	File string
	Line int
	Col  int
}

// Points returns the full table, sorted by (file, line, col). The
// slice is shared — callers must not modify it.
func Points() []Point { return generatedPoints }

var (
	indexOnce sync.Once
	byID      map[uint64]*Point
	byKind    map[Kind][]Point
)

func buildIndex() {
	byID = make(map[uint64]*Point, len(generatedPoints))
	byKind = make(map[Kind][]Point)
	for i := range generatedPoints {
		p := &generatedPoints[i]
		byID[p.ID] = p
		byKind[p.Kind] = append(byKind[p.Kind], *p)
	}
}

// ByID looks up a point by its stable ID.
func ByID(id uint64) (Point, bool) {
	indexOnce.Do(buildIndex)
	p, ok := byID[id]
	if !ok {
		return Point{}, false
	}
	return *p, true
}

// ByKind returns the points of one kind, in table order. The slice is
// shared — callers must not modify it.
func ByKind(k Kind) []Point {
	indexOnce.Do(buildIndex)
	return byKind[k]
}

// Hook observes one preemption-point crossing. A deterministic
// scheduler's hook blocks the calling virtual CPU here until the
// schedule says it may proceed.
type Hook func(p Point)

var hook atomic.Pointer[Hook]

// SetHook installs the global hook (nil uninstalls). Installation is
// atomic with respect to concurrent Fire calls.
func SetHook(h Hook) {
	if h == nil {
		hook.Store(nil)
		return
	}
	hook.Store(&h)
}

// hits counts Fire calls per point, keyed by ID. Plain map with a
// mutex: Fire on the no-hook fast path does not touch it unless
// counting is enabled.
var (
	hitsMu      sync.Mutex
	hitsEnabled atomic.Bool
	hits        map[uint64]uint64
)

// EnableCounting turns on per-point hit counters (cleared on enable).
func EnableCounting() {
	hitsMu.Lock()
	hits = make(map[uint64]uint64)
	hitsMu.Unlock()
	hitsEnabled.Store(true)
}

// DisableCounting turns counters off.
func DisableCounting() { hitsEnabled.Store(false) }

// Hits returns the number of Fire calls for a point since counting
// was enabled.
func Hits(id uint64) uint64 {
	hitsMu.Lock()
	defer hitsMu.Unlock()
	return hits[id]
}

// Fire reports that execution reached the point with the given ID.
// Unknown IDs are ignored (a stale caller against a regenerated table
// must not crash the hypervisor). With no hook installed and counting
// off this is two atomic loads.
func Fire(id uint64) {
	h := hook.Load()
	counting := hitsEnabled.Load()
	if h == nil && !counting {
		return
	}
	p, ok := ByID(id)
	if !ok {
		return
	}
	if counting {
		hitsMu.Lock()
		hits[id]++
		hitsMu.Unlock()
	}
	if h != nil {
		(*h)(p)
	}
}
