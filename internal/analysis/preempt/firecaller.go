package preempt

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// Reserved pseudo-point IDs. The deterministic scheduler records
// decisions at places that are not source positions — the boundary
// between two trace ops, and the re-grant after a vCPU blocked on a
// contended spinlock. They get fixed small IDs far below any FNV-1a
// hash; init-time indexing panics if a generated point ever collides.
const (
	// PointBoundary marks an op-boundary decision: the vCPU finished
	// one trace op and parks before starting the next (also the
	// stream-start park before its first op).
	PointBoundary uint64 = 1
	// PointLockWait marks a vCPU resuming after it blocked on a
	// spinlock another vCPU held.
	PointLockWait uint64 = 2
)

// Known reports whether id is a table point or a reserved
// pseudo-point — the validity check for replayed schedules.
func Known(id uint64) bool {
	if id == PointBoundary || id == PointLockWait {
		return true
	}
	_, ok := ByID(id)
	return ok
}

// Armed reports whether a hook is installed. Call sites whose
// instrumentation has a per-call setup cost (the pgtable walker wraps
// its visitor) use it to skip that cost on unscheduled runs.
func Armed() bool { return hook.Load() != nil }

// frameKey locates a table point from a runtime call frame: frames
// carry absolute file paths and no column, so the index is keyed by
// base name + line + kind and each candidate is verified against the
// frame's full path suffix.
type frameKey struct {
	base string
	line int
	kind Kind
}

var (
	frameOnce  sync.Once
	frameIndex map[frameKey]*Point
)

func buildFrameIndex() {
	frameIndex = make(map[frameKey]*Point, len(generatedPoints))
	for i := range generatedPoints {
		p := &generatedPoints[i]
		if p.ID == PointBoundary || p.ID == PointLockWait {
			panic(fmt.Sprintf("preempt: generated point %s:%d collides with reserved pseudo-point ID %d",
				p.File, p.Line, p.ID))
		}
		k := frameKey{base: pathBase(p.File), line: p.Line, kind: p.Kind}
		// Two same-kind points on one line (rare — a multi-call line)
		// resolve to the leftmost deterministically.
		if prev, ok := frameIndex[k]; !ok || p.Col < prev.Col {
			frameIndex[k] = p
		}
	}
}

// FireCaller fires the table point of the given kind found on the
// calling stack. The instrumentation primitives (spinlock Lock/Unlock,
// the arch TLB invalidations, the pgtable visitor dispatch) call it
// instead of Fire with an inline ID: the event's table identity is the
// *call site* — possibly several frames up, through the hypervisor's
// lock helpers — and resolving it from the stack keeps the primitives'
// own source files out of the table's content addressing.
//
// Of all matching frames the outermost wins: for `hv.lockHost(cpu)`
// both the helper's internal `Lock()` line and the hypercall's call
// line are table points, and the caller-specific one names the window
// a schedule actually distinguishes. Disarmed (no hook, no counting)
// this is the same two atomic loads as Fire.
func FireCaller(kind Kind) {
	h := hook.Load()
	counting := hitsEnabled.Load()
	if h == nil && !counting {
		return
	}
	frameOnce.Do(buildFrameIndex)
	var pcs [32]uintptr
	n := runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	var match *Point
	for {
		f, more := frames.Next()
		if f.Line > 0 {
			if p, ok := frameIndex[frameKey{base: pathBase(f.File), line: f.Line, kind: kind}]; ok &&
				strings.HasSuffix(f.File, "/"+p.File) {
				match = p // keep the latest: outermost matching frame
			}
		}
		if !more {
			break
		}
	}
	if match == nil {
		return
	}
	if counting {
		hitsMu.Lock()
		hits[match.ID]++
		hitsMu.Unlock()
	}
	if h != nil {
		(*h)(*match)
	}
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
