// Package analysis implements ghostlint, the repository's static
// lock-discipline and spec-invariant analyzer suite (run by
// cmd/ghostlint and the CI lint job).
//
// The paper's oracle records component abstractions exactly at lock
// acquire/release (§3.2), so the specification's ownership reasoning
// is only as sound as the lock discipline of the code under test.
// This package mechanizes that discipline:
//
//   - lockcheck: paired Lock/Unlock on every path (preferring defer),
//     //ghost:requires annotations honoured at call sites, and
//     acquisition order following the declared rank table
//     (vms < guest < host < hyp).
//   - hookcheck: spinlock Hooks callbacks and under-lock
//     Instrumentation methods must not acquire any spinlock —
//     deadlock by construction.
//   - ptecheck: raw descriptor bit-twiddling on PTE values is only
//     legal inside internal/arch; everyone else uses the accessors.
//   - telemetrycheck: metric registration only at init/constructor
//     scope, never on a hot path.
//   - snapshotcheck: captured snapshots (Capture*/Checkpoint handles)
//     must reach a Restore*/Release* or escape the function, and
//     Restore*-named code outside internal/arch must not write frames
//     directly — the CoW baseline machinery owns frame restoration.
//   - guardcheck: struct fields annotated //ghost:guards lock=<comp>
//     may only be read or written while that component lock is held
//     (per the same held-lock interpretation lockcheck runs, extended
//     with per-function lock-effect summaries) — a static race
//     detector over the declared shared state.
//   - bbmcheck: between an invalidating page-table entry store (break)
//     and the next valid store to the same entry (make) a TLBI must be
//     emitted, and valid entries are never overwritten in place — the
//     static twin of the ghost oracle's FailStaleTLB check.
//
// Annotation grammar (on a function's doc comment):
//
//	//ghost:requires lock=<vms|guest|host|hyp>   (repeatable)
//	//ghost:requires lock=dynamic   runtime-validated; body assumes held
//	//ghost:requires lock=owner     pgtable methods; lock resolved from
//	                                the receiver at the call site
//
// and on a struct field (doc comment or trailing line comment):
//
//	//ghost:guards lock=<vms|guest|host|hyp>   held-component guard
//	//ghost:guards lock=owner   any ranked discipline lock qualifies
//	//ghost:guards lock=self    only methods of the declaring type
//
// Suppression:
//
//	//ghostlint:ignore <analyzer...> <reason>
//
// on the finding's line, the line above it, or the enclosing
// function's doc comment. The -strict flag of cmd/ghostlint disables
// suppressions (and reports stale directives that cover no finding);
// CI uses that to prove the seeded internal/bugdemo inversion is
// still detected.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// An Analyzer checks one package of an already-loaded Universe.
type Analyzer interface {
	Name() string
	Run(u *Universe, pkg *Package) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []Analyzer {
	return []Analyzer{
		&LockCheck{},
		&GuardCheck{},
		&BBMCheck{},
		&HookCheck{},
		&PTECheck{},
		&TelemetryCheck{},
		&SnapshotCheck{},
	}
}

// AnalyzerNames lists the valid analyzer names (for suppression
// parsing).
func AnalyzerNames() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		m[a.Name()] = true
	}
	return m
}

// Requires is a parsed //ghost:requires annotation.
type Requires struct {
	Comps   []string // concrete component keys, in rank order
	Dynamic bool     // lock=dynamic
	Owner   bool     // lock=owner (pgtable: resolved from receiver)
}

// parseRequires extracts the //ghost:requires clauses from a doc
// comment; nil if none. Unknown lock= values are reported so a typo'd
// annotation cannot silently check nothing.
func parseRequires(doc *ast.CommentGroup) (*Requires, error) {
	if doc == nil {
		return nil, nil
	}
	var req *Requires
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//ghost:requires")
		if !ok {
			continue
		}
		if req == nil {
			req = &Requires{}
		}
		for _, field := range strings.Fields(rest) {
			val, ok := strings.CutPrefix(field, "lock=")
			if !ok {
				return nil, fmt.Errorf("ghost:requires: unrecognized field %q", field)
			}
			switch val {
			case "dynamic":
				req.Dynamic = true
			case "owner":
				req.Owner = true
			default:
				if _, ok := LockRanks[val]; !ok {
					return nil, fmt.Errorf("ghost:requires: unknown lock %q", val)
				}
				req.Comps = append(req.Comps, val)
			}
		}
	}
	if req != nil {
		sort.Slice(req.Comps, func(i, j int) bool {
			return LockRanks[req.Comps[i]] < LockRanks[req.Comps[j]]
		})
	}
	return req, nil
}

// Guard is a parsed //ghost:guards annotation on a struct field.
type Guard struct {
	// Comp is the component lock that must be held (one of the
	// LockRanks keys); empty for owner/self guards.
	Comp string
	// Owner: any ranked discipline lock qualifies — the field belongs
	// to whichever component the enclosing object serves (pgtable).
	Owner bool
	// Self: the field is private to the declaring type's methods
	// (which serialize access through their own mutex).
	Self bool
	// DeclType is the type-name object of the declaring struct, and
	// TypeName/FieldName render it for diagnostics.
	DeclType  types.Object
	TypeName  string
	FieldName string
}

// Desc renders the guard value as written in the annotation.
func (g *Guard) Desc() string {
	switch {
	case g.Owner:
		return "owner"
	case g.Self:
		return "self"
	}
	return g.Comp
}

// parseGuards extracts a //ghost:guards clause from a field's comment
// group; nil if none.
func parseGuards(doc *ast.CommentGroup) (*Guard, error) {
	if doc == nil {
		return nil, nil
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//ghost:guards")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) != 1 {
			return nil, fmt.Errorf("ghost:guards: want exactly one lock= clause, got %q", rest)
		}
		val, ok := strings.CutPrefix(fields[0], "lock=")
		if !ok {
			return nil, fmt.Errorf("ghost:guards: unrecognized field %q", fields[0])
		}
		switch val {
		case "owner":
			return &Guard{Owner: true}, nil
		case "self":
			return &Guard{Self: true}, nil
		default:
			if _, ok := LockRanks[val]; !ok {
				return nil, fmt.Errorf("ghost:guards: unknown lock %q", val)
			}
			return &Guard{Comp: val}, nil
		}
	}
	return nil, nil
}

// LockEffect summarizes a function's net effect on the held-lock set:
// ranked components held at return that were not held at entry
// (Acquires) and components it releases on the caller's behalf
// (Releases). Summaries exist only for functions whose lock
// operations all sit in straight-line top-level statements; anything
// conditional gets no summary and callers treat it as lock-neutral.
type LockEffect struct {
	Acquires []string
	Releases []string
}

func (e *LockEffect) equal(o *LockEffect) bool {
	if len(e.Acquires) != len(o.Acquires) || len(e.Releases) != len(o.Releases) {
		return false
	}
	for i, c := range e.Acquires {
		if o.Acquires[i] != c {
			return false
		}
	}
	for i, c := range e.Releases {
		if o.Releases[i] != c {
			return false
		}
	}
	return true
}

// funcSource ties a function's syntax to its package.
type funcSource struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// Universe is the cross-package index built once after loading:
// annotations, the module-internal call graph, and the derived
// may-panic and acquires-spinlock sets.
type Universe struct {
	Fset *token.FileSet
	Pkgs []*Package

	requires  map[types.Object]*Requires
	funcDecls map[types.Object]*funcSource

	// guards maps struct-field objects to their //ghost:guards
	// annotation.
	guards map[types.Object]*Guard

	// effects holds the call-graph lock-effect summaries (guardcheck's
	// interprocedural extension of the lockcheck walker).
	effects map[types.Object]*LockEffect

	// mayPanic holds functions that can reach the hypervisor's panic
	// channel ((*Hypervisor).hypPanic) — the paths across which
	// lockcheck insists unlocks are deferred. Functions containing
	// recover() are propagation barriers.
	mayPanic map[types.Object]bool

	// acquires holds functions that (transitively) acquire a spinlock,
	// mapped to a human-readable witness for hookcheck reports.
	acquires map[types.Object]string

	// Findings raised while building the universe itself (bad
	// annotations).
	metaFindings []Finding
}

// NewUniverse indexes everything the loader has loaded. Call it after
// all requested directories are in.
func NewUniverse(ld *Loader) *Universe {
	u := &Universe{
		Fset:      ld.Fset,
		Pkgs:      ld.Packages(),
		requires:  make(map[types.Object]*Requires),
		funcDecls: make(map[types.Object]*funcSource),
		guards:    make(map[types.Object]*Guard),
		effects:   make(map[types.Object]*LockEffect),
		mayPanic:  make(map[types.Object]bool),
		acquires:  make(map[types.Object]string),
	}
	for _, pkg := range u.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if gd, ok := d.(*ast.GenDecl); ok {
					u.indexGuards(pkg, gd)
					continue
				}
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				u.funcDecls[obj] = &funcSource{decl: fd, pkg: pkg}
				req, err := parseRequires(fd.Doc)
				if err != nil {
					u.metaFindings = append(u.metaFindings, Finding{
						Pos:      u.Fset.Position(fd.Pos()),
						Analyzer: "lockcheck",
						Message:  err.Error(),
					})
					continue
				}
				if req != nil {
					u.requires[obj] = req
				}
			}
		}
	}
	u.buildMayPanic()
	u.buildAcquires()
	u.buildLockEffects()
	return u
}

// indexGuards records //ghost:guards annotations from the struct
// fields of a type declaration.
func (u *Universe) indexGuards(pkg *Package, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			g, err := parseGuards(field.Doc)
			if g == nil && err == nil {
				g, err = parseGuards(field.Comment)
			}
			if err != nil {
				u.metaFindings = append(u.metaFindings, Finding{
					Pos:      u.Fset.Position(field.Pos()),
					Analyzer: "guardcheck",
					Message:  err.Error(),
				})
				continue
			}
			if g == nil {
				continue
			}
			g.DeclType = pkg.Info.Defs[ts.Name]
			g.TypeName = ts.Name.Name
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					fg := *g
					fg.FieldName = name.Name
					u.guards[obj] = &fg
				}
			}
		}
	}
}

// GuardOf returns the //ghost:guards annotation on a field object, if
// any.
func (u *Universe) GuardOf(obj types.Object) *Guard { return u.guards[obj] }

// LockEffectOf returns the lock-effect summary for a function object,
// or nil when the function is lock-neutral or too branchy to
// summarize.
func (u *Universe) LockEffectOf(obj types.Object) *LockEffect { return u.effects[obj] }

// buildLockEffects computes, to a fixpoint over the call graph, the
// net lock effect of every function whose ranked lock operations all
// occur as straight-line top-level statements (the wrapper-helper
// shape: lock a component, or release one taken by a sibling helper).
// Functions with conditional locking get no summary — the walker then
// treats their call sites as lock-neutral, which is exactly how
// lockcheck's own per-function analysis already views them.
func (u *Universe) buildLockEffects() {
	// The iteration cap bounds pathological wrapper chains; real
	// chains are one or two deep.
	for iter := 0; iter < 10; iter++ {
		changed := false
		for obj, fs := range u.funcDecls {
			if fs.decl.Body == nil || isLockPrimitive(fs.decl) {
				continue
			}
			eff := u.computeLockEffect(fs)
			old := u.effects[obj]
			switch {
			case eff == nil:
				if old != nil {
					delete(u.effects, obj)
					changed = true
				}
			case old == nil || !old.equal(eff):
				u.effects[obj] = eff
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// computeLockEffect summarizes one function, or returns nil when no
// (sound) summary exists.
func (u *Universe) computeLockEffect(fs *funcSource) *LockEffect {
	net := make(map[string]int)
	handled := 0
	for _, s := range fs.decl.Body.List {
		switch s := s.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(s.X).(*ast.CallExpr)
			if !ok {
				continue
			}
			op, comp, ranked := classifyLockCall(fs.pkg, call)
			switch op {
			case opAcquire:
				if !ranked {
					return nil
				}
				net[comp]++
				handled++
			case opRelease:
				if !ranked {
					return nil
				}
				net[comp]--
				handled++
			default:
				if callee := resolveCallee(fs.pkg, call); callee != nil {
					if eff := u.effects[callee]; eff != nil {
						for _, c := range eff.Acquires {
							net[c]++
						}
						for _, c := range eff.Releases {
							net[c]--
						}
					}
				}
			}
		case *ast.DeferStmt:
			// A deferred release runs at return: it cancels an earlier
			// acquisition in the net-at-return view.
			if op, comp, ranked := classifyLockCall(fs.pkg, s.Call); op == opRelease && ranked {
				net[comp]--
				handled++
			}
		}
	}
	// Bail out when any ranked lock operation hides below the top
	// level (branches, loops, literals): the linear net would be
	// unsound there.
	total := 0
	ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, _, ranked := classifyLockCall(fs.pkg, call); op != opNone && ranked {
				total++
			}
		}
		return true
	})
	if total != handled {
		return nil
	}
	eff := &LockEffect{}
	for comp, n := range net {
		switch {
		case n > 0:
			eff.Acquires = append(eff.Acquires, comp)
		case n < 0:
			eff.Releases = append(eff.Releases, comp)
		}
	}
	if len(eff.Acquires) == 0 && len(eff.Releases) == 0 {
		return nil
	}
	sort.Strings(eff.Acquires)
	sort.Strings(eff.Releases)
	return eff
}

// MetaFindings returns diagnostics from annotation parsing attributed
// to the named analyzer, for the package that declares them.
func (u *Universe) MetaFindings(pkg *Package, analyzer string) []Finding {
	var out []Finding
	for _, f := range u.metaFindings {
		if f.Analyzer != analyzer {
			continue
		}
		for _, af := range pkg.Files {
			pos := u.Fset.Position(af.Pos())
			if pos.Filename == f.Pos.Filename {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// RequiresOf returns the annotation on a function object, if any.
func (u *Universe) RequiresOf(obj types.Object) *Requires { return u.requires[obj] }

// MayPanic reports whether calls to obj can reach hypPanic.
func (u *Universe) MayPanic(obj types.Object) bool { return u.mayPanic[obj] }

// AcquiresSpinlock reports whether obj (transitively) acquires a
// spinlock, with a witness description.
func (u *Universe) AcquiresSpinlock(obj types.Object) (string, bool) {
	w, ok := u.acquires[obj]
	return w, ok
}

// resolveCallee maps a call expression to the function object it
// invokes, or nil for builtins, function values and interface methods
// we cannot resolve statically.
func resolveCallee(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[fun]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if obj := pkg.Info.Uses[fun.Sel]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin
// (panic, recover, ...).
func isBuiltin(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		// Type info missing (stubbed import fallout): trust the name.
		return true
	}
	_, isB := obj.(*types.Builtin)
	return isB
}

// eachCall invokes fn for every call expression in the function body,
// with the resolved callee (nil if unresolvable).
func (u *Universe) eachCall(fs *funcSource, fn func(call *ast.CallExpr, callee types.Object)) {
	if fs.decl.Body == nil {
		return
	}
	ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			fn(call, resolveCallee(fs.pkg, call))
		}
		return true
	})
}

// containsRecover reports whether the function body calls recover()
// at any nesting depth; such functions contain hypervisor panics
// rather than propagating them.
func containsRecover(fs *funcSource) bool {
	found := false
	ast.Inspect(fs.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(fs.pkg, call, "recover") {
			found = true
		}
		return !found
	})
	return found
}

// buildMayPanic seeds the may-panic set from (*Hypervisor).hypPanic —
// the hypervisor's one designated panic channel — and propagates it
// backwards over the call graph to a fixpoint. Ordinary panics
// (assertion panics in spinlock/arch, which indicate harness bugs,
// not guest-reachable exits) are deliberately not seeds: lockcheck's
// panic-safety rule is about hypervisor panics unwinding through held
// locks.
func (u *Universe) buildMayPanic() {
	for obj := range u.funcDecls {
		if obj.Name() == "hypPanic" && obj.Pkg() != nil &&
			strings.HasSuffix(obj.Pkg().Path(), "internal/hyp") {
			u.mayPanic[obj] = true
		}
	}
	if len(u.mayPanic) == 0 {
		return
	}
	barriers := make(map[types.Object]bool)
	for obj, fs := range u.funcDecls {
		if fs.decl.Body != nil && containsRecover(fs) {
			barriers[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fs := range u.funcDecls {
			if u.mayPanic[obj] || barriers[obj] || fs.decl.Body == nil {
				continue
			}
			u.eachCall(fs, func(_ *ast.CallExpr, callee types.Object) {
				if callee != nil && u.mayPanic[callee] && !u.mayPanic[obj] {
					u.mayPanic[obj] = true
					changed = true
				}
			})
		}
	}
}

// buildAcquires computes, to a fixpoint, the set of functions that
// acquire a spinlock directly or through a module-internal call.
// Interface calls are opaque to this analysis; hookcheck documents
// that limit.
func (u *Universe) buildAcquires() {
	for obj, fs := range u.funcDecls {
		if fs.decl.Body == nil {
			continue
		}
		// The spinlock package's own machinery is the primitive, not a
		// violation.
		if strings.HasSuffix(fs.pkg.Path, "internal/spinlock") {
			continue
		}
		u.eachCall(fs, func(call *ast.CallExpr, _ types.Object) {
			if _, ok := u.acquires[obj]; ok {
				return
			}
			if op, comp, _ := classifyLockCall(fs.pkg, call); op == opAcquire {
				u.acquires[obj] = fmt.Sprintf("acquires spinlock %q", comp)
			}
		})
	}
	for changed := true; changed; {
		changed = false
		for obj, fs := range u.funcDecls {
			if _, done := u.acquires[obj]; done || fs.decl.Body == nil {
				continue
			}
			u.eachCall(fs, func(_ *ast.CallExpr, callee types.Object) {
				if callee == nil {
					return
				}
				if _, ok := u.acquires[obj]; ok {
					return
				}
				if _, ok := u.acquires[callee]; ok {
					u.acquires[obj] = fmt.Sprintf("calls %s, which acquires a spinlock", callee.Name())
					changed = true
				}
			})
		}
	}
}

// suppressionIndex records //ghostlint:ignore directives for one
// package: per-line entries plus function-body ranges for directives
// on a function's doc comment.
type suppressionIndex struct {
	// byLine maps filename → line → suppressed analyzer set (nil set
	// means all analyzers).
	byLine map[string]map[int]map[string]bool
	// ranges holds function-scope suppressions.
	ranges []suppRange
	// directives lists every //ghostlint:ignore comment with the span
	// of findings it can cover, for stale-suppression reporting.
	directives []directive
}

type suppRange struct {
	file       string
	start, end int // line range, inclusive
	analyzers  map[string]bool
}

// directive is one //ghostlint:ignore occurrence. A same-line
// directive covers findings on its own line and the one below; a
// function-doc directive covers the body range.
type directive struct {
	pos        token.Position
	file       string
	start, end int // covered line range, inclusive
	analyzers  map[string]bool
	names      string // analyzer list as written, for diagnostics
}

// buildSuppressionIndex scans all comments of the files.
func buildSuppressionIndex(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{byLine: make(map[string]map[int]map[string]bool)}
	valid := AnalyzerNames()
	// docDirective marks directives indexed as function-body ranges,
	// so the comment sweep below does not double-record them.
	docDirective := make(map[token.Pos]bool)
	for _, f := range files {
		// Function-doc directives apply to the whole body.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if set, ok := parseIgnore(c.Text, valid); ok {
					start := fset.Position(fd.Body.Pos())
					end := fset.Position(fd.Body.End())
					idx.ranges = append(idx.ranges, suppRange{
						file: start.Filename, start: start.Line, end: end.Line,
						analyzers: set,
					})
					idx.directives = append(idx.directives, directive{
						pos:  fset.Position(c.Pos()),
						file: start.Filename, start: start.Line, end: end.Line,
						analyzers: set, names: ignoreNames(set),
					})
					docDirective[c.Pos()] = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				set, ok := parseIgnore(c.Text, valid)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = set
				if !docDirective[c.Pos()] {
					idx.directives = append(idx.directives, directive{
						pos:  pos,
						file: pos.Filename, start: pos.Line, end: pos.Line + 1,
						analyzers: set, names: ignoreNames(set),
					})
				}
			}
		}
	}
	return idx
}

// ignoreNames renders a directive's analyzer set for messages.
func ignoreNames(set map[string]bool) string {
	if set == nil {
		return "any analyzer"
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// StaleSuppressions reports //ghostlint:ignore directives of the
// package that cover none of the given findings (which must be the
// full pre-suppression output of every analyzer): a suppression whose
// finding is gone is dead weight that would silently hide a future
// regression at that site. Reported under the meta-analyzer name
// "suppress"; cmd/ghostlint surfaces them in -strict runs and
// TestRepoClean enforces a clean tree.
func StaleSuppressions(pkg *Package, all []Finding) []Finding {
	idx := pkg.supp
	if idx == nil {
		return nil
	}
	var out []Finding
	for _, d := range idx.directives {
		live := false
		for _, f := range all {
			if f.Pos.Filename != d.file || f.Pos.Line < d.start || f.Pos.Line > d.end {
				continue
			}
			if d.analyzers == nil || d.analyzers[f.Analyzer] {
				live = true
				break
			}
		}
		if !live {
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: "suppress",
				Message: fmt.Sprintf(
					"stale //ghostlint:ignore: no %s finding in its scope — remove the directive (or it will mask a future regression here)",
					d.names),
			})
		}
	}
	return out
}

// parseIgnore parses one //ghostlint:ignore comment. The returned set
// is nil when the directive names no specific analyzer (suppress
// all).
func parseIgnore(text string, valid map[string]bool) (map[string]bool, bool) {
	rest, ok := strings.CutPrefix(text, "//ghostlint:ignore")
	if !ok {
		return nil, false
	}
	var set map[string]bool
	for _, f := range strings.Fields(rest) {
		if !valid[f] {
			break // reason text starts here
		}
		if set == nil {
			set = make(map[string]bool)
		}
		set[f] = true
	}
	return set, true
}

// Suppressed reports whether a finding is covered by an ignore
// directive: same line, previous line, or enclosing suppressed
// function body.
func (pkg *Package) Suppressed(f Finding) bool {
	idx := pkg.supp
	if idx == nil {
		return false
	}
	if lines, ok := idx.byLine[f.Pos.Filename]; ok {
		for _, ln := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
			if set, ok := lines[ln]; ok && (set == nil || set[f.Analyzer]) {
				return true
			}
		}
	}
	for _, r := range idx.ranges {
		if r.file == f.Pos.Filename && f.Pos.Line >= r.start && f.Pos.Line <= r.end &&
			(r.analyzers == nil || r.analyzers[f.Analyzer]) {
			return true
		}
	}
	return false
}

// SplitSuppressed partitions findings into (kept, suppressed).
func SplitSuppressed(pkg *Package, fs []Finding) (kept, suppressed []Finding) {
	for _, f := range fs {
		if pkg.Suppressed(f) {
			suppressed = append(suppressed, f)
		} else {
			kept = append(kept, f)
		}
	}
	return kept, suppressed
}

// SortFindings orders findings by position for stable output.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return fs[i].Message < fs[j].Message
	})
}
