package analysis

import (
	"fmt"
	"go/ast"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strings"
)

// Preemption-point extraction (the third analyzer of the concurrency
// suite, though it emits a table rather than findings): ROADMAP item
// 1's deterministic multi-CPU scheduler needs a closed list of the
// program points where interleaving matters. Those are exactly the
// events the other analyzers already model — lock acquire/release
// sites (where the ghost oracle records abstractions and where the
// rank discipline serializes), TLBI emissions (the edges of every
// break-before-make window), and page-table visitor steps (the
// per-entry granularity at which a walk can observe a racing
// mutation). ExtractPreemptPoints walks the loaded universe and
// returns that list with stable content-addressed IDs; cmd/ghostlint
// -write-preempt renders it into internal/analysis/preempt (a Go
// table plus JSON), and -check-preempt gates drift in CI.

// Preemption-point kinds. These mirror (and must stay in sync with)
// the preempt.Kind* constants of the generated package.
const (
	KindLockAcquire = "lock-acquire"
	KindLockRelease = "lock-release"
	KindTLBI        = "tlbi"
	KindVisitorStep = "visitor-step"
)

// PreemptPoint is one statically-extracted scheduling point.
type PreemptPoint struct {
	// ID is the FNV-1a hash of "kind|file|line|col": stable across
	// extractions of identical source, changed whenever the site moves.
	ID uint64
	// Kind is one of the Kind* constants.
	Kind string
	// Component is the ranked lock component for lock points ("" for
	// unranked locks and non-lock kinds).
	Component string
	// Func is the enclosing function's name ("" at file scope, which
	// does not occur for these kinds).
	Func string
	// File is the module-root-relative, slash-separated path.
	File string
	Line int
	Col  int
}

// PointID computes the stable ID for a site. Content addressing by
// (kind, position) means the table needs no allocation counter and
// two independent extractions of the same tree agree ID-for-ID.
func PointID(kind, file string, line, col int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d", kind, file, line, col)
	return h.Sum64()
}

// ExtractPreemptPoints walks every loaded package and collects the
// preemption-point table, sorted by (file, line, col, kind).
//
// Exclusions: testdata trees (not part of the program), the generated
// preempt package itself, and — for the TLBI kind only, matching
// bbmcheck — internal/arch, which implements the TLB rather than
// invoking it.
func ExtractPreemptPoints(u *Universe, modRoot string) []PreemptPoint {
	var pts []PreemptPoint
	for _, pkg := range u.Pkgs {
		if strings.Contains(filepath.ToSlash(pkg.Dir), "/testdata/") ||
			strings.HasSuffix(pkg.Path, "internal/analysis/preempt") {
			continue
		}
		isArch := strings.HasSuffix(pkg.Path, "internal/arch")
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if kind, comp, ok := classifyPoint(pkg, call, isArch); ok {
						pts = append(pts, u.pointAt(modRoot, kind, comp, fd.Name.Name, call))
					}
					return true
				})
			}
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Kind < b.Kind
	})
	return pts
}

// classifyPoint decides whether a call site is a preemption point.
func classifyPoint(pkg *Package, call *ast.CallExpr, isArch bool) (kind, comp string, ok bool) {
	switch op, c, ranked := classifyLockCall(pkg, call); op {
	case opAcquire:
		if !ranked {
			c = ""
		}
		return KindLockAcquire, c, true
	case opRelease:
		if !ranked {
			c = ""
		}
		return KindLockRelease, c, true
	}
	if !isArch && isTLBIEmission(pkg, call) {
		return KindTLBI, "", true
	}
	if isVisitorStep(pkg, call) {
		return KindVisitorStep, "", true
	}
	return "", "", false
}

// isVisitorStep matches v.Fn(ctx) where v is a pgtable.Visitor — the
// per-entry callback invocation of the generic walk.
func isVisitorStep(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Fn" {
		return false
	}
	t := exprType(pkg, sel.X)
	return t != nil && isNamed(t, "internal/pgtable", "Visitor")
}

func (u *Universe) pointAt(modRoot, kind, comp, fname string, n ast.Node) PreemptPoint {
	pos := u.Fset.Position(n.Pos())
	file := pos.Filename
	if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return PreemptPoint{
		ID:        PointID(kind, file, pos.Line, pos.Column),
		Kind:      kind,
		Component: comp,
		Func:      fname,
		File:      file,
		Line:      pos.Line,
		Col:       pos.Column,
	}
}

// kindConst maps a kind string to the preempt package's constant name
// for rendering.
var kindConst = map[string]string{
	KindLockAcquire: "KindLockAcquire",
	KindLockRelease: "KindLockRelease",
	KindTLBI:        "KindTLBI",
	KindVisitorStep: "KindVisitorStep",
}

// RenderPreemptGo renders the generated half of the preempt package.
// Output is deterministic byte-for-byte for a given table — the drift
// gate (ghostlint -check-preempt, TestPreemptTableInSync) depends on
// that.
func RenderPreemptGo(pts []PreemptPoint) []byte {
	var b strings.Builder
	b.WriteString("// Code generated by ghostlint -write-preempt; DO NOT EDIT.\n")
	b.WriteString("\n")
	b.WriteString("package preempt\n")
	b.WriteString("\n")
	b.WriteString("// generatedPoints is the statically-extracted preemption-point\n")
	b.WriteString("// table: every lock acquire/release, TLBI emission, and pgtable\n")
	b.WriteString("// visitor step in the module. Regenerate with\n")
	b.WriteString("//\n")
	b.WriteString("//\tgo run ./cmd/ghostlint -write-preempt\n")
	b.WriteString("var generatedPoints = []Point{\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "\t{ID: %#016x, Kind: %s, Component: %q, Func: %q, File: %q, Line: %d, Col: %d},\n",
			p.ID, kindConst[p.Kind], p.Component, p.Func, p.File, p.Line, p.Col)
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

// RenderPreemptJSON renders the same table as JSON for non-Go
// consumers (the CI annotation step, future schedule-fuzzing tools).
// Hand-rendered to keep field order and formatting deterministic; IDs
// are hex strings because JSON numbers cannot carry 64 bits exactly.
func RenderPreemptJSON(pts []PreemptPoint) []byte {
	var b strings.Builder
	b.WriteString("[\n")
	for i, p := range pts {
		comma := ","
		if i == len(pts)-1 {
			comma = ""
		}
		fmt.Fprintf(&b,
			"  {\"id\": \"%#016x\", \"kind\": %q, \"component\": %q, \"func\": %q, \"file\": %q, \"line\": %d, \"col\": %d}%s\n",
			p.ID, p.Kind, p.Component, p.Func, p.File, p.Line, p.Col, comma)
	}
	b.WriteString("]\n")
	return []byte(b.String())
}
