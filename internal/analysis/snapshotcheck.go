package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SnapshotCheck enforces the copy-on-write snapshot discipline that
// the fork-per-exec campaign engine depends on:
//
//  1. A captured snapshot must be used. The Capture*/Checkpoint APIs
//     (arch.MemBaseline, hyp.Base, ghost.Recorder) return handles the
//     caller is expected to restore from (or hand to someone who
//     will); a capture whose result is discarded, or kept in a local
//     that never reaches a Restore*/Release* call and never escapes
//     the function, is dead weight that silently pins frame data —
//     and usually means a restore call was forgotten.
//
//  2. Restore-path code outside internal/arch may not write frames
//     directly. arch.MemBaseline/MemDelta restore frames while
//     keeping per-frame write generations coherent with the TLB,
//     ghost caches and dirty tracking; a raw Memory.Write64/WritePTE/
//     ZeroPage/ZeroWords inside a Restore*-named function bypasses
//     that protocol and can produce a torn restore the generation
//     machinery never notices. (The conformance differ would catch it
//     probabilistically at runtime; this catches it at lint time.)
type SnapshotCheck struct{}

func (*SnapshotCheck) Name() string { return "snapshotcheck" }

// snapshotPkgs are the package-path suffixes whose Capture* APIs
// return snapshot handles.
var snapshotPkgs = []string{
	"internal/arch",
	"internal/hyp",
	"internal/core/ghost",
}

// frameWriters are the arch.Memory methods that mutate frame words.
var frameWriters = map[string]bool{
	"Write64":   true,
	"WritePTE":  true,
	"ZeroPage":  true,
	"ZeroWords": true,
}

func (sc *SnapshotCheck) Run(u *Universe, pkg *Package) []Finding {
	var out []Finding
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:      u.Fset.Position(n.Pos()),
			Analyzer: "snapshotcheck",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc.checkCaptures(pkg, fd, report)
			if !strings.HasSuffix(pkg.Path, "internal/arch") &&
				strings.HasPrefix(strings.ToLower(fd.Name.Name), "restore") {
				sc.checkRestoreWrites(pkg, fd, report)
			}
		}
	}
	return out
}

// checkCaptures flags capture results that are dropped or parked in a
// local that never reaches a restore/release and never escapes.
func (sc *SnapshotCheck) checkCaptures(pkg *Package, fd *ast.FuncDecl,
	report func(ast.Node, string, ...any)) {
	// Locals holding a captured snapshot, mapped to the capture call
	// for reporting.
	held := map[types.Object]*ast.CallExpr{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && sc.isCaptureCall(pkg, call) {
				report(call, "snapshot captured and discarded; keep the handle and restore or release it")
			}
		case *ast.AssignStmt:
			// v := Capture() / v, ok := Capture(): the snapshot is
			// result 0, bound to Lhs[0].
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !sc.isCaptureCall(pkg, call) || len(n.Lhs) == 0 {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true // stored into a field/index: escapes
			}
			if id.Name == "_" {
				report(call, "snapshot captured into the blank identifier; keep the handle and restore or release it")
				return true
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				held[obj] = call
			}
		}
		return true
	})

	for obj, call := range held {
		if !sc.consumed(pkg, fd, obj, call) {
			report(call, "captured snapshot %q never restored, released, or passed on", obj.Name())
		}
	}
}

// consumed reports whether the local snapshot object reaches a
// Restore*/Release* call or escapes the function (returned, passed as
// an argument, stored, aliased, or closed over).
func (sc *SnapshotCheck) consumed(pkg *Package, fd *ast.FuncDecl,
	obj types.Object, capture *ast.CallExpr) bool {
	usedAt := func(id *ast.Ident) bool { return pkg.Info.Uses[id] == obj }
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if n == capture {
				return false
			}
			// Receiver of a restore/release method.
			if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel {
				if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID && usedAt(id) {
					name := strings.ToLower(sel.Sel.Name)
					if strings.HasPrefix(name, "restore") || strings.HasPrefix(name, "release") {
						ok = true
						return false
					}
				}
			}
			// Passed as an argument: responsibility transfers.
			for _, arg := range n.Args {
				if id, isID := ast.Unparen(arg).(*ast.Ident); isID && usedAt(id) {
					ok = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, isID := ast.Unparen(r).(*ast.Ident); isID && usedAt(id) {
					ok = true
					return false
				}
			}
		case *ast.AssignStmt:
			// Re-assigned elsewhere (field, map slot, another name):
			// the handle escapes our local view.
			for _, r := range n.Rhs {
				if id, isID := ast.Unparen(r).(*ast.Ident); isID && usedAt(id) {
					ok = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, isKV := e.(*ast.KeyValueExpr); isKV {
					e = kv.Value
				}
				if id, isID := ast.Unparen(e).(*ast.Ident); isID && usedAt(id) {
					ok = true
					return false
				}
			}
		}
		return true
	})
	return ok
}

// isCaptureCall reports whether the call invokes a snapshot-capture
// API: a function named Capture* or Checkpoint declared in one of the
// snapshot packages.
func (sc *SnapshotCheck) isCaptureCall(pkg *Package, call *ast.CallExpr) bool {
	callee := resolveCallee(pkg, call)
	if callee == nil {
		return false
	}
	name := callee.Name()
	if !strings.HasPrefix(name, "Capture") && name != "Checkpoint" {
		return false
	}
	if callee.Pkg() == nil {
		return false
	}
	for _, sfx := range snapshotPkgs {
		if strings.HasSuffix(callee.Pkg().Path(), sfx) {
			return true
		}
	}
	return false
}

// checkRestoreWrites flags direct frame writes inside Restore*-named
// functions outside internal/arch.
func (sc *SnapshotCheck) checkRestoreWrites(pkg *Package, fd *ast.FuncDecl,
	report func(ast.Node, string, ...any)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !frameWriters[sel.Sel.Name] {
			return true
		}
		if t := exprType(pkg, sel.X); t != nil && !isNamed(t, "internal/arch", "Memory") {
			return true
		}
		report(call, "restore path writes frames directly (Memory.%s); go through arch.MemBaseline so write generations stay coherent", sel.Sel.Name)
		return true
	})
}
