// Package bbmcheck_bad is golden-file input for the bbmcheck
// analyzer: every line carrying a "want:bbmcheck" marker comment must
// be flagged, and no unmarked line may be — in particular the legal
// break→TLBI→make sequence and the plain unmap must stay clean.
package bbmcheck_bad

import "ghostspec/internal/arch"

// remapNoTLBI breaks an entry and re-makes it valid with no
// invalidation between the stores (rule B1).
func remapNoTLBI(m *arch.Memory, table arch.PhysAddr, pa arch.PhysAddr) {
	m.WritePTE(table, 3, 0)
	m.WritePTE(table, 3, arch.MakeLeaf(arch.LastLevel, pa, arch.Attrs{})) // want:bbmcheck
}

// overwriteInPlace replaces a valid descriptor without breaking it
// first (rule B2) — forbidden even with a TLBI, since a walk may
// cache either descriptor.
func overwriteInPlace(m *arch.Memory, tlb *arch.TLB, table arch.PhysAddr, pa arch.PhysAddr) {
	m.WritePTE(table, 4, arch.MakeLeaf(arch.LastLevel, pa, arch.Attrs{}))
	tlb.InvalidateRange(0, 0, arch.PageSize)
	m.WritePTE(table, 4, arch.MakeTable(pa)) // want:bbmcheck
}

// remapProper is the legal break→TLBI→make sequence.
func remapProper(m *arch.Memory, tlb *arch.TLB, table arch.PhysAddr, pa arch.PhysAddr) {
	m.WritePTE(table, 5, 0)
	tlb.InvalidateRange(0, 0, arch.PageSize)
	m.WritePTE(table, 5, arch.MakeLeaf(arch.LastLevel, pa, arch.Attrs{}))
}

// unmapOnly leaves the entry invalid: an unmap, not a violation.
func unmapOnly(m *arch.Memory, table arch.PhysAddr) {
	m.WritePTE(table, 6, 0)
}

// branchBreak: the pending break survives the join (losing it would
// hide the missing TLBI behind the branch), so the make after the if
// is still flagged.
func branchBreak(m *arch.Memory, table arch.PhysAddr, pa arch.PhysAddr, cond bool) {
	if cond {
		m.WritePTE(table, 7, 0)
	}
	m.WritePTE(table, 7, arch.MakeLeaf(arch.LastLevel, pa, arch.Attrs{})) // want:bbmcheck
}

// branchTLBI invalidates on both arms before the make: clean.
func branchTLBI(m *arch.Memory, tlb *arch.TLB, table arch.PhysAddr, pa arch.PhysAddr, wide bool) {
	m.WritePTE(table, 8, 0)
	if wide {
		tlb.InvalidateAll()
	} else {
		tlb.InvalidateRange(0, 0, arch.PageSize)
	}
	m.WritePTE(table, 8, arch.MakeLeaf(arch.LastLevel, pa, arch.Attrs{}))
}

// deferredTLBI runs the invalidation at return — after the make, too
// late to close the window.
func deferredTLBI(m *arch.Memory, tlb *arch.TLB, table arch.PhysAddr, pa arch.PhysAddr) {
	defer tlb.InvalidateRange(0, 0, arch.PageSize)
	m.WritePTE(table, 9, 0)
	m.WritePTE(table, 9, arch.MakeLeaf(arch.LastLevel, pa, arch.Attrs{})) // want:bbmcheck
}
