// Package telemetrycheck_bad is golden-file input for the
// telemetrycheck analyzer: metric registration outside
// init/constructor scope.
package telemetrycheck_bad

import "ghostspec/internal/telemetry"

// perTrapCounter registers a metric on what would be a hot path.
func perTrapCounter(name string) {
	c := telemetry.NewCounter("trap_" + name) // want:telemetrycheck
	c.Inc()
}

// trackDepth registers a gauge mid-function.
func trackDepth(depth int) {
	telemetry.NewGauge("depth").Set(int64(depth)) // want:telemetrycheck
}

// NewProbe is constructor scope: registration here is legal.
func NewProbe(name string) *telemetry.Counter {
	return telemetry.NewCounter("probe_" + name)
}

// hot is legal too: it only updates an already-registered metric.
func hot(c *telemetry.Counter) {
	c.Inc()
}
