// Span-tracer golden input for the telemetrycheck analyzer: NewName
// interning outside init/constructor scope, and Begin/End pairing
// violations the span walker must catch.
package telemetrycheck_bad

import "ghostspec/internal/telemetry/trace"

// spanGood is package-var scope: interning here is legal.
var spanGood = trace.NewName("good")

// perVMSpanName interns a span name on what would be a per-exec path.
func perVMSpanName(vm string) trace.Name {
	return trace.NewName("vm:" + vm) // want:telemetrycheck
}

// newSpanSet is constructor scope: interning here is legal.
func newSpanSet(component string) trace.Name {
	return trace.NewName("lock.wait:" + component)
}

// discardedHandle drops the Begin handle on the floor; the span never
// ends and the lane's open stack leaks.
func discardedHandle(tr *trace.Tracer) {
	tr.Begin(0, spanGood) // want:telemetrycheck
}

// blankHandle is the same leak spelled with a blank assignment.
func blankHandle(tr *trace.Tracer) {
	_ = tr.Begin(0, spanGood) // want:telemetrycheck
}

// missingEndOnError ends the span on the happy path only; the early
// return leaks it.
func missingEndOnError(tr *trace.Tracer, fail bool) int {
	sp := tr.Begin(0, spanGood)
	if fail {
		return 1 // want:telemetrycheck
	}
	sp.End()
	return 0
}

// unbalancedBranches ends the span in one arm only, so the join sees
// two different open-span sets.
func unbalancedBranches(tr *trace.Tracer, cond bool) {
	sp := tr.Begin(0, spanGood)
	if cond { // want:telemetrycheck
		sp.End()
	}
}

// unbalancedLoop opens a span every iteration and never closes it.
func unbalancedLoop(tr *trace.Tracer, n int) {
	for i := 0; i < n; i++ { // want:telemetrycheck
		sp := tr.Begin(0, spanGood)
		_ = sp
	}
}

// deferredPair is the canonical legal shape.
func deferredPair(tr *trace.Tracer) {
	sp := tr.Begin(0, spanGood)
	defer sp.End()
}

// explicitPair ends the span on every path without defer, which is
// also legal.
func explicitPair(tr *trace.Tracer, cond bool) {
	sp := tr.Begin(0, spanGood)
	if cond {
		sp.End()
		return
	}
	sp.End()
}
