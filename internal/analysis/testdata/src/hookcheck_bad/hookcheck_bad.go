// Package hookcheck_bad is golden-file input for the hookcheck
// analyzer: spinlock hook callbacks that themselves take spinlocks
// (directly or transitively) must be flagged.
package hookcheck_bad

import "ghostspec/internal/spinlock"

type tracer struct {
	mu     *spinlock.Lock
	events int
}

// record takes the tracer's own lock — fine on its own, deadlock from
// inside a hook.
func (t *tracer) record() {
	t.mu.Lock()
	t.events++
	t.mu.Unlock()
}

// badHooks installs callbacks that acquire a spinlock while the
// instrumented lock is already held.
func badHooks(t *tracer) *spinlock.Hooks {
	return &spinlock.Hooks{
		Acquired: func(string) {
			t.mu.Lock() // want:hookcheck
			t.events++
			t.mu.Unlock()
		},
		Releasing: t.hookRelease, // want:hookcheck
	}
}

// hookRelease acquires transitively, via record.
func (t *tracer) hookRelease(string) { t.record() }

// goodHooks only touches plain state; nothing is flagged.
func goodHooks(t *tracer) *spinlock.Hooks {
	return &spinlock.Hooks{
		Acquired: func(string) { t.events++ },
	}
}
