// Package snapshotcheck_bad is golden-file input for the
// snapshotcheck analyzer: capture handles dropped on the floor, and
// restore paths that write frames behind the baseline machinery's
// back.
package snapshotcheck_bad

import "ghostspec/internal/arch"

// dropCapture captures an image and throws it away.
func dropCapture(m *arch.Memory) {
	m.CaptureImage() // want:snapshotcheck
}

// blankCapture binds the handle to the blank identifier.
func blankCapture(bl *arch.MemBaseline) {
	_ = bl.CaptureDelta() // want:snapshotcheck
}

// parkedCapture keeps the handle in a local that never reaches a
// restore and never leaves the function.
func parkedCapture(bl *arch.MemBaseline) int {
	d := bl.CaptureDelta() // want:snapshotcheck
	return d.Frames()
}

// restoreByHand is a restore path that pokes frame words directly
// instead of going through the baseline.
func restoreByHand(m *arch.Memory, words map[arch.PhysAddr]uint64) {
	for pa, v := range words {
		m.Write64(pa, v) // want:snapshotcheck
	}
	m.ZeroPage(m.RAMStart()) // want:snapshotcheck
}

// captureAndRestore is the sanctioned shape; nothing is flagged.
func captureAndRestore(bl *arch.MemBaseline) int {
	d := bl.CaptureDelta()
	return bl.RestoreWith(d)
}

// captureAndHandOff transfers responsibility to a callee.
func captureAndHandOff(m *arch.Memory, keep func(*arch.MemImage)) {
	img := m.CaptureImage()
	keep(img)
}
