// Package ptecheck_bad is golden-file input for the ptecheck
// analyzer: raw descriptor-bit manipulation outside internal/arch.
package ptecheck_bad

import "ghostspec/internal/arch"

// rawValid pokes at descriptor bits directly.
func rawValid(p arch.PTE) bool {
	return p&1 != 0 // want:ptecheck
}

// launder moves the bits through uint64 first; still flagged.
func launder(p arch.PTE) uint64 {
	return uint64(p) >> 2 // want:ptecheck
}

// mint constructs a descriptor from a raw integer.
func mint(bits uint64) arch.PTE {
	return arch.PTE(bits) // want:ptecheck
}

// clearLow mutates descriptor bits in place.
func clearLow(p *arch.PTE) {
	*p &^= 3 // want:ptecheck
}

// accessors uses the sanctioned API; nothing is flagged.
func accessors(p arch.PTE) bool {
	return p.Valid()
}
