// Package guardcheck_bad is golden-file input for the guardcheck
// analyzer: every line carrying a "want:guardcheck" marker comment
// must be flagged, and no unmarked line may be. The helper pair also
// carries "want:lockcheck" markers — their deliberately unbalanced
// bodies are what gives them lock-effect summaries, and lockcheck
// (correctly) objects to each half in isolation.
package guardcheck_bad

import "ghostspec/internal/spinlock"

// fakeHV mirrors the hypervisor's lock field names so the component
// table recognises the receivers.
type fakeHV struct {
	vmsLock  *spinlock.Lock
	hostLock *spinlock.Lock

	//ghost:guards lock=vms
	vms [4]int

	// table stands in for pgtable state owned by a varying component.
	//ghost:guards lock=owner
	table int

	// cache is private to fakeHV's own methods.
	//ghost:guards lock=self
	cache int
}

// readNoLock reads the vms-guarded field with nothing held.
func readNoLock(hv *fakeHV) int {
	return hv.vms[0] // want:guardcheck
}

// readUnderLock is the legal direct shape.
func readUnderLock(hv *fakeHV) int {
	hv.vmsLock.Lock()
	defer hv.vmsLock.Unlock()
	return hv.vms[1]
}

// lockVMTable leaves the lock held for its caller: the universe
// summarizes it as net-acquires vms. Lockcheck's per-function pairing
// rule flags the leak, as it must.
func lockVMTable(hv *fakeHV) {
	hv.vmsLock.Lock()
} // want:lockcheck

// unlockVMTable releases on the caller's behalf (net-releases vms).
func unlockVMTable(hv *fakeHV) {
	hv.vmsLock.Unlock() // want:lockcheck
}

// readViaHelpers exercises the interprocedural summaries: the lock
// arrives through the wrapper, not a direct call, and the guarded
// access between the two helper calls is legal.
func readViaHelpers(hv *fakeHV) int {
	lockVMTable(hv)
	n := hv.vms[2]
	unlockVMTable(hv)
	return n
}

// readAfterHelperRelease reads after the summarized release: the vms
// lock is gone again.
func readAfterHelperRelease(hv *fakeHV) int {
	lockVMTable(hv)
	unlockVMTable(hv)
	return hv.vms[3] // want:guardcheck
}

// ownerNoLock touches owner-guarded state with no discipline lock.
func ownerNoLock(hv *fakeHV) int {
	return hv.table // want:guardcheck
}

// ownerAnyLock: any ranked discipline lock satisfies lock=owner.
func ownerAnyLock(hv *fakeHV) int {
	hv.hostLock.Lock()
	defer hv.hostLock.Unlock()
	return hv.table
}

// peek is a method of the declaring type: lock=self is satisfied.
func (hv *fakeHV) peek() int { return hv.cache }

// peekOutside reads the self-guarded field from a free function.
func peekOutside(hv *fakeHV) int {
	return hv.cache // want:guardcheck
}

// newFakeHV is constructor scope: initializing guarded fields of a
// value nothing else can see yet is exempt, both as composite-literal
// keys and as ordinary stores.
func newFakeHV() *fakeHV {
	hv := &fakeHV{cache: 1}
	hv.vms[0] = 7
	return hv
}

// badAnnot's field annotation names an unknown lock; the universe
// reports it so a typo cannot silently guard nothing.
type badAnnot struct {
	//ghost:guards lock=bogus
	x int // want:guardcheck
}
