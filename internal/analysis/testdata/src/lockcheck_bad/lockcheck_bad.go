// Package lockcheck_bad is golden-file input for the lockcheck
// analyzer: every line carrying a "want:lockcheck" marker comment must
// be flagged, and no unmarked line may be. The go toolchain never
// builds this tree (testdata is invisible to it); only the analysis
// loader compiles it, with real types for spinlock.Lock.
package lockcheck_bad

import "ghostspec/internal/spinlock"

// fakeHV mirrors the hypervisor's lock field names so the component
// table recognises the receivers.
type fakeHV struct {
	vmsLock  *spinlock.Lock
	hostLock *spinlock.Lock
	hypLock  *spinlock.Lock
}

// leak never unlocks; flagged at function end.
func leak(hv *fakeHV) {
	hv.hostLock.Lock()
} // want:lockcheck

// leakAtReturn misses the unlock on the early-out path only.
func leakAtReturn(hv *fakeHV, cond bool) {
	hv.hostLock.Lock()
	if cond {
		return // want:lockcheck
	}
	hv.hostLock.Unlock()
}

// inversion acquires against the declared rank order (host rank 3
// held, vms rank 1 wanted).
func inversion(hv *fakeHV) {
	hv.hostLock.Lock()
	defer hv.hostLock.Unlock()
	hv.vmsLock.Lock() // want:lockcheck
	defer hv.vmsLock.Unlock()
}

// doubleAcquire reacquires a lock already held on this path.
func doubleAcquire(hv *fakeHV) {
	hv.vmsLock.Lock()
	hv.vmsLock.Lock() // want:lockcheck
	hv.vmsLock.Unlock()
}

// unlockNotHeld releases a lock this path never took.
func unlockNotHeld(hv *fakeHV) {
	hv.hypLock.Unlock() // want:lockcheck
}

// needsHost demands the host lock from its callers.
//
//ghost:requires lock=host
func needsHost(hv *fakeHV) {}

// callsWithoutHost violates the annotation.
func callsWithoutHost(hv *fakeHV) {
	needsHost(hv) // want:lockcheck
}

// callsWithHost is the legal counterpart; nothing is flagged.
func callsWithHost(hv *fakeHV) {
	hv.hostLock.Lock()
	defer hv.hostLock.Unlock()
	needsHost(hv)
}

// divergent leaves different locks held on the two branches; the
// merge point is the finding.
func divergent(hv *fakeHV, cond bool) {
	if cond { // want:lockcheck
		hv.hostLock.Lock()
	} else {
		hv.hostLock.Lock()
		hv.hostLock.Unlock()
	}
}

// unbalancedLoop accumulates a lock per iteration.
func unbalancedLoop(hv *fakeHV, n int) {
	for i := 0; i < n; i++ { // want:lockcheck
		hv.vmsLock.Lock()
	}
}

// balanced is clean: ascending ranks, everything deferred.
func balanced(hv *fakeHV) {
	hv.vmsLock.Lock()
	defer hv.vmsLock.Unlock()
	hv.hostLock.Lock()
	defer hv.hostLock.Unlock()
	hv.hypLock.Lock()
	defer hv.hypLock.Unlock()
}
