package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardCheck is the static race detector over the repository's
// declared shared state: any struct field annotated
//
//	//ghost:guards lock=<vms|guest|host|hyp>
//	//ghost:guards lock=owner
//	//ghost:guards lock=self
//
// may only be read or written while its guard holds. The held-lock
// state comes from the same fork/merge abstract interpretation
// lockcheck runs (lockAnalysis, via its observer hook), extended
// interprocedurally with the Universe's lock-effect summaries: a call
// to a helper that acquires the host lock leaves "host" held in the
// caller's state, so field accesses after the call are legal.
//
// Guard semantics:
//
//   - a component guard requires that component lock held (in any
//     mode — acquired here, deferred, or assumed via //ghost:requires);
//   - lock=owner requires any ranked discipline lock — for state
//     whose owning component varies with the enclosing object
//     (pgtable internals);
//   - lock=self requires the access to occur in a method of the
//     declaring type — an encapsulation guard for fields serialized
//     by the type's own private mutex.
//
// Constructor scope (functions named New*/new* and init) is exempt:
// freshly allocated state has no concurrent observers. Composite-
// literal field keys are likewise initialization, not access. Known
// limits, as with lockcheck: accesses through aliases (a pointer to
// the field smuggled out of the guarded region) and reflection are
// invisible; the ghost oracle's non-interference check remains the
// dynamic backstop.
type GuardCheck struct{}

func (*GuardCheck) Name() string { return "guardcheck" }

// isConstructorScope mirrors telemetrycheck's rule: constructors and
// init functions build state that nothing else can see yet.
func isConstructorScope(name string) bool {
	return name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

func (gc *GuardCheck) Run(u *Universe, pkg *Package) []Finding {
	out := u.MetaFindings(pkg, "guardcheck")
	if len(u.guards) == 0 {
		return out
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isLockPrimitive(fd) {
				continue
			}
			if isConstructorScope(fd.Name.Name) {
				continue
			}
			gc.checkFunc(u, pkg, fd, &out)
		}
	}
	return out
}

func (gc *GuardCheck) checkFunc(u *Universe, pkg *Package, fd *ast.FuncDecl, out *[]Finding) {
	recvType := receiverTypeObj(pkg, fd)
	seen := make(map[token.Pos]bool)
	skipKeys := make(map[*ast.Ident]bool)
	// The pairing walker's own findings are lockcheck's to report;
	// this run only wants the state stream.
	var scratch []Finding
	a := &lockAnalysis{
		u: u, pkg: pkg, out: &scratch, fname: fd.Name.Name,
		summaries: true,
		observe: func(n ast.Node, st lockState) {
			switch n := n.(type) {
			case *ast.CompositeLit:
				// Literal field keys initialize a fresh value; they are
				// not accesses to shared state.
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							skipKeys[id] = true
						}
					}
				}
			case *ast.Ident:
				if skipKeys[n] || seen[n.Pos()] {
					return
				}
				obj := pkg.Info.Uses[n]
				if obj == nil {
					return
				}
				g := u.GuardOf(obj)
				if g == nil || guardSatisfied(g, st, recvType) {
					return
				}
				seen[n.Pos()] = true
				*out = append(*out, Finding{
					Pos:      u.Fset.Position(n.Pos()),
					Analyzer: "guardcheck",
					Message:  guardMessage(fd.Name.Name, g, st),
				})
			}
		},
	}
	a.analyzeFuncDecl(fd)
}

// guardSatisfied decides whether the held-lock state (plus the
// enclosing method's receiver type for lock=self) satisfies a guard.
func guardSatisfied(g *Guard, st lockState, recvType types.Object) bool {
	switch {
	case g.Self:
		return recvType != nil && g.DeclType != nil && recvType == g.DeclType
	case g.Owner:
		for comp := range st {
			if _, ranked := LockRanks[comp]; ranked {
				return true
			}
		}
		return false
	}
	_, held := st[g.Comp]
	return held
}

func guardMessage(fname string, g *Guard, st lockState) string {
	field := g.TypeName + "." + g.FieldName
	switch {
	case g.Self:
		return fmt.Sprintf(
			"%s: access to %s (//ghost:guards lock=self) outside a method of %s; the field is private to the declaring type's own synchronization",
			fname, field, g.TypeName)
	case g.Owner:
		return fmt.Sprintf(
			"%s: access to %s (//ghost:guards lock=owner) with no discipline lock held; acquire the owning component's lock first",
			fname, field)
	}
	return fmt.Sprintf(
		"%s: access to %s (//ghost:guards lock=%s) without the %q lock (held: %s)",
		fname, field, g.Comp, g.Comp, st.describe())
}

// receiverTypeObj resolves a method declaration's receiver to its
// type-name object, or nil for plain functions.
func receiverTypeObj(pkg *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := fd.Recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.ParenExpr:
			t = e.X
		case *ast.IndexExpr: // generic receiver
			t = e.X
		case *ast.Ident:
			return pkg.Info.Uses[e]
		default:
			return nil
		}
	}
}
