package bugdemo

import (
	"testing"

	"ghostspec/internal/faults"
)

func TestDemosCoverEveryBug(t *testing.T) {
	demos := Demos()
	byBug := map[faults.Bug]bool{}
	for _, d := range demos {
		if byBug[d.Bug] {
			t.Errorf("duplicate demo for %s", d.Bug)
		}
		byBug[d.Bug] = true
		if d.Description == "" {
			t.Errorf("%s has no description", d.Bug)
		}
	}
	for _, b := range faults.All() {
		if !byBug[b] {
			t.Errorf("no demo for bug %s", b)
		}
	}
	real := 0
	for _, d := range demos {
		if d.Real {
			real++
		}
	}
	if real != 5 {
		t.Errorf("%d real-bug demos, want the paper's 5", real)
	}
}

func TestEveryBugDetected(t *testing.T) {
	for _, r := range DetectAll() {
		if r.DriveErr != nil {
			t.Errorf("%s: scenario error: %v", r.Demo.Bug, r.DriveErr)
			continue
		}
		if !r.Detected {
			t.Errorf("%s: oracle raised no alarm", r.Demo.Bug)
		}
	}
}

func TestFixedBuildStaysClean(t *testing.T) {
	// Running every scenario WITHOUT its bug injected must stay
	// silent: the demos discriminate, they don't false-positive.
	for _, demo := range Demos() {
		d := demo
		d.Bug = "" // no injection
		r := Detect(d)
		if r.DriveErr != nil {
			t.Errorf("%s: scenario error on fixed build: %v", demo.Bug, r.DriveErr)
		}
		if r.Detected {
			t.Errorf("%s: false alarm on fixed build: %v", demo.Bug, r.Alarms)
		}
	}
}
