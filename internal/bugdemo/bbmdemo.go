package bugdemo

import (
	"ghostspec/internal/arch"
)

// MissingTLBIRemap is a deliberately seeded violation of the Armv8
// break-before-make discipline documented in docs/ANALYSIS.md: it
// breaks a page-table entry (stores the invalid descriptor) and
// installs the replacement without the intervening TLB invalidation.
// It is the bbmcheck twin of LockOrderInversion — a permanent
// regression demo proving the static checker still fires:
//
//   - ghostlint's bbmcheck flags the second WritePTE (make after
//     break with no TLBI); the suppression below hides it in normal
//     runs, and `ghostlint -strict ./internal/bugdemo` (run in CI)
//     proves the analyzer still sees it.
//   - the same stale-translation window, produced dynamically by
//     BugUnshareSkipTLBI, is what the runtime oracle reports as
//     FailStaleTLB; this is its static shape.
//
// It must never be called from real hypercall or oracle code.
func MissingTLBIRemap(m *arch.Memory, tlb *arch.TLB, table arch.PhysAddr, idx int, newPA arch.PhysAddr) {
	m.WritePTE(table, idx, 0)                                                  // break: unmake the old descriptor
	m.WritePTE(table, idx, arch.MakeLeaf(arch.LastLevel, newPA, arch.Attrs{})) //ghostlint:ignore bbmcheck deliberately seeded missing-TLBI remap (make after break), kept as the bbmcheck regression demo
	// The invalidation arrives only after the new descriptor is live —
	// too late: a walk between the two stores caches the stale entry.
	tlb.InvalidateRange(0, 0, arch.PageSize)
}
