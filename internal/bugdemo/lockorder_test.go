package bugdemo

import (
	"fmt"
	"strings"
	"testing"

	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
	"ghostspec/internal/spinlock"
)

// TestLockOrderInversionPanics proves the runtime half of the lock
// discipline: with the rank validator enabled, the seeded
// guest-before-vms inversion panics at the inverted acquisition. The
// static half is covered by the CI lint job's
// `ghostlint -strict ./internal/bugdemo` run and by
// internal/analysis's suppression test.
func TestLockOrderInversionPanics(t *testing.T) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := proxy.New(hv)
	if _, _, err := d.InitVM(0, 1); err != nil {
		t.Fatal(err)
	}
	var vm *hyp.VM
	func() {
		hv.VMTableLock().Lock()
		defer hv.VMTableLock().Unlock()
		vm = hv.VMSnapshot(0)
	}()
	if vm == nil {
		t.Fatal("no VM in slot 0 after InitVM")
	}

	spinlock.EnableRankCheck()
	t.Cleanup(spinlock.DisableRankCheck)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("rank validator did not panic on the seeded inversion")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"rank inversion", `"vms"`, "guest"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic message %q missing %q", msg, want)
			}
		}
	}()
	LockOrderInversion(hv, vm)
}
