package bugdemo

import (
	"ghostspec/internal/hyp"
)

// reclaimShadow models a shared component the way the hypervisor
// declares its own: a field annotated //ghost:guards with the
// component lock that owns it. It exists only to carry the seeded
// guardcheck violation below.
type reclaimShadow struct {
	// pending mirrors the hypervisor's reclaimable set; like it, the
	// field belongs to the VM-table lock.
	//ghost:guards lock=vms
	pending int
}

// GuardedRaceRead is a deliberately seeded violation of the
// //ghost:guards discipline documented in docs/ANALYSIS.md: it reads
// a vms-guarded field before taking the VM-table lock. It is the
// guardcheck twin of LockOrderInversion — a permanent regression demo
// proving the static race detector still fires:
//
//   - ghostlint's guardcheck flags the first read (no vms lock held
//     on that path); the suppression below hides it in normal runs,
//     and `ghostlint -strict ./internal/bugdemo` (run in CI) proves
//     the analyzer still sees it.
//   - the second read is the legal counterpart: the same field, same
//     function, but under the lock — guardcheck accepts it, showing
//     the check is path-sensitive rather than syntactic.
//
// It must never be called from real hypercall or oracle code.
func GuardedRaceRead(hv *hyp.Hypervisor, s *reclaimShadow) int {
	racy := s.pending //ghostlint:ignore guardcheck deliberately seeded guarded-field race (vms-guarded read with no lock), kept as the guardcheck regression demo
	hv.VMTableLock().Lock()
	defer hv.VMTableLock().Unlock()
	return racy + s.pending
}
