package bugdemo

import (
	"ghostspec/internal/hyp"
)

// LockOrderInversion is a deliberately seeded violation of the lock
// discipline documented in docs/ANALYSIS.md: it acquires a guest
// stage 2 lock (rank 2) and then the VM-table lock (rank 1), the
// reverse of the order every real hypercall path uses. It exists as a
// permanent regression demo for both halves of the lock-discipline
// tooling:
//
//   - ghostlint's lockcheck flags the second acquisition as a rank
//     inversion; the suppression below hides it in normal runs, and
//     `ghostlint -strict ./internal/bugdemo` (run in CI) proves the
//     analyzer still sees it.
//   - the runtime rank validator (spinlock.EnableRankCheck) panics at
//     the same acquisition; lockorder_test.go asserts the panic.
//
// It must never be called from real hypercall or oracle code.
func LockOrderInversion(hv *hyp.Hypervisor, vm *hyp.VM) {
	vm.Lock.Lock()
	defer vm.Lock.Unlock()
	hv.VMTableLock().Lock() //ghostlint:ignore lockcheck deliberately seeded rank inversion (guest before vms), kept as the ghostlint and rank-validator regression demo
	defer hv.VMTableLock().Unlock()
	// A legal use while (incorrectly ordered but) held: the vms lock
	// does protect the snapshot read itself.
	_ = hv.VMSnapshot(0)
}
