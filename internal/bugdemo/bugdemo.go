// Package bugdemo packages each injectable bug with a minimal driving
// scenario and the oracle verdict, for the synthetic-bug-testing
// experiment (paper §5) and the real-bug reproductions (paper §6).
package bugdemo

import (
	"fmt"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

// Demo is one injectable bug plus the scenario that exposes it.
type Demo struct {
	Bug faults.Bug
	// Paper says whether this is one of the five real pKVM bugs of §6
	// or a synthetic discrimination bug of §5.
	Real bool
	// Description is the paper's account of the defect.
	Description string
	// BigMemory marks boot-time bugs needing a large physical map.
	BigMemory bool
	// drive exercises the bug's code path.
	drive func(d *proxy.Driver) error
}

// Result is one demo's outcome.
type Result struct {
	Demo     Demo
	Detected bool
	// Alarms are the oracle's verdicts.
	Alarms []ghost.Failure
	// DriveErr is a scenario-setup failure (not a detection).
	DriveErr error
}

// Demos lists every injectable bug with its scenario.
func Demos() []Demo {
	return []Demo{
		{
			Bug: faults.BugMemcacheAlignment, Real: true,
			Description: "missing alignment check in the memcache topup path, permitting a malicious host to zero memory (§6 bug 1)",
			drive: func(d *proxy.Driver) error {
				h, err := vmWithVCPU(d)
				if err != nil {
					return err
				}
				pfn, err := d.AllocPage()
				if err != nil {
					return err
				}
				bad := uint64(pfn.Phys()) + 0x800
				if err := d.Write64(0, arch.IPA(pfn.Phys()), 0); err != nil {
					return err
				}
				d.HV.Mem.Write64(arch.PhysAddr(bad), 0)
				_, err = d.HVC(0, hyp.HCTopupVCPUMemcache, uint64(h), 0, bad, 1)
				return err
			},
		},
		{
			Bug: faults.BugMemcacheSize, Real: true,
			Description: "missing size check in the memcache topup, hitting signed integer overflow for huge counts (§6 bug 2)",
			drive: func(d *proxy.Driver) error {
				h, err := vmWithVCPU(d)
				if err != nil {
					return err
				}
				pfn, err := d.AllocPage()
				if err != nil {
					return err
				}
				_, err = d.HVC(0, hyp.HCTopupVCPUMemcache, uint64(h), 0, uint64(pfn.Phys()), 0x10000)
				return err
			},
		},
		{
			Bug: faults.BugVCPULoadRace, Real: true,
			Description: "missing synchronisation between vcpu_load and vcpu_init, permitting a load to observe an uninitialised vCPU (§6 bug 3)",
			drive: func(d *proxy.Driver) error {
				h, _, err := d.InitVM(0, 2)
				if err != nil {
					return err
				}
				// vCPU 1 deliberately left uninitialised; the buggy
				// load succeeds anyway.
				return ignoreErrno(d.VCPULoad(0, h, 1))
			},
		},
		{
			Bug: faults.BugHostFaultRetry, Real: true,
			Description: "host pagefault handling not robust to concurrent mapping changes, panicking on a spurious fault (§6 bug 4)",
			drive: func(d *proxy.Driver) error {
				pfn, err := d.AllocPage()
				if err != nil {
					return err
				}
				if ok, err := d.Access(0, arch.IPA(pfn.Phys()), true); err != nil || !ok {
					return fmt.Errorf("initial fault: ok=%v err=%v", ok, err)
				}
				// Spurious re-delivery of the same fault.
				d.HV.CPUs[0].Fault = arch.FaultInfo{Addr: arch.IPA(pfn.Phys()), Write: true}
				_ = d.HV.HandleTrap(0, arch.ExitMemAbort) // panic recovered, recorded by oracle
				return nil
			},
		},
		{
			Bug: faults.BugLinearMapOverlap, Real: true, BigMemory: true,
			Description: "hypervisor linear map overlapping the IO mappings on devices with very large physical memory (§6 bug 5)",
			drive: func(d *proxy.Driver) error {
				return nil // boot-time defect: detected at Attach
			},
		},
		{
			Bug:         faults.BugShareSkipStateCheck,
			Description: "host_share_hyp skips the page-state check, sharing pages the host does not exclusively own (synthetic)",
			drive: func(d *proxy.Driver) error {
				pfn, err := d.AllocPage()
				if err != nil {
					return err
				}
				if err := d.ShareHyp(0, pfn); err != nil {
					return err
				}
				return ignoreErrno(d.ShareHyp(0, pfn))
			},
		},
		{
			Bug:         faults.BugShareWrongPerms,
			Description: "host_share_hyp installs the hypervisor's borrowed mapping with execute permission (synthetic)",
			drive: func(d *proxy.Driver) error {
				pfn, err := d.AllocPage()
				if err != nil {
					return err
				}
				return ignoreErrno(d.ShareHyp(0, pfn))
			},
		},
		{
			Bug:         faults.BugUnshareLeaveMapping,
			Description: "host_unshare_hyp leaves the hypervisor's borrowed mapping in place (synthetic)",
			drive: func(d *proxy.Driver) error {
				pfn, err := d.AllocPage()
				if err != nil {
					return err
				}
				if err := d.ShareHyp(0, pfn); err != nil {
					return err
				}
				return ignoreErrno(d.UnshareHyp(0, pfn))
			},
		},
		{
			Bug:         faults.BugDonateKeepHostMapping,
			Description: "host_donate_hyp transfers ownership without removing the host's own access (synthetic)",
			drive: func(d *proxy.Driver) error {
				pfn, err := d.AllocPage()
				if err != nil {
					return err
				}
				return ignoreErrno(d.DonateHyp(0, pfn, 1))
			},
		},
		{
			Bug:         faults.BugReclaimSkipOwnerClear,
			Description: "host_reclaim_page forgets to clear the dead guest's ownership annotation (synthetic)",
			drive: func(d *proxy.Driver) error {
				h, donated, err := d.InitVM(0, 1)
				if err != nil {
					return err
				}
				if err := d.TeardownVM(0, h); err != nil {
					return err
				}
				return ignoreErrno(d.ReclaimPage(0, donated[0]))
			},
		},
		{
			Bug:         faults.BugWrongReturnValue,
			Description: "host_share_hyp reports success on the permission-failure path (synthetic)",
			drive: func(d *proxy.Driver) error {
				pfn, err := d.AllocPage()
				if err != nil {
					return err
				}
				if err := d.ShareHyp(0, pfn); err != nil {
					return err
				}
				return ignoreErrno(d.ShareHyp(0, pfn))
			},
		},
		{
			Bug:         faults.BugShareRangeBadStop,
			Description: "the phased share-range hypercall reports success despite a failed mid-range phase (synthetic, transactional extension)",
			drive: func(d *proxy.Driver) error {
				pfns, err := contiguous(d, 4)
				if err != nil {
					return err
				}
				// Pre-share the third page so the range fails at
				// phase 2; the buggy build still reports success.
				if err := d.ShareHyp(0, pfns[2]); err != nil {
					return err
				}
				return ignoreErrno(d.ShareHypRange(0, pfns[0], 4))
			},
		},
		{
			Bug:         faults.BugUnshareSkipTLBI,
			Description: "the unshare paths rewrite the host stage 2 entry without the break-before-make TLB invalidation, leaving a stale cached translation (synthetic, software-TLB extension)",
			drive: func(d *proxy.Driver) error {
				pfn, err := d.AllocPage()
				if err != nil {
					return err
				}
				if err := d.ShareHyp(0, pfn); err != nil {
					return err
				}
				// The access caches the shared-owned translation in the
				// software TLB; the buggy unshare then skips the TLBI
				// that should evict it.
				if ok, err := d.Access(0, arch.IPA(pfn.Phys()), true); err != nil || !ok {
					return fmt.Errorf("touch of shared page: ok=%v err=%v", ok, err)
				}
				return ignoreErrno(d.UnshareHyp(0, pfn))
			},
		},
		{
			Bug:         faults.BugMapDemandWrongState,
			Description: "mapping-on-demand installs host pages with a shared page state instead of owned (synthetic)",
			drive: func(d *proxy.Driver) error {
				pfn, err := d.AllocPage()
				if err != nil {
					return err
				}
				_, err = d.Access(0, arch.IPA(pfn.Phys()), true)
				return err
			},
		},
	}
}

// Detect boots a system with the demo's bug injected, attaches the
// oracle, runs the scenario, and reports whether the oracle alarmed.
func Detect(demo Demo) Result {
	layout := arch.DefaultLayout()
	if demo.BigMemory {
		layout = arch.MemLayout{RAMStart: 1 << 30, RAMSize: 4 << 30, MMIOSize: 16 << 20}
	}
	hv, err := hyp.New(hyp.Config{Layout: layout, Inj: faults.NewInjector(demo.Bug)})
	if err != nil {
		return Result{Demo: demo, DriveErr: err}
	}
	rec := ghost.Attach(hv)
	d := proxy.New(hv)
	driveErr := demo.drive(d)
	alarms := rec.Failures()
	return Result{Demo: demo, Detected: len(alarms) > 0, Alarms: alarms, DriveErr: driveErr}
}

// DetectAll runs every demo.
func DetectAll() []Result {
	demos := Demos()
	out := make([]Result, 0, len(demos))
	for _, demo := range demos {
		out = append(out, Detect(demo))
	}
	return out
}

// contiguous allocates nr physically contiguous host frames.
func contiguous(d *proxy.Driver, nr int) ([]arch.PFN, error) {
	var run []arch.PFN
	for len(run) < nr {
		pfn, err := d.AllocPage()
		if err != nil {
			return nil, err
		}
		if len(run) > 0 && pfn != run[len(run)-1]+1 {
			run = run[:0]
		}
		run = append(run, pfn)
	}
	return run, nil
}

// vmWithVCPU boots a minimal VM with one initialised vCPU.
func vmWithVCPU(d *proxy.Driver) (hyp.Handle, error) {
	h, _, err := d.InitVM(0, 1)
	if err != nil {
		return 0, err
	}
	return h, d.InitVCPU(0, h, 0)
}

// ignoreErrno drops hypercall errnos (the buggy path may legitimately
// succeed or fail; the oracle is the judge) but keeps real errors.
func ignoreErrno(err error) error {
	if _, ok := err.(hyp.Errno); ok {
		return nil
	}
	return err
}
