package mem

import (
	"sync"

	"ghostspec/internal/arch"
	"ghostspec/internal/telemetry"
)

// Memcache fill/empty traffic, across all memcaches in the process.
var (
	mcPushes = telemetry.NewCounter("memcache_push_total")
	mcPops   = telemetry.NewCounter("memcache_pop_total")
	mcEmpty  = telemetry.NewCounter("memcache_empty_total")
	mcPages  = telemetry.NewGauge("memcache_pages")
)

// MemcacheCap is the maximum number of pages a single topup may
// donate, and the cap on a memcache's depth. The correct topup path
// rejects requests beyond it; the injectable size bug (§6 bug 2)
// bypasses the rejection via integer truncation.
const MemcacheCap = 128

// Memcache is a per-vCPU stack of donated frames, pKVM's
// kvm_hyp_memcache: the reserve the hypervisor draws on when it needs
// pages for a guest's stage 2 tables while running that vCPU. The
// host tops it up ahead of time; drawing from it never takes a lock
// because the memcache is owned by whoever owns the vCPU.
//
// It is nonetheless internally synchronised: the vcpu-load-race
// injectable bug (§6 bug 3) makes the *ownership handover* racy, and
// the container must not itself crash the simulation when that race
// is exercised.
type Memcache struct {
	mu    sync.Mutex
	pages []arch.PFN
}

// Push adds a donated frame to the reserve.
func (mc *Memcache) Push(pfn arch.PFN) {
	mc.mu.Lock()
	mc.pages = append(mc.pages, pfn)
	mc.mu.Unlock()
	if !telemetry.Disabled() {
		mcPushes.Inc()
		mcPages.Add(1)
	}
}

// Pop removes and returns the most recently donated frame. It returns
// false when the reserve is empty — the allocation-failure case the
// loose specification folds into -ENOMEM.
func (mc *Memcache) Pop() (arch.PFN, bool) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if len(mc.pages) == 0 {
		if !telemetry.Disabled() {
			mcEmpty.Inc()
		}
		return 0, false
	}
	pfn := mc.pages[len(mc.pages)-1]
	mc.pages = mc.pages[:len(mc.pages)-1]
	if !telemetry.Disabled() {
		mcPops.Inc()
		mcPages.Add(-1)
	}
	return pfn, true
}

// Len returns the current reserve depth.
func (mc *Memcache) Len() int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return len(mc.pages)
}

// Pages returns a copy of the current reserve contents, bottom first.
// The ghost abstraction of vCPU metadata records it.
func (mc *Memcache) Pages() []arch.PFN {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	out := make([]arch.PFN, len(mc.pages))
	copy(out, mc.pages)
	return out
}

// Drain removes and returns all frames, emptying the reserve; used
// when a VM is torn down and its donated pages return to the host.
func (mc *Memcache) Drain() []arch.PFN {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	out := mc.pages
	mc.pages = nil
	if !telemetry.Disabled() {
		mcPages.Add(-int64(len(out)))
	}
	return out
}

// SetPages replaces the memcache's contents with a copy of pages
// (bottom of the stack first, matching Pages), keeping the
// memcache_pages gauge consistent. This is the snapshot-restore entry
// point: a restored vCPU gets its captured reserve back without
// replaying the push/pop history.
func (mc *Memcache) SetPages(pages []arch.PFN) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if !telemetry.Disabled() {
		mcPages.Add(int64(len(pages)) - int64(len(mc.pages)))
	}
	mc.pages = append(mc.pages[:0], pages...)
}
