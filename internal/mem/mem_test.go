package mem

import (
	"sync"
	"testing"
	"testing/quick"

	"ghostspec/internal/arch"
)

func TestPoolAllocFree(t *testing.T) {
	p := NewPool("test", 0x100, 4)
	seen := map[arch.PFN]bool{}
	for i := 0; i < 4; i++ {
		pfn, ok := p.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if seen[pfn] {
			t.Fatalf("frame %#x allocated twice", uint64(pfn))
		}
		if !p.Contains(pfn) {
			t.Fatalf("allocated frame %#x outside pool", uint64(pfn))
		}
		seen[pfn] = true
	}
	if _, ok := p.Alloc(); ok {
		t.Error("alloc from empty pool succeeded")
	}
	if p.Available() != 0 || p.Allocated() != 4 {
		t.Errorf("available=%d allocated=%d", p.Available(), p.Allocated())
	}
	for pfn := range seen {
		p.Free(pfn)
	}
	if p.Available() != 4 || p.Allocated() != 0 {
		t.Errorf("after free: available=%d allocated=%d", p.Available(), p.Allocated())
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	p := NewPool("test", 0, 2)
	pfn, _ := p.Alloc()
	p.Free(pfn)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	p.Free(pfn)
}

func TestPoolForeignFreePanics(t *testing.T) {
	p := NewPool("test", 0x100, 2)
	defer func() {
		if recover() == nil {
			t.Error("foreign free did not panic")
		}
	}()
	p.Free(0x999)
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool("test", 0, 256)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]arch.PFN, 0, 32)
			for j := 0; j < 32; j++ {
				pfn, ok := p.Alloc()
				if !ok {
					t.Error("pool exhausted unexpectedly")
					return
				}
				local = append(local, pfn)
			}
			for _, pfn := range local {
				p.Free(pfn)
			}
		}()
	}
	wg.Wait()
	if p.Available() != 256 {
		t.Errorf("available = %d after balanced alloc/free", p.Available())
	}
}

// Property: alloc never returns a frame outside [start, start+nr) and
// never returns a frame twice without an intervening free.
func TestPoolUniquenessProperty(t *testing.T) {
	f := func(start uint16, nrRaw uint8) bool {
		nr := uint64(nrRaw%32) + 1
		p := NewPool("q", arch.PFN(start), nr)
		seen := map[arch.PFN]bool{}
		for {
			pfn, ok := p.Alloc()
			if !ok {
				break
			}
			if seen[pfn] || !p.Contains(pfn) {
				return false
			}
			seen[pfn] = true
		}
		return uint64(len(seen)) == nr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMemcacheLIFO(t *testing.T) {
	var mc Memcache
	mc.Push(1)
	mc.Push(2)
	mc.Push(3)
	if mc.Len() != 3 {
		t.Fatalf("len = %d", mc.Len())
	}
	for want := arch.PFN(3); want >= 1; want-- {
		pfn, ok := mc.Pop()
		if !ok || pfn != want {
			t.Fatalf("pop = %v,%v want %v", pfn, ok, want)
		}
	}
	if _, ok := mc.Pop(); ok {
		t.Error("pop from empty memcache succeeded")
	}
}

func TestMemcacheDrain(t *testing.T) {
	var mc Memcache
	for i := arch.PFN(0); i < 5; i++ {
		mc.Push(i)
	}
	got := mc.Drain()
	if len(got) != 5 || mc.Len() != 0 {
		t.Errorf("drain = %v, len after = %d", got, mc.Len())
	}
	if _, ok := mc.Pop(); ok {
		t.Error("pop after drain succeeded")
	}
}

func TestMemcacheConcurrent(t *testing.T) {
	var mc Memcache
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				mc.Push(arch.PFN(base*100 + j))
				mc.Pop()
			}
		}(i)
	}
	wg.Wait()
	if mc.Len() != 0 {
		t.Errorf("len = %d after balanced push/pop", mc.Len())
	}
}
