// Package mem provides the physical-page allocators of the simulated
// stack: the host's page pool (what the hyp-proxy hands to tests), the
// hypervisor's internal page allocator (fed by pages the host donates
// at initialisation), and the per-vCPU memcache whose topup path is
// where two of the paper's five real pKVM bugs live.
package mem

import (
	"fmt"
	"sort"
	"sync"

	"ghostspec/internal/arch"
)

// Pool is a simple free-list allocator over a contiguous range of
// physical frames. It backs both the host's allocatable memory and
// the hypervisor's donated carve-out.
type Pool struct {
	mu    sync.Mutex
	name  string
	start arch.PFN
	count uint64
	free  []arch.PFN
	inUse map[arch.PFN]bool
}

// NewPool creates a pool over nr frames starting at start.
func NewPool(name string, start arch.PFN, nr uint64) *Pool {
	p := &Pool{
		name:  name,
		start: start,
		count: nr,
		free:  make([]arch.PFN, 0, nr),
		inUse: make(map[arch.PFN]bool, nr),
	}
	// Push in reverse so allocation proceeds from the bottom up,
	// which keeps test addresses readable.
	for i := nr; i > 0; i-- {
		p.free = append(p.free, start+arch.PFN(i-1))
	}
	return p
}

// Alloc takes one frame from the pool. It returns false when the pool
// is exhausted — the loose -ENOMEM case of the specification.
func (p *Pool) Alloc() (arch.PFN, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return 0, false
	}
	pfn := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[pfn] = true
	return pfn, true
}

// Free returns a frame to the pool. Freeing a frame the pool does not
// own, or double-freeing, panics: these are internal-consistency
// errors of the caller.
func (p *Pool) Free(pfn arch.PFN) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.contains(pfn) {
		panic(fmt.Sprintf("mem: pool %s freeing foreign frame %#x", p.name, uint64(pfn)))
	}
	if !p.inUse[pfn] {
		panic(fmt.Sprintf("mem: pool %s double free of frame %#x", p.name, uint64(pfn)))
	}
	delete(p.inUse, pfn)
	p.free = append(p.free, pfn)
}

func (p *Pool) contains(pfn arch.PFN) bool {
	return pfn >= p.start && uint64(pfn-p.start) < p.count
}

// Contains reports whether pfn lies in the pool's frame range,
// allocated or not.
func (p *Pool) Contains(pfn arch.PFN) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.contains(pfn)
}

// Available returns the number of free frames.
func (p *Pool) Available() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Allocated returns the number of frames currently handed out.
func (p *Pool) Allocated() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inUse)
}

// Range returns the pool's frame range as [start, start+count).
func (p *Pool) Range() (arch.PFN, uint64) { return p.start, p.count }

// PoolSnapshot is a value copy of a pool's allocation state: the exact
// free-list order (allocation replay must hand out the same PFNs in
// the same sequence) and the allocated set. Pure data — portable
// across identically shaped pools on different workers.
type PoolSnapshot struct {
	Free  []arch.PFN
	InUse []arch.PFN
}

// Snapshot captures the pool's current allocation state.
func (p *Pool) Snapshot() PoolSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolSnapshot{Free: append([]arch.PFN(nil), p.free...)}
	s.InUse = make([]arch.PFN, 0, len(p.inUse))
	for pfn := range p.inUse {
		s.InUse = append(s.InUse, pfn)
	}
	sort.Slice(s.InUse, func(i, j int) bool { return s.InUse[i] < s.InUse[j] })
	return s
}

// Restore rewinds the pool to a previously captured state. The
// snapshot must come from a pool with the same range; PFN membership
// is not re-validated beyond that.
func (p *Pool) Restore(s PoolSnapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free[:0], s.Free...)
	clear(p.inUse)
	for _, pfn := range s.InUse {
		p.inUse[pfn] = true
	}
}

// Equal reports whether two snapshots describe the same allocation
// state, including free-list order.
func (s PoolSnapshot) Equal(o PoolSnapshot) bool {
	if len(s.Free) != len(o.Free) || len(s.InUse) != len(o.InUse) {
		return false
	}
	for i := range s.Free {
		if s.Free[i] != o.Free[i] {
			return false
		}
	}
	for i := range s.InUse {
		if s.InUse[i] != o.InUse[i] {
			return false
		}
	}
	return true
}
