package ghost

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ghostspec/internal/arch"
)

// pfnRun is one maximal run of consecutive frames: [Start, Start+N).
type pfnRun struct {
	Start arch.PFN
	N     uint64
}

func (r pfnRun) end() arch.PFN { return r.Start + arch.PFN(r.N) }

// PageSet is a set of physical frames; used for page-table footprints
// and the reclaim set. The representation is a sorted list of maximal
// runs — footprints and reclaim sets are overwhelmingly clustered
// (carve-out pools, donated ranges), so runs keep the set small and,
// more importantly, make the separation check a linear merge of two
// sorted lists instead of a nested iteration over hash maps. All
// operations maintain the canonical form (sorted, non-overlapping,
// non-adjacent), so set equality is representation equality.
type PageSet struct {
	runs []pfnRun
}

// NewPageSet builds a set from the given frames.
func NewPageSet(pfns ...arch.PFN) PageSet {
	var s PageSet
	for _, pfn := range pfns {
		s.Add(pfn)
	}
	return s
}

// Len returns the number of frames in the set.
func (s PageSet) Len() int {
	var n uint64
	for _, r := range s.runs {
		n += r.N
	}
	return int(n)
}

// IsEmpty reports whether the set has no frames.
func (s PageSet) IsEmpty() bool { return len(s.runs) == 0 }

// Contains reports membership.
func (s PageSet) Contains(pfn arch.PFN) bool {
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].end() > pfn })
	return i < len(s.runs) && s.runs[i].Start <= pfn
}

// Add inserts one frame.
func (s *PageSet) Add(pfn arch.PFN) { s.AddRange(pfn, 1) }

// AddRange inserts the n consecutive frames starting at pfn, merging
// with any runs it touches. Ascending construction (the way footprints
// and the reclaim set are built) stays on the allocation-free append
// path; out-of-order inserts splice in place.
func (s *PageSet) AddRange(pfn arch.PFN, n uint64) {
	if n == 0 {
		return
	}
	end := pfn + arch.PFN(n)
	// Fast path: at or past the tail — extend the last run or append.
	if k := len(s.runs); k > 0 && pfn >= s.runs[k-1].Start {
		last := &s.runs[k-1]
		if pfn > last.end() {
			s.runs = append(s.runs, pfnRun{Start: pfn, N: n})
		} else if end > last.end() {
			last.N = uint64(end - last.Start)
		}
		return
	} else if k == 0 {
		s.runs = append(s.runs, pfnRun{Start: pfn, N: n})
		return
	}
	// First run that ends at or after pfn (candidates for merging).
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].end() >= pfn })
	j := i
	for j < len(s.runs) && s.runs[j].Start <= end {
		if s.runs[j].Start < pfn {
			pfn = s.runs[j].Start
		}
		if s.runs[j].end() > end {
			end = s.runs[j].end()
		}
		j++
	}
	merged := pfnRun{Start: pfn, N: uint64(end - pfn)}
	if i == j {
		// Pure insertion between runs: shift the tail right in place.
		s.runs = append(s.runs, pfnRun{})
		copy(s.runs[i+1:], s.runs[i:])
		s.runs[i] = merged
		return
	}
	s.runs[i] = merged
	s.runs = append(s.runs[:i+1], s.runs[j:]...)
}

// Remove deletes one frame if present, splitting its run.
func (s *PageSet) Remove(pfn arch.PFN) {
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].end() > pfn })
	if i == len(s.runs) || s.runs[i].Start > pfn {
		return
	}
	r := s.runs[i]
	var repl []pfnRun
	if pfn > r.Start {
		repl = append(repl, pfnRun{Start: r.Start, N: uint64(pfn - r.Start)})
	}
	if pfn+1 < r.end() {
		repl = append(repl, pfnRun{Start: pfn + 1, N: uint64(r.end() - pfn - 1)})
	}
	s.runs = append(s.runs[:i], append(repl, s.runs[i+1:]...)...)
}

// Clone returns an independent copy.
func (s PageSet) Clone() PageSet {
	if len(s.runs) == 0 {
		return PageSet{}
	}
	return PageSet{runs: append([]pfnRun(nil), s.runs...)}
}

// Equal reports set equality; canonical runs make it structural.
func (s PageSet) Equal(o PageSet) bool {
	if len(s.runs) != len(o.runs) {
		return false
	}
	for i := range s.runs {
		if s.runs[i] != o.runs[i] {
			return false
		}
	}
	return true
}

// ForEach calls f for every frame in ascending order.
func (s PageSet) ForEach(f func(arch.PFN)) {
	for _, r := range s.runs {
		for i := uint64(0); i < r.N; i++ {
			f(r.Start + arch.PFN(i))
		}
	}
}

// Sorted returns the frames in ascending order.
func (s PageSet) Sorted() []arch.PFN {
	out := make([]arch.PFN, 0, s.Len())
	s.ForEach(func(pfn arch.PFN) { out = append(out, pfn) })
	return out
}

// FirstOverlap returns the lowest frame present in both sets, if any —
// the separation check's linear merge-intersection: both run lists are
// sorted, so one pass over each suffices.
func (s PageSet) FirstOverlap(o PageSet) (arch.PFN, bool) {
	i, j := 0, 0
	for i < len(s.runs) && j < len(o.runs) {
		a, b := s.runs[i], o.runs[j]
		if a.end() <= b.Start {
			i++
			continue
		}
		if b.end() <= a.Start {
			j++
			continue
		}
		if a.Start > b.Start {
			return a.Start, true
		}
		return b.Start, true
	}
	return 0, false
}

// FirstOutside returns the lowest frame lying outside [lo, hi), if
// any — the carve-out containment check, linear in runs.
func (s PageSet) FirstOutside(lo, hi arch.PFN) (arch.PFN, bool) {
	for _, r := range s.runs {
		if r.Start < lo {
			return r.Start, true
		}
		if r.end() > hi {
			if r.Start >= hi {
				return r.Start, true
			}
			return hi, true
		}
	}
	return 0, false
}

func (s PageSet) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, pfn := range s.Sorted() {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%x", uint64(pfn))
	}
	b.WriteString("}")
	return b.String()
}

// MarshalJSON serialises the set as its run list, keeping traces
// stable and compact.
func (s PageSet) MarshalJSON() ([]byte, error) { return json.Marshal(s.runs) }

// UnmarshalJSON restores a set from a run list, verifying canonical
// form.
func (s *PageSet) UnmarshalJSON(b []byte) error {
	var runs []pfnRun
	if err := json.Unmarshal(b, &runs); err != nil {
		return err
	}
	for i, r := range runs {
		if r.N == 0 {
			return fmt.Errorf("ghost: page-set run %d empty", i)
		}
		if i > 0 && runs[i-1].end() >= r.Start {
			return fmt.Errorf("ghost: page-set runs %d/%d overlap or touch", i-1, i)
		}
	}
	s.runs = runs
	return nil
}
