package ghost

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
	"ghostspec/internal/telemetry"
)

// This file is the incremental abstraction cache. recordComponent used
// to re-interpret each component's full 4-level table on every lock
// acquire and release — the dominant term of the ghost overhead the
// paper measures in §6. But a table's meaning only changes where
// descriptors are written, so the cache keys the interpreted
// Mapping/Footprint on (root, per-table-page write generations from
// arch.Memory) and on each hook re-walks only the subtrees under table
// pages whose generation moved, splicing the re-interpreted ranges
// into the cached mapping. A write to the root page, or a root change,
// falls back to a full walk.
//
// The walker here is deliberately a separate implementation from
// InterpretPgtable: the Recorder's VerifyCache mode runs both side by
// side and alarms on divergence, which only means something if the two
// paths share no code beyond the descriptor decoding in package arch.

// CacheOutcome classifies one cached interpretation.
type CacheOutcome uint8

const (
	// CacheHit: no cached table page changed; the stored abstraction
	// was returned as is.
	CacheHit CacheOutcome = iota
	// CachePartial: some table pages changed; only their subtrees were
	// re-interpreted and spliced into the stored abstraction.
	CachePartial
	// CacheFull: first use, a different root, or a write to the root
	// page itself — the whole tree was re-interpreted.
	CacheFull
)

// cachedTable is the cache's record of one table page: where its
// generation counter lives, the generation observed before the last
// read of its entries, and the position (level, covered input-address
// base) it occupied in the tree.
//
// Observing the generation before reading the entries pairs with
// Memory bumping it after each store: a racing writer can at worst
// make fresh data look stale (forcing a needless re-walk later),
// never stale data look fresh.
type cachedTable struct {
	gen    *atomic.Uint64
	seen   uint64
	level  int
	vaBase uint64
}

// tableSpan returns the bytes of input-address space covered by one
// whole table page at the given level (the root, level 0, covers the
// full 48-bit space).
func tableSpan(level int) uint64 {
	return arch.LevelSize(level) * arch.PTEsPerTable
}

// CacheStats counts a cache's interpretation outcomes.
type CacheStats struct {
	Hits         uint64
	PartialWalks uint64
	FullWalks    uint64
	// PagesWalked is the number of table pages (re-)interpreted across
	// all full and partial walks — the work the cache actually did,
	// against which hits measure the work it avoided.
	PagesWalked uint64
}

// add accumulates o into s.
func (s *CacheStats) add(o CacheStats) {
	s.Hits += o.Hits
	s.PartialWalks += o.PartialWalks
	s.FullWalks += o.FullWalks
	s.PagesWalked += o.PagesWalked
}

// PgtableCache is the incremental interpretation cache for one page
// table. It has its own lock: hooks already run under the component's
// spinlock, but the oracle must stay sound against a buggy hypervisor
// whose locking is broken, so the cache never relies on the
// component's lock for its own consistency.
type PgtableCache struct {
	mu     sync.Mutex
	valid  bool
	root   arch.PhysAddr
	tables map[arch.PFN]*cachedTable
	abs    AbstractPgtable
	stats  CacheStats
}

// Interpret returns the abstraction of the table rooted at root,
// re-interpreting only what changed since the previous call. The
// returned abstraction is a copy-on-write clone: the caller may hold
// it indefinitely, and later cache updates will not mutate it.
func (c *PgtableCache) Interpret(m *arch.Memory, root arch.PhysAddr) (AbstractPgtable, CacheOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()

	if !c.valid || c.root != root {
		return c.rebuild(m, root), CacheFull
	}

	rootPFN := arch.PhysToPFN(root)
	type dirtyTable struct {
		pfn arch.PFN
		t   *cachedTable
	}
	var dirty []dirtyTable
	for pfn, t := range c.tables {
		if t.gen.Load() != t.seen {
			if pfn == rootPFN {
				// The root's entries each select a whole 512GB subtree;
				// incremental splicing buys nothing there.
				return c.rebuild(m, root), CacheFull
			}
			dirty = append(dirty, dirtyTable{pfn, t})
		}
	}
	if len(dirty) == 0 {
		c.stats.Hits++
		if !telemetry.Disabled() {
			ghostCacheHits.Inc()
		}
		return c.abs.Clone(), CacheHit
	}

	// Keep only the top dirty subtrees: shallowest first, then drop any
	// dirty table lying inside an earlier top's span. Structural
	// changes (detach, free, frame reuse) always write a still-live
	// ancestor table, so every stale cache entry is covered by some
	// live top — and a covering top is strictly shallower, which the
	// (level, vaBase) sort order guarantees we meet first.
	sort.Slice(dirty, func(i, j int) bool {
		if dirty[i].t.level != dirty[j].t.level {
			return dirty[i].t.level < dirty[j].t.level
		}
		return dirty[i].t.vaBase < dirty[j].t.vaBase
	})
	var tops []dirtyTable
	for _, d := range dirty {
		contained := false
		for _, top := range tops {
			if top.t.level < d.t.level &&
				d.t.vaBase >= top.t.vaBase && d.t.vaBase < top.t.vaBase+tableSpan(top.t.level) {
				contained = true
				break
			}
		}
		if !contained {
			tops = append(tops, d)
		}
	}

	// Drop every cached entry inside a span about to be re-walked —
	// stale entries for freed or reparented tables would otherwise
	// linger. All deletions happen before any re-walk, so entries the
	// walks re-add survive.
	for _, top := range tops {
		lo, hi := top.t.vaBase, top.t.vaBase+tableSpan(top.t.level)
		for pfn, t := range c.tables {
			if t.level >= top.t.level && t.vaBase >= lo && t.vaBase < hi {
				delete(c.tables, pfn)
			}
		}
	}

	pages := 0
	for _, top := range tops {
		var sub AbstractPgtable
		sub.Mapping.Grow(32)
		pages += interpretCached(m, top.pfn.Phys(), top.t.level, top.t.vaBase, &sub, c.tables)
		c.abs.Mapping.SpliceRange(top.t.vaBase, tableSpan(top.t.level)>>arch.PageShift,
			sub.Mapping.Maplets())
	}
	c.abs.Footprint = footprintOf(c.tables)

	c.stats.PartialWalks++
	c.stats.PagesWalked += uint64(pages)
	if !telemetry.Disabled() {
		ghostCachePartial.Inc()
		ghostCachePages.Add(uint64(pages))
	}
	return c.abs.Clone(), CachePartial
}

// rebuild discards the cache and interprets the whole tree. Caller
// holds c.mu.
func (c *PgtableCache) rebuild(m *arch.Memory, root arch.PhysAddr) AbstractPgtable {
	hint := c.abs.Mapping.NrMaplets()
	c.tables = make(map[arch.PFN]*cachedTable)
	c.abs = AbstractPgtable{}
	c.abs.Mapping.Grow(hint)
	n := interpretCached(m, root, arch.StartLevel, 0, &c.abs, c.tables)
	c.abs.Footprint = footprintOf(c.tables)
	c.root = root
	c.valid = true
	c.stats.FullWalks++
	c.stats.PagesWalked += uint64(n)
	if !telemetry.Disabled() {
		ghostCacheMisses.Inc()
		ghostCachePages.Add(uint64(n))
	}
	return c.abs.Clone()
}

// Invalidate empties the cache; the next Interpret is a full walk.
// Used when a guest's table is destroyed at teardown.
func (c *PgtableCache) Invalidate() {
	c.mu.Lock()
	c.valid = false
	c.tables = nil
	c.abs = AbstractPgtable{}
	c.mu.Unlock()
}

// Stats returns the cache's counters.
func (c *PgtableCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// hostCache wraps a PgtableCache with the ghost_host projection: on a
// hit the derived Annot/Shared components and the legality verdict are
// returned from store, so the hit path skips the maplet scan too.
type hostCache struct {
	pgt PgtableCache

	mu        sync.Mutex
	valid     bool
	host      Host
	violation error
}

func (hc *hostCache) abstract(hv *hyp.Hypervisor) (Host, PageSet, error) {
	full, outcome := hc.pgt.Interpret(hv.Mem, hv.HostPGTRoot())
	hc.mu.Lock()
	defer hc.mu.Unlock()
	if outcome != CacheHit || !hc.valid {
		hc.host, hc.violation = deriveHost(hv, &full)
		hc.valid = true
	}
	// The stored violation is returned on hits too: the uncached path
	// re-found an illegal mapping on every hook, and alarm cadence must
	// not depend on whether the cache hit.
	return Host{Present: true, Annot: hc.host.Annot.Clone(), Shared: hc.host.Shared.Clone()},
		full.Footprint, hc.violation
}

// interpretCached interprets the subtree rooted at the table page at
// table (occupying the given level and input-address base), extending
// out and recording each visited table page's generation — observed
// before its entries are read — into tabs. Returns the number of
// table pages visited.
func interpretCached(m *arch.Memory, table arch.PhysAddr, level int, vaPartial uint64,
	out *AbstractPgtable, tabs map[arch.PFN]*cachedTable) int {
	gen := m.FrameGenRef(table)
	tabs[arch.PhysToPFN(table)] = &cachedTable{gen: gen, seen: gen.Load(), level: level, vaBase: vaPartial}
	n := 1
	nrPages := arch.LevelPages(level)
	shift := arch.LevelShift(level)
	// One bulk frame copy instead of 512 per-slot lookups; the walk
	// below then reads local memory.
	frame := m.ReadFrame(table)
	for idx := 0; idx < arch.PTEsPerTable; idx++ {
		vaNew := vaPartial | uint64(idx)<<shift
		pte := frame.PTE(idx)
		switch pte.Kind(level) {
		case arch.EKTable:
			n += interpretCached(m, pte.TableAddr(), level+1, vaNew, out, tabs)
		case arch.EKBlock, arch.EKPage:
			out.Mapping.Extend(vaNew, nrPages, Mapped(pte.OutputAddr(level), pte.Attrs()))
		case arch.EKAnnotated:
			out.Mapping.Extend(vaNew, nrPages, Annotated(pte.OwnerID()))
		case arch.EKInvalid:
			// Unmapped, unowned: not part of the extension.
		case arch.EKReserved:
			out.Mapping.Extend(vaNew, nrPages, Annotated(0xFF))
		}
	}
	return n
}

// footprintOf rebuilds the footprint set from the cached table pages.
func footprintOf(tabs map[arch.PFN]*cachedTable) PageSet {
	pfns := make([]arch.PFN, 0, len(tabs))
	for pfn := range tabs {
		pfns = append(pfns, pfn)
	}
	slices.Sort(pfns)
	var s PageSet
	for _, pfn := range pfns {
		s.Add(pfn)
	}
	return s
}
