package ghost

import (
	"fmt"

	"ghostspec/internal/hyp"
)

// Checkpoint is a value snapshot of the recorder's ghost abstraction:
// the shared state, the host-table footprint, and the failure list as
// of the capture. Capturing the failures matters for fault detection
// under snapshots: boot-layout alarms fire exactly once, at Attach —
// restoring a checkpoint taken after boot reinstates them, so every
// forked execution still reports the boot bug instead of only the
// first. A checkpoint is immutable pure data and restores onto any
// recorder of an identically configured system, which is how corpus
// parents captured by one worker fork on another.
type Checkpoint struct {
	shared    *State
	footprint PageSet
	failures  []Failure
	guests    map[hyp.Handle]bool
}

// Checkpoint captures the recorder's current abstraction. The system
// must be quiescent (no trap in flight).
func (r *Recorder) Checkpoint() *Checkpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Checkpoint{
		shared:    r.shared.Clone(),
		footprint: r.hostFootprint.Clone(),
		failures:  append([]Failure(nil), r.failures...),
		guests:    make(map[hyp.Handle]bool),
	}
	for h := range r.shared.Guests {
		c.guests[h] = true
	}
	return c
}

// RestoreCheckpoint rewinds the recorder to a captured abstraction.
// Per-CPU trap state is discarded (no trap survives a restore) and
// guest abstraction caches for VMs absent from the checkpoint are
// dropped; every other cache self-heals through the frame generations
// the memory restore bumped — entries over untouched frames stay warm.
func (r *Recorder) RestoreCheckpoint(c *Checkpoint) {
	r.mu.Lock()
	r.shared = c.shared.Clone()
	r.hostFootprint = c.footprint.Clone()
	r.failures = append(r.failures[:0:0], c.failures...)
	r.mu.Unlock()

	for i := range r.cpus {
		r.cpus[i] = &cpuRec{}
	}

	r.gcMu.Lock()
	for h := range r.guestCaches {
		if !c.guests[h] {
			delete(r.guestCaches, h)
		}
	}
	r.gcMu.Unlock()
}

// SharedState returns a deep copy of the recorder's shared ghost
// state, for the snapshot conformance differ.
func (r *Recorder) SharedState() *State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shared.Clone()
}

// DiffStates structurally compares two ghost states and returns
// human-readable mismatch descriptions, at most max. It is the ghost
// half of the snapshot conformance differ: a restored child's
// abstraction diffed against a freshly-booted-and-replayed system's
// must come back empty.
func DiffStates(a, b *State, max int) []string {
	var out []string
	add := func(format string, args ...any) {
		if len(out) < max {
			out = append(out, fmt.Sprintf(format, args...))
		}
	}
	diffMapping := func(what string, ma, mb Mapping) {
		if EqualMappings(ma, mb) {
			return
		}
		for _, d := range DiffMappings(ma, mb) {
			add("%s: %s", what, d)
		}
	}
	diffMapping("pkvm mapping", a.Pkvm.PGT.Mapping, b.Pkvm.PGT.Mapping)
	if !a.Pkvm.PGT.Footprint.Equal(b.Pkvm.PGT.Footprint) {
		add("pkvm footprint: %v vs %v", a.Pkvm.PGT.Footprint, b.Pkvm.PGT.Footprint)
	}
	diffMapping("host annotations", a.Host.Annot, b.Host.Annot)
	diffMapping("host shared", a.Host.Shared, b.Host.Shared)
	if !a.VMs.Equal(b.VMs) {
		add("vm table: %d vs %d entries, reclaim %v vs %v",
			len(a.VMs.Table), len(b.VMs.Table), a.VMs.Reclaim, b.VMs.Reclaim)
	}
	for h, ga := range a.Guests {
		gb, ok := b.Guests[h]
		if !ok {
			add("guest %v: present vs absent", h)
			continue
		}
		diffMapping(fmt.Sprintf("guest %v mapping", h), ga.PGT.Mapping, gb.PGT.Mapping)
		if !ga.PGT.Footprint.Equal(gb.PGT.Footprint) {
			add("guest %v footprint: %v vs %v", h, ga.PGT.Footprint, gb.PGT.Footprint)
		}
	}
	for h := range b.Guests {
		if _, ok := a.Guests[h]; !ok {
			add("guest %v: absent vs present", h)
		}
	}
	for cpu, la := range a.Locals {
		lb, ok := b.Locals[cpu]
		if !ok {
			add("cpu %d locals: present vs absent", cpu)
			continue
		}
		if !la.Equal(*lb) {
			add("cpu %d locals differ", cpu)
		}
	}
	for cpu := range b.Locals {
		if _, ok := a.Locals[cpu]; !ok {
			add("cpu %d locals: absent vs present", cpu)
		}
	}
	return out
}
