package ghost

import (
	"bytes"
	"fmt"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
)

func TestFailureKindStringUnknown(t *testing.T) {
	if got := FailureKind(99).String(); got != "FailureKind(99)" {
		t.Errorf("unknown kind = %q, want FailureKind(99)", got)
	}
	if got := FailSeparation.String(); got != "separation" {
		t.Errorf("known kind = %q", got)
	}
}

// TestTraceReplayTelemetryCountersMatch runs the live oracle over a
// scenario, round-trips the trace through JSON, replays it, and checks
// the replay executed exactly as many spec checks as the live run —
// the trace carries everything the oracle consumed.
func TestTraceReplayTelemetryCountersMatch(t *testing.T) {
	s := newSys(t)
	checksBefore := ghostChecks.Value()
	tr := traceScenario(t, s)
	s.mustClean(t)
	liveChecks := ghostChecks.Value() - checksBefore
	if liveChecks == 0 {
		t.Fatal("live run recorded no oracle checks")
	}
	if uint64(len(tr.Events)) != liveChecks {
		t.Fatalf("trace has %d events but live oracle checked %d traps",
			len(tr.Events), liveChecks)
	}

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	replayChecksBefore := replayChecks.Value()
	replayFailuresBefore := replayFailures.Value()
	if fails := Replay(back); len(fails) != 0 {
		t.Fatalf("replay after round trip: %v", fails)
	}
	if d := replayChecks.Value() - replayChecksBefore; d != liveChecks {
		t.Errorf("replay checked %d events, live checked %d", d, liveChecks)
	}
	if d := replayFailures.Value() - replayFailuresBefore; d != 0 {
		t.Errorf("replay failure counter moved by %d on a clean trace", d)
	}
}

// TestFailureHistoryAttached checks oracle-failure forensics: after a
// run of clean traps, an induced spec violation must carry a
// flight-recorder dump ending with the failing trap and including the
// traps that led up to it.
func TestFailureHistoryAttached(t *testing.T) {
	s := newSys(t, faults.BugShareWrongPerms)

	// Benign traffic first: these traps pass the oracle but land in
	// the flight recorder.
	s.hvc(t, 0, hyp.HCHostUnshareHyp, uint64(s.hostPFN(2))) // -EPERM, clean
	s.touch(t, 0, arch.IPA(s.hostPFN(5).Phys()), true)
	s.touch(t, 0, arch.IPA(s.hostPFN(600).Phys()), false)
	s.hvc(t, 0, hyp.HCHostUnshareHyp, uint64(s.hostPFN(3))) // -EPERM, clean
	if len(s.rec.Failures()) != 0 {
		t.Fatalf("preamble already alarmed: %v", s.rec.Failures())
	}

	// The injected bug makes this share install wrong permissions;
	// the oracle fires at trap exit.
	s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1)))
	fs := s.rec.Failures()
	if len(fs) == 0 {
		t.Fatal("oracle missed the injected bug")
	}
	f := fs[0]
	if len(f.History) < 5 {
		t.Fatalf("failure history has %d traps, want >= 5 (4 preceding + failing):\n%v",
			len(f.History), f.History)
	}
	last := f.History[len(f.History)-1]
	if last.Name != "host_share_hyp" {
		t.Errorf("newest history entry is %q, want the failing host_share_hyp", last.Name)
	}
	for i := 1; i < len(f.History); i++ {
		if f.History[i].Seq <= f.History[i-1].Seq {
			t.Errorf("history out of order at %d", i)
		}
	}
	// The dump formats with one line per trap.
	if fmt.Sprint(f) == "" {
		t.Error("failure did not format")
	}
}
