package ghost

import (
	"fmt"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// InterpretPgtable computes the abstraction of the page table rooted
// at root: a complete traversal (in contrast to the hardware's
// single-address walk) that interprets every descriptor and builds the
// extensional finite map plus the tree's own memory footprint — the
// paper's _interpret_pgtable (Fig 2).
//
// It reads raw descriptors through the architecture model only: the
// hypervisor's walker code is implementation, not specification.
func InterpretPgtable(m *arch.Memory, root arch.PhysAddr) AbstractPgtable {
	var out AbstractPgtable
	interpretLevel(m, root, arch.StartLevel, 0, &out)
	return out
}

func interpretLevel(m *arch.Memory, table arch.PhysAddr, level int, vaPartial uint64, out *AbstractPgtable) {
	out.Footprint.Add(arch.PhysToPFN(table))
	nrPages := arch.LevelPages(level)
	for idx := 0; idx < arch.PTEsPerTable; idx++ {
		vaNew := vaPartial | uint64(idx)<<arch.LevelShift(level)
		pte := m.ReadPTE(table, idx)
		switch pte.Kind(level) {
		case arch.EKTable:
			interpretLevel(m, pte.TableAddr(), level+1, vaNew, out)
		case arch.EKBlock, arch.EKPage:
			out.Mapping.Extend(vaNew, nrPages, Mapped(pte.OutputAddr(level), pte.Attrs()))
		case arch.EKAnnotated:
			out.Mapping.Extend(vaNew, nrPages, Annotated(pte.OwnerID()))
		case arch.EKInvalid:
			// Unmapped, unowned: not part of the extension.
		case arch.EKReserved:
			// A reserved encoding can only come from corruption; make
			// it visible as an impossible annotation.
			out.Mapping.Extend(vaNew, nrPages, Annotated(0xFF))
		}
	}
}

// AbstractHyp computes the ghost of the hypervisor's own stage 1.
// Caller holds the pkvm lock.
//
//ghost:requires lock=hyp
func AbstractHyp(hv *hyp.Hypervisor) Pkvm {
	return Pkvm{Present: true, PGT: InterpretPgtable(hv.Mem, hv.HypPGTRoot())}
}

// HostInvariantError reports a host stage 2 entry that violates the
// legal-mapping bounds of the loose host specification (paper §3.1):
// an incidentally-mapped host-owned page must be an identity mapping
// of memory the host may legally reach, with the default attributes.
type HostInvariantError struct {
	IPA    uint64
	Target Target
	Reason string
}

func (e *HostInvariantError) Error() string {
	return fmt.Sprintf("host stage 2 invariant violated at ipa %#x (%s): %s", e.IPA, e.Target, e.Reason)
}

// AbstractHost computes the ghost of the host stage 2: the Annot and
// Shared mappings, checking on the way that every dropped
// plainly-owned mapping is legal. Caller holds the host lock.
//
//ghost:requires lock=host
func AbstractHost(hv *hyp.Hypervisor) (Host, error) {
	host, _, err := AbstractHostWithFootprint(hv)
	return host, err
}

// AbstractHostWithFootprint additionally returns the host table's own
// memory footprint, which the separation check consumes; computing it
// here avoids a second full interpretation per lock release.
//
//ghost:requires lock=host
func AbstractHostWithFootprint(hv *hyp.Hypervisor) (Host, PageSet, error) {
	full := InterpretPgtable(hv.Mem, hv.HostPGTRoot())
	host, violation := deriveHost(hv, &full)
	return host, full.Footprint, violation
}

// deriveHost projects a full host stage 2 abstraction onto the loose
// ghost_host components — Annot and Shared — checking on the way that
// every dropped plainly-owned mapping is legal. Shared between the
// uncached reference path above and the recorder's host cache.
func deriveHost(hv *hyp.Hypervisor, full *AbstractPgtable) (Host, error) {
	out := Host{Present: true}
	var violation error
	// Size the two derived mappings up front; coalescing only shrinks
	// them, so the class counts are exact upper bounds.
	var nAnnot, nShared int
	for _, ml := range full.Mapping.Maplets() {
		switch ml.Target.Kind {
		case TargetAnnotated:
			nAnnot++
		case TargetMapped:
			if s := ml.Target.Attrs.State; s == arch.StateSharedOwned || s == arch.StateSharedBorrowed {
				nShared++
			}
		}
	}
	out.Annot.Grow(nAnnot)
	out.Shared.Grow(nShared)
	for _, ml := range full.Mapping.Maplets() {
		switch ml.Target.Kind {
		case TargetAnnotated:
			out.Annot.Extend(ml.VA, ml.NrPages, ml.Target)
		case TargetMapped:
			switch ml.Target.Attrs.State {
			case arch.StateSharedOwned, arch.StateSharedBorrowed:
				out.Shared.Extend(ml.VA, ml.NrPages, ml.Target)
			case arch.StateOwned:
				// Mapping-on-demand territory: dropped from the
				// abstraction, but it must be legal.
				if err := checkHostOwnedLegal(hv, ml); err != nil && violation == nil {
					violation = err
				}
			}
		}
	}
	return out, violation
}

// checkHostOwnedLegal checks a plainly-owned host mapping against the
// loose specification's upper bound: identity, inside the physical
// map, with the default attributes for its region. The check works on
// whole maplets, not pages: a maplet has uniform attributes by
// construction, so it is legal iff it lies entirely within one region
// whose default attributes it carries — a constant-time test that
// keeps abstraction cost independent of block size (1GB demand blocks
// would otherwise cost 256k page iterations per recording).
func checkHostOwnedLegal(hv *hyp.Hypervisor, ml Maplet) error {
	if uint64(ml.Target.Phys) != ml.VA {
		return &HostInvariantError{IPA: ml.VA, Target: ml.Target, Reason: "not an identity mapping"}
	}
	first := ml.Target.Phys
	last := ml.Target.Phys + arch.PhysAddr((ml.NrPages-1)<<arch.PageShift)
	var want arch.Attrs
	switch {
	case hv.Mem.InRAM(first) && hv.Mem.InRAM(last):
		want = arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: arch.StateOwned}
	case hv.Mem.InMMIO(first) && hv.Mem.InMMIO(last):
		want = arch.Attrs{Perms: arch.PermRW, Mem: arch.MemDevice, State: arch.StateOwned}
	default:
		// Straddles a region boundary or leaves the physical map —
		// no single legal attribute set could cover it.
		return &HostInvariantError{IPA: ml.VA, Target: ml.Target,
			Reason: "maps outside a single physical region"}
	}
	if ml.Target.Attrs != want {
		return &HostInvariantError{IPA: ml.VA, Target: ml.Target,
			Reason: fmt.Sprintf("attributes %v, legal bound %v", ml.Target.Attrs, want)}
	}
	return nil
}

// AbstractVMs computes the ghost of the VM table: metadata of every
// live VM plus the reclaim set. Caller holds the vms lock.
//
//ghost:requires lock=vms
func AbstractVMs(hv *hyp.Hypervisor) VMs {
	out := VMs{Present: true, Table: make(map[hyp.Handle]*VMInfo), Reclaim: PageSet{}}
	for slot := 0; slot < hyp.MaxVMs; slot++ {
		vm := hv.VMSnapshot(slot)
		if vm == nil {
			continue
		}
		info := &VMInfo{Handle: vm.Handle, NrVCPUs: vm.NrVCPUs, Donated: vm.DonatedPages()}
		info.VCPUs = make([]VCPUInfo, 0, len(vm.VCPUs))
		for _, vc := range vm.VCPUs {
			vi := VCPUInfo{
				Initialized: vc.Initialized,
				LoadedOn:    vc.LoadedOn,
				Regs:        vc.Regs,
			}
			// A loaded vCPU's memcache is owned by its physical CPU,
			// not by the VM-table lock: it appears in that CPU's
			// locals instead.
			if vc.LoadedOn < 0 {
				vi.MC = vc.MC.Pages()
			}
			info.VCPUs = append(info.VCPUs, vi)
		}
		out.Table[vm.Handle] = info
	}
	for _, pfn := range hv.ReclaimablePFNs() {
		out.Reclaim.Add(pfn)
	}
	return out
}

// AbstractGuest computes the ghost of one VM's stage 2. Caller holds
// that VM's lock. After teardown the table is gone; the abstraction is
// then present-but-empty.
//
// The VMSnapshot call below runs under the guest lock, not the vms
// lock: the slot pointer is stable while the guest lock pins the VM,
// the sanctioned exception VMSnapshot's contract documents.
//
//ghost:requires lock=guest
//ghostlint:ignore lockcheck VMSnapshot under the guest lock reads a slot pinned by that lock (see VMSnapshot contract)
func AbstractGuest(hv *hyp.Hypervisor, h hyp.Handle) GuestPgt {
	slot := int(h - hyp.HandleOffset)
	vm := hv.VMSnapshot(slot)
	if vm == nil || vm.PGT == nil {
		return GuestPgt{Present: true, PGT: AbstractPgtable{Footprint: PageSet{}}}
	}
	return GuestPgt{Present: true, PGT: InterpretPgtable(hv.Mem, vm.PGT.Root())}
}

// AbstractLocal records one physical CPU's thread-local state.
func AbstractLocal(hv *hyp.Hypervisor, cpu int) CPULocal {
	c := hv.CPUs[cpu]
	return CPULocal{
		Present:   true,
		HostRegs:  c.HostRegs,
		GuestRegs: c.GuestRegs,
		PerCPU:    hv.PerCPUState(cpu),
		LoadedMC:  hv.LoadedMCPages(cpu),
	}
}

// AbstractGlobals copies the boot constants into the ghost state.
func AbstractGlobals(hv *hyp.Hypervisor) Globals {
	return Globals{Present: true, Globals: hv.Globals()}
}
