package ghost

import (
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// TestSpecFaultsFlagCorrectImplementation: with a spec defect
// injected, the FIXED hypervisor triggers oracle alarms — the
// correspondence check cuts both ways, and testing debugs the
// specification too (paper §6, "found many errors in the specification
// itself").
func TestSpecFaultsFlagCorrectImplementation(t *testing.T) {
	drive := map[SpecBug]func(t *testing.T, s *sys){
		SpecBugShareForgetPkvm: func(t *testing.T, s *sys) {
			s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1)))
		},
		SpecBugReclaimForgetShared: func(t *testing.T, s *sys) {
			// The exact sequence the random tester found: donate a
			// page to a guest, guest shares it back, teardown,
			// reclaim.
			h := setupVMForOracle(t, s)
			pfns := []arch.PFN{s.hostPFN(200), s.hostPFN(201), s.hostPFN(202)}
			for i, pfn := range pfns {
				next := uint64(0)
				if i+1 < len(pfns) {
					next = uint64(pfns[i+1].Phys())
				}
				s.hv.Mem.Write64(pfn.Phys(), next)
			}
			if r := s.hvc(t, 0, hyp.HCTopupVCPUMemcache, uint64(h), 0, uint64(pfns[0].Phys()), 3); r != 0 {
				t.Fatalf("topup: %v", hyp.Errno(r))
			}
			if r := s.hvc(t, 0, hyp.HCVCPULoad, uint64(h), 0); r != 0 {
				t.Fatal("load")
			}
			gp := s.hostPFN(300)
			if r := s.hvc(t, 0, hyp.HCHostMapGuest, uint64(gp), 16); r != 0 {
				t.Fatalf("map_guest: %v", hyp.Errno(r))
			}
			s.hv.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestShareHost, IPA: 16 << arch.PageShift})
			if r := s.hvc(t, 0, hyp.HCVCPURun); r != hyp.RunExitYield {
				t.Fatal("run")
			}
			if r := s.hvc(t, 0, hyp.HCVCPUPut); r != 0 {
				t.Fatal("put")
			}
			if r := s.hvc(t, 0, hyp.HCTeardownVM, uint64(h)); r != 0 {
				t.Fatal("teardown")
			}
			s.rec.ResetFailures()
			s.hvc(t, 0, hyp.HCHostReclaimPage, uint64(gp))
		},
		SpecBugAbortInvertInject: func(t *testing.T, s *sys) {
			s.touch(t, 0, arch.IPA(s.hostPFN(0).Phys()), true)
		},
	}

	for _, bug := range AllSpecBugs() {
		t.Run(string(bug), func(t *testing.T) {
			// Sanity: clean without the spec fault.
			s := newSys(t)
			drive[bug](t, s)
			s.mustClean(t)

			SetSpecFault(bug, true)
			defer ClearSpecFaults()
			s2 := newSys(t)
			drive[bug](t, s2)
			s2.mustAlarm(t, FailSpecMismatch)
		})
	}
}

// The random-tester-finds-spec-bugs experiment lives in
// internal/randtest (TestRandomTesterFindsSpecBug) to avoid an import
// cycle.
