package ghost

import (
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
)

// TestRelationalAgreesWithFunctional replays every host_share_hyp
// event of a recorded trace through BOTH specification styles and
// checks the verdicts coincide — the §3 style comparison as a
// differential test.
func TestRelationalAgreesWithFunctional(t *testing.T) {
	check := func(t *testing.T, bugs ...faults.Bug) {
		t.Helper()
		s := newSys(t, bugs...)
		tr := s.rec.RecordTrace()
		// A mix of success, EPERM, and EINVAL shares.
		pfn := s.hostPFN(1)
		s.hvc(t, 0, hyp.HCHostShareHyp, uint64(pfn))
		s.hvc(t, 0, hyp.HCHostShareHyp, uint64(pfn))
		s.hvc(t, 0, hyp.HCHostShareHyp, uint64(arch.PhysToPFN(hyp.UARTPhys)))
		s.hvc(t, 1, hyp.HCHostShareHyp, uint64(s.hostPFN(2)))

		for _, ev := range tr.Events {
			if ev.Call.HC(ev.Pre) != hyp.HCHostShareHyp {
				continue
			}
			// Functional verdict: replayEvent's ternary machinery.
			funcDetail := replayEvent(ev)
			funcOK := funcDetail == ""
			// Relational verdict.
			rel := RelHostShareHyp(ev.Pre, ev.Post, &ev.Call)
			regs := RelCheckRegisters(ev.Pre, ev.Post, ev.Call.CPU)
			relOK := rel.Allowed && regs.Allowed
			if funcOK != relOK {
				t.Errorf("styles disagree on event %d (ret=%v): functional ok=%v (%s), relational ok=%v (%s/%s)",
					ev.Seq, hyp.Errno(ev.Call.Ret), funcOK, funcDetail, relOK, rel.Reason, regs.Reason)
			}
		}
	}
	t.Run("fixed", func(t *testing.T) { check(t) })
	t.Run("wrong-perms", func(t *testing.T) { check(t, faults.BugShareWrongPerms) })
	t.Run("skip-state-check", func(t *testing.T) { check(t, faults.BugShareSkipStateCheck) })
	t.Run("wrong-return", func(t *testing.T) { check(t, faults.BugWrongReturnValue) })
}

// TestRelationalDirect exercises the relational spec on constructed
// transitions.
func TestRelationalDirect(t *testing.T) {
	pfn := ramPFN(0)
	pre := prestate(hyp.HCHostShareHyp, uint64(pfn))
	call := &CallData{CPU: 0, Reason: arch.ExitHVC, Ret: 0}

	// The correct transition.
	good := pre.Clone()
	good.Host.Shared.Set(uint64(pfn.Phys()), 1,
		Mapped(pfn.Phys(), hostMemoryAttributes(true, arch.StateSharedOwned)))
	good.Pkvm.PGT.Mapping.Set(uint64(pfn.Phys())+hyp.HypVAOffset, 1,
		Mapped(pfn.Phys(), hypMemoryAttributes(true, arch.StateSharedBorrowed)))
	if v := RelHostShareHyp(pre, good, call); !v.Allowed {
		t.Errorf("correct transition forbidden: %s", v.Reason)
	}

	// Doing nothing while claiming success.
	if v := RelHostShareHyp(pre, pre.Clone(), call); v.Allowed {
		t.Error("no-op transition with ret=0 allowed")
	}

	// The loose ENOMEM: no-op IS allowed.
	call2 := &CallData{CPU: 0, Reason: arch.ExitHVC, Ret: int64(hyp.ENOMEM)}
	if v := RelHostShareHyp(pre, pre.Clone(), call2); !v.Allowed {
		t.Errorf("loose ENOMEM no-op forbidden: %s", v.Reason)
	}
	// But ENOMEM with a visible change is not.
	if v := RelHostShareHyp(pre, good, call2); v.Allowed {
		t.Error("ENOMEM with state change allowed")
	}

	// Unexpected errno.
	call3 := &CallData{CPU: 0, Reason: arch.ExitHVC, Ret: int64(hyp.EBUSY)}
	if v := RelHostShareHyp(pre, pre.Clone(), call3); v.Allowed {
		t.Error("EBUSY accepted for share")
	}
}
