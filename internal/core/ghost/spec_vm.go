package ghost

import (
	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// specInitVM specifies __pkvm_init_vm. Slot assignment is
// deterministic (lowest free slot), so the expected handle is
// computable from the abstract pre-state. On success the return value
// is the handle, not zero.
func specInitVM(post, pre *State, call *CallData) int64 {
	g := pre.Globals.Globals
	nrVCPUs := int(call.Arg(pre, 1))
	donPFN := arch.PFN(call.Arg(pre, 2))
	donNr := call.Arg(pre, 3)
	donPhys := donPFN.Phys()

	post.CopyVMs(pre)
	post.CopyHost(pre)

	if nrVCPUs < 1 || nrVCPUs > hyp.MaxVCPUs || donNr != hyp.InitVMDonation(nrVCPUs) {
		rInitVMEinval.hit()
		return int64(hyp.EINVAL)
	}
	if !g.InRAM(donPhys) || !g.InRAM(donPhys+arch.PhysAddr(donNr<<arch.PageShift)-1) {
		rInitVMEinval.hit()
		return int64(hyp.EINVAL)
	}

	// Lowest free slot.
	slot := -1
	for s := 0; s < hyp.MaxVMs; s++ {
		if _, used := pre.VMs.Table[hyp.HandleOffset+hyp.Handle(s)]; !used {
			slot = s
			break
		}
	}
	if slot < 0 {
		rInitVMEnospc.hit()
		return int64(hyp.ENOSPC)
	}

	for i := uint64(0); i < donNr; i++ {
		if !ownedExclusivelyByHost(pre, donPhys+arch.PhysAddr(i<<arch.PageShift)) {
			rInitVMEperm.hit()
			return int64(hyp.EPERM)
		}
	}

	handle := hyp.HandleOffset + hyp.Handle(slot)
	info := &VMInfo{Handle: handle, NrVCPUs: nrVCPUs}
	for i := 0; i < nrVCPUs; i++ {
		info.VCPUs = append(info.VCPUs, VCPUInfo{LoadedOn: -1})
	}
	// The last donated frame becomes the stage 2 root; the rest stay
	// attached as metadata backing.
	for i := uint64(0); i < donNr-1; i++ {
		info.Donated = append(info.Donated, donPFN+arch.PFN(i))
	}
	post.VMs.Table[handle] = info
	post.Host.Annot.Set(uint64(donPhys), donNr, Annotated(hyp.IDHyp))
	rInitVMOK.hit()
	return int64(handle)
}

// specInitVCPU specifies __pkvm_init_vcpu.
func specInitVCPU(post, pre *State, call *CallData) int64 {
	handle := hyp.Handle(call.Arg(pre, 1))
	idx := int(call.Arg(pre, 2))

	post.CopyVMs(pre)

	vm, ok := pre.VMs.Table[handle]
	if !ok {
		rInitVCPUEnoent.hit()
		return int64(hyp.ENOENT)
	}
	if idx < 0 || idx >= vm.NrVCPUs {
		rInitVCPUEinval.hit()
		return int64(hyp.EINVAL)
	}
	if vm.VCPUs[idx].Initialized {
		rInitVCPUEexist.hit()
		return int64(hyp.EEXIST)
	}
	post.VMs.Table[handle].VCPUs[idx].Initialized = true
	rInitVCPUOK.hit()
	return int64(hyp.OK)
}

// specTeardownVM specifies __pkvm_teardown_vm: the VM leaves the
// table; everything it held — metadata backing, its stage 2 tree's own
// frames, its memcache reserves, and every frame its stage 2 mapped —
// enters the reclaim set; the guest stage 2 becomes empty.
func specTeardownVM(post, pre *State, call *CallData) int64 {
	handle := hyp.Handle(call.Arg(pre, 1))

	post.CopyVMs(pre)

	vm, ok := pre.VMs.Table[handle]
	if !ok {
		rTeardownEnoent.hit()
		return int64(hyp.ENOENT)
	}
	for _, vc := range vm.VCPUs {
		if vc.LoadedOn >= 0 {
			rTeardownEbusy.hit()
			return int64(hyp.EBUSY)
		}
	}

	guest := pre.Guests[handle]
	if guest == nil || !guest.Present {
		// The implementation takes the guest lock on this path; if it
		// did not, the recording is missing and the mismatch will
		// surface in the ternary check via an empty expectation.
		guest = &GuestPgt{Present: true, PGT: AbstractPgtable{Footprint: PageSet{}}}
	}

	delete(post.VMs.Table, handle)
	for _, pfn := range vm.Donated {
		post.VMs.Reclaim.Add(pfn)
	}
	for _, vc := range vm.VCPUs {
		for _, pfn := range vc.MC {
			post.VMs.Reclaim.Add(pfn)
		}
	}
	guest.PGT.Footprint.ForEach(func(pfn arch.PFN) {
		post.VMs.Reclaim.Add(pfn)
	})
	for _, ml := range guest.PGT.Mapping.Maplets() {
		if ml.Target.Kind != TargetMapped {
			continue
		}
		post.VMs.Reclaim.AddRange(arch.PhysToPFN(ml.Target.Phys), ml.NrPages)
	}
	// The guest stage 2 is destroyed: present but empty.
	post.Guests[handle] = &GuestPgt{Present: true, PGT: AbstractPgtable{Footprint: PageSet{}}}
	rTeardownOK.hit()
	return int64(hyp.OK)
}

// specVCPULoad specifies __pkvm_vcpu_load: ownership of the vCPU's
// mutable state transfers from the VM-table lock to this physical CPU
// (§3.1) — its memcache moves into the CPU locals, its saved registers
// become the live guest context.
func specVCPULoad(post, pre *State, call *CallData) int64 {
	cpu := call.CPU
	handle := hyp.Handle(call.Arg(pre, 1))
	idx := int(call.Arg(pre, 2))

	if pre.local(cpu).PerCPU.LoadedVM != 0 {
		rLoadEbusyCPU.hit()
		return int64(hyp.EBUSY)
	}

	post.CopyVMs(pre)

	vm, ok := pre.VMs.Table[handle]
	if !ok {
		rLoadEnoent.hit()
		return int64(hyp.ENOENT)
	}
	if idx < 0 || idx >= vm.NrVCPUs {
		rLoadEinval.hit()
		return int64(hyp.EINVAL)
	}
	vc := vm.VCPUs[idx]
	if !vc.Initialized {
		rLoadEnoent.hit()
		return int64(hyp.ENOENT)
	}
	if vc.LoadedOn >= 0 {
		rLoadEbusyVCPU.hit()
		return int64(hyp.EBUSY)
	}

	post.VMs.Table[handle].VCPUs[idx].LoadedOn = cpu
	post.VMs.Table[handle].VCPUs[idx].MC = nil // ownership moved to the CPU

	l := post.local(cpu)
	l.PerCPU.LoadedVM = handle
	l.PerCPU.LoadedVCPU = idx
	l.GuestRegs = vc.Regs
	l.LoadedMC = append([]arch.PFN(nil), vc.MC...)
	rLoadOK.hit()
	return int64(hyp.OK)
}

// specVCPUPut specifies __pkvm_vcpu_put: the reverse ownership
// transfer.
func specVCPUPut(post, pre *State, call *CallData) int64 {
	cpu := call.CPU
	preL := pre.local(cpu)
	if preL.PerCPU.LoadedVM == 0 {
		rPutEnoent.hit()
		return int64(hyp.ENOENT)
	}
	handle, idx := preL.PerCPU.LoadedVM, preL.PerCPU.LoadedVCPU

	post.CopyVMs(pre)
	if _, ok := pre.VMs.Table[handle]; !ok {
		// The implementation panics here; no post-state to specify.
		return int64(hyp.ENOENT)
	}
	vc := &post.VMs.Table[handle].VCPUs[idx]
	vc.Regs = preL.GuestRegs
	vc.LoadedOn = -1
	vc.MC = append([]arch.PFN(nil), preL.LoadedMC...)

	l := post.local(cpu)
	l.PerCPU.LoadedVM = 0
	l.PerCPU.LoadedVCPU = -1
	l.GuestRegs = preL.GuestRegs
	l.LoadedMC = nil
	rPutOK.hit()
	return int64(hyp.OK)
}

// specVCPURun specifies __pkvm_vcpu_run, parameterised on the recorded
// guest event (§4.3): which event the guest script produced is
// environment, what the hypervisor does with it is specification.
func specVCPURun(post, pre *State, call *CallData) (int64, bool) {
	cpu := call.CPU
	preL := pre.local(cpu)
	if preL.PerCPU.LoadedVM == 0 {
		rRunEnoent.hit()
		return int64(hyp.ENOENT), true
	}
	if len(call.GuestExits) != 1 {
		return 0, false // no recorded guest event: cannot specify
	}
	ev := call.GuestExits[0]
	handle := preL.PerCPU.LoadedVM

	// The implementation resolves the handle under the vms lock
	// without changing anything.
	post.CopyVMs(pre)

	// Whatever the guest did to its own registers while running at
	// EL1 — loads from racing memory, arithmetic, its program counter
	// — is environment: take the recorded exit context wholesale, and
	// re-specify only the hypervisor-visible registers below.
	post.local(cpu).GuestRegs = call.GuestRegsExit

	switch ev.Op.Kind {
	case hyp.GuestYield:
		rRunYield.hit()
		return hyp.RunExitYield, true

	case hyp.GuestAccess:
		// Whether the access faulted depends on racing table state —
		// recorded, not predicted. The specification constrains the
		// exit protocol: on an abort exit the fault details are in
		// x2/x3.
		if call.Ret == hyp.RunExitMemAbort {
			rRunAccessFault.hit()
			post.WriteGPR(cpu, 2, uint64(ev.Op.IPA))
			post.WriteGPR(cpu, 3, boolToReg(ev.Op.Write))
			return hyp.RunExitMemAbort, true
		}
		rRunAccessOK.hit()
		return hyp.RunExitYield, true

	case hyp.GuestShareHost:
		rRunShareHost.hit()
		errno := specGuestShareHost(post, pre, handle, ev.Op.IPA)
		post.local(cpu).GuestRegs[0] = errno.Reg()
		return hyp.RunExitYield, true

	case hyp.GuestUnshareHost:
		rRunUnshareHost.hit()
		errno := specGuestUnshareHost(post, pre, handle, ev.Op.IPA)
		post.local(cpu).GuestRegs[0] = errno.Reg()
		return hyp.RunExitYield, true
	}
	return 0, false
}

// specGuestShareHost: the guest lends one of its pages to the host.
func specGuestShareHost(post, pre *State, handle hyp.Handle, ipa arch.IPA) hyp.Errno {
	if !arch.PageAligned(uint64(ipa)) {
		return hyp.EINVAL
	}
	post.CopyGuest(pre, handle)
	post.CopyHost(pre)

	guest := pre.Guests[handle]
	if guest == nil || !guest.Present {
		return hyp.EINVAL
	}
	t, ok := guest.PGT.Mapping.Lookup(uint64(ipa))
	if !ok || t.Kind != TargetMapped || t.Attrs.State != arch.StateOwned {
		return hyp.EPERM
	}
	phys := t.Phys
	g := pre.Globals.Globals

	shared := t.Attrs
	shared.State = arch.StateSharedOwned
	post.Guests[handle].PGT.Mapping.Set(uint64(ipa), 1, Mapped(phys, shared))

	post.Host.Annot.Remove(uint64(phys), 1)
	post.Host.Shared.Set(uint64(phys), 1,
		Mapped(phys, hostMemoryAttributes(g.InRAM(phys), arch.StateSharedBorrowed)))
	return hyp.OK
}

// specGuestUnshareHost: the reverse.
func specGuestUnshareHost(post, pre *State, handle hyp.Handle, ipa arch.IPA) hyp.Errno {
	if !arch.PageAligned(uint64(ipa)) {
		return hyp.EINVAL
	}
	post.CopyGuest(pre, handle)
	post.CopyHost(pre)

	guest := pre.Guests[handle]
	if guest == nil || !guest.Present {
		return hyp.EINVAL
	}
	t, ok := guest.PGT.Mapping.Lookup(uint64(ipa))
	if !ok || t.Kind != TargetMapped || t.Attrs.State != arch.StateSharedOwned {
		return hyp.EPERM
	}
	phys := t.Phys

	owned := t.Attrs
	owned.State = arch.StateOwned
	post.Guests[handle].PGT.Mapping.Set(uint64(ipa), 1, Mapped(phys, owned))

	slot := int(handle - hyp.HandleOffset)
	post.Host.Shared.Remove(uint64(phys), 1)
	post.Host.Annot.Set(uint64(phys), 1, Annotated(hyp.GuestOwner(slot)))
	return hyp.OK
}

// specHostMapGuest specifies __pkvm_host_map_guest: a host page is
// donated into the loaded vCPU's VM. The table pages the guest
// mapping consumes come off the CPU-owned memcache; how many is
// memory-management detail, so the specification replays the recorded
// pop/push sequence (§4.3).
func specHostMapGuest(post, pre *State, call *CallData) int64 {
	cpu := call.CPU
	g := pre.Globals.Globals
	pfn := arch.PFN(call.Arg(pre, 1))
	gfn := call.Arg(pre, 2)
	phys := pfn.Phys()
	gpa := gfn << arch.PageShift

	preL := pre.local(cpu)
	if preL.PerCPU.LoadedVM == 0 {
		rMapGuestEnoent.hit()
		return int64(hyp.ENOENT)
	}
	handle := preL.PerCPU.LoadedVM

	if !g.InRAM(phys) || !arch.CanonicalIA(gpa) {
		rMapGuestEinval.hit()
		return int64(hyp.EINVAL)
	}

	post.CopyVMs(pre)
	post.CopyHost(pre)
	post.CopyGuest(pre, handle)

	if _, ok := pre.VMs.Table[handle]; !ok {
		rMapGuestEnoent.hit()
		return int64(hyp.ENOENT)
	}

	// The memcache traffic happens regardless of eventual success
	// (a failed map can still have grown the tree): replay it.
	l := post.local(cpu)
	for _, op := range call.MCOps {
		if op.Free {
			l.LoadedMC = append(l.LoadedMC, op.PFN)
		} else {
			if len(l.LoadedMC) == 0 || l.LoadedMC[len(l.LoadedMC)-1] != op.PFN {
				// Implementation popped something the ghost memcache
				// does not have: a real divergence, surfaced as a
				// locals mismatch by leaving the replay incomplete.
				break
			}
			l.LoadedMC = l.LoadedMC[:len(l.LoadedMC)-1]
		}
	}

	if !ownedExclusivelyByHost(pre, phys) {
		rMapGuestEperm.hit()
		return int64(hyp.EPERM)
	}
	guest := pre.Guests[handle]
	if guest == nil || !guest.Present {
		rMapGuestEinval.hit()
		return int64(hyp.EINVAL)
	}
	if _, exists := guest.PGT.Mapping.Lookup(gpa); exists {
		rMapGuestEexist.hit()
		return int64(hyp.EEXIST)
	}
	if looseNomem(pre, call) {
		rMapGuestNomem.hit()
		return int64(hyp.ENOMEM)
	}

	slot := int(handle - hyp.HandleOffset)
	post.Host.Annot.Set(uint64(phys), 1, Annotated(hyp.GuestOwner(slot)))
	post.Guests[handle].PGT.Mapping.Set(gpa, 1,
		Mapped(phys, arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: arch.StateOwned}))
	rMapGuestOK.hit()
	return int64(hyp.OK)
}

func boolToReg(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
