package ghost

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

// FailureKind classifies an oracle alarm.
type FailureKind uint8

const (
	// FailSpecMismatch: the recorded post-state disagrees with the
	// specification-computed post-state (the headline check, §4.2.2).
	FailSpecMismatch FailureKind = iota
	// FailHostInvariant: the host stage 2 abstraction found an illegal
	// incidental mapping (the loose bound of §3.1).
	FailHostInvariant
	// FailNonInterference: a component changed between hypercalls
	// while its lock was free (§4.4 check 1).
	FailNonInterference
	// FailSeparation: page-table footprints overlap (§4.4 check 2).
	FailSeparation
	// FailInitLayout: the boot-time hypervisor mapping does not match
	// the expected initial layout (catches the linear-map overlap).
	FailInitLayout
	// FailPanic: the hypervisor panicked mid-handler.
	FailPanic
	// FailSpecIncomplete: the specification declined to produce a
	// post-state (gradual specification, §4.2).
	FailSpecIncomplete
	// FailCacheDivergence: the incremental abstraction cache and the
	// full recompute disagree (differential self-check, VerifyCache).
	// This is a bug in the ghost machinery itself, never in the
	// hypervisor under test.
	FailCacheDivergence
	// FailStaleTLB: a software-TLB entry disagrees with the page table
	// it was filled from — the mutation that changed the translation
	// never issued the break-before-make TLB invalidation.
	FailStaleTLB
)

func (k FailureKind) String() string {
	switch k {
	case FailSpecMismatch:
		return "spec-mismatch"
	case FailHostInvariant:
		return "host-invariant"
	case FailNonInterference:
		return "non-interference"
	case FailSeparation:
		return "separation"
	case FailInitLayout:
		return "init-layout"
	case FailPanic:
		return "hyp-panic"
	case FailSpecIncomplete:
		return "spec-incomplete"
	case FailCacheDivergence:
		return "cache-divergence"
	case FailStaleTLB:
		return "stale-tlb"
	}
	return fmt.Sprintf("FailureKind(%d)", uint8(k))
}

// Failure is one oracle alarm.
type Failure struct {
	Kind   FailureKind
	CPU    int
	Call   CallData
	Detail string
	// History is the flight-recorder dump of the failing CPU at alarm
	// time, oldest trap first; the failing trap itself is the newest
	// entry. Nil when telemetry is disabled or the recorder has no
	// hypervisor attached.
	History []telemetry.TrapEvent
}

func (f Failure) String() string {
	return fmt.Sprintf("[%v] %s — %s", f.Kind, f.Call.String(), f.Detail)
}

// Stats are the recorder's counters.
type Stats struct {
	Traps    int // exceptions observed
	Checks   int // oracle comparisons executed
	Passed   int
	Failures int
	// MapletsLive is the number of maplets in the shared ghost copy —
	// the dominant term of the ghost memory impact (§6 performance).
	MapletsLive int
	// HookTime is the cumulative wall time spent inside the ghost
	// hooks across all CPUs — the instrumentation's share of the §6
	// overhead.
	HookTime time.Duration
	// Cache aggregates the abstraction caches' outcomes across all
	// components (hyp stage 1, host stage 2, every guest stage 2).
	Cache CacheStats
}

// cpuRec is the per-hardware-thread recording slot (the thread-local
// storage of the instrumented build).
type cpuRec struct {
	active bool
	pre    *State
	post   *State
	call   CallData
	// sessions records every lock session of every component within
	// the current trap, for the transactional checks of phased
	// hypercalls.
	sessions Sessions
}

// Recorder implements hyp.Instrumentation: it computes and records
// abstractions at the ownership-respecting points (Fig 6), maintains
// the single shared ghost copy for the non-interference check, and
// runs the specification oracle at each trap exit.
type Recorder struct {
	hv *hyp.Hypervisor

	// tracer/lane mirror the hypervisor's tracing identity (taken from
	// hv at Attach): oracle spans land on the same lane as the trap
	// spans they nest under.
	tracer *trace.Tracer
	lane   int

	// mu guards shared, failures, and counters. The ghost machinery
	// adds this lock for its own data; the hypervisor's own locking is
	// untouched (paper §3.2).
	mu sync.Mutex
	//ghost:guards lock=self
	shared   *State
	failures []Failure
	stats    Stats
	// hostFootprint is the host table's own frames as of the last
	// host-lock release; the separation check reads it instead of
	// re-interpreting the table.
	hostFootprint PageSet

	// Incremental abstraction caches, one per component page table
	// (see cache.go). Each has its own lock; gcMu guards only the
	// guest-cache map structure.
	hypCache    PgtableCache
	hostCache   hostCache
	gcMu        sync.Mutex
	guestCaches map[hyp.Handle]*PgtableCache

	// VerifyCache, when set, recomputes every abstraction from scratch
	// beside the cached path and raises FailCacheDivergence if they
	// disagree — the differential self-check of the cache machinery.
	VerifyCache bool

	cpus []*cpuRec

	// hookNanos accumulates time spent in hooks (atomic: hooks run on
	// all CPUs concurrently).
	hookNanos atomic.Int64

	// OnFailure, when set, is called (under mu) for each alarm;
	// used by the harness for live diff printing.
	OnFailure func(Failure)

	// OnEvent, when set, receives every checked trap as a TraceEvent
	// (for trace recording / offline replay). Called synchronously on
	// the trapping CPU's thread.
	OnEvent func(TraceEvent)
}

// Attach builds a recorder, wires it into the hypervisor, records the
// initial abstraction of every component, and checks the boot-time
// layout. It must be called before any hypercall traffic.
//
//ghostlint:ignore lockcheck guardcheck boot-time snapshot: no hypercall traffic exists yet, so the lock-free reads of every component are sound
func Attach(hv *hyp.Hypervisor) *Recorder {
	r := &Recorder{
		hv:          hv,
		shared:      NewState(),
		cpus:        make([]*cpuRec, hv.Globals().NrCPUs),
		guestCaches: make(map[hyp.Handle]*PgtableCache),
	}
	for i := range r.cpus {
		r.cpus[i] = &cpuRec{}
	}
	r.tracer, r.lane = hv.Tracer()

	// Initial recording: no traffic yet, so reading without locks is
	// sound. This snapshot seeds the non-interference baseline and
	// warms the abstraction caches.
	r.shared.Globals = AbstractGlobals(hv)
	r.shared.Pkvm = r.abstractHyp()
	host, hostFP, herr := r.abstractHost()
	r.shared.Host = host
	r.hostFootprint = hostFP
	r.shared.VMs = AbstractVMs(hv)

	boot := CallData{Boot: true}
	if herr != nil {
		r.fail(Failure{Kind: FailHostInvariant, Call: boot, Detail: herr.Error()})
	}
	if detail := CheckInitLayout(r.shared); detail != "" {
		r.fail(Failure{Kind: FailInitLayout, Call: boot, Detail: detail})
	}

	hv.SetInstrumentation(r)
	return r
}

// ---------------------------------------------------------------------
// Cached abstraction paths. These wrap the Abstract* reference
// functions with the incremental caches; VerifyCache re-runs the
// reference implementation beside each and alarms on any divergence.

// abstractHyp is AbstractHyp through the cache.
//
//ghost:requires lock=dynamic
func (r *Recorder) abstractHyp() Pkvm {
	abs, _ := r.hypCache.Interpret(r.hv.Mem, r.hv.HypPGTRoot())
	r.verifyCached("pkvm stage 1", abs, r.hv.HypPGTRoot())
	return Pkvm{Present: true, PGT: abs}
}

// abstractHost is AbstractHostWithFootprint through the cache.
//
//ghost:requires lock=dynamic
func (r *Recorder) abstractHost() (Host, PageSet, error) {
	host, fp, herr := r.hostCache.abstract(r.hv)
	if r.VerifyCache {
		refHost, refFP, _ := AbstractHostWithFootprint(r.hv)
		if !EqualMappings(refHost.Annot, host.Annot) || !EqualMappings(refHost.Shared, host.Shared) ||
			!refFP.Equal(fp) {
			r.fail(Failure{Kind: FailCacheDivergence,
				Detail: "host stage 2: cached abstraction diverges from full recompute:\n" +
					diffHost(refHost, host) +
					fmt.Sprintf("  footprint: full %v, cached %v\n", refFP, fp)})
		}
	}
	return host, fp, herr
}

// abstractGuest is AbstractGuest through the per-VM cache.
//
//ghost:requires lock=dynamic
func (r *Recorder) abstractGuest(h hyp.Handle) GuestPgt {
	slot := int(h - hyp.HandleOffset)
	vm := r.hv.VMSnapshot(slot)
	if vm == nil || vm.PGT == nil {
		// Torn down (or never created): the table is gone, and with it
		// the cache's subject.
		r.guestCache(h).Invalidate()
		return GuestPgt{Present: true, PGT: AbstractPgtable{}}
	}
	abs, _ := r.guestCache(h).Interpret(r.hv.Mem, vm.PGT.Root())
	r.verifyCached(h.String()+" stage 2", abs, vm.PGT.Root())
	return GuestPgt{Present: true, PGT: abs}
}

// guestCache returns the cache for one VM's stage 2, creating it on
// first use.
func (r *Recorder) guestCache(h hyp.Handle) *PgtableCache {
	r.gcMu.Lock()
	defer r.gcMu.Unlock()
	c := r.guestCaches[h]
	if c == nil {
		c = &PgtableCache{}
		r.guestCaches[h] = c
	}
	return c
}

// verifyCached compares a cached page-table abstraction against a
// fresh full interpretation. Sound because hooks run under the
// component's lock; with a hypervisor buggy enough to race here, a
// spurious divergence alarm is the least misleading outcome available.
func (r *Recorder) verifyCached(name string, got AbstractPgtable, root arch.PhysAddr) {
	if !r.VerifyCache {
		return
	}
	sp := r.tracer.Begin(r.lane, spanGhostVerify)
	defer sp.End()
	ref := InterpretPgtable(r.hv.Mem, root)
	if !EqualMappings(ref.Mapping, got.Mapping) || !ref.Footprint.Equal(got.Footprint) {
		r.fail(Failure{Kind: FailCacheDivergence,
			Detail: name + ": cached abstraction diverges from full recompute:\n" +
				diffPages(DiffMappings(ref.Mapping, got.Mapping)) +
				fmt.Sprintf("  footprint: full %v, cached %v\n", ref.Footprint, got.Footprint)})
	}
}

// timeHook accumulates the time since start into the hook-time
// counter; used as `defer r.timeHook(time.Now())`.
func (r *Recorder) timeHook(start time.Time) {
	d := time.Since(start)
	r.hookNanos.Add(int64(d))
	if !telemetry.Disabled() {
		ghostHookTime.ObserveDuration(d)
	}
}

// fail records an alarm; callers may hold mu or not (it re-locks).
func (r *Recorder) fail(f Failure) {
	if !telemetry.Disabled() {
		failureCounter(f.Kind).Inc()
		// Forensics: attach the failing CPU's recent trap history. The
		// flight record of the current trap is written before TrapExit
		// runs the oracle, so the dump ends with the failing trap.
		// Boot-time alarms have no trapping CPU to dump.
		if f.History == nil && r.hv != nil && !f.Call.Boot {
			f.History = r.hv.FlightRecorder().Dump(f.CPU)
		}
	}
	r.mu.Lock()
	r.failures = append(r.failures, f)
	r.stats.Failures++
	cb := r.OnFailure
	r.mu.Unlock()
	if cb != nil {
		cb(f)
	}
}

// Failures returns a copy of all alarms so far.
func (r *Recorder) Failures() []Failure {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Failure(nil), r.failures...)
}

// ResetFailures clears the alarm list (between test cases).
func (r *Recorder) ResetFailures() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures = nil
}

// Stats returns the counters.
func (r *Recorder) Stats() Stats {
	var cs CacheStats
	cs.add(r.hypCache.Stats())
	cs.add(r.hostCache.pgt.Stats())
	r.gcMu.Lock()
	for _, c := range r.guestCaches {
		cs.add(c.Stats())
	}
	r.gcMu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.HookTime = time.Duration(r.hookNanos.Load())
	s.Cache = cs
	s.MapletsLive = r.shared.Pkvm.PGT.Mapping.NrMaplets() +
		r.shared.Host.Annot.NrMaplets() + r.shared.Host.Shared.NrMaplets()
	for _, g := range r.shared.Guests {
		s.MapletsLive += g.PGT.Mapping.NrMaplets()
	}
	return s
}

// ---------------------------------------------------------------------
// hyp.Instrumentation implementation — the Fig 6 timeline.

// TrapEntry is point (1): begin recording the pre-state with the
// thread-local data.
func (r *Recorder) TrapEntry(cpu int, reason arch.ExitReason) {
	defer r.timeHook(time.Now())
	rec := r.cpus[cpu]
	rec.active = true
	rec.pre = NewState()
	rec.post = NewState()
	rec.call = CallData{CPU: cpu, Reason: reason, Fault: r.hv.CPUs[cpu].Fault}
	rec.sessions = make(Sessions)

	r.mu.Lock()
	rec.pre.Globals = r.shared.Globals
	r.mu.Unlock()
	l := AbstractLocal(r.hv, cpu)
	rec.pre.Locals[cpu] = &l
}

// LockAcquired is points (2)-(3): record the component's abstraction
// into the pre-state (first acquisition only) and open a new lock
// session, after checking the component has not changed since it was
// last recorded (§4.4 non-interference).
//
//ghost:requires lock=dynamic
func (r *Recorder) LockAcquired(cpu int, c hyp.Component) {
	defer r.timeHook(time.Now())
	rec := r.cpus[cpu]
	if !rec.active {
		return
	}
	snap := r.recordComponent(rec.pre, c, true)
	rec.sessions[c] = append(rec.sessions[c], &Session{Pre: snap})
}

// LockReleasing is points (4)-(5): record the component's abstraction
// into the post-state, close the lock session, and refresh the shared
// copy.
//
//ghost:requires lock=dynamic
func (r *Recorder) LockReleasing(cpu int, c hyp.Component) {
	defer r.timeHook(time.Now())
	rec := r.cpus[cpu]
	if !rec.active {
		return
	}
	snap := r.recordComponent(rec.post, c, false)
	if ses := rec.sessions[c]; len(ses) > 0 && ses[len(ses)-1].Post == nil {
		ses[len(ses)-1].Post = snap
	}
	r.checkTLB(cpu, c)
}

// checkTLB runs the software-TLB coherence check for the component
// whose lock is about to be released: every cached translation tagged
// with the component's VMID must still agree with the component's page
// table. A disagreement means a mutation skipped its break-before-make
// TLB invalidation — real hardware would keep serving the old
// translation. Running inside LockReleasing makes the table quiescent
// for the re-walk.
//
//ghost:requires lock=dynamic
func (r *Recorder) checkTLB(cpu int, c hyp.Component) {
	tlb := r.hv.TLB()
	if tlb == nil {
		return
	}
	var vmid arch.VMID
	switch c.Kind {
	case hyp.CompHost:
		vmid = hyp.VMIDHost
	case hyp.CompHyp:
		vmid = hyp.VMIDHyp
	case hyp.CompGuest:
		vmid = hyp.VMIDForHandle(c.Handle)
	default:
		return // the VM table owns no translations
	}
	if stale := tlb.CheckCoherence(vmid); len(stale) > 0 {
		r.fail(Failure{Kind: FailStaleTLB, CPU: cpu, Call: r.cpus[cpu].call,
			Detail: strings.Join(stale, "\n")})
	}
}

// recordComponent computes one component's abstraction, stores it into
// the pre- or post-state, and returns a snapshot holding just that
// component (the lock-session record). checkBaseline selects the
// acquire side (non-interference comparison, keep-first into the
// pre-state) vs the release side (refresh the shared copy,
// overwrite-last into the post-state).
//
//ghost:requires lock=dynamic
func (r *Recorder) recordComponent(into *State, c hyp.Component, checkBaseline bool) *State {
	snap := NewState()
	switch c.Kind {
	case hyp.CompHost:
		host, hostFP, herr := r.abstractHost()
		if herr != nil {
			r.fail(Failure{Kind: FailHostInvariant, Detail: herr.Error()})
		}
		snap.Host = host
		r.mu.Lock()
		if checkBaseline {
			if r.shared.Host.Present && !(EqualMappings(r.shared.Host.Annot, host.Annot) &&
				EqualMappings(r.shared.Host.Shared, host.Shared)) {
				r.mu.Unlock()
				r.fail(Failure{Kind: FailNonInterference,
					Detail: "host stage 2 changed while unlocked:\n" + diffHost(r.shared.Host, host)})
				r.mu.Lock()
			}
			if into.Host.Present {
				r.mu.Unlock()
				return snap // re-acquisition: keep the first pre
			}
		} else {
			r.shared.Host = Host{Present: true, Annot: host.Annot.Clone(), Shared: host.Shared.Clone()}
			r.hostFootprint = hostFP
		}
		r.mu.Unlock()
		into.Host = host

	case hyp.CompHyp:
		pk := r.abstractHyp()
		snap.Pkvm = pk
		r.mu.Lock()
		if checkBaseline {
			if r.shared.Pkvm.Present && !EqualMappings(r.shared.Pkvm.PGT.Mapping, pk.PGT.Mapping) {
				r.mu.Unlock()
				r.fail(Failure{Kind: FailNonInterference,
					Detail: "pkvm stage 1 changed while unlocked:\n" +
						diffPages(DiffMappings(r.shared.Pkvm.PGT.Mapping, pk.PGT.Mapping))})
				r.mu.Lock()
			}
			if into.Pkvm.Present {
				r.mu.Unlock()
				return snap
			}
		} else {
			r.shared.Pkvm = Pkvm{Present: true, PGT: pk.PGT.Clone()}
		}
		r.mu.Unlock()
		into.Pkvm = pk

	case hyp.CompVMTable:
		vms := AbstractVMs(r.hv)
		// snap may alias the freshly abstracted table: spec functions
		// deep-clone via CopyVMs before mutating a post state, and the
		// retained shared copy below is cloned independently.
		snap.VMs = vms
		r.mu.Lock()
		if checkBaseline {
			if r.shared.VMs.Present && !r.shared.VMs.Equal(vms) {
				r.mu.Unlock()
				r.fail(Failure{Kind: FailNonInterference, Detail: "vm table changed while unlocked"})
				r.mu.Lock()
			}
			if into.VMs.Present {
				r.mu.Unlock()
				return snap
			}
		} else {
			r.shared.VMs = vms.Clone()
		}
		r.mu.Unlock()
		into.VMs = vms

	case hyp.CompGuest:
		g := r.abstractGuest(c.Handle)
		snap.Guests[c.Handle] = &GuestPgt{Present: true, PGT: g.PGT.Clone()}
		r.mu.Lock()
		if checkBaseline {
			if base, ok := r.shared.Guests[c.Handle]; ok && base.Present &&
				!EqualMappings(base.PGT.Mapping, g.PGT.Mapping) {
				r.mu.Unlock()
				r.fail(Failure{Kind: FailNonInterference,
					Detail: fmt.Sprintf("guest %v stage 2 changed while unlocked", c.Handle)})
				r.mu.Lock()
			}
			if cur, ok := into.Guests[c.Handle]; ok && cur.Present {
				r.mu.Unlock()
				return snap
			}
		} else {
			r.shared.Guests[c.Handle] = &GuestPgt{Present: true, PGT: g.PGT.Clone()}
		}
		r.mu.Unlock()
		into.Guests[c.Handle] = &g
	}

	if !checkBaseline {
		r.checkSeparation()
	}
	return snap
}

// checkSeparation verifies pairwise disjointness of all recorded
// page-table footprints, and that the host/hyp tables stay within the
// boot carve-out (§4.4 check 2). Footprints are sorted run lists, so
// each pairwise check is one linear merge, not a nested set iteration.
//
// Every violated pair is reported in one alarm: an earlier version kept
// only the last formatted detail, silently overwriting earlier pairs,
// which hid concurrent overlaps when three or more tables collided.
func (r *Recorder) checkSeparation() {
	r.mu.Lock()
	type fp struct {
		name string
		set  PageSet
	}
	var fps []fp
	if r.shared.Pkvm.Present {
		fps = append(fps, fp{"pkvm", r.shared.Pkvm.PGT.Footprint})
	}
	if r.shared.Host.Present {
		fps = append(fps, fp{"host", r.hostFootprint})
	}
	for h, g := range r.shared.Guests {
		if g.Present {
			fps = append(fps, fp{h.String(), g.PGT.Footprint})
		}
	}
	g := r.shared.Globals
	r.mu.Unlock()

	carveStart := arch.PhysToPFN(g.CarveStart)
	carveEnd := carveStart + arch.PFN(g.CarveSize>>arch.PageShift)
	var details []string
	for i := range fps {
		for j := i + 1; j < len(fps); j++ {
			if pfn, ok := fps[i].set.FirstOverlap(fps[j].set); ok {
				details = append(details, fmt.Sprintf("footprints of %s and %s overlap at frame %#x",
					fps[i].name, fps[j].name, uint64(pfn)))
			}
		}
		if fps[i].name == "pkvm" || fps[i].name == "host" {
			if pfn, ok := fps[i].set.FirstOutside(carveStart, carveEnd); ok {
				details = append(details, fmt.Sprintf("%s table frame %#x outside the carve-out",
					fps[i].name, uint64(pfn)))
			}
		}
	}
	if len(details) > 0 {
		sort.Strings(details)
		r.fail(Failure{Kind: FailSeparation, Detail: strings.Join(details, "\n")})
	}
}

// ReadOnce records a nondeterministic host-memory read (§4.3).
func (r *Recorder) ReadOnce(cpu int, pa arch.PhysAddr, val uint64) {
	rec := r.cpus[cpu]
	if !rec.active {
		return
	}
	rec.call.Reads = append(rec.call.Reads, ReadOnceRec{PA: pa, Val: val})
}

// GuestExit records which scripted guest event vcpu_run processed.
func (r *Recorder) GuestExit(cpu int, handle hyp.Handle, vcpu int, op hyp.GuestOp) {
	rec := r.cpus[cpu]
	if !rec.active {
		return
	}
	rec.call.GuestExits = append(rec.call.GuestExits, GuestExitRec{Handle: handle, VCPU: vcpu, Op: op})
}

// MemcacheAlloc records a pop from the loaded vCPU's memcache.
func (r *Recorder) MemcacheAlloc(cpu int, pfn arch.PFN) {
	rec := r.cpus[cpu]
	if !rec.active {
		return
	}
	rec.call.MCOps = append(rec.call.MCOps, MCOp{PFN: pfn})
}

// MemcacheFree records a push back onto the loaded vCPU's memcache.
func (r *Recorder) MemcacheFree(cpu int, pfn arch.PFN) {
	rec := r.cpus[cpu]
	if !rec.active {
		return
	}
	rec.call.MCOps = append(rec.call.MCOps, MCOp{Free: true, PFN: pfn})
}

// HypPanic records an internal panic; the trap never reaches TrapExit.
func (r *Recorder) HypPanic(cpu int, msg string) {
	rec := r.cpus[cpu]
	rec.call.Panicked = true
	rec.call.PanicMsg = msg
	rec.active = false
	r.fail(Failure{Kind: FailPanic, CPU: cpu, Call: rec.call, Detail: msg})
}

// TrapExit is point (6)-(8): record the final thread-local state and
// the return value, compute the expected post-state from the
// specification, and compare.
func (r *Recorder) TrapExit(cpu int) {
	defer r.timeHook(time.Now())
	rec := r.cpus[cpu]
	if !rec.active {
		return
	}
	rec.active = false
	// The check span covers post-state recording, the specification
	// computation, and the ternary comparison — the oracle's per-trap
	// cost, nested inside the enclosing hyp.trap span.
	sp := r.tracer.Begin(r.lane, spanGhostCheck)
	defer sp.End()

	l := AbstractLocal(r.hv, cpu)
	rec.post.Locals[cpu] = &l
	rec.post.Globals = rec.pre.Globals
	rec.call.Ret = int64(l.HostRegs[1])
	rec.call.GuestRegsExit = l.GuestRegs
	rec.call.exitLocals = &l

	r.mu.Lock()
	r.stats.Traps++
	r.mu.Unlock()

	if r.OnEvent != nil {
		r.OnEvent(TraceEvent{
			Pre:      rec.pre,
			Post:     rec.post,
			Call:     rec.call,
			Sessions: sessionRecords(rec.sessions),
		})
	}

	if !telemetry.Disabled() {
		ghostChecks.Inc()
		defer func(start time.Time) {
			ghostCheckLat.ObserveDuration(time.Since(start))
		}(time.Now())
	}

	// Phased hypercalls get the transactional per-session check
	// instead of the monolithic comparison: with locks released and
	// retaken mid-call, other CPUs may legitimately change the
	// components between phases.
	if rec.call.Reason == arch.ExitHVC && isPhased(rec.call.HC(rec.pre)) {
		r.mu.Lock()
		r.stats.Checks++
		r.mu.Unlock()
		if detail := checkShareRangePhased(rec.pre, &rec.call, rec.sessions); detail != "" {
			r.fail(Failure{Kind: FailSpecMismatch, CPU: cpu, Call: rec.call, Detail: detail})
			return
		}
		r.markPassed()
		return
	}

	// (7) compute the expected post-state from pre + call data.
	expected := NewState()
	ok := ComputePost(expected, rec.pre, &rec.call)

	r.mu.Lock()
	r.stats.Checks++
	r.mu.Unlock()

	if !ok {
		r.fail(Failure{Kind: FailSpecIncomplete, CPU: cpu, Call: rec.call,
			Detail: "no specification for this exception"})
		return
	}

	// (8) the ternary pre / recorded-post / computed-post comparison.
	if detail := CompareTernary(rec.pre, rec.post, expected, cpu); detail != "" {
		r.fail(Failure{Kind: FailSpecMismatch, CPU: cpu, Call: rec.call, Detail: detail})
		return
	}
	r.markPassed()
}

// markPassed bumps both the recorder's own stats and the telemetry
// counter for a clean oracle comparison.
func (r *Recorder) markPassed() {
	r.mu.Lock()
	r.stats.Passed++
	r.mu.Unlock()
	if !telemetry.Disabled() {
		ghostChecksPassed.Inc()
	}
}
