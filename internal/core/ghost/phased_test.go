package ghost

import (
	"sync"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
)

// shareRange issues the phased hypercall directly.
func shareRange(t *testing.T, s *sys, cpu int, pfn arch.PFN, nr uint64) int64 {
	t.Helper()
	return s.hvc(t, cpu, hyp.HCHostShareHypRange, uint64(pfn), nr)
}

func TestPhasedShareClean(t *testing.T) {
	s := newSys(t)
	base := s.hostPFN(10)
	if r := shareRange(t, s, 0, base, 4); r != 0 {
		t.Fatalf("share range: %v", hyp.Errno(r))
	}
	s.mustClean(t)
	// All four pages are shared on both sides.
	host, _ := AbstractHost(s.hv)
	for i := uint64(0); i < 4; i++ {
		if _, ok := host.Shared.Lookup(uint64(base.Phys()) + i*arch.PageSize); !ok {
			t.Errorf("page %d not shared", i)
		}
	}
	st := s.rec.Stats()
	if st.Passed != st.Checks || st.Checks == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestPhasedShareMidRangeEPERM(t *testing.T) {
	s := newSys(t)
	base := s.hostPFN(10)
	// Pre-share page 2: the range stops there with EPERM, earlier
	// pages stay shared — and the per-phase oracle accepts exactly
	// that.
	if r := s.hvc(t, 0, hyp.HCHostShareHyp, uint64(base+2)); r != 0 {
		t.Fatal("setup share failed")
	}
	if r := shareRange(t, s, 0, base, 4); hyp.Errno(r) != hyp.EPERM {
		t.Fatalf("range over pre-shared page = %v, want EPERM", hyp.Errno(r))
	}
	s.mustClean(t)
	host, _ := AbstractHost(s.hv)
	if _, ok := host.Shared.Lookup(uint64(base.Phys())); !ok {
		t.Error("phase 0's share rolled back unexpectedly")
	}
	if _, ok := host.Shared.Lookup(uint64(base.Phys()) + 3*arch.PageSize); ok {
		t.Error("phase past the failure executed")
	}
}

func TestPhasedShareBadArgs(t *testing.T) {
	s := newSys(t)
	if r := shareRange(t, s, 0, s.hostPFN(0), 0); hyp.Errno(r) != hyp.EINVAL {
		t.Errorf("nr=0: %v", hyp.Errno(r))
	}
	if r := shareRange(t, s, 0, s.hostPFN(0), hyp.MaxShareRange+1); hyp.Errno(r) != hyp.EINVAL {
		t.Errorf("nr too big: %v", hyp.Errno(r))
	}
	if r := shareRange(t, s, 0, arch.PhysToPFN(hyp.UARTPhys), 2); hyp.Errno(r) != hyp.EINVAL {
		t.Errorf("MMIO range: %v", hyp.Errno(r))
	}
	s.mustClean(t)
}

// TestPhasedShareInterferenceTolerated is the point of the
// transactional extension: while CPU 0 runs a long phased share,
// CPU 1 churns its own share/unshare traffic. The monolithic whole-
// trap comparison would see CPU 1's effects inside CPU 0's pre/post
// window and false-alarm; the per-session check must stay silent.
func TestPhasedShareInterferenceTolerated(t *testing.T) {
	s := newSys(t)
	rangeBase := s.hostPFN(100)
	churnPage := s.hostPFN(500)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if r := shareRange(t, s, 0, rangeBase, hyp.MaxShareRange); r != 0 {
				t.Errorf("share range iter %d: %v", i, hyp.Errno(r))
				return
			}
			for p := uint64(0); p < hyp.MaxShareRange; p++ {
				if r := s.hvc(t, 0, hyp.HCHostUnshareHyp, uint64(rangeBase)+p); r != 0 {
					t.Errorf("unshare: %v", hyp.Errno(r))
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if r := s.hvc(t, 1, hyp.HCHostShareHyp, uint64(churnPage)); r != 0 {
				t.Errorf("churn share: %v", hyp.Errno(r))
				return
			}
			if r := s.hvc(t, 1, hyp.HCHostUnshareHyp, uint64(churnPage)); r != 0 {
				t.Errorf("churn unshare: %v", hyp.Errno(r))
				return
			}
		}
	}()
	wg.Wait()
	s.mustClean(t)
}

func TestPhasedShareBugDetected(t *testing.T) {
	s := newSys(t, faults.BugShareRangeBadStop)
	base := s.hostPFN(10)
	if r := s.hvc(t, 0, hyp.HCHostShareHyp, uint64(base+1)); r != 0 {
		t.Fatal("setup share failed")
	}
	s.rec.ResetFailures()
	// The buggy build reports success although phase 1 failed.
	if r := shareRange(t, s, 0, base, 3); r != 0 {
		t.Fatalf("buggy range returned %v, injection broken", hyp.Errno(r))
	}
	s.mustAlarm(t, FailSpecMismatch)
}

func TestPhasedSessionsRecorded(t *testing.T) {
	// White-box: a 3-page range produces exactly 3 host and 3 hyp
	// lock sessions, each with both snapshots.
	s := newSys(t)
	base := s.hostPFN(10)
	var got Sessions
	// Snoop the sessions by reading the recorder's slot right after
	// the trap (single-threaded, so the slot is stable).
	if r := shareRange(t, s, 0, base, 3); r != 0 {
		t.Fatal(hyp.Errno(r))
	}
	got = s.rec.cpus[0].sessions
	hostSes := got[hyp.Component{Kind: hyp.CompHost}]
	hypSes := got[hyp.Component{Kind: hyp.CompHyp}]
	if len(hostSes) != 3 || len(hypSes) != 3 {
		t.Fatalf("sessions: %d host, %d hyp, want 3/3", len(hostSes), len(hypSes))
	}
	for i := range hostSes {
		if hostSes[i].Pre == nil || hostSes[i].Post == nil {
			t.Fatalf("host session %d incomplete", i)
		}
		// Each successive phase sees one more shared page in its pre.
		if got := hostSes[i].Pre.Host.Shared.NrPages(); got != uint64(i) {
			t.Errorf("session %d pre has %d shared pages, want %d", i, got, i)
		}
	}
}
