package ghost

import (
	"fmt"
	"strings"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// ReadOnceRec is one recorded READ_ONCE of host-owned memory: the
// value is under concurrent host control, so the specification takes
// it as a parameter rather than predicting it (paper §4.3).
type ReadOnceRec struct {
	PA  arch.PhysAddr
	Val uint64
}

// GuestExitRec records which guest event a vcpu_run processed —
// another environment parameter.
type GuestExitRec struct {
	Handle hyp.Handle
	VCPU   int
	Op     hyp.GuestOp
}

// MCOp records one memcache pop (alloc) or push (free) during guest
// table growth. How many table pages a mapping operation needs is
// memory-management detail outside the abstract state, so the
// specification replays the recorded sequence instead of predicting
// it.
type MCOp struct {
	Free bool
	PFN  arch.PFN
}

// CallData is the ghost call data (the paper's ghost_call_data): the
// per-exception information collected during implementation execution
// that the specification functions are parameterised on — the
// exception kind and arguments, the implementation's return value
// (for the loose -ENOMEM cases), and the recorded nondeterministic
// reads.
type CallData struct {
	CPU    int
	Reason arch.ExitReason
	Fault  arch.FaultInfo

	// Boot marks call data attached to a boot-time alarm (Attach's
	// initial-layout and host-invariant checks). There is no trapping
	// CPU or exception then; String renders "boot" instead of the
	// zero-valued cpu0/exit-reason fields, which used to read as if
	// CPU 0 had trapped.
	Boot bool

	// Ret is the implementation's x1 return value, read at trap exit.
	Ret int64

	// GuestRegsExit is the guest register context at trap exit. What
	// the guest does to its own registers while executing at EL1 —
	// values it loads from racing memory, arithmetic, its program
	// counter — is environment, not hypervisor specification, so on
	// vcpu_run exits the spec takes the whole file as a parameter and
	// re-specifies only the hypervisor-visible pieces (the hypercall
	// errno in guest r0).
	GuestRegsExit arch.Regs

	Reads      []ReadOnceRec
	GuestExits []GuestExitRec
	MCOps      []MCOp

	// Panicked is set when the handler hit an internal hypervisor
	// panic; no post-state exists then.
	Panicked bool
	PanicMsg string

	// exitLocals is the thread-local snapshot at trap exit, used by
	// the transactional (per-session) checks.
	exitLocals *CPULocal
}

// HC returns the hypercall ID of an HVC trap, taken from the recorded
// pre-state's registers.
func (c *CallData) HC(pre *State) hyp.HC {
	return hyp.HC(pre.ReadGPR(c.CPU, 0))
}

// Arg returns hypercall argument n (x1-based) from the pre-state.
func (c *CallData) Arg(pre *State, n int) uint64 {
	return pre.ReadGPR(c.CPU, n)
}

// NextRead pops the next recorded READ_ONCE value; the specification
// functions replay the implementation's reads in order. ok is false
// when the implementation performed fewer reads than the spec expects.
func (c *CallData) NextRead(idx *int) (uint64, bool) {
	if *idx >= len(c.Reads) {
		return 0, false
	}
	v := c.Reads[*idx].Val
	*idx++
	return v, true
}

func (c *CallData) String() string {
	if c.Boot {
		return "boot"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cpu%d %v", c.CPU, c.Reason)
	if c.Reason == arch.ExitMemAbort {
		fmt.Fprintf(&b, " ipa=%#x write=%v", uint64(c.Fault.Addr), c.Fault.Write)
	}
	fmt.Fprintf(&b, " ret=%v", hyp.Errno(c.Ret))
	if len(c.Reads) > 0 {
		fmt.Fprintf(&b, " reads=%d", len(c.Reads))
	}
	for _, g := range c.GuestExits {
		fmt.Fprintf(&b, " guest=%v/%d %v", g.Handle, g.VCPU, g.Op)
	}
	if c.Panicked {
		fmt.Fprintf(&b, " PANIC(%s)", c.PanicMsg)
	}
	return b.String()
}
