package ghost

// Branch coverage of the specification functions themselves — the
// paper measures its spec at line granularity (92%, 459/497, §5) with
// custom tooling because nothing standard reaches EL2. Here each
// branch outcome of each spec function registers a named region at
// init and marks it when executed; the report mirrors the paper's:
// what stays uncovered after the handwritten suite are the rare loose
// error branches.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// SpecRegion is one branch of a specification function.
type SpecRegion struct {
	name string
	hits atomic.Int64
}

var specRegionsMu sync.Mutex
var specRegions []*SpecRegion

// reg registers a spec region at package init.
func reg(name string) *SpecRegion {
	r := &SpecRegion{name: name}
	specRegionsMu.Lock()
	specRegions = append(specRegions, r)
	specRegionsMu.Unlock()
	return r
}

// hit marks the region executed.
func (r *SpecRegion) hit() { r.hits.Add(1) }

// SpecCoverage reports how many registered spec branches have executed
// since the last reset, with the names of the missing ones.
func SpecCoverage() (covered, total int, missing []string) {
	specRegionsMu.Lock()
	defer specRegionsMu.Unlock()
	for _, r := range specRegions {
		total++
		if r.hits.Load() > 0 {
			covered++
		} else {
			missing = append(missing, r.name)
		}
	}
	sort.Strings(missing)
	return covered, total, missing
}

// ResetSpecCoverage zeroes all region counters.
func ResetSpecCoverage() {
	specRegionsMu.Lock()
	defer specRegionsMu.Unlock()
	for _, r := range specRegions {
		r.hits.Store(0)
	}
}

// The spec regions, one per branch outcome of each specification
// function. The *.enomem-loose regions are exactly the branches the
// handwritten suite cannot reach deterministically — the measured
// residue, as in the paper.
var (
	rShareEinval      = reg("share.einval")
	rShareEperm       = reg("share.eperm")
	rShareNomemLoose  = reg("share.enomem-loose")
	rShareOK          = reg("share.ok")
	rUnshareEinval    = reg("unshare.einval")
	rUnshareEperm     = reg("unshare.eperm")
	rUnshareOK        = reg("unshare.ok")
	rDonateEinval     = reg("donate.einval")
	rDonateEperm      = reg("donate.eperm")
	rDonateNomemLoose = reg("donate.enomem-loose")
	rDonateOK         = reg("donate.ok")
	rReclaimEperm     = reg("reclaim.eperm")
	rReclaimOK        = reg("reclaim.ok")
	rTopupEinval      = reg("topup.einval")
	rTopupEnoent      = reg("topup.enoent")
	rTopupEbusy       = reg("topup.ebusy")
	rTopupLoopEinval  = reg("topup.loop-einval")
	rTopupLoopEperm   = reg("topup.loop-eperm")
	rTopupOK          = reg("topup.ok")
	rInitVMEinval     = reg("init-vm.einval")
	rInitVMEnospc     = reg("init-vm.enospc")
	rInitVMEperm      = reg("init-vm.eperm")
	rInitVMOK         = reg("init-vm.ok")
	rInitVCPUEnoent   = reg("init-vcpu.enoent")
	rInitVCPUEinval   = reg("init-vcpu.einval")
	rInitVCPUEexist   = reg("init-vcpu.eexist")
	rInitVCPUOK       = reg("init-vcpu.ok")
	rTeardownEnoent   = reg("teardown.enoent")
	rTeardownEbusy    = reg("teardown.ebusy")
	rTeardownOK       = reg("teardown.ok")
	rLoadEbusyCPU     = reg("load.ebusy-cpu")
	rLoadEnoent       = reg("load.enoent")
	rLoadEinval       = reg("load.einval")
	rLoadEbusyVCPU    = reg("load.ebusy-vcpu")
	rLoadOK           = reg("load.ok")
	rPutEnoent        = reg("put.enoent")
	rPutOK            = reg("put.ok")
	rRunEnoent        = reg("run.enoent")
	rRunYield         = reg("run.yield")
	rRunAccessFault   = reg("run.access-fault")
	rRunAccessOK      = reg("run.access-ok")
	rRunShareHost     = reg("run.guest-share")
	rRunUnshareHost   = reg("run.guest-unshare")
	rMapGuestEnoent   = reg("map-guest.enoent")
	rMapGuestEinval   = reg("map-guest.einval")
	rMapGuestEperm    = reg("map-guest.eperm")
	rMapGuestEexist   = reg("map-guest.eexist")
	rMapGuestNomem    = reg("map-guest.enomem-loose")
	rMapGuestOK       = reg("map-guest.ok")
	rAbortInjected    = reg("abort.injected")
	rAbortMapped      = reg("abort.mapped")
	rUnknownHC        = reg("unknown.enosys")
)
