package ghost_test

import (
	"fmt"
	"log"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

// Attaching the oracle and checking one hypercall.
func ExampleAttach() {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rec := ghost.Attach(hv)
	d := proxy.New(hv)

	pfn, _ := d.AllocPage()
	if err := d.ShareHyp(0, pfn); err != nil {
		log.Fatal(err)
	}

	st := rec.Stats()
	fmt.Printf("checks=%d passed=%d alarms=%d\n", st.Checks, st.Passed, st.Failures)
	// Output: checks=1 passed=1 alarms=0
}

// Building and querying an abstract mapping.
func ExampleMapping() {
	var m ghost.Mapping
	attrs := arch.Attrs{Perms: arch.PermRW, Mem: arch.MemNormal, State: arch.StateSharedOwned}
	m.Set(0x1000, 2, ghost.Mapped(0x4000_0000, attrs))
	m.Set(0x5000, 1, ghost.Annotated(1))

	tgt, ok := m.Lookup(0x2000)
	fmt.Println(ok, tgt)
	fmt.Println("pages:", m.NrPages(), "maplets:", m.NrMaplets())
	// Output:
	// true phys:40001000 S0 RW- Normal
	// pages: 3 maplets: 2
}

// Interpreting a concrete page table into its extensional meaning.
func ExampleInterpretPgtable() {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	abs := ghost.InterpretPgtable(hv.Mem, hv.HypPGTRoot())
	// The boot stage 1 maps the carve-out linearly plus the console:
	// one coalesced run of normal memory and one device page.
	fmt.Println("maplets:", abs.Mapping.NrMaplets())
	// Output: maplets: 2
}

// Diffing two abstract states, the paper's debugging workflow.
func ExampleDiffMappings() {
	var before, after ghost.Mapping
	attrs := arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal}
	before.Set(0x1000, 1, ghost.Mapped(0xA000, attrs))
	after.Set(0x1000, 1, ghost.Mapped(0xA000, attrs))
	after.Set(0x2000, 1, ghost.Mapped(0xB000, attrs))

	for _, d := range ghost.DiffMappings(before, after) {
		fmt.Println(d)
	}
	// Output: +virt:2000 phys:b000 SO RWX Normal
}
