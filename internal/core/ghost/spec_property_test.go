package ghost

// Property tests of the specification as a state machine in its own
// right: random operation sequences applied purely through the spec
// functions (no hypervisor anywhere) must preserve the isolation
// invariants the spec is supposed to encode. This is the paper's
// "specification as a tool for thinking" made executable: if the spec
// itself could reach a state where a page is simultaneously shared and
// annotated away, the spec is wrong regardless of the implementation.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// applySpec runs one hypercall through the spec and rolls the state
// forward (post-components where present, pre elsewhere), returning
// the new state and the spec's return value.
func applySpec(pre *State, id hyp.HC, ret int64, args ...uint64) (*State, int64) {
	l := pre.local(0)
	l.HostRegs[0] = uint64(id)
	for i := 1; i < 6; i++ {
		l.HostRegs[i] = 0
	}
	for i, a := range args {
		l.HostRegs[i+1] = a
	}
	post := NewState()
	call := &CallData{CPU: 0, Reason: arch.ExitHVC, Ret: ret}
	if !ComputePost(post, pre, call) {
		return pre, int64(hyp.ENOSYS)
	}
	next := pre.Clone()
	if post.Host.Present {
		next.Host = post.Host
	}
	if post.Pkvm.Present {
		next.Pkvm = post.Pkvm
	}
	if post.VMs.Present {
		next.VMs = post.VMs
	}
	for h, g := range post.Guests {
		next.Guests[h] = g
	}
	for c, lc := range post.Locals {
		next.Locals[c] = lc
	}
	return next, int64(post.ReadGPR(0, 1))
}

// specInvariants checks the isolation invariants of a ghost state.
func specInvariants(t *testing.T, s *State, step int) {
	t.Helper()
	// 1. No IPA is both annotated away and shared.
	for _, ml := range s.Host.Annot.Maplets() {
		for i := uint64(0); i < ml.NrPages; i++ {
			va := ml.VA + i<<arch.PageShift
			if _, both := s.Host.Shared.Lookup(va); both {
				t.Fatalf("step %d: ipa %#x both annotated and shared", step, va)
			}
		}
	}
	// 2. Every page the hypervisor borrows (pkvm mapping with
	// SharedBorrowed at a linear address) is shared-owned on the host
	// side.
	for _, ml := range s.Pkvm.PGT.Mapping.Maplets() {
		if ml.Target.Kind != TargetMapped || ml.Target.Attrs.State != arch.StateSharedBorrowed {
			continue
		}
		for i := uint64(0); i < ml.NrPages; i++ {
			phys := uint64(ml.Target.Phys) + i<<arch.PageShift
			tgt, ok := s.Host.Shared.Lookup(phys)
			if !ok || tgt.Attrs.State != arch.StateSharedOwned {
				t.Fatalf("step %d: hyp borrows %#x but host side is %+v (ok=%v)", step, phys, tgt, ok)
			}
		}
	}
	// 3. The hypervisor never maps borrowed memory executable.
	for _, ml := range s.Pkvm.PGT.Mapping.Maplets() {
		if ml.Target.Kind == TargetMapped && ml.Target.Attrs.State == arch.StateSharedBorrowed &&
			ml.Target.Attrs.Perms&arch.PermX != 0 {
			t.Fatalf("step %d: executable borrowed mapping at %#x", step, ml.VA)
		}
	}
}

// TestSpecStateMachineInvariants drives long random share / unshare /
// donate / reclaim sequences through the spec alone.
func TestSpecStateMachineInvariants(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := prestate(0)
		const span = 24
		base := ramPFN(0)

		for step := 0; step < 1500; step++ {
			pfn := base + arch.PFN(rng.Intn(span))
			switch rng.Intn(5) {
			case 0:
				s, _ = applySpec(s, hyp.HCHostShareHyp, 0, uint64(pfn))
			case 1:
				s, _ = applySpec(s, hyp.HCHostUnshareHyp, 0, uint64(pfn))
			case 2:
				s, _ = applySpec(s, hyp.HCHostDonateHyp, 0, uint64(pfn), uint64(rng.Intn(3)+1))
			case 3:
				// Make a donated page reclaimable, then reclaim it —
				// the host's recycling loop.
				if _, annotated := s.Host.Annot.Lookup(uint64(pfn.Phys())); annotated {
					s.VMs.Reclaim.Add(pfn)
					s, _ = applySpec(s, hyp.HCHostReclaimPage, 0, uint64(pfn))
				}
			case 4:
				// A spurious loose ENOMEM on a would-succeed share.
				s, _ = applySpec(s, hyp.HCHostShareHyp, int64(hyp.ENOMEM), uint64(pfn))
			}
			specInvariants(t, s, step)
		}
	}
}

// TestSpecShareUnshareRoundTrip: from any state where the page is
// exclusively host-owned, share followed by unshare restores the host
// and pkvm components exactly.
func TestSpecShareUnshareRoundTrip(t *testing.T) {
	f := func(pageIdx uint8, noiseIdx uint8) bool {
		s := prestate(0)
		// Background noise: another page already shared.
		noise := ramPFN(uint64(noiseIdx%16) + 100)
		s, _ = applySpec(s, hyp.HCHostShareHyp, 0, uint64(noise))

		pfn := ramPFN(uint64(pageIdx % 16))
		if !ownedExclusivelyByHost(s, pfn.Phys()) {
			return true // vacuous when the noise picked the same page
		}
		before := s.Clone()
		s, ret := applySpec(s, hyp.HCHostShareHyp, 0, uint64(pfn))
		if hyp.Errno(ret) != hyp.OK {
			return false
		}
		s, ret = applySpec(s, hyp.HCHostUnshareHyp, 0, uint64(pfn))
		if hyp.Errno(ret) != hyp.OK {
			return false
		}
		return EqualMappings(before.Host.Shared, s.Host.Shared) &&
			EqualMappings(before.Host.Annot, s.Host.Annot) &&
			EqualMappings(before.Pkvm.PGT.Mapping, s.Pkvm.PGT.Mapping)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSpecDonateReclaimRoundTrip: donate then reclaim restores the
// host's annotation state for each page.
func TestSpecDonateReclaimRoundTrip(t *testing.T) {
	s := prestate(0)
	pfn := ramPFN(4)
	before := s.Host.Annot.Clone()

	s, ret := applySpec(s, hyp.HCHostDonateHyp, 0, uint64(pfn), 2)
	if hyp.Errno(ret) != hyp.OK {
		t.Fatal(hyp.Errno(ret))
	}
	for i := arch.PFN(0); i < 2; i++ {
		s.VMs.Reclaim.Add(pfn + i)
		var r int64
		s, r = applySpec(s, hyp.HCHostReclaimPage, 0, uint64(pfn+i))
		if hyp.Errno(r) != hyp.OK {
			t.Fatal(hyp.Errno(r))
		}
	}
	if !EqualMappings(before, s.Host.Annot) {
		t.Errorf("donate/reclaim not a round trip:\n%s",
			diffPages(DiffMappings(before, s.Host.Annot)))
	}
	// Note: the pkvm side of a donation legitimately persists — the
	// hypervisor keeps its mapping of donated memory until it chooses
	// to return it, which this API (like pKVM's) does not model as a
	// host-visible transition.
}

// TestSpecIdempotentErrors: error-returning spec steps do not change
// the abstract state, whatever the error.
func TestSpecIdempotentErrors(t *testing.T) {
	s := prestate(0)
	pfn := ramPFN(3)
	s, _ = applySpec(s, hyp.HCHostShareHyp, 0, uint64(pfn)) // now shared

	snapshot := s.Clone()
	errCalls := []struct {
		id   hyp.HC
		ret  int64
		args []uint64
	}{
		{hyp.HCHostShareHyp, int64(hyp.EPERM), []uint64{uint64(pfn)}},           // double share
		{hyp.HCHostShareHyp, int64(hyp.EINVAL), []uint64{0}},                    // MMIO
		{hyp.HCHostUnshareHyp, int64(hyp.EPERM), []uint64{uint64(ramPFN(9))}},   // not shared
		{hyp.HCHostDonateHyp, int64(hyp.EPERM), []uint64{uint64(pfn), 1}},       // shared page
		{hyp.HCHostReclaimPage, int64(hyp.EPERM), []uint64{uint64(ramPFN(9))}},  // not reclaimable
		{hyp.HCVCPULoad, int64(hyp.ENOENT), []uint64{0x9999, 0}},                // bad handle
		{hyp.HCTeardownVM, int64(hyp.ENOENT), []uint64{0x9999}},                 // bad handle
		{hyp.HCInitVM, int64(hyp.EINVAL), []uint64{0, uint64(ramPFN(10)), 0}},   // bad args
		{hyp.HCTopupVCPUMemcache, int64(hyp.ENOENT), []uint64{0x9999, 0, 0, 1}}, // bad handle
	}
	for _, c := range errCalls {
		var ret int64
		s, ret = applySpec(s, c.id, c.ret, c.args...)
		if ret != c.ret {
			t.Fatalf("%v: spec returned %v, scenario expected %v", c.id, hyp.Errno(ret), hyp.Errno(c.ret))
		}
		if !EqualMappings(snapshot.Host.Shared, s.Host.Shared) ||
			!EqualMappings(snapshot.Host.Annot, s.Host.Annot) ||
			!EqualMappings(snapshot.Pkvm.PGT.Mapping, s.Pkvm.PGT.Mapping) ||
			!snapshot.VMs.Equal(s.VMs) {
			t.Fatalf("%v error path changed the abstract state", c.id)
		}
	}
}
