package ghost

import (
	"math/rand"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
	"ghostspec/internal/mem"
	"ghostspec/internal/pgtable"
)

// buildRandomTable builds a table with a random mix of pages, 2MB
// blocks, and annotations, returning it for interpretation.
func buildRandomTable(t *testing.T, seed int64) *pgtable.Table {
	t.Helper()
	m := arch.NewMemory(arch.DefaultLayout())
	pool := mem.NewPool("tables", arch.PFN(0x90000), 4096)
	tbl, err := pgtable.New("rand", m, arch.Stage2, pgtable.PoolAllocator{Pool: pool}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := []arch.Attrs{
		{Perms: arch.PermRWX, Mem: arch.MemNormal, State: arch.StateOwned},
		{Perms: arch.PermRW, Mem: arch.MemNormal, State: arch.StateSharedOwned},
		{Perms: arch.PermRW, Mem: arch.MemDevice, State: arch.StateSharedBorrowed},
	}
	base := uint64(0x4000_0000)
	for i := 0; i < 200; i++ {
		switch rng.Intn(4) {
		case 0: // single page
			va := base + uint64(rng.Intn(2048))*arch.PageSize
			pa := arch.PhysAddr(base + uint64(rng.Intn(2048))*arch.PageSize)
			if err := tbl.Map(va, arch.PageSize, pa, attrs[rng.Intn(len(attrs))], true); err != nil {
				t.Fatal(err)
			}
		case 1: // 2MB block, aligned
			va := base + uint64(rng.Intn(4))*(2<<20)
			if err := tbl.Map(va, 2<<20, arch.PhysAddr(va), attrs[rng.Intn(len(attrs))], true); err != nil {
				t.Fatal(err)
			}
		case 2: // annotation
			va := base + uint64(rng.Intn(2048))*arch.PageSize
			if err := tbl.Annotate(va, arch.PageSize, uint8(rng.Intn(3)+1)); err != nil {
				t.Fatal(err)
			}
		case 3: // unmap
			va := base + uint64(rng.Intn(2048))*arch.PageSize
			if err := tbl.Unmap(va, arch.PageSize*uint64(rng.Intn(3)+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tbl
}

// TestInterpretAgreesWithHardwareWalk is the central soundness
// property of the abstraction function: for every page, the
// interpreted finite map and the architecture's translation walk agree
// exactly — same presence, same output address, same attributes.
func TestInterpretAgreesWithHardwareWalk(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tbl := buildRandomTable(t, seed)
		abs := InterpretPgtable(tbl.Mem, tbl.Root())

		base := uint64(0x4000_0000)
		for p := uint64(0); p < 2048; p++ {
			va := base + p*arch.PageSize
			res, fault := arch.Walk(tbl.Mem, tbl.Root(), va, arch.Access{})
			tgt, ok := abs.Mapping.Lookup(va)

			hwMapped := fault == nil || fault.Kind == arch.FaultPermission
			absMapped := ok && tgt.Kind == TargetMapped
			if hwMapped != absMapped {
				t.Fatalf("seed %d va %#x: hw mapped=%v abs mapped=%v", seed, va, hwMapped, absMapped)
			}
			if !absMapped {
				continue
			}
			// Re-walk ignoring permissions by reading the leaf.
			if fault == nil {
				if res.OutputAddr != tgt.Phys {
					t.Fatalf("seed %d va %#x: hw %#x abs %#x", seed, va,
						uint64(res.OutputAddr), uint64(tgt.Phys))
				}
				if res.Attrs != tgt.Attrs {
					t.Fatalf("seed %d va %#x: hw attrs %v abs %v", seed, va, res.Attrs, tgt.Attrs)
				}
			}
		}
	}
}

// TestInterpretFootprint: the interpreted footprint is exactly the
// table's own pages.
func TestInterpretFootprint(t *testing.T) {
	tbl := buildRandomTable(t, 42)
	abs := InterpretPgtable(tbl.Mem, tbl.Root())
	want := PageSet{}
	for _, pfn := range tbl.TablePages() {
		want.Add(pfn)
	}
	if !abs.Footprint.Equal(want) {
		t.Errorf("footprint: abs %d pages, impl %d pages", abs.Footprint.Len(), want.Len())
	}
}

// TestInterpretAnnotations: annotations at page and block granularity
// both appear, with the right owner and page counts.
func TestInterpretAnnotations(t *testing.T) {
	m := arch.NewMemory(arch.DefaultLayout())
	pool := mem.NewPool("tables", arch.PFN(0x90000), 64)
	tbl, err := pgtable.New("a", m, arch.Stage2, pgtable.PoolAllocator{Pool: pool}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Annotate(0x4000_0000, arch.PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Annotate(0x4020_0000, 2<<20, 17); err != nil { // coarse
		t.Fatal(err)
	}
	abs := InterpretPgtable(m, tbl.Root())
	tgt, ok := abs.Mapping.Lookup(0x4000_0000)
	if !ok || tgt.Kind != TargetAnnotated || tgt.Owner != 1 {
		t.Errorf("page annotation: %+v ok=%v", tgt, ok)
	}
	tgt, ok = abs.Mapping.Lookup(0x4020_0000 + 511*arch.PageSize)
	if !ok || tgt.Kind != TargetAnnotated || tgt.Owner != 17 {
		t.Errorf("block annotation: %+v ok=%v", tgt, ok)
	}
	if abs.Mapping.NrPages() != 1+512 {
		t.Errorf("NrPages = %d, want 513", abs.Mapping.NrPages())
	}
}

// TestAbstractHostSplit: the host abstraction routes entries into
// annot/shared and drops legal owned mappings.
func TestAbstractHostSplit(t *testing.T) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	host, herr := AbstractHost(hv)
	if herr != nil {
		t.Fatalf("boot host abstraction: %v", herr)
	}
	// The carve-out is annotated hyp-owned.
	g := hv.Globals()
	tgt, ok := host.Annot.Lookup(uint64(g.CarveStart))
	if !ok || tgt.Owner != hyp.IDHyp {
		t.Errorf("carve-out annotation: %+v ok=%v", tgt, ok)
	}
	if !host.Shared.IsEmpty() {
		t.Error("boot shared mapping not empty")
	}
	if host.Annot.NrPages() != g.CarveSize>>arch.PageShift {
		t.Errorf("annot pages = %d, want %d", host.Annot.NrPages(), g.CarveSize>>arch.PageShift)
	}
}

// hostForceMap plants a mapping directly in the host stage 2, the way
// a buggy handler would — bypassing the hypervisor's API.
func hostForceMap(t *testing.T, hv *hyp.Hypervisor, ipa uint64, pa arch.PhysAddr, attrs arch.Attrs) {
	t.Helper()
	scratch := mem.NewPool("scratch", arch.PFN(0xA0000), 64)
	tbl := pgtable.Attach("host-backdoor", hv.Mem, arch.Stage2,
		pgtable.PoolAllocator{Pool: scratch}, 2, hv.HostPGTRoot())
	if err := tbl.Map(ipa, arch.PageSize, pa, attrs, true); err != nil {
		t.Fatal(err)
	}
}

// TestAbstractHostLegality: a non-identity owned mapping violates the
// loose host bound and is reported.
func TestAbstractHostLegality(t *testing.T) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	victim := hv.HostMemStart()
	other := victim + arch.PageSize
	hostForceMap(t, hv, uint64(victim), other,
		arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: arch.StateOwned})
	_, herr := AbstractHost(hv)
	if herr == nil {
		t.Fatal("non-identity owned mapping not flagged")
	}
	if _, ok := herr.(*HostInvariantError); !ok {
		t.Fatalf("unexpected error type %T", herr)
	}
}

// TestAbstractHostLegalityAttrs: wrong attributes on an owned mapping
// are flagged even when the address is an identity.
func TestAbstractHostLegalityAttrs(t *testing.T) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	victim := hv.HostMemStart()
	// Device attributes on DRAM: outside the legal bound.
	hostForceMap(t, hv, uint64(victim), victim,
		arch.Attrs{Perms: arch.PermRW, Mem: arch.MemDevice, State: arch.StateOwned})
	if _, herr := AbstractHost(hv); herr == nil {
		t.Fatal("wrong-attribute owned mapping not flagged")
	}
}

// TestCheckInitLayout: the fixed boot passes, the overlap-bug boot on
// big memory fails.
func TestCheckInitLayout(t *testing.T) {
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := NewState()
	st.Globals = AbstractGlobals(hv)
	st.Pkvm = AbstractHyp(hv)
	if d := CheckInitLayout(st); d != "" {
		t.Errorf("fixed boot flagged:\n%s", d)
	}

	big := arch.MemLayout{RAMStart: 1 << 30, RAMSize: 4 << 30, MMIOSize: 16 << 20}
	buggy, err := hyp.New(hyp.Config{Layout: big, Inj: faults.NewInjector(faults.BugLinearMapOverlap)})
	if err != nil {
		t.Fatal(err)
	}
	st2 := NewState()
	st2.Globals = AbstractGlobals(buggy)
	st2.Pkvm = AbstractHyp(buggy)
	if d := CheckInitLayout(st2); d == "" {
		t.Error("linear-map overlap not flagged on large memory")
	}
	// And the fixed boot on big memory passes.
	okBig, err := hyp.New(hyp.Config{Layout: big})
	if err != nil {
		t.Fatal(err)
	}
	st3 := NewState()
	st3.Globals = AbstractGlobals(okBig)
	st3.Pkvm = AbstractHyp(okBig)
	if d := CheckInitLayout(st3); d != "" {
		t.Errorf("fixed big-memory boot flagged:\n%s", d)
	}
}
