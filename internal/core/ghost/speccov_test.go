package ghost

import (
	"strings"
	"testing"

	"ghostspec/internal/hyp"
)

func TestSpecCoverageRegistryAndCounting(t *testing.T) {
	ResetSpecCoverage()
	c0, total, missing0 := SpecCoverage()
	if c0 != 0 || len(missing0) != total {
		t.Fatalf("after reset: covered=%d missing=%d total=%d", c0, len(missing0), total)
	}
	if total < 40 {
		t.Errorf("only %d spec regions registered", total)
	}

	// One successful share covers exactly one region.
	s := newSys(t)
	ResetSpecCoverage() // drop the regions the boot recording touched
	if r := s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1))); r != 0 {
		t.Fatal("share failed")
	}
	c1, _, missing := SpecCoverage()
	if c1 != 1 {
		t.Errorf("one call covered %d regions", c1)
	}
	for _, m := range missing {
		if m == "share.ok" {
			t.Error("share.ok still missing after a successful share")
		}
	}
}

// TestSuiteSpecCoverage is the E2 claim at spec granularity: after the
// handwritten suite, the only uncovered spec branches are the loose
// spurious-failure ones — the paper's 92% with the same kind of
// residue.
func TestSuiteSpecCoverage(t *testing.T) {
	ResetSpecCoverage()
	// Run the full oracle scenario set: the handwritten suite lives in
	// a higher package, so drive the equivalent breadth here through
	// the bug-free oracle scenario plus targeted error calls.
	s := newSys(t)
	fullScenario(t, s)
	// Extra calls for branches fullScenario misses.
	s.hvc(t, 0, hyp.HCInitVCPU, 0x9999, 0)                     // enoent
	s.hvc(t, 0, hyp.HCTeardownVM, 0x9999)                      // enoent
	s.hvc(t, 0, hyp.HCVCPULoad, 0x9999, 0)                     // enoent
	s.hvc(t, 0, hyp.HCHostDonateHyp, uint64(s.hostPFN(40)), 0) // einval
	s.hvc(t, 0, hyp.HCHostReclaimPage, uint64(s.hostPFN(40)))  // eperm
	s.hvc(t, 0, hyp.HCHostUnshareHyp, uint64(s.hostPFN(40)))   // eperm
	s.hvc(t, 0, hyp.HCTopupVCPUMemcache, 0x9999, 0, 0, 1)      // enoent
	s.hvc(t, 0, hyp.HCTopupVCPUMemcache, 0x9999, 0, 0, 999)    // einval (cap)
	_, total, missing := SpecCoverage()
	covered := total - len(missing)
	pct := 100 * float64(covered) / float64(total)
	t.Logf("spec regions: %d/%d (%.1f%%), missing: %v", covered, total, pct, missing)
	// This in-package scenario is narrower than the 41-test suite;
	// the full E2 measurement runs in cmd/benchreport. Here we only
	// require the mainline breadth.
	if pct < 50 {
		t.Errorf("scenario covers only %.1f%% of spec regions", pct)
	}
	// Whatever is missing must be rare-error or loose territory, not
	// mainline behaviour.
	for _, m := range missing {
		if strings.HasSuffix(m, ".ok") && m != "run.access-ok" {
			t.Errorf("mainline region %q uncovered by the scenario", m)
		}
	}
}
