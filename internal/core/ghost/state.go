package ghost

import (
	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// AbstractPgtable is the abstraction of one page table: its
// extensional mapping plus the memory footprint of the table pages
// themselves, which the separation invariant checks (paper §3.1, §4.4).
// The footprint is deliberately excluded from specification equality —
// which frames back the tree is an implementation detail.
type AbstractPgtable struct {
	Mapping   Mapping
	Footprint PageSet
}

// Clone returns an independent copy (the mapping copy-on-write, see
// Mapping.Clone).
func (a *AbstractPgtable) Clone() AbstractPgtable {
	return AbstractPgtable{Mapping: a.Mapping.Clone(), Footprint: a.Footprint.Clone()}
}

// Pkvm is the ghost of the hypervisor's own stage 1 (the paper's
// ghost_pkvm): present iff the pkvm lock was held during the recorded
// window.
type Pkvm struct {
	Present bool
	PGT     AbstractPgtable
}

// Host is the ghost of the host stage 2 (the paper's ghost_host). It
// is deliberately not a plain abstraction of the current host mapping
// (paper §3.1): mapping-on-demand makes the set of plainly-owned
// mapped pages nondeterministic, so the state records only the two
// deterministic components —
//
//   - Annot: pages annotated as owned by the hypervisor or a guest
//     (what the host must NOT be able to map), and
//   - Shared: pages the host has shared out or borrowed (what MUST be
//     mapped, with exact attributes).
//
// Everything else the host may or may not have faulted in; the
// abstraction function checks such incidental mappings are legal
// rather than recording them.
type Host struct {
	Present bool
	Annot   Mapping
	Shared  Mapping
}

// VCPUInfo is the ghost of one vCPU's metadata. While the vCPU is
// loaded on a physical CPU, ownership of its mutable state has
// transferred to that CPU (paper §3.1): the VM-table component then
// records MC as nil, and the live memcache appears in that CPU's
// locals instead.
type VCPUInfo struct {
	Initialized bool
	LoadedOn    int // physical CPU, or -1
	Regs        arch.Regs
	// MC is the memcache contents (donated frames, bottom first);
	// nil while the vCPU is loaded.
	MC []arch.PFN
}

// Equal reports structural equality.
func (v VCPUInfo) Equal(o VCPUInfo) bool {
	if v.Initialized != o.Initialized || v.LoadedOn != o.LoadedOn || v.Regs != o.Regs ||
		len(v.MC) != len(o.MC) {
		return false
	}
	for i := range v.MC {
		if v.MC[i] != o.MC[i] {
			return false
		}
	}
	return true
}

// VMInfo is the ghost of one VM's metadata (protected by the VM-table
// lock). The VM's stage 2 abstraction lives separately in
// State.Guests, because it is protected by its own lock.
type VMInfo struct {
	Handle  hyp.Handle
	NrVCPUs int
	VCPUs   []VCPUInfo
	// Donated are the metadata-backing frames still attached to the
	// VM (reclaimed after teardown).
	Donated []arch.PFN
}

// Clone returns an independent copy.
func (v *VMInfo) Clone() *VMInfo {
	out := &VMInfo{Handle: v.Handle, NrVCPUs: v.NrVCPUs}
	out.VCPUs = make([]VCPUInfo, len(v.VCPUs))
	for i, vc := range v.VCPUs {
		vc.MC = append([]arch.PFN(nil), vc.MC...)
		out.VCPUs[i] = vc
	}
	out.Donated = append([]arch.PFN(nil), v.Donated...)
	return out
}

// Equal reports structural equality.
func (v *VMInfo) Equal(o *VMInfo) bool {
	if v.Handle != o.Handle || v.NrVCPUs != o.NrVCPUs || len(v.VCPUs) != len(o.VCPUs) ||
		len(v.Donated) != len(o.Donated) {
		return false
	}
	for i := range v.VCPUs {
		if !v.VCPUs[i].Equal(o.VCPUs[i]) {
			return false
		}
	}
	for i := range v.Donated {
		if v.Donated[i] != o.Donated[i] {
			return false
		}
	}
	return true
}

// VMs is the ghost of the VM table (the vms lock's component): the
// metadata of every live VM plus the reclaim set.
type VMs struct {
	Present bool
	Table   map[hyp.Handle]*VMInfo
	Reclaim PageSet
}

// Clone returns an independent copy.
func (v VMs) Clone() VMs {
	out := VMs{Present: v.Present, Reclaim: v.Reclaim.Clone()}
	if v.Table != nil {
		out.Table = make(map[hyp.Handle]*VMInfo, len(v.Table))
		for h, vm := range v.Table {
			out.Table[h] = vm.Clone()
		}
	}
	return out
}

// Equal reports structural equality of present VM tables.
func (v VMs) Equal(o VMs) bool {
	if len(v.Table) != len(o.Table) || !v.Reclaim.Equal(o.Reclaim) {
		return false
	}
	for h, vm := range v.Table {
		ovm, ok := o.Table[h]
		if !ok || !vm.Equal(ovm) {
			return false
		}
	}
	return true
}

// GuestPgt is the ghost of one VM's stage 2 (its own lock's
// component).
type GuestPgt struct {
	Present bool
	PGT     AbstractPgtable
}

// CPULocal is the ghost of one physical CPU's thread-local state: the
// saved host and guest register contexts, the hypervisor's per-CPU
// data, and — while a vCPU is loaded — the loaded vCPU's memcache,
// whose ownership the load transferred to this CPU (paper §3.1,
// "locals").
type CPULocal struct {
	Present   bool
	HostRegs  arch.Regs
	GuestRegs arch.Regs
	PerCPU    hyp.PerCPU
	LoadedMC  []arch.PFN
}

// Equal reports structural equality.
func (c CPULocal) Equal(o CPULocal) bool {
	if c.HostRegs != o.HostRegs || c.GuestRegs != o.GuestRegs || c.PerCPU != o.PerCPU ||
		len(c.LoadedMC) != len(o.LoadedMC) {
		return false
	}
	for i := range c.LoadedMC {
		if c.LoadedMC[i] != o.LoadedMC[i] {
			return false
		}
	}
	return true
}

// cloneLocal deep-copies a CPULocal.
func cloneLocal(l CPULocal) CPULocal {
	l.LoadedMC = append([]arch.PFN(nil), l.LoadedMC...)
	return l
}

// Globals is the ghost copy of the hypervisor's boot-time constants.
// The specification could read them from the concrete state, but
// keeping copies preserves the implementation/specification hygiene
// split (paper §3.1).
type Globals struct {
	Present bool
	hyp.Globals
}

// State is the reified ghost state (the paper's ghost_state): one
// member per lock-protected component, each an option whose Present
// flag says whether the corresponding lock was held during the
// recorded window, plus the per-CPU locals.
type State struct {
	Pkvm    Pkvm
	Host    Host
	VMs     VMs
	Guests  map[hyp.Handle]*GuestPgt
	Globals Globals
	Locals  map[int]*CPULocal
}

// NewState returns an empty (all-absent) state.
func NewState() *State {
	return &State{
		Guests: make(map[hyp.Handle]*GuestPgt),
		Locals: make(map[int]*CPULocal),
	}
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	out := &State{
		Pkvm:    Pkvm{Present: s.Pkvm.Present, PGT: s.Pkvm.PGT.Clone()},
		Host:    Host{Present: s.Host.Present, Annot: s.Host.Annot.Clone(), Shared: s.Host.Shared.Clone()},
		VMs:     s.VMs.Clone(),
		Globals: s.Globals,
		Guests:  make(map[hyp.Handle]*GuestPgt, len(s.Guests)),
		Locals:  make(map[int]*CPULocal, len(s.Locals)),
	}
	for h, g := range s.Guests {
		out.Guests[h] = &GuestPgt{Present: g.Present, PGT: g.PGT.Clone()}
	}
	for c, l := range s.Locals {
		lc := cloneLocal(*l)
		out.Locals[c] = &lc
	}
	return out
}

// guest returns the guest entry for h, creating it absent.
func (s *State) guest(h hyp.Handle) *GuestPgt {
	g := s.Guests[h]
	if g == nil {
		g = &GuestPgt{}
		s.Guests[h] = g
	}
	return g
}

// local returns the locals entry for cpu, creating it absent.
func (s *State) local(cpu int) *CPULocal {
	l := s.Locals[cpu]
	if l == nil {
		l = &CPULocal{}
		s.Locals[cpu] = l
	}
	return l
}

// CopyPkvm copies the pkvm component from src — the specification
// functions' copy_abstraction_pkvm.
func (s *State) CopyPkvm(src *State) {
	s.Pkvm = Pkvm{Present: src.Pkvm.Present, PGT: src.Pkvm.PGT.Clone()}
}

// CopyHost copies the host component from src.
func (s *State) CopyHost(src *State) {
	s.Host = Host{Present: src.Host.Present, Annot: src.Host.Annot.Clone(), Shared: src.Host.Shared.Clone()}
}

// CopyVMs copies the VM-table component from src.
func (s *State) CopyVMs(src *State) { s.VMs = src.VMs.Clone() }

// CopyGuest copies one guest stage 2 component from src.
func (s *State) CopyGuest(src *State, h hyp.Handle) {
	if g, ok := src.Guests[h]; ok {
		s.Guests[h] = &GuestPgt{Present: g.Present, PGT: g.PGT.Clone()}
	}
}

// CopyLocal copies one CPU's locals from src.
func (s *State) CopyLocal(src *State, cpu int) {
	if l, ok := src.Locals[cpu]; ok {
		lc := cloneLocal(*l)
		s.Locals[cpu] = &lc
	}
}

// ReadGPR reads a host general-purpose register from the recorded
// locals — the specification functions' ghost_read_gpr.
func (s *State) ReadGPR(cpu, reg int) uint64 {
	return s.local(cpu).HostRegs[reg]
}

// WriteGPR writes a host register in the expected post-state — the
// specification functions' ghost_write_gpr.
func (s *State) WriteGPR(cpu, reg int, v uint64) {
	s.local(cpu).HostRegs[reg] = v
}
