package ghost

import (
	"fmt"
	"sort"
	"strings"

	"ghostspec/internal/hyp"
)

// diffPages renders page diffs in the paper's +/- notation, capped so
// a wildly wrong state does not flood the report.
func diffPages(diffs []PageDiff) string {
	const cap = 16
	var b strings.Builder
	for i, d := range diffs {
		if i == cap {
			fmt.Fprintf(&b, "  … %d more\n", len(diffs)-cap)
			break
		}
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// diffHost renders the host component differences.
func diffHost(old, new Host) string {
	var b strings.Builder
	if d := DiffMappings(old.Annot, new.Annot); len(d) > 0 {
		b.WriteString(" annot:\n" + diffPages(d))
	}
	if d := DiffMappings(old.Shared, new.Shared); len(d) > 0 {
		b.WriteString(" shared:\n" + diffPages(d))
	}
	return b.String()
}

// diffVMs renders VM-table differences: VMs added/removed/changed and
// reclaim-set deltas.
func diffVMs(want, got VMs) string {
	var b strings.Builder
	handles := map[hyp.Handle]bool{}
	for h := range want.Table {
		handles[h] = true
	}
	for h := range got.Table {
		handles[h] = true
	}
	sorted := make([]hyp.Handle, 0, len(handles))
	for h := range handles {
		sorted = append(sorted, h)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, h := range sorted {
		w, g := want.Table[h], got.Table[h]
		switch {
		case w == nil:
			fmt.Fprintf(&b, "  +vm %v (unexpected)\n", h)
		case g == nil:
			fmt.Fprintf(&b, "  -vm %v (missing)\n", h)
		case !w.Equal(g):
			fmt.Fprintf(&b, "  vm %v metadata differs:\n", h)
			for i := range w.VCPUs {
				if i < len(g.VCPUs) && !w.VCPUs[i].Equal(g.VCPUs[i]) {
					fmt.Fprintf(&b, "    vcpu%d: want init=%v loaded=%d mc=%d regs[0..3]=%x,"+
						" got init=%v loaded=%d mc=%d regs[0..3]=%x\n",
						i, w.VCPUs[i].Initialized, w.VCPUs[i].LoadedOn, len(w.VCPUs[i].MC), w.VCPUs[i].Regs[:4],
						g.VCPUs[i].Initialized, g.VCPUs[i].LoadedOn, len(g.VCPUs[i].MC), g.VCPUs[i].Regs[:4])
				}
			}
			if len(w.Donated) != len(g.Donated) {
				fmt.Fprintf(&b, "    donated: want %d frames, got %d\n", len(w.Donated), len(g.Donated))
			}
		}
	}
	if !want.Reclaim.Equal(got.Reclaim) {
		fmt.Fprintf(&b, "  reclaim: want %v, got %v\n", want.Reclaim, got.Reclaim)
	}
	return b.String()
}

// diffLocals renders register-file and per-CPU differences in the
// paper's regs -/+ style.
func diffLocals(want, got CPULocal) string {
	var b strings.Builder
	if want.HostRegs != got.HostRegs {
		b.WriteString(regsDiff("host regs", want.HostRegs[:], got.HostRegs[:]))
	}
	if want.GuestRegs != got.GuestRegs {
		b.WriteString(regsDiff("guest regs", want.GuestRegs[:], got.GuestRegs[:]))
	}
	if want.PerCPU != got.PerCPU {
		fmt.Fprintf(&b, "  percpu: want %+v, got %+v\n", want.PerCPU, got.PerCPU)
	}
	return b.String()
}

func regsDiff(name string, want, got []uint64) string {
	var w, g strings.Builder
	fmt.Fprintf(&w, "  %s -", name)
	fmt.Fprintf(&g, "  %s +", name)
	for i := range want {
		if want[i] != got[i] {
			fmt.Fprintf(&w, " r%d=%x", i, want[i])
			fmt.Fprintf(&g, " r%d=%x", i, got[i])
		}
	}
	return w.String() + "\n" + g.String() + "\n"
}

// FormatStateDiff renders the abstract-state change between two
// recorded states — the paper's "recorded post ghost state diff from
// recorded pre" report used throughout debugging.
func FormatStateDiff(pre, post *State) string {
	var b strings.Builder
	if pre.Host.Present && post.Host.Present {
		if d := DiffMappings(pre.Host.Shared, post.Host.Shared); len(d) > 0 {
			b.WriteString("host.shared\n" + diffPages(d))
		}
		if d := DiffMappings(pre.Host.Annot, post.Host.Annot); len(d) > 0 {
			b.WriteString("host.annot\n" + diffPages(d))
		}
	}
	if pre.Pkvm.Present && post.Pkvm.Present {
		if d := DiffMappings(pre.Pkvm.PGT.Mapping, post.Pkvm.PGT.Mapping); len(d) > 0 {
			b.WriteString("pkvm.pgt\n" + diffPages(d))
		}
	}
	for h, postG := range post.Guests {
		preG := pre.Guests[h]
		if preG != nil && preG.Present && postG.Present {
			if d := DiffMappings(preG.PGT.Mapping, postG.PGT.Mapping); len(d) > 0 {
				fmt.Fprintf(&b, "guest:%v.pgt\n%s", h, diffPages(d))
			}
		}
	}
	for cpu, postL := range post.Locals {
		preL := pre.Locals[cpu]
		if preL != nil && postL.Present && !preL.Equal(*postL) {
			b.WriteString(diffLocals(*preL, *postL))
		}
	}
	if b.Len() == 0 {
		return "(no abstract-state change)"
	}
	return b.String()
}
