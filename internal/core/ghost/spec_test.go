package ghost

// White-box tests of the specification functions as pure functions:
// each is driven with hand-constructed ghost pre-states and call data,
// never a live hypervisor — demonstrating the §4.2 property that spec
// functions read only the ghost state and call data.

import (
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// specGlobals builds a plausible set of ghost globals.
func specGlobals() Globals {
	return Globals{Present: true, Globals: hyp.Globals{
		NrCPUs:      4,
		HypVAOffset: hyp.HypVAOffset,
		RAMStart:    1 << 30,
		RAMSize:     256 << 20,
		MMIOSize:    16 << 20,
		CarveStart:  1 << 30,
		CarveSize:   4 << 20,
		UARTPhys:    hyp.UARTPhys,
	}}
}

// prestate builds a pre-state with globals, empty host/pkvm components
// present, and CPU 0 locals holding the given hypercall registers.
func prestate(id hyp.HC, args ...uint64) *State {
	s := NewState()
	s.Globals = specGlobals()
	s.Host = Host{Present: true}
	s.Pkvm = Pkvm{Present: true, PGT: AbstractPgtable{Footprint: PageSet{}}}
	s.VMs = VMs{Present: true, Table: map[hyp.Handle]*VMInfo{}, Reclaim: PageSet{}}
	l := &CPULocal{Present: true}
	l.PerCPU.LoadedVCPU = -1
	l.HostRegs[0] = uint64(id)
	for i, a := range args {
		l.HostRegs[i+1] = a
	}
	s.Locals[0] = l
	return s
}

func callFor(pre *State, ret int64) *CallData {
	return &CallData{CPU: 0, Reason: arch.ExitHVC, Ret: ret}
}

// ramPFN returns a pfn inside the test globals' RAM, past the carve.
func ramPFN(n uint64) arch.PFN { return arch.PFN((1<<30+8<<20)>>arch.PageShift) + arch.PFN(n) }

func TestSpecShareSuccess(t *testing.T) {
	pfn := ramPFN(0)
	pre := prestate(hyp.HCHostShareHyp, uint64(pfn))
	post := NewState()
	if !ComputePost(post, pre, callFor(pre, 0)) {
		t.Fatal("spec declined")
	}
	// Return registers: x0 cleared, x1 = 0.
	if post.ReadGPR(0, 0) != 0 || post.ReadGPR(0, 1) != 0 {
		t.Errorf("regs: x0=%#x x1=%#x", post.ReadGPR(0, 0), post.ReadGPR(0, 1))
	}
	// Host gains a shared-owned identity maplet.
	tgt, ok := post.Host.Shared.Lookup(uint64(pfn.Phys()))
	if !ok || tgt.Phys != pfn.Phys() || tgt.Attrs.State != arch.StateSharedOwned {
		t.Errorf("host.shared: %+v ok=%v", tgt, ok)
	}
	if tgt.Attrs.Perms != arch.PermRWX || tgt.Attrs.Mem != arch.MemNormal {
		t.Errorf("host attrs: %v", tgt.Attrs)
	}
	// pkvm gains a borrowed RW mapping at the linear address.
	tgt, ok = post.Pkvm.PGT.Mapping.Lookup(uint64(pfn.Phys()) + hyp.HypVAOffset)
	if !ok || tgt.Attrs.State != arch.StateSharedBorrowed || tgt.Attrs.Perms != arch.PermRW {
		t.Errorf("pkvm mapping: %+v ok=%v", tgt, ok)
	}
}

func TestSpecShareErrors(t *testing.T) {
	// Non-memory pfn: EINVAL.
	pre := prestate(hyp.HCHostShareHyp, uint64(arch.PhysToPFN(hyp.UARTPhys)))
	post := NewState()
	ComputePost(post, pre, callFor(pre, int64(hyp.EINVAL)))
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.EINVAL {
		t.Errorf("MMIO share expected EINVAL, spec wrote %v", hyp.ErrnoFromReg(post.ReadGPR(0, 1)))
	}
	if !post.Host.Shared.IsEmpty() {
		t.Error("error path updated host.shared")
	}

	// Page annotated away: EPERM.
	pfn := ramPFN(1)
	pre = prestate(hyp.HCHostShareHyp, uint64(pfn))
	pre.Host.Annot.Set(uint64(pfn.Phys()), 1, Annotated(hyp.IDHyp))
	post = NewState()
	ComputePost(post, pre, callFor(pre, int64(hyp.EPERM)))
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.EPERM {
		t.Error("annotated share not EPERM")
	}

	// Already shared: EPERM.
	pre = prestate(hyp.HCHostShareHyp, uint64(pfn))
	pre.Host.Shared.Set(uint64(pfn.Phys()), 1, Mapped(pfn.Phys(),
		arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: arch.StateSharedOwned}))
	post = NewState()
	ComputePost(post, pre, callFor(pre, int64(hyp.EPERM)))
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.EPERM {
		t.Error("double share not EPERM")
	}
}

func TestSpecShareLooseNomem(t *testing.T) {
	// A share that would deterministically succeed may still report
	// -ENOMEM (§4.3); the spec then requires an unchanged state.
	pfn := ramPFN(2)
	pre := prestate(hyp.HCHostShareHyp, uint64(pfn))
	post := NewState()
	ComputePost(post, pre, callFor(pre, int64(hyp.ENOMEM)))
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.ENOMEM {
		t.Error("loose ENOMEM not accepted")
	}
	if !post.Host.Shared.IsEmpty() || !post.Pkvm.PGT.Mapping.IsEmpty() {
		t.Error("loose ENOMEM changed state")
	}
	// But a hypercall OUTSIDE the mayNomem set does not get the
	// loophole: vcpu_put reporting ENOMEM computes its deterministic
	// answer instead.
	pre = prestate(hyp.HCVCPUPut)
	post = NewState()
	ComputePost(post, pre, callFor(pre, int64(hyp.ENOMEM)))
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) == hyp.ENOMEM {
		t.Error("vcpu_put allowed a spurious ENOMEM")
	}
}

func TestSpecUnshare(t *testing.T) {
	pfn := ramPFN(3)
	pre := prestate(hyp.HCHostUnshareHyp, uint64(pfn))
	pre.Host.Shared.Set(uint64(pfn.Phys()), 1, Mapped(pfn.Phys(),
		arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: arch.StateSharedOwned}))
	pre.Pkvm.PGT.Mapping.Set(uint64(pfn.Phys())+hyp.HypVAOffset, 1, Mapped(pfn.Phys(),
		arch.Attrs{Perms: arch.PermRW, Mem: arch.MemNormal, State: arch.StateSharedBorrowed}))
	post := NewState()
	ComputePost(post, pre, callFor(pre, 0))
	if !post.Host.Shared.IsEmpty() || !post.Pkvm.PGT.Mapping.IsEmpty() {
		t.Error("unshare did not clear both sides")
	}

	// Unsharing a page the guest shared (borrowed by the host) is
	// EPERM: the host does not own that share.
	pre = prestate(hyp.HCHostUnshareHyp, uint64(pfn))
	pre.Host.Shared.Set(uint64(pfn.Phys()), 1, Mapped(pfn.Phys(),
		arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: arch.StateSharedBorrowed}))
	post = NewState()
	ComputePost(post, pre, callFor(pre, int64(hyp.EPERM)))
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.EPERM {
		t.Error("unshare of borrowed page not EPERM")
	}
}

func TestSpecDonate(t *testing.T) {
	pfn := ramPFN(4)
	pre := prestate(hyp.HCHostDonateHyp, uint64(pfn), 3)
	post := NewState()
	ComputePost(post, pre, callFor(pre, 0))
	for i := uint64(0); i < 3; i++ {
		tgt, ok := post.Host.Annot.Lookup(uint64(pfn.Phys()) + i*arch.PageSize)
		if !ok || tgt.Owner != hyp.IDHyp {
			t.Errorf("page %d not annotated hyp", i)
		}
	}
	if post.Pkvm.PGT.Mapping.NrPages() != 3 {
		t.Errorf("pkvm gained %d pages, want 3", post.Pkvm.PGT.Mapping.NrPages())
	}
	// The three pages coalesce into single maplets on both sides.
	if post.Host.Annot.NrMaplets() != 1 || post.Pkvm.PGT.Mapping.NrMaplets() != 1 {
		t.Errorf("donation not coalesced: %d/%d maplets",
			post.Host.Annot.NrMaplets(), post.Pkvm.PGT.Mapping.NrMaplets())
	}
}

func TestSpecReclaim(t *testing.T) {
	pfn := ramPFN(5)
	pre := prestate(hyp.HCHostReclaimPage, uint64(pfn))
	pre.VMs.Reclaim.Add(pfn)
	pre.Host.Annot.Set(uint64(pfn.Phys()), 1, Annotated(hyp.GuestOwner(0)))
	post := NewState()
	ComputePost(post, pre, callFor(pre, 0))
	if post.VMs.Reclaim.Contains(pfn) {
		t.Error("reclaim set not shrunk")
	}
	if !post.Host.Annot.IsEmpty() {
		t.Error("annotation not cleared")
	}

	// Not reclaimable: EPERM, nothing changes.
	pre = prestate(hyp.HCHostReclaimPage, uint64(pfn))
	post = NewState()
	ComputePost(post, pre, callFor(pre, int64(hyp.EPERM)))
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.EPERM {
		t.Error("unreclaimable not EPERM")
	}
}

func TestSpecInitVMDeterministicSlot(t *testing.T) {
	pfn := ramPFN(8)
	don := hyp.InitVMDonation(2)
	pre := prestate(hyp.HCInitVM, 2, uint64(pfn), don)
	// Slots 0 and 2 taken: the spec must predict slot 1.
	pre.VMs.Table[hyp.HandleOffset] = &VMInfo{Handle: hyp.HandleOffset}
	pre.VMs.Table[hyp.HandleOffset+2] = &VMInfo{Handle: hyp.HandleOffset + 2}
	post := NewState()
	ComputePost(post, pre, callFor(pre, int64(hyp.HandleOffset+1)))
	want := hyp.HandleOffset + 1
	if hyp.Handle(post.ReadGPR(0, 1)) != want {
		t.Errorf("handle = %#x, want %v", post.ReadGPR(0, 1), want)
	}
	vm := post.VMs.Table[want]
	if vm == nil || vm.NrVCPUs != 2 || len(vm.VCPUs) != 2 {
		t.Fatalf("vm info: %+v", vm)
	}
	// All-but-last donated frames stay attached as metadata.
	if len(vm.Donated) != int(don)-1 {
		t.Errorf("donated = %d, want %d", len(vm.Donated), don-1)
	}
	if tgt, ok := post.Host.Annot.Lookup(uint64(pfn.Phys())); !ok || tgt.Owner != hyp.IDHyp {
		t.Error("donation not annotated")
	}
}

func TestSpecVCPULoadPutRoundTrip(t *testing.T) {
	h := hyp.HandleOffset
	regs := arch.Regs{1, 2, 3}
	mc := []arch.PFN{ramPFN(10), ramPFN(11)}

	pre := prestate(hyp.HCVCPULoad, uint64(h), 0)
	pre.VMs.Table[h] = &VMInfo{Handle: h, NrVCPUs: 1,
		VCPUs: []VCPUInfo{{Initialized: true, LoadedOn: -1, Regs: regs, MC: mc}}}
	post := NewState()
	ComputePost(post, pre, callFor(pre, 0))

	l := post.Locals[0]
	if l.PerCPU.LoadedVM != h || l.PerCPU.LoadedVCPU != 0 {
		t.Fatalf("locals after load: %+v", l.PerCPU)
	}
	if l.GuestRegs != regs {
		t.Error("guest regs not restored on load")
	}
	if len(l.LoadedMC) != 2 {
		t.Error("memcache ownership not transferred to CPU")
	}
	if post.VMs.Table[h].VCPUs[0].MC != nil {
		t.Error("vms-side memcache not cleared on load")
	}
	if post.VMs.Table[h].VCPUs[0].LoadedOn != 0 {
		t.Error("LoadedOn not set")
	}

	// Now put: construct the post-load state as the new pre.
	pre2 := prestate(hyp.HCVCPUPut)
	pre2.VMs = post.VMs.Clone()
	l2 := pre2.Locals[0]
	l2.PerCPU.LoadedVM = h
	l2.PerCPU.LoadedVCPU = 0
	l2.GuestRegs = arch.Regs{9, 8, 7} // guest ran and changed them
	l2.LoadedMC = mc[:1]              // one page was consumed
	post2 := NewState()
	ComputePost(post2, pre2, callFor(pre2, 0))

	vc := post2.VMs.Table[h].VCPUs[0]
	if vc.LoadedOn != -1 || vc.Regs != (arch.Regs{9, 8, 7}) {
		t.Errorf("vcpu after put: %+v", vc)
	}
	if len(vc.MC) != 1 {
		t.Errorf("memcache after put: %v", vc.MC)
	}
	if post2.Locals[0].PerCPU.LoadedVM != 0 {
		t.Error("CPU still marked loaded after put")
	}
}

func TestSpecTeardownReclaimSet(t *testing.T) {
	h := hyp.HandleOffset
	pre := prestate(hyp.HCTeardownVM, uint64(h))
	pre.VMs.Table[h] = &VMInfo{Handle: h, NrVCPUs: 1,
		VCPUs:   []VCPUInfo{{Initialized: true, LoadedOn: -1, MC: []arch.PFN{ramPFN(20)}}},
		Donated: []arch.PFN{ramPFN(21), ramPFN(22)}}
	guest := &GuestPgt{Present: true, PGT: AbstractPgtable{Footprint: NewPageSet(ramPFN(23))}}
	guest.PGT.Mapping.Set(16<<arch.PageShift, 1, Mapped(ramPFN(24).Phys(),
		arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: arch.StateOwned}))
	pre.Guests[h] = guest

	post := NewState()
	ComputePost(post, pre, callFor(pre, 0))
	if _, still := post.VMs.Table[h]; still {
		t.Error("vm still in table")
	}
	for _, pfn := range []arch.PFN{ramPFN(20), ramPFN(21), ramPFN(22), ramPFN(23), ramPFN(24)} {
		if !post.VMs.Reclaim.Contains(pfn) {
			t.Errorf("frame %#x not reclaimable", uint64(pfn))
		}
	}
	if g := post.Guests[h]; g == nil || !g.PGT.Mapping.IsEmpty() {
		t.Error("guest stage 2 not specified empty")
	}

	// A loaded vCPU blocks teardown.
	pre.VMs.Table[h] = &VMInfo{Handle: h, NrVCPUs: 1,
		VCPUs: []VCPUInfo{{Initialized: true, LoadedOn: 2}}}
	post = NewState()
	ComputePost(post, pre, callFor(pre, int64(hyp.EBUSY)))
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.EBUSY {
		t.Error("teardown of loaded VM not EBUSY")
	}
}

func TestSpecTopupReplaysReads(t *testing.T) {
	h := hyp.HandleOffset
	p0, p1 := ramPFN(30), ramPFN(40)
	pre := prestate(hyp.HCTopupVCPUMemcache, uint64(h), 0, uint64(p0.Phys()), 2)
	pre.VMs.Table[h] = &VMInfo{Handle: h, NrVCPUs: 1,
		VCPUs: []VCPUInfo{{Initialized: true, LoadedOn: -1}}}
	call := callFor(pre, 0)
	call.Reads = []ReadOnceRec{
		{PA: p0.Phys(), Val: uint64(p1.Phys())}, // p0's next -> p1
		{PA: p1.Phys(), Val: 0},                 // end of list
	}
	post := NewState()
	ComputePost(post, pre, call)
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.OK {
		t.Fatalf("topup spec: %v", hyp.ErrnoFromReg(post.ReadGPR(0, 1)))
	}
	mc := post.VMs.Table[h].VCPUs[0].MC
	if len(mc) != 2 || mc[0] != p0 || mc[1] != p1 {
		t.Errorf("memcache = %v", mc)
	}
	for _, p := range []arch.PFN{p0, p1} {
		if tgt, ok := post.Host.Annot.Lookup(uint64(p.Phys())); !ok || tgt.Owner != hyp.IDHyp {
			t.Errorf("page %#x not donated", uint64(p))
		}
	}
}

func TestSpecTopupPartialFailure(t *testing.T) {
	// Second list element is the carve-out: donation 1 succeeds,
	// donation 2 fails EPERM, and the spec keeps the partial effect.
	h := hyp.HandleOffset
	p0 := ramPFN(30)
	pre := prestate(hyp.HCTopupVCPUMemcache, uint64(h), 0, uint64(p0.Phys()), 2)
	pre.VMs.Table[h] = &VMInfo{Handle: h, NrVCPUs: 1,
		VCPUs: []VCPUInfo{{Initialized: true, LoadedOn: -1}}}
	carve := specGlobals().CarveStart
	pre.Host.Annot.Set(uint64(carve), 1, Annotated(hyp.IDHyp))
	call := callFor(pre, int64(hyp.EPERM))
	call.Reads = []ReadOnceRec{{PA: p0.Phys(), Val: uint64(carve)}}
	post := NewState()
	ComputePost(post, pre, call)
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.EPERM {
		t.Fatalf("ret = %v", hyp.ErrnoFromReg(post.ReadGPR(0, 1)))
	}
	if len(post.VMs.Table[h].VCPUs[0].MC) != 1 {
		t.Error("partial donation not kept")
	}
}

func TestSpecTopupDuplicateInList(t *testing.T) {
	// The same page twice in one list: second donation fails EPERM
	// against the *evolving* post-state.
	h := hyp.HandleOffset
	p0 := ramPFN(30)
	pre := prestate(hyp.HCTopupVCPUMemcache, uint64(h), 0, uint64(p0.Phys()), 2)
	pre.VMs.Table[h] = &VMInfo{Handle: h, NrVCPUs: 1,
		VCPUs: []VCPUInfo{{Initialized: true, LoadedOn: -1}}}
	call := callFor(pre, int64(hyp.EPERM))
	call.Reads = []ReadOnceRec{{PA: p0.Phys(), Val: uint64(p0.Phys())}}
	post := NewState()
	ComputePost(post, pre, call)
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.EPERM {
		t.Error("self-looping donation list not EPERM on second visit")
	}
}

func TestSpecMemAbortInjectDecision(t *testing.T) {
	g := specGlobals()
	cases := []struct {
		name     string
		ipa      arch.PhysAddr
		annot    bool
		injected bool
	}{
		{"plain RAM", g.RAMStart + 64<<20, false, false},
		{"MMIO", hyp.UARTPhys, false, false},
		{"annotated", g.RAMStart + 64<<20, true, true},
		{"hole above RAM", g.RAMStart + arch.PhysAddr(g.RAMSize) + 4096, false, true},
	}
	for _, c := range cases {
		pre := prestate(0)
		if c.annot {
			pre.Host.Annot.Set(uint64(c.ipa), 1, Annotated(hyp.IDHyp))
		}
		call := &CallData{CPU: 0, Reason: arch.ExitMemAbort,
			Fault: arch.FaultInfo{Addr: arch.IPA(c.ipa), Write: true}}
		post := NewState()
		if !ComputePost(post, pre, call) {
			t.Fatalf("%s: spec declined", c.name)
		}
		if got := post.Locals[0].PerCPU.LastAbortInjected; got != c.injected {
			t.Errorf("%s: injected=%v, want %v", c.name, got, c.injected)
		}
	}
}

func TestSpecGuestShareUnshare(t *testing.T) {
	h := hyp.HandleOffset + 3
	gp := ramPFN(50)
	ipa := arch.IPA(16 << arch.PageShift)
	owned := arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: arch.StateOwned}

	pre := prestate(hyp.HCVCPURun)
	pre.Locals[0].PerCPU.LoadedVM = h
	pre.Locals[0].PerCPU.LoadedVCPU = 0
	pre.VMs.Table[h] = &VMInfo{Handle: h, NrVCPUs: 1,
		VCPUs: []VCPUInfo{{Initialized: true, LoadedOn: 0}}}
	guest := &GuestPgt{Present: true, PGT: AbstractPgtable{Footprint: PageSet{}}}
	guest.PGT.Mapping.Set(uint64(ipa), 1, Mapped(gp.Phys(), owned))
	pre.Guests[h] = guest
	pre.Host.Annot.Set(uint64(gp.Phys()), 1, Annotated(hyp.GuestOwner(3)))

	call := callFor(pre, hyp.RunExitYield)
	call.GuestExits = []GuestExitRec{{Handle: h, VCPU: 0, Op: hyp.GuestOp{Kind: hyp.GuestShareHost, IPA: ipa}}}
	post := NewState()
	if !ComputePost(post, pre, call) {
		t.Fatal("spec declined")
	}
	// Guest side flips to shared-owned; host side gains a borrowed
	// identity maplet and loses the annotation.
	tgt, _ := post.Guests[h].PGT.Mapping.Lookup(uint64(ipa))
	if tgt.Attrs.State != arch.StateSharedOwned {
		t.Errorf("guest state after share: %v", tgt.Attrs.State)
	}
	if _, still := post.Host.Annot.Lookup(uint64(gp.Phys())); still {
		t.Error("annotation survived the share")
	}
	tgt, ok := post.Host.Shared.Lookup(uint64(gp.Phys()))
	if !ok || tgt.Attrs.State != arch.StateSharedBorrowed {
		t.Errorf("host side after share: %+v ok=%v", tgt, ok)
	}
	if hyp.ErrnoFromReg(post.Locals[0].GuestRegs[0]) != hyp.OK {
		t.Error("guest r0 not OK")
	}

	// Sharing an unmapped ipa: EPERM in guest r0.
	call.GuestExits[0].Op.IPA = 99 << arch.PageShift
	post = NewState()
	ComputePost(post, pre, call)
	if hyp.ErrnoFromReg(post.Locals[0].GuestRegs[0]) != hyp.EPERM {
		t.Error("share of unmapped guest page not EPERM")
	}
}

func TestSpecMapGuestMCReplay(t *testing.T) {
	h := hyp.HandleOffset
	gp := ramPFN(60)
	t1, t2 := ramPFN(61), ramPFN(62)

	pre := prestate(hyp.HCHostMapGuest, uint64(gp), 16)
	pre.Locals[0].PerCPU.LoadedVM = h
	pre.Locals[0].PerCPU.LoadedVCPU = 0
	pre.Locals[0].LoadedMC = []arch.PFN{t1, t2}
	pre.VMs.Table[h] = &VMInfo{Handle: h, NrVCPUs: 1,
		VCPUs: []VCPUInfo{{Initialized: true, LoadedOn: 0}}}
	pre.Guests[h] = &GuestPgt{Present: true, PGT: AbstractPgtable{Footprint: PageSet{}}}

	call := callFor(pre, 0)
	call.MCOps = []MCOp{{PFN: t2}, {PFN: t1}} // two pops, LIFO
	post := NewState()
	ComputePost(post, pre, call)
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.OK {
		t.Fatalf("ret: %v", hyp.ErrnoFromReg(post.ReadGPR(0, 1)))
	}
	if len(post.Locals[0].LoadedMC) != 0 {
		t.Errorf("memcache after replay: %v", post.Locals[0].LoadedMC)
	}
	if tgt, ok := post.Guests[h].PGT.Mapping.Lookup(16 << arch.PageShift); !ok || tgt.Phys != gp.Phys() {
		t.Error("guest mapping not installed")
	}
	if tgt, ok := post.Host.Annot.Lookup(uint64(gp.Phys())); !ok || tgt.Owner != hyp.GuestOwner(0) {
		t.Error("host annotation not installed")
	}
}

func TestSpecUnknownHypercall(t *testing.T) {
	pre := prestate(hyp.HC(0x777))
	post := NewState()
	if !ComputePost(post, pre, callFor(pre, int64(hyp.ENOSYS))) {
		t.Fatal("spec declined")
	}
	if hyp.ErrnoFromReg(post.ReadGPR(0, 1)) != hyp.ENOSYS {
		t.Error("unknown hypercall not ENOSYS")
	}
}

func TestSpecVCPURunRequiresGuestExit(t *testing.T) {
	pre := prestate(hyp.HCVCPURun)
	pre.Locals[0].PerCPU.LoadedVM = hyp.HandleOffset
	// No recorded guest event: the spec cannot speak (gradual spec).
	post := NewState()
	if ComputePost(post, pre, callFor(pre, 0)) {
		t.Error("spec spoke without a recorded guest event")
	}
}

func TestSpecPurity(t *testing.T) {
	// Running the same spec twice on clones of the same inputs yields
	// identical post-states: spec functions are deterministic
	// functions of (pre, call).
	pfn := ramPFN(0)
	pre := prestate(hyp.HCHostShareHyp, uint64(pfn))
	preCopy := pre.Clone()

	p1, p2 := NewState(), NewState()
	ComputePost(p1, pre, callFor(pre, 0))
	ComputePost(p2, preCopy, callFor(preCopy, 0))
	if !EqualMappings(p1.Host.Shared, p2.Host.Shared) ||
		!EqualMappings(p1.Pkvm.PGT.Mapping, p2.Pkvm.PGT.Mapping) ||
		!p1.Locals[0].Equal(*p2.Locals[0]) {
		t.Error("spec nondeterministic on identical inputs")
	}
	// And the pre-state mappings were not mutated.
	if !pre.Host.Shared.IsEmpty() || !pre.Pkvm.PGT.Mapping.IsEmpty() {
		t.Error("spec mutated its pre-state")
	}
}
