package ghost

import (
	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// ComputePost is the top-level specification function (§4.2.1): given
// the recorded pre-state and the ghost call data, it computes the
// expected post-state for whatever exception was taken, dispatching to
// the per-hypercall specification functions. It is pure in the
// paper's sense: it reads only the ghost pre-state and call data,
// never the concrete implementation state.
//
// The boolean result says whether a valid specification was written —
// false makes the check gradual (§4.2): unspecified exceptions are
// reported as specification gaps, not implementation bugs.
func ComputePost(post, pre *State, call *CallData) bool {
	cpu := call.CPU
	switch call.Reason {
	case arch.ExitIRQ:
		// Interrupts pass through: nothing may change.
		post.CopyLocal(pre, cpu)
		return true
	case arch.ExitMemAbort:
		return specHostMemAbort(post, pre, call)
	case arch.ExitHVC:
		return specHVC(post, pre, call)
	}
	return false
}

// specHVC dispatches a hypercall to its specification function and
// applies the common register epilogue: x0 is cleared (SMCCC
// accepted), x1 carries the return value, everything else is
// preserved.
func specHVC(post, pre *State, call *CallData) bool {
	cpu := call.CPU
	post.CopyLocal(pre, cpu)

	var ret int64
	ok := true
	switch call.HC(pre) {
	case hyp.HCHostShareHyp:
		ret = specHostShareHyp(post, pre, call)
	case hyp.HCHostUnshareHyp:
		ret = specHostUnshareHyp(post, pre, call)
	case hyp.HCHostDonateHyp:
		ret = specHostDonateHyp(post, pre, call)
	case hyp.HCHostReclaimPage:
		ret = specHostReclaimPage(post, pre, call)
	case hyp.HCInitVM:
		ret = specInitVM(post, pre, call)
	case hyp.HCInitVCPU:
		ret = specInitVCPU(post, pre, call)
	case hyp.HCTeardownVM:
		ret = specTeardownVM(post, pre, call)
	case hyp.HCVCPULoad:
		ret = specVCPULoad(post, pre, call)
	case hyp.HCVCPUPut:
		ret = specVCPUPut(post, pre, call)
	case hyp.HCVCPURun:
		ret, ok = specVCPURun(post, pre, call)
	case hyp.HCHostMapGuest:
		ret = specHostMapGuest(post, pre, call)
	case hyp.HCTopupVCPUMemcache:
		ret = specTopupVCPUMemcache(post, pre, call)
	default:
		rUnknownHC.hit()
		ret = int64(hyp.ENOSYS)
	}
	if !ok {
		return false
	}
	post.WriteGPR(cpu, 0, 0)
	post.WriteGPR(cpu, 1, uint64(ret))
	return true
}

// mayNomem lists the hypercalls the loose specification permits to
// fail arbitrarily with -ENOMEM (§4.3): the ones whose success path
// allocates table pages. When the implementation reports -ENOMEM on
// one of these, the specification accepts it with an unchanged
// abstract state.
func mayNomem(id hyp.HC) bool {
	switch id {
	case hyp.HCHostShareHyp, hyp.HCHostDonateHyp, hyp.HCHostMapGuest:
		return true
	}
	return false
}

// looseNomem implements the §4.3 parametricity on the return value:
// it reports whether the recorded return was an allowed spurious
// -ENOMEM for this hypercall, in which case the caller specifies "no
// state change, return -ENOMEM".
func looseNomem(pre *State, call *CallData) bool {
	return call.Ret == int64(hyp.ENOMEM) && mayNomem(call.HC(pre))
}

// ownedExclusivelyByHost is the Fig 5 permission predicate: the page
// is the host's alone iff it carries no ownership annotation and is
// not part of any share.
func ownedExclusivelyByHost(pre *State, phys arch.PhysAddr) bool {
	if _, ok := pre.Host.Annot.Lookup(uint64(phys)); ok {
		return false
	}
	if _, ok := pre.Host.Shared.Lookup(uint64(phys)); ok {
		return false
	}
	return true
}

// hostMemoryAttributes mirrors §4.2 step (4): the attributes a host
// mapping carries, from whether the address is DRAM and the share
// state.
func hostMemoryAttributes(isMemory bool, state arch.PageState) arch.Attrs {
	if isMemory {
		return arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: state}
	}
	return arch.Attrs{Perms: arch.PermRW, Mem: arch.MemDevice, State: state}
}

// hypMemoryAttributes: the hypervisor's own mappings of memory it owns
// or borrows are read-write, never executable.
func hypMemoryAttributes(isMemory bool, state arch.PageState) arch.Attrs {
	mem := arch.MemNormal
	if !isMemory {
		mem = arch.MemDevice
	}
	return arch.Attrs{Perms: arch.PermRW, Mem: mem, State: state}
}

// specHostMemAbort specifies the host stage 2 fault handler. The host
// specification is deliberately loose here (§3.1): mapping-on-demand
// may install anything legal for host-owned memory, and legality is
// enforced by the abstraction function itself, so the deterministic
// ghost components must simply not change. What the specification
// does pin down is the inject decision: the fault bounces back into
// the host exactly when the target is not the host's to map.
func specHostMemAbort(post, pre *State, call *CallData) bool {
	cpu := call.CPU
	post.CopyLocal(pre, cpu)
	post.CopyHost(pre)

	g := pre.Globals.Globals
	ipa := arch.PhysAddr(arch.AlignDown(uint64(call.Fault.Addr)))
	_, annotated := pre.Host.Annot.Lookup(uint64(ipa))
	injected := annotated || (!g.InRAM(ipa) && !g.InMMIO(ipa))
	if specFault(SpecBugAbortInvertInject) {
		injected = !injected
	}

	if injected {
		rAbortInjected.hit()
	} else {
		rAbortMapped.hit()
	}
	l := post.local(cpu)
	l.PerCPU.LastAbortInjected = injected
	return true
}
