package ghost

import (
	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// specHostShareHyp is the executable specification of host_share_hyp —
// the Go rendition of the paper's Fig 5, step for step.
func specHostShareHyp(post, pre *State, call *CallData) int64 {
	g := pre.Globals.Globals

	// (1) Address space conversions.
	pfn := arch.PFN(call.Arg(pre, 1))
	phys := pfn.Phys()
	hostAddr := uint64(phys) // host stage 1 is an identity map
	hypAddr := uint64(phys) + g.HypVAOffset

	// (3) Initialisation of the (partial) post-state: only the parts
	// this hypercall owns.
	post.CopyHost(pre)
	post.CopyPkvm(pre)

	// (2) Permission checks, against the abstract pre-state only.
	if !g.InRAM(phys) {
		rShareEinval.hit()
		return int64(hyp.EINVAL)
	}
	if !ownedExclusivelyByHost(pre, phys) {
		rShareEperm.hit()
		return int64(hyp.EPERM)
	}
	// Loose out-of-memory failure (§4.3): allowed, with no update.
	if looseNomem(pre, call) {
		rShareNomemLoose.hit()
		return int64(hyp.ENOMEM)
	}

	// (4) Construction of abstract mapping attributes.
	isMemory := g.InRAM(phys)
	hostAttrs := hostMemoryAttributes(isMemory, arch.StateSharedOwned)
	hypAttrs := hypMemoryAttributes(isMemory, arch.StateSharedBorrowed)

	// (5) Update abstract mappings with new targets.
	post.Host.Shared.Set(hostAddr, 1, Mapped(phys, hostAttrs))
	if !specFault(SpecBugShareForgetPkvm) {
		post.Pkvm.PGT.Mapping.Set(hypAddr, 1, Mapped(phys, hypAttrs))
	}

	// (6) Epilogue: the dispatcher writes the register state.
	rShareOK.hit()
	return int64(hyp.OK)
}

// specHostUnshareHyp specifies host_unshare_hyp: the share is revoked,
// both sides of it disappear from the abstract state.
func specHostUnshareHyp(post, pre *State, call *CallData) int64 {
	g := pre.Globals.Globals
	pfn := arch.PFN(call.Arg(pre, 1))
	phys := pfn.Phys()
	hypAddr := uint64(phys) + g.HypVAOffset

	post.CopyHost(pre)
	post.CopyPkvm(pre)

	if !g.InRAM(phys) {
		rUnshareEinval.hit()
		return int64(hyp.EINVAL)
	}
	// The page must currently be shared by the host (not borrowed
	// from a guest, not unshared).
	t, ok := pre.Host.Shared.Lookup(uint64(phys))
	if !ok || t.Kind != TargetMapped || t.Attrs.State != arch.StateSharedOwned {
		rUnshareEperm.hit()
		return int64(hyp.EPERM)
	}

	post.Host.Shared.Remove(uint64(phys), 1)
	post.Pkvm.PGT.Mapping.Remove(hypAddr, 1)
	rUnshareOK.hit()
	return int64(hyp.OK)
}

// specHostDonateHyp specifies host_donate_hyp: ownership of the range
// transfers outright — annotations appear on the host side, owned
// mappings on the hypervisor side.
func specHostDonateHyp(post, pre *State, call *CallData) int64 {
	g := pre.Globals.Globals
	pfn := arch.PFN(call.Arg(pre, 1))
	nr := call.Arg(pre, 2)
	phys := pfn.Phys()

	post.CopyHost(pre)
	post.CopyPkvm(pre)

	if nr == 0 || nr > hyp.MaxDonate || !g.InRAM(phys) ||
		!g.InRAM(phys+arch.PhysAddr(nr<<arch.PageShift)-1) {
		rDonateEinval.hit()
		return int64(hyp.EINVAL)
	}
	for i := uint64(0); i < nr; i++ {
		if !ownedExclusivelyByHost(pre, phys+arch.PhysAddr(i<<arch.PageShift)) {
			rDonateEperm.hit()
			return int64(hyp.EPERM)
		}
	}
	if looseNomem(pre, call) {
		rDonateNomemLoose.hit()
		return int64(hyp.ENOMEM)
	}

	post.Host.Annot.Set(uint64(phys), nr, Annotated(hyp.IDHyp))
	post.Pkvm.PGT.Mapping.Set(uint64(phys)+g.HypVAOffset, nr,
		Mapped(phys, hypMemoryAttributes(true, arch.StateOwned)))
	rDonateOK.hit()
	return int64(hyp.OK)
}

// specHostReclaimPage specifies host_reclaim_page: a page of a
// torn-down VM returns to the host — out of the reclaim set, its
// ownership annotation cleared.
func specHostReclaimPage(post, pre *State, call *CallData) int64 {
	pfn := arch.PFN(call.Arg(pre, 1))
	phys := pfn.Phys()

	post.CopyVMs(pre)
	post.CopyHost(pre)

	if !pre.VMs.Reclaim.Contains(pfn) {
		rReclaimEperm.hit()
		return int64(hyp.EPERM)
	}
	post.VMs.Reclaim.Remove(pfn)
	// The page returns to exclusive host ownership whatever its prior
	// role: ownership annotations are cleared, and if the dead guest
	// had shared it back to the host, the borrowed mapping reverts to
	// a plain owned one (which the abstraction then drops).
	post.Host.Annot.Remove(uint64(phys), 1)
	if !specFault(SpecBugReclaimForgetShared) {
		post.Host.Shared.Remove(uint64(phys), 1)
	}
	rReclaimOK.hit()
	return int64(hyp.OK)
}

// specTopupVCPUMemcache specifies the memcache topup. The donation
// list lives in host-owned memory, so the specification replays the
// recorded READ_ONCE next-pointers (§4.3) through the same abstract
// checks the implementation must make; a failure mid-way leaves the
// earlier donations in place, exactly as the implementation does.
func specTopupVCPUMemcache(post, pre *State, call *CallData) int64 {
	g := pre.Globals.Globals
	handle := hyp.Handle(call.Arg(pre, 1))
	idx := int(call.Arg(pre, 2))
	head := arch.PhysAddr(call.Arg(pre, 3))
	nr := call.Arg(pre, 4)

	post.CopyVMs(pre)
	post.CopyHost(pre)

	if nr > hyp.MemcacheCapPages {
		rTopupEinval.hit()
		return int64(hyp.EINVAL)
	}
	vm, ok := pre.VMs.Table[handle]
	if !ok {
		rTopupEnoent.hit()
		return int64(hyp.ENOENT)
	}
	if idx < 0 || idx >= vm.NrVCPUs {
		rTopupEinval.hit()
		return int64(hyp.EINVAL)
	}
	if !vm.VCPUs[idx].Initialized {
		rTopupEnoent.hit()
		return int64(hyp.ENOENT)
	}
	if vm.VCPUs[idx].LoadedOn >= 0 {
		rTopupEbusy.hit()
		return int64(hyp.EBUSY)
	}

	vcpu := &post.VMs.Table[handle].VCPUs[idx]
	addr := head
	readIdx := 0
	for i := uint64(0); i < nr; i++ {
		if !arch.PageAligned(uint64(addr)) {
			rTopupLoopEinval.hit()
			return int64(hyp.EINVAL)
		}
		page := arch.PhysAddr(arch.AlignDown(uint64(addr)))
		if !g.InRAM(page) {
			rTopupLoopEinval.hit()
			return int64(hyp.EINVAL)
		}
		// Check against the evolving post-state: donating the same
		// page twice in one list must fail on the second.
		if _, bad := post.Host.Annot.Lookup(uint64(page)); bad {
			rTopupLoopEperm.hit()
			return int64(hyp.EPERM)
		}
		if _, bad := post.Host.Shared.Lookup(uint64(page)); bad {
			rTopupLoopEperm.hit()
			return int64(hyp.EPERM)
		}
		next, haveRead := call.NextRead(&readIdx)
		if !haveRead {
			// The implementation performed fewer host reads than this
			// replay requires: it diverged from the specification.
			return int64(hyp.EINVAL)
		}
		post.Host.Annot.Set(uint64(page), 1, Annotated(hyp.IDHyp))
		vcpu.MC = append(vcpu.MC, arch.PhysToPFN(page))
		addr = arch.PhysAddr(next)
	}
	rTopupOK.hit()
	return int64(hyp.OK)
}
