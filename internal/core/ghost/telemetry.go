package ghost

import (
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

// Span names for the oracle's own cost: the trap-exit check (the §6
// overhead headline) and the differential cache verification, which
// dominates when VerifyCache is on.
var (
	spanGhostCheck  = trace.NewName("ghost.check")
	spanGhostVerify = trace.NewName("ghost.verify")
)

// The oracle's own telemetry: how often it checks, how often it fires,
// and how much latency the checking itself adds to each trap.
var (
	ghostChecks       = telemetry.NewCounter("ghost_checks_total")
	ghostChecksPassed = telemetry.NewCounter("ghost_checks_passed_total")
	ghostCheckLat     = telemetry.NewHistogram("ghost_check_latency_ns")
	ghostHookTime     = telemetry.NewHistogram("ghost_hook_time_ns")

	// Abstraction-cache traffic: hits returned the stored abstraction
	// untouched, misses re-walked the whole tree (cold cache or root
	// change/write), partial walks re-interpreted only dirty subtrees.
	// The pages counter totals table pages actually re-read — the
	// denominator for how much work the cache avoided.
	ghostCacheHits    = telemetry.NewCounter("ghost_cache_hits_total")
	ghostCacheMisses  = telemetry.NewCounter("ghost_cache_misses_total")
	ghostCachePartial = telemetry.NewCounter("ghost_cache_partial_walks_total")
	ghostCachePages   = telemetry.NewCounter("ghost_cache_pages_reinterpreted_total")

	// ghostFailures counts alarms per FailureKind; one counter per kind,
	// registered up front so the hot path never builds names.
	ghostFailures [int(FailStaleTLB) + 1]*telemetry.Counter

	// Offline replay keeps its own counters so a live run and its
	// replay can be compared side by side.
	replayChecks   = telemetry.NewCounter("ghost_replay_checks_total")
	replayFailures = telemetry.NewCounter("ghost_replay_failures_total")
	replayCheckLat = telemetry.NewHistogram("ghost_replay_check_latency_ns")
)

func init() {
	for k := range ghostFailures {
		ghostFailures[k] = telemetry.NewCounter(
			`ghost_failures_total{kind="` + FailureKind(k).String() + `"}`)
	}
}

// failureCounter returns the per-kind alarm counter, tolerating
// out-of-range kinds.
func failureCounter(k FailureKind) *telemetry.Counter {
	if int(k) < len(ghostFailures) {
		return ghostFailures[k]
	}
	//ghostlint:ignore telemetrycheck unreachable unless a new FailureKind misses the init loop; registration here is a cold fallback
	return telemetry.NewCounter(`ghost_failures_total{kind="` + k.String() + `"}`)
}
