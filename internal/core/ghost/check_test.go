package ghost

// Unit tests of the ternary comparison and the diff/print machinery.

import (
	"strings"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

func mappingOf(pages ...uint64) Mapping {
	var m Mapping
	attrs := arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal}
	for _, p := range pages {
		m.Set(p<<arch.PageShift, 1, Mapped(arch.PhysAddr(p<<arch.PageShift), attrs))
	}
	return m
}

func stateWithHostShared(pages ...uint64) *State {
	s := NewState()
	s.Host = Host{Present: true, Shared: mappingOf(pages...)}
	l := &CPULocal{Present: true}
	s.Locals[0] = l
	return s
}

func TestTernaryAllAgree(t *testing.T) {
	pre := stateWithHostShared(1)
	rec := stateWithHostShared(1, 2)
	comp := stateWithHostShared(1, 2)
	if d := CompareTernary(pre, rec, comp, 0); d != "" {
		t.Errorf("agreeing states flagged:\n%s", d)
	}
}

func TestTernaryComputedDisagrees(t *testing.T) {
	pre := stateWithHostShared(1)
	rec := stateWithHostShared(1)     // implementation did nothing
	comp := stateWithHostShared(1, 2) // spec expected a new page
	d := CompareTernary(pre, rec, comp, 0)
	if !strings.Contains(d, "host.shared") {
		t.Errorf("missing-component diff:\n%s", d)
	}
}

func TestTernaryUntouchedMustMatchPre(t *testing.T) {
	// The spec says nothing about the host (absent in computed), but
	// the recording shows a change: flagged via the pre comparison.
	pre := stateWithHostShared(1)
	rec := stateWithHostShared(1, 2)
	comp := NewState()
	comp.Locals[0] = &CPULocal{Present: true}
	d := CompareTernary(pre, rec, comp, 0)
	if !strings.Contains(d, "untouched") {
		t.Errorf("unspecified change not flagged:\n%s", d)
	}
	// And with no recorded change, silence.
	rec2 := stateWithHostShared(1)
	if d := CompareTernary(pre, rec2, comp, 0); d != "" {
		t.Errorf("false alarm:\n%s", d)
	}
}

func TestTernarySpecifiedButNeverRecorded(t *testing.T) {
	pre := NewState()
	pre.Locals[0] = &CPULocal{Present: true}
	rec := NewState()
	rec.Locals[0] = &CPULocal{Present: true}
	comp := stateWithHostShared(3) // spec speaks about an unrecorded component
	d := CompareTernary(pre, rec, comp, 0)
	if !strings.Contains(d, "never recorded") {
		t.Errorf("unrecorded component not flagged:\n%s", d)
	}
}

func TestTernaryLocalsMismatch(t *testing.T) {
	pre := stateWithHostShared()
	rec := stateWithHostShared()
	comp := stateWithHostShared()
	comp.Locals[0].HostRegs[1] = 42 // spec expects a return value
	d := CompareTernary(pre, rec, comp, 0)
	if !strings.Contains(d, "locals") || !strings.Contains(d, "r1") {
		t.Errorf("register mismatch not reported:\n%s", d)
	}
}

func TestTernaryVMsAndGuests(t *testing.T) {
	h := hyp.HandleOffset
	pre := stateWithHostShared()
	pre.VMs = VMs{Present: true, Table: map[hyp.Handle]*VMInfo{}, Reclaim: PageSet{}}
	pre.Guests[h] = &GuestPgt{Present: true}

	rec := stateWithHostShared()
	rec.VMs = VMs{Present: true, Table: map[hyp.Handle]*VMInfo{
		h: {Handle: h, NrVCPUs: 1, VCPUs: []VCPUInfo{{LoadedOn: -1}}},
	}, Reclaim: PageSet{}}
	rec.Guests[h] = &GuestPgt{Present: true, PGT: AbstractPgtable{Mapping: mappingOf(7)}}

	// Computed post matches the recording: fine.
	comp := stateWithHostShared()
	comp.VMs = rec.VMs.Clone()
	comp.Guests[h] = &GuestPgt{Present: true, PGT: AbstractPgtable{Mapping: mappingOf(7)}}
	if d := CompareTernary(pre, rec, comp, 0); d != "" {
		t.Errorf("matching vm/guest flagged:\n%s", d)
	}
	// Computed disagrees on the guest table: flagged with its handle.
	comp.Guests[h] = &GuestPgt{Present: true, PGT: AbstractPgtable{Mapping: mappingOf(8)}}
	d := CompareTernary(pre, rec, comp, 0)
	if !strings.Contains(d, "guest:") {
		t.Errorf("guest mismatch not reported:\n%s", d)
	}
}

func TestPageDiffFormat(t *testing.T) {
	d := PageDiff{Added: true, VA: 0x1000, Target: Annotated(3)}
	if !strings.HasPrefix(d.String(), "+virt:1000") {
		t.Errorf("diff format: %s", d)
	}
	d.Added = false
	if !strings.HasPrefix(d.String(), "-virt:1000") {
		t.Errorf("diff format: %s", d)
	}
}

func TestDiffCap(t *testing.T) {
	// A wildly different mapping must not flood the report.
	var big Mapping
	attrs := arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal}
	for p := uint64(0); p < 100; p++ {
		big.Set(p<<arch.PageShift, 1, Mapped(arch.PhysAddr(p<<(arch.PageShift+1)), attrs))
	}
	out := diffPages(DiffMappings(Mapping{}, big))
	if !strings.Contains(out, "more") {
		t.Errorf("diff not capped:\n%s", out)
	}
	if strings.Count(out, "\n") > 20 {
		t.Errorf("capped diff still long: %d lines", strings.Count(out, "\n"))
	}
}

func TestStatsAndFailureString(t *testing.T) {
	f := Failure{Kind: FailSpecMismatch, Call: CallData{CPU: 1, Reason: arch.ExitHVC}, Detail: "boom"}
	s := f.String()
	if !strings.Contains(s, "spec-mismatch") || !strings.Contains(s, "boom") {
		t.Errorf("failure string: %s", s)
	}
	for k := FailSpecMismatch; k <= FailSpecIncomplete; k++ {
		if k.String() == "?" {
			t.Errorf("failure kind %d has no name", k)
		}
	}
}

func TestMapletAndTargetStrings(t *testing.T) {
	ml := Maplet{VA: 0x2000, NrPages: 3, Target: Mapped(0x5000, arch.Attrs{Perms: arch.PermRW})}
	if !strings.Contains(ml.String(), "virt:2000+3") {
		t.Errorf("maplet string: %s", ml)
	}
	if !strings.Contains(Annotated(7).String(), "owner:7") {
		t.Error("annotation string")
	}
	var m Mapping
	if m.String() != "{}" {
		t.Error("empty mapping string")
	}
}
