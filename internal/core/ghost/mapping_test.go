package ghost

import (
	"math/rand"
	"testing"

	"ghostspec/internal/arch"
)

var (
	rwxN = arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal}
	rwN  = arch.Attrs{Perms: arch.PermRW, Mem: arch.MemNormal}
)

func page(n uint64) uint64 { return n << arch.PageShift }

func TestExtendCoalesces(t *testing.T) {
	var m Mapping
	// Three contiguous pages with contiguous targets: one maplet.
	m.Extend(page(10), 1, Mapped(arch.PhysAddr(page(100)), rwxN))
	m.Extend(page(11), 1, Mapped(arch.PhysAddr(page(101)), rwxN))
	m.Extend(page(12), 1, Mapped(arch.PhysAddr(page(102)), rwxN))
	if m.NrMaplets() != 1 || m.NrPages() != 3 {
		t.Fatalf("maplets=%d pages=%d, want 1/3", m.NrMaplets(), m.NrPages())
	}
	// Non-contiguous target breaks the run.
	m.Extend(page(13), 1, Mapped(arch.PhysAddr(page(200)), rwxN))
	if m.NrMaplets() != 2 {
		t.Errorf("maplets=%d after target jump, want 2", m.NrMaplets())
	}
	// Attribute change breaks the run.
	m.Extend(page(14), 1, Mapped(arch.PhysAddr(page(201)), rwN))
	if m.NrMaplets() != 3 {
		t.Errorf("maplets=%d after attr change, want 3", m.NrMaplets())
	}
	// VA gap breaks the run.
	m.Extend(page(20), 1, Mapped(arch.PhysAddr(page(202)), rwN))
	if m.NrMaplets() != 4 {
		t.Errorf("maplets=%d after VA gap, want 4", m.NrMaplets())
	}
}

func TestExtendAnnotationsCoalesce(t *testing.T) {
	var m Mapping
	m.Extend(page(0), 2, Annotated(1))
	m.Extend(page(2), 3, Annotated(1))
	m.Extend(page(5), 1, Annotated(2))
	if m.NrMaplets() != 2 || m.NrPages() != 6 {
		t.Errorf("maplets=%d pages=%d, want 2/6", m.NrMaplets(), m.NrPages())
	}
}

func TestExtendOutOfOrderPanics(t *testing.T) {
	var m Mapping
	m.Extend(page(5), 1, Annotated(1))
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Extend did not panic")
		}
	}()
	m.Extend(page(4), 1, Annotated(1))
}

func TestLookupOffsets(t *testing.T) {
	var m Mapping
	m.Extend(page(10), 4, Mapped(arch.PhysAddr(page(100)), rwxN))
	tgt, ok := m.Lookup(page(12) + 0x123)
	if !ok || tgt.Phys != arch.PhysAddr(page(102)) {
		t.Errorf("lookup mid-maplet: %+v ok=%v", tgt, ok)
	}
	if _, ok := m.Lookup(page(14)); ok {
		t.Error("lookup past end succeeded")
	}
	if _, ok := m.Lookup(page(9)); ok {
		t.Error("lookup before start succeeded")
	}
}

func TestSetSplitsAndReplaces(t *testing.T) {
	var m Mapping
	m.Extend(page(0), 8, Mapped(arch.PhysAddr(page(100)), rwxN))
	// Replace page 3 with an annotation.
	m.Set(page(3), 1, Annotated(2))
	if m.NrMaplets() != 3 || m.NrPages() != 8 {
		t.Fatalf("maplets=%d pages=%d, want 3/8", m.NrMaplets(), m.NrPages())
	}
	tgt, _ := m.Lookup(page(3))
	if tgt.Kind != TargetAnnotated || tgt.Owner != 2 {
		t.Errorf("page 3 = %+v", tgt)
	}
	// Right remainder keeps correct phys.
	tgt, _ = m.Lookup(page(4))
	if tgt.Phys != arch.PhysAddr(page(104)) {
		t.Errorf("page 4 phys = %#x, want %#x", uint64(tgt.Phys), page(104))
	}
	// Restoring the page re-coalesces to one maplet.
	m.Set(page(3), 1, Mapped(arch.PhysAddr(page(103)), rwxN))
	if m.NrMaplets() != 1 {
		t.Errorf("maplets=%d after restore, want 1", m.NrMaplets())
	}
}

func TestRemove(t *testing.T) {
	var m Mapping
	m.Extend(page(0), 4, Mapped(arch.PhysAddr(page(100)), rwxN))
	m.Remove(page(1), 2)
	if m.NrPages() != 2 || m.NrMaplets() != 2 {
		t.Fatalf("pages=%d maplets=%d after middle removal", m.NrPages(), m.NrMaplets())
	}
	if _, ok := m.Lookup(page(1)); ok {
		t.Error("removed page still present")
	}
	m.Remove(page(0), 4)
	if !m.IsEmpty() {
		t.Error("mapping not empty after full removal")
	}
	// Removing from empty is a no-op.
	m.Remove(page(0), 100)
}

func TestEqualAndClone(t *testing.T) {
	var a Mapping
	a.Extend(page(0), 2, Mapped(arch.PhysAddr(page(50)), rwxN))
	a.Extend(page(5), 1, Annotated(1))
	b := a.Clone()
	if !EqualMappings(a, b) {
		t.Fatal("clone not equal")
	}
	b.Set(page(5), 1, Annotated(2))
	if EqualMappings(a, b) {
		t.Error("mutated clone still equal")
	}
	if tgt, _ := a.Lookup(page(5)); tgt.Owner != 1 {
		t.Error("clone mutation leaked into original")
	}
}

func TestDiffMappings(t *testing.T) {
	var old, new Mapping
	old.Extend(page(0), 1, Mapped(arch.PhysAddr(page(100)), rwxN))
	old.Extend(page(1), 1, Mapped(arch.PhysAddr(page(101)), rwxN))
	new.Extend(page(1), 1, Mapped(arch.PhysAddr(page(101)), rwN)) // attrs changed
	new.Extend(page(2), 1, Annotated(3))                          // added

	diffs := DiffMappings(old, new)
	// page 0 removed, page 1 changed (- and +), page 2 added: 4 entries.
	if len(diffs) != 4 {
		t.Fatalf("diffs = %v", diffs)
	}
	if diffs[0].Added || diffs[0].VA != page(0) {
		t.Errorf("first diff = %+v, want -page0", diffs[0])
	}
	if !diffs[3].Added || diffs[3].VA != page(2) {
		t.Errorf("last diff = %+v, want +page2", diffs[3])
	}
	if len(DiffMappings(old, old)) != 0 {
		t.Error("self-diff not empty")
	}
}

// Property: an arbitrary interleaving of Set/Remove leaves the Mapping
// extensionally equal to a reference map, and always canonical
// (sorted, coalesced, non-overlapping).
func TestMappingAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var m Mapping
	ref := map[uint64]Target{}
	const span = 64

	targets := []Target{
		Mapped(arch.PhysAddr(page(1000)), rwxN),
		Mapped(arch.PhysAddr(page(2000)), rwN),
		Annotated(1),
		Annotated(7),
	}
	for step := 0; step < 5000; step++ {
		va := page(uint64(rng.Intn(span)))
		nr := uint64(rng.Intn(4) + 1)
		if rng.Intn(3) == 0 {
			m.Remove(va, nr)
			for i := uint64(0); i < nr; i++ {
				delete(ref, va+page(i))
			}
		} else {
			tgt := targets[rng.Intn(len(targets))]
			m.Set(va, nr, tgt)
			for i := uint64(0); i < nr; i++ {
				ref[va+page(i)] = tgt.at(i)
			}
		}
		checkCanonical(t, m)
	}
	for p := uint64(0); p < span+8; p++ {
		got, ok := m.Lookup(page(p))
		want, wantOK := ref[page(p)]
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("page %d: got %+v,%v want %+v,%v", p, got, ok, want, wantOK)
		}
	}
	if m.NrPages() != uint64(len(ref)) {
		t.Errorf("NrPages=%d, ref=%d", m.NrPages(), len(ref))
	}
}

func checkCanonical(t *testing.T, m Mapping) {
	t.Helper()
	mls := m.Maplets()
	for i := range mls {
		if mls[i].NrPages == 0 {
			t.Fatal("empty maplet")
		}
		if i > 0 {
			prev := mls[i-1]
			if prev.end() > mls[i].VA {
				t.Fatal("overlapping maplets")
			}
			if prev.end() == mls[i].VA && prev.Target.continues(prev.NrPages, mls[i].Target) {
				t.Fatal("uncoalesced adjacent maplets")
			}
		}
	}
}
