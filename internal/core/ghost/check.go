package ghost

import (
	"fmt"
	"strings"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// CompareTernary is the §4.2.2 check between the recorded pre-state,
// the recorded post-state, and the specification-computed post-state:
// wherever the computed post is present it must equal the recorded
// post; wherever it is absent, the recorded post must equal the
// pre-state (the handler must not have touched what the specification
// says it does not touch). Footprints are excluded — which frames back
// a table is an implementation detail.
//
// It returns "" on success, or a human-readable diff of the first
// disagreements.
func CompareTernary(pre, recorded, computed *State, cpu int) string {
	var b strings.Builder

	cmpMapping := func(name string, comp, rec, pr Mapping, compPresent, recPresent, prePresent bool) {
		switch {
		case compPresent:
			if !recPresent {
				fmt.Fprintf(&b, "%s: specified but never recorded (lock never taken?)\n", name)
				return
			}
			if !EqualMappings(comp, rec) {
				fmt.Fprintf(&b, "%s: recorded post differs from computed post:\n%s", name,
					diffPages(DiffMappings(comp, rec)))
			}
		case recPresent:
			if !prePresent {
				// Recorded on release but never on acquire cannot
				// happen under the hook discipline; flag it.
				fmt.Fprintf(&b, "%s: recorded post without a recorded pre\n", name)
				return
			}
			if !EqualMappings(pr, rec) {
				fmt.Fprintf(&b, "%s: changed but the specification says untouched:\n%s", name,
					diffPages(DiffMappings(pr, rec)))
			}
		}
	}

	cmpMapping("pkvm.pgt", computed.Pkvm.PGT.Mapping, recorded.Pkvm.PGT.Mapping, pre.Pkvm.PGT.Mapping,
		computed.Pkvm.Present, recorded.Pkvm.Present, pre.Pkvm.Present)
	cmpMapping("host.annot", computed.Host.Annot, recorded.Host.Annot, pre.Host.Annot,
		computed.Host.Present, recorded.Host.Present, pre.Host.Present)
	cmpMapping("host.shared", computed.Host.Shared, recorded.Host.Shared, pre.Host.Shared,
		computed.Host.Present, recorded.Host.Present, pre.Host.Present)

	// VM table.
	switch {
	case computed.VMs.Present:
		if !recorded.VMs.Present {
			b.WriteString("vms: specified but never recorded\n")
		} else if !computed.VMs.Equal(recorded.VMs) {
			fmt.Fprintf(&b, "vms: recorded post differs from computed post:\n%s",
				diffVMs(computed.VMs, recorded.VMs))
		}
	case recorded.VMs.Present:
		if !pre.VMs.Present {
			b.WriteString("vms: recorded post without a recorded pre\n")
		} else if !pre.VMs.Equal(recorded.VMs) {
			fmt.Fprintf(&b, "vms: changed but the specification says untouched:\n%s",
				diffVMs(pre.VMs, recorded.VMs))
		}
	}

	// Guest stage 2 tables: union of handles seen anywhere.
	handles := map[hyp.Handle]bool{}
	for h := range computed.Guests {
		handles[h] = true
	}
	for h := range recorded.Guests {
		handles[h] = true
	}
	for h := range handles {
		comp, rec, pr := computed.Guests[h], recorded.Guests[h], pre.Guests[h]
		name := fmt.Sprintf("guest:%v.pgt", h)
		var compM, recM, prM Mapping
		var compP, recP, prP bool
		if comp != nil {
			compM, compP = comp.PGT.Mapping, comp.Present
		}
		if rec != nil {
			recM, recP = rec.PGT.Mapping, rec.Present
		}
		if pr != nil {
			prM, prP = pr.PGT.Mapping, pr.Present
		}
		cmpMapping(name, compM, recM, prM, compP, recP, prP)
	}

	// Thread-locals of the executing CPU: the specification always
	// computes them (registers carry the return value).
	compL, recL := computed.Locals[cpu], recorded.Locals[cpu]
	switch {
	case compL != nil && compL.Present:
		if recL == nil || !recL.Present {
			b.WriteString("locals: specified but not recorded\n")
		} else if !compL.Equal(*recL) {
			fmt.Fprintf(&b, "locals: recorded post differs from computed post:\n%s",
				diffLocals(*compL, *recL))
		}
	case recL != nil && recL.Present:
		preL := pre.Locals[cpu]
		if preL == nil || !preL.Equal(*recL) {
			b.WriteString("locals: changed but the specification says untouched\n")
		}
	}

	return b.String()
}

// CheckInitLayout verifies the boot-time hypervisor stage 1 against
// the expected initial layout, computed independently from the ghost
// globals: the carve-out linear map plus the console device page above
// the linear region. This is the redundant computation that catches
// the paper's bug 5 (linear map / IO overlap).
func CheckInitLayout(init *State) string {
	if !init.Globals.Present || !init.Pkvm.Present {
		return "init recording incomplete"
	}
	g := init.Globals.Globals

	var want Mapping
	carvePages := g.CarveSize >> arch.PageShift
	want.Extend(g.HypVAOffset+uint64(g.CarveStart), carvePages,
		Mapped(g.CarveStart, arch.Attrs{Perms: arch.PermRW, Mem: arch.MemNormal, State: arch.StateOwned}))

	// The specification's own placement rule for the console mapping.
	ramEnd := uint64(g.RAMStart) + g.RAMSize
	uartVA := g.HypVAOffset + ((ramEnd + (1 << 30) - 1) &^ ((1 << 30) - 1))
	uartTarget := Mapped(g.UARTPhys, arch.Attrs{Perms: arch.PermRW, Mem: arch.MemDevice, State: arch.StateOwned})
	if uartVA >= want.Maplets()[0].VA+carvePages<<arch.PageShift {
		want.Extend(uartVA, 1, uartTarget)
	}

	if !EqualMappings(init.Pkvm.PGT.Mapping, want) {
		return "boot hypervisor mapping differs from expected initial layout:\n" +
			diffPages(DiffMappings(want, init.Pkvm.PGT.Mapping))
	}
	return ""
}
