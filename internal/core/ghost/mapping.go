// Package ghost is the paper's contribution: the reified ghost state —
// a mathematical abstraction of the hypervisor's concrete state
// expressed as ordinary data structures — together with the executable
// abstraction functions that compute it, the per-exception
// specification functions that compute expected post-states, and the
// runtime machinery that records, checks, diffs, and prints it all
// (paper §3–4).
//
// The package deliberately never reads concrete state through the
// hypervisor's own page-table helpers: abstraction functions interpret
// raw descriptors via package arch, preserving the hygiene split
// between implementation and specification that the paper insists on.
package ghost

import (
	"fmt"
	"sort"
	"strings"

	"ghostspec/internal/arch"
)

// TargetKind distinguishes the two things a range of input addresses
// can abstractly map to.
type TargetKind uint8

const (
	// TargetMapped is a translation to physical memory with
	// attributes.
	TargetMapped TargetKind = iota
	// TargetAnnotated is pKVM's ownership annotation: unmapped, owned
	// by the named component.
	TargetAnnotated
)

// Target is the right-hand side of a maplet. For TargetMapped, page i
// of the maplet maps to Phys + i*PageSize with Attrs; for
// TargetAnnotated the range is unmapped and owned by Owner.
type Target struct {
	Kind  TargetKind
	Phys  arch.PhysAddr
	Attrs arch.Attrs
	Owner uint8
}

// Mapped builds a mapped target.
func Mapped(phys arch.PhysAddr, attrs arch.Attrs) Target {
	return Target{Kind: TargetMapped, Phys: phys, Attrs: attrs}
}

// Annotated builds an ownership-annotation target.
func Annotated(owner uint8) Target {
	return Target{Kind: TargetAnnotated, Owner: owner}
}

// at returns the target as seen at page offset i within a maplet.
func (t Target) at(i uint64) Target {
	if t.Kind == TargetMapped {
		t.Phys += arch.PhysAddr(i << arch.PageShift)
	}
	return t
}

// continues reports whether next is what this target looks like
// nrPages further on — the coalescing criterion.
func (t Target) continues(nrPages uint64, next Target) bool {
	if t.Kind != next.Kind {
		return false
	}
	switch t.Kind {
	case TargetMapped:
		return t.Attrs == next.Attrs && t.Phys+arch.PhysAddr(nrPages<<arch.PageShift) == next.Phys
	default:
		return t.Owner == next.Owner
	}
}

func (t Target) String() string {
	if t.Kind == TargetAnnotated {
		return fmt.Sprintf("owner:%d", t.Owner)
	}
	return fmt.Sprintf("phys:%x %s", uint64(t.Phys), t.Attrs)
}

// Maplet is one maximally coalesced contiguous range of a mapping: VA
// (an input address, virtual or intermediate-physical) for NrPages
// pages, mapping to Target.
type Maplet struct {
	VA      uint64
	NrPages uint64
	Target  Target
}

func (m Maplet) end() uint64 { return m.VA + m.NrPages<<arch.PageShift }

func (m Maplet) String() string {
	return fmt.Sprintf("virt:%x+%d %s", m.VA, m.NrPages, m.Target)
}

// Mapping is a finite range map from page-aligned input addresses to
// targets: the extensional meaning of a page table (paper §3.1,
// "abstract mappings"). The representation is an ordered list of
// maximally coalesced maplets; all operations maintain that canonical
// form, so semantic equality is representation equality.
type Mapping struct {
	maplets []Maplet
}

// Clone returns an independent copy.
func (m Mapping) Clone() Mapping {
	out := make([]Maplet, len(m.maplets))
	copy(out, m.maplets)
	return Mapping{maplets: out}
}

// IsEmpty reports whether the mapping has no pages.
func (m Mapping) IsEmpty() bool { return len(m.maplets) == 0 }

// NrPages returns the total number of mapped/annotated pages.
func (m Mapping) NrPages() uint64 {
	var n uint64
	for _, ml := range m.maplets {
		n += ml.NrPages
	}
	return n
}

// NrMaplets returns the number of coalesced ranges — the
// representation size the memory accounting reports.
func (m Mapping) NrMaplets() int { return len(m.maplets) }

// Maplets returns the underlying ranges, ascending and coalesced.
// Callers must not mutate the result.
func (m Mapping) Maplets() []Maplet { return m.maplets }

// Lookup returns the target of the page containing va.
func (m Mapping) Lookup(va uint64) (Target, bool) {
	va = arch.AlignDown(va)
	i := sort.Search(len(m.maplets), func(i int) bool { return m.maplets[i].end() > va })
	if i == len(m.maplets) || m.maplets[i].VA > va {
		return Target{}, false
	}
	ml := m.maplets[i]
	return ml.Target.at((va - ml.VA) >> arch.PageShift), true
}

// Extend appends a range during in-order construction (the abstraction
// function's extend_mapping_coalesce, Fig 2). va must be at or past
// the end of the mapping; adjacent compatible ranges coalesce.
func (m *Mapping) Extend(va uint64, nrPages uint64, t Target) {
	if nrPages == 0 {
		return
	}
	if n := len(m.maplets); n > 0 {
		last := &m.maplets[n-1]
		if va < last.end() {
			panic(fmt.Sprintf("ghost: out-of-order Extend at %#x (end %#x)", va, last.end()))
		}
		if va == last.end() && last.Target.continues(last.NrPages, t) {
			last.NrPages += nrPages
			return
		}
	}
	m.maplets = append(m.maplets, Maplet{VA: va, NrPages: nrPages, Target: t})
}

// Set overwrites [va, va+nrPages*4K) with the target, replacing
// whatever was there — the specification functions' mapping_update.
func (m *Mapping) Set(va uint64, nrPages uint64, t Target) {
	m.Remove(va, nrPages)
	m.insert(Maplet{VA: va, NrPages: nrPages, Target: t})
}

// Remove erases [va, va+nrPages*4K) from the mapping, splitting
// maplets as needed.
func (m *Mapping) Remove(va uint64, nrPages uint64) {
	if nrPages == 0 {
		return
	}
	start, end := va, va+nrPages<<arch.PageShift
	var out []Maplet
	for _, ml := range m.maplets {
		if ml.end() <= start || ml.VA >= end {
			out = append(out, ml)
			continue
		}
		// Left remainder.
		if ml.VA < start {
			out = append(out, Maplet{
				VA:      ml.VA,
				NrPages: (start - ml.VA) >> arch.PageShift,
				Target:  ml.Target,
			})
		}
		// Right remainder.
		if ml.end() > end {
			skip := (end - ml.VA) >> arch.PageShift
			out = append(out, Maplet{
				VA:      end,
				NrPages: ml.NrPages - skip,
				Target:  ml.Target.at(skip),
			})
		}
	}
	m.maplets = out
}

// insert adds a maplet that must not overlap anything present, then
// re-establishes coalescing around it.
func (m *Mapping) insert(nm Maplet) {
	i := sort.Search(len(m.maplets), func(i int) bool { return m.maplets[i].VA >= nm.VA })
	m.maplets = append(m.maplets, Maplet{})
	copy(m.maplets[i+1:], m.maplets[i:])
	m.maplets[i] = nm
	m.coalesceAround(i)
}

func (m *Mapping) coalesceAround(i int) {
	// Merge with the previous maplet.
	if i > 0 {
		prev, cur := m.maplets[i-1], m.maplets[i]
		if prev.end() == cur.VA && prev.Target.continues(prev.NrPages, cur.Target) {
			m.maplets[i-1].NrPages += cur.NrPages
			m.maplets = append(m.maplets[:i], m.maplets[i+1:]...)
			i--
		}
	}
	// Merge with the next.
	if i+1 < len(m.maplets) {
		cur, next := m.maplets[i], m.maplets[i+1]
		if cur.end() == next.VA && cur.Target.continues(cur.NrPages, next.Target) {
			m.maplets[i].NrPages += next.NrPages
			m.maplets = append(m.maplets[:i+1], m.maplets[i+2:]...)
		}
	}
}

// EqualMappings reports extensional equality. Because both sides are
// canonical, this is plain structural comparison.
func EqualMappings(a, b Mapping) bool {
	if len(a.maplets) != len(b.maplets) {
		return false
	}
	for i := range a.maplets {
		if a.maplets[i] != b.maplets[i] {
			return false
		}
	}
	return true
}

// PageDiff is one page-level difference between two mappings, in the
// paper's +/- diff notation.
type PageDiff struct {
	// Added is true for a page present in the new mapping and not the
	// old (a "+" line), false for the reverse.
	Added  bool
	VA     uint64
	Target Target
}

func (d PageDiff) String() string {
	sign := "-"
	if d.Added {
		sign = "+"
	}
	return fmt.Sprintf("%svirt:%x %s", sign, d.VA, d.Target)
}

// DiffMappings returns the page-granular differences from old to new:
// pages removed, pages added, and pages whose target changed (reported
// as a remove plus an add).
func DiffMappings(old, new Mapping) []PageDiff {
	var diffs []PageDiff
	forEachPage(old, func(va uint64, t Target) {
		nt, ok := new.Lookup(va)
		if !ok {
			diffs = append(diffs, PageDiff{Added: false, VA: va, Target: t})
		} else if nt != t {
			diffs = append(diffs, PageDiff{Added: false, VA: va, Target: t})
			diffs = append(diffs, PageDiff{Added: true, VA: va, Target: nt})
		}
	})
	forEachPage(new, func(va uint64, t Target) {
		if _, ok := old.Lookup(va); !ok {
			diffs = append(diffs, PageDiff{Added: true, VA: va, Target: t})
		}
	})
	sort.SliceStable(diffs, func(i, j int) bool { return diffs[i].VA < diffs[j].VA })
	return diffs
}

func forEachPage(m Mapping, f func(va uint64, t Target)) {
	for _, ml := range m.maplets {
		for i := uint64(0); i < ml.NrPages; i++ {
			f(ml.VA+i<<arch.PageShift, ml.Target.at(i))
		}
	}
}

func (m Mapping) String() string {
	if len(m.maplets) == 0 {
		return "{}"
	}
	var b strings.Builder
	for i, ml := range m.maplets {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ml.String())
	}
	return b.String()
}
