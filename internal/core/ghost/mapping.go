// Package ghost is the paper's contribution: the reified ghost state —
// a mathematical abstraction of the hypervisor's concrete state
// expressed as ordinary data structures — together with the executable
// abstraction functions that compute it, the per-exception
// specification functions that compute expected post-states, and the
// runtime machinery that records, checks, diffs, and prints it all
// (paper §3–4).
//
// The package deliberately never reads concrete state through the
// hypervisor's own page-table helpers: abstraction functions interpret
// raw descriptors via package arch, preserving the hygiene split
// between implementation and specification that the paper insists on.
package ghost

import (
	"fmt"
	"sort"
	"strings"

	"ghostspec/internal/arch"
)

// TargetKind distinguishes the two things a range of input addresses
// can abstractly map to.
type TargetKind uint8

const (
	// TargetMapped is a translation to physical memory with
	// attributes.
	TargetMapped TargetKind = iota
	// TargetAnnotated is pKVM's ownership annotation: unmapped, owned
	// by the named component.
	TargetAnnotated
)

// Target is the right-hand side of a maplet. For TargetMapped, page i
// of the maplet maps to Phys + i*PageSize with Attrs; for
// TargetAnnotated the range is unmapped and owned by Owner.
type Target struct {
	Kind  TargetKind
	Phys  arch.PhysAddr
	Attrs arch.Attrs
	Owner uint8
}

// Mapped builds a mapped target.
func Mapped(phys arch.PhysAddr, attrs arch.Attrs) Target {
	return Target{Kind: TargetMapped, Phys: phys, Attrs: attrs}
}

// Annotated builds an ownership-annotation target.
func Annotated(owner uint8) Target {
	return Target{Kind: TargetAnnotated, Owner: owner}
}

// at returns the target as seen at page offset i within a maplet.
func (t Target) at(i uint64) Target {
	if t.Kind == TargetMapped {
		t.Phys += arch.PhysAddr(i << arch.PageShift)
	}
	return t
}

// continues reports whether next is what this target looks like
// nrPages further on — the coalescing criterion.
func (t Target) continues(nrPages uint64, next Target) bool {
	if t.Kind != next.Kind {
		return false
	}
	switch t.Kind {
	case TargetMapped:
		return t.Attrs == next.Attrs && t.Phys+arch.PhysAddr(nrPages<<arch.PageShift) == next.Phys
	default:
		return t.Owner == next.Owner
	}
}

func (t Target) String() string {
	if t.Kind == TargetAnnotated {
		return fmt.Sprintf("owner:%d", t.Owner)
	}
	return fmt.Sprintf("phys:%x %s", uint64(t.Phys), t.Attrs)
}

// Maplet is one maximally coalesced contiguous range of a mapping: VA
// (an input address, virtual or intermediate-physical) for NrPages
// pages, mapping to Target.
type Maplet struct {
	VA      uint64
	NrPages uint64
	Target  Target
}

func (m Maplet) end() uint64 { return m.VA + m.NrPages<<arch.PageShift }

func (m Maplet) String() string {
	return fmt.Sprintf("virt:%x+%d %s", m.VA, m.NrPages, m.Target)
}

// Mapping is a finite range map from page-aligned input addresses to
// targets: the extensional meaning of a page table (paper §3.1,
// "abstract mappings"). The representation is an ordered list of
// maximally coalesced maplets; all operations maintain that canonical
// form, so semantic equality is representation equality.
type Mapping struct {
	maplets []Maplet
	// cow marks the maplet backing array as possibly shared with
	// another Mapping produced by Clone; mutators copy it first (see
	// own). Clone sets the flag on both sides, so whichever alias
	// mutates first pays for the copy and the other keeps the original.
	cow bool
}

// Clone returns a semantically independent copy. The maplet slice is
// shared copy-on-write: both aliases are marked, and the first
// mutation on either side copies the backing array. The shared-ghost
// refresh at every lock release clones mappings that are almost never
// mutated afterwards, so sharing until proven otherwise removes an
// allocation proportional to the live maplet count from that hot path.
//
// An already-flagged receiver is left untouched, which makes Clone
// read-only on mappings that were themselves produced by Clone. That
// is what lets concurrent restores share one Checkpoint: the capture
// flagged every mapping in it, so the restore-side clones never write
// into the shared snapshot.
func (m *Mapping) Clone() Mapping {
	if !m.cow {
		m.cow = true
	}
	return Mapping{maplets: m.maplets, cow: true}
}

// own makes the receiver the sole owner of its backing array; every
// mutator calls it before writing. Mutation through anything but the
// exported methods below (or plain struct copies of an unflagged
// Mapping) would defeat the scheme, so there are none.
func (m *Mapping) own() {
	if m.cow {
		m.maplets = append([]Maplet(nil), m.maplets...)
		m.cow = false
	}
}

// IsEmpty reports whether the mapping has no pages.
func (m Mapping) IsEmpty() bool { return len(m.maplets) == 0 }

// NrPages returns the total number of mapped/annotated pages.
func (m Mapping) NrPages() uint64 {
	var n uint64
	for _, ml := range m.maplets {
		n += ml.NrPages
	}
	return n
}

// NrMaplets returns the number of coalesced ranges — the
// representation size the memory accounting reports.
func (m Mapping) NrMaplets() int { return len(m.maplets) }

// Maplets returns the underlying ranges, ascending and coalesced.
// Callers must not mutate the result.
func (m Mapping) Maplets() []Maplet { return m.maplets }

// Lookup returns the target of the page containing va.
func (m Mapping) Lookup(va uint64) (Target, bool) {
	va = arch.AlignDown(va)
	i := sort.Search(len(m.maplets), func(i int) bool { return m.maplets[i].end() > va })
	if i == len(m.maplets) || m.maplets[i].VA > va {
		return Target{}, false
	}
	ml := m.maplets[i]
	return ml.Target.at((va - ml.VA) >> arch.PageShift), true
}

// Grow pre-sizes the maplet slice for at least n further appends
// without reallocation. Interpretation walks know roughly how many
// maplets they will produce (the previous walk's count), so hinting
// turns the Extend stream's repeated slice growth into one
// allocation.
func (m *Mapping) Grow(n int) {
	if n <= 0 || (!m.cow && cap(m.maplets)-len(m.maplets) >= n) {
		return
	}
	ml := make([]Maplet, len(m.maplets), len(m.maplets)+n)
	copy(ml, m.maplets)
	m.maplets = ml
	m.cow = false
}

// Extend appends a range during in-order construction (the abstraction
// function's extend_mapping_coalesce, Fig 2). va must be at or past
// the end of the mapping; adjacent compatible ranges coalesce.
func (m *Mapping) Extend(va uint64, nrPages uint64, t Target) {
	if nrPages == 0 {
		return
	}
	m.own()
	if n := len(m.maplets); n > 0 {
		last := &m.maplets[n-1]
		if va < last.end() {
			panic(fmt.Sprintf("ghost: out-of-order Extend at %#x (end %#x)", va, last.end()))
		}
		if va == last.end() && last.Target.continues(last.NrPages, t) {
			last.NrPages += nrPages
			return
		}
	}
	m.maplets = append(m.maplets, Maplet{VA: va, NrPages: nrPages, Target: t})
}

// Set overwrites [va, va+nrPages*4K) with the target, replacing
// whatever was there — the specification functions' mapping_update.
func (m *Mapping) Set(va uint64, nrPages uint64, t Target) {
	m.Remove(va, nrPages)
	m.insert(Maplet{VA: va, NrPages: nrPages, Target: t})
}

// Remove erases [va, va+nrPages*4K) from the mapping, splitting
// maplets as needed.
func (m *Mapping) Remove(va uint64, nrPages uint64) {
	if nrPages == 0 {
		return
	}
	start, end := va, va+nrPages<<arch.PageShift
	out := make([]Maplet, 0, len(m.maplets))
	for _, ml := range m.maplets {
		if ml.end() <= start || ml.VA >= end {
			out = append(out, ml)
			continue
		}
		// Left remainder.
		if ml.VA < start {
			out = append(out, Maplet{
				VA:      ml.VA,
				NrPages: (start - ml.VA) >> arch.PageShift,
				Target:  ml.Target,
			})
		}
		// Right remainder.
		if ml.end() > end {
			skip := (end - ml.VA) >> arch.PageShift
			out = append(out, Maplet{
				VA:      end,
				NrPages: ml.NrPages - skip,
				Target:  ml.Target.at(skip),
			})
		}
	}
	m.maplets = out
	m.cow = false // out is freshly built, never shared
}

// insert adds a maplet that must not overlap anything present, then
// re-establishes coalescing around it.
func (m *Mapping) insert(nm Maplet) {
	m.own()
	i := sort.Search(len(m.maplets), func(i int) bool { return m.maplets[i].VA >= nm.VA })
	m.maplets = append(m.maplets, Maplet{})
	copy(m.maplets[i+1:], m.maplets[i:])
	m.maplets[i] = nm
	m.coalesceAround(i)
}

func (m *Mapping) coalesceAround(i int) {
	// Merge with the previous maplet.
	if i > 0 {
		prev, cur := m.maplets[i-1], m.maplets[i]
		if prev.end() == cur.VA && prev.Target.continues(prev.NrPages, cur.Target) {
			m.maplets[i-1].NrPages += cur.NrPages
			m.maplets = append(m.maplets[:i], m.maplets[i+1:]...)
			i--
		}
	}
	// Merge with the next.
	if i+1 < len(m.maplets) {
		cur, next := m.maplets[i], m.maplets[i+1]
		if cur.end() == next.VA && cur.Target.continues(cur.NrPages, next.Target) {
			m.maplets[i].NrPages += next.NrPages
			m.maplets = append(m.maplets[:i+1], m.maplets[i+2:]...)
		}
	}
}

// SpliceRange replaces [va, va+nrPages*4K) wholesale with repl, whose
// maplets must be canonical (ascending, coalesced) and lie entirely
// within the range. It is the incremental abstraction's subtree graft:
// the re-interpreted meaning of one table subtree replaces the cached
// meaning of that subtree's input range, with coalescing re-established
// at the two boundary joints so the result is bit-for-bit the mapping a
// full re-interpretation would have built.
func (m *Mapping) SpliceRange(va uint64, nrPages uint64, repl []Maplet) {
	end := va + nrPages<<arch.PageShift
	for i, ml := range repl {
		if ml.VA < va || ml.end() > end || (i > 0 && repl[i-1].end() > ml.VA) {
			panic(fmt.Sprintf("ghost: splice replacement %v outside [%#x,%#x) or out of order", ml, va, end))
		}
	}
	m.Remove(va, nrPages) // leaves m uniquely owned
	if len(repl) == 0 {
		return
	}
	i := sort.Search(len(m.maplets), func(i int) bool { return m.maplets[i].VA >= va })
	grown := make([]Maplet, 0, len(m.maplets)+len(repl))
	grown = append(grown, m.maplets[:i]...)
	grown = append(grown, repl...)
	grown = append(grown, m.maplets[i:]...)
	m.maplets = grown
	// Right joint first: merging it does not disturb indices at or
	// below the left joint. Interior joints of repl are already
	// coalesced by construction.
	m.mergeAt(i + len(repl) - 1)
	m.mergeAt(i - 1)
}

// mergeAt coalesces maplets[k] with maplets[k+1] when both exist and
// continue each other.
func (m *Mapping) mergeAt(k int) {
	if k < 0 || k+1 >= len(m.maplets) {
		return
	}
	cur, next := m.maplets[k], m.maplets[k+1]
	if cur.end() == next.VA && cur.Target.continues(cur.NrPages, next.Target) {
		m.maplets[k].NrPages += next.NrPages
		m.maplets = append(m.maplets[:k+1], m.maplets[k+2:]...)
	}
}

// EqualMappings reports extensional equality. Because both sides are
// canonical, this is plain structural comparison.
func EqualMappings(a, b Mapping) bool {
	if len(a.maplets) != len(b.maplets) {
		return false
	}
	for i := range a.maplets {
		if a.maplets[i] != b.maplets[i] {
			return false
		}
	}
	return true
}

// PageDiff is one page-level difference between two mappings, in the
// paper's +/- diff notation.
type PageDiff struct {
	// Added is true for a page present in the new mapping and not the
	// old (a "+" line), false for the reverse.
	Added  bool
	VA     uint64
	Target Target
}

func (d PageDiff) String() string {
	sign := "-"
	if d.Added {
		sign = "+"
	}
	return fmt.Sprintf("%svirt:%x %s", sign, d.VA, d.Target)
}

// diffEntryCap bounds the entries DiffMappings returns. A wildly wrong
// state (say, a corrupted root descriptor annotating half the address
// space) differs in hundreds of millions of pages; materialising them
// all turns a failure report into a multi-minute allocation storm. The
// renderer prints 16 lines anyway.
const diffEntryCap = 8192

// DiffMappings returns the page-granular differences from old to new:
// pages removed, pages added, and pages whose target changed (reported
// as a remove plus an add), in ascending VA order, truncated at
// diffEntryCap entries.
//
// Both sides are canonical maplet lists, so this is a two-pointer
// interval sweep. Within a window where both sides cover the same
// pages, the targets either agree everywhere or disagree everywhere
// (page i's target is a linear function of the window's first target),
// so equal windows are skipped in O(1) without per-page expansion.
func DiffMappings(old, new Mapping) []PageDiff {
	var diffs []PageDiff
	emitRun := func(added bool, m Maplet) {
		for k := uint64(0); k < m.NrPages && len(diffs) < diffEntryCap; k++ {
			diffs = append(diffs, PageDiff{Added: added, VA: m.VA + k<<arch.PageShift, Target: m.Target.at(k)})
		}
	}
	// advance consumes pages off the front of a maplet fragment.
	advance := func(m *Maplet, pages uint64) {
		m.VA += pages << arch.PageShift
		m.Target = m.Target.at(pages)
		m.NrPages -= pages
	}

	var o, n Maplet
	i, j := 0, 0
	for len(diffs) < diffEntryCap {
		if o.NrPages == 0 && i < len(old.maplets) {
			o, i = old.maplets[i], i+1
		}
		if n.NrPages == 0 && j < len(new.maplets) {
			n, j = new.maplets[j], j+1
		}
		if o.NrPages == 0 && n.NrPages == 0 {
			break
		}
		switch {
		case n.NrPages == 0 || (o.NrPages > 0 && o.end() <= n.VA):
			emitRun(false, o)
			o.NrPages = 0
		case o.NrPages == 0 || n.end() <= o.VA:
			emitRun(true, n)
			n.NrPages = 0
		case o.VA < n.VA:
			head := Maplet{VA: o.VA, NrPages: (n.VA - o.VA) >> arch.PageShift, Target: o.Target}
			emitRun(false, head)
			advance(&o, head.NrPages)
		case n.VA < o.VA:
			head := Maplet{VA: n.VA, NrPages: (o.VA - n.VA) >> arch.PageShift, Target: n.Target}
			emitRun(true, head)
			advance(&n, head.NrPages)
		default: // aligned overlap window
			w := o.NrPages
			if n.NrPages < w {
				w = n.NrPages
			}
			if o.Target != n.Target {
				for k := uint64(0); k < w && len(diffs) < diffEntryCap; k++ {
					va := o.VA + k<<arch.PageShift
					diffs = append(diffs,
						PageDiff{Added: false, VA: va, Target: o.Target.at(k)},
						PageDiff{Added: true, VA: va, Target: n.Target.at(k)})
				}
			}
			advance(&o, w)
			advance(&n, w)
		}
	}
	return diffs
}

func (m Mapping) String() string {
	if len(m.maplets) == 0 {
		return "{}"
	}
	var b strings.Builder
	for i, ml := range m.maplets {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ml.String())
	}
	return b.String()
}
