package ghost

// Specification-side fault injection. The paper's random testing
// "found 9 errors in the specification itself, all related to subtle
// error scenarios" — the oracle tests the *correspondence*, so a wrong
// spec against a correct implementation alarms just the same. This
// file makes that reproducible: named, deliberately wrong variants of
// spec behaviour that tests (and the random tester) can switch on and
// watch the oracle flag against the fixed hypervisor.
//
// One of these is not synthetic at all: SpecBugReclaimForgetShared is
// the exact specification error the random campaign in this
// reproduction found (see EXPERIMENTS.md, "Spec bugs found").

import "sync"

// SpecBug names an injectable specification defect.
type SpecBug string

const (
	// SpecBugShareForgetPkvm: the share spec forgets to add the
	// hypervisor's borrowed mapping to the expected post-state.
	SpecBugShareForgetPkvm SpecBug = "spec-share-forget-pkvm"

	// SpecBugReclaimForgetShared: the reclaim spec clears the dead
	// guest's ownership annotation but forgets that a page the guest
	// had shared back to the host also carries a borrowed mapping in
	// host.shared. This is the real specification error found by
	// random testing during this reproduction.
	SpecBugReclaimForgetShared SpecBug = "spec-reclaim-forget-shared"

	// SpecBugAbortInvertInject: the memory-abort spec inverts the
	// inject decision.
	SpecBugAbortInvertInject SpecBug = "spec-abort-invert-inject"
)

// AllSpecBugs lists the injectable spec defects.
func AllSpecBugs() []SpecBug {
	return []SpecBug{SpecBugShareForgetPkvm, SpecBugReclaimForgetShared, SpecBugAbortInvertInject}
}

var specFaultMu sync.RWMutex
var specFaults = map[SpecBug]bool{}

// SetSpecFault switches an injectable specification defect on or off.
// Like the paper's spec-side errors, these are global to the build of
// the spec, not to one hypervisor instance.
func SetSpecFault(b SpecBug, on bool) {
	specFaultMu.Lock()
	defer specFaultMu.Unlock()
	if on {
		specFaults[b] = true
	} else {
		delete(specFaults, b)
	}
}

// ClearSpecFaults switches every spec defect off.
func ClearSpecFaults() {
	specFaultMu.Lock()
	defer specFaultMu.Unlock()
	specFaults = map[SpecBug]bool{}
}

// specFault reports whether a spec defect is enabled.
func specFault(b SpecBug) bool {
	specFaultMu.RLock()
	defer specFaultMu.RUnlock()
	return specFaults[b]
}
