package ghost

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
	"ghostspec/internal/mem"
	"ghostspec/internal/pgtable"
)

// mustMatchFull fails unless the cached abstraction equals a fresh
// full interpretation of the same table.
func mustMatchFull(t *testing.T, c *PgtableCache, tbl *pgtable.Table, when string) {
	t.Helper()
	got, _ := c.Interpret(tbl.Mem, tbl.Root())
	ref := InterpretPgtable(tbl.Mem, tbl.Root())
	if !EqualMappings(got.Mapping, ref.Mapping) {
		t.Fatalf("%s: cached mapping diverges from full recompute:\n%s",
			when, diffPages(DiffMappings(ref.Mapping, got.Mapping)))
	}
	if !got.Footprint.Equal(ref.Footprint) {
		t.Fatalf("%s: cached footprint %v, full %v", when, got.Footprint, ref.Footprint)
	}
}

// TestCacheOutcomes: a cold cache walks fully, an unchanged table
// hits, a leaf-level write re-walks partially — and each outcome's
// abstraction matches the full recompute.
func TestCacheOutcomes(t *testing.T) {
	tbl := buildRandomTable(t, 7)
	var c PgtableCache

	if _, outcome := c.Interpret(tbl.Mem, tbl.Root()); outcome != CacheFull {
		t.Fatalf("cold interpret: outcome %v, want full", outcome)
	}
	mustMatchFull(t, &c, tbl, "after cold walk")

	if _, outcome := c.Interpret(tbl.Mem, tbl.Root()); outcome != CacheHit {
		t.Fatalf("unchanged interpret: outcome %v, want hit", outcome)
	}

	// Rewrite one existing leaf in place: only its level-3 table page
	// changes, so the re-walk must be partial.
	var leafIA uint64
	found := false
	_ = tbl.Walk(0, 1<<arch.IABits, &pgtable.Visitor{
		Flags: pgtable.VisitLeaf,
		Fn: func(ctx *pgtable.VisitCtx) error {
			if !found && ctx.Level == arch.LastLevel && ctx.PTE.Valid() {
				leafIA, found = ctx.IA, true
			}
			return nil
		},
	})
	if !found {
		t.Fatal("random table has no level-3 leaf")
	}
	attrs := arch.Attrs{Perms: arch.PermR, Mem: arch.MemNormal, State: arch.StateSharedOwned}
	if err := tbl.Map(leafIA, arch.PageSize, arch.PhysAddr(0x7770000), attrs, true); err != nil {
		t.Fatal(err)
	}
	if _, outcome := c.Interpret(tbl.Mem, tbl.Root()); outcome != CachePartial {
		t.Fatalf("after leaf rewrite: outcome %v, want partial", outcome)
	}
	mustMatchFull(t, &c, tbl, "after leaf rewrite")

	// mustMatchFull's own Interpret calls land as extra hits.
	st := c.Stats()
	if st.Hits < 2 || st.FullWalks != 1 || st.PartialWalks != 1 {
		t.Errorf("stats %+v: want >=2 hits, 1 full walk, 1 partial", st)
	}
}

// TestCacheRandomChurn: random map/unmap/annotate traffic, with the
// cached and full interpretations compared after every mutation. This
// exercises subtree growth, block splitting, table freeing, and frame
// reuse — all the structural changes the dirty-subtree logic must
// survive.
func TestCacheRandomChurn(t *testing.T) {
	m := arch.NewMemory(arch.DefaultLayout())
	pool := mem.NewPool("tables", arch.PFN(0x90000), 192)
	tbl, err := pgtable.New("churn", m, arch.Stage2, pgtable.PoolAllocator{Pool: pool}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	attrs := arch.Attrs{Perms: arch.PermRWX, Mem: arch.MemNormal, State: arch.StateOwned}

	var c PgtableCache
	for step := 0; step < 300; step++ {
		ia := uint64(rng.Intn(1<<20)) << arch.PageShift
		pages := uint64(rng.Intn(8) + 1)
		switch rng.Intn(3) {
		case 0:
			pa := arch.PhysAddr(rng.Intn(1<<20)) << arch.PageShift
			_ = tbl.Map(ia, pages<<arch.PageShift, pa, attrs, true)
		case 1:
			_ = tbl.Unmap(ia, pages<<arch.PageShift)
		case 2:
			_ = tbl.Annotate(ia, pages<<arch.PageShift, uint8(rng.Intn(3)+1))
		}
		mustMatchFull(t, &c, tbl, fmt.Sprintf("step %d", step))
	}
	st := c.Stats()
	if st.PartialWalks == 0 {
		t.Error("300 mutations produced no partial walks")
	}
}

// TestCacheRootChange: pointing the cache at a different root is a
// full walk of the new tree.
func TestCacheRootChange(t *testing.T) {
	a := buildRandomTable(t, 1)
	var c PgtableCache
	c.Interpret(a.Mem, a.Root())

	pool := mem.NewPool("tables2", arch.PFN(0xa0000), 64)
	b, err := pgtable.New("other", a.Mem, arch.Stage2, pgtable.PoolAllocator{Pool: pool}, 2)
	if err != nil {
		t.Fatal(err)
	}
	attrs := arch.Attrs{Perms: arch.PermRW, Mem: arch.MemNormal, State: arch.StateOwned}
	if err := b.Map(4<<arch.PageShift, arch.PageSize, 0x5000, attrs, false); err != nil {
		t.Fatal(err)
	}
	got, outcome := c.Interpret(a.Mem, b.Root())
	if outcome != CacheFull {
		t.Fatalf("root change: outcome %v, want full", outcome)
	}
	ref := InterpretPgtable(a.Mem, b.Root())
	if !EqualMappings(got.Mapping, ref.Mapping) {
		t.Error("root change: abstraction of the new tree is wrong")
	}
}

// TestCacheSnapshotImmutable: an abstraction handed out by the cache
// must not change when the table mutates and the cache re-walks —
// recorded pre/post states would otherwise rewrite themselves.
func TestCacheSnapshotImmutable(t *testing.T) {
	tbl := buildRandomTable(t, 13)
	var c PgtableCache
	snap, _ := c.Interpret(tbl.Mem, tbl.Root())
	saved := append([]Maplet(nil), snap.Mapping.Maplets()...)

	attrs := arch.Attrs{Perms: arch.PermRW, Mem: arch.MemNormal, State: arch.StateOwned}
	for i := uint64(0); i < 32; i++ {
		_ = tbl.Map((0x300+i)<<arch.PageShift, arch.PageSize, arch.PhysAddr(0x8880000+i*arch.PageSize), attrs, true)
		c.Interpret(tbl.Mem, tbl.Root())
	}

	after := snap.Mapping.Maplets()
	if len(after) != len(saved) {
		t.Fatalf("snapshot maplet count changed: %d -> %d", len(saved), len(after))
	}
	for i := range saved {
		if after[i] != saved[i] {
			t.Fatalf("snapshot maplet %d changed: %v -> %v", i, saved[i], after[i])
		}
	}
}

// TestSeparationReportsAllViolations: with three footprints violating
// two constraints at once, the separation alarm names every violated
// pair, not just the last one scanned (which an earlier version
// silently kept).
func TestSeparationReportsAllViolations(t *testing.T) {
	r := &Recorder{shared: NewState()}
	g := hyp.Globals{NrCPUs: 1, CarveStart: 1 << 30, CarveSize: 16 << 20}
	r.shared.Globals = Globals{Present: true, Globals: g}

	carve := arch.PhysToPFN(g.CarveStart)
	outside := carve + arch.PFN(g.CarveSize>>arch.PageShift) + 10

	r.shared.Pkvm = Pkvm{Present: true,
		PGT: AbstractPgtable{Footprint: NewPageSet(carve+1, outside)}}
	r.shared.Host = Host{Present: true}
	r.hostFootprint = NewPageSet(carve + 1)

	r.checkSeparation()
	fs := r.Failures()
	if len(fs) != 1 {
		t.Fatalf("%d separation alarms, want 1 combined", len(fs))
	}
	d := fs[0].Detail
	if !strings.Contains(d, "footprints of pkvm and host overlap") {
		t.Errorf("overlap violation missing from detail:\n%s", d)
	}
	if !strings.Contains(d, "outside the carve-out") {
		t.Errorf("carve-out violation missing from detail:\n%s", d)
	}
}

// TestBootAlarmLabel: boot-time alarms render "boot", not a fabricated
// cpu0 exception.
func TestBootAlarmLabel(t *testing.T) {
	f := Failure{Kind: FailInitLayout, Call: CallData{Boot: true}, Detail: "layout wrong"}
	if got := f.String(); !strings.Contains(got, "boot") || strings.Contains(got, "cpu0") {
		t.Errorf("boot alarm renders %q", got)
	}
}

// TestVerifyCacheCleanScenario: the recorder's differential self-check
// stays silent across the full lifecycle scenario — the cached and
// reference abstraction paths agree at every hook.
func TestVerifyCacheCleanScenario(t *testing.T) {
	s := newSys(t)
	s.rec.VerifyCache = true
	fullScenario(t, s)
	s.mustClean(t)
	st := s.rec.Stats()
	if st.Cache.Hits == 0 || st.Cache.PartialWalks == 0 {
		t.Errorf("scenario exercised no cache hits/partial walks: %+v", st.Cache)
	}
}
