package ghost

// A relational specification variant. The paper (§3) weighs two
// styles: functional specs that compute the expected post-state — the
// style used throughout this package — and relational specs that take
// the recorded pre- and post-states and decide whether the transition
// was allowed. The paper argues the functional form is more intuitive
// for conventional developers but notes the relational form
// accommodates more looseness. This file implements the relational
// style for host_share_hyp so the two can be compared — including a
// differential test that replays traces through both and checks the
// verdicts coincide (spec_relational_test.go).

import (
	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// RelVerdict is a relational spec's judgement of a transition.
type RelVerdict struct {
	Allowed bool
	Reason  string
}

func allowed() RelVerdict             { return RelVerdict{Allowed: true} }
func forbidden(why string) RelVerdict { return RelVerdict{Reason: why} }

// RelHostShareHyp is the relational specification of host_share_hyp:
// given the recorded pre- and post-states and the call data, was this
// transition permitted? Note the characteristic difference from the
// functional form: instead of building the one expected post-state, it
// enumerates conditions any acceptable post-state must satisfy.
func RelHostShareHyp(pre, post *State, call *CallData) RelVerdict {
	g := pre.Globals.Globals
	pfn := arch.PFN(call.Arg(pre, 1))
	phys := pfn.Phys()
	hypAddr := uint64(phys) + g.HypVAOffset
	ret := hyp.Errno(call.Ret)

	unchanged := func() RelVerdict {
		if !EqualMappings(pre.Host.Shared, post.Host.Shared) ||
			!EqualMappings(pre.Host.Annot, post.Host.Annot) {
			return forbidden("error/loose path changed the host component")
		}
		if !EqualMappings(pre.Pkvm.PGT.Mapping, post.Pkvm.PGT.Mapping) {
			return forbidden("error/loose path changed the pkvm component")
		}
		return allowed()
	}

	switch {
	case !g.InRAM(phys):
		if ret != hyp.EINVAL {
			return forbidden("non-memory share must return -EINVAL")
		}
		return unchanged()

	case !ownedExclusivelyByHost(pre, phys):
		if ret != hyp.EPERM {
			return forbidden("share of non-exclusive page must return -EPERM")
		}
		return unchanged()

	case ret == hyp.ENOMEM:
		// The loose branch: allowed, with no visible change.
		return unchanged()

	case ret == hyp.OK:
		// The share must appear on both sides, exactly, and nothing
		// else may change.
		wantShared := pre.Host.Shared.Clone()
		wantShared.Set(uint64(phys), 1, Mapped(phys, hostMemoryAttributes(true, arch.StateSharedOwned)))
		if !EqualMappings(wantShared, post.Host.Shared) {
			return forbidden("host.shared is not pre + the shared page")
		}
		if !EqualMappings(pre.Host.Annot, post.Host.Annot) {
			return forbidden("host.annot changed")
		}
		wantPkvm := pre.Pkvm.PGT.Mapping.Clone()
		wantPkvm.Set(hypAddr, 1, Mapped(phys, hypMemoryAttributes(true, arch.StateSharedBorrowed)))
		if !EqualMappings(wantPkvm, post.Pkvm.PGT.Mapping) {
			return forbidden("pkvm.pgt is not pre + the borrowed page")
		}
		return allowed()

	default:
		return forbidden("return value " + ret.String() + " is not in the allowed set")
	}
}

// RelCheckRegisters is the register half of the relational check,
// shared by any relational spec: x0 cleared, x1 is the return value
// already judged above, everything else preserved.
func RelCheckRegisters(pre, post *State, cpu int) RelVerdict {
	preL, postL := pre.Locals[cpu], post.Locals[cpu]
	if preL == nil || postL == nil {
		return forbidden("locals not recorded")
	}
	if postL.HostRegs[0] != 0 {
		return forbidden("x0 not cleared")
	}
	for r := 2; r < arch.NumGPRs; r++ {
		if preL.HostRegs[r] != postL.HostRegs[r] {
			return forbidden("argument registers clobbered")
		}
	}
	return allowed()
}
