package ghost

import (
	"bytes"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
)

// traceScenario drives a mixed workload and returns the trace.
func traceScenario(t *testing.T, s *sys) *Trace {
	t.Helper()
	tr := s.rec.RecordTrace()
	pfn := s.hostPFN(1)
	if r := s.hvc(t, 0, hyp.HCHostShareHyp, uint64(pfn)); r != 0 {
		t.Fatal("share failed")
	}
	s.hvc(t, 0, hyp.HCHostShareHyp, uint64(pfn)) // EPERM path
	if r := s.hvc(t, 1, hyp.HCHostUnshareHyp, uint64(pfn)); r != 0 {
		t.Fatal("unshare failed")
	}
	s.touch(t, 0, arch.IPA(s.hostPFN(5).Phys()), true)
	if r := s.hvc(t, 0, hyp.HCHostShareHypRange, uint64(s.hostPFN(10)), 3); r != 0 {
		t.Fatal("share range failed")
	}
	don := hyp.InitVMDonation(1)
	h := hyp.Handle(s.hvc(t, 0, hyp.HCInitVM, 1, uint64(s.hostPFN(100)), don))
	if h < hyp.HandleOffset {
		t.Fatal("init_vm failed")
	}
	s.hvc(t, 0, hyp.HCInitVCPU, uint64(h), 0)
	s.hvc(t, 0, hyp.HCVCPULoad, uint64(h), 0)
	s.hvc(t, 0, hyp.HCVCPURun)
	s.hvc(t, 0, hyp.HCVCPUPut)
	return tr
}

func TestTraceReplayClean(t *testing.T) {
	s := newSys(t)
	tr := traceScenario(t, s)
	s.mustClean(t)
	if len(tr.Events) < 10 {
		t.Fatalf("trace has %d events", len(tr.Events))
	}
	if fails := Replay(tr); len(fails) != 0 {
		t.Errorf("offline replay disagreed with the live oracle: %v", fails)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	s := newSys(t)
	tr := traceScenario(t, s)

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip: %d -> %d events", len(tr.Events), len(back.Events))
	}
	// The deserialised trace replays clean too: serialisation is
	// faithful enough for the spec.
	if fails := Replay(back); len(fails) != 0 {
		t.Errorf("replay after round trip: %v", fails)
	}
	// Spot-check a mapping survived.
	found := false
	for _, ev := range back.Events {
		if ev.Post.Host.Present && !ev.Post.Host.Shared.IsEmpty() {
			found = true
		}
	}
	if !found {
		t.Error("no shared mapping survived serialisation")
	}
}

func TestTraceReplayDetectsTampering(t *testing.T) {
	s := newSys(t)
	tr := traceScenario(t, s)
	// Corrupt the recorded post of the first successful share: claim
	// the hypervisor mapped a different physical page.
	tampered := -1
	for i, ev := range tr.Events {
		if ev.Call.Reason == arch.ExitHVC && ev.Call.HC(ev.Pre) == hyp.HCHostShareHyp &&
			hyp.Errno(ev.Call.Ret) == hyp.OK {
			ml := ev.Post.Pkvm.PGT.Mapping.Maplets()
			if len(ml) == 0 {
				continue
			}
			bad := ml[len(ml)-1]
			ev.Post.Pkvm.PGT.Mapping.Set(bad.VA, 1, Mapped(bad.Target.Phys+arch.PageSize, bad.Target.Attrs))
			tampered = i
			break
		}
	}
	if tampered < 0 {
		t.Fatal("no event to tamper with")
	}
	fails := Replay(tr)
	hit := false
	for _, f := range fails {
		if f.Seq == tampered {
			hit = true
		}
	}
	if !hit {
		t.Errorf("tampered event %d not flagged; failures: %v", tampered, fails)
	}
}

func TestTraceReplayBuggyRun(t *testing.T) {
	// A trace captured from a buggy hypervisor replays with the same
	// verdicts offline.
	s := newSys(t, faults.BugShareWrongPerms)
	tr := s.rec.RecordTrace()
	s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1)))
	live := len(s.rec.Failures())
	if live == 0 {
		t.Fatal("live oracle missed the bug")
	}
	if fails := Replay(tr); len(fails) == 0 {
		t.Error("offline replay missed what the live oracle caught")
	}
}

func TestMappingJSON(t *testing.T) {
	var m Mapping
	m.Set(0x1000, 2, Mapped(0x4000_0000, arch.Attrs{Perms: arch.PermRW, State: arch.StateSharedOwned}))
	m.Set(0x5000, 1, Annotated(7))
	b, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Mapping
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if !EqualMappings(m, back) {
		t.Errorf("round trip: %v -> %v", m, back)
	}
	// Corrupt input is rejected.
	if err := back.UnmarshalJSON([]byte(`[{"VA":0,"NrPages":0}]`)); err == nil {
		t.Error("empty maplet accepted")
	}
	if err := back.UnmarshalJSON([]byte(`[{"VA":4096,"NrPages":2},{"VA":4096,"NrPages":1}]`)); err == nil {
		t.Error("overlapping maplets accepted")
	}
}
