package ghost

// Transactional (per-lock-session) checking — the extension the paper
// leaves as feasible-but-not-done: "a few hypercalls execute in
// phases, releasing and retaking locks ... Handling that would need a
// more explicitly transactional style of instrumentation."
//
// The recorder keeps, per trap, the list of lock sessions of each
// component: one (pre, post) snapshot pair per acquisition. For a
// phased hypercall the oracle then checks each session transition
// against the specification of that phase, instead of comparing one
// monolithic pre/post pair — which would falsely alarm whenever
// another CPU legitimately changed the component between phases.

import (
	"fmt"
	"strings"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// Session is one lock session of one component within a single trap:
// the abstraction recorded at acquisition and at release.
type Session struct {
	Pre  *State // only the session's component is present
	Post *State // nil if the trap panicked while holding the lock
}

// Sessions maps each component to its lock sessions within one trap,
// in acquisition order.
type Sessions map[hyp.Component][]*Session

// isPhased reports whether a hypercall releases and retakes locks
// mid-call, requiring per-session checking.
func isPhased(id hyp.HC) bool { return id == hyp.HCHostShareHypRange }

// checkShareRangePhased is the transactional specification of
// host_share_hyp_range: it replays the per-page loop, checking each
// recorded lock session's transition independently. Interference from
// other CPUs *between* sessions is invisible to it by construction —
// each phase is judged only against its own recorded pre-state.
//
// Returns "" on success or a failure description.
func checkShareRangePhased(pre *State, call *CallData, sessions Sessions) string {
	cpu := call.CPU
	g := pre.Globals.Globals
	pfn := arch.PFN(call.Arg(pre, 1))
	nr := call.Arg(pre, 2)

	hostSes := sessions[hyp.Component{Kind: hyp.CompHost}]
	hypSes := sessions[hyp.Component{Kind: hyp.CompHyp}]

	expectedRet := int64(hyp.OK)
	phases := 0

	switch {
	case nr == 0 || nr > hyp.MaxShareRange:
		expectedRet = int64(hyp.EINVAL)
	default:
	replay:
		for i := uint64(0); i < nr; i++ {
			phys := (pfn + arch.PFN(i)).Phys()
			if !g.InRAM(phys) {
				expectedRet = int64(hyp.EINVAL)
				break
			}
			if phases >= len(hostSes) || phases >= len(hypSes) {
				return fmt.Sprintf("phase %d: expected a lock session, implementation stopped after %d",
					phases, len(hostSes))
			}
			hs, ps := hostSes[phases], hypSes[phases]
			if hs.Post == nil || ps.Post == nil {
				return fmt.Sprintf("phase %d: session has no release snapshot", phases)
			}
			phases++

			hypVA := uint64(phys) + g.HypVAOffset
			switch {
			case !ownedExclusivelyByHost(hs.Pre, phys):
				// This phase must fail EPERM and change nothing.
				expectedRet = int64(hyp.EPERM)
				if d := sessionUnchanged(hs, ps); d != "" {
					return fmt.Sprintf("phase %d (EPERM) modified state:\n%s", phases-1, d)
				}
				break replay
			case call.Ret == int64(hyp.ENOMEM) && phases == len(hostSes):
				// Loose allocation failure on the final phase: the
				// phase must be a no-op (the implementation rolls
				// back), §4.3 applied per phase.
				expectedRet = int64(hyp.ENOMEM)
				if d := sessionUnchanged(hs, ps); d != "" {
					return fmt.Sprintf("phase %d (loose ENOMEM) modified state:\n%s", phases-1, d)
				}
				break replay
			default:
				// Successful phase: this page, and only this page,
				// moves to shared on both sides of this session.
				wantHost := hs.Pre.Host.Shared.Clone()
				wantHost.Set(uint64(phys), 1,
					Mapped(phys, hostMemoryAttributes(true, arch.StateSharedOwned)))
				if !EqualMappings(wantHost, hs.Post.Host.Shared) {
					return fmt.Sprintf("phase %d host.shared transition wrong:\n%s", phases-1,
						diffPages(DiffMappings(wantHost, hs.Post.Host.Shared)))
				}
				if !EqualMappings(hs.Pre.Host.Annot, hs.Post.Host.Annot) {
					return fmt.Sprintf("phase %d changed host.annot", phases-1)
				}
				wantHyp := ps.Pre.Pkvm.PGT.Mapping.Clone()
				wantHyp.Set(hypVA, 1,
					Mapped(phys, hypMemoryAttributes(true, arch.StateSharedBorrowed)))
				if !EqualMappings(wantHyp, ps.Post.Pkvm.PGT.Mapping) {
					return fmt.Sprintf("phase %d pkvm.pgt transition wrong:\n%s", phases-1,
						diffPages(DiffMappings(wantHyp, ps.Post.Pkvm.PGT.Mapping)))
				}
			}
		}
	}

	if phases != len(hostSes) || phases != len(hypSes) {
		return fmt.Sprintf("implementation ran %d/%d phases, specification expects %d",
			len(hostSes), len(hypSes), phases)
	}

	// Register epilogue: x0 cleared, x1 carries the expected return.
	recL := callLocals(call)
	if recL == nil {
		return "no recorded locals"
	}
	var b strings.Builder
	if recL.HostRegs[0] != 0 {
		fmt.Fprintf(&b, "x0 = %#x, want 0\n", recL.HostRegs[0])
	}
	if got := int64(recL.HostRegs[1]); got != expectedRet {
		fmt.Fprintf(&b, "ret = %v, want %v\n", hyp.Errno(got), hyp.Errno(expectedRet))
	}
	// The remaining registers are preserved.
	preL := pre.Locals[cpu]
	for r := 2; r < arch.NumGPRs; r++ {
		if preL.HostRegs[r] != recL.HostRegs[r] {
			fmt.Fprintf(&b, "x%d clobbered\n", r)
		}
	}
	return b.String()
}

// sessionUnchanged checks a (host or pkvm) session left its component
// untouched, returning a diff otherwise.
func sessionUnchanged(hs, ps *Session) string {
	var b strings.Builder
	if !EqualMappings(hs.Pre.Host.Shared, hs.Post.Host.Shared) {
		b.WriteString(diffPages(DiffMappings(hs.Pre.Host.Shared, hs.Post.Host.Shared)))
	}
	if !EqualMappings(hs.Pre.Host.Annot, hs.Post.Host.Annot) {
		b.WriteString(diffPages(DiffMappings(hs.Pre.Host.Annot, hs.Post.Host.Annot)))
	}
	if !EqualMappings(ps.Pre.Pkvm.PGT.Mapping, ps.Post.Pkvm.PGT.Mapping) {
		b.WriteString(diffPages(DiffMappings(ps.Pre.Pkvm.PGT.Mapping, ps.Post.Pkvm.PGT.Mapping)))
	}
	return b.String()
}

// callLocals returns the recorded exit locals stashed on the call.
func callLocals(call *CallData) *CPULocal { return call.exitLocals }
