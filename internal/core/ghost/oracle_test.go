package ghost

import (
	"strings"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/faults"
	"ghostspec/internal/hyp"
)

// sys is a booted system with the oracle attached.
type sys struct {
	hv  *hyp.Hypervisor
	rec *Recorder
}

func newSys(t *testing.T, bugs ...faults.Bug) *sys {
	t.Helper()
	hv, err := hyp.New(hyp.Config{Inj: faults.NewInjector(bugs...)})
	if err != nil {
		t.Fatal(err)
	}
	return &sys{hv: hv, rec: Attach(hv)}
}

func (s *sys) hvc(t *testing.T, cpu int, id hyp.HC, args ...uint64) int64 {
	t.Helper()
	regs := &s.hv.CPUs[cpu].HostRegs
	regs[0] = uint64(id)
	for i := range regs[1:] {
		regs[i+1] = 0
	}
	for i, a := range args {
		regs[i+1] = a
	}
	if err := s.hv.HandleTrap(cpu, arch.ExitHVC); err != nil {
		t.Logf("trap: %v", err)
	}
	return int64(regs[1])
}

func (s *sys) touch(t *testing.T, cpu int, ipa arch.IPA, write bool) {
	t.Helper()
	acc := arch.Access{Write: write}
	if _, fault := arch.Walk(s.hv.Mem, s.hv.HostPGTRoot(), uint64(ipa), acc); fault == nil {
		return
	}
	s.hv.CPUs[cpu].Fault = arch.FaultInfo{Addr: ipa, Write: write}
	if err := s.hv.HandleTrap(cpu, arch.ExitMemAbort); err != nil {
		t.Logf("abort trap: %v", err)
	}
}

func (s *sys) hostPFN(n uint64) arch.PFN {
	return arch.PhysToPFN(s.hv.HostMemStart()) + arch.PFN(n)
}

func (s *sys) mustClean(t *testing.T) {
	t.Helper()
	for _, f := range s.rec.Failures() {
		t.Errorf("unexpected oracle alarm: %v", f)
	}
}

func (s *sys) mustAlarm(t *testing.T, kinds ...FailureKind) {
	t.Helper()
	fs := s.rec.Failures()
	if len(fs) == 0 {
		t.Fatal("oracle raised no alarm")
	}
	want := map[FailureKind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	for _, f := range fs {
		if want[f.Kind] {
			return
		}
	}
	t.Errorf("no alarm of kind %v; got %v", kinds, fs)
}

// fullScenario drives every hypercall through a realistic lifecycle.
func fullScenario(t *testing.T, s *sys) {
	t.Helper()
	// Host touches memory (demand mapping, block and page).
	s.touch(t, 0, arch.IPA(s.hostPFN(0).Phys()), true)
	s.touch(t, 1, arch.IPA(s.hostPFN(600).Phys()), false)
	s.touch(t, 0, arch.IPA(hyp.UARTPhys), true) // MMIO
	// Fault on hypervisor memory: injected back.
	s.touch(t, 2, arch.IPA(s.hv.Globals().CarveStart), false)

	// Shares.
	if r := s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1))); r != 0 {
		t.Fatalf("share: %v", hyp.Errno(r))
	}
	s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1))) // double share: EPERM path
	if r := s.hvc(t, 1, hyp.HCHostUnshareHyp, uint64(s.hostPFN(1))); r != 0 {
		t.Fatalf("unshare: %v", hyp.Errno(r))
	}
	// Donation.
	if r := s.hvc(t, 0, hyp.HCHostDonateHyp, uint64(s.hostPFN(8)), 4); r != 0 {
		t.Fatalf("donate: %v", hyp.Errno(r))
	}

	// VM lifecycle.
	don := hyp.InitVMDonation(1)
	h := hyp.Handle(s.hvc(t, 0, hyp.HCInitVM, 1, uint64(s.hostPFN(100)), don))
	if h < hyp.HandleOffset {
		t.Fatalf("init_vm: %v", hyp.Errno(int64(h)))
	}
	if r := s.hvc(t, 0, hyp.HCInitVCPU, uint64(h), 0); r != 0 {
		t.Fatalf("init_vcpu: %v", hyp.Errno(r))
	}
	// Topup.
	pfns := []arch.PFN{s.hostPFN(200), s.hostPFN(201), s.hostPFN(202), s.hostPFN(203)}
	for i, pfn := range pfns {
		next := uint64(0)
		if i+1 < len(pfns) {
			next = uint64(pfns[i+1].Phys())
		}
		s.hv.Mem.Write64(pfn.Phys(), next)
	}
	if r := s.hvc(t, 0, hyp.HCTopupVCPUMemcache, uint64(h), 0, uint64(pfns[0].Phys()), 4); r != 0 {
		t.Fatalf("topup: %v", hyp.Errno(r))
	}
	// Load, map, run guest ops, put.
	if r := s.hvc(t, 0, hyp.HCVCPULoad, uint64(h), 0); r != 0 {
		t.Fatalf("load: %v", hyp.Errno(r))
	}
	if r := s.hvc(t, 0, hyp.HCHostMapGuest, uint64(s.hostPFN(300)), 16); r != 0 {
		t.Fatalf("map_guest: %v", hyp.Errno(r))
	}
	ipa := arch.IPA(16 << arch.PageShift)
	s.hv.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestAccess, IPA: ipa, Write: true, Value: 0x1234})
	s.hv.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestAccess, IPA: ipa})
	s.hv.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestAccess, IPA: 99 << arch.PageShift}) // faults
	s.hv.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestShareHost, IPA: ipa})
	s.hv.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestUnshareHost, IPA: ipa})
	for i := 0; i < 6; i++ { // one extra: quiescent yield
		s.hvc(t, 0, hyp.HCVCPURun)
	}
	if r := s.hvc(t, 0, hyp.HCVCPUPut); r != 0 {
		t.Fatalf("put: %v", hyp.Errno(r))
	}
	// Teardown and reclaim.
	if r := s.hvc(t, 1, hyp.HCTeardownVM, uint64(h)); r != 0 {
		t.Fatalf("teardown: %v", hyp.Errno(r))
	}
	st := s.rec // drain the reclaim set recorded by the oracle
	_ = st
	for _, pfn := range reclaimSet(s) {
		if r := s.hvc(t, 0, hyp.HCHostReclaimPage, uint64(pfn)); r != 0 {
			t.Fatalf("reclaim %#x: %v", uint64(pfn), hyp.Errno(r))
		}
	}
	// Error paths.
	s.hvc(t, 0, hyp.HCHostShareHyp, uint64(arch.PhysToPFN(hyp.UARTPhys))) // EINVAL
	s.hvc(t, 0, hyp.HCVCPULoad, 0x9999, 0)                                // ENOENT
	s.hvc(t, 0, hyp.HC(0x999))                                            // ENOSYS
}

// reclaimSet drains the hypervisor's reclaim set via a throwaway
// teardown-time snapshot (reading it through a clean vms-lock cycle).
func reclaimSet(s *sys) []arch.PFN {
	// Issue a failing reclaim to force a recording cycle, then read
	// the shared ghost copy.
	s.hv.CPUs[3].HostRegs[0] = uint64(hyp.HCHostReclaimPage)
	s.hv.CPUs[3].HostRegs[1] = 0 // pfn 0: never reclaimable
	_ = s.hv.HandleTrap(3, arch.ExitHVC)
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	return s.rec.shared.VMs.Reclaim.Sorted()
}

// TestOracleCleanRun: the full scenario on the fixed hypervisor raises
// no alarms — the specification and implementation agree.
func TestOracleCleanRun(t *testing.T) {
	s := newSys(t)
	fullScenario(t, s)
	s.mustClean(t)
	st := s.rec.Stats()
	if st.Checks < 20 || st.Passed != st.Checks {
		t.Errorf("stats: %+v", st)
	}
}

// TestOracleDetectsEveryInjectedBug is the §5 synthetic-bug-testing
// experiment: every injectable defect must raise an oracle alarm when
// the scenario exercises its code path.
func TestOracleDetectsEveryInjectedBug(t *testing.T) {
	cases := []struct {
		bug   faults.Bug
		kinds []FailureKind
		drive func(t *testing.T, s *sys)
	}{
		{faults.BugShareSkipStateCheck, []FailureKind{FailSpecMismatch}, func(t *testing.T, s *sys) {
			// Share a page already shared: the skipped check lets it
			// succeed where the spec says EPERM.
			s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1)))
			s.rec.ResetFailures()
			s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1)))
		}},
		{faults.BugShareWrongPerms, []FailureKind{FailSpecMismatch}, func(t *testing.T, s *sys) {
			s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1)))
		}},
		{faults.BugWrongReturnValue, []FailureKind{FailSpecMismatch}, func(t *testing.T, s *sys) {
			s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1)))
			s.rec.ResetFailures()
			s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1))) // EPERM path reports OK
		}},
		{faults.BugUnshareLeaveMapping, []FailureKind{FailSpecMismatch}, func(t *testing.T, s *sys) {
			s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1)))
			s.rec.ResetFailures()
			s.hvc(t, 0, hyp.HCHostUnshareHyp, uint64(s.hostPFN(1)))
		}},
		{faults.BugDonateKeepHostMapping, []FailureKind{FailSpecMismatch}, func(t *testing.T, s *sys) {
			s.hvc(t, 0, hyp.HCHostDonateHyp, uint64(s.hostPFN(8)), 2)
		}},
		{faults.BugMapDemandWrongState, []FailureKind{FailSpecMismatch}, func(t *testing.T, s *sys) {
			s.touch(t, 0, arch.IPA(s.hostPFN(0).Phys()), true)
		}},
		{faults.BugVCPULoadRace, []FailureKind{FailSpecMismatch}, func(t *testing.T, s *sys) {
			don := hyp.InitVMDonation(2)
			h := hyp.Handle(s.hvc(t, 0, hyp.HCInitVM, 2, uint64(s.hostPFN(100)), don))
			s.rec.ResetFailures()
			s.hvc(t, 0, hyp.HCVCPULoad, uint64(h), 1) // uninitialised vcpu
		}},
		{faults.BugMemcacheSize, []FailureKind{FailSpecMismatch}, func(t *testing.T, s *sys) {
			h := setupVMForOracle(t, s)
			s.rec.ResetFailures()
			s.hvc(t, 0, hyp.HCTopupVCPUMemcache, uint64(h), 0, uint64(s.hostPFN(200).Phys()), 0x10000)
		}},
		{faults.BugMemcacheAlignment, []FailureKind{FailSpecMismatch, FailNonInterference}, func(t *testing.T, s *sys) {
			h := setupVMForOracle(t, s)
			s.rec.ResetFailures()
			bad := uint64(s.hostPFN(200).Phys()) + 0x800
			s.hv.Mem.Write64(arch.PhysAddr(bad), 0)
			s.hvc(t, 0, hyp.HCTopupVCPUMemcache, uint64(h), 0, bad, 1)
		}},
		{faults.BugHostFaultRetry, []FailureKind{FailPanic}, func(t *testing.T, s *sys) {
			ipa := arch.IPA(s.hostPFN(0).Phys())
			s.touch(t, 0, ipa, true)
			s.rec.ResetFailures()
			// Spurious re-fault on the now-mapped page.
			s.hv.CPUs[0].Fault = arch.FaultInfo{Addr: ipa, Write: true}
			_ = s.hv.HandleTrap(0, arch.ExitMemAbort)
		}},
		{faults.BugReclaimSkipOwnerClear, []FailureKind{FailSpecMismatch}, func(t *testing.T, s *sys) {
			h := setupVMForOracle(t, s)
			if r := s.hvc(t, 0, hyp.HCTeardownVM, uint64(h)); r != 0 {
				t.Fatalf("teardown: %v", hyp.Errno(r))
			}
			pfns := reclaimSet(s)
			s.rec.ResetFailures()
			s.hvc(t, 0, hyp.HCHostReclaimPage, uint64(pfns[0]))
		}},
	}

	for _, c := range cases {
		t.Run(string(c.bug), func(t *testing.T) {
			s := newSys(t, c.bug)
			c.drive(t, s)
			s.mustAlarm(t, c.kinds...)
		})
	}
}

// TestOracleDetectsLinearMapOverlap: bug 5 is a boot-time defect,
// caught by the init layout check on large-memory devices.
func TestOracleDetectsLinearMapOverlap(t *testing.T) {
	big := arch.MemLayout{RAMStart: 1 << 30, RAMSize: 4 << 30, MMIOSize: 16 << 20}
	hv, err := hyp.New(hyp.Config{Layout: big, Inj: faults.NewInjector(faults.BugLinearMapOverlap)})
	if err != nil {
		t.Fatal(err)
	}
	rec := Attach(hv)
	found := false
	for _, f := range rec.Failures() {
		if f.Kind == FailInitLayout {
			found = true
		}
	}
	if !found {
		t.Error("boot with linear-map overlap raised no init-layout alarm")
	}
}

func setupVMForOracle(t *testing.T, s *sys) hyp.Handle {
	t.Helper()
	don := hyp.InitVMDonation(1)
	h := hyp.Handle(s.hvc(t, 0, hyp.HCInitVM, 1, uint64(s.hostPFN(100)), don))
	if h < hyp.HandleOffset {
		t.Fatalf("init_vm: %v", hyp.Errno(int64(h)))
	}
	if r := s.hvc(t, 0, hyp.HCInitVCPU, uint64(h), 0); r != 0 {
		t.Fatalf("init_vcpu: %v", hyp.Errno(r))
	}
	return h
}

// TestOracleGuestProgram: a real (interpreted) guest program — loads,
// stores, faults with restart, guest hypercalls — under the oracle.
// Guest-private register churn is environment; the hypervisor-visible
// transitions stay fully checked.
func TestOracleGuestProgram(t *testing.T) {
	s := newSys(t)
	h := setupVMForOracle(t, s)
	pfns := []arch.PFN{s.hostPFN(200), s.hostPFN(201), s.hostPFN(202), s.hostPFN(203)}
	for i, pfn := range pfns {
		next := uint64(0)
		if i+1 < len(pfns) {
			next = uint64(pfns[i+1].Phys())
		}
		s.hv.Mem.Write64(pfn.Phys(), next)
	}
	if r := s.hvc(t, 0, hyp.HCTopupVCPUMemcache, uint64(h), 0, uint64(pfns[0].Phys()), 4); r != 0 {
		t.Fatalf("topup: %v", hyp.Errno(r))
	}

	page := uint64(16 << arch.PageShift)
	hole := uint64(40 << arch.PageShift)
	prog := []hyp.Insn{
		{Op: hyp.OpMovi, Dst: 1, Imm: 123},
		{Op: hyp.OpMovi, Dst: 3, Imm: page},
		{Op: hyp.OpStore, Dst: 1, Src: 3}, // faults until the host maps gfn 16
		{Op: hyp.OpShareHost, Src: 3},
		{Op: hyp.OpMovi, Dst: 4, Imm: hole},
		{Op: hyp.OpLoad, Dst: 2, Src: 4}, // faults; host declines, guest stuck here
		{Op: hyp.OpHalt},
	}
	if !s.hv.LoadGuestProgram(h, 0, prog) {
		t.Fatal("program load failed")
	}
	if r := s.hvc(t, 0, hyp.HCVCPULoad, uint64(h), 0); r != 0 {
		t.Fatalf("load: %v", hyp.Errno(r))
	}

	// Run 1: store faults at gfn 16.
	if r := s.hvc(t, 0, hyp.HCVCPURun); r != hyp.RunExitMemAbort {
		t.Fatalf("run1 = %d", r)
	}
	// Host services it.
	if r := s.hvc(t, 0, hyp.HCHostMapGuest, uint64(s.hostPFN(300)), 16); r != 0 {
		t.Fatalf("map_guest: %v", hyp.Errno(r))
	}
	// Run 2: store retries and succeeds, then the share hypercall
	// exits.
	if r := s.hvc(t, 0, hyp.HCVCPURun); r != hyp.RunExitYield {
		t.Fatalf("run2 = %d", r)
	}
	if e := hyp.ErrnoFromReg(s.hv.CPUs[0].GuestRegs[0]); e != hyp.OK {
		t.Fatalf("guest share errno: %v", e)
	}
	// Run 3: the load of an unmapped gfn faults; the host does not
	// map it; further runs keep faulting there (restart semantics).
	for i := 0; i < 2; i++ {
		if r := s.hvc(t, 0, hyp.HCVCPURun); r != hyp.RunExitMemAbort {
			t.Fatalf("run3+%d = %d", i, r)
		}
	}
	s.mustClean(t)
	st := s.rec.Stats()
	if st.Passed != st.Checks {
		t.Errorf("stats: %+v", st)
	}
}

// TestOracleBigMemoryDemandBlocks: on a 4GB device, first touch maps
// whole 1GB blocks; the loose host specification absorbs them without
// any spec change — they are legal and invisible, exactly §3.1.
func TestOracleBigMemoryDemandBlocks(t *testing.T) {
	big := arch.MemLayout{RAMStart: 1 << 30, RAMSize: 4 << 30, MMIOSize: 16 << 20}
	hv, err := hyp.New(hyp.Config{Layout: big})
	if err != nil {
		t.Fatal(err)
	}
	rec := Attach(hv)
	s := &sys{hv: hv, rec: rec}

	s.touch(t, 0, arch.IPA(3<<30), true) // 1GB block
	s.touch(t, 1, arch.IPA(uint64(hv.HostMemStart())), true)
	pfn := arch.PhysToPFN(3<<30) + 7
	if r := s.hvc(t, 0, hyp.HCHostShareHyp, uint64(pfn)); r != 0 {
		t.Fatalf("share: %v", hyp.Errno(r))
	}
	if r := s.hvc(t, 0, hyp.HCHostUnshareHyp, uint64(pfn)); r != 0 {
		t.Fatalf("unshare: %v", hyp.Errno(r))
	}
	s.mustClean(t)

	// The ghost host state stayed tiny despite gigabytes mapped:
	// only the carve-out annotation, no shared pages.
	host, herr := AbstractHost(hv)
	if herr != nil {
		t.Fatal(herr)
	}
	if !host.Shared.IsEmpty() {
		t.Errorf("shared not empty: %v", host.Shared)
	}
	if host.Annot.NrMaplets() > 2 {
		t.Errorf("annot fragmented: %v", host.Annot)
	}
}

// TestOracleNonInterference: direct corruption of a protected
// component between hypercalls trips the §4.4 check on the next lock
// acquisition.
func TestOracleNonInterference(t *testing.T) {
	s := newSys(t)
	s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1)))
	s.mustClean(t)
	// Corrupt the host table behind the hypervisor's back.
	hostForceMap(t, s.hv, uint64(s.hostPFN(50).Phys()), s.hostPFN(50).Phys(),
		arch.Attrs{Perms: arch.PermRW, Mem: arch.MemNormal, State: arch.StateSharedOwned})
	// Next hypercall that takes the host lock must notice.
	s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(2)))
	s.mustAlarm(t, FailNonInterference)
}

// TestOracleDiffOutput: a failing check produces the paper-style
// +/- page diff.
func TestOracleDiffOutput(t *testing.T) {
	s := newSys(t, faults.BugShareWrongPerms)
	s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1)))
	fs := s.rec.Failures()
	if len(fs) == 0 {
		t.Fatal("no failure")
	}
	if !strings.Contains(fs[0].Detail, "pkvm.pgt") {
		t.Errorf("diff does not name the component:\n%s", fs[0].Detail)
	}
	if !strings.Contains(fs[0].Detail, "+") || !strings.Contains(fs[0].Detail, "-") {
		t.Errorf("diff lacks +/- lines:\n%s", fs[0].Detail)
	}
}

// TestFormatStateDiff: the share diff reads like the paper's example —
// one new host.shared page, one new pkvm page, changed registers.
func TestFormatStateDiff(t *testing.T) {
	s := newSys(t)
	var pre, post *State
	done := false
	s.rec.OnFailure = func(Failure) {}
	// Capture pre/post by running the share and reading the recorder's
	// last recording via a custom scenario: replicate by hand instead.
	pre = NewState()
	pre.Globals = AbstractGlobals(s.hv)
	pre.Host, _ = AbstractHost(s.hv)
	pre.Pkvm = AbstractHyp(s.hv)
	l := AbstractLocal(s.hv, 0)
	pre.Locals[0] = &l

	s.hvc(t, 0, hyp.HCHostShareHyp, uint64(s.hostPFN(1)))

	post = NewState()
	post.Host, _ = AbstractHost(s.hv)
	post.Pkvm = AbstractHyp(s.hv)
	l2 := AbstractLocal(s.hv, 0)
	post.Locals[0] = &l2
	done = true
	_ = done

	out := FormatStateDiff(pre, post)
	if !strings.Contains(out, "host.shared") || !strings.Contains(out, "pkvm.pgt") {
		t.Errorf("diff missing components:\n%s", out)
	}
}
