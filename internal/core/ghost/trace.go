package ghost

// Trace recording and offline replay. Because the specification
// functions are pure — they read only the ghost pre-state and the
// ghost call data — a recorded trace of (pre, call, post) triples can
// be re-checked entirely offline, away from the hypervisor: for
// debugging a spec against a captured run, as a regression corpus, or
// to re-examine a failure with a modified specification. This is the
// workflow the paper's diffing/printing machinery supports
// interactively, made persistent.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
	"ghostspec/internal/telemetry"
)

// SessionRecord is a serializable lock session (Sessions flattened:
// struct-keyed maps do not survive JSON).
type SessionRecord struct {
	Kind   uint8
	Handle hyp.Handle
	Pre    *State
	Post   *State
}

// TraceEvent is one checked trap: everything the oracle consumed.
type TraceEvent struct {
	Seq      int
	Pre      *State
	Post     *State
	Call     CallData
	Sessions []SessionRecord
}

// Trace is an append-only event log. It is not internally
// synchronised; wire it through Recorder.OnEvent, which serialises.
type Trace struct {
	Events []TraceEvent
}

// Append adds an event, stamping its sequence number.
func (t *Trace) Append(ev TraceEvent) {
	ev.Seq = len(t.Events)
	t.Events = append(t.Events, ev)
}

// Save serialises the trace as JSON.
func (t *Trace) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// RecordTrace attaches a synchronised trace collector to the recorder
// and returns it; every subsequently checked trap (on any CPU) is
// appended.
func (r *Recorder) RecordTrace() *Trace {
	tr := &Trace{}
	var mu sync.Mutex
	r.OnEvent = func(ev TraceEvent) {
		mu.Lock()
		tr.Append(ev)
		mu.Unlock()
	}
	return tr
}

// ReadTrace deserialises a trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return &t, nil
}

// MarshalJSON serialises a Mapping as its maplet list.
func (m Mapping) MarshalJSON() ([]byte, error) { return json.Marshal(m.maplets) }

// UnmarshalJSON restores a Mapping from a maplet list, verifying the
// canonical form.
func (m *Mapping) UnmarshalJSON(b []byte) error {
	var mls []Maplet
	if err := json.Unmarshal(b, &mls); err != nil {
		return err
	}
	for i, ml := range mls {
		if ml.NrPages == 0 {
			return fmt.Errorf("ghost: maplet %d empty", i)
		}
		if i > 0 && mls[i-1].end() > ml.VA {
			return fmt.Errorf("ghost: maplets %d/%d overlap", i-1, i)
		}
	}
	m.maplets = mls
	return nil
}

// ReplayResult is one replayed event's verdict.
type ReplayResult struct {
	Seq    int
	Detail string // "" on success
}

// Replay re-runs the specification over every event, returning the
// failures (empty = the whole trace re-checks clean). It needs no
// hypervisor: pure spec computation against recorded states.
func Replay(t *Trace) []ReplayResult {
	var out []ReplayResult
	tel := !telemetry.Disabled()
	for _, ev := range t.Events {
		var start time.Time
		if tel {
			replayChecks.Inc()
			start = time.Now()
		}
		d := replayEvent(ev)
		if tel {
			replayCheckLat.ObserveDuration(time.Since(start))
		}
		if d != "" {
			if tel {
				replayFailures.Inc()
			}
			out = append(out, ReplayResult{Seq: ev.Seq, Detail: d})
		}
	}
	return out
}

func replayEvent(ev TraceEvent) string {
	call := ev.Call
	if l, ok := ev.Post.Locals[call.CPU]; ok {
		call.exitLocals = l
	}

	if call.Reason == arch.ExitHVC && isPhased(call.HC(ev.Pre)) {
		sessions := make(Sessions)
		for i := range ev.Sessions {
			s := ev.Sessions[i]
			c := hyp.Component{Kind: hyp.ComponentKind(s.Kind), Handle: s.Handle}
			sessions[c] = append(sessions[c], &Session{Pre: s.Pre, Post: s.Post})
		}
		return checkShareRangePhased(ev.Pre, &call, sessions)
	}

	expected := NewState()
	if !ComputePost(expected, ev.Pre, &call) {
		return "no specification for this exception"
	}
	return CompareTernary(ev.Pre, ev.Post, expected, call.CPU)
}

// sessionRecords flattens a Sessions map, deterministically ordered by
// component (within-component session order is what replay pairs on).
func sessionRecords(s Sessions) []SessionRecord {
	comps := make([]hyp.Component, 0, len(s))
	for c := range s {
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].Kind != comps[j].Kind {
			return comps[i].Kind < comps[j].Kind
		}
		return comps[i].Handle < comps[j].Handle
	})
	var out []SessionRecord
	for _, c := range comps {
		for _, ses := range s[c] {
			out = append(out, SessionRecord{
				Kind: uint8(c.Kind), Handle: c.Handle, Pre: ses.Pre, Post: ses.Post,
			})
		}
	}
	return out
}
