package ghost

import (
	"sync"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// TestMultiVCPUConcurrent runs two vCPUs of the SAME VM on two
// physical CPUs simultaneously: both grow the shared guest stage 2
// through their own memcaches, contend on the guest and host locks,
// and run guest traffic — with the oracle checking every trap on both
// threads. This exercises the trickiest ownership interplay: VM
// metadata owned partly by the vms lock, partly by each loading CPU,
// plus a guest table both threads mutate under its lock.
func TestMultiVCPUConcurrent(t *testing.T) {
	s := newSys(t)

	don := hyp.InitVMDonation(2)
	h := hyp.Handle(s.hvc(t, 0, hyp.HCInitVM, 2, uint64(s.hostPFN(100)), don))
	if h < hyp.HandleOffset {
		t.Fatalf("init_vm: %v", hyp.Errno(int64(h)))
	}
	for idx := 0; idx < 2; idx++ {
		if r := s.hvc(t, 0, hyp.HCInitVCPU, uint64(h), uint64(idx)); r != 0 {
			t.Fatalf("init_vcpu %d: %v", idx, hyp.Errno(r))
		}
	}
	// Top up both vCPUs (before loading; topup of a loaded vCPU is
	// EBUSY).
	topup := func(idx int, base uint64) {
		pfns := make([]arch.PFN, 8)
		for i := range pfns {
			pfns[i] = s.hostPFN(base + uint64(i))
		}
		for i, pfn := range pfns {
			next := uint64(0)
			if i+1 < len(pfns) {
				next = uint64(pfns[i+1].Phys())
			}
			s.hv.Mem.Write64(pfn.Phys(), next)
		}
		if r := s.hvc(t, 0, hyp.HCTopupVCPUMemcache, uint64(h), uint64(idx), uint64(pfns[0].Phys()), 8); r != 0 {
			t.Fatalf("topup vcpu %d: %v", idx, hyp.Errno(r))
		}
	}
	topup(0, 200)
	topup(1, 220)

	// Load vCPU 0 on CPU 0 and vCPU 1 on CPU 1.
	for idx := 0; idx < 2; idx++ {
		if r := s.hvc(t, idx, hyp.HCVCPULoad, uint64(h), uint64(idx)); r != 0 {
			t.Fatalf("load vcpu %d: %v", idx, hyp.Errno(r))
		}
	}

	// Both CPUs concurrently donate pages into the shared guest
	// address space (disjoint gfn ranges) and run guest accesses.
	var wg sync.WaitGroup
	for idx := 0; idx < 2; idx++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				gfn := uint64(cpu*64 + 16 + i)
				page := s.hostPFN(uint64(300 + cpu*50 + i))
				if r := s.hvc(t, cpu, hyp.HCHostMapGuest, uint64(page), gfn); r != 0 {
					t.Errorf("cpu %d map_guest %d: %v", cpu, i, hyp.Errno(r))
					return
				}
				s.hv.QueueGuestOp(h, cpu, hyp.GuestOp{
					Kind: hyp.GuestAccess, IPA: arch.IPA(gfn << arch.PageShift),
					Write: true, Value: uint64(cpu<<16 | i),
				})
				if r := s.hvc(t, cpu, hyp.HCVCPURun); r != hyp.RunExitYield {
					t.Errorf("cpu %d run: %v", cpu, r)
					return
				}
			}
		}(idx)
	}
	wg.Wait()

	// Put both, tear down, verify cleanliness.
	for idx := 0; idx < 2; idx++ {
		if r := s.hvc(t, idx, hyp.HCVCPUPut); r != 0 {
			t.Fatalf("put %d: %v", idx, hyp.Errno(r))
		}
	}
	if r := s.hvc(t, 0, hyp.HCTeardownVM, uint64(h)); r != 0 {
		t.Fatalf("teardown: %v", hyp.Errno(r))
	}
	s.mustClean(t)

	st := s.rec.Stats()
	if st.Passed != st.Checks || st.Checks < 20 {
		t.Errorf("stats: %+v", st)
	}
}
