package coverage

import (
	"reflect"
	"sync"
	"testing"

	"ghostspec/internal/hyp"
)

// syntheticTracker builds a tracker pre-loaded with a deterministic
// spread of observations, distinct per index so the merged result is
// order-independent but content-sensitive.
func syntheticTracker(i int) *Tracker {
	t := &Tracker{
		outcomes: make(map[Outcome]int),
		aborts:   make(map[abortOutcome]int),
		guestOps: make(map[hyp.GuestOpKind]int),
	}
	hcs := []hyp.HC{hyp.HCHostShareHyp, hyp.HCHostUnshareHyp, hyp.HCInitVM, hyp.HCVCPURun}
	rets := []hyp.Errno{hyp.OK, hyp.EPERM, hyp.EINVAL}
	for j, hc := range hcs {
		t.outcomes[Outcome{HC: hc, Ret: rets[(i+j)%len(rets)]}] = i + j + 1
	}
	t.aborts[abortOutcome(i%2)] = i + 1
	t.guestOps[hyp.GuestOpKind(i%4)] = 2*i + 1
	t.traps = 10*i + 3
	return t
}

// TestAggregatorConcurrentAbsorb hammers one aggregate from 8
// goroutines (run under -race in CI) and asserts the merged counts
// equal the serial sum — the property the campaign engine's shared
// coverage state depends on.
func TestAggregatorConcurrentAbsorb(t *testing.T) {
	const workers = 8
	const perWorker = 50

	serial := NewAggregator()
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			serial.Absorb(syntheticTracker(w*perWorker + i))
		}
	}

	concurrent := NewAggregator()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				concurrent.Absorb(syntheticTracker(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()

	got, want := concurrent.Report(), serial.Report()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("concurrent merge diverges from serial sum:\nconcurrent: %+v\nserial:     %+v", got, want)
	}
	if got.Traps != want.Traps || got.Traps == 0 {
		t.Errorf("trap totals: concurrent %d, serial %d", got.Traps, want.Traps)
	}
}

// TestAbsorbNovelty pins the novelty contract: first sight of a key
// counts once, repeats count zero.
func TestAbsorbNovelty(t *testing.T) {
	agg := NewAggregator()
	tr := syntheticTracker(3)
	first := agg.Absorb(tr)
	// 4 outcomes + 1 abort kind + 1 guest-op kind, all fresh.
	if first != 6 {
		t.Errorf("first absorb novelty = %d, want 6", first)
	}
	if again := agg.Absorb(syntheticTracker(3)); again != 0 {
		t.Errorf("repeat absorb novelty = %d, want 0", again)
	}
	// A tracker with one extra unseen key scores exactly 1.
	tr2 := syntheticTracker(3)
	tr2.outcomes[Outcome{HC: hyp.HCTeardownVM, Ret: hyp.EBUSY}] = 1
	if n := agg.Absorb(tr2); n != 1 {
		t.Errorf("one-new-key absorb novelty = %d, want 1", n)
	}
	if r := agg.Rarity(tr2); r <= 0 {
		t.Errorf("rarity of live tracker = %v, want > 0", r)
	}
}
