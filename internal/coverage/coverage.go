// Package coverage is the custom coverage infrastructure of paper §5:
// pKVM at EL2 cannot use stock coverage tooling, so the authors built
// their own hooks and carried the data out to user space. Here the
// equivalent is an instrumentation decorator that observes every trap
// through the same hook surface the ghost recorder uses, and reports
// branch-style coverage of both the implementation handlers and the
// specification functions against an enumerated universe of reachable
// outcomes.
package coverage

import (
	"fmt"
	"strings"
	"sync"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
)

// Outcome is one implementation branch at the observation granularity:
// a handler returning a particular result class.
type Outcome struct {
	HC  hyp.HC
	Ret hyp.Errno // OK for any non-negative return
}

func (o Outcome) String() string { return fmt.Sprintf("%v→%v", o.HC, o.Ret) }

// abortOutcome classifies host stage 2 fault handling.
type abortOutcome uint8

const (
	abortMapped abortOutcome = iota
	abortInjected
)

// universe enumerates the reachable outcome branches of each handler —
// the denominator of the coverage report. Branches the authors believe
// unreachable under the current configuration are listed separately so
// the report can mirror the paper's "absolute numbers do not account
// for unreachable code" discussion.
var universe = map[hyp.HC][]hyp.Errno{
	hyp.HCHostShareHyp:      {hyp.OK, hyp.EPERM, hyp.EINVAL},
	hyp.HCHostUnshareHyp:    {hyp.OK, hyp.EPERM, hyp.EINVAL},
	hyp.HCHostDonateHyp:     {hyp.OK, hyp.EPERM, hyp.EINVAL},
	hyp.HCHostReclaimPage:   {hyp.OK, hyp.EPERM},
	hyp.HCInitVM:            {hyp.OK, hyp.EINVAL, hyp.EPERM, hyp.ENOSPC},
	hyp.HCInitVCPU:          {hyp.OK, hyp.ENOENT, hyp.EINVAL, hyp.EEXIST},
	hyp.HCTeardownVM:        {hyp.OK, hyp.ENOENT, hyp.EBUSY},
	hyp.HCVCPULoad:          {hyp.OK, hyp.ENOENT, hyp.EINVAL, hyp.EBUSY},
	hyp.HCVCPUPut:           {hyp.OK, hyp.ENOENT},
	hyp.HCVCPURun:           {hyp.OK, hyp.ENOENT},
	hyp.HCHostMapGuest:      {hyp.OK, hyp.ENOENT, hyp.EINVAL, hyp.EPERM, hyp.EEXIST, hyp.ENOMEM},
	hyp.HCTopupVCPUMemcache: {hyp.OK, hyp.ENOENT, hyp.EINVAL, hyp.EPERM, hyp.EBUSY},
	hyp.HCHostShareHypRange: {hyp.OK, hyp.EPERM, hyp.EINVAL},
}

// specExtra enumerates specification-only branches: the loose-ENOMEM
// acceptances (§4.3), exercised only when the implementation actually
// reports a spurious allocation failure. These are the branches that
// keep measured spec coverage below 100%, mirroring the paper's 92%.
var specExtra = map[hyp.HC][]hyp.Errno{
	hyp.HCHostShareHyp:  {hyp.ENOMEM},
	hyp.HCHostDonateHyp: {hyp.ENOMEM},
}

// Tracker observes traps through the hyp.Instrumentation interface,
// delegating every hook to an inner instrumentation (typically the
// ghost recorder) so coverage and checking stack.
type Tracker struct {
	inner hyp.Instrumentation
	hv    *hyp.Hypervisor

	mu       sync.Mutex
	pending  []pendingTrap
	outcomes map[Outcome]int
	aborts   map[abortOutcome]int
	guestOps map[hyp.GuestOpKind]int
	unknown  int
	panics   int
	traps    int
}

type pendingTrap struct {
	active bool
	reason arch.ExitReason
	hc     hyp.HC
}

// Wrap builds a tracker delegating to inner. Install it with
// hv.SetInstrumentation.
func Wrap(hv *hyp.Hypervisor, inner hyp.Instrumentation) *Tracker {
	return &Tracker{
		inner:    inner,
		hv:       hv,
		pending:  make([]pendingTrap, hv.Globals().NrCPUs),
		outcomes: make(map[Outcome]int),
		aborts:   make(map[abortOutcome]int),
		guestOps: make(map[hyp.GuestOpKind]int),
	}
}

// TrapEntry observes the exception kind and hypercall ID.
func (t *Tracker) TrapEntry(cpu int, reason arch.ExitReason) {
	t.mu.Lock()
	t.pending[cpu] = pendingTrap{active: true, reason: reason, hc: hyp.HC(t.hv.CPUs[cpu].HostRegs[0])}
	t.traps++
	t.mu.Unlock()
	if t.inner != nil {
		t.inner.TrapEntry(cpu, reason)
	}
}

// TrapExit classifies the outcome.
func (t *Tracker) TrapExit(cpu int) {
	t.mu.Lock()
	p := t.pending[cpu]
	if p.active {
		t.pending[cpu].active = false
		switch p.reason {
		case arch.ExitHVC:
			ret := hyp.ErrnoFromReg(t.hv.CPUs[cpu].HostRegs[1])
			if ret > 0 {
				ret = hyp.OK // positive returns (handles) are successes
			}
			if _, known := universe[p.hc]; known {
				t.outcomes[Outcome{HC: p.hc, Ret: ret}]++
			} else {
				t.unknown++
			}
		case arch.ExitMemAbort:
			if t.hv.PerCPUState(cpu).LastAbortInjected {
				t.aborts[abortInjected]++
			} else {
				t.aborts[abortMapped]++
			}
		}
	}
	t.mu.Unlock()
	if t.inner != nil {
		t.inner.TrapExit(cpu)
	}
}

// The remaining hooks pass straight through (recording guest-op kinds
// and panics on the way).

func (t *Tracker) LockAcquired(cpu int, c hyp.Component) {
	if t.inner != nil {
		t.inner.LockAcquired(cpu, c)
	}
}

func (t *Tracker) LockReleasing(cpu int, c hyp.Component) {
	if t.inner != nil {
		t.inner.LockReleasing(cpu, c)
	}
}

func (t *Tracker) ReadOnce(cpu int, pa arch.PhysAddr, val uint64) {
	if t.inner != nil {
		t.inner.ReadOnce(cpu, pa, val)
	}
}

func (t *Tracker) GuestExit(cpu int, h hyp.Handle, vcpu int, op hyp.GuestOp) {
	t.mu.Lock()
	t.guestOps[op.Kind]++
	t.mu.Unlock()
	if t.inner != nil {
		t.inner.GuestExit(cpu, h, vcpu, op)
	}
}

func (t *Tracker) MemcacheAlloc(cpu int, pfn arch.PFN) {
	if t.inner != nil {
		t.inner.MemcacheAlloc(cpu, pfn)
	}
}

func (t *Tracker) MemcacheFree(cpu int, pfn arch.PFN) {
	if t.inner != nil {
		t.inner.MemcacheFree(cpu, pfn)
	}
}

func (t *Tracker) HypPanic(cpu int, msg string) {
	t.mu.Lock()
	t.panics++
	t.pending[cpu].active = false
	t.mu.Unlock()
	if t.inner != nil {
		t.inner.HypPanic(cpu, msg)
	}
}

// HandlerCoverage is one handler's row in the report.
type HandlerCoverage struct {
	HC      hyp.HC
	Covered int
	Total   int
	Missing []hyp.Errno
}

// Report is the coverage summary.
type Report struct {
	Handlers []HandlerCoverage
	// ImplCovered/ImplTotal aggregate the implementation outcome
	// branches.
	ImplCovered, ImplTotal int
	// SpecCovered/SpecTotal additionally count the spec-only loose
	// branches.
	SpecCovered, SpecTotal int
	// AbortsMapped/AbortsInjected/GuestOps/Traps are auxiliary
	// counters.
	AbortsMapped, AbortsInjected int
	GuestOps                     map[hyp.GuestOpKind]int
	Traps                        int
}

// Snapshot computes the report.
func (t *Tracker) Snapshot() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	return buildReport(t.outcomes, t.aborts, t.guestOps, t.traps)
}

// Percent formats covered/total as a percentage.
func Percent(covered, total int) float64 {
	if total == 0 {
		return 100
	}
	return 100 * float64(covered) / float64(total)
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "coverage after %d traps:\n", r.Traps)
	for _, h := range r.Handlers {
		fmt.Fprintf(&b, "  %-22v %d/%d", h.HC, h.Covered, h.Total)
		if len(h.Missing) > 0 {
			fmt.Fprintf(&b, "  missing: %v", h.Missing)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  impl outcome branches: %d/%d (%.1f%%)\n",
		r.ImplCovered, r.ImplTotal, Percent(r.ImplCovered, r.ImplTotal))
	fmt.Fprintf(&b, "  spec branches (incl. loose -ENOMEM): %d/%d (%.1f%%)\n",
		r.SpecCovered, r.SpecTotal, Percent(r.SpecCovered, r.SpecTotal))
	fmt.Fprintf(&b, "  host aborts: %d mapped, %d injected\n", r.AbortsMapped, r.AbortsInjected)
	return b.String()
}
