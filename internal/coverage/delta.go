package coverage

import (
	"sort"

	"ghostspec/internal/hyp"
)

// Delta is the serializable form of an aggregate's raw observations —
// what a fleet worker ships to the coordinator so coverage merging can
// cross a process boundary. It is a plain-data mirror of the
// Aggregator's maps with a deterministic field order (sorted slices,
// no maps), so equal aggregates export byte-equal JSON.
//
// Workers send their *cumulative* delta on every report: the merge is
// then idempotent under retries (the coordinator replaces the worker's
// previous contribution instead of double-counting a resent batch).
type Delta struct {
	Outcomes       []OutcomeCount `json:"outcomes,omitempty"`
	AbortsMapped   int            `json:"aborts_mapped,omitempty"`
	AbortsInjected int            `json:"aborts_injected,omitempty"`
	GuestOps       []GuestOpCount `json:"guest_ops,omitempty"`
	Traps          int            `json:"traps,omitempty"`
}

// OutcomeCount is one handler-outcome observation count.
type OutcomeCount struct {
	HC    hyp.HC    `json:"hc"`
	Ret   hyp.Errno `json:"ret"`
	Count int       `json:"count"`
}

// GuestOpCount is one guest-op-kind observation count.
type GuestOpCount struct {
	Kind  hyp.GuestOpKind `json:"kind"`
	Count int             `json:"count"`
}

// Export snapshots the aggregate as a Delta.
func (a *Aggregator) Export() Delta {
	a.mu.Lock()
	defer a.mu.Unlock()
	d := Delta{
		AbortsMapped:   a.aborts[abortMapped],
		AbortsInjected: a.aborts[abortInjected],
		Traps:          a.traps,
	}
	for k, v := range a.outcomes {
		if v > 0 {
			d.Outcomes = append(d.Outcomes, OutcomeCount{HC: k.HC, Ret: k.Ret, Count: v})
		}
	}
	sort.Slice(d.Outcomes, func(i, j int) bool {
		if d.Outcomes[i].HC != d.Outcomes[j].HC {
			return d.Outcomes[i].HC < d.Outcomes[j].HC
		}
		return d.Outcomes[i].Ret < d.Outcomes[j].Ret
	})
	for k, v := range a.guestOps {
		if v > 0 {
			d.GuestOps = append(d.GuestOps, GuestOpCount{Kind: k, Count: v})
		}
	}
	sort.Slice(d.GuestOps, func(i, j int) bool { return d.GuestOps[i].Kind < d.GuestOps[j].Kind })
	return d
}

// AbsorbDelta folds a serialized delta into the aggregate, returning
// the novelty (keys the aggregate had never seen) the same way Absorb
// does for a live tracker.
func (a *Aggregator) AbsorbDelta(d Delta) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	novelty := 0
	for _, oc := range d.Outcomes {
		k := Outcome{HC: oc.HC, Ret: oc.Ret}
		if a.outcomes[k] == 0 && oc.Count > 0 {
			novelty++
		}
		a.outcomes[k] += oc.Count
	}
	if a.aborts[abortMapped] == 0 && d.AbortsMapped > 0 {
		novelty++
	}
	a.aborts[abortMapped] += d.AbortsMapped
	if a.aborts[abortInjected] == 0 && d.AbortsInjected > 0 {
		novelty++
	}
	a.aborts[abortInjected] += d.AbortsInjected
	for _, gc := range d.GuestOps {
		if a.guestOps[gc.Kind] == 0 && gc.Count > 0 {
			novelty++
		}
		a.guestOps[gc.Kind] += gc.Count
	}
	a.traps += d.Traps
	return novelty
}

// SupersetOf reports whether every coverage key observed in o (with a
// positive count) is also observed in d — the fleet-smoke assertion
// that the coordinator's merged coverage subsumes each worker's.
func (d Delta) SupersetOf(o Delta) bool {
	have := make(map[OutcomeCount]bool, len(d.Outcomes))
	for _, oc := range d.Outcomes {
		if oc.Count > 0 {
			have[OutcomeCount{HC: oc.HC, Ret: oc.Ret}] = true
		}
	}
	for _, oc := range o.Outcomes {
		if oc.Count > 0 && !have[OutcomeCount{HC: oc.HC, Ret: oc.Ret}] {
			return false
		}
	}
	if o.AbortsMapped > 0 && d.AbortsMapped == 0 {
		return false
	}
	if o.AbortsInjected > 0 && d.AbortsInjected == 0 {
		return false
	}
	guest := make(map[hyp.GuestOpKind]bool, len(d.GuestOps))
	for _, gc := range d.GuestOps {
		if gc.Count > 0 {
			guest[gc.Kind] = true
		}
	}
	for _, gc := range o.GuestOps {
		if gc.Count > 0 && !guest[gc.Kind] {
			return false
		}
	}
	return true
}

// Keys counts the distinct positive coverage keys in the delta.
func (d Delta) Keys() int {
	n := len(d.Outcomes) + len(d.GuestOps)
	if d.AbortsMapped > 0 {
		n++
	}
	if d.AbortsInjected > 0 {
		n++
	}
	return n
}
