package coverage

import (
	"sort"

	"ghostspec/internal/hyp"
)

// Aggregator merges the raw observations of several trackers — the
// handwritten suite boots a fresh system per test, so its coverage is
// the union across all of them (the paper's per-run coverage data
// moved out of EL2 and merged in user space).
type Aggregator struct {
	outcomes map[Outcome]int
	aborts   map[abortOutcome]int
	guestOps map[hyp.GuestOpKind]int
	traps    int
}

// NewAggregator returns an empty aggregate.
func NewAggregator() *Aggregator {
	return &Aggregator{
		outcomes: make(map[Outcome]int),
		aborts:   make(map[abortOutcome]int),
		guestOps: make(map[hyp.GuestOpKind]int),
	}
}

// Absorb folds one tracker's observations into the aggregate.
func (a *Aggregator) Absorb(t *Tracker) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, v := range t.outcomes {
		a.outcomes[k] += v
	}
	for k, v := range t.aborts {
		a.aborts[k] += v
	}
	for k, v := range t.guestOps {
		a.guestOps[k] += v
	}
	a.traps += t.traps
}

// Report computes the merged coverage report.
func (a *Aggregator) Report() Report {
	return buildReport(a.outcomes, a.aborts, a.guestOps, a.traps)
}

// buildReport is shared between Tracker.Snapshot and Aggregator.Report.
func buildReport(outcomes map[Outcome]int, aborts map[abortOutcome]int,
	guestOps map[hyp.GuestOpKind]int, traps int) Report {
	var r Report
	hcs := make([]hyp.HC, 0, len(universe))
	for hc := range universe {
		hcs = append(hcs, hc)
	}
	sort.Slice(hcs, func(i, j int) bool { return hcs[i] < hcs[j] })

	for _, hc := range hcs {
		row := HandlerCoverage{HC: hc, Total: len(universe[hc])}
		for _, ret := range universe[hc] {
			if outcomes[Outcome{HC: hc, Ret: ret}] > 0 {
				row.Covered++
			} else {
				row.Missing = append(row.Missing, ret)
			}
		}
		r.Handlers = append(r.Handlers, row)
		r.ImplCovered += row.Covered
		r.ImplTotal += row.Total

		r.SpecCovered += row.Covered
		r.SpecTotal += row.Total
		for _, ret := range specExtra[hc] {
			r.SpecTotal++
			if outcomes[Outcome{HC: hc, Ret: ret}] > 0 {
				r.SpecCovered++
			}
		}
	}
	r.AbortsMapped = aborts[abortMapped]
	r.AbortsInjected = aborts[abortInjected]
	r.GuestOps = make(map[hyp.GuestOpKind]int, len(guestOps))
	for k, v := range guestOps {
		r.GuestOps[k] = v
	}
	r.Traps = traps
	return r
}
