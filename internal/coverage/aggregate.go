package coverage

import (
	"sort"
	"sync"

	"ghostspec/internal/hyp"
)

// Aggregator merges the raw observations of several trackers — the
// handwritten suite boots a fresh system per test, so its coverage is
// the union across all of them (the paper's per-run coverage data
// moved out of EL2 and merged in user space). The campaign engine's
// workers absorb into one shared aggregate concurrently; all methods
// are safe for concurrent use.
type Aggregator struct {
	mu       sync.Mutex
	outcomes map[Outcome]int
	aborts   map[abortOutcome]int
	guestOps map[hyp.GuestOpKind]int
	traps    int
}

// NewAggregator returns an empty aggregate.
func NewAggregator() *Aggregator {
	return &Aggregator{
		outcomes: make(map[Outcome]int),
		aborts:   make(map[abortOutcome]int),
		guestOps: make(map[hyp.GuestOpKind]int),
	}
}

// Absorb folds one tracker's observations into the aggregate and
// returns the run's novelty: the number of coverage keys (handler
// outcomes, abort outcomes, guest-op kinds) this tracker observed
// that the aggregate had never seen. The campaign engine keeps a
// seed in its corpus exactly when its run's novelty is non-zero.
func (a *Aggregator) Absorb(t *Tracker) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	novelty := 0
	for k, v := range t.outcomes {
		if a.outcomes[k] == 0 && v > 0 {
			novelty++
		}
		a.outcomes[k] += v
	}
	for k, v := range t.aborts {
		if a.aborts[k] == 0 && v > 0 {
			novelty++
		}
		a.aborts[k] += v
	}
	for k, v := range t.guestOps {
		if a.guestOps[k] == 0 && v > 0 {
			novelty++
		}
		a.guestOps[k] += v
	}
	a.traps += t.traps
	return novelty
}

// Rarity scores how unusual a tracker's observations are relative to
// the aggregate: the sum over the tracker's outcome keys of the
// inverse global frequency. A run that hit outcomes the rest of the
// campaign rarely reaches scores high; a run re-treading the common
// paths scores near zero. Call after Absorb (so every key has a
// non-zero global count).
func (a *Aggregator) Rarity(t *Tracker) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	score := 0.0
	for k, v := range t.outcomes {
		if v > 0 && a.outcomes[k] > 0 {
			score += 1 / float64(a.outcomes[k])
		}
	}
	return score
}

// Report computes the merged coverage report.
func (a *Aggregator) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return buildReport(a.outcomes, a.aborts, a.guestOps, a.traps)
}

// buildReport is shared between Tracker.Snapshot and Aggregator.Report.
func buildReport(outcomes map[Outcome]int, aborts map[abortOutcome]int,
	guestOps map[hyp.GuestOpKind]int, traps int) Report {
	var r Report
	hcs := make([]hyp.HC, 0, len(universe))
	for hc := range universe {
		hcs = append(hcs, hc)
	}
	sort.Slice(hcs, func(i, j int) bool { return hcs[i] < hcs[j] })

	for _, hc := range hcs {
		row := HandlerCoverage{HC: hc, Total: len(universe[hc])}
		for _, ret := range universe[hc] {
			if outcomes[Outcome{HC: hc, Ret: ret}] > 0 {
				row.Covered++
			} else {
				row.Missing = append(row.Missing, ret)
			}
		}
		r.Handlers = append(r.Handlers, row)
		r.ImplCovered += row.Covered
		r.ImplTotal += row.Total

		r.SpecCovered += row.Covered
		r.SpecTotal += row.Total
		for _, ret := range specExtra[hc] {
			r.SpecTotal++
			if outcomes[Outcome{HC: hc, Ret: ret}] > 0 {
				r.SpecCovered++
			}
		}
	}
	r.AbortsMapped = aborts[abortMapped]
	r.AbortsInjected = aborts[abortInjected]
	r.GuestOps = make(map[hyp.GuestOpKind]int, len(guestOps))
	for k, v := range guestOps {
		r.GuestOps[k] = v
	}
	r.Traps = traps
	return r
}
