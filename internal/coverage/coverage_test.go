package coverage

import (
	"strings"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/core/ghost"
	"ghostspec/internal/hyp"
	"ghostspec/internal/proxy"
)

func newTracked(t *testing.T) (*proxy.Driver, *Tracker, *ghost.Recorder) {
	t.Helper()
	hv, err := hyp.New(hyp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := ghost.Attach(hv) // recorder installs itself
	tr := Wrap(hv, rec)     // tracker decorates it
	hv.SetInstrumentation(tr)
	return proxy.New(hv), tr, rec
}

func TestTrackerCountsOutcomes(t *testing.T) {
	d, tr, rec := newTracked(t)
	pfn, _ := d.AllocPage()
	if err := d.ShareHyp(0, pfn); err != nil {
		t.Fatal(err)
	}
	if err := d.ShareHyp(0, pfn); err != hyp.EPERM {
		t.Fatalf("double share: %v", err)
	}
	if err := d.UnshareHyp(0, pfn); err != nil {
		t.Fatal(err)
	}
	r := tr.Snapshot()
	if r.Traps != 3 {
		t.Errorf("traps = %d", r.Traps)
	}
	find := func(hc hyp.HC) HandlerCoverage {
		for _, h := range r.Handlers {
			if h.HC == hc {
				return h
			}
		}
		t.Fatalf("no row for %v", hc)
		return HandlerCoverage{}
	}
	if got := find(hyp.HCHostShareHyp); got.Covered != 2 { // OK + EPERM
		t.Errorf("share covered = %d, want 2", got.Covered)
	}
	if got := find(hyp.HCHostUnshareHyp); got.Covered != 1 {
		t.Errorf("unshare covered = %d, want 1", got.Covered)
	}
	// The ghost oracle ran underneath and stayed clean.
	if len(rec.Failures()) != 0 {
		t.Errorf("oracle alarms under tracker: %v", rec.Failures())
	}
	if rec.Stats().Checks != 3 {
		t.Errorf("oracle checks = %d, want 3 (delegation broken)", rec.Stats().Checks)
	}
}

func TestTrackerAbortsAndGuestOps(t *testing.T) {
	d, tr, _ := newTracked(t)
	pfn, _ := d.AllocPage()
	ok, _ := d.Access(0, arch.IPA(pfn.Phys()), true)
	if !ok {
		t.Fatal("demand map failed")
	}
	// Injected abort on hypervisor memory.
	if ok, _ := d.Access(0, arch.IPA(d.HV.Globals().CarveStart), false); ok {
		t.Fatal("carve-out access succeeded")
	}
	h, _, err := d.InitVM(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitVCPU(0, h, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.VCPULoad(0, h, 0); err != nil {
		t.Fatal(err)
	}
	d.QueueGuestOp(h, 0, hyp.GuestOp{Kind: hyp.GuestYield})
	if _, err := d.VCPURun(0); err != nil {
		t.Fatal(err)
	}

	r := tr.Snapshot()
	if r.AbortsMapped != 1 || r.AbortsInjected != 1 {
		t.Errorf("aborts = %d mapped / %d injected", r.AbortsMapped, r.AbortsInjected)
	}
	if r.GuestOps[hyp.GuestYield] != 1 {
		t.Errorf("guest yields = %d", r.GuestOps[hyp.GuestYield])
	}
}

func TestReportFormatting(t *testing.T) {
	d, tr, _ := newTracked(t)
	pfn, _ := d.AllocPage()
	_ = d.ShareHyp(0, pfn)
	out := tr.Snapshot().String()
	for _, want := range []string{"host_share_hyp", "impl outcome branches", "spec branches", "missing"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}

func TestSpecUniverseLargerThanImpl(t *testing.T) {
	_, tr, _ := newTracked(t)
	r := tr.Snapshot()
	if r.SpecTotal <= r.ImplTotal {
		t.Errorf("spec universe %d should exceed impl universe %d (loose branches)",
			r.SpecTotal, r.ImplTotal)
	}
	if Percent(0, 0) != 100 || Percent(1, 2) != 50 {
		t.Error("Percent math broken")
	}
}
