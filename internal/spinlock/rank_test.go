package spinlock

import (
	"strings"
	"sync"
	"testing"
)

// mustPanic runs f and returns the recovered panic message, failing
// the test if f completes without panicking.
func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		f()
		t.Fatal("expected panic, got none")
	}()
	return msg
}

func TestDoubleUnlockPanicsWithComponent(t *testing.T) {
	l := New("host", nil)
	l.Lock()
	l.Unlock()
	msg := mustPanic(t, l.Unlock)
	if !strings.Contains(msg, "host") {
		t.Errorf("double-unlock panic %q does not name the component", msg)
	}
}

func TestDoubleUnlockUnnamedLock(t *testing.T) {
	var l Lock
	l.Lock()
	l.Unlock()
	msg := mustPanic(t, l.Unlock)
	if !strings.Contains(msg, "unnamed") {
		t.Errorf("double-unlock panic %q lacks unnamed placeholder", msg)
	}
}

func TestRankCheckInversionPanics(t *testing.T) {
	EnableRankCheck()
	t.Cleanup(DisableRankCheck)

	vms := NewRanked("vms", 1, nil)
	host := NewRanked("host", 3, nil)

	// Ascending order is fine.
	vms.Lock()
	host.Lock()
	host.Unlock()
	vms.Unlock()

	// Descending order panics at the second acquisition.
	host.Lock()
	defer host.Unlock()
	msg := mustPanic(t, vms.Lock)
	for _, want := range []string{"rank inversion", `"vms"`, `"host"`} {
		if !strings.Contains(msg, want) {
			t.Errorf("inversion panic %q missing %q", msg, want)
		}
	}
}

func TestRankCheckEqualRankPanics(t *testing.T) {
	EnableRankCheck()
	t.Cleanup(DisableRankCheck)

	a := NewRanked("guest:1", 2, nil)
	b := NewRanked("guest:2", 2, nil)
	a.Lock()
	defer a.Unlock()
	msg := mustPanic(t, b.Lock)
	if !strings.Contains(msg, "rank inversion") {
		t.Errorf("equal-rank panic %q", msg)
	}
}

func TestRankCheckRecursiveAcquirePanics(t *testing.T) {
	EnableRankCheck()
	t.Cleanup(DisableRankCheck)

	l := NewRanked("host", 3, nil)
	l.Lock()
	defer l.Unlock()
	msg := mustPanic(t, l.Lock)
	if !strings.Contains(msg, "recursive acquisition") {
		t.Errorf("recursive-acquire panic %q", msg)
	}
}

func TestRankCheckUnlockByNonOwnerPanics(t *testing.T) {
	EnableRankCheck()
	t.Cleanup(DisableRankCheck)

	l := NewRanked("host", 3, nil)
	l.Lock()
	done := make(chan string, 1)
	go func() {
		defer func() {
			r := recover()
			if r == nil {
				done <- ""
				return
			}
			done <- r.(string)
		}()
		l.Unlock()
	}()
	msg := <-done
	if !strings.Contains(msg, "does not hold") {
		t.Errorf("cross-goroutine unlock panic %q", msg)
	}
	l.Unlock()
}

func TestRankCheckUnrankedExemptFromOrdering(t *testing.T) {
	EnableRankCheck()
	t.Cleanup(DisableRankCheck)

	ranked := NewRanked("host", 3, nil)
	unranked := New("scratch", nil)
	ranked.Lock()
	unranked.Lock() // unranked after ranked: allowed
	unranked.Unlock()
	ranked.Unlock()
	unranked.Lock()
	ranked.Lock() // ranked after unranked: also allowed
	ranked.Unlock()
	unranked.Unlock()
}

func TestRankCheckDisabledNoTracking(t *testing.T) {
	// With the validator off, out-of-order acquisition must not panic
	// (production behaviour is unchanged).
	host := NewRanked("host", 3, nil)
	vms := NewRanked("vms", 1, nil)
	host.Lock()
	vms.Lock()
	vms.Unlock()
	host.Unlock()
}

func TestRankCheckConcurrentAscending(t *testing.T) {
	EnableRankCheck()
	t.Cleanup(DisableRankCheck)

	vms := NewRanked("vms", 1, nil)
	host := NewRanked("host", 3, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				vms.Lock()
				host.Lock()
				host.Unlock()
				vms.Unlock()
			}
		}()
	}
	wg.Wait()
}
