package spinlock

import "sync/atomic"

// Scheduler is the cooperative-scheduling protocol a deterministic
// multi-vCPU scheduler (internal/sched) installs process-wide. Under
// one-token scheduling exactly one vCPU runs at a time, so a vCPU that
// blocked on sync.Mutex while the holder sat parked would deadlock;
// instead a contended acquisition asks the scheduler to park the vCPU
// and hand the token elsewhere, then retries TryLock when re-granted.
type Scheduler interface {
	// LockContended is called when an acquisition of l failed its
	// TryLock. Returning true means the caller is a scheduled vCPU
	// that has been parked and re-granted — retry TryLock. Returning
	// false means the caller is not under this scheduler's control and
	// should fall back to a blocking acquisition.
	LockContended(l *Lock) bool
	// LockReleased is called after every Unlock of l while a scheduler
	// is installed, so vCPUs blocked on l can be made runnable again.
	LockReleased(l *Lock)
}

// coopSched is the installed scheduler; nil outside scheduled
// sessions, so the plain-blocking fast path costs one atomic load.
var coopSched atomic.Pointer[Scheduler]

// SetScheduler installs the cooperative scheduler (nil uninstalls).
// Like SetHooks it must not race with itself; internal/sched's
// dispatcher refcounts concurrent sessions behind one installation.
func SetScheduler(s Scheduler) {
	if s == nil {
		coopSched.Store(nil)
		return
	}
	coopSched.Store(&s)
}

func loadScheduler() Scheduler {
	if p := coopSched.Load(); p != nil {
		return *p
	}
	return nil
}

// lockContended acquires a lock whose TryLock just failed. Scheduled
// vCPUs park-and-retry through the cooperative protocol; everyone else
// blocks on the mutex exactly as before.
func (l *Lock) lockContended() {
	for {
		if s := loadScheduler(); s != nil && s.LockContended(l) {
			if l.mu.TryLock() {
				return
			}
			continue
		}
		l.mu.Lock()
		return
	}
}
