// Package spinlock provides the hypervisor's spinlocks, with the
// instrumentation hooks the ghost specification attaches to.
//
// pKVM protects each page table and the VM-metadata table with its own
// lock; the ghost machinery records the abstraction of the protected
// component exactly when its lock is taken and just before it is
// released (paper §3.2). The hooks here are those attachment points:
// they run while the lock is held, so the recorded abstraction is of
// owned state.
package spinlock

import (
	"sync"
	"time"

	"ghostspec/internal/analysis/preempt"
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

// Contention wait-time histograms, one per lock rank (0 = unranked).
// Bucketed per rank rather than per component so the label space stays
// fixed while still separating "waiting on the VM table" from "waiting
// on a guest stage 2" — the rank is what the acquisition order is
// about.
var lockWaitByRank = [5]*telemetry.Histogram{
	telemetry.NewHistogram(`spinlock_wait_ns{rank="0"}`),
	telemetry.NewHistogram(`spinlock_wait_ns{rank="1"}`),
	telemetry.NewHistogram(`spinlock_wait_ns{rank="2"}`),
	telemetry.NewHistogram(`spinlock_wait_ns{rank="3"}`),
	telemetry.NewHistogram(`spinlock_wait_ns{rank="4"}`),
}

// SlowAcquireThreshold is the contention wait above which a lock
// acquisition emits a span (when a tracer is attached): long waits are
// the ones worth seeing on the timeline next to the execution phases.
const SlowAcquireThreshold = 50 * time.Microsecond

// waitHist returns the rank's wait histogram, clamping unknown ranks
// to the unranked bucket.
func waitHist(rank int) *telemetry.Histogram {
	if rank < 0 || rank >= len(lockWaitByRank) {
		rank = 0
	}
	return lockWaitByRank[rank]
}

// Hooks are callbacks invoked while the lock is held: Acquired runs
// immediately after the lock is taken, Releasing immediately before it
// is dropped. Nil hooks are skipped. The component argument is the
// lock's registered name.
type Hooks struct {
	Acquired  func(component string)
	Releasing func(component string)
}

// Lock is a hypervisor spinlock. The zero value is usable but
// uninstrumented; use New to name the component for the hooks.
type Lock struct {
	mu        sync.Mutex
	component string
	hooks     *Hooks

	// acquires/contended count lock traffic per component; nil on a
	// zero-value (unnamed) lock, which stays uninstrumented.
	acquires  *telemetry.Counter
	contended *telemetry.Counter

	// held tracks lock state for sanity checking; it is only written
	// under mu.
	//ghost:guards lock=self
	held bool

	// rank orders this lock in the global acquisition order checked by
	// the runtime rank validator (rank.go); 0 means unranked.
	rank int

	// tracer, when attached, receives a slow-acquisition span on lane
	// whenever a contended acquisition waits past SlowAcquireThreshold.
	// Set once at boot (SetTracer), like the hooks.
	tracer   *trace.Tracer
	lane     int
	waitSpan trace.Name
}

// New returns a named lock with the given hooks (which may be nil).
func New(component string, hooks *Hooks) *Lock {
	return &Lock{
		component: component,
		hooks:     hooks,
		acquires:  telemetry.NewCounter(`spinlock_acquisitions_total{lock="` + component + `"}`),
		contended: telemetry.NewCounter(`spinlock_contended_total{lock="` + component + `"}`),
		waitSpan:  trace.NewName("lock.wait:" + component),
	}
}

// NewRanked returns a named lock that participates in rank-order
// validation: while EnableRankCheck is active, acquiring it with any
// lock of equal or higher rank already held panics.
func NewRanked(component string, rank int, hooks *Hooks) *Lock {
	l := New(component, hooks)
	l.rank = rank
	return l
}

// Rank returns the lock's declared rank (0 if unranked).
func (l *Lock) Rank() int { return l.rank }

// name returns the component name, or a placeholder for zero-value
// locks, for panic messages.
func (l *Lock) name() string {
	if l.component == "" {
		return "(unnamed)"
	}
	return l.component
}

// SetHooks installs hooks on an existing lock. It must not be called
// concurrently with Lock/Unlock; the hypervisor installs hooks once at
// initialisation, before any hypercall traffic.
func (l *Lock) SetHooks(h *Hooks) { l.hooks = h }

// SetTracer attaches a span tracer for slow-acquisition emission. The
// lane is the owning system's lane; contention spans are emitted
// parentless (the waiter's goroutine owns no lane stack position).
// Like SetHooks, install once at boot.
func (l *Lock) SetTracer(t *trace.Tracer, lane int) {
	l.tracer, l.lane = t, lane
}

// Component returns the lock's registered name.
func (l *Lock) Component() string { return l.component }

// Lock acquires the lock and runs the Acquired hook while holding it.
// Before acquiring it fires the acquire preemption point (resolved to
// the caller's table entry), so a deterministic scheduler can park the
// vCPU on the threshold of the critical section.
func (l *Lock) Lock() {
	if rankCheckOn.Load() {
		// Validate before blocking on mu: a rank inversion must panic
		// at the guilty acquisition, not deadlock against the thread
		// holding the locks in the other order.
		noteAcquire(l)
	}
	preempt.FireCaller(preempt.KindLockAcquire)
	if l.acquires == nil || telemetry.Disabled() {
		if !l.mu.TryLock() {
			l.lockContended()
		}
	} else {
		l.acquires.Inc()
		if !l.mu.TryLock() {
			l.contended.Inc()
			start := time.Now()
			l.lockContended()
			wait := time.Since(start)
			waitHist(l.rank).ObserveDuration(wait)
			if wait >= SlowAcquireThreshold {
				l.tracer.Emit(l.lane, l.waitSpan, start, wait)
			}
		}
	}
	l.held = true
	if l.hooks != nil && l.hooks.Acquired != nil {
		l.hooks.Acquired(l.component)
	}
}

// Unlock runs the Releasing hook and drops the lock. Unlocking a lock
// that is not held (double unlock) panics with the component name.
// The release preemption point fires while the lock is still held and
// before the Releasing hook: a scheduler parking the vCPU there holds
// the whole system in the release window — other vCPUs observe the
// component locked with its mutation complete but the oracle's
// release-time checks not yet run — which is exactly the interleaving
// the lock-window litmuses probe.
func (l *Lock) Unlock() {
	if !l.held {
		panic("spinlock: unlock of unheld lock " + l.name())
	}
	if rankCheckOn.Load() {
		noteRelease(l)
	}
	preempt.FireCaller(preempt.KindLockRelease)
	if l.hooks != nil && l.hooks.Releasing != nil {
		l.hooks.Releasing(l.component)
	}
	l.held = false
	l.mu.Unlock()
	if s := loadScheduler(); s != nil {
		s.LockReleased(l)
	}
}

// Held reports whether the lock is currently held. It is advisory
// (racy by nature) and intended for assertions on the owning thread.
func (l *Lock) Held() bool { return l.held }
