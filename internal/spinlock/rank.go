package spinlock

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Runtime lock-rank validation: the dynamic half of ghostlint's
// lock-discipline checking (the static half lives in
// internal/analysis). Every ranked lock carries an integer rank;
// while validation is enabled, each goroutine's currently-held locks
// are tracked and any acquisition that does not strictly ascend the
// rank order panics immediately — at the acquisition point, before
// the ordering can deadlock against another thread.
//
// The hypervisor's rank table (declared where the locks are built, in
// internal/hyp) is:
//
//	vms (1) < guest (2) < host (3) < hyp/pkvm (4)
//
// matching the acquisition order of every hypercall path: the VM
// table is taken before a guest's stage 2 lock, which is taken before
// the host stage 2 lock, which is taken before the hypervisor's own
// stage 1 lock. Rank 0 means unranked: the lock participates in
// held-set tracking (double unlock, unlock by non-owner) but not in
// order checking.
//
// Validation costs one atomic load per Lock/Unlock when disabled and
// a global map update when enabled; it is meant for tests and -race
// CI runs, mirroring how the paper's ghost machinery is compiled in
// only for checking builds.

// rankCheckOn gates the validator; see EnableRankCheck.
var rankCheckOn atomic.Bool

// heldMu guards heldLocks. A plain mutex is fine here: the validator
// is a test-only facility and the critical sections are tiny.
var heldMu sync.Mutex

// heldLocks maps a goroutine ID to the stack of spinlocks it holds,
// in acquisition order.
var heldLocks = make(map[uint64][]*Lock)

// EnableRankCheck turns on runtime lock-rank validation for the whole
// process. Intended for tests; pair with DisableRankCheck (typically
// via t.Cleanup).
func EnableRankCheck() { rankCheckOn.Store(true) }

// DisableRankCheck turns validation off and drops all held-lock
// tracking state.
func DisableRankCheck() {
	rankCheckOn.Store(false)
	heldMu.Lock()
	heldLocks = make(map[uint64][]*Lock)
	heldMu.Unlock()
}

// RankCheckEnabled reports whether the validator is active.
func RankCheckEnabled() bool { return rankCheckOn.Load() }

// noteAcquire validates and records an acquisition by the calling
// goroutine. It runs before the lock is actually taken so a rank
// inversion panics at the guilty call site instead of deadlocking
// against a concurrent thread holding the locks in the other order.
func noteAcquire(l *Lock) {
	id := goid()
	heldMu.Lock()
	defer heldMu.Unlock()
	for _, h := range heldLocks[id] {
		if h == l {
			panic(fmt.Sprintf("spinlock: recursive acquisition of %q", l.name()))
		}
		if l.rank != 0 && h.rank != 0 && h.rank >= l.rank {
			panic(fmt.Sprintf(
				"spinlock: lock rank inversion: acquiring %q (rank %d) while holding %q (rank %d); "+
					"ranked locks must be acquired in ascending rank order (vms < guest < host < hyp)",
				l.name(), l.rank, h.name(), h.rank))
		}
	}
	heldLocks[id] = append(heldLocks[id], l)
}

// noteRelease records a release, panicking if the calling goroutine
// does not hold the lock (double unlock, or unlock from the wrong
// thread).
func noteRelease(l *Lock) {
	id := goid()
	heldMu.Lock()
	defer heldMu.Unlock()
	hs := heldLocks[id]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i] == l {
			hs = append(hs[:i], hs[i+1:]...)
			if len(hs) == 0 {
				delete(heldLocks, id)
			} else {
				heldLocks[id] = hs
			}
			return
		}
	}
	panic(fmt.Sprintf("spinlock: unlock of %q by a goroutine that does not hold it", l.name()))
}

// goid returns the calling goroutine's ID by parsing the first stack
// line ("goroutine N [running]:"). There is no supported API for
// this; the parse is the standard trick and the validator is a
// test-only facility, so the cost and the fragility are acceptable.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) < len(prefix) {
		return 0
	}
	s = s[len(prefix):]
	var id uint64
	for i := 0; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		id = id*10 + uint64(s[i]-'0')
	}
	return id
}
