package spinlock

import (
	"sync"
	"testing"
)

func TestHookOrderAndComponent(t *testing.T) {
	var events []string
	l := New("host", &Hooks{
		Acquired:  func(c string) { events = append(events, "acq:"+c) },
		Releasing: func(c string) { events = append(events, "rel:"+c) },
	})
	l.Lock()
	events = append(events, "critical")
	l.Unlock()

	want := []string{"acq:host", "critical", "rel:host"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestHooksRunUnderLock(t *testing.T) {
	// The Acquired hook must observe mutual exclusion: a counter
	// incremented non-atomically inside the hook stays consistent
	// under contention (checked by -race too).
	var count int
	l := New("vm", &Hooks{
		Acquired:  func(string) { count++ },
		Releasing: func(string) { count++ },
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if count != 8*200*2 {
		t.Errorf("count = %d, want %d", count, 8*200*2)
	}
}

func TestUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unlock of unheld lock did not panic")
		}
	}()
	New("pkvm", nil).Unlock()
}

func TestNilHooks(t *testing.T) {
	l := New("hyp", nil)
	l.Lock()
	if !l.Held() {
		t.Error("Held() false while held")
	}
	l.Unlock()
	if l.Held() {
		t.Error("Held() true after unlock")
	}
	if l.Component() != "hyp" {
		t.Error("component name lost")
	}
}
