package arch

import (
	"fmt"
	"sync/atomic"
)

// Memory snapshot/restore.
//
// The model splits a snapshot into two pieces:
//
//   - MemImage: the captured *content* — an immutable map of frame
//     copies. Pure data, safe to share read-only across workers (every
//     campaign worker boots the same deterministic system, so one
//     worker's image describes every worker's base state).
//
//   - MemBaseline: the per-Memory dirty tracker that ties one Memory
//     to an image. For each frame it remembers the write generation at
//     which the frame's content last matched the image, so a restore
//     only rewrites frames whose generation moved — the copy-on-write
//     trick, driven by the existing per-frame generation counters
//     instead of page protections.
//
// Restores never roll a generation backward. A restored frame is
// rewritten and its generation bumped *forward*, so every
// generation-keyed consumer (the ghost pgtable cache, TLB entry
// dependencies) self-invalidates exactly where content changed and
// stays warm everywhere else. Restore-path code elsewhere in the tree
// must go through these entry points rather than writing frames
// directly; ghostlint's snapshotcheck enforces that.

// MemImage is an immutable content snapshot of every frame a Memory
// had touched at capture time. A nil *Frame value means the frame was
// all-zero (touched but never written, or explicitly cleared).
type MemImage struct {
	frames map[PFN]*Frame
	// mark is the first-touch log length at capture; frames beyond it
	// were born after the image and are implicitly zero in it.
	mark int
}

// Frames returns the number of frames recorded in the image.
func (img *MemImage) Frames() int { return len(img.frames) }

// CaptureImage snapshots the content of every touched frame. The
// memory must be quiescent (no concurrent writers) for the capture to
// be meaningful.
func (m *Memory) CaptureImage() *MemImage {
	img := &MemImage{frames: make(map[PFN]*Frame), mark: m.touchCount()}
	for _, pfn := range m.touchedRange(0, img.mark) {
		c := m.peek(pfn)
		if c == nil {
			continue
		}
		if frameZero(&c.f) {
			img.frames[pfn] = nil
			continue
		}
		d := c.f
		img.frames[pfn] = &d
	}
	return img
}

// MemBaseline tracks one Memory against a MemImage. gens[pfn] is the
// frame's write generation at the last instant its content was known
// to equal the image's; a frame whose live generation still equals its
// recorded one is provably clean and is skipped on restore.
type MemBaseline struct {
	m    *Memory
	img  *MemImage
	gens map[PFN]uint64
	mark int
}

// NewBaseline binds m to the image and verifies m's current content
// matches it frame for frame. The bool result reports the match; on
// mismatch the baseline is still returned but restoring through it
// would be unsound, so callers must fall back to a privately captured
// image. Frames m has touched that the image does not know are
// required to be zero (they are treated as image-zero).
func (img *MemImage) NewBaseline(m *Memory) (*MemBaseline, bool) {
	bl := &MemBaseline{m: m, img: img, gens: make(map[PFN]uint64, len(img.frames))}
	ok := true
	for pfn, want := range img.frames {
		c := m.peek(pfn)
		if c == nil {
			// Deterministic boots touch identical frame sets; a frame
			// the image knows but m never touched still matches if the
			// image recorded it as zero.
			if want != nil {
				ok = false
			}
			bl.gens[pfn] = 0
			continue
		}
		if !frameEqual(&c.f, want) {
			ok = false
		}
		bl.gens[pfn] = c.gen.Load()
	}
	bl.mark = m.touchCount()
	for _, pfn := range m.touchedRange(0, bl.mark) {
		if _, known := bl.gens[pfn]; known {
			continue
		}
		c := m.peek(pfn)
		g := c.gen.Load()
		if !frameZero(&c.f) {
			ok = false
			g = forceDirty(g)
		}
		bl.gens[pfn] = g
	}
	return bl, ok
}

// forceDirty returns a generation value that can never equal the
// frame's current or any future generation (the counter is monotonic),
// marking the frame unconditionally dirty until a restore rewrites it.
func forceDirty(g uint64) uint64 {
	if g == 0 {
		// A never-written frame is zero, so content mismatch implies
		// g >= 1; keep the guard anyway.
		return ^uint64(0)
	}
	return g - 1
}

// absorb folds frames first-touched since the last call into the
// baseline. A new frame is implicitly zero in the image: if its
// content is still zero it is clean at its current generation,
// otherwise it is forced dirty so the next restore clears it.
func (bl *MemBaseline) absorb() {
	n := bl.m.touchCount()
	if n == bl.mark {
		return
	}
	for _, pfn := range bl.m.touchedRange(bl.mark, n) {
		if _, known := bl.gens[pfn]; known {
			continue
		}
		c := bl.m.peek(pfn)
		g := c.gen.Load()
		if !frameZero(&c.f) {
			g = forceDirty(g)
		}
		bl.gens[pfn] = g
	}
	bl.mark = n
}

// MemDelta is the set of frames whose content differs from a base
// image — the portable record of a corpus parent's end state. A nil
// *Frame means the frame is zero in the child but not in the image.
// Like MemImage it is immutable pure data: workers share deltas and
// apply them to their own baselines concurrently.
type MemDelta struct {
	frames map[PFN]*Frame
}

// Frames returns the number of frames the delta rewrites.
func (d *MemDelta) Frames() int {
	if d == nil {
		return 0
	}
	return len(d.frames)
}

// CaptureDelta records every frame whose content currently differs
// from the baseline's image. Frames whose generation moved but whose
// content drifted back to the image value are re-baselined instead of
// recorded, keeping deltas minimal.
func (bl *MemBaseline) CaptureDelta() *MemDelta {
	bl.absorb()
	d := &MemDelta{frames: make(map[PFN]*Frame)}
	for pfn, g := range bl.gens {
		c := bl.m.peek(pfn)
		if c == nil {
			continue
		}
		cur := c.gen.Load()
		if cur == g {
			continue
		}
		if frameEqual(&c.f, bl.img.frames[pfn]) {
			bl.gens[pfn] = cur
			continue
		}
		if frameZero(&c.f) {
			d.frames[pfn] = nil
			continue
		}
		cp := c.f
		d.frames[pfn] = &cp
	}
	return d
}

// Restore rewrites the memory back to the image, touching only dirty
// frames. Returns the number of frames rewritten.
func (bl *MemBaseline) Restore() int { return bl.RestoreWith(nil) }

// RestoreWith rewrites the memory to image+delta (or the plain image
// when delta is nil), touching only frames that need it. Frames
// rewritten to image content are re-baselined at their new generation;
// frames given delta content keep a stale baseline generation so the
// next plain Restore reverts them. Returns the number of frames
// rewritten.
//
// The memory must be quiescent: restore is the worker thread resetting
// its own system between executions, not a concurrent operation.
func (bl *MemBaseline) RestoreWith(delta *MemDelta) int {
	bl.absorb()
	dirty := 0
	for pfn, g := range bl.gens {
		var want *Frame
		inDelta := false
		if delta != nil {
			want, inDelta = delta.frames[pfn]
		}
		if !inDelta {
			want = bl.img.frames[pfn]
		}
		c := bl.m.peek(pfn)
		if c == nil {
			// Known to the image but never touched by this memory:
			// content is image-zero either way unless the delta says
			// otherwise.
			if inDelta && want != nil {
				c = bl.m.frame(pfn.Phys())
			} else {
				continue
			}
		}
		if clean := c.gen.Load() == g; clean && !inDelta {
			continue
		}
		writeFrame(c, want)
		if inDelta {
			// Baseline generation goes (and stays) stale on purpose:
			// the frame no longer matches the image, so the next plain
			// Restore must rewrite it. The bump inside writeFrame
			// already guarantees the live generation moved past g.
			bl.gens[pfn] = forceDirty(g)
		} else {
			bl.gens[pfn] = c.gen.Load()
		}
		dirty++
	}
	// Delta frames the baseline has never seen: the parent run touched
	// frames this memory never has (and the image implies are zero).
	if delta != nil {
		for pfn, want := range delta.frames {
			if _, known := bl.gens[pfn]; known {
				continue
			}
			if want == nil {
				continue // zero in the delta, untouched here: already zero
			}
			c := bl.m.frame(pfn.Phys())
			writeFrame(c, want)
			bl.gens[pfn] = forceDirty(c.gen.Load())
			dirty++
		}
		bl.mark = bl.m.touchCount()
	}
	return dirty
}

// writeFrame stores want (nil = zero) into the cell word by word, then
// bumps the generation once — same store-then-bump order as Write64.
func writeFrame(c *frameCell, want *Frame) {
	if want == nil {
		for i := range c.f {
			atomic.StoreUint64(&c.f[i], 0)
		}
	} else {
		for i := range c.f {
			atomic.StoreUint64(&c.f[i], want[i])
		}
	}
	c.gen.Add(1)
}

func frameZero(f *Frame) bool {
	for _, w := range f {
		if w != 0 {
			return false
		}
	}
	return true
}

// frameEqual compares a live frame against a captured copy (nil means
// all-zero).
func frameEqual(f *Frame, want *Frame) bool {
	if want == nil {
		return frameZero(f)
	}
	return *f == *want
}

// DiffMemory compares two memories frame by frame over the union of
// their touched frames (an untouched frame reads as zero) and returns
// human-readable mismatch descriptions, at most max. It is the memory
// half of the snapshot conformance differ: a restored child diffed
// against a freshly booted and replayed system must come back empty.
func DiffMemory(a, b *Memory, max int) []string {
	seen := make(map[PFN]bool)
	var diffs []string
	check := func(pfn PFN) {
		if seen[pfn] || len(diffs) >= max {
			return
		}
		seen[pfn] = true
		ca, cb := a.peek(pfn), b.peek(pfn)
		for i := 0; i < PTEsPerTable; i++ {
			var va, vb uint64
			if ca != nil {
				va = atomic.LoadUint64(&ca.f[i])
			}
			if cb != nil {
				vb = atomic.LoadUint64(&cb.f[i])
			}
			if va != vb {
				diffs = append(diffs, fmt.Sprintf(
					"frame %#x word %d: %#x vs %#x", uint64(pfn.Phys()), i, va, vb))
				return
			}
		}
	}
	for _, pfn := range a.touchedRange(0, a.touchCount()) {
		check(pfn)
	}
	for _, pfn := range b.touchedRange(0, b.touchCount()) {
		check(pfn)
	}
	return diffs
}
