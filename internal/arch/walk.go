package arch

import "fmt"

// Stage distinguishes the two translation regimes.
type Stage uint8

const (
	// Stage1 translates virtual addresses to (intermediate-)physical
	// addresses; used for the hypervisor's own EL2 regime.
	Stage1 Stage = 1
	// Stage2 translates intermediate-physical to physical addresses;
	// used for the host and for guests.
	Stage2 Stage = 2
)

func (s Stage) String() string {
	if s == Stage1 {
		return "stage1"
	}
	return "stage2"
}

// FaultKind classifies a failed hardware walk.
type FaultKind uint8

const (
	// FaultTranslation: the walk reached an invalid descriptor.
	FaultTranslation FaultKind = iota
	// FaultPermission: the walk reached a leaf but the access kind is
	// not permitted by its attributes.
	FaultPermission
	// FaultAddressSize: the input address is outside the 48-bit input
	// range, or the walk hit a reserved descriptor encoding.
	FaultAddressSize
)

func (k FaultKind) String() string {
	switch k {
	case FaultTranslation:
		return "translation"
	case FaultPermission:
		return "permission"
	case FaultAddressSize:
		return "address-size"
	}
	return "?"
}

// Fault is the failure result of a hardware walk: which fault was
// raised and at which walk level.
type Fault struct {
	Kind  FaultKind
	Level int
	Addr  uint64 // the faulting input address
}

func (f *Fault) Error() string {
	return fmt.Sprintf("%s fault at level %d, input %#x", f.Kind, f.Level, f.Addr)
}

// Access describes the access kind being translated, for permission
// checking.
type Access struct {
	Write bool
	Exec  bool
}

// WalkResult is the successful outcome of a hardware walk: the output
// address and the leaf's decoded attributes, plus the level the leaf
// was found at (3 for a page, 2 or 1 for a block).
type WalkResult struct {
	OutputAddr PhysAddr
	Attrs      Attrs
	Level      int
}

// WalkLeaf descends the table rooted at root to the terminal
// descriptor covering ia and returns it with its level. The result is
// a block, page, invalid, annotated, or reserved descriptor — never a
// table. This is the one descent loop shared by Walk, the software
// TLB's miss path, and pgtable.GetLeaf.
func WalkLeaf(m *Memory, root PhysAddr, ia uint64) (PTE, int) {
	table := root
	for level := StartLevel; level <= LastLevel; level++ {
		pte := m.ReadPTE(table, IndexAt(ia, level))
		if pte.Kind(level) != EKTable {
			return pte, level
		}
		table = pte.TableAddr()
	}
	panic("arch: walk ran past the last level")
}

// leafResult decodes a terminal descriptor into the walk's outcome
// for ia under acc: the permission-checked output address for a valid
// leaf, or the architectural fault for the other encodings. pte must
// not be a table descriptor.
func leafResult(pte PTE, level int, ia uint64, acc Access) (WalkResult, *Fault) {
	switch pte.Kind(level) {
	case EKBlock, EKPage:
		a := pte.Attrs()
		if (acc.Write && a.Perms&PermW == 0) ||
			(acc.Exec && a.Perms&PermX == 0) ||
			(!acc.Write && !acc.Exec && a.Perms&PermR == 0) {
			return WalkResult{}, &Fault{Kind: FaultPermission, Level: level, Addr: ia}
		}
		offset := ia & (LevelSize(level) - 1)
		return WalkResult{
			OutputAddr: pte.OutputAddr(level) + PhysAddr(offset),
			Attrs:      a,
			Level:      level,
		}, nil
	case EKReserved:
		return WalkResult{}, &Fault{Kind: FaultAddressSize, Level: level, Addr: ia}
	default: // EKInvalid, EKAnnotated
		return WalkResult{}, &Fault{Kind: FaultTranslation, Level: level, Addr: ia}
	}
}

// Walk performs the architecture's translation-table walk for input
// address ia through the table rooted at root, checking acc against
// the leaf permissions. It is the hardware's view of a page table: the
// ghost specification's abstraction functions must agree with it on
// the extensional meaning of every table.
func Walk(m *Memory, root PhysAddr, ia uint64, acc Access) (WalkResult, *Fault) {
	if !CanonicalIA(ia) {
		return WalkResult{}, &Fault{Kind: FaultAddressSize, Level: StartLevel, Addr: ia}
	}
	pte, level := WalkLeaf(m, root, ia)
	return leafResult(pte, level, ia, acc)
}

// WalkRead translates ia for a read access.
func WalkRead(m *Memory, root PhysAddr, ia uint64) (WalkResult, *Fault) {
	return Walk(m, root, ia, Access{})
}

// WalkWrite translates ia for a write access.
func WalkWrite(m *Memory, root PhysAddr, ia uint64) (WalkResult, *Fault) {
	return Walk(m, root, ia, Access{Write: true})
}
