package arch

import "fmt"

// EL is an Arm exception level.
type EL uint8

// Exception levels. Secure-world levels are out of scope, as in the
// paper.
const (
	EL0 EL = iota // applications
	EL1           // OS kernels (Android host, guests)
	EL2           // the hypervisor
)

func (e EL) String() string { return fmt.Sprintf("EL%d", uint8(e)) }

// NumGPRs is the number of general-purpose registers modelled per
// context. The pKVM hypercall ABI uses x0..x7; we carry a few more for
// realism in context-switch tests.
const NumGPRs = 16

// Regs is a saved general-purpose register context.
type Regs [NumGPRs]uint64

// ExitReason says why execution returned from a lower exception level
// to EL2.
type ExitReason uint8

const (
	// ExitHVC is an explicit hypervisor call (hvc instruction).
	ExitHVC ExitReason = iota
	// ExitMemAbort is a stage 2 translation fault routed to EL2.
	ExitMemAbort
	// ExitIRQ is an interrupt (used to yield back to the host).
	ExitIRQ
)

func (r ExitReason) String() string {
	switch r {
	case ExitHVC:
		return "hvc"
	case ExitMemAbort:
		return "mem-abort"
	case ExitIRQ:
		return "irq"
	}
	return "?"
}

// FaultInfo carries the syndrome information of a stage 2 abort: the
// faulting intermediate-physical address and whether the access was a
// write or instruction fetch.
type FaultInfo struct {
	Addr  IPA
	Write bool
	Exec  bool
}

// CPU is one hardware thread. Each CPU carries the saved EL1 context
// of whatever was running below EL2 (host or guest registers at trap
// time), the EL2 system registers the hypervisor manages, and a small
// amount of hypervisor-private per-CPU state referenced by index.
type CPU struct {
	// ID is the physical CPU number (0-based, dense).
	ID int

	// HostRegs is the saved host EL1 register context: hypercall
	// arguments arrive here and return values are written back here,
	// as in the paper's handle_trap.
	HostRegs Regs

	// GuestRegs is the saved register context of the currently loaded
	// vCPU, when one is loaded.
	GuestRegs Regs

	// VTTBR is the stage 2 translation root currently installed for
	// EL1/EL0 execution (the host's or a guest's).
	VTTBR PhysAddr

	// TTBREL2 is the stage 1 root for the hypervisor's own execution.
	TTBREL2 PhysAddr

	// Fault is the syndrome of the most recent stage 2 abort taken on
	// this CPU.
	Fault FaultInfo
}

// NewCPUs allocates n hardware threads.
func NewCPUs(n int) []*CPU {
	cpus := make([]*CPU, n)
	for i := range cpus {
		cpus[i] = &CPU{ID: i}
	}
	return cpus
}
