package arch

import (
	"testing"
	"testing/quick"
)

func TestAlignHelpers(t *testing.T) {
	cases := []struct{ in, down, up uint64 }{
		{0, 0, 0},
		{1, 0, PageSize},
		{PageSize - 1, 0, PageSize},
		{PageSize, PageSize, PageSize},
		{PageSize + 1, PageSize, 2 * PageSize},
	}
	for _, c := range cases {
		if got := AlignDown(c.in); got != c.down {
			t.Errorf("AlignDown(%#x) = %#x, want %#x", c.in, got, c.down)
		}
		if got := AlignUp(c.in); got != c.up {
			t.Errorf("AlignUp(%#x) = %#x, want %#x", c.in, got, c.up)
		}
	}
	if !PageAligned(0) || !PageAligned(PageSize) || PageAligned(1) {
		t.Error("PageAligned broken")
	}
}

// Property: AlignDown(a) <= a < AlignDown(a)+PageSize, and both
// results are aligned.
func TestAlignProperties(t *testing.T) {
	f := func(aRaw uint64) bool {
		a := aRaw % (1 << 52) // avoid AlignUp overflow territory
		d, u := AlignDown(a), AlignUp(a)
		return d <= a && a-d < PageSize && PageAligned(d) && PageAligned(u) &&
			u >= a && u-a < PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPFNConversions(t *testing.T) {
	f := func(raw uint32) bool {
		pfn := PFN(raw)
		return PhysToPFN(pfn.Phys()) == pfn && PageAligned(uint64(pfn.Phys()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Mid-page addresses map to the containing frame.
	if PhysToPFN(PhysAddr(PageSize+123)) != 1 {
		t.Error("PhysToPFN mid-page wrong")
	}
}

func TestCanonicalIA(t *testing.T) {
	if !CanonicalIA(0) || !CanonicalIA(1<<IABits-1) {
		t.Error("canonical addresses rejected")
	}
	if CanonicalIA(1 << IABits) {
		t.Error("non-canonical accepted")
	}
}

func TestLevelShiftPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LevelShift(4) did not panic")
		}
	}()
	LevelShift(4)
}

func TestELAndExitStrings(t *testing.T) {
	if EL2.String() != "EL2" {
		t.Error("EL string")
	}
	for _, r := range []ExitReason{ExitHVC, ExitMemAbort, ExitIRQ} {
		if r.String() == "?" {
			t.Errorf("exit reason %d unnamed", r)
		}
	}
	for _, k := range []FaultKind{FaultTranslation, FaultPermission, FaultAddressSize} {
		if k.String() == "?" {
			t.Errorf("fault kind %d unnamed", k)
		}
	}
	f := Fault{Kind: FaultTranslation, Level: 3, Addr: 0x1000}
	if f.Error() == "" {
		t.Error("fault error string empty")
	}
}

func TestNewCPUs(t *testing.T) {
	cpus := NewCPUs(3)
	if len(cpus) != 3 {
		t.Fatal("wrong count")
	}
	for i, c := range cpus {
		if c.ID != i {
			t.Errorf("cpu %d has ID %d", i, c.ID)
		}
	}
}

func TestStageString(t *testing.T) {
	if Stage1.String() != "stage1" || Stage2.String() != "stage2" {
		t.Error("stage strings")
	}
}
