// Package arch models the slice of the Arm-A architecture that pKVM
// manages: 4-level VMSAv8-64 address translation with 4KB granule,
// stage 1 and stage 2 translation regimes, per-CPU register files, and
// the exception plumbing that delivers hypercalls and memory aborts to
// the hypervisor.
//
// The model is functional, not cycle-accurate: page tables live in a
// simulated physical memory with the real descriptor bit layout, and
// Walk implements the architecture's translation-table walk over them.
// This is the substrate the ghost specification's abstraction functions
// interpret, exactly as the paper's abstraction functions interpret the
// in-memory tables the Arm MMU walks.
package arch

import "fmt"

// Translation geometry: 4KB granule, 48-bit input addresses, 4 levels
// (0..3), 512 descriptors of 8 bytes per table page.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4096
	PageMask  = PageSize - 1

	// PTEsPerTable is the number of descriptors in one table page.
	PTEsPerTable = 512

	// IABits is the input-address width of all translation regimes in
	// the Android configuration modelled here.
	IABits = 48

	// StartLevel is the first level of the 4-level walk.
	StartLevel = 0
	// LastLevel is the leaf level of the walk.
	LastLevel = 3

	// LevelShift0..3: the bit position of each level's index field.
	levelShift3 = PageShift
	levelShift2 = PageShift + 9
	levelShift1 = PageShift + 18
	levelShift0 = PageShift + 27
)

// PhysAddr is a physical address: the output of the final translation
// stage, used to index Memory.
type PhysAddr uint64

// VirtAddr is a virtual address: the input of a stage 1 regime.
type VirtAddr uint64

// IPA is an intermediate physical address: the output of stage 1 and
// the input of stage 2.
type IPA uint64

// PFN is a page frame number: a physical address shifted right by
// PageShift. Hypercall arguments pass page frame numbers.
type PFN uint64

// Phys returns the physical address of the first byte of the frame.
func (p PFN) Phys() PhysAddr { return PhysAddr(p) << PageShift }

// PhysToPFN returns the page frame number containing pa.
func PhysToPFN(pa PhysAddr) PFN { return PFN(pa >> PageShift) }

// PageAligned reports whether a is 4KB-aligned.
func PageAligned(a uint64) bool { return a&PageMask == 0 }

// AlignDown rounds a down to a 4KB boundary.
func AlignDown(a uint64) uint64 { return a &^ uint64(PageMask) }

// AlignUp rounds a up to a 4KB boundary.
func AlignUp(a uint64) uint64 { return (a + PageMask) &^ uint64(PageMask) }

// LevelShift returns the bit position of the index field for a walk
// level, i.e. a leaf at that level maps 1<<LevelShift(level) bytes.
func LevelShift(level int) uint {
	switch level {
	case 0:
		return levelShift0
	case 1:
		return levelShift1
	case 2:
		return levelShift2
	case 3:
		return levelShift3
	}
	panic(fmt.Sprintf("arch: invalid level %d", level))
}

// LevelSize returns the number of bytes mapped by one leaf descriptor
// at the given level (4KB at level 3, 2MB at level 2, 1GB at level 1).
func LevelSize(level int) uint64 { return 1 << LevelShift(level) }

// LevelPages returns the number of 4KB pages mapped by one leaf
// descriptor at the given level.
func LevelPages(level int) uint64 { return LevelSize(level) >> PageShift }

// IndexAt extracts the table index used at the given level for input
// address ia.
func IndexAt(ia uint64, level int) int {
	return int((ia >> LevelShift(level)) & (PTEsPerTable - 1))
}

// CanonicalIA reports whether ia fits in the 48-bit input-address
// space.
func CanonicalIA(ia uint64) bool { return ia < 1<<IABits }
