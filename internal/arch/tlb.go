package arch

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ghostspec/internal/analysis/preempt"
	"ghostspec/internal/telemetry"
	"ghostspec/internal/telemetry/trace"
)

// Span names for the TLB maintenance paths: fills (miss-path walks
// publishing a translation) and invalidation sweeps. Both run under
// shard mutexes, so on a timeline they explain where translation time
// goes when the cache churns.
var (
	spanTLBFill       = trace.NewName("tlb.fill")
	spanTLBInvalidate = trace.NewName("tlb.invalidate")
)

// This file is the software TLB: a model of the hardware translation
// caches whose maintenance pKVM is responsible for. Successful walks
// are cached keyed by (root, stage, VMID, IA page) and served without
// re-walking — deliberately including after the tables changed, because
// that is what hardware does: a translation stays live until a TLBI
// covering it is issued. Forgetting that TLBI (the break-before-make
// discipline) is the canonical hypervisor bug class, and modelling the
// cache faithfully is what lets the ghost oracle observe it
// (Recorder.FailStaleTLB) instead of the bug staying invisible in a
// walk-always model.
//
// Entries are immutable once published: each slot is an atomic pointer,
// so the translation hot path (Walk hits) is lock-free, while the shard
// mutex serializes the writers — fills, invalidations and coherence
// checks. A translation racing an invalidation may still be served from
// the pointer it loaded first; the architecture permits exactly that
// (the TLBI has not completed), and once the invalidation's store is
// done no later lookup can reach the entry.
//
// What keeps the cache itself sound — as opposed to the system under
// test — is the per-frame write-generation protocol against
// arch.Memory (the memory model's counters, bumped after every store):
//
//   - The miss path records, for every table page it reads, the page's
//     generation loaded BEFORE the descriptor read.
//   - The fill publishes under the shard mutex only after re-checking
//     every recorded generation.
//   - Invalidations scan under the same shard mutexes.
//
// A mutator orders its writes as store < generation bump < TLBI. If a
// fill's publish precedes the TLBI's shard scan, the scan removes the
// entry; if the scan precedes the publish, the mutex ordering makes the
// generation bump visible to the revalidation, which aborts the fill.
// Either way no entry that predates a TLBI survives it — stale entries
// exist if and only if a required TLBI was never issued.

// VMID tags a translation regime: which (virtual) machine's tables a
// cached walk came from. Mirrors the VMID field hardware tags stage 2
// TLB entries with; the hypervisor's own EL2 stage 1 regime gets a
// reserved sentinel value so its entries are tagged too.
type VMID uint16

const (
	tlbShardBits  = 3
	tlbShardCount = 1 << tlbShardBits // shards, each with its own writer mutex
	tlbShardSlots = 128               // direct-mapped sets per shard
	tlbMaxDeps    = LastLevel - StartLevel + 1
)

// TLB traffic. Hits and misses count hardware-path translations
// (TLB.Walk); lookup hits are the verified software-path hits serving
// pgtable.GetLeaf; fill aborts are walks whose tables changed before
// the result could be published (the revalidation protocol above).
var (
	telTLBHits        = telemetry.NewCounter("tlb_hits_total")
	telTLBMisses      = telemetry.NewCounter("tlb_misses_total")
	telTLBInvalidates = telemetry.NewCounter("tlb_invalidations_total")
	telTLBLookupHits  = telemetry.NewCounter("tlb_lookup_hits_total")
	telTLBFillAborts  = telemetry.NewCounter("tlb_fill_aborts_total")
)

type tlbKey struct {
	root  PhysAddr
	page  uint64 // ia >> PageShift
	vmid  VMID
	stage Stage
}

func (k tlbKey) hash() uint64 {
	h := uint64(k.root)>>PageShift ^ k.page ^ uint64(k.vmid)<<40 ^ uint64(k.stage)<<56
	// SplitMix64 finalizer: decorrelates the low bits used for shard
	// selection from the structured key fields.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// tlbDep is one table page the cached walk read: the page's generation
// cell and the value it held before the read. While the generation is
// unchanged the page is byte-identical to what the walk saw.
type tlbDep struct {
	ref *atomic.Uint64
	gen uint64
}

// tlbEntry is one cached translation. Immutable after publication:
// updates replace the whole entry through the slot's atomic pointer.
type tlbEntry struct {
	key   tlbKey
	pte   PTE // the terminal valid leaf descriptor
	level int
	cpu   int // CPU whose walk filled the entry (diagnostics)
	deps  [tlbMaxDeps]tlbDep
	ndeps int
}

// depsFresh reports whether every table page the cached walk read is
// still unchanged — in which case a fresh walk provably returns the
// same descriptor.
func (e *tlbEntry) depsFresh() bool {
	for i := 0; i < e.ndeps; i++ {
		if e.deps[i].ref.Load() != e.deps[i].gen {
			return false
		}
	}
	return true
}

type tlbShard struct {
	mu    sync.Mutex // serializes writers; the read path is lock-free
	live  int        // occupied slots, maintained under mu: sweeps skip empty shards
	slots [tlbShardSlots]atomic.Pointer[tlbEntry]
}

// set publishes e (or nil) into slot i, keeping the shard's live count.
// Caller holds sh.mu.
func (sh *tlbShard) set(i int, e *tlbEntry) {
	old := sh.slots[i].Load()
	switch {
	case old == nil && e != nil:
		sh.live++
	case old != nil && e == nil:
		sh.live--
	}
	sh.slots[i].Store(e)
}

// TLB is the software translation cache. One instance serves all CPUs
// of a system: entries record their filling CPU, and every modelled
// invalidation is the broadcast (inner-shareable) form, which is the
// only kind this hypervisor issues — so a single coherence domain with
// hash-distributed shard mutexes models per-CPU TLBs plus broadcast
// maintenance without a per-CPU search on the software lookup path.
type TLB struct {
	mem    *Memory
	shards [tlbShardCount]tlbShard

	// tracer, when attached, receives fill and invalidation spans on
	// lane; see SetTracer.
	tracer *trace.Tracer
	lane   int
}

// NewTLB builds a TLB over the given memory. A nil *TLB is a valid
// disabled cache: lookups miss and maintenance is a no-op, so callers
// thread one pointer regardless of configuration.
func NewTLB(m *Memory) *TLB {
	return &TLB{mem: m}
}

// SetTracer attaches a span tracer covering fills and invalidations.
// Install once at boot; a nil receiver or tracer stays untraced.
func (t *TLB) SetTracer(tr *trace.Tracer, lane int) {
	if t == nil {
		return
	}
	t.tracer, t.lane = tr, lane
}

func (t *TLB) locate(key tlbKey) (*tlbShard, int) {
	// The set index comes straight from the page bits, so consecutive
	// pages occupy consecutive sets — hardware TLBs are VA-indexed the
	// same way, and it keeps a small working set free of conflict
	// evictions. The shard (= writer lock) choice takes the mixed hash
	// so the other key fields still spread contention.
	return &t.shards[key.hash()&(tlbShardCount-1)], int(key.page % tlbShardSlots)
}

// Walk is the hardware translation path: consult the cache, walk and
// fill on a miss. A hit is served without looking at the tables — the
// architectural behaviour that makes a skipped TLBI observable. The
// fill protocol above guarantees hits are stale only when maintenance
// was actually missing, never because of a fill/invalidate race.
func (t *TLB) Walk(cpu int, root PhysAddr, stage Stage, vmid VMID, ia uint64, acc Access) (WalkResult, *Fault) {
	if t == nil {
		panic("arch: Walk on a nil TLB (disabled systems walk directly)")
	}
	if !CanonicalIA(ia) {
		return WalkResult{}, &Fault{Kind: FaultAddressSize, Level: StartLevel, Addr: ia}
	}
	key := tlbKey{root: root, page: ia >> PageShift, vmid: vmid, stage: stage}
	sh, slot := t.locate(key)
	if e := sh.slots[slot].Load(); e != nil && e.key == key {
		if !telemetry.Disabled() {
			telTLBHits.Inc()
		}
		return leafResult(e.pte, e.level, ia, acc)
	}
	if !telemetry.Disabled() {
		telTLBMisses.Inc()
	}

	pte, level, deps, ndeps := t.walkLeafDeps(root, ia)
	if k := pte.Kind(level); k == EKBlock || k == EKPage {
		// Valid translations are cacheable even when this particular
		// access kind permission-faults: the TLB caches the walk, the
		// permission check happens per access.
		t.fill(cpu, key, sh, slot, pte, level, deps, ndeps)
	}
	return leafResult(pte, level, ia, acc)
}

// walkLeafDeps is WalkLeaf with dependency recording: each table
// page's generation is loaded before its descriptor so an unchanged
// generation later proves the read is still current.
func (t *TLB) walkLeafDeps(root PhysAddr, ia uint64) (PTE, int, [tlbMaxDeps]tlbDep, int) {
	var deps [tlbMaxDeps]tlbDep
	table := root
	for level := StartLevel; level <= LastLevel; level++ {
		ref := t.mem.FrameGenRef(table)
		deps[level-StartLevel] = tlbDep{ref: ref, gen: ref.Load()}
		pte := t.mem.ReadPTE(table, IndexAt(ia, level))
		if pte.Kind(level) != EKTable {
			return pte, level, deps, level - StartLevel + 1
		}
		table = pte.TableAddr()
	}
	panic("arch: walk ran past the last level")
}

func (t *TLB) fill(cpu int, key tlbKey, sh *tlbShard, slot int, pte PTE, level int, deps [tlbMaxDeps]tlbDep, ndeps int) {
	sp := t.tracer.Begin(t.lane, spanTLBFill)
	defer sp.End()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 0; i < ndeps; i++ {
		if deps[i].ref.Load() != deps[i].gen {
			// A table page this walk read was rewritten since: the result
			// may predate a TLBI that already scanned this shard, so
			// publishing it could resurrect an invalidated translation.
			if !telemetry.Disabled() {
				telTLBFillAborts.Inc()
			}
			return
		}
	}
	sh.set(slot, &tlbEntry{key: key, pte: pte, level: level, cpu: cpu, deps: deps, ndeps: ndeps})
}

// LookupLeaf is the software lookup path serving pgtable.GetLeaf: the
// hypervisor reads its own tables with ordinary loads, not through the
// hardware TLB, so unlike Walk a cached entry is only served after
// revalidating its dependency generations — a software read must never
// observe a stale descriptor, even when a TLBI was (buggily) skipped.
// Misses do not fill; entries come from hardware walks.
func (t *TLB) LookupLeaf(root PhysAddr, stage Stage, vmid VMID, ia uint64) (PTE, int, bool) {
	if t == nil {
		return 0, 0, false
	}
	key := tlbKey{root: root, page: ia >> PageShift, vmid: vmid, stage: stage}
	sh, slot := t.locate(key)
	e := sh.slots[slot].Load()
	if e == nil || e.key != key || !e.depsFresh() {
		return 0, 0, false
	}
	if !telemetry.Disabled() {
		telTLBLookupHits.Inc()
	}
	return e.pte, e.level, true
}

// InvalidateRange drops every cached translation tagged vmid whose
// leaf coverage intersects [ia, ia+size) — Arm's TLBI IPAS2E1IS /
// VAE2IS by-address forms. An entry cached from a block leaf matches
// any address the block covers, not just the page that filled it.
func (t *TLB) InvalidateRange(vmid VMID, ia, size uint64) {
	// The TLBI preemption point fires before the nil check: the
	// invalidation is architecturally issued even when the software TLB
	// is absent, and a schedule's park at "the TLBI of this mutation"
	// must not depend on the NoTLB ablation. Fired here (not at every
	// emitting call site) so the table point resolved is the caller's.
	preempt.FireCaller(preempt.KindTLBI)
	if t == nil {
		return
	}
	if !telemetry.Disabled() {
		telTLBInvalidates.Inc()
	}
	end := ia + size
	t.sweep(func(e *tlbEntry) bool {
		if e.key.vmid != vmid {
			return false
		}
		base := (e.key.page << PageShift) &^ (LevelSize(e.level) - 1)
		return base < end && ia < base+LevelSize(e.level)
	})
}

// InvalidateIPA drops the cached translations of one page — the
// page-granule TLBI.
func (t *TLB) InvalidateIPA(vmid VMID, ia uint64) {
	t.InvalidateRange(vmid, ia, PageSize)
}

// InvalidateVMID drops every cached translation tagged vmid — Arm's
// TLBI VMALLS12E1IS, issued when a VM's stage 2 is torn down.
func (t *TLB) InvalidateVMID(vmid VMID) {
	preempt.FireCaller(preempt.KindTLBI)
	if t == nil {
		return
	}
	if !telemetry.Disabled() {
		telTLBInvalidates.Inc()
	}
	t.sweep(func(e *tlbEntry) bool { return e.key.vmid == vmid })
}

// InvalidateAll drops everything — TLBI ALLE1IS.
func (t *TLB) InvalidateAll() {
	preempt.FireCaller(preempt.KindTLBI)
	if t == nil {
		return
	}
	if !telemetry.Disabled() {
		telTLBInvalidates.Inc()
	}
	t.sweep(func(*tlbEntry) bool { return true })
}

// InvalidateStale drops every cached translation whose recorded table
// pages have been rewritten since the fill. A snapshot restore bumps
// the generation of each frame it rewrites, so this one sweep is the
// whole TLB story of a restore: entries over restored table pages
// vanish, entries whose dependencies never moved are provably still
// coherent and stay warm across executions. (The plain Walk hit path
// does not check dependencies — architecturally a hit is a hit — so
// stale entries must be swept here rather than left to age out, or the
// next execution would both translate through ghosts of the previous
// one and trip CheckCoherence's missing-TLBI report.)
func (t *TLB) InvalidateStale() {
	preempt.FireCaller(preempt.KindTLBI)
	if t == nil {
		return
	}
	if !telemetry.Disabled() {
		telTLBInvalidates.Inc()
	}
	t.sweep(func(e *tlbEntry) bool { return !e.depsFresh() })
}

func (t *TLB) sweep(drop func(*tlbEntry) bool) {
	sp := t.tracer.Begin(t.lane, spanTLBInvalidate)
	defer sp.End()
	for si := range t.shards {
		sh := &t.shards[si]
		sh.mu.Lock()
		if sh.live > 0 {
			for i := range sh.slots {
				if e := sh.slots[i].Load(); e != nil && drop(e) {
					sh.set(i, nil)
				}
			}
		}
		sh.mu.Unlock()
	}
}

// Len returns the number of live entries (testing and diagnostics).
func (t *TLB) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	t.sweepRead(func(*tlbEntry) { n++ })
	return n
}

func (t *TLB) sweepRead(visit func(*tlbEntry)) {
	for si := range t.shards {
		sh := &t.shards[si]
		sh.mu.Lock()
		if sh.live > 0 {
			for i := range sh.slots {
				if e := sh.slots[i].Load(); e != nil {
					visit(e)
				}
			}
		}
		sh.mu.Unlock()
	}
}

// CheckCoherence re-walks every live entry tagged vmid against the
// current tables and returns a description of each whose cached
// translation disagrees — the evidence behind the ghost oracle's
// FailStaleTLB alarm. Entries whose dependency generations are
// unchanged are provably coherent and skipped without re-walking; a
// re-walk that still yields the same translation (possibly through a
// split, at a different level) refreshes the entry in place. Stale
// entries are reported once and dropped.
//
// The caller must hold the lock of the component owning vmid's tables
// so they are quiescent during the re-walks; the ghost oracle runs
// this from its LockReleasing hook, which the hypervisor calls with
// the component lock still held.
//
//ghost:requires lock=dynamic
func (t *TLB) CheckCoherence(vmid VMID) []string {
	if t == nil {
		return nil
	}
	var out []string
	for si := range t.shards {
		sh := &t.shards[si]
		sh.mu.Lock()
		if sh.live == 0 {
			sh.mu.Unlock()
			continue
		}
		for i := range sh.slots {
			e := sh.slots[i].Load()
			if e == nil || e.key.vmid != vmid {
				continue
			}
			if e.depsFresh() {
				continue
			}
			ia := e.key.page << PageShift
			pte, level, deps, ndeps := t.walkLeafDeps(e.key.root, ia)
			cachedOA := e.pte.OutputAddr(e.level) + PhysAddr(ia&(LevelSize(e.level)-1))
			if k := pte.Kind(level); k == EKBlock || k == EKPage {
				freshOA := pte.OutputAddr(level) + PhysAddr(ia&(LevelSize(level)-1))
				if freshOA == cachedOA && pte.Attrs() == e.pte.Attrs() {
					sh.set(i, &tlbEntry{
						key: e.key, pte: pte, level: level, cpu: e.cpu, deps: deps, ndeps: ndeps})
					continue
				}
				out = append(out, fmt.Sprintf(
					"vmid %d ia %#x: TLB holds pa=%#x [%v] (level %d, filled by cpu %d) but the tables now give pa=%#x [%v] (level %d) — a required TLBI was not issued",
					vmid, ia, uint64(cachedOA), e.pte.Attrs(), e.level, e.cpu,
					uint64(freshOA), pte.Attrs(), level))
			} else {
				out = append(out, fmt.Sprintf(
					"vmid %d ia %#x: TLB holds pa=%#x [%v] (level %d, filled by cpu %d) but a fresh walk finds a %v entry — a required TLBI was not issued",
					vmid, ia, uint64(cachedOA), e.pte.Attrs(), e.level, e.cpu, k))
			}
			sh.set(i, nil)
		}
		sh.mu.Unlock()
	}
	return out
}
