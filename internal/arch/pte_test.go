package arch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevelGeometry(t *testing.T) {
	if LevelSize(3) != 4096 {
		t.Errorf("level 3 size = %d, want 4096", LevelSize(3))
	}
	if LevelSize(2) != 2<<20 {
		t.Errorf("level 2 size = %d, want 2MB", LevelSize(2))
	}
	if LevelSize(1) != 1<<30 {
		t.Errorf("level 1 size = %d, want 1GB", LevelSize(1))
	}
	if LevelPages(2) != 512 {
		t.Errorf("level 2 pages = %d, want 512", LevelPages(2))
	}
	// Index fields must tile the 48-bit input address exactly.
	if LevelShift(0)+9 != IABits {
		t.Errorf("level 0 shift %d does not top out at %d bits", LevelShift(0), IABits)
	}
	for l := 1; l <= 3; l++ {
		if LevelShift(l-1) != LevelShift(l)+9 {
			t.Errorf("levels %d/%d shifts not 9 bits apart", l-1, l)
		}
	}
}

func TestIndexAt(t *testing.T) {
	// An address built from known indices must decompose back.
	ia := uint64(3)<<LevelShift(0) | 511<<LevelShift(1) | 1<<LevelShift(2) | 42<<LevelShift(3)
	want := [4]int{3, 511, 1, 42}
	for l := 0; l <= 3; l++ {
		if got := IndexAt(ia, l); got != want[l] {
			t.Errorf("IndexAt(%#x, %d) = %d, want %d", ia, l, got, want[l])
		}
	}
}

func TestLeafRoundTrip(t *testing.T) {
	cases := []struct {
		level int
		pa    PhysAddr
		attrs Attrs
	}{
		{3, 0x4000_0000, Attrs{Perms: PermRWX, Mem: MemNormal, State: StateOwned}},
		{3, 0x4000_1000, Attrs{Perms: PermRW, Mem: MemNormal, State: StateSharedOwned}},
		{3, 0x8000_0000, Attrs{Perms: PermR, Mem: MemDevice, State: StateSharedBorrowed}},
		{2, 0x4020_0000, Attrs{Perms: PermRWX, Mem: MemNormal, State: StateOwned}},
		{1, 0x4000_0000, Attrs{Perms: PermRX, Mem: MemNormal, State: StateOwned}},
	}
	for _, c := range cases {
		pte := MakeLeaf(c.level, c.pa, c.attrs)
		if k := pte.Kind(c.level); (c.level == 3 && k != EKPage) || (c.level < 3 && k != EKBlock) {
			t.Errorf("level %d leaf kind = %v", c.level, k)
		}
		if got := pte.OutputAddr(c.level); got != c.pa {
			t.Errorf("level %d OutputAddr = %#x, want %#x", c.level, uint64(got), uint64(c.pa))
		}
		if got := pte.Attrs(); got != c.attrs {
			t.Errorf("level %d attrs = %+v, want %+v", c.level, got, c.attrs)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	pte := MakeTable(0x4abc_d000)
	if pte.Kind(0) != EKTable || pte.Kind(1) != EKTable || pte.Kind(2) != EKTable {
		t.Error("table descriptor not classified as table at levels 0-2")
	}
	if pte.Kind(3) != EKPage {
		t.Error("table bit pattern at level 3 must read as page")
	}
	if got := pte.TableAddr(); got != 0x4abc_d000 {
		t.Errorf("TableAddr = %#x", uint64(got))
	}
}

func TestAnnotationRoundTrip(t *testing.T) {
	for owner := uint8(1); owner < 255; owner++ {
		pte := MakeAnnotation(owner)
		if pte.Valid() {
			t.Fatalf("annotation for owner %d is valid", owner)
		}
		if pte.Kind(3) != EKAnnotated {
			t.Fatalf("annotation kind = %v", pte.Kind(3))
		}
		if got := pte.OwnerID(); got != owner {
			t.Fatalf("owner round trip: got %d want %d", got, owner)
		}
	}
}

func TestAnnotationOwnerZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MakeAnnotation(0) did not panic")
		}
	}()
	MakeAnnotation(0)
}

func TestMakeLeafAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unaligned level 2 leaf did not panic")
		}
	}()
	MakeLeaf(2, 0x4000_1000, Attrs{Perms: PermRW})
}

func TestReservedEncodings(t *testing.T) {
	// A block bit pattern (valid, type clear) is reserved at levels 0
	// and 3.
	raw := pteValid | pteAF
	if raw.Kind(0) != EKReserved {
		t.Error("valid non-table at level 0 must be reserved")
	}
	if raw.Kind(3) != EKInvalid+EKReserved-EKReserved && raw.Kind(3) != EKReserved {
		t.Errorf("valid non-page at level 3 = %v, want reserved", raw.Kind(3))
	}
	var zero PTE
	if zero.Kind(2) != EKInvalid {
		t.Error("zero descriptor must be invalid")
	}
}

// Property: Attrs survive a MakeLeaf/Attrs round trip for every
// permission/type/state combination at every leaf level.
func TestAttrsRoundTripExhaustive(t *testing.T) {
	for perms := Perms(0); perms < 8; perms++ {
		for _, mem := range []MemType{MemNormal, MemDevice} {
			for _, st := range []PageState{StateOwned, StateSharedOwned, StateSharedBorrowed} {
				a := Attrs{Perms: perms, Mem: mem, State: st}
				for _, level := range []int{1, 2, 3} {
					pa := PhysAddr(uint64(0x40000000)) // 1GB aligned, fits all levels
					got := MakeLeaf(level, pa, a).Attrs()
					if got != a {
						t.Fatalf("level %d attrs %+v -> %+v", level, a, got)
					}
				}
			}
		}
	}
}

// Property: a leaf's software and attribute bits never leak into its
// output-address field, for random page-aligned addresses.
func TestLeafAddressIsolation(t *testing.T) {
	f := func(pfnRaw uint32, permBits uint8) bool {
		pa := PhysAddr(pfnRaw) << PageShift
		a := Attrs{Perms: Perms(permBits % 8), Mem: MemNormal, State: StateSharedOwned}
		return MakeLeaf(3, pa, a).OutputAddr(3) == pa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Kind is total — every raw 64-bit value classifies without
// panicking at every level, and invalid bits imply non-valid kinds.
func TestKindTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		raw := PTE(rng.Uint64())
		for level := 0; level <= 3; level++ {
			k := raw.Kind(level)
			if raw&pteValid == 0 && (k == EKTable || k == EKBlock || k == EKPage || k == EKReserved) {
				t.Fatalf("invalid descriptor %#x classified as %v", uint64(raw), k)
			}
			if raw&pteValid != 0 && (k == EKInvalid || k == EKAnnotated) {
				t.Fatalf("valid descriptor %#x classified as %v", uint64(raw), k)
			}
		}
	}
}

func TestPermsString(t *testing.T) {
	if PermRWX.String() != "RWX" || PermRW.String() != "RW-" || Perms(0).String() != "---" {
		t.Error("Perms.String formatting broken")
	}
}
