package arch

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Memory is the simulated physical address space. It is sparse: frames
// are allocated on first touch, so a system can declare a large
// physical map without committing host RAM for it.
//
// Accesses are 64-bit-word granular, which is all the hypervisor and
// page-table machinery need. Word accesses are single-copy atomic,
// matching the architecture: hardware translation-table walks at EL0/1
// legitimately race with the hypervisor's descriptor updates, and each
// observes either the old or the new descriptor, never a torn one.
type Memory struct {
	// ram and mmio are flat slot arrays for the two declared regions,
	// indexed by frame number within the region. The access pattern is
	// extreme read-mostly — every simulated load/store and every ghost
	// interpretation walk resolves frames — and an indexed array load
	// beats the previous sync.Map (interface-boxed PFN keys were ~25%
	// of campaign CPU in profiles). Insertion happens once per frame
	// ever touched and races benignly (CompareAndSwap keeps exactly
	// one winner). Frames are never deleted.
	ram  []atomic.Pointer[frameCell]
	mmio []atomic.Pointer[frameCell]
	// out catches stray accesses outside both declared regions (the
	// random tester can aim hypercalls anywhere); it stays a sync.Map
	// because it is expected to be near-empty.
	out sync.Map
	// nframes counts distinct frames ever touched.
	nframes atomic.Int64

	// touchMu guards the append-only first-touch log below.
	touchMu sync.Mutex
	// touched records every frame in the order it was first allocated.
	// Snapshots iterate a prefix of this log instead of scanning the
	// (potentially millions of) slots of a large physical map, and a
	// baseline discovers frames born after its capture by reading the
	// log's suffix.
	touched []PFN

	// Layout of the physical map.
	ramStart PhysAddr
	ramSize  uint64
	mmioEnd  PhysAddr // MMIO occupies [0, mmioEnd) below RAM
}

// Frame is one 4KB physical frame, stored as 512 64-bit words.
type Frame [PTEsPerTable]uint64

// PTE views slot idx of a table-page frame as a descriptor — the bulk
// companion to Memory.ReadPTE for walkers that copied the whole frame
// out with ReadFrame.
func (f *Frame) PTE(idx int) PTE { return PTE(f[idx]) }

// frameCell is a frame plus its write-generation counter. The counter
// is bumped after every store into the frame, so a reader that records
// the generation before reading the contents can later detect whether
// any word may have changed — the invalidation signal the ghost
// abstraction cache and the snapshot dirty-tracker key on. Bumping
// after the store (not before) is the conservative order: a racing
// snapshot can record a stale generation for fresh data (forcing a
// needless re-read later) but never a fresh generation for stale data.
type frameCell struct {
	gen atomic.Uint64
	f   Frame
}

// MemLayout describes the simulated physical map: a contiguous RAM
// region, optionally preceded by an MMIO hole at the bottom of the
// address space.
type MemLayout struct {
	RAMStart PhysAddr // base of DRAM, page-aligned
	RAMSize  uint64   // bytes of DRAM, page multiple
	MMIOSize uint64   // bytes of MMIO space at physical 0
}

// DefaultLayout is a small Android-ish physical map: 256MB of DRAM at
// 1GB with 16MB of MMIO at the bottom of the address space.
func DefaultLayout() MemLayout {
	return MemLayout{RAMStart: 1 << 30, RAMSize: 256 << 20, MMIOSize: 16 << 20}
}

// NewMemory creates a sparse physical memory with the given layout.
func NewMemory(l MemLayout) *Memory {
	if !PageAligned(uint64(l.RAMStart)) || !PageAligned(l.RAMSize) || !PageAligned(l.MMIOSize) {
		panic("arch: memory layout must be page aligned")
	}
	return &Memory{
		ram:      make([]atomic.Pointer[frameCell], l.RAMSize>>PageShift),
		mmio:     make([]atomic.Pointer[frameCell], l.MMIOSize>>PageShift),
		ramStart: l.RAMStart,
		ramSize:  l.RAMSize,
		mmioEnd:  PhysAddr(l.MMIOSize),
	}
}

// RAMStart returns the base physical address of DRAM.
func (m *Memory) RAMStart() PhysAddr { return m.ramStart }

// RAMSize returns the DRAM size in bytes.
func (m *Memory) RAMSize() uint64 { return m.ramSize }

// RAMPages returns the number of 4KB DRAM frames.
func (m *Memory) RAMPages() uint64 { return m.ramSize >> PageShift }

// InRAM reports whether pa lies within the DRAM region. This is the
// "allowed memory" predicate the specification uses to pick Normal vs
// Device attributes.
func (m *Memory) InRAM(pa PhysAddr) bool {
	return pa >= m.ramStart && uint64(pa-m.ramStart) < m.ramSize
}

// InMMIO reports whether pa lies in the MMIO hole.
func (m *Memory) InMMIO(pa PhysAddr) bool { return pa < m.mmioEnd }

// slot returns the flat-array slot for pa, or nil if pa lies outside
// both declared regions.
func (m *Memory) slot(pa PhysAddr) *atomic.Pointer[frameCell] {
	if off := uint64(pa - m.ramStart); off < m.ramSize {
		return &m.ram[off>>PageShift]
	}
	if pa < m.mmioEnd {
		return &m.mmio[pa>>PageShift]
	}
	return nil
}

// frame returns the backing cell for pa, allocating it on first use.
// The hot path is a lock-free array-indexed load.
func (m *Memory) frame(pa PhysAddr) *frameCell {
	if s := m.slot(pa); s != nil {
		if c := s.Load(); c != nil {
			return c
		}
		return m.frameSlow(s, PhysToPFN(pa))
	}
	return m.frameOut(PhysToPFN(pa))
}

func (m *Memory) frameSlow(s *atomic.Pointer[frameCell], pfn PFN) *frameCell {
	c := new(frameCell)
	if s.CompareAndSwap(nil, c) {
		m.recordTouch(pfn)
		return c
	}
	return s.Load()
}

func (m *Memory) frameOut(pfn PFN) *frameCell {
	if c, ok := m.out.Load(pfn); ok {
		return c.(*frameCell)
	}
	c, loaded := m.out.LoadOrStore(pfn, new(frameCell))
	if !loaded {
		m.recordTouch(pfn)
	}
	return c.(*frameCell)
}

func (m *Memory) recordTouch(pfn PFN) {
	m.nframes.Add(1)
	m.touchMu.Lock()
	m.touched = append(m.touched, pfn)
	m.touchMu.Unlock()
}

// peek returns the cell for pfn without allocating, or nil if the
// frame has never been touched.
func (m *Memory) peek(pfn PFN) *frameCell {
	if s := m.slot(pfn.Phys()); s != nil {
		return s.Load()
	}
	if c, ok := m.out.Load(pfn); ok {
		return c.(*frameCell)
	}
	return nil
}

// touchCount returns the current length of the first-touch log.
func (m *Memory) touchCount() int {
	m.touchMu.Lock()
	n := len(m.touched)
	m.touchMu.Unlock()
	return n
}

// touchedRange copies log entries [i, j).
func (m *Memory) touchedRange(i, j int) []PFN {
	m.touchMu.Lock()
	out := append([]PFN(nil), m.touched[i:j]...)
	m.touchMu.Unlock()
	return out
}

// Read64 loads the 64-bit word at pa, which must be 8-byte aligned.
func (m *Memory) Read64(pa PhysAddr) uint64 {
	if pa&7 != 0 {
		panic(fmt.Sprintf("arch: unaligned Read64 at %#x", uint64(pa)))
	}
	return atomic.LoadUint64(&m.frame(pa).f[(pa&PageMask)>>3])
}

// Write64 stores the 64-bit word v at pa, which must be 8-byte aligned.
func (m *Memory) Write64(pa PhysAddr, v uint64) {
	if pa&7 != 0 {
		panic(fmt.Sprintf("arch: unaligned Write64 at %#x", uint64(pa)))
	}
	c := m.frame(pa)
	atomic.StoreUint64(&c.f[(pa&PageMask)>>3], v)
	c.gen.Add(1)
}

// ReadPTE loads the descriptor at index idx of the table page at
// table.
func (m *Memory) ReadPTE(table PhysAddr, idx int) PTE {
	return PTE(m.Read64(table + PhysAddr(idx*8)))
}

// ReadFrame copies the whole frame containing pa in one frame lookup.
// Bulk readers (the ghost page-table interpreter scans all 512 slots
// of every table page) pay one map access instead of one per word;
// the per-word loads stay atomic so the copy is safe against racing
// writers, though as with any multi-word read it is not a snapshot.
func (m *Memory) ReadFrame(pa PhysAddr) Frame {
	c := m.frame(pa)
	var out Frame
	for i := range c.f {
		out[i] = atomic.LoadUint64(&c.f[i])
	}
	return out
}

// WritePTE stores a descriptor at index idx of the table page at
// table.
func (m *Memory) WritePTE(table PhysAddr, idx int, p PTE) {
	m.Write64(table+PhysAddr(idx*8), uint64(p))
}

// ZeroWords zeroes n consecutive 64-bit words starting at pa, which
// must be 8-byte aligned. Unlike ZeroPage the range may start
// mid-frame and run across frame boundaries (the page-scrub paths
// zero at host-supplied addresses); each touched frame costs one
// lookup and one generation bump rather than one per word.
func (m *Memory) ZeroWords(pa PhysAddr, n int) {
	if pa&7 != 0 {
		panic(fmt.Sprintf("arch: unaligned ZeroWords at %#x", uint64(pa)))
	}
	for n > 0 {
		c := m.frame(pa)
		i := int((pa & PageMask) >> 3)
		k := PTEsPerTable - i
		if k > n {
			k = n
		}
		for j := i; j < i+k; j++ {
			atomic.StoreUint64(&c.f[j], 0)
		}
		c.gen.Add(1)
		pa += PhysAddr(k * 8)
		n -= k
	}
}

// ZeroPage clears the frame containing pa.
func (m *Memory) ZeroPage(pa PhysAddr) {
	c := m.frame(pa)
	for i := range c.f {
		atomic.StoreUint64(&c.f[i], 0)
	}
	c.gen.Add(1)
}

// FrameGen returns the current write generation of the frame
// containing pa: the number of stores (Write64/WritePTE calls, plus
// one per ZeroPage or snapshot restore) it has absorbed. A frame never
// written reports 0.
func (m *Memory) FrameGen(pa PhysAddr) uint64 {
	c := m.peek(PhysToPFN(pa))
	if c == nil {
		return 0
	}
	return c.gen.Load()
}

// FrameGenRef returns a stable pointer to the frame's generation
// counter, allocating the frame on first use. Holding the pointer lets
// a repeated staleness probe (the ghost abstraction cache checks every
// cached table page on every hook) load the generation with one atomic
// read instead of a frame lookup.
func (m *Memory) FrameGenRef(pa PhysAddr) *atomic.Uint64 {
	return &m.frame(pa).gen
}

// FrameCount returns the number of frames touched so far; used by the
// memory-impact accounting in the benchmarks.
func (m *Memory) FrameCount() int {
	return int(m.nframes.Load())
}
