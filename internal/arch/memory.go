package arch

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Memory is the simulated physical address space. It is sparse: frames
// are allocated on first touch, so a system can declare a large
// physical map without committing host RAM for it.
//
// Accesses are 64-bit-word granular, which is all the hypervisor and
// page-table machinery need. Word accesses are single-copy atomic,
// matching the architecture: hardware translation-table walks at EL0/1
// legitimately race with the hypervisor's descriptor updates, and each
// observes either the old or the new descriptor, never a torn one.
type Memory struct {
	// frames maps PFN -> *frameCell. A sync.Map because the access
	// pattern is extreme read-mostly: every simulated load/store and
	// every ghost interpretation walk resolves frames, while insertion
	// happens once per frame ever touched. A plain mutex-guarded map
	// here serialises all CPUs on one lock and shows up as futex storms
	// under the concurrent tester. Frames are never deleted.
	frames sync.Map
	// nframes counts distinct frames ever touched (sync.Map has no
	// cheap Len).
	nframes atomic.Int64

	// Layout of the physical map.
	ramStart PhysAddr
	ramSize  uint64
	mmioEnd  PhysAddr // MMIO occupies [0, mmioEnd) below RAM
}

// Frame is one 4KB physical frame, stored as 512 64-bit words.
type Frame [PTEsPerTable]uint64

// frameCell is a frame plus its write-generation counter. The counter
// is bumped after every store into the frame, so a reader that records
// the generation before reading the contents can later detect whether
// any word may have changed — the invalidation signal the ghost
// abstraction cache keys on. Bumping after the store (not before) is
// the conservative order: a racing snapshot can record a stale
// generation for fresh data (forcing a needless re-read later) but
// never a fresh generation for stale data.
type frameCell struct {
	gen atomic.Uint64
	f   Frame
}

// MemLayout describes the simulated physical map: a contiguous RAM
// region, optionally preceded by an MMIO hole at the bottom of the
// address space.
type MemLayout struct {
	RAMStart PhysAddr // base of DRAM, page-aligned
	RAMSize  uint64   // bytes of DRAM, page multiple
	MMIOSize uint64   // bytes of MMIO space at physical 0
}

// DefaultLayout is a small Android-ish physical map: 256MB of DRAM at
// 1GB with 16MB of MMIO at the bottom of the address space.
func DefaultLayout() MemLayout {
	return MemLayout{RAMStart: 1 << 30, RAMSize: 256 << 20, MMIOSize: 16 << 20}
}

// NewMemory creates a sparse physical memory with the given layout.
func NewMemory(l MemLayout) *Memory {
	if !PageAligned(uint64(l.RAMStart)) || !PageAligned(l.RAMSize) || !PageAligned(l.MMIOSize) {
		panic("arch: memory layout must be page aligned")
	}
	return &Memory{
		ramStart: l.RAMStart,
		ramSize:  l.RAMSize,
		mmioEnd:  PhysAddr(l.MMIOSize),
	}
}

// RAMStart returns the base physical address of DRAM.
func (m *Memory) RAMStart() PhysAddr { return m.ramStart }

// RAMSize returns the DRAM size in bytes.
func (m *Memory) RAMSize() uint64 { return m.ramSize }

// RAMPages returns the number of 4KB DRAM frames.
func (m *Memory) RAMPages() uint64 { return m.ramSize >> PageShift }

// InRAM reports whether pa lies within the DRAM region. This is the
// "allowed memory" predicate the specification uses to pick Normal vs
// Device attributes.
func (m *Memory) InRAM(pa PhysAddr) bool {
	return pa >= m.ramStart && uint64(pa-m.ramStart) < m.ramSize
}

// InMMIO reports whether pa lies in the MMIO hole.
func (m *Memory) InMMIO(pa PhysAddr) bool { return pa < m.mmioEnd }

// frame returns the backing cell for pa, allocating it on first use.
// The hot path is a lock-free Load; the allocating path races benignly
// (LoadOrStore keeps exactly one winner).
func (m *Memory) frame(pa PhysAddr) *frameCell {
	pfn := PhysToPFN(pa)
	if c, ok := m.frames.Load(pfn); ok {
		return c.(*frameCell)
	}
	c, loaded := m.frames.LoadOrStore(pfn, new(frameCell))
	if !loaded {
		m.nframes.Add(1)
	}
	return c.(*frameCell)
}

// Read64 loads the 64-bit word at pa, which must be 8-byte aligned.
func (m *Memory) Read64(pa PhysAddr) uint64 {
	if pa&7 != 0 {
		panic(fmt.Sprintf("arch: unaligned Read64 at %#x", uint64(pa)))
	}
	return atomic.LoadUint64(&m.frame(pa).f[(pa&PageMask)>>3])
}

// Write64 stores the 64-bit word v at pa, which must be 8-byte aligned.
func (m *Memory) Write64(pa PhysAddr, v uint64) {
	if pa&7 != 0 {
		panic(fmt.Sprintf("arch: unaligned Write64 at %#x", uint64(pa)))
	}
	c := m.frame(pa)
	atomic.StoreUint64(&c.f[(pa&PageMask)>>3], v)
	c.gen.Add(1)
}

// ReadPTE loads the descriptor at index idx of the table page at
// table.
func (m *Memory) ReadPTE(table PhysAddr, idx int) PTE {
	return PTE(m.Read64(table + PhysAddr(idx*8)))
}

// WritePTE stores a descriptor at index idx of the table page at
// table.
func (m *Memory) WritePTE(table PhysAddr, idx int, p PTE) {
	m.Write64(table+PhysAddr(idx*8), uint64(p))
}

// ZeroPage clears the frame containing pa.
func (m *Memory) ZeroPage(pa PhysAddr) {
	c := m.frame(pa)
	for i := range c.f {
		atomic.StoreUint64(&c.f[i], 0)
	}
	c.gen.Add(1)
}

// FrameGen returns the current write generation of the frame
// containing pa: the number of stores (Write64/WritePTE calls, plus
// one per ZeroPage) it has absorbed. A frame never written reports 0.
func (m *Memory) FrameGen(pa PhysAddr) uint64 {
	c, ok := m.frames.Load(PhysToPFN(pa))
	if !ok {
		return 0
	}
	return c.(*frameCell).gen.Load()
}

// FrameGenRef returns a stable pointer to the frame's generation
// counter, allocating the frame on first use. Holding the pointer lets
// a repeated staleness probe (the ghost abstraction cache checks every
// cached table page on every hook) load the generation with one atomic
// read instead of a map lookup under the memory lock.
func (m *Memory) FrameGenRef(pa PhysAddr) *atomic.Uint64 {
	return &m.frame(pa).gen
}

// FrameCount returns the number of frames touched so far; used by the
// memory-impact accounting in the benchmarks.
func (m *Memory) FrameCount() int {
	return int(m.nframes.Load())
}
