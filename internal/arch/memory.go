package arch

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Memory is the simulated physical address space. It is sparse: frames
// are allocated on first touch, so a system can declare a large
// physical map without committing host RAM for it.
//
// Accesses are 64-bit-word granular, which is all the hypervisor and
// page-table machinery need. Word accesses are single-copy atomic,
// matching the architecture: hardware translation-table walks at EL0/1
// legitimately race with the hypervisor's descriptor updates, and each
// observes either the old or the new descriptor, never a torn one.
type Memory struct {
	mu     sync.Mutex // guards frames map structure only
	frames map[PFN]*Frame

	// Layout of the physical map.
	ramStart PhysAddr
	ramSize  uint64
	mmioEnd  PhysAddr // MMIO occupies [0, mmioEnd) below RAM
}

// Frame is one 4KB physical frame, stored as 512 64-bit words.
type Frame [PTEsPerTable]uint64

// MemLayout describes the simulated physical map: a contiguous RAM
// region, optionally preceded by an MMIO hole at the bottom of the
// address space.
type MemLayout struct {
	RAMStart PhysAddr // base of DRAM, page-aligned
	RAMSize  uint64   // bytes of DRAM, page multiple
	MMIOSize uint64   // bytes of MMIO space at physical 0
}

// DefaultLayout is a small Android-ish physical map: 256MB of DRAM at
// 1GB with 16MB of MMIO at the bottom of the address space.
func DefaultLayout() MemLayout {
	return MemLayout{RAMStart: 1 << 30, RAMSize: 256 << 20, MMIOSize: 16 << 20}
}

// NewMemory creates a sparse physical memory with the given layout.
func NewMemory(l MemLayout) *Memory {
	if !PageAligned(uint64(l.RAMStart)) || !PageAligned(l.RAMSize) || !PageAligned(l.MMIOSize) {
		panic("arch: memory layout must be page aligned")
	}
	return &Memory{
		frames:   make(map[PFN]*Frame),
		ramStart: l.RAMStart,
		ramSize:  l.RAMSize,
		mmioEnd:  PhysAddr(l.MMIOSize),
	}
}

// RAMStart returns the base physical address of DRAM.
func (m *Memory) RAMStart() PhysAddr { return m.ramStart }

// RAMSize returns the DRAM size in bytes.
func (m *Memory) RAMSize() uint64 { return m.ramSize }

// RAMPages returns the number of 4KB DRAM frames.
func (m *Memory) RAMPages() uint64 { return m.ramSize >> PageShift }

// InRAM reports whether pa lies within the DRAM region. This is the
// "allowed memory" predicate the specification uses to pick Normal vs
// Device attributes.
func (m *Memory) InRAM(pa PhysAddr) bool {
	return pa >= m.ramStart && uint64(pa-m.ramStart) < m.ramSize
}

// InMMIO reports whether pa lies in the MMIO hole.
func (m *Memory) InMMIO(pa PhysAddr) bool { return pa < m.mmioEnd }

// frame returns the backing frame for pa, allocating it on first use.
func (m *Memory) frame(pa PhysAddr) *Frame {
	pfn := PhysToPFN(pa)
	m.mu.Lock()
	f := m.frames[pfn]
	if f == nil {
		f = new(Frame)
		m.frames[pfn] = f
	}
	m.mu.Unlock()
	return f
}

// Read64 loads the 64-bit word at pa, which must be 8-byte aligned.
func (m *Memory) Read64(pa PhysAddr) uint64 {
	if pa&7 != 0 {
		panic(fmt.Sprintf("arch: unaligned Read64 at %#x", uint64(pa)))
	}
	return atomic.LoadUint64(&m.frame(pa)[(pa&PageMask)>>3])
}

// Write64 stores the 64-bit word v at pa, which must be 8-byte aligned.
func (m *Memory) Write64(pa PhysAddr, v uint64) {
	if pa&7 != 0 {
		panic(fmt.Sprintf("arch: unaligned Write64 at %#x", uint64(pa)))
	}
	atomic.StoreUint64(&m.frame(pa)[(pa&PageMask)>>3], v)
}

// ReadPTE loads the descriptor at index idx of the table page at
// table.
func (m *Memory) ReadPTE(table PhysAddr, idx int) PTE {
	return PTE(m.Read64(table + PhysAddr(idx*8)))
}

// WritePTE stores a descriptor at index idx of the table page at
// table.
func (m *Memory) WritePTE(table PhysAddr, idx int, p PTE) {
	m.Write64(table+PhysAddr(idx*8), uint64(p))
}

// ZeroPage clears the frame containing pa.
func (m *Memory) ZeroPage(pa PhysAddr) {
	f := m.frame(pa)
	for i := range f {
		atomic.StoreUint64(&f[i], 0)
	}
}

// FrameCount returns the number of frames touched so far; used by the
// memory-impact accounting in the benchmarks.
func (m *Memory) FrameCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.frames)
}
