package arch

import "testing"

func testLayout() MemLayout {
	return MemLayout{RAMStart: 1 << 30, RAMSize: 4 << 20, MMIOSize: 1 << 20}
}

func TestSnapshotRestoreRewindsContent(t *testing.T) {
	m := NewMemory(testLayout())
	base := m.RAMStart()
	m.Write64(base, 0x1111)
	m.Write64(base+PageSize, 0x2222)

	img := m.CaptureImage()
	bl, ok := img.NewBaseline(m)
	if !ok {
		t.Fatal("baseline over the captured memory must verify")
	}

	genBefore := m.FrameGen(base)
	m.Write64(base, 0xdead)
	m.Write64(base+2*PageSize, 0xbeef) // frame born after capture
	if n := bl.Restore(); n != 2 {
		t.Fatalf("restore rewrote %d frames, want 2 (one dirty, one new)", n)
	}
	if got := m.Read64(base); got != 0x1111 {
		t.Fatalf("restored word = %#x, want 0x1111", got)
	}
	if got := m.Read64(base + PageSize); got != 0x2222 {
		t.Fatalf("untouched word = %#x, want 0x2222", got)
	}
	if got := m.Read64(base + 2*PageSize); got != 0 {
		t.Fatalf("post-capture frame = %#x, want zeroed", got)
	}
	if g := m.FrameGen(base); g <= genBefore {
		t.Fatalf("restore must bump generations forward: %d -> %d", genBefore, g)
	}

	// A second restore with nothing dirty is a no-op.
	if n := bl.Restore(); n != 0 {
		t.Fatalf("idle restore rewrote %d frames, want 0", n)
	}
}

func TestSnapshotDeltaPortableAcrossMemories(t *testing.T) {
	// Two memories brought to the same state by the same deterministic
	// writes, like two campaign workers after boot.
	mkBooted := func() *Memory {
		m := NewMemory(testLayout())
		m.Write64(m.RAMStart(), 0xb001)
		m.Write64(m.RAMStart()+8, 0xb002)
		return m
	}
	ma, mb := mkBooted(), mkBooted()

	img := ma.CaptureImage()
	bla, ok := img.NewBaseline(ma)
	if !ok {
		t.Fatal("baseline a")
	}
	blb, ok := img.NewBaseline(mb)
	if !ok {
		t.Fatal("baseline b must verify against a sibling's image")
	}

	// Worker A runs: mutates a boot frame and touches a new one.
	ma.Write64(ma.RAMStart(), 0xaaaa)
	ma.Write64(ma.RAMStart()+3*PageSize, 0xcccc)
	delta := bla.CaptureDelta()
	if delta.Frames() != 2 {
		t.Fatalf("delta frames = %d, want 2", delta.Frames())
	}

	// Worker B forks from A's end state without replaying.
	if n := blb.RestoreWith(delta); n != 2 {
		t.Fatalf("delta restore rewrote %d frames, want 2", n)
	}
	if d := DiffMemory(ma, mb, 8); len(d) != 0 {
		t.Fatalf("restored sibling diverges: %v", d)
	}

	// And a plain restore reverts the delta frames back to base.
	if n := blb.Restore(); n != 2 {
		t.Fatalf("base restore rewrote %d frames, want 2", n)
	}
	if got := mb.Read64(mb.RAMStart()); got != 0xb001 {
		t.Fatalf("base word = %#x, want 0xb001", got)
	}
	if got := mb.Read64(mb.RAMStart() + 3*PageSize); got != 0 {
		t.Fatalf("delta-born frame = %#x, want zero after base restore", got)
	}
}

func TestSnapshotDeltaSkipsContentDrift(t *testing.T) {
	m := NewMemory(testLayout())
	m.Write64(m.RAMStart(), 0x42)
	img := m.CaptureImage()
	bl, _ := img.NewBaseline(m)

	// Write the same value back: generation moves, content does not.
	m.Write64(m.RAMStart(), 0x42)
	if d := bl.CaptureDelta(); d.Frames() != 0 {
		t.Fatalf("content-identical frame recorded in delta (%d frames)", d.Frames())
	}
	// The re-baseline from CaptureDelta means no rewrite on restore.
	if n := bl.Restore(); n != 0 {
		t.Fatalf("restore rewrote %d frames after re-baseline, want 0", n)
	}
}

func TestSnapshotBaselineRejectsDivergedMemory(t *testing.T) {
	ma := NewMemory(testLayout())
	ma.Write64(ma.RAMStart(), 0x1)
	img := ma.CaptureImage()

	mb := NewMemory(testLayout())
	mb.Write64(mb.RAMStart(), 0x999) // different boot
	if _, ok := img.NewBaseline(mb); ok {
		t.Fatal("baseline over diverged memory must not verify")
	}
}

func TestDiffMemoryFindsMismatch(t *testing.T) {
	ma := NewMemory(testLayout())
	mb := NewMemory(testLayout())
	ma.Write64(ma.RAMStart()+16, 7)
	mb.Write64(mb.RAMStart()+16, 8)
	if d := DiffMemory(ma, mb, 8); len(d) != 1 {
		t.Fatalf("diff = %v, want exactly one mismatch", d)
	}
	// One side touched, other side untouched-but-zero is not a diff...
	ma.Write64(ma.RAMStart()+PageSize, 0)
	if d := DiffMemory(ma, mb, 8); len(d) != 1 {
		t.Fatalf("zero-written vs untouched must not differ: %v", d)
	}
	// ...but nonzero vs untouched is.
	ma.Write64(ma.RAMStart()+2*PageSize, 5)
	if d := DiffMemory(ma, mb, 8); len(d) != 2 {
		t.Fatalf("nonzero vs untouched must differ: %v", d)
	}
}
