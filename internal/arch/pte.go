package arch

import "fmt"

// PTE is a VMSAv8-64 translation-table descriptor. The layout follows
// the architecture's 4KB-granule format, restricted to the fields the
// Android configuration uses:
//
//	bit  0       valid
//	bit  1       type: 1 = table (levels 0-2) or page (level 3),
//	             0 = block (levels 1-2)
//	bits 2..4    memory-attribute index (stage 1 AttrIndx / stage 2
//	             MemAttr, collapsed to Normal vs Device here)
//	bit  6       access permission: read-only when set (stage 1
//	             AP[2] / stage 2 !S2AP[1] folded to one polarity)
//	bit  7       stage 2 read permission removed when set
//	bit 10       access flag (always set on valid leaves here)
//	bits 12..47  output address (leaf) or next-level table address
//	bit 54       execute-never (UXN/PXN/S2XN collapsed)
//	bits 55..56  software: pKVM page-state annotation
//	bits 2..9    (invalid descriptors only) software: owner ID, the
//	             KVM_INVALID_PTE_OWNER_MASK convention
//
// Invalid descriptors with a non-zero owner field are the annotations
// pKVM stores in otherwise-unused entries to record logical ownership
// of unmapped ranges.
type PTE uint64

// Descriptor field masks and shifts.
const (
	pteValid PTE = 1 << 0
	pteType  PTE = 1 << 1 // table or page, by level

	pteAttrIdxShift = 2
	pteAttrIdxMask  = 0x7 << pteAttrIdxShift

	pteRO PTE = 1 << 6 // leaf: read-only
	pteNR PTE = 1 << 7 // leaf: not readable (stage 2 only)

	pteAF PTE = 1 << 10 // access flag

	pteXN PTE = 1 << 54 // execute never

	// Output/next-table address field, bits 47:12.
	pteAddrMask PTE = 0x0000_FFFF_FFFF_F000

	// Software page-state bits, 56:55 (pKVM's convention).
	pteSWShift     = 55
	pteSWMask  PTE = 0x3 << pteSWShift

	// Owner ID of an invalid annotated descriptor, bits 9:2
	// (KVM_INVALID_PTE_OWNER_MASK).
	pteOwnerShift     = 2
	pteOwnerMask  PTE = 0xFF << pteOwnerShift
)

// Memory-attribute indices, a two-point MAIR: Normal write-back
// cacheable memory and Device-nGnRE.
const (
	attrIdxNormal = 0
	attrIdxDevice = 1
)

// MemType classifies the memory attributes of a mapping.
type MemType uint8

const (
	// MemNormal is Normal write-back cacheable memory.
	MemNormal MemType = iota
	// MemDevice is Device-nGnRE memory (MMIO).
	MemDevice
)

func (m MemType) String() string {
	if m == MemDevice {
		return "Device"
	}
	return "Normal"
}

// Perms is a read/write/execute permission triple.
type Perms uint8

const (
	// PermR grants read access.
	PermR Perms = 1 << iota
	// PermW grants write access.
	PermW
	// PermX grants instruction fetch.
	PermX

	// PermRW is read-write, no execute.
	PermRW = PermR | PermW
	// PermRWX grants everything.
	PermRWX = PermR | PermW | PermX
	// PermRX is read-execute.
	PermRX = PermR | PermX
)

func (p Perms) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'R'
	}
	if p&PermW != 0 {
		b[1] = 'W'
	}
	if p&PermX != 0 {
		b[2] = 'X'
	}
	return string(b)
}

// PageState is pKVM's software page-state annotation stored in the
// descriptor software bits: the share/borrow state of the mapping.
type PageState uint8

const (
	// StateOwned marks memory exclusively owned by this component.
	StateOwned PageState = 0
	// StateSharedOwned marks memory owned here but shared with another
	// component.
	StateSharedOwned PageState = 1
	// StateSharedBorrowed marks memory owned elsewhere and borrowed.
	StateSharedBorrowed PageState = 2
)

func (s PageState) String() string {
	switch s {
	case StateOwned:
		return "SO" // state: owned
	case StateSharedOwned:
		return "S0" // shared, owner side (paper's diff notation)
	case StateSharedBorrowed:
		return "SB"
	}
	return fmt.Sprintf("S?%d", uint8(s))
}

// Attrs bundles the leaf attributes the ghost specification cares
// about: permissions, memory type, and the software page state.
type Attrs struct {
	Perms Perms
	Mem   MemType
	State PageState
}

func (a Attrs) String() string {
	return fmt.Sprintf("%s %s %s", a.State, a.Perms, a.Mem)
}

// EntryKind classifies a descriptor at a given level, mirroring the
// paper's entry_kind function (Fig. 2).
type EntryKind uint8

const (
	// EKInvalid is an invalid descriptor with a zero owner field.
	EKInvalid EntryKind = iota
	// EKAnnotated is an invalid descriptor carrying a pKVM ownership
	// annotation in its software owner field.
	EKAnnotated
	// EKTable points to a next-level table (levels 0-2 only).
	EKTable
	// EKBlock maps a 1GB or 2MB region (levels 1-2 only).
	EKBlock
	// EKPage maps a 4KB page (level 3 only).
	EKPage
	// EKReserved is an architecturally reserved encoding (block bit
	// pattern at level 0 or 3).
	EKReserved
)

func (k EntryKind) String() string {
	switch k {
	case EKInvalid:
		return "invalid"
	case EKAnnotated:
		return "annotated"
	case EKTable:
		return "table"
	case EKBlock:
		return "block"
	case EKPage:
		return "page"
	case EKReserved:
		return "reserved"
	}
	return "?"
}

// Kind classifies the descriptor as seen at the given walk level.
func (p PTE) Kind(level int) EntryKind {
	if p&pteValid == 0 {
		if p&pteOwnerMask != 0 {
			return EKAnnotated
		}
		return EKInvalid
	}
	if p&pteType != 0 {
		if level == LastLevel {
			return EKPage
		}
		return EKTable
	}
	// Valid, type bit clear: block at levels 1-2, reserved elsewhere.
	if level == 1 || level == 2 {
		return EKBlock
	}
	return EKReserved
}

// Valid reports whether the descriptor's valid bit is set.
func (p PTE) Valid() bool { return p&pteValid != 0 }

// OutputAddr returns the output address of a leaf descriptor at the
// given level, masking the level-appropriate address bits.
func (p PTE) OutputAddr(level int) PhysAddr {
	mask := uint64(pteAddrMask) &^ (LevelSize(level) - 1)
	return PhysAddr(uint64(p) & mask)
}

// TableAddr returns the physical address of the next-level table of a
// table descriptor.
func (p PTE) TableAddr() PhysAddr { return PhysAddr(p & pteAddrMask) }

// OwnerID returns the software owner annotation of an invalid
// descriptor (zero when unannotated).
func (p PTE) OwnerID() uint8 {
	return uint8((p & pteOwnerMask) >> pteOwnerShift)
}

// Attrs decodes the leaf attribute fields.
func (p PTE) Attrs() Attrs {
	var perms Perms
	if p&pteNR == 0 {
		perms |= PermR
	}
	if p&pteRO == 0 {
		perms |= PermW
	}
	if p&pteXN == 0 {
		perms |= PermX
	}
	mem := MemNormal
	if (uint64(p)&pteAttrIdxMask)>>pteAttrIdxShift == attrIdxDevice {
		mem = MemDevice
	}
	return Attrs{
		Perms: perms,
		Mem:   mem,
		State: PageState((p & pteSWMask) >> pteSWShift),
	}
}

// MakeTable builds a table descriptor pointing at the table page at
// pa, which must be page-aligned.
func MakeTable(pa PhysAddr) PTE {
	if !PageAligned(uint64(pa)) {
		panic(fmt.Sprintf("arch: unaligned table address %#x", uint64(pa)))
	}
	return pteValid | pteType | (PTE(pa) & pteAddrMask)
}

// MakeLeaf builds a leaf descriptor at the given level mapping to pa
// with the given attributes. pa must be aligned to the level's block
// size. Level 3 produces a page descriptor, levels 1-2 a block
// descriptor.
func MakeLeaf(level int, pa PhysAddr, a Attrs) PTE {
	if uint64(pa)&(LevelSize(level)-1) != 0 {
		panic(fmt.Sprintf("arch: leaf address %#x unaligned for level %d", uint64(pa), level))
	}
	p := pteValid | pteAF | (PTE(pa) & pteAddrMask)
	if level == LastLevel {
		p |= pteType
	} else if level == 0 {
		panic("arch: no block descriptors at level 0")
	}
	if a.Perms&PermR == 0 {
		p |= pteNR
	}
	if a.Perms&PermW == 0 {
		p |= pteRO
	}
	if a.Perms&PermX == 0 {
		p |= pteXN
	}
	if a.Mem == MemDevice {
		p |= PTE(attrIdxDevice) << pteAttrIdxShift
	}
	p |= (PTE(a.State) << pteSWShift) & pteSWMask
	return p
}

// MakeAnnotation builds an invalid descriptor carrying an ownership
// annotation for the given owner ID. Owner 0 is reserved (it denotes a
// plain invalid entry) and panics.
func MakeAnnotation(owner uint8) PTE {
	if owner == 0 {
		panic("arch: annotation owner 0 is the unannotated encoding")
	}
	return PTE(owner) << pteOwnerShift
}
