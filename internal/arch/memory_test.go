package arch

import "testing"

// TestFrameGenerations: every store bumps the containing frame's
// generation exactly once, ZeroPage bumps once, and untouched frames
// report generation zero.
func TestFrameGenerations(t *testing.T) {
	m := NewMemory(DefaultLayout())
	pa := m.RAMStart()

	if g := m.FrameGen(pa); g != 0 {
		t.Fatalf("fresh frame gen = %d, want 0", g)
	}
	m.Write64(pa, 1)
	if g := m.FrameGen(pa); g != 1 {
		t.Fatalf("after one write gen = %d, want 1", g)
	}
	m.Write64(pa+8, 2)
	m.WritePTE(pa, 3, PTE(7))
	if g := m.FrameGen(pa); g != 3 {
		t.Fatalf("after three writes gen = %d, want 3", g)
	}

	// Reads do not bump.
	_ = m.Read64(pa)
	_ = m.ReadPTE(pa, 3)
	if g := m.FrameGen(pa); g != 3 {
		t.Fatalf("reads bumped gen to %d", g)
	}

	// ZeroPage is one bump, regardless of word count.
	m.ZeroPage(pa)
	if g := m.FrameGen(pa); g != 4 {
		t.Fatalf("after ZeroPage gen = %d, want 4", g)
	}

	// A neighbouring frame is independent.
	if g := m.FrameGen(pa + PageSize); g != 0 {
		t.Fatalf("neighbour frame gen = %d, want 0", g)
	}

	// The ref observes the same counter as FrameGen.
	ref := m.FrameGenRef(pa)
	m.Write64(pa, 9)
	if ref.Load() != m.FrameGen(pa) || ref.Load() != 5 {
		t.Fatalf("ref = %d, FrameGen = %d, want 5", ref.Load(), m.FrameGen(pa))
	}
}
