package arch

import (
	"sync"
	"testing"
)

// buildTestTable hand-constructs a 4-level table in mem mapping:
//   - page    ia 0x0000_0000_0000 -> pa 0x4000_0000 RWX
//   - page    ia 0x0000_0000_1000 -> pa 0x4000_1000 RW- (no exec)
//   - block   ia 0x0000_0020_0000 -> pa 0x4020_0000 (2MB, level 2) RWX
//   - nothing else.
//
// Returns the root table address. Table pages are placed at fixed
// physical addresses outside the mapped ranges.
func buildTestTable(m *Memory) PhysAddr {
	const (
		root = PhysAddr(0x9000_0000)
		l1   = PhysAddr(0x9000_1000)
		l2   = PhysAddr(0x9000_2000)
		l3   = PhysAddr(0x9000_3000)
	)
	normRWX := Attrs{Perms: PermRWX, Mem: MemNormal}
	normRW := Attrs{Perms: PermRW, Mem: MemNormal}

	m.WritePTE(root, 0, MakeTable(l1))
	m.WritePTE(l1, 0, MakeTable(l2))
	m.WritePTE(l2, 0, MakeTable(l3))
	m.WritePTE(l3, 0, MakeLeaf(3, 0x4000_0000, normRWX))
	m.WritePTE(l3, 1, MakeLeaf(3, 0x4000_1000, normRW))
	m.WritePTE(l2, 1, MakeLeaf(2, 0x4020_0000, normRWX)) // 2MB block
	return root
}

func TestWalkPage(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)

	res, f := WalkRead(m, root, 0x0)
	if f != nil {
		t.Fatalf("walk faulted: %v", f)
	}
	if res.OutputAddr != 0x4000_0000 || res.Level != 3 {
		t.Errorf("walk(0) = %#x level %d", uint64(res.OutputAddr), res.Level)
	}

	// Offsets within the page carry through.
	res, f = WalkRead(m, root, 0x0abc)
	if f != nil || res.OutputAddr != 0x4000_0abc {
		t.Errorf("walk(0xabc) = %#x, fault %v", uint64(res.OutputAddr), f)
	}
}

func TestWalkBlock(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)

	res, f := WalkRead(m, root, 0x20_0000+0x1_2345)
	if f != nil {
		t.Fatalf("block walk faulted: %v", f)
	}
	if res.OutputAddr != 0x4020_0000+0x1_2345 {
		t.Errorf("block output = %#x", uint64(res.OutputAddr))
	}
	if res.Level != 2 {
		t.Errorf("block level = %d, want 2", res.Level)
	}
}

func TestWalkTranslationFault(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)

	_, f := WalkRead(m, root, 0x2000) // l3 index 2: invalid
	if f == nil || f.Kind != FaultTranslation || f.Level != 3 {
		t.Errorf("fault = %+v, want translation at level 3", f)
	}
	_, f = WalkRead(m, root, 1<<LevelShift(0)) // l0 index 1: invalid
	if f == nil || f.Kind != FaultTranslation || f.Level != 0 {
		t.Errorf("fault = %+v, want translation at level 0", f)
	}
}

func TestWalkPermissionFault(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)

	// Page 1 is RW-: exec must fault, write must succeed.
	if _, f := Walk(m, root, 0x1000, Access{Exec: true}); f == nil || f.Kind != FaultPermission {
		t.Errorf("exec on RW- page: fault = %+v", f)
	}
	if _, f := WalkWrite(m, root, 0x1000); f != nil {
		t.Errorf("write on RW- page faulted: %v", f)
	}
}

func TestWalkAnnotatedFaults(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	// Replace page 0 with an ownership annotation: hardware must see a
	// translation fault, not a mapping.
	l3 := PhysAddr(0x9000_3000)
	m.WritePTE(l3, 0, MakeAnnotation(2))
	if _, f := WalkRead(m, root, 0x0); f == nil || f.Kind != FaultTranslation {
		t.Errorf("annotated entry: fault = %+v, want translation", f)
	}
}

func TestWalkNonCanonical(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	if _, f := WalkRead(m, root, 1<<IABits); f == nil || f.Kind != FaultAddressSize {
		t.Errorf("non-canonical input: fault = %+v", f)
	}
}

func TestWalkBlockLevel1(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	// A 1GB block at l1 index 1: ia [1GB, 2GB) -> pa 0x4000_0000.
	l1 := PhysAddr(0x9000_1000)
	m.WritePTE(l1, 1, MakeLeaf(1, 0x4000_0000, Attrs{Perms: PermRWX, Mem: MemNormal}))

	ia := uint64(1)<<LevelShift(1) + 0x123_4567
	res, f := WalkRead(m, root, ia)
	if f != nil {
		t.Fatalf("level-1 block walk faulted: %v", f)
	}
	if res.Level != 1 || res.OutputAddr != 0x4000_0000+0x123_4567 {
		t.Errorf("level-1 block walk = %#x level %d", uint64(res.OutputAddr), res.Level)
	}
}

func TestWalkReservedEncoding(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	// A valid descriptor with the type bit clear is a block — but block
	// encodings are architecturally reserved at level 0, and the walk
	// must report an address-size fault, not a mapping.
	m.WritePTE(root, 1, pteValid|pteAF)
	if _, f := WalkRead(m, root, 1<<LevelShift(0)); f == nil || f.Kind != FaultAddressSize || f.Level != 0 {
		t.Errorf("reserved level-0 encoding: fault = %+v, want address-size at level 0", f)
	}
	// Same bit pattern at level 3 (page slot without the type bit).
	l3 := PhysAddr(0x9000_3000)
	m.WritePTE(l3, 2, pteValid|pteAF)
	if _, f := WalkRead(m, root, 0x2000); f == nil || f.Kind != FaultAddressSize || f.Level != 3 {
		t.Errorf("reserved level-3 encoding: fault = %+v, want address-size at level 3", f)
	}
}

func TestWalkExecPermissions(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)

	// Page 0 is RWX: exec succeeds.
	if _, f := Walk(m, root, 0x0, Access{Exec: true}); f != nil {
		t.Errorf("exec on RWX page faulted: %v", f)
	}
	// The level-2 block is RWX too; exec through a block leaf.
	if _, f := Walk(m, root, 0x20_0000, Access{Exec: true}); f != nil {
		t.Errorf("exec on RWX block faulted: %v", f)
	}
	// A write-only page is not readable: plain reads permission-fault.
	l3 := PhysAddr(0x9000_3000)
	m.WritePTE(l3, 3, MakeLeaf(3, 0x4000_3000, Attrs{Perms: PermW, Mem: MemNormal}))
	if _, f := WalkRead(m, root, 0x3000); f == nil || f.Kind != FaultPermission {
		t.Errorf("read on W-only page: fault = %+v, want permission", f)
	}
}

func TestWalkRacesAreAtomic(t *testing.T) {
	// Hardware walks racing with descriptor updates must observe whole
	// descriptors. Run under -race: this is the legitimate concurrency
	// the paper notes cannot be excluded by the hypervisor's locks.
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	l3 := PhysAddr(0x9000_3000)
	a := MakeLeaf(3, 0x4000_0000, Attrs{Perms: PermRWX, Mem: MemNormal})
	b := MakeAnnotation(3)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			if i%2 == 0 {
				m.WritePTE(l3, 0, b)
			} else {
				m.WritePTE(l3, 0, a)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			res, f := WalkRead(m, root, 0)
			if f == nil && res.OutputAddr != 0x4000_0000 {
				t.Errorf("torn walk result: %#x", uint64(res.OutputAddr))
				return
			}
		}
	}()
	wg.Wait()
}

func TestMemoryLayoutPredicates(t *testing.T) {
	m := NewMemory(MemLayout{RAMStart: 1 << 30, RAMSize: 64 << 20, MMIOSize: 1 << 20})
	if !m.InRAM(1 << 30) {
		t.Error("RAM base not in RAM")
	}
	if m.InRAM(1<<30 + 64<<20) {
		t.Error("one past RAM end reported in RAM")
	}
	if !m.InMMIO(0xfff) || m.InMMIO(1<<20) {
		t.Error("MMIO bounds wrong")
	}
	if m.RAMPages() != (64<<20)>>PageShift {
		t.Error("RAMPages wrong")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory(DefaultLayout())
	m.Write64(0x4000_0000, 0xdead_beef_cafe_f00d)
	if got := m.Read64(0x4000_0000); got != 0xdead_beef_cafe_f00d {
		t.Errorf("read back %#x", got)
	}
	// Untouched locations read as zero.
	if got := m.Read64(0x5000_0000); got != 0 {
		t.Errorf("fresh location reads %#x", got)
	}
	m.ZeroPage(0x4000_0000)
	if got := m.Read64(0x4000_0000); got != 0 {
		t.Errorf("after ZeroPage reads %#x", got)
	}
}

func TestMemoryUnalignedPanics(t *testing.T) {
	m := NewMemory(DefaultLayout())
	defer func() {
		if recover() == nil {
			t.Error("unaligned Read64 did not panic")
		}
	}()
	m.Read64(0x4000_0001)
}
