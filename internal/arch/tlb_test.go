package arch

import (
	"strings"
	"testing"
)

// tlbWalk is the test shorthand: a stage 2 hardware read walk for vmid
// through t over the table built by buildTestTable.
func tlbWalk(t *TLB, root PhysAddr, vmid VMID, ia uint64) (WalkResult, *Fault) {
	return t.Walk(0, root, Stage2, vmid, ia, Access{})
}

func TestTLBHitServesStaleTranslation(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	tlb := NewTLB(m)

	res, f := tlbWalk(tlb, root, 1, 0x0)
	if f != nil || res.OutputAddr != 0x4000_0000 {
		t.Fatalf("first walk: %#x, fault %v", uint64(res.OutputAddr), f)
	}
	if tlb.Len() != 1 {
		t.Fatalf("Len = %d after one fill", tlb.Len())
	}

	// Rewrite the leaf without a TLBI: the hardware path must keep
	// serving the cached (now stale) translation — that is the modelled
	// bug class, not a cache defect.
	l3 := PhysAddr(0x9000_3000)
	m.WritePTE(l3, 0, MakeLeaf(3, 0x4000_5000, Attrs{Perms: PermRWX, Mem: MemNormal}))
	res, f = tlbWalk(tlb, root, 1, 0x0)
	if f != nil || res.OutputAddr != 0x4000_0000 {
		t.Errorf("post-rewrite hit: %#x, fault %v, want stale 0x4000_0000", uint64(res.OutputAddr), f)
	}

	// After the TLBI the next walk misses and sees the new leaf.
	tlb.InvalidateIPA(1, 0x0)
	if tlb.Len() != 0 {
		t.Errorf("Len = %d after invalidate", tlb.Len())
	}
	res, f = tlbWalk(tlb, root, 1, 0x0)
	if f != nil || res.OutputAddr != 0x4000_5000 {
		t.Errorf("post-TLBI walk: %#x, fault %v", uint64(res.OutputAddr), f)
	}
}

func TestTLBLookupLeafRevalidates(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	tlb := NewTLB(m)

	if _, f := tlbWalk(tlb, root, 1, 0x1000); f != nil {
		t.Fatalf("walk faulted: %v", f)
	}
	if pte, level, ok := tlb.LookupLeaf(root, Stage2, 1, 0x1000); !ok || level != 3 || pte.OutputAddr(3) != 0x4000_1000 {
		t.Fatalf("fresh LookupLeaf = %#x level %d ok %v", uint64(pte.OutputAddr(3)), level, ok)
	}
	// Any store to a dependency page makes the software path refuse the
	// entry, TLBI or not: the hypervisor reads its tables with ordinary
	// loads and must never see a stale descriptor.
	l3 := PhysAddr(0x9000_3000)
	m.WritePTE(l3, 1, MakeLeaf(3, 0x4000_6000, Attrs{Perms: PermRW, Mem: MemNormal}))
	if _, _, ok := tlb.LookupLeaf(root, Stage2, 1, 0x1000); ok {
		t.Error("LookupLeaf served a stale entry after a table store")
	}
	// Misses (wrong vmid, uncached page) return false too.
	if _, _, ok := tlb.LookupLeaf(root, Stage2, 2, 0x1000); ok {
		t.Error("LookupLeaf hit across VMIDs")
	}
	if _, _, ok := tlb.LookupLeaf(root, Stage2, 1, 0x5000); ok {
		t.Error("LookupLeaf hit an uncached page")
	}
}

func TestTLBInvalidateRangeCoversBlocks(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	tlb := NewTLB(m)

	// Fill from the 2MB block via one page inside it.
	if _, f := tlbWalk(tlb, root, 1, 0x20_0000); f != nil {
		t.Fatalf("block walk faulted: %v", f)
	}
	// A page-granule TLBI for a *different* page the block covers must
	// still drop the entry: invalidation matches leaf coverage, not the
	// filling address.
	tlb.InvalidateIPA(1, 0x20_0000+17*PageSize)
	if tlb.Len() != 0 {
		t.Errorf("block entry survived a TLBI inside its range (Len %d)", tlb.Len())
	}

	// And one just outside the block leaves it alone.
	if _, f := tlbWalk(tlb, root, 1, 0x20_0000); f != nil {
		t.Fatalf("refill walk faulted: %v", f)
	}
	tlb.InvalidateIPA(1, 0x20_0000+LevelSize(2))
	if tlb.Len() != 1 {
		t.Errorf("TLBI outside the block dropped it (Len %d)", tlb.Len())
	}
}

func TestTLBInvalidateVMIDAndAll(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	tlb := NewTLB(m)

	for _, vmid := range []VMID{1, 2} {
		if _, f := tlbWalk(tlb, root, vmid, 0x0); f != nil {
			t.Fatalf("walk vmid %d faulted: %v", vmid, f)
		}
		if _, f := tlbWalk(tlb, root, vmid, 0x1000); f != nil {
			t.Fatalf("walk vmid %d faulted: %v", vmid, f)
		}
	}
	if tlb.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tlb.Len())
	}
	tlb.InvalidateVMID(1)
	if tlb.Len() != 2 {
		t.Errorf("Len = %d after InvalidateVMID(1), want 2", tlb.Len())
	}
	if _, _, ok := tlb.LookupLeaf(root, Stage2, 2, 0x0); !ok {
		t.Error("vmid 2 entry lost to vmid 1's TLBI")
	}
	tlb.InvalidateAll()
	if tlb.Len() != 0 {
		t.Errorf("Len = %d after InvalidateAll", tlb.Len())
	}
}

func TestTLBPermissionFaultStillCaches(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	tlb := NewTLB(m)

	// Page 1 is RW-: an exec walk faults but the translation itself is
	// valid and cacheable; the permission check is per access.
	if _, f := tlb.Walk(0, root, Stage2, 1, 0x1000, Access{Exec: true}); f == nil || f.Kind != FaultPermission {
		t.Fatalf("exec fault = %+v", f)
	}
	if tlb.Len() != 1 {
		t.Fatalf("Len = %d, want the faulting walk cached", tlb.Len())
	}
	// The cached entry serves a read hit and still exec-faults.
	if res, f := tlbWalk(tlb, root, 1, 0x1000); f != nil || res.OutputAddr != 0x4000_1000 {
		t.Errorf("read after exec fault: %#x, fault %v", uint64(res.OutputAddr), f)
	}
	if _, f := tlb.Walk(0, root, Stage2, 1, 0x1000, Access{Exec: true}); f == nil || f.Kind != FaultPermission {
		t.Errorf("cached exec fault = %+v", f)
	}
	// Faulting (invalid) walks are not cached.
	tlb.InvalidateAll()
	if _, f := tlbWalk(tlb, root, 1, 0x5000); f == nil {
		t.Fatal("translation fault expected")
	}
	if tlb.Len() != 0 {
		t.Errorf("Len = %d, invalid walk was cached", tlb.Len())
	}
}

func TestTLBFillAbortsOnConcurrentWrite(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	tlb := NewTLB(m)

	// Reproduce the fill-vs-mutate race deterministically with the
	// in-package pieces: record the walk, mutate a dependency page (as a
	// racing CPU would between walk and publish), then attempt the fill.
	key := tlbKey{root: root, page: 0, vmid: 1, stage: Stage2}
	sh, slot := tlb.locate(key)
	pte, level, deps, ndeps := tlb.walkLeafDeps(root, 0x0)
	l3 := PhysAddr(0x9000_3000)
	m.WritePTE(l3, 0, MakeLeaf(3, 0x4000_7000, Attrs{Perms: PermRWX, Mem: MemNormal}))
	tlb.fill(0, key, sh, slot, pte, level, deps, ndeps)
	if tlb.Len() != 0 {
		t.Errorf("Len = %d: fill published a result whose tables changed", tlb.Len())
	}
}

func TestTLBCheckCoherence(t *testing.T) {
	m := NewMemory(DefaultLayout())
	root := buildTestTable(m)
	tlb := NewTLB(m)

	if _, f := tlbWalk(tlb, root, 1, 0x0); f != nil {
		t.Fatalf("walk faulted: %v", f)
	}
	// Fresh entry: coherent, nothing reported.
	if stale := tlb.CheckCoherence(1); len(stale) != 0 {
		t.Fatalf("fresh entry reported stale: %v", stale)
	}

	// A generation bump that does not change the translation (rewriting
	// the same descriptor) refreshes the entry instead of reporting it.
	l3 := PhysAddr(0x9000_3000)
	m.WritePTE(l3, 0, MakeLeaf(3, 0x4000_0000, Attrs{Perms: PermRWX, Mem: MemNormal}))
	if stale := tlb.CheckCoherence(1); len(stale) != 0 {
		t.Fatalf("equal re-walk reported stale: %v", stale)
	}
	if tlb.Len() != 1 {
		t.Fatalf("Len = %d after refresh", tlb.Len())
	}

	// Now genuinely change the translation without a TLBI.
	m.WritePTE(l3, 0, MakeLeaf(3, 0x4000_8000, Attrs{Perms: PermRWX, Mem: MemNormal}))
	stale := tlb.CheckCoherence(1)
	if len(stale) != 1 || !strings.Contains(stale[0], "TLBI was not issued") {
		t.Fatalf("stale report = %v", stale)
	}
	// Reported once, then dropped.
	if tlb.Len() != 0 {
		t.Errorf("Len = %d after stale report", tlb.Len())
	}
	if again := tlb.CheckCoherence(1); len(again) != 0 {
		t.Errorf("stale entry reported twice: %v", again)
	}

	// Unmapping underneath a cached entry is the other report shape.
	if _, f := tlbWalk(tlb, root, 1, 0x1000); f != nil {
		t.Fatalf("walk faulted: %v", f)
	}
	m.WritePTE(l3, 1, 0)
	stale = tlb.CheckCoherence(1)
	if len(stale) != 1 || !strings.Contains(stale[0], "fresh walk finds") {
		t.Errorf("unmapped-entry report = %v", stale)
	}

	// Other VMIDs' entries are out of scope for the check.
	if _, f := tlbWalk(tlb, root, 2, 0x0); f != nil {
		t.Fatalf("walk faulted: %v", f)
	}
	m.WritePTE(l3, 0, MakeLeaf(3, 0x4000_9000, Attrs{Perms: PermRWX, Mem: MemNormal}))
	if stale := tlb.CheckCoherence(1); len(stale) != 0 {
		t.Errorf("vmid 1 check reported vmid 2's entry: %v", stale)
	}
}

func TestTLBNilIsDisabled(t *testing.T) {
	var tlb *TLB
	if _, _, ok := tlb.LookupLeaf(0x9000_0000, Stage2, 1, 0x0); ok {
		t.Error("nil TLB reported a hit")
	}
	tlb.InvalidateIPA(1, 0x0)
	tlb.InvalidateRange(1, 0x0, PageSize)
	tlb.InvalidateVMID(1)
	tlb.InvalidateAll()
	if tlb.Len() != 0 {
		t.Error("nil TLB has entries")
	}
	if stale := tlb.CheckCoherence(1); stale != nil {
		t.Errorf("nil TLB reported stale entries: %v", stale)
	}
}
