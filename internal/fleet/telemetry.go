package fleet

import "ghostspec/internal/telemetry"

// Fleet telemetry, registered at package init (telemetrycheck scope).
// Coordinator-side counters live on the coordinator process's /metrics
// endpoint; the worker-side counters on each worker's. The names are
// the ones OBSERVABILITY.md documents for fleet dashboards.
var (
	// telWorkersLive is the coordinator's count of workers inside
	// their heartbeat lease.
	telWorkersLive = telemetry.NewGauge("fleet_workers_live")

	// telExecs accumulates fleet-wide executions as workers report
	// them (monotonic: the coordinator adds per-report diffs).
	telExecs = telemetry.NewCounter("fleet_execs_total")

	// telCorpusSynced counts corpus entries accepted into the global
	// log; telCorpusFanout entries streamed back out to peers;
	// telCorpusDup entries rejected as already known.
	telCorpusSynced = telemetry.NewCounter("fleet_corpus_synced_total")
	telCorpusFanout = telemetry.NewCounter("fleet_corpus_fanout_total")
	telCorpusDup    = telemetry.NewCounter("fleet_corpus_duplicate_total")

	// Finding dedup: every reported finding counts in telFindings;
	// the ones whose minimized-trace hash was already known count in
	// telFindingsDup; telFindingsUnique gauges the surviving set.
	telFindings       = telemetry.NewCounter("fleet_findings_reported_total")
	telFindingsDup    = telemetry.NewCounter("fleet_findings_duplicate_total")
	telFindingsUnique = telemetry.NewGauge("fleet_findings_unique")

	// telReassigns counts shards recovered from dead workers.
	telReassigns = telemetry.NewCounter("fleet_shard_reassigns_total")

	// Worker-side: reports sent, reports that failed and entered
	// backoff, and corpus entries pulled from peers.
	telReports      = telemetry.NewCounter("fleet_reports_total")
	telReportRetry  = telemetry.NewCounter("fleet_report_retries_total")
	telCorpusPulled = telemetry.NewCounter("fleet_corpus_pulled_total")
)
