package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ghostspec/internal/campaign"
	"ghostspec/internal/coverage"
	"ghostspec/internal/faults"
	"ghostspec/internal/randtest"
	"ghostspec/internal/telemetry/trace"
)

// WorkerConfig parameterises a fleet worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name labels the worker on the status page (hostname:pid style).
	Name string
	// Threads is the local campaign shard count (campaign.Config.
	// Workers). Default 1.
	Threads int
	// Duration bounds the worker's total wall time; zero runs until
	// Stop. MaxExecs bounds total executions across rounds.
	Duration time.Duration
	MaxExecs int64
	// SeedCap bounds the seeds replayed into each round's fresh engine
	// (own novel entries plus pulled peer entries). Default 256.
	SeedCap int
	// Tracer, when set, is handed to every round's engine (needs at
	// least Threads lanes).
	Tracer *trace.Tracer
	// Logf, when set, receives worker progress lines.
	Logf func(format string, args ...any)
	// Client overrides the HTTP client (tests inject a short-timeout
	// one); default is a 10s-timeout client.
	Client *http.Client
}

// Worker runs campaign engine rounds against leased shards, streaming
// batched exec/coverage/corpus/finding deltas to the coordinator. The
// per-exec hot path only ever appends to in-memory outboxes (the
// OnFinding/OnCorpus hooks); encoding and HTTP happen on the reporter
// tick.
type Worker struct {
	cfg         WorkerConfig
	client      *http.Client
	id          string
	reportEvery time.Duration

	stop atomic.Bool

	// Round-crossing state, guarded by mu: the outboxes the hooks fill,
	// the canonical-hash set of traces this worker already knows, the
	// seeds replayed into each fresh round engine, and the worker's
	// cursor into the coordinator's corpus log.
	mu          sync.Mutex
	outCorpus   []CorpusEntry
	outFindings []campaign.Finding
	seen        map[uint64]bool
	seeds       []CorpusEntry
	cursor      int
	eng         *campaign.Engine
	execsDone   int64 // execs of finished rounds
	doneCov     coverage.Delta

	execs atomic.Int64 // cumulative, for observers
}

// NewWorker builds a worker; Run drives it.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.SeedCap <= 0 {
		cfg.SeedCap = 256
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Worker{
		cfg:    cfg,
		client: client,
		seen:   make(map[uint64]bool),
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Stop asks the worker to finish its current round and leave cleanly.
func (w *Worker) Stop() { w.stop.Store(true) }

// Execs reports the worker's cumulative execution count.
func (w *Worker) Execs() int64 { return w.execs.Load() }

// Engine returns the round engine currently running, or nil between
// rounds — the /campaign introspection hook for worker processes.
func (w *Worker) Engine() *campaign.Engine {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.eng
}

// Run registers with the coordinator and executes rounds until the
// duration/exec budget runs out or Stop is called, then reports a
// clean departure. It returns the first fatal error (unreachable
// coordinator after registration backoff gives up, wire-version
// rejection, engine boot failure).
func (w *Worker) Run() error {
	var deadline time.Time
	if w.cfg.Duration > 0 {
		deadline = time.Now().Add(w.cfg.Duration)
	}
	if err := w.register(deadline); err != nil {
		return err
	}

	for !w.done(deadline) {
		a, err := w.acquireShard(deadline)
		if err != nil {
			return err
		}
		if a == nil {
			break // stopped or deadline while waiting
		}
		if err := w.runRound(a, deadline); err != nil {
			w.report(ReportFlags{Error: err.Error(), Leaving: true})
			return err
		}
	}
	w.report(ReportFlags{Leaving: true})
	w.logf("fleet worker %s: leaving after %d execs", w.id, w.execs.Load())
	return nil
}

func (w *Worker) done(deadline time.Time) bool {
	if w.stop.Load() {
		return true
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return true
	}
	if w.cfg.MaxExecs > 0 && w.execs.Load() >= w.cfg.MaxExecs {
		return true
	}
	return false
}

// register performs the handshake with exponential backoff; a
// wire-version rejection is fatal immediately (retrying cannot fix a
// binary mismatch).
func (w *Worker) register(deadline time.Time) error {
	backoff := 100 * time.Millisecond
	for {
		var resp RegisterResponse
		err := w.post("/fleet/v1/register", RegisterRequest{
			Name:        w.cfg.Name,
			WireVersion: WireVersion,
			Threads:     w.cfg.Threads,
		}, &resp)
		if err == nil && resp.Error != "" {
			return fmt.Errorf("fleet: coordinator refused registration: %s", resp.Error)
		}
		if err == nil {
			w.id = resp.WorkerID
			w.reportEvery = time.Duration(resp.ReportMS) * time.Millisecond
			if w.reportEvery <= 0 {
				w.reportEvery = 500 * time.Millisecond
			}
			w.logf("fleet worker %s: registered at %s (report every %v, lease %vms)",
				w.id, w.cfg.Coordinator, w.reportEvery, resp.LeaseMS)
			return nil
		}
		telReportRetry.Inc()
		w.logf("fleet worker: register failed (%v), retrying in %v", err, backoff)
		if !w.sleep(backoff, deadline) {
			return fmt.Errorf("fleet: could not register with %s: %w", w.cfg.Coordinator, err)
		}
		backoff = nextBackoff(backoff)
	}
}

// acquireShard reports NeedShard until the coordinator hands out a
// lease, backing off on network errors and RetryMS full-fleet waits.
func (w *Worker) acquireShard(deadline time.Time) (*Assignment, error) {
	backoff := 100 * time.Millisecond
	for !w.done(deadline) {
		resp, err := w.report(ReportFlags{NeedShard: true})
		if err != nil {
			if !w.sleep(backoff, deadline) {
				return nil, nil
			}
			backoff = nextBackoff(backoff)
			continue
		}
		backoff = 100 * time.Millisecond
		if resp.Reregister {
			if err := w.register(deadline); err != nil {
				return nil, err
			}
			continue
		}
		if resp.Assignment != nil {
			return resp.Assignment, nil
		}
		wait := time.Duration(resp.RetryMS) * time.Millisecond
		if wait <= 0 {
			wait = w.reportEvery
		}
		if !w.sleep(wait, deadline) {
			return nil, nil
		}
	}
	return nil, nil
}

// runRound executes one engine round against the leased shard,
// heartbeating on the report cadence while it runs.
func (w *Worker) runRound(a *Assignment, deadline time.Time) error {
	bugs, err := parseBugs(a.Bugs)
	if err != nil {
		return err
	}
	cfg := campaign.Config{
		Workers:     w.cfg.Threads,
		StepsPerRun: a.StepsPerRun,
		Seed:        a.Seed,
		NrCPUs:      a.NrCPUs,
		SchedFuzz:   a.SchedFuzz,
		BigMemory:   a.BigMemory,
		Bugs:        bugs,
		MaxExecs:    a.RoundExecs,
		Logf:        w.cfg.Logf,
		Tracer:      w.cfg.Tracer,
		OnFinding:   w.enqueueFinding,
		OnCorpus:    w.enqueueCorpus,
	}
	if w.cfg.MaxExecs > 0 {
		if left := w.cfg.MaxExecs - w.execs.Load(); left < cfg.MaxExecs {
			cfg.MaxExecs = left
		}
	}
	if !deadline.IsZero() {
		cfg.Duration = time.Until(deadline)
		if cfg.Duration <= 0 {
			return nil
		}
	}

	eng, err := campaign.Start(cfg)
	if err != nil {
		return fmt.Errorf("fleet: round on shard %d failed to start: %w", a.Shard, err)
	}
	w.mu.Lock()
	w.eng = eng
	seeds := append([]CorpusEntry(nil), w.seeds...)
	w.mu.Unlock()
	// Replay everything this worker knows — its own novel traces from
	// earlier rounds and pulled peer entries — into the fresh corpus.
	for _, s := range seeds {
		eng.InjectSeed(s.Trace, s.Score)
	}

	resCh := make(chan error, 1)
	go func() {
		_, err := eng.Wait()
		resCh <- err
	}()
	tick := time.NewTicker(w.reportEvery)
	defer tick.Stop()
	var roundErr error
	for running := true; running; {
		select {
		case roundErr = <-resCh:
			running = false
		case <-tick.C:
			if w.stop.Load() {
				eng.Stop()
			}
			w.report(ReportFlags{})
		}
	}

	// Fold the round into the worker's cumulative state before the
	// engine goes away.
	st := eng.Status()
	agg := coverage.NewAggregator()
	w.mu.Lock()
	agg.AbsorbDelta(w.doneCov)
	agg.AbsorbDelta(eng.CoverageDelta())
	w.doneCov = agg.Export()
	w.execsDone += st.Execs
	w.eng = nil
	w.mu.Unlock()
	w.execs.Store(w.execsDone)
	if roundErr != nil {
		return fmt.Errorf("fleet: round on shard %d: %w", a.Shard, roundErr)
	}
	return nil
}

// enqueueCorpus is the engine's OnCorpus hook: dedup against the local
// seen-set, remember the seed for future rounds, and queue it for the
// coordinator. Append-only — encoding happens on the reporter tick.
func (w *Worker) enqueueCorpus(tr *randtest.Trace, score float64) {
	h := TraceHash(tr)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seen[h] {
		return
	}
	w.seen[h] = true
	entry := CorpusEntry{Score: score, Trace: tr}
	w.keepSeedLocked(entry)
	w.outCorpus = append(w.outCorpus, entry)
}

// enqueueFinding is the engine's OnFinding hook.
func (w *Worker) enqueueFinding(f campaign.Finding) {
	w.mu.Lock()
	w.outFindings = append(w.outFindings, f)
	w.mu.Unlock()
}

// keepSeedLocked remembers a seed for future round engines, evicting
// the lowest-scored entry once the cap is hit.
func (w *Worker) keepSeedLocked(entry CorpusEntry) {
	if len(w.seeds) < w.cfg.SeedCap {
		w.seeds = append(w.seeds, entry)
		return
	}
	low := 0
	for i, s := range w.seeds {
		if s.Score < w.seeds[low].Score {
			low = i
		}
	}
	if w.seeds[low].Score < entry.Score {
		w.seeds[low] = entry
	}
}

// ReportFlags select the non-periodic parts of a report.
type ReportFlags struct {
	NeedShard bool
	Leaving   bool
	Error     string
}

// report sends one batched report: cumulative execs and coverage plus
// the drained outboxes. On failure the drained blobs are requeued for
// the next attempt, so nothing is lost and the coordinator-side dedup
// absorbs the rare double-delivery.
func (w *Worker) report(flags ReportFlags) (*ReportResponse, error) {
	w.mu.Lock()
	corpus := w.outCorpus
	findings := w.outFindings
	w.outCorpus = nil
	w.outFindings = nil
	execs := w.execsDone
	var eps float64
	agg := coverage.NewAggregator()
	agg.AbsorbDelta(w.doneCov)
	if w.eng != nil {
		st := w.eng.Status()
		execs += st.Execs
		eps = st.ExecsPerSec
		agg.AbsorbDelta(w.eng.CoverageDelta())
	}
	cursor := w.cursor
	w.mu.Unlock()
	w.execs.Store(execs)

	req := ReportRequest{
		WorkerID:     w.id,
		Execs:        execs,
		ExecsPerSec:  eps,
		Coverage:     agg.Export(),
		CorpusCursor: cursor,
		NeedShard:    flags.NeedShard,
		Leaving:      flags.Leaving,
		Error:        flags.Error,
	}
	for _, e := range corpus {
		req.Corpus = append(req.Corpus, e.Encode())
	}
	for _, f := range findings {
		req.Findings = append(req.Findings, FromFinding(f).Encode())
	}

	var resp ReportResponse
	if err := w.post("/fleet/v1/report", req, &resp); err != nil {
		telReportRetry.Inc()
		w.mu.Lock()
		w.outCorpus = append(corpus, w.outCorpus...)
		w.outFindings = append(findings, w.outFindings...)
		w.mu.Unlock()
		return nil, err
	}
	telReports.Inc()
	w.absorbPeers(resp.Corpus, resp.CorpusCursor)
	return &resp, nil
}

// absorbPeers takes the coordinator's corpus page: novel entries join
// the seen-set and seed list and are injected into the running engine.
func (w *Worker) absorbPeers(blobs [][]byte, cursor int) {
	if len(blobs) == 0 && cursor == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if cursor > w.cursor {
		w.cursor = cursor
	}
	for _, blob := range blobs {
		entry, err := DecodeCorpusEntry(blob)
		if err != nil {
			w.logf("fleet worker %s: dropping undecodable peer entry: %v", w.id, err)
			continue
		}
		h := TraceHash(entry.Trace)
		if w.seen[h] {
			continue
		}
		w.seen[h] = true
		w.keepSeedLocked(entry)
		if w.eng != nil {
			w.eng.InjectSeed(entry.Trace, entry.Score)
		}
		telCorpusPulled.Inc()
	}
}

func (w *Worker) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := w.client.Post(w.cfg.Coordinator+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("fleet: decoding %s response: %w", path, err)
	}
	return nil
}

// sleep waits for d unless the worker is stopped or past its deadline
// first; it reports whether the worker should keep going.
func (w *Worker) sleep(d time.Duration, deadline time.Time) bool {
	step := 50 * time.Millisecond
	for waited := time.Duration(0); waited < d; waited += step {
		if w.done(deadline) {
			return false
		}
		time.Sleep(step)
	}
	return !w.done(deadline)
}

func nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// parseBugs maps assignment bug names onto faults.Bug values,
// rejecting unknown names (a skewed fleet config, better loud).
func parseBugs(names []string) ([]faults.Bug, error) {
	if len(names) == 0 {
		return nil, nil
	}
	known := map[faults.Bug]bool{}
	for _, b := range faults.All() {
		known[b] = true
	}
	var bugs []faults.Bug
	for _, n := range names {
		b := faults.Bug(n)
		if !known[b] {
			return nil, fmt.Errorf("fleet: assignment names unknown bug %q", n)
		}
		bugs = append(bugs, b)
	}
	return bugs, nil
}
