package fleet

import (
	"bytes"
	"errors"
	"testing"

	"ghostspec/internal/arch"
	"ghostspec/internal/hyp"
	"ghostspec/internal/randtest"
	"ghostspec/internal/sched"
)

func archPFN(v uint64) arch.PFN     { return arch.PFN(v) }
func hypHandle(v uint32) hyp.Handle { return hyp.Handle(v) }

func sampleTrace(pfnBase uint64, handle uint32) *randtest.Trace {
	return &randtest.Trace{Ops: []randtest.Op{
		{Kind: randtest.OpAlloc, CPU: 1, PFN: archPFN(pfnBase)},
		{Kind: randtest.OpShare, PFN: archPFN(pfnBase)},
		{Kind: randtest.OpInitVM, Nr: 2, H: hypHandle(handle)},
		{Kind: randtest.OpUnshare, PFN: archPFN(pfnBase)},
		{Kind: randtest.OpTouch, PFN: archPFN(pfnBase + 1), Write: true},
		{Kind: randtest.OpTeardown, H: hypHandle(handle)},
	}}
}

func sampleFinding() Finding {
	return Finding{
		Worker: 3, Exec: 12345, Seed: -77, FromCorpus: true,
		Reproducible: true, ShrinkReplays: 210,
		Failures:    []string{"lock not held: vmlock", "stale TLB entry"},
		MinFailures: []string{"lock not held: vmlock"},
		Trace:       sampleTrace(0x81000, 0x11),
		Min:         sampleTrace(0x82000, 0x21),
		Sched:       &sched.Schedule{Steps: []sched.Step{{VCPU: 0, Point: 9}, {VCPU: 2, Point: 4}}},
		MinSched:    &sched.Schedule{Steps: []sched.Step{{VCPU: 2, Point: 4}}},
		SchedSeed:   0x5ced5eed,
		SchedErr:    "stream 1 panic: deadlock",
	}
}

// TestCorpusEntryRoundTrip pins byte-identical corpus-entry encoding,
// fractional novelty score included.
func TestCorpusEntryRoundTrip(t *testing.T) {
	entry := CorpusEntry{Score: 3.75, Trace: sampleTrace(0x81000, 0x11)}
	blob := entry.Encode()
	got, err := DecodeCorpusEntry(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Score != entry.Score {
		t.Errorf("score %v -> %v", entry.Score, got.Score)
	}
	if got.Trace.String() != entry.Trace.String() {
		t.Errorf("trace changed:\nwant:\n%s\ngot:\n%s", entry.Trace, got.Trace)
	}
	if reblob := got.Encode(); !bytes.Equal(blob, reblob) {
		t.Error("re-encoding the decoded entry is not byte-identical")
	}
}

// TestFindingRoundTrip pins byte-identical finding encoding with every
// field set, schedules included.
func TestFindingRoundTrip(t *testing.T) {
	f := sampleFinding()
	blob := f.Encode()
	got, err := DecodeFinding(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Worker != f.Worker || got.Exec != f.Exec || got.Seed != f.Seed ||
		got.FromCorpus != f.FromCorpus || got.Reproducible != f.Reproducible ||
		got.ShrinkReplays != f.ShrinkReplays || got.SchedSeed != f.SchedSeed ||
		got.SchedErr != f.SchedErr {
		t.Errorf("scalar fields changed: %+v vs %+v", got, f)
	}
	if len(got.Failures) != 2 || got.Failures[0] != f.Failures[0] {
		t.Errorf("failures changed: %v", got.Failures)
	}
	if got.Min.String() != f.Min.String() || got.Trace.String() != f.Trace.String() {
		t.Error("traces changed across round-trip")
	}
	if got.Sched == nil || got.MinSched == nil ||
		len(got.Sched.Steps) != 2 || got.Sched.Steps[1] != f.Sched.Steps[1] ||
		len(got.MinSched.Steps) != 1 {
		t.Errorf("schedules changed: %+v / %+v", got.Sched, got.MinSched)
	}
	if reblob := got.Encode(); !bytes.Equal(blob, reblob) {
		t.Error("re-encoding the decoded finding is not byte-identical")
	}
}

// TestFindingNilSchedules pins that a serial finding's nil schedules
// round-trip as nil, not as empty schedules.
func TestFindingNilSchedules(t *testing.T) {
	f := sampleFinding()
	f.Sched, f.MinSched = nil, nil
	got, err := DecodeFinding(f.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Sched != nil || got.MinSched != nil {
		t.Errorf("nil schedules decoded as %+v / %+v", got.Sched, got.MinSched)
	}
}

// TestFleetWireVersionSkew pins that both envelopes reject a version
// this binary does not speak, with ErrWireVersion.
func TestFleetWireVersionSkew(t *testing.T) {
	for name, blob := range map[string][]byte{
		"corpus":  CorpusEntry{Score: 1, Trace: sampleTrace(0x81000, 1)}.Encode(),
		"finding": sampleFinding().Encode(),
	} {
		blob[4] = WireVersion + 1 // version byte follows the 4-byte magic
		var err error
		if name == "corpus" {
			_, err = DecodeCorpusEntry(blob)
		} else {
			_, err = DecodeFinding(blob)
		}
		if !errors.Is(err, ErrWireVersion) {
			t.Errorf("%s: skewed version decoded with err=%v, want ErrWireVersion", name, err)
		}
	}
}

// TestFleetWireStrict pins truncation and trailing-garbage rejection
// for the envelopes (the trace codec has its own exhaustive twin).
func TestFleetWireStrict(t *testing.T) {
	blob := sampleFinding().Encode()
	for n := 0; n < len(blob); n += 7 {
		if _, err := DecodeFinding(blob[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(blob))
		}
	}
	if _, err := DecodeFinding(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Error("trailing byte decoded without error")
	}
	if _, err := DecodeCorpusEntry(blob); err == nil {
		t.Error("finding blob decoded as a corpus entry")
	}
}

// TestTraceHashCanonical pins the dedup normalization: the same op
// structure over different concrete frames and handles — two workers
// reproducing one bug — hashes identically, while a structural change
// does not.
func TestTraceHashCanonical(t *testing.T) {
	a := sampleTrace(0x81000, 0x11)
	b := sampleTrace(0x9f3c0, 0xbeef)
	if TraceHash(a) != TraceHash(b) {
		t.Error("renumbered-equivalent traces hash differently")
	}
	c := sampleTrace(0x81000, 0x11)
	c.Ops[0], c.Ops[1] = c.Ops[1], c.Ops[0]
	if TraceHash(a) == TraceHash(c) {
		t.Error("reordered trace hashes identically")
	}
	// Distinct frames must not collapse: alloc(p1),touch(p2) is not
	// alloc(p1),touch(p1).
	d := sampleTrace(0x81000, 0x11)
	d.Ops[4].PFN = d.Ops[0].PFN
	if TraceHash(a) == TraceHash(d) {
		t.Error("traces touching different frames hash identically")
	}
	// CPU placement is renumbered: the same op pattern issued from
	// different concrete CPUs collides, but same-CPU vs cross-CPU
	// structure stays distinct.
	e := sampleTrace(0x81000, 0x11)
	for i := range e.Ops {
		e.Ops[i].CPU = (e.Ops[i].CPU + 2) % 4 // consistent relabeling
	}
	if TraceHash(a) != TraceHash(e) {
		t.Error("CPU-relabeled trace hashes differently")
	}
	f := sampleTrace(0x81000, 0x11)
	f.Ops[1].CPU = f.Ops[0].CPU // share moves onto the alloc CPU
	if TraceHash(a) == TraceHash(f) {
		t.Error("cross-CPU and same-CPU traces hash identically")
	}
}

// TestDedupKeyFallback pins that a finding whose minimization came up
// empty dedups by its full trace instead.
func TestDedupKeyFallback(t *testing.T) {
	f := sampleFinding()
	f.Min = nil
	if f.DedupKey() != TraceHash(f.Trace) {
		t.Error("empty Min did not fall back to the full trace hash")
	}
	f = sampleFinding()
	if f.DedupKey() != TraceHash(f.Min) {
		t.Error("dedup key is not the minimized-trace hash")
	}
}
