package fleet

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFleetSmoke is the in-process twin of CI's fleet-smoke job: a
// coordinator and two real workers over HTTP, each running engine
// rounds on leased shards. Asserts the tentpole invariants: execs are
// accounted, the merged coverage is a superset of every worker's, and
// corpus entries synced through the coordinator to the peer.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet smoke boots real engines")
	}
	coord := NewCoordinator(CoordinatorConfig{
		Shards:      3,
		StepsPerRun: 120,
		RoundExecs:  24,
		Lease:       10 * time.Second,
		ReportEvery: 50 * time.Millisecond,
		Logf:        t.Logf,
	})
	srv := httptest.NewServer(coord.Mux())
	defer srv.Close()

	const perWorker = 72
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		w := NewWorker(WorkerConfig{
			Coordinator: srv.URL,
			Name:        "smoke",
			Threads:     1,
			MaxExecs:    perWorker,
			Duration:    2 * time.Minute, // backstop, MaxExecs is the real bound
			Logf:        t.Logf,
		})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	st := coord.Status()
	if st.WorkersLive != 0 {
		t.Errorf("workers_live = %d after clean departures, want 0", st.WorkersLive)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("coordinator saw %d workers, want 2", len(st.Workers))
	}
	if st.Execs < 2*perWorker {
		t.Errorf("fleet execs = %d, want >= %d", st.Execs, 2*perWorker)
	}
	for _, w := range st.Workers {
		if w.CoverageKeys == 0 {
			t.Errorf("worker %s reported no coverage", w.ID)
		}
		if !st.Merged.SupersetOf(w.Coverage) {
			t.Errorf("merged coverage is not a superset of worker %s's", w.ID)
		}
		if w.Execs < perWorker {
			t.Errorf("worker %s execs = %d, want >= %d", w.ID, w.Execs, perWorker)
		}
	}
	if st.MergedKeys == 0 || st.MergedImplCovered == 0 {
		t.Errorf("merged coverage empty: keys=%d impl=%d", st.MergedKeys, st.MergedImplCovered)
	}
	if st.CorpusEntries == 0 {
		t.Error("no corpus entries synced to the coordinator")
	}
	if st.CorpusFanout == 0 {
		t.Error("no corpus entries fanned out to peers")
	}
	if st.FindingsReported != 0 {
		t.Errorf("clean build produced %d findings", st.FindingsReported)
	}
	var rounds int64
	for _, sh := range st.Shards {
		rounds += sh.Rounds
	}
	if rounds < 4 {
		t.Errorf("fleet completed %d rounds, want >= 4 (2 workers x >= 2 rounds)", rounds)
	}
}

// TestFleetFindingDedup pins cross-worker finding dedup: the same bug
// minimized by two workers — same op structure, different concrete
// frames and handles — collapses to one entry with both reporters.
func TestFleetFindingDedup(t *testing.T) {
	coord := NewCoordinator(CoordinatorConfig{})
	w1, err := coord.Register(RegisterRequest{Name: "a", WireVersion: WireVersion})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := coord.Register(RegisterRequest{Name: "b", WireVersion: WireVersion})
	if err != nil {
		t.Fatal(err)
	}

	f1 := sampleFinding()
	f2 := sampleFinding()
	f2.Min = sampleTrace(0xaaa00, 0x77) // same structure, different concretes
	f2.Seed = 999                       // discovery metadata may differ freely
	f2.Exec = 1

	coord.Report(ReportRequest{WorkerID: w1.WorkerID, Findings: [][]byte{f1.Encode()}})
	coord.Report(ReportRequest{WorkerID: w2.WorkerID, Findings: [][]byte{f2.Encode(), f1.Encode()}})

	st := coord.Status()
	if st.FindingsReported != 3 || st.FindingsDuplicate != 2 {
		t.Errorf("reported=%d duplicate=%d, want 3/2", st.FindingsReported, st.FindingsDuplicate)
	}
	if len(st.Findings) != 1 {
		t.Fatalf("dedup left %d findings, want 1", len(st.Findings))
	}
	got := st.Findings[0]
	if got.Count != 3 || len(got.Workers) != 2 {
		t.Errorf("finding count=%d workers=%v, want count 3 from both workers", got.Count, got.Workers)
	}
	if got.Alarm == "" || !got.Sched {
		t.Errorf("finding lost its headline: %+v", got)
	}

	// A structurally different finding stays separate.
	f3 := sampleFinding()
	f3.Min.Ops = f3.Min.Ops[:3]
	coord.Report(ReportRequest{WorkerID: w1.WorkerID, Findings: [][]byte{f3.Encode()}})
	if st := coord.Status(); len(st.Findings) != 2 {
		t.Errorf("distinct finding was merged: %d entries", len(st.Findings))
	}
}

// TestFleetReassign pins dead-worker recovery: a worker that stops
// heartbeating loses its shard after the lease, and the surviving
// worker picks it up at its next round boundary.
func TestFleetReassign(t *testing.T) {
	coord := NewCoordinator(CoordinatorConfig{
		Shards: 2,
		Lease:  120 * time.Millisecond,
	})
	a, _ := coord.Register(RegisterRequest{Name: "doomed", WireVersion: WireVersion})
	b, _ := coord.Register(RegisterRequest{Name: "survivor", WireVersion: WireVersion})

	ra := coord.Report(ReportRequest{WorkerID: a.WorkerID, NeedShard: true})
	rb := coord.Report(ReportRequest{WorkerID: b.WorkerID, NeedShard: true})
	if ra.Assignment == nil || rb.Assignment == nil {
		t.Fatalf("initial assignment failed: %+v / %+v", ra, rb)
	}
	if ra.Assignment.Shard == rb.Assignment.Shard {
		t.Fatalf("both workers leased shard %d", ra.Assignment.Shard)
	}

	// Worker a goes silent; b keeps heartbeating through the lease
	// window, then hits a round boundary.
	deadline := time.Now().Add(3 * coord.cfg.Lease / 2)
	for time.Now().Before(deadline) {
		coord.Report(ReportRequest{WorkerID: b.WorkerID})
		time.Sleep(coord.cfg.Lease / 4)
	}
	rb2 := coord.Report(ReportRequest{WorkerID: b.WorkerID, NeedShard: true})
	if rb2.Assignment == nil {
		t.Fatal("survivor got no assignment after the lease expiry")
	}
	if rb2.Assignment.Shard != ra.Assignment.Shard {
		t.Errorf("survivor leased shard %d, want the dead worker's %d",
			rb2.Assignment.Shard, ra.Assignment.Shard)
	}
	st := coord.Status()
	if st.Reassigns < 1 {
		t.Errorf("shard_reassigns = %d, want >= 1", st.Reassigns)
	}
	if st.WorkersLive != 1 {
		t.Errorf("workers_live = %d, want 1", st.WorkersLive)
	}
	// The dead worker's next report bounces into re-registration.
	if r := coord.Report(ReportRequest{WorkerID: a.WorkerID}); !r.Reregister {
		t.Error("dead worker's report was not bounced to re-register")
	}
	// The dead worker completed no round, so the reassigned lease
	// replays its exact seed — none of that shard's stream is lost —
	// and is distinct from the survivor's own finished stream.
	if rb2.Assignment.Seed != ra.Assignment.Seed {
		t.Errorf("reassigned lease seed %d, want the dead worker's %d (no round completed)",
			rb2.Assignment.Seed, ra.Assignment.Seed)
	}
	if rb2.Assignment.Seed == rb.Assignment.Seed {
		t.Errorf("reassigned shard reused the survivor's old seed %d", rb.Assignment.Seed)
	}
}

// TestFleetVersionHandshake pins that a coordinator refuses a worker
// speaking a different wire version.
func TestFleetVersionHandshake(t *testing.T) {
	coord := NewCoordinator(CoordinatorConfig{})
	_, err := coord.Register(RegisterRequest{Name: "skewed", WireVersion: WireVersion + 1})
	if err == nil || !strings.Contains(err.Error(), "wire version") {
		t.Fatalf("skewed registration err = %v, want wire-version refusal", err)
	}
}

// TestFleetCorpusFanout pins the corpus log semantics: entries dedup
// by canonical hash, fan out to peers but never back to their origin,
// and the cursor pages through the log.
func TestFleetCorpusFanout(t *testing.T) {
	coord := NewCoordinator(CoordinatorConfig{CorpusBatch: 8})
	w1, _ := coord.Register(RegisterRequest{Name: "a", WireVersion: WireVersion})
	w2, _ := coord.Register(RegisterRequest{Name: "b", WireVersion: WireVersion})

	e1 := CorpusEntry{Score: 2, Trace: sampleTrace(0x81000, 0x11)}
	dup := CorpusEntry{Score: 5, Trace: sampleTrace(0xcc000, 0xff)} // canonically e1
	e2 := CorpusEntry{Score: 1, Trace: sampleTrace(0x81000, 0x11)}
	e2.Trace.Ops = e2.Trace.Ops[:2]

	coord.Report(ReportRequest{WorkerID: w1.WorkerID, Corpus: [][]byte{e1.Encode(), dup.Encode(), e2.Encode()}})
	st := coord.Status()
	if st.CorpusEntries != 2 || st.CorpusSynced != 2 {
		t.Errorf("corpus entries=%d synced=%d, want 2/2 (dup rejected)", st.CorpusEntries, st.CorpusSynced)
	}

	// The origin pages past its own entries without receiving them.
	r1 := coord.Report(ReportRequest{WorkerID: w1.WorkerID, CorpusCursor: 0})
	if len(r1.Corpus) != 0 || r1.CorpusCursor != 2 {
		t.Errorf("origin got %d entries back (cursor %d), want 0 (cursor 2)", len(r1.Corpus), r1.CorpusCursor)
	}
	// The peer receives both.
	r2 := coord.Report(ReportRequest{WorkerID: w2.WorkerID, CorpusCursor: 0})
	if len(r2.Corpus) != 2 || r2.CorpusCursor != 2 {
		t.Fatalf("peer got %d entries (cursor %d), want 2 (cursor 2)", len(r2.Corpus), r2.CorpusCursor)
	}
	if _, err := DecodeCorpusEntry(r2.Corpus[0]); err != nil {
		t.Errorf("fanned-out entry does not decode: %v", err)
	}
	// And nothing more on the next page.
	r3 := coord.Report(ReportRequest{WorkerID: w2.WorkerID, CorpusCursor: r2.CorpusCursor})
	if len(r3.Corpus) != 0 {
		t.Errorf("peer re-received %d entries", len(r3.Corpus))
	}
}
